// E11 (paper §5, Figs 12–13): remq — sequential vs Multilisp futures vs
// the Curare DPS + CRI pipeline, across list sizes.
//
// remq's recursive result flows into a cons, so plain CRI can't touch
// it. The paper offers two escapes: wrap the recursion in futures (pay
// per-future overhead) or rewrite in destination-passing style and let
// CRI run the stores concurrently. The work per element is inflated with
// (spin …) so there is something to parallelize — the 1987 concern holds
// today: list traversal alone is memory-bound, per-element WORK is what
// parallelism buys back.
#include <algorithm>
#include <cstdio>
#include <thread>

#include "bench_util.hpp"

using namespace curare;
using namespace curare::bench;

namespace {

const char* kSeqRemq =
    "(defun remq (obj lst)"
    "  (cond ((null lst) nil)"
    "        ((eq obj (car lst)) (spin 25) (remq obj (cdr lst)))"
    "        (t (spin 25) (cons (car lst) (remq obj (cdr lst))))))";

const char* kFutureRemq =
    "(defun remq-f (obj lst)"
    "  (cond ((null lst) nil)"
    "        ((eq obj (car lst)) (spin 25) (touch (future (remq-f obj "
    "(cdr lst)))))"
    "        (t (spin 25) (cons (car lst) (future (remq-f obj (cdr "
    "lst)))))))";

const char* kDpsCri =
    "(defun remq$cri (dest obj lst)"
    "  (cond ((null lst) (setf (cdr dest) nil))"
    "        ((eq obj (car lst))"
    "         (%cri-enqueue 0 dest obj (cdr lst))"
    "         (spin 25))"
    "        (t (let ((cell (cons (car lst) nil)))"
    "             (%cri-enqueue 0 cell obj (cdr lst))"
    "             (spin 25)"
    "             (setf (cdr dest) cell)))))";

}  // namespace

int main() {
  sexpr::Ctx ctx;
  Curare cur(ctx, 0);
  install_spin(cur.interp());
  lisp::Interp& in = cur.interp();
  in.set_max_depth(200000);

  const unsigned cores = std::max(1u, std::thread::hardware_concurrency());
  const std::size_t servers = std::min<std::size_t>(cores, 8);

  in.eval_program(kSeqRemq);
  in.eval_program(kFutureRemq);
  in.eval_program(kDpsCri);
  sexpr::Value seq_fn = in.global("remq");
  sexpr::Value fut_fn = in.global("remq-f");
  sexpr::Value dps_fn = in.global("remq$cri");
  sexpr::Value obj = ctx.sym("x");

  std::printf("E11: remq — sequential vs futures vs DPS+CRI "
              "(paper §5, Figs 12–13); S=%zu\n\n",
              servers);
  std::printf("%8s %12s %12s %12s %10s %10s\n", "n", "seq ms", "futures ms",
              "dps-cri ms", "fut spd", "dps spd");

  for (int n : {500, 2000, 8000}) {
    // Every third element is removable.
    std::string src = "(";
    for (int i = 0; i < n; ++i)
      src += (i % 3 == 0) ? "x " : std::to_string(i) + " ";
    src += ")";

    auto fresh = [&] { return sexpr::read_one(ctx, src); };

    double t_seq = 1e9;
    double t_fut = 1e9;
    double t_dps = 1e9;
    std::size_t len_seq = 0;
    std::size_t len_fut = 0;
    std::size_t len_dps = 0;
    for (int rep = 0; rep < 3; ++rep) {
      {
        const sexpr::Value args[] = {obj, fresh()};
        sexpr::Value out;
        t_seq = std::min(t_seq, time_s([&] { out = in.apply(seq_fn, args); }));
        len_seq = sexpr::list_length(out);
      }
      {
        const sexpr::Value args[] = {obj, fresh()};
        sexpr::Value out;
        t_fut = std::min(t_fut, time_s([&] {
                           out = cur.runtime().force_tree(
                               in.apply(fut_fn, args));
                         }));
        len_fut = sexpr::list_length(out);
      }
      {
        sexpr::Value dest = ctx.cons(sexpr::Value::nil(), sexpr::Value::nil());
        t_dps = std::min(t_dps, time_s([&] {
                           cur.runtime().run_cri(dps_fn, 1, servers,
                                                 {dest, obj, fresh()});
                         }));
        len_dps = sexpr::list_length(sexpr::cdr(dest));
      }
    }
    const bool ok = len_seq == len_fut && len_seq == len_dps;
    std::printf("%8d %12.2f %12.2f %12.2f %10.2f %10.2f%s\n", n,
                t_seq * 1e3, t_fut * 1e3, t_dps * 1e3, t_seq / t_fut,
                t_seq / t_dps, ok ? "" : "  RESULT MISMATCH");
  }
  std::printf(
      "\nshape check: DPS+CRI wins at scale — it skips future-object "
      "allocation\nand touch synchronization entirely (the paper's "
      "argument for preferring\nDPS over futures, §5).\n");
  return 0;
}
