// E21: serving-layer load generator (DESIGN.md §11).
//
// An in-process ServeDaemon plus C closed-loop clients over real TCP:
// each client connects (getting its own isolated session), defines a
// small recursive workload, then fires eval requests back-to-back —
// the next request leaves only when the previous response arrived.
// Sweeping C maps the daemon's throughput curve and tail latency under
// multi-session contention: every session shares the heap, symbol
// table, future pool, and admission controller.
//
// Output: one human table line per client count, and a JSON-lines
// record per sweep point appended to BENCH_serve.json
// (CURARE_BENCH_SERVE_JSON overrides):
//
//   {"bench":"serve_load","clients":C,"requests":N,"wall_s":…,
//    "throughput_rps":…,"p50_ms":…,"p99_ms":…,"rejected":R}
//
// A second sweep repeats the load with resource governance armed and
// every 8th request a hostile allocation loop the per-request quota
// must clip ({"bench":"serve_runaway",…,"clipped":…} rows): the cost
// of governance under attack, visible in the same throughput units.
//
// CURARE_BENCH_SMOKE=1 shrinks the sweep for CI. CURARE_CHAOS=
// seed:rate[:kinds[:sites]] arms the deterministic fault injector for
// the whole run (the TSan CI job targets queue.push and task.run), in
// which case non-ok responses are counted, not fatal: the invariants
// under chaos are "no hang" and "every request gets a response".
#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "runtime/fault_injector.hpp"
#include "serve/client.hpp"
#include "serve/server.hpp"
#include "sexpr/ctx.hpp"

using namespace curare;
using namespace curare::bench;

namespace {

/// seed:rate[:kinds[:sites]] — gc_soak's grammar plus the site list.
bool configure_chaos(const std::string& spec) {
  using runtime::FaultInjector;
  std::vector<std::string> parts;
  std::size_t pos = 0;
  while (pos <= spec.size()) {
    const auto colon = spec.find(':', pos);
    parts.push_back(spec.substr(
        pos, colon == std::string::npos ? std::string::npos
                                        : colon - pos));
    if (colon == std::string::npos) break;
    pos = colon + 1;
  }
  if (parts.size() < 2) return false;
  std::uint64_t seed = 0;
  double rate = 0;
  try {
    seed = std::stoull(parts[0], nullptr, 0);
    rate = std::stod(parts[1]);
  } catch (...) {
    return false;
  }
  if (!(rate > 0.0 && rate <= 1.0)) return false;
  unsigned kinds = FaultInjector::kAllKinds;
  if (parts.size() >= 3 && !parts[2].empty() && parts[2] != "all") {
    kinds = 0;
    std::size_t kp = 0;
    const std::string& kt = parts[2];
    while (kp <= kt.size()) {
      const auto comma = kt.find(',', kp);
      const std::string k = kt.substr(
          kp, comma == std::string::npos ? std::string::npos
                                         : comma - kp);
      if (k == "delay") kinds |= FaultInjector::kDelay;
      else if (k == "throw") kinds |= FaultInjector::kThrow;
      else if (k == "wake") kinds |= FaultInjector::kWake;
      else if (k == "all") kinds |= FaultInjector::kAllKinds;
      else return false;
      if (comma == std::string::npos) break;
      kp = comma + 1;
    }
    if (kinds == 0) return false;
  }
  unsigned sites = FaultInjector::kAllSites;
  if (parts.size() >= 4 && !parts[3].empty() && parts[3] != "all") {
    sites = 0;
    std::size_t sp = 0;
    const std::string& st = parts[3];
    while (sp <= st.size()) {
      const auto comma = st.find(',', sp);
      const std::string s = st.substr(
          sp, comma == std::string::npos ? std::string::npos
                                         : comma - sp);
      unsigned bit = 0;
      if (!FaultInjector::site_bit(s, bit)) return false;
      sites |= bit;
      if (comma == std::string::npos) break;
      sp = comma + 1;
    }
    if (sites == 0) return false;
  }
  FaultInjector::instance().configure(seed, rate, kinds, sites);
  return true;
}

struct SweepResult {
  int clients = 0;
  std::size_t requests = 0;
  double wall_s = 0;
  double throughput_rps = 0;
  double p50_ms = 0;
  double p99_ms = 0;
  std::size_t rejected = 0;  ///< non-ok responses (overload/chaos)
  std::size_t transport_errors = 0;
  /// Runaway-mix sweep only: requests clipped by the memory quota
  /// (expected, counted apart from rejections).
  std::size_t clipped = 0;
  /// Mean server-side breakdown components over the ok eval responses
  /// (each reply carries its request's measured split; see DESIGN §12).
  double mean_admission_ms = 0;
  double mean_eval_ms = 0;
};

/// The per-session workload: a recursive countdown the interpreter
/// actually walks, so each request costs real eval work (and polls
/// cancellation), not just socket round-trips.
constexpr const char* kDefineWorkload =
    "(defun bench-count (n acc) (if (< n 1) acc "
    "(bench-count (- n 1) (+ acc 1))))";

/// `runaway_mix` turns on resource governance (an 8 MiB per-request
/// quota) and makes every 8th request a hostile `(while t (cons 1 2))`
/// that the quota must clip — the sweep then measures what governance
/// and a steady trickle of runaways cost the well-behaved traffic.
SweepResult run_sweep(int clients, std::size_t requests_per_client,
                      int workload_n, bool chaos,
                      bool runaway_mix = false) {
  sexpr::Ctx ctx;
  serve::ServeOptions opts;
  opts.max_inflight = static_cast<std::size_t>(clients);
  opts.queue_limit = static_cast<std::size_t>(clients) * 2;
  if (runaway_mix) opts.mem_quota = 8ull << 20;
  serve::ServeDaemon daemon(ctx, opts);
  std::string err;
  if (!daemon.start(&err)) {
    std::fprintf(stderr, "bench_serve: %s\n", err.c_str());
    std::exit(1);
  }

  const std::string eval_src =
      "(bench-count " + std::to_string(workload_n) + " 0)";
  std::vector<std::vector<double>> latencies(
      static_cast<std::size_t>(clients));
  std::atomic<std::size_t> rejected{0};
  std::atomic<std::size_t> transport_errors{0};
  std::atomic<std::size_t> clipped{0};
  std::atomic<std::uint64_t> bd_admission_ns{0};
  std::atomic<std::uint64_t> bd_eval_ns{0};
  std::atomic<std::uint64_t> bd_count{0};

  const double wall_s = time_s([&] {
    std::vector<std::thread> threads;
    for (int c = 0; c < clients; ++c) {
      threads.emplace_back([&, c] {
        serve::ClientConnection conn;
        if (!conn.connect("127.0.0.1", daemon.port())) {
          ++transport_errors;
          return;
        }
        // Session setup: define the workload, then restructure it so
        // the session owns a transformed bench-count$parallel entry.
        serve::Request def;
        def.op = "restructure";
        def.name = "bench-count";
        def.program = kDefineWorkload;
        if (!conn.request(def)) {
          ++transport_errors;
          return;
        }
        serve::Request plain;
        plain.op = "eval";
        plain.program = eval_src;
        // Every 4th request runs the transformed version under a CRI
        // pool — the shared task queue and server threads are part of
        // the serving story (and the chaos sites queue.push/task.run
        // only fire on this path).
        serve::Request cri;
        cri.op = "eval";
        cri.program = "(bench-count$parallel 2 " +
                      std::to_string(workload_n) + " 0)";
        serve::Request runaway;
        runaway.op = "eval";
        runaway.program = "(while t (cons 1 2))";
        auto& lat = latencies[static_cast<std::size_t>(c)];
        lat.reserve(requests_per_client);
        std::uint64_t adm_ns = 0, ev_ns = 0, bd_n = 0;
        for (std::size_t i = 0; i < requests_per_client; ++i) {
          const bool hostile = runaway_mix && i % 8 == 5;
          const serve::Request& req =
              hostile ? runaway : (i % 4 == 3) ? cri : plain;
          double ms = 0;
          const double s = time_s([&] {
            auto resp = conn.request(req);
            if (!resp) {
              ++transport_errors;
            } else if (hostile) {
              // The quota must convert the runaway into a structured
              // clip; anything else is a governance failure.
              if (resp->status == "resource-exhausted")
                ++clipped;
              else
                ++rejected;
            } else if (resp->status != "ok") {
              ++rejected;
            } else if (resp->metrics.is_object()) {
              const auto& m = resp->metrics.as_object();
              const auto it = m.find("breakdown");
              if (it != m.end() && it->second.is_object()) {
                const auto& b = it->second.as_object();
                auto ns = [&](const char* k) -> std::uint64_t {
                  const auto f = b.find(k);
                  return f == b.end()
                             ? 0
                             : static_cast<std::uint64_t>(
                                   f->second.as_number());
                };
                adm_ns += ns("admission_ns");
                ev_ns += ns("eval_ns");
                ++bd_n;
              }
            }
          });
          ms = s * 1e3;
          lat.push_back(ms);
        }
        bd_admission_ns += adm_ns;
        bd_eval_ns += ev_ns;
        bd_count += bd_n;
      });
    }
    for (auto& t : threads) t.join();
  });
  daemon.shutdown();

  std::vector<double> all;
  for (const auto& v : latencies) all.insert(all.end(), v.begin(), v.end());
  std::sort(all.begin(), all.end());
  auto pct = [&](double q) {
    if (all.empty()) return 0.0;
    const std::size_t i = std::min(
        all.size() - 1,
        static_cast<std::size_t>(q * static_cast<double>(all.size())));
    return all[i];
  };

  SweepResult r;
  r.clients = clients;
  r.requests = all.size();
  r.wall_s = wall_s;
  r.throughput_rps =
      wall_s > 0 ? static_cast<double>(all.size()) / wall_s : 0;
  r.p50_ms = pct(0.50);
  r.p99_ms = pct(0.99);
  r.rejected = rejected.load();
  r.transport_errors = transport_errors.load();
  r.clipped = clipped.load();
  if (const std::uint64_t n = bd_count.load(); n > 0) {
    r.mean_admission_ms =
        static_cast<double>(bd_admission_ns.load()) / (1e6 * n);
    r.mean_eval_ms = static_cast<double>(bd_eval_ns.load()) / (1e6 * n);
  }
  if (!chaos && (r.rejected != 0 || r.transport_errors != 0)) {
    std::fprintf(stderr,
                 "bench_serve: %zu rejected / %zu transport errors "
                 "without chaos — the daemon dropped load it had "
                 "capacity for\n",
                 r.rejected, r.transport_errors);
    std::exit(1);
  }
  return r;
}

/// A prelude big enough that evaluating it per session visibly hurts:
/// `defuns` recursive functions, a struct type, and a built data set.
/// The warm-start image replaces exactly this evaluation with a clone.
std::string make_heavy_prelude(int defuns, int data_n, int warm_n) {
  std::string p;
  for (int i = 0; i < defuns; ++i) {
    const std::string n = std::to_string(i);
    p += "(defun prelude-f" + n + " (n acc) (if (< n 1) acc "
         "(prelude-f" + n + " (- n 1) (+ acc " + n + "))))";
  }
  p += "(defstruct prelude-rec (pointers link) (data tag))";
  p += "(defun prelude-build (n) (if (< n 1) nil "
       "(cons (make-prelude-rec 'tag n) (prelude-build (- n 1)))))";
  p += "(setq prelude-data (prelude-build " + std::to_string(data_n) +
       "))";
  p += "(setq prelude-table (make-hash-table))";
  p += "(setf (gethash 'answer prelude-table) 42)";
  // Initialization compute: a long countdown whose result is one
  // fixnum. Evaluated per session it costs warm_n eval steps; in the
  // image it is a single immediate — the classic warm-start win.
  p += "(setq prelude-warm (prelude-f0 " + std::to_string(warm_n) +
       " 0))";
  return p;
}

struct ColdstartResult {
  int sessions = 0;
  double mean_setup_ms = 0;  ///< serve.session_setup_ns server-side
};

/// Open `sessions` connections against a daemon carrying the heavy
/// prelude and probe each once; the server-side session-setup
/// histogram then holds exactly the cost this sweep compares:
/// per-session prelude re-evaluation (use_image=false) vs. cloning
/// the captured image (use_image=true).
ColdstartResult run_coldstart(bool use_image, int sessions,
                              const std::string& prelude) {
  sexpr::Ctx ctx;
  serve::ServeOptions opts;
  opts.prelude_src = prelude;
  opts.use_image = use_image;
  serve::ServeDaemon daemon(ctx, opts);
  std::string err;
  if (!daemon.start(&err)) {
    std::fprintf(stderr, "bench_serve: %s\n", err.c_str());
    std::exit(1);
  }
  for (int s = 0; s < sessions; ++s) {
    serve::ClientConnection conn;
    if (!conn.connect("127.0.0.1", daemon.port())) {
      std::fprintf(stderr, "bench_serve: coldstart connect failed\n");
      std::exit(1);
    }
    serve::Request probe;
    probe.op = "eval";
    probe.program = "(prelude-f0 3 0)";  // proves the prelude is live
    auto resp = conn.request(probe);
    if (!resp || resp->status != "ok") {
      std::fprintf(stderr,
                   "bench_serve: coldstart probe failed (%s)\n",
                   resp ? resp->error.c_str() : "transport");
      std::exit(1);
    }
  }
  ColdstartResult r;
  r.sessions = sessions;
  r.mean_setup_ms = daemon.runtime()
                        .obs()
                        .metrics.histogram("serve.session_setup_ns")
                        .mean() /
                    1e6;
  daemon.shutdown();
  return r;
}

struct CacheSweepResult {
  std::size_t miss_requests = 0;
  std::size_t hit_requests = 0;
  double miss_mean_ms = 0;  ///< breakdown restructure_ns, first session
  double hit_mean_ms = 0;   ///< breakdown restructure_ns, the rest
  std::uint64_t cache_hits = 0;
};

/// `sessions` connections each submit the same program and sweep-
/// restructure it. The first pays the full §4 analysis + §3.2/§5
/// transformation pipeline and seeds the cache; every later session
/// replays the cached answer. Each reply's restructure_ns breakdown
/// is the per-request cost this sweep compares.
CacheSweepResult run_cache_sweep(int sessions, int defuns) {
  sexpr::Ctx ctx;
  serve::ServeOptions opts;  // default: restructure cache enabled
  serve::ServeDaemon daemon(ctx, opts);
  std::string err;
  if (!daemon.start(&err)) {
    std::fprintf(stderr, "bench_serve: %s\n", err.c_str());
    std::exit(1);
  }
  // Tree-recursive struct walkers — the paper's CRI candidates, so a
  // miss pays the full conflict analysis and server-pool generation
  // that the cache exists to amortize.
  std::string program =
      "(defstruct cnode (pointers left right) (data weight))";
  for (int i = 0; i < defuns; ++i) {
    const std::string n = std::to_string(i);
    program += "(defun cache-f" + n + " (tr acc) (if (null tr) acc "
               "(cache-f" + n + " (left tr) "
               "(cache-f" + n + " (right tr) "
               "(+ acc (weight tr) "
               "(if (< (weight tr) " + n + ") "
               "(+ (weight tr) 1) (- (weight tr) 1)) "
               "(if (null (left tr)) "
               "(if (null (right tr)) 2 1) 0) " + n + ")))))";
  }

  CacheSweepResult r;
  std::uint64_t miss_ns = 0, hit_ns = 0;
  for (int s = 0; s < sessions; ++s) {
    serve::ClientConnection conn;
    if (!conn.connect("127.0.0.1", daemon.port())) {
      std::fprintf(stderr, "bench_serve: cache connect failed\n");
      std::exit(1);
    }
    serve::Request req;
    req.op = "restructure";  // no name → sweep every loaded defun
    req.program = program;
    auto resp = conn.request(req);
    if (!resp || resp->status != "ok") {
      std::fprintf(stderr, "bench_serve: cache sweep failed (%s)\n",
                   resp ? resp->error.c_str() : "transport");
      std::exit(1);
    }
    std::uint64_t restructure_ns = 0;
    if (resp->metrics.is_object()) {
      const auto& m = resp->metrics.as_object();
      const auto it = m.find("breakdown");
      if (it != m.end() && it->second.is_object()) {
        const auto& b = it->second.as_object();
        const auto f = b.find("restructure_ns");
        if (f != b.end())
          restructure_ns =
              static_cast<std::uint64_t>(f->second.as_number());
      }
    }
    if (s == 0) {
      miss_ns += restructure_ns;
      ++r.miss_requests;
    } else {
      hit_ns += restructure_ns;
      ++r.hit_requests;
    }
  }
  r.cache_hits = daemon.restructure_cache()->hits();
  if (r.miss_requests > 0)
    r.miss_mean_ms = static_cast<double>(miss_ns) /
                     (1e6 * static_cast<double>(r.miss_requests));
  if (r.hit_requests > 0)
    r.hit_mean_ms = static_cast<double>(hit_ns) /
                    (1e6 * static_cast<double>(r.hit_requests));
  daemon.shutdown();
  return r;
}

}  // namespace

int main() {
  const char* chaos_spec = std::getenv("CURARE_CHAOS");
  if (chaos_spec != nullptr && !configure_chaos(chaos_spec)) {
    std::fprintf(stderr,
                 "bench_serve: bad CURARE_CHAOS spec '%s' "
                 "(want seed:rate[:kinds[:sites]])\n",
                 chaos_spec);
    return 1;
  }
  const bool chaos = chaos_spec != nullptr;
  const bool smoke = smoke_mode();

  const std::vector<int> sweep =
      smoke ? std::vector<int>{1, 4, 8}
            : std::vector<int>{1, 2, 4, 8, 16};
  const std::size_t requests = smoke ? 40 : 300;
  const int workload_n = smoke ? 100 : 400;

  const char* path = std::getenv("CURARE_BENCH_SERVE_JSON");
  if (path == nullptr || *path == '\0') path = "BENCH_serve.json";
  std::FILE* js = std::fopen(path, "w");

  std::printf("== serve load (closed loop, %zu req/client, workload "
              "bench-count %d) ==\n",
              requests, workload_n);
  std::printf("%8s %9s %8s %12s %9s %9s %9s %9s %9s\n", "clients",
              "requests", "wall_s", "throughput", "p50_ms", "p99_ms",
              "adm_ms", "eval_ms", "rejected");
  for (const int c : sweep) {
    const SweepResult r = run_sweep(c, requests, workload_n, chaos);
    std::printf("%8d %9zu %8.3f %10.0f/s %9.3f %9.3f %9.3f %9.3f %9zu\n",
                r.clients, r.requests, r.wall_s, r.throughput_rps,
                r.p50_ms, r.p99_ms, r.mean_admission_ms, r.mean_eval_ms,
                r.rejected);
    if (js != nullptr) {
      std::fprintf(js,
                   "{\"bench\":\"serve_load\",\"clients\":%d,"
                   "\"requests\":%zu,\"wall_s\":%.6f,"
                   "\"throughput_rps\":%.1f,\"p50_ms\":%.4f,"
                   "\"p99_ms\":%.4f,\"mean_admission_ms\":%.4f,"
                   "\"mean_eval_ms\":%.4f,\"rejected\":%zu}\n",
                   r.clients, r.requests, r.wall_s, r.throughput_rps,
                   r.p50_ms, r.p99_ms, r.mean_admission_ms,
                   r.mean_eval_ms, r.rejected);
    }
  }
  // Runaway mix (DESIGN.md §14): same closed loop, but with an 8 MiB
  // per-request quota armed and every 8th request a hostile allocation
  // loop the quota clips. The throughput of the remaining well-behaved
  // traffic is the price of governance under attack.
  std::printf("\n== runaway mix (quota 8 MiB, every 8th request "
              "hostile) ==\n");
  std::printf("%8s %9s %8s %12s %9s %9s %9s %9s\n", "clients",
              "requests", "wall_s", "throughput", "p50_ms", "p99_ms",
              "clipped", "rejected");
  for (const int c : sweep) {
    const SweepResult r =
        run_sweep(c, requests, workload_n, chaos, /*runaway_mix=*/true);
    std::printf("%8d %9zu %8.3f %10.0f/s %9.3f %9.3f %9zu %9zu\n",
                r.clients, r.requests, r.wall_s, r.throughput_rps,
                r.p50_ms, r.p99_ms, r.clipped, r.rejected);
    if (!chaos && r.clipped == 0) {
      std::fprintf(stderr,
                   "bench_serve: runaway mix saw no quota clips — "
                   "governance is not engaging\n");
      return 1;
    }
    if (js != nullptr) {
      std::fprintf(js,
                   "{\"bench\":\"serve_runaway\",\"clients\":%d,"
                   "\"requests\":%zu,\"wall_s\":%.6f,"
                   "\"throughput_rps\":%.1f,\"p50_ms\":%.4f,"
                   "\"p99_ms\":%.4f,\"clipped\":%zu,\"rejected\":%zu}\n",
                   r.clients, r.requests, r.wall_s, r.throughput_rps,
                   r.p50_ms, r.p99_ms, r.clipped, r.rejected);
    }
  }
  // Cold start A/B (DESIGN.md §15): the same heavy prelude served two
  // ways — re-evaluated per session vs. cloned from a captured image.
  // The acceptance bar is image >= 5x faster session setup.
  const int cs_sessions = smoke ? 8 : 24;
  const int cs_defuns = smoke ? 24 : 80;
  const int cs_data = smoke ? 120 : 400;
  const int cs_warm = smoke ? 20000 : 60000;
  const std::string prelude =
      make_heavy_prelude(cs_defuns, cs_data, cs_warm);
  std::printf("\n== cold start (prelude: %d defuns + %d-record data "
              "set, %d sessions) ==\n",
              cs_defuns, cs_data, cs_sessions);
  std::printf("%10s %10s %14s\n", "mode", "sessions", "setup_ms");
  const ColdstartResult cold =
      run_coldstart(/*use_image=*/false, cs_sessions, prelude);
  const ColdstartResult warm =
      run_coldstart(/*use_image=*/true, cs_sessions, prelude);
  std::printf("%10s %10d %14.3f\n", "prelude", cold.sessions,
              cold.mean_setup_ms);
  std::printf("%10s %10d %14.3f   (%.1fx faster)\n", "image",
              warm.sessions, warm.mean_setup_ms,
              warm.mean_setup_ms > 0
                  ? cold.mean_setup_ms / warm.mean_setup_ms
                  : 0.0);
  if (js != nullptr) {
    std::fprintf(js,
                 "{\"bench\":\"serve_coldstart\",\"mode\":\"prelude\","
                 "\"sessions\":%d,\"mean_setup_ms\":%.4f}\n",
                 cold.sessions, cold.mean_setup_ms);
    std::fprintf(js,
                 "{\"bench\":\"serve_coldstart\",\"mode\":\"image\","
                 "\"sessions\":%d,\"mean_setup_ms\":%.4f}\n",
                 warm.sessions, warm.mean_setup_ms);
  }

  // Restructure cache: the first sweep pays analysis + transformation,
  // later sessions replay the cached answer. Acceptance bar: hits cost
  // >= 10x less restructure_ns than the miss.
  const int cache_sessions = smoke ? 8 : 16;
  const int cache_defuns = smoke ? 8 : 12;
  const CacheSweepResult cache =
      run_cache_sweep(cache_sessions, cache_defuns);
  std::printf("\n== restructure cache (%d defuns swept by %d "
              "sessions) ==\n",
              cache_defuns, cache_sessions);
  std::printf("%10s %10s %17s\n", "mode", "requests", "restructure_ms");
  std::printf("%10s %10zu %17.3f\n", "miss", cache.miss_requests,
              cache.miss_mean_ms);
  std::printf("%10s %10zu %17.3f   (%.1fx cheaper, %llu cache hits)\n",
              "hit", cache.hit_requests, cache.hit_mean_ms,
              cache.hit_mean_ms > 0
                  ? cache.miss_mean_ms / cache.hit_mean_ms
                  : 0.0,
              static_cast<unsigned long long>(cache.cache_hits));
  if (!chaos && cache.cache_hits == 0) {
    std::fprintf(stderr,
                 "bench_serve: repeated sweeps produced no cache hits "
                 "— the restructure cache is not engaging\n");
    return 1;
  }
  if (js != nullptr) {
    std::fprintf(js,
                 "{\"bench\":\"serve_restructure_cache\","
                 "\"mode\":\"miss\",\"requests\":%zu,"
                 "\"mean_restructure_ms\":%.4f}\n",
                 cache.miss_requests, cache.miss_mean_ms);
    std::fprintf(js,
                 "{\"bench\":\"serve_restructure_cache\","
                 "\"mode\":\"hit\",\"requests\":%zu,"
                 "\"mean_restructure_ms\":%.4f}\n",
                 cache.hit_requests, cache.hit_mean_ms);
  }
  if (js != nullptr) std::fclose(js);
  std::printf("JSON %s\n", path);
  return 0;
}
