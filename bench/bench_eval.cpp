// E23: single-thread eval throughput, tree-walker vs. bytecode VM
// (DESIGN.md §13).
//
// Four workloads, each a defun called back-to-back through the
// engine-dispatched Curare::eval_program path — exactly what the CLI
// and the serving daemon execute:
//
//   fib        naive double recursion (call-heavy, non-tail)
//   sum_loop   tail-recursive accumulation (TCE on both engines)
//   arith_loop dotimes + setq over fixnum arithmetic — the
//              acceptance cell: vm must clear 5x tree here
//   list_ops   push building a list, dolist folding it (allocation
//              and cons traffic dilute pure dispatch wins)
//
// Methodology matches bench_obs: engines measured round-robin
// (tree, vm, tree, vm, …) for `reps` repetitions, best run kept, so
// turbo/thermal drift spreads across both engines instead of
// flattering whichever ran second. Every run cross-checks the printed
// result against the workload's expected value — a differential guard
// riding the benchmark, not a separate test.
//
// Output: a human table and JSON-lines in BENCH_eval.json
// (CURARE_BENCH_EVAL_JSON overrides; the file is truncated first):
//
//   {"bench":"eval_ab","workload":"arith_loop","engine":"vm","n":…,
//    "iters":…,"reps":…,"result":"…","wall_s":…,"evals_per_s":…}
//
// tools/bench_check.py gates on these rows: identical "result" per
// (workload, n) across engines, vm >= tree on every workload, and
// vm >= 5x tree on arith_loop. CURARE_BENCH_SMOKE=1 shrinks only the
// run-volatile knobs (iters, reps) — n stays full-size so smoke rows
// line up identity-wise (including "result") against the committed
// full-length baseline.
#include <cstdio>
#include <cstdlib>
#include <string>

#include "bench_util.hpp"
#include "sexpr/ctx.hpp"
#include "sexpr/printer.hpp"

using namespace curare;
using namespace curare::bench;

namespace {

struct Workload {
  const char* name;
  const char* define;     ///< defun source, loaded once per engine
  const char* call_head;  ///< text before n in the call form
  const char* call_tail;  ///< text after n (extra args + close paren)
  int n;                  ///< workload size (identical in smoke mode)
  int iters;              ///< calls per measured run (smoke shrinks it)
  const char* expect;     ///< printed result for `n`
};

struct Point {
  double wall_s = 0;
  double evals_per_s = 0;
  std::string result;
};

constexpr const char* kEngineNames[] = {"tree", "vm"};
constexpr EngineKind kEngines[] = {EngineKind::kTree, EngineKind::kVm};

Point run_engine(EngineKind ek, const Workload& w) {
  sexpr::Ctx ctx;
  Curare cur(ctx);
  cur.set_engine(ek);
  cur.interp().set_echo(false);
  cur.load_program(w.define);
  const std::string call =
      std::string(w.call_head) + std::to_string(w.n) + w.call_tail;
  Point p;
  // Warm-up call: under the VM this is where lazy compilation lands,
  // so the measured loop times steady-state execution on both engines.
  p.result = sexpr::write_str(cur.eval_program(call));
  p.wall_s = time_s([&] {
    for (int i = 0; i < w.iters; ++i) cur.eval_program(call);
  });
  p.evals_per_s =
      p.wall_s > 0 ? static_cast<double>(w.iters) / p.wall_s : 0;
  return p;
}

}  // namespace

int main() {
  const bool smoke = smoke_mode();

  // n and iters are sized so each (workload, engine) run is a few
  // hundred ms full-length — enough for a stable best-of-3.
  const Workload workloads[] = {
      {"fib",
       "(defun bench-fib (n) (if (< n 2) n "
       "(+ (bench-fib (- n 1)) (bench-fib (- n 2)))))",
       "(bench-fib ", ")", 18, smoke ? 3 : 40, "2584"},
      {"sum_loop",
       "(defun bench-sum (n acc) (if (< n 1) acc "
       "(bench-sum (- n 1) (+ acc n))))",
       "(bench-sum ", " 0)", 4000, smoke ? 5 : 400, "8002000"},
      {"arith_loop",
       "(defun bench-arith (n) (let ((acc 0)) "
       "(dotimes (i n) (setq acc (+ acc (* i 3)))) acc))",
       "(bench-arith ", ")", 5000, smoke ? 5 : 400, "37492500"},
      {"list_ops",
       "(defun bench-list (n) (let ((l nil) (s 0)) "
       "(dotimes (i n) (push i l)) "
       "(dolist (x l) (setq s (+ s x))) s))",
       // list_ops is fast per call; smoke keeps 40 iters so the
       // measured window stays ~10ms (5 would be drift-dominated).
       "(bench-list ", ")", 400, smoke ? 40 : 300, "79800"},
  };
  constexpr std::size_t kNW = sizeof workloads / sizeof workloads[0];
  const int reps = smoke ? 1 : 3;

  const char* path = std::getenv("CURARE_BENCH_EVAL_JSON");
  if (path == nullptr || *path == '\0') path = "BENCH_eval.json";
  std::FILE* js = std::fopen(path, "w");

  Point best[kNW][2];
  for (int rep = 0; rep < reps; ++rep) {
    for (std::size_t wi = 0; wi < kNW; ++wi) {
      for (std::size_t ei = 0; ei < 2; ++ei) {
        const Workload& w = workloads[wi];
        const Point p = run_engine(kEngines[ei], w);
        if (p.result != w.expect) {
          std::fprintf(stderr,
                       "bench_eval: %s on %s returned %s, want %s\n",
                       w.name, kEngineNames[ei], p.result.c_str(),
                       w.expect);
          return 1;
        }
        if (p.evals_per_s > best[wi][ei].evals_per_s) best[wi][ei] = p;
      }
    }
  }

  std::printf("== eval throughput: tree vs vm (best of %d) ==\n", reps);
  std::printf("%-10s %6s %6s %12s %12s %8s\n", "workload", "n", "iters",
              "tree/s", "vm/s", "speedup");
  for (std::size_t wi = 0; wi < kNW; ++wi) {
    const Workload& w = workloads[wi];
    const Point& tr = best[wi][0];
    const Point& vm = best[wi][1];
    if (tr.result != vm.result) {
      std::fprintf(stderr,
                   "bench_eval: engines disagree on %s: tree=%s vm=%s\n",
                   w.name, tr.result.c_str(), vm.result.c_str());
      return 1;
    }
    const double speedup =
        tr.evals_per_s > 0 ? vm.evals_per_s / tr.evals_per_s : 0;
    std::printf("%-10s %6d %6d %12.1f %12.1f %7.2fx\n", w.name, w.n,
                w.iters, tr.evals_per_s, vm.evals_per_s, speedup);
    if (js != nullptr) {
      for (std::size_t ei = 0; ei < 2; ++ei) {
        const Point& p = best[wi][ei];
        std::fprintf(js,
                     "{\"bench\":\"eval_ab\",\"workload\":\"%s\","
                     "\"engine\":\"%s\",\"n\":%d,\"iters\":%d,"
                     "\"reps\":%d,\"result\":\"%s\",\"wall_s\":%.6f,"
                     "\"evals_per_s\":%.1f}\n",
                     w.name, kEngineNames[ei], w.n, w.iters, reps,
                     p.result.c_str(), p.wall_s, p.evals_per_s);
      }
    }
  }

  if (js != nullptr) std::fclose(js);
  std::printf("JSON %s\n", path);
  return 0;
}
