// E6 + E10 (paper §3.2, Fig 8): cost ordering of the three correctness
// devices — reorder < delay < lock, in both generality and price.
//
// Workload: a traversal that bumps a shared counter each invocation and
// carries real per-invocation work:
//
//   (setq acc (+ acc 1))       — Fig 8's reorderable update
//
// Four variants of the CRI body are timed under S servers:
//   lock     — Lock(var) in head … update … Unlock (§3.2.1)
//   delay    — update hoisted into the head before the enqueue (§3.2.2)
//   reorder  — (%atomic-incf-var 'acc 1) anywhere (§3.2.3)
//   none     — unsynchronized baseline (incorrect under races; shown for
//              the floor only; single final value still checked)
#include <algorithm>
#include <cstdio>
#include <thread>

#include "bench_util.hpp"
#include "runtime/sim.hpp"

using namespace curare;
using namespace curare::bench;

namespace {

struct Variant {
  const char* name;
  const char* defun;
  /// Simulated-machine mapping: h, t, and lock-imposed distance.
  double sim_h;
  double sim_t;
  std::size_t sim_distance;
};

double run_variant(Curare& cur, const Variant& v, int depth,
                   std::size_t servers, std::int64_t* final_acc) {
  cur.interp().eval_program("(setq acc 0)");
  cur.interp().eval_program(v.defun);
  sexpr::Value fn = cur.interp().global("strat$cri");
  double t = time_s([&] {
    cur.runtime().run_cri(fn, 1, servers, {sexpr::Value::fixnum(depth)});
  });
  *final_acc = cur.interp().eval_program("acc").as_fixnum();
  return t;
}

}  // namespace

int main() {
  sexpr::Ctx ctx;
  Curare cur(ctx, 0);
  install_spin(cur.interp());

  const unsigned cores = std::max(1u, std::thread::hardware_concurrency());
  const std::size_t servers = std::min<std::size_t>(cores, 8);
  const int depth = 2000;

  // Simulated machine: each invocation = head 2 + tail 40 work units;
  // the counter update costs 2 units and sits where the strategy puts
  // it. lock holds the variable from head to completion → distance 1;
  // delay puts the update in the head (head 4, tail 40); reorder leaves
  // the update in the tail as one atomic op (head 2, tail 42).
  const std::size_t sim_servers = 16;
  const Variant variants[] = {
      {"lock (§3.2.1)",
       "(defun strat$cri (n)"
       "  (%lock-var 'acc)"
       "  (when (> n 0)"
       "    (%cri-enqueue 0 (- n 1))"
       "    (spin 40)"
       "    (setq acc (+ acc 1)))"
       "  (%unlock-var 'acc))",
       2, 42, 1},
      {"delay (§3.2.2)",
       "(defun strat$cri (n)"
       "  (when (> n 0)"
       "    (setq acc (+ acc 1))"
       "    (%cri-enqueue 0 (- n 1))"
       "    (spin 40)))",
       4, 40, 0},
      {"reorder (§3.2.3)",
       "(defun strat$cri (n)"
       "  (when (> n 0)"
       "    (%cri-enqueue 0 (- n 1))"
       "    (spin 40)"
       "    (%atomic-incf-var 'acc 1)))",
       2, 42, 0},
  };

  std::printf("E6/E10: strategy cost comparison (paper §3.2)\n");
  std::printf("depth=%d; simulated machine S=%zu; host pool S=%zu on %u "
              "core(s)\n\n",
              depth, sim_servers, servers, cores);
  std::printf("%-18s %12s | %12s %12s %12s %8s\n", "strategy",
              "sim speedup", "T(1) ms", "T(S) ms", "host spd", "acc ok");

  for (const Variant& v : variants) {
    runtime::SimParams p;
    p.head_cost = v.sim_h;
    p.tail_cost = v.sim_t;
    p.depth = static_cast<std::size_t>(depth);
    p.servers = sim_servers;
    p.conflict_distance = v.sim_distance;
    const double sim_speedup = runtime::simulate_cri(p).speedup_vs_one(p);

    std::int64_t acc1 = 0;
    std::int64_t accS = 0;
    double t1 = 1e9;
    double ts = 1e9;
    run_variant(cur, v, depth, 1, &acc1);  // warm-up
    for (int rep = 0; rep < 3; ++rep) {
      t1 = std::min(t1, run_variant(cur, v, depth, 1, &acc1));
      ts = std::min(ts, run_variant(cur, v, depth, servers, &accS));
    }
    const bool ok = (acc1 == depth) && (accS == depth);
    std::printf("%-18s %12.2f | %12.2f %12.2f %12.2f %8s\n", v.name,
                sim_speedup, t1 * 1e3, ts * 1e3, t1 / ts,
                ok ? "yes" : "NO");
  }
  std::printf(
      "\nshape check: all three are correct (acc == depth). On the "
      "simulated\nmachine the §3.2 ordering appears: lock serializes "
      "(distance-1 hold →\nspeedup 1), delay recovers parallel tails at "
      "the price of a bigger head,\nreorder keeps the smallest head and "
      "scales best.\n");
  return 0;
}
