// Shared helpers for the experiment benchmarks.
//
// The experiments need controllable invocation bodies: `spin` is a
// native busy-loop builtin with a calibrated per-unit cost, so a Lisp
// function's head/tail sizes (the paper's h and t) can be dialed in
// microseconds. All benches build their workloads through here.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <string>
#include <string_view>

#include "curare/curare.hpp"
#include "lisp/interp.hpp"
#include "sexpr/reader.hpp"

namespace curare::bench {

/// Busy-work sink: prevents the spin loop from being optimized away.
inline std::atomic<std::uint64_t> g_spin_sink{0};

/// Register (spin n): n units of busy work, each ~a few nanoseconds.
inline void install_spin(lisp::Interp& in) {
  in.define_builtin("spin", 1, 1,
                    [](lisp::Interp&, std::span<const sexpr::Value> a) {
                      const std::int64_t n = lisp::as_int(a[0]);
                      std::uint64_t acc = 0;
                      for (std::int64_t i = 0; i < n * 64; ++i)
                        acc += static_cast<std::uint64_t>(i) * 2654435761u;
                      g_spin_sink.fetch_add(acc,
                                            std::memory_order_relaxed);
                      return sexpr::Value::nil();
                    });
}

/// Build the source text of a fixnum list (1 2 … n).
inline std::string list_src(int n) {
  std::string s = "(";
  for (int i = 1; i <= n; ++i) s += std::to_string(i) + " ";
  s += ")";
  return s;
}

/// Build a countdown-only workload list of length n filled with `fill`.
inline std::string fill_list_src(int n, const std::string& fill) {
  std::string s = "(";
  for (int i = 0; i < n; ++i) s += fill + " ";
  s += ")";
  return s;
}

/// Wall-clock seconds of a callable.
template <typename F>
double time_s(F&& f) {
  const auto t0 = std::chrono::steady_clock::now();
  f();
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(t1 - t0).count();
}

/// CI smoke mode: CURARE_BENCH_SMOKE=1 shrinks iteration counts so the
/// harness just proves it runs, not that the numbers are stable.
inline bool smoke_mode() {
  const char* e = std::getenv("CURARE_BENCH_SMOKE");
  return e != nullptr && *e != '\0' && std::string_view(e) != "0";
}

/// Where machine-readable results go (JSON lines, one object per
/// record). bench_queue truncates it; later benches append.
inline const char* bench_json_path() {
  const char* e = std::getenv("CURARE_BENCH_JSON");
  return (e != nullptr && *e != '\0') ? e : "BENCH_scheduler.json";
}

}  // namespace curare::bench
