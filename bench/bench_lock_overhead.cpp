// Ablation (paper §3.2.1's cost discussion): raw prices of the
// synchronization devices (google-benchmark).
//
// "Locking has two costs: the costs of the locks themselves and the
// resulting loss of concurrency." This binary quantifies the first cost:
// lock-manager traffic vs a CAS atomic update vs unsynchronized store,
// single-threaded and contended.
//
// After the google-benchmark suite it runs an instrumented contention
// sweep (LockManager + obs::Recorder) and prints one machine-readable
// JSON line per thread count (prefix "JSON ") with the recorder's own
// contention/wait aggregates — the same counters `--stats` reports.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <thread>
#include <vector>

#include "obs/recorder.hpp"
#include "runtime/lock_manager.hpp"
#include "runtime/runtime.hpp"
#include "sexpr/ctx.hpp"

using namespace curare;
using runtime::LocKey;
using runtime::LockManager;

namespace {

void BM_LockUnlockUncontended(benchmark::State& state) {
  sexpr::Ctx ctx;
  LockManager lm;
  auto* cell = ctx.heap.alloc<sexpr::Cons>(sexpr::Value::fixnum(0),
                                           sexpr::Value::nil());
  const LocKey key{cell, ctx.symbols.intern("car")};
  for (auto _ : state) {
    lm.lock(key, true);
    lm.unlock(key, true);
  }
}
BENCHMARK(BM_LockUnlockUncontended);

void BM_LockUnlockReadShared(benchmark::State& state) {
  sexpr::Ctx ctx;
  LockManager lm;
  auto* cell = ctx.heap.alloc<sexpr::Cons>(sexpr::Value::fixnum(0),
                                           sexpr::Value::nil());
  const LocKey key{cell, ctx.symbols.intern("car")};
  for (auto _ : state) {
    lm.lock(key, false);
    lm.unlock(key, false);
  }
}
BENCHMARK(BM_LockUnlockReadShared);

void BM_AtomicAddCas(benchmark::State& state) {
  sexpr::Ctx ctx;
  auto* cell = ctx.heap.alloc<sexpr::Cons>(sexpr::Value::fixnum(0),
                                           sexpr::Value::nil());
  for (auto _ : state) {
    // The CAS loop %atomic-add performs, without interpreter dispatch.
    std::uint64_t old_bits =
        cell->car_bits.load(std::memory_order_relaxed);
    for (;;) {
      sexpr::Value nv = sexpr::Value::fixnum(
          sexpr::Value::from_bits(old_bits).as_fixnum() + 1);
      if (cell->car_bits.compare_exchange_weak(
              old_bits, nv.bits(), std::memory_order_acq_rel,
              std::memory_order_relaxed)) {
        break;
      }
    }
  }
}
BENCHMARK(BM_AtomicAddCas);

void BM_UnsynchronizedStore(benchmark::State& state) {
  sexpr::Ctx ctx;
  auto* cell = ctx.heap.alloc<sexpr::Cons>(sexpr::Value::fixnum(0),
                                           sexpr::Value::nil());
  std::int64_t i = 0;
  for (auto _ : state) {
    cell->set_car(sexpr::Value::fixnum(++i));
    benchmark::DoNotOptimize(cell->car());
  }
}
BENCHMARK(BM_UnsynchronizedStore);

// Contended: all benchmark threads fight over ONE location.
void BM_LockUnlockContended(benchmark::State& state) {
  static LockManager lm;
  static sexpr::Ctx ctx;
  static auto* cell = ctx.heap.alloc<sexpr::Cons>(sexpr::Value::fixnum(0),
                                                  sexpr::Value::nil());
  const LocKey key{cell, ctx.symbols.intern("car")};
  for (auto _ : state) {
    lm.lock(key, true);
    lm.unlock(key, true);
  }
}
BENCHMARK(BM_LockUnlockContended)->Threads(1)->Threads(4)->Threads(8);

// Distinct locations per thread: sharding should keep this near the
// uncontended cost.
void BM_LockUnlockDistinctLocations(benchmark::State& state) {
  static LockManager lm;
  static sexpr::Ctx ctx;
  auto* cell = ctx.heap.alloc<sexpr::Cons>(sexpr::Value::fixnum(0),
                                           sexpr::Value::nil());
  const LocKey key{cell, ctx.symbols.intern("car")};
  for (auto _ : state) {
    lm.lock(key, true);
    lm.unlock(key, true);
  }
}
BENCHMARK(BM_LockUnlockDistinctLocations)->Threads(1)->Threads(4)->Threads(8);

// Instrumented sweep: T threads hammer one location through a
// recorder-attached LockManager; the recorder's aggregates quantify
// both §3.2.1 costs at once (price paid per acquisition + how often a
// thread had to wait and for how long).
void contention_sweep() {
  std::printf("\ninstrumented contention sweep (one shared location)\n");
  const std::uint64_t per_thread = 20000;
  for (unsigned threads : {1u, 2u, 4u, 8u}) {
    sexpr::Ctx ctx;
    LockManager lm;
    obs::Recorder rec;
    lm.set_recorder(&rec);
    auto* cell = ctx.heap.alloc<sexpr::Cons>(sexpr::Value::fixnum(0),
                                             sexpr::Value::nil());
    const LocKey key{cell, ctx.symbols.intern("car")};

    const auto t0 = std::chrono::steady_clock::now();
    std::vector<std::thread> pool;
    for (unsigned i = 0; i < threads; ++i) {
      pool.emplace_back([&] {
        for (std::uint64_t n = 0; n < per_thread; ++n) {
          lm.lock(key, true);
          lm.unlock(key, true);
        }
      });
    }
    for (auto& th : pool) th.join();
    const double wall_ns =
        static_cast<double>(std::chrono::duration_cast<
                                std::chrono::nanoseconds>(
                                std::chrono::steady_clock::now() - t0)
                                .count());

    const std::uint64_t acq =
        rec.metrics.counter("lock.acquisitions").get();
    const std::uint64_t contended =
        rec.metrics.counter("lock.contended").get();
    const auto& waits = rec.metrics.histogram("lock.wait_ns");
    std::printf(
        "JSON {\"bench\":\"lock_overhead\",\"threads\":%u,"
        "\"acquisitions\":%llu,\"contended\":%llu,"
        "\"contended_frac\":%.4f,\"wait_ns_mean\":%.1f,"
        "\"wait_ns_p99\":%.1f,\"ns_per_acquisition\":%.1f}\n",
        threads, static_cast<unsigned long long>(acq),
        static_cast<unsigned long long>(contended),
        acq > 0 ? static_cast<double>(contended) /
                      static_cast<double>(acq)
                : 0.0,
        waits.mean(), waits.quantile(0.99),
        acq > 0 ? wall_ns / static_cast<double>(acq) : 0.0);
  }
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  contention_sweep();
  return 0;
}
