// Ablation (paper §3.2.1's cost discussion): raw prices of the
// synchronization devices (google-benchmark).
//
// "Locking has two costs: the costs of the locks themselves and the
// resulting loss of concurrency." This binary quantifies the first cost:
// lock-manager traffic vs a CAS atomic update vs unsynchronized store,
// single-threaded and contended.
#include <benchmark/benchmark.h>

#include <thread>

#include "runtime/lock_manager.hpp"
#include "runtime/runtime.hpp"
#include "sexpr/ctx.hpp"

using namespace curare;
using runtime::LocKey;
using runtime::LockManager;

namespace {

void BM_LockUnlockUncontended(benchmark::State& state) {
  sexpr::Ctx ctx;
  LockManager lm;
  auto* cell = ctx.heap.alloc<sexpr::Cons>(sexpr::Value::fixnum(0),
                                           sexpr::Value::nil());
  const LocKey key{cell, ctx.symbols.intern("car")};
  for (auto _ : state) {
    lm.lock(key, true);
    lm.unlock(key, true);
  }
}
BENCHMARK(BM_LockUnlockUncontended);

void BM_LockUnlockReadShared(benchmark::State& state) {
  sexpr::Ctx ctx;
  LockManager lm;
  auto* cell = ctx.heap.alloc<sexpr::Cons>(sexpr::Value::fixnum(0),
                                           sexpr::Value::nil());
  const LocKey key{cell, ctx.symbols.intern("car")};
  for (auto _ : state) {
    lm.lock(key, false);
    lm.unlock(key, false);
  }
}
BENCHMARK(BM_LockUnlockReadShared);

void BM_AtomicAddCas(benchmark::State& state) {
  sexpr::Ctx ctx;
  auto* cell = ctx.heap.alloc<sexpr::Cons>(sexpr::Value::fixnum(0),
                                           sexpr::Value::nil());
  for (auto _ : state) {
    // The CAS loop %atomic-add performs, without interpreter dispatch.
    std::uint64_t old_bits =
        cell->car_bits.load(std::memory_order_relaxed);
    for (;;) {
      sexpr::Value nv = sexpr::Value::fixnum(
          sexpr::Value::from_bits(old_bits).as_fixnum() + 1);
      if (cell->car_bits.compare_exchange_weak(
              old_bits, nv.bits(), std::memory_order_acq_rel,
              std::memory_order_relaxed)) {
        break;
      }
    }
  }
}
BENCHMARK(BM_AtomicAddCas);

void BM_UnsynchronizedStore(benchmark::State& state) {
  sexpr::Ctx ctx;
  auto* cell = ctx.heap.alloc<sexpr::Cons>(sexpr::Value::fixnum(0),
                                           sexpr::Value::nil());
  std::int64_t i = 0;
  for (auto _ : state) {
    cell->set_car(sexpr::Value::fixnum(++i));
    benchmark::DoNotOptimize(cell->car());
  }
}
BENCHMARK(BM_UnsynchronizedStore);

// Contended: all benchmark threads fight over ONE location.
void BM_LockUnlockContended(benchmark::State& state) {
  static LockManager lm;
  static sexpr::Ctx ctx;
  static auto* cell = ctx.heap.alloc<sexpr::Cons>(sexpr::Value::fixnum(0),
                                                  sexpr::Value::nil());
  const LocKey key{cell, ctx.symbols.intern("car")};
  for (auto _ : state) {
    lm.lock(key, true);
    lm.unlock(key, true);
  }
}
BENCHMARK(BM_LockUnlockContended)->Threads(1)->Threads(4)->Threads(8);

// Distinct locations per thread: sharding should keep this near the
// uncontended cost.
void BM_LockUnlockDistinctLocations(benchmark::State& state) {
  static LockManager lm;
  static sexpr::Ctx ctx;
  auto* cell = ctx.heap.alloc<sexpr::Cons>(sexpr::Value::fixnum(0),
                                           sexpr::Value::nil());
  const LocKey key{cell, ctx.symbols.intern("car")};
  for (auto _ : state) {
    lm.lock(key, true);
    lm.unlock(key, true);
  }
}
BENCHMARK(BM_LockUnlockDistinctLocations)->Threads(1)->Threads(4)->Threads(8);

}  // namespace

BENCHMARK_MAIN();
