// E22: observability overhead (DESIGN.md §12).
//
// Two sweeps, three profiler modes each — off, 1-in-64 (the default
// sampling period), and 1-in-8 (the densest the profiler allows):
//
//   1. eval loop: a recursive countdown evaluated back-to-back in one
//      interpreter measures the pure hot-path cost of the sampling
//      gate and shadow stack;
//   2. serve: an in-process ServeDaemon with closed-loop TCP clients
//      measures the end-to-end throughput cost a served deployment
//      would see (the acceptance bar: 1-in-64 within 5% of off).
//
// Output: a human table and JSON-lines records in BENCH_obs.json
// (CURARE_BENCH_OBS_JSON overrides):
//
//   {"bench":"profiler_eval","mode":"off","evals_per_s":…,
//    "samples":…,"overhead_pct":…}
//   {"bench":"profiler_serve","mode":"p64","clients":C,
//    "throughput_rps":…,"samples":…,"overhead_pct":…}
//
// overhead_pct is relative to the same sweep's "off" row (0 for off).
// Each mode is measured `reps` times round-robin (off, p64, p8, off,
// …) and the best run kept: one serve point is only ~0.5 s of wall
// time, so a single cold pass confounds turbo/thermal drift with the
// profiler — interleaving spreads the drift across modes and taking
// the max filters scheduler noise. CURARE_BENCH_SMOKE=1 shrinks the
// counts (and reps) for CI.
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "obs/profiler.hpp"
#include "serve/client.hpp"
#include "serve/server.hpp"
#include "sexpr/ctx.hpp"

using namespace curare;
using namespace curare::bench;

namespace {

struct Mode {
  const char* name;
  unsigned period;  ///< 0 = profiler off
};

constexpr Mode kModes[] = {{"off", 0}, {"p64", 64}, {"p8", 8}};

void set_mode(const Mode& m) {
  auto& prof = obs::Profiler::instance();
  prof.set_enabled(false);
  prof.clear();
  if (m.period > 0) {
    prof.set_period(m.period);
    prof.set_enabled(true);
  }
}

constexpr const char* kDefineWorkload =
    "(defun bench-count (n acc) (if (< n 1) acc "
    "(bench-count (- n 1) (+ acc 1))))";

struct EvalResult {
  double wall_s = 0;
  double evals_per_s = 0;
  std::uint64_t samples = 0;
};

/// One interpreter, `iters` back-to-back evaluations of a recursive
/// countdown of depth `n` — every recursion step is one eval() call,
/// so the profiler gate sits directly on the measured path.
EvalResult run_eval_sweep(const Mode& m, int iters, int n) {
  sexpr::Ctx ctx;
  Curare cur(ctx);
  cur.interp().set_echo(false);
  cur.load_program(kDefineWorkload);
  const std::string src = "(bench-count " + std::to_string(n) + " 0)";
  set_mode(m);
  EvalResult r;
  r.wall_s = time_s([&] {
    for (int i = 0; i < iters; ++i) cur.interp().eval_program(src);
  });
  auto& prof = obs::Profiler::instance();
  r.samples = prof.samples();
  prof.set_enabled(false);
  // Eval steps per second: each countdown level costs a handful of
  // eval() calls (if/</-/+ and the recursive application); reporting
  // whole-workload evaluations keeps the unit stable across modes.
  r.evals_per_s = r.wall_s > 0
                      ? static_cast<double>(iters) / r.wall_s
                      : 0;
  return r;
}

struct ServeResult {
  double wall_s = 0;
  double throughput_rps = 0;
  std::uint64_t samples = 0;
  std::size_t errors = 0;
};

/// Closed-loop serve throughput (bench_serve's shape, plain evals
/// only): C clients, each firing `requests` workload evals.
ServeResult run_serve_sweep(const Mode& m, int clients,
                            std::size_t requests, int n) {
  sexpr::Ctx ctx;
  serve::ServeOptions opts;
  opts.max_inflight = static_cast<std::size_t>(clients);
  opts.queue_limit = static_cast<std::size_t>(clients) * 2;
  serve::ServeDaemon daemon(ctx, opts);
  std::string err;
  if (!daemon.start(&err)) {
    std::fprintf(stderr, "bench_obs: %s\n", err.c_str());
    std::exit(1);
  }
  const std::string eval_src =
      "(bench-count " + std::to_string(n) + " 0)";
  std::atomic<std::size_t> errors{0};
  set_mode(m);
  ServeResult r;
  r.wall_s = time_s([&] {
    std::vector<std::thread> threads;
    for (int c = 0; c < clients; ++c) {
      threads.emplace_back([&] {
        serve::ClientConnection conn;
        if (!conn.connect("127.0.0.1", daemon.port())) {
          ++errors;
          return;
        }
        serve::Request def;
        def.op = "eval";
        def.program = kDefineWorkload;
        if (!conn.request(def)) {
          ++errors;
          return;
        }
        serve::Request req;
        req.op = "eval";
        req.program = eval_src;
        for (std::size_t i = 0; i < requests; ++i) {
          auto resp = conn.request(req);
          if (!resp || resp->status != "ok") ++errors;
        }
      });
    }
    for (auto& t : threads) t.join();
  });
  auto& prof = obs::Profiler::instance();
  r.samples = prof.samples();
  prof.set_enabled(false);
  daemon.shutdown();
  r.throughput_rps =
      r.wall_s > 0 ? static_cast<double>(clients) *
                         static_cast<double>(requests) / r.wall_s
                   : 0;
  r.errors = errors.load();
  if (r.errors != 0) {
    std::fprintf(stderr,
                 "bench_obs: %zu request error(s) — the serve sweep "
                 "must run clean to compare modes\n",
                 r.errors);
    std::exit(1);
  }
  return r;
}

double overhead_pct(double base, double now) {
  return base > 0 ? (base - now) / base * 100.0 : 0.0;
}

}  // namespace

int main() {
  const bool smoke = smoke_mode();
  const int eval_iters = smoke ? 200 : 4000;
  const int workload_n = smoke ? 100 : 400;
  const int clients = 4;
  const std::size_t requests = smoke ? 30 : 600;
  const int reps = smoke ? 1 : 3;
  constexpr std::size_t kNModes = sizeof kModes / sizeof kModes[0];

  const char* path = std::getenv("CURARE_BENCH_OBS_JSON");
  if (path == nullptr || *path == '\0') path = "BENCH_obs.json";
  std::FILE* js = std::fopen(path, "w");

  // Interleaved repetitions: round-robin over the modes, keep the
  // best run per mode (see the header comment on methodology).
  EvalResult eval_best[kNModes];
  ServeResult serve_best[kNModes];
  for (int rep = 0; rep < reps; ++rep) {
    for (std::size_t i = 0; i < kNModes; ++i) {
      const EvalResult r =
          run_eval_sweep(kModes[i], eval_iters, workload_n);
      if (r.evals_per_s > eval_best[i].evals_per_s) eval_best[i] = r;
    }
    for (std::size_t i = 0; i < kNModes; ++i) {
      const ServeResult r =
          run_serve_sweep(kModes[i], clients, requests, workload_n);
      if (r.throughput_rps > serve_best[i].throughput_rps)
        serve_best[i] = r;
    }
  }

  std::printf("== profiler overhead: eval loop (%d evals of "
              "bench-count %d, best of %d) ==\n",
              eval_iters, workload_n, reps);
  std::printf("%6s %10s %12s %10s %10s\n", "mode", "wall_s",
              "evals/s", "samples", "overhd_%");
  const double eval_base = eval_best[0].evals_per_s;
  for (std::size_t i = 0; i < kNModes; ++i) {
    const Mode& m = kModes[i];
    const EvalResult& r = eval_best[i];
    const double ov = m.period == 0
                          ? 0.0
                          : overhead_pct(eval_base, r.evals_per_s);
    std::printf("%6s %10.3f %12.0f %10llu %10.2f\n", m.name, r.wall_s,
                r.evals_per_s,
                static_cast<unsigned long long>(r.samples), ov);
    if (js != nullptr) {
      std::fprintf(js,
                   "{\"bench\":\"profiler_eval\",\"mode\":\"%s\","
                   "\"iters\":%d,\"workload_n\":%d,\"reps\":%d,"
                   "\"wall_s\":%.6f,"
                   "\"evals_per_s\":%.1f,\"samples\":%llu,"
                   "\"overhead_pct\":%.3f}\n",
                   m.name, eval_iters, workload_n, reps, r.wall_s,
                   r.evals_per_s,
                   static_cast<unsigned long long>(r.samples), ov);
    }
  }

  std::printf("== profiler overhead: serve (%d clients, %zu "
              "req/client, best of %d) ==\n",
              clients, requests, reps);
  std::printf("%6s %10s %12s %10s %10s\n", "mode", "wall_s",
              "req/s", "samples", "overhd_%");
  const double serve_base = serve_best[0].throughput_rps;
  for (std::size_t i = 0; i < kNModes; ++i) {
    const Mode& m = kModes[i];
    const ServeResult& r = serve_best[i];
    const double ov = m.period == 0
                          ? 0.0
                          : overhead_pct(serve_base, r.throughput_rps);
    std::printf("%6s %10.3f %12.0f %10llu %10.2f\n", m.name, r.wall_s,
                r.throughput_rps,
                static_cast<unsigned long long>(r.samples), ov);
    if (js != nullptr) {
      std::fprintf(js,
                   "{\"bench\":\"profiler_serve\",\"mode\":\"%s\","
                   "\"clients\":%d,\"requests\":%zu,\"reps\":%d,"
                   "\"wall_s\":%.6f,"
                   "\"throughput_rps\":%.1f,\"samples\":%llu,"
                   "\"overhead_pct\":%.3f}\n",
                   m.name, clients, requests, reps, r.wall_s,
                   r.throughput_rps,
                   static_cast<unsigned long long>(r.samples), ov);
    }
  }

  if (js != nullptr) std::fclose(js);
  std::printf("JSON %s\n", path);
  return 0;
}
