// E7 (paper §4.1, Figure 9): the central task queue as a bottleneck.
//
// "This bottleneck will not adversely affect performance if the time
// spent executing an invocation is much longer than the time spent
// waiting for the queue."
//
// Part 1 (A/B): raw scheduler throughput, SingleMutexTaskQueues (the
// seed implementation) vs ShardedTaskQueues (this repo's low-contention
// scheduler), on a chain-handoff workload: `threads` live chains, each
// pop re-enqueues at the next site until a shared budget runs out. Every
// operation is a push+pop pair with no body work, so the scheduler IS
// the workload — the worst case the paper's condition warns about.
// Results also go to BENCH_scheduler.json (one JSON object per line).
//
// Part 2: simulated parallel efficiency while sweeping the
// invocation-grain / dequeue-cost ratio, plus the real pool with spin
// bodies of varying grain (host-core limited).
#include <algorithm>
#include <atomic>
#include <cstdio>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "runtime/sim.hpp"
#include "runtime/task_queue.hpp"

using namespace curare;
using namespace curare::bench;

namespace {

// ---- Part 1: A/B scheduler microbenchmark ---------------------------------

/// One chain-handoff run: seed `threads` chains at site 0; every pop
/// decrements the budget and re-enqueues at (site+1)%sites while more
/// than `threads` operations remain, so exactly `total_ops` tasks flow
/// through the queue and the last `threads` pops let their chains die.
/// The final pop closes the queues. Returns wall-clock seconds.
template <typename Q>
double run_handoff(std::size_t threads, std::size_t sites,
                   std::size_t total_ops, std::size_t batch) {
  Q q(sites);
  std::atomic<std::int64_t> budget{static_cast<std::int64_t>(total_ops)};
  for (std::size_t t = 0; t < threads; ++t)
    q.push(0, runtime::TaskArgs{sexpr::Value::fixnum(0)});

  auto handle = [&](std::size_t site) {
    const std::int64_t left =
        budget.fetch_sub(1, std::memory_order_relaxed) - 1;
    if (left >= static_cast<std::int64_t>(threads)) {
      q.push((site + 1) % sites,
             runtime::TaskArgs{sexpr::Value::fixnum(left)});
    } else if (left == 0) {
      q.close();
    }
  };

  std::vector<std::thread> ws;
  ws.reserve(threads);
  const double secs = time_s([&] {
    for (std::size_t t = 0; t < threads; ++t) {
      ws.emplace_back([&] {
        if constexpr (requires(std::vector<runtime::TaskArgs>& v) {
                        q.pop_some(v, batch, nullptr);
                      }) {
          if (batch > 1) {
            std::vector<runtime::TaskArgs> buf;
            buf.reserve(batch);
            std::size_t site = 0;
            while (q.pop_some(buf, batch, &site) != 0) {
              for (std::size_t i = 0; i < buf.size(); ++i) handle(site);
              buf.clear();
            }
            return;
          }
        }
        std::size_t site = 0;
        while (q.pop(&site)) handle(site);
      });
    }
    for (auto& w : ws) w.join();
  });
  return secs;
}

struct AbRow {
  const char* impl;
  std::size_t threads, sites, batch, ops;
  double secs, mops;
};

template <typename Q>
AbRow measure(const char* impl, std::size_t threads, std::size_t sites,
              std::size_t total_ops, std::size_t batch, int reps) {
  double best = 1e9;
  for (int r = 0; r < reps; ++r)
    best = std::min(best, run_handoff<Q>(threads, sites, total_ops, batch));
  return AbRow{impl,         threads,
               sites,        batch,
               total_ops,    best,
               static_cast<double>(total_ops) / best / 1e6};
}

void emit_json(std::FILE* js, const AbRow& r) {
  if (js == nullptr) return;
  std::fprintf(js,
               "{\"bench\":\"queue_ab\",\"impl\":\"%s\",\"threads\":%zu,"
               "\"sites\":%zu,\"batch\":%zu,\"ops\":%zu,\"secs\":%.6f,"
               "\"mops\":%.3f}\n",
               r.impl, r.threads, r.sites, r.batch, r.ops, r.secs, r.mops);
}

/// ns per {fetch_add, fetch_sub} pair on one shared atomic word — the
/// sharded scheduler's entire serialized section per push+pop pair
/// (its ring cursors live on other cache lines and pipeline with it).
double measure_rmw_pair_ns(std::size_t iters) {
  std::atomic<std::uint64_t> w{0};
  const double secs = time_s([&] {
    for (std::size_t i = 0; i < iters; ++i) {
      w.fetch_add(1, std::memory_order_seq_cst);
      w.fetch_sub(1, std::memory_order_seq_cst);
    }
  });
  g_spin_sink.fetch_add(w.load(), std::memory_order_relaxed);
  return secs / static_cast<double>(iters) * 1e9;
}

void run_ab(std::FILE* js) {
  const bool smoke = smoke_mode();
  const std::size_t total_ops = smoke ? 4'000 : 400'000;
  const int reps = smoke ? 1 : 3;
  const unsigned cores = std::max(1u, std::thread::hardware_concurrency());

  std::printf("A/B: scheduler throughput, chain-handoff (no body work), "
              "%u core(s)\n",
              cores);
  std::printf("ops=%zu per cell, best of %d; Mops = million push+pop "
              "pairs/sec\n\n",
              total_ops, reps);
  std::printf("%7s %6s | %12s %12s %8s | %14s\n", "threads", "sites",
              "mutex Mops", "shard Mops", "speedup", "shard b=8 Mops");

  double mutex_pair_ns = 0;   // threads=1, sites=1 cell
  double shard_pair_ns = 0;
  for (std::size_t sites : {std::size_t{1}, std::size_t{4}}) {
    for (std::size_t threads : {std::size_t{1}, std::size_t{2},
                                std::size_t{4}, std::size_t{8}}) {
      AbRow a = measure<runtime::SingleMutexTaskQueues>(
          "mutex", threads, sites, total_ops, 1, reps);
      AbRow b = measure<runtime::ShardedTaskQueues>(
          "sharded", threads, sites, total_ops, 1, reps);
      AbRow c = measure<runtime::ShardedTaskQueues>(
          "sharded", threads, sites, total_ops, 8, reps);
      emit_json(js, a);
      emit_json(js, b);
      emit_json(js, c);
      if (threads == 1 && sites == 1) {
        mutex_pair_ns = a.secs / static_cast<double>(a.ops) * 1e9;
        shard_pair_ns = b.secs / static_cast<double>(b.ops) * 1e9;
      }
      std::printf("%7zu %6zu | %12.2f %12.2f %7.2fx | %14.2f\n", threads,
                  sites, a.mops, b.mops, b.mops / a.mops, c.mops);
    }
  }
  std::printf("\nwall-clock caveat: with %u core(s) the threads above are "
              "time-sliced, so the\nmutex queue's lock is (almost) never "
              "contended — the convoy it forms on a real\nmultiprocessor "
              "does not show in these columns.\n\n",
              cores);

  // §4.1 bottleneck projection. The paper's condition: servers scale
  // until the serialized queue section saturates. For the mutex queue
  // the whole push+pop pair runs under one lock (its critical section
  // IS the measured single-thread pair cost); for the sharded queue
  // only the depth/hint word's two RMWs serialize — ring cursors are
  // per-site lines that overlap with them. Both serialized lengths are
  // measured on this host; their ratio bounds the relative throughput
  // once S servers saturate both schedulers (S ≥ pair/serial ≈ 4 here).
  const double shard_serial_ns =
      measure_rmw_pair_ns(smoke ? 100'000 : 4'000'000);
  const double projected = mutex_pair_ns / shard_serial_ns;
  std::printf("saturation projection (S=8, body→0): mutex serialized "
              "%.1f ns/pair vs sharded\nserialized %.1f ns/pair "
              "(measured; sharded full pair %.1f ns) → sharded sustains\n"
              "%.1fx the mutex queue's throughput once servers saturate "
              "the serialized section.\n\n",
              mutex_pair_ns, shard_serial_ns, shard_pair_ns, projected);
  if (js != nullptr) {
    std::fprintf(js,
                 "{\"bench\":\"queue_model\",\"S\":8,"
                 "\"mutex_serial_ns\":%.1f,\"shard_serial_ns\":%.1f,"
                 "\"shard_pair_ns\":%.1f,\"projected_speedup\":%.2f}\n",
                 mutex_pair_ns, shard_serial_ns, shard_pair_ns, projected);
  }
}

// ---- Part 2: grain sweep (original E7) ------------------------------------

double run_wallclock(Curare& cur, int grain, int depth,
                     std::size_t servers) {
  cur.interp().eval_program(
      "(defun grain$cri (n g)"
      "  (when (> n 0)"
      "    (%cri-enqueue 0 (- n 1) g)"
      "    (spin g)))");
  sexpr::Value fn = cur.interp().global("grain$cri");
  return time_s([&] {
    cur.runtime().run_cri(fn, 1, servers,
                          {sexpr::Value::fixnum(depth),
                           sexpr::Value::fixnum(grain)});
  });
}

void run_grain_sweep() {
  sexpr::Ctx ctx;
  Curare cur(ctx, 0);
  install_spin(cur.interp());

  const unsigned cores = std::max(1u, std::thread::hardware_concurrency());
  const std::size_t host_servers = std::min<std::size_t>(cores, 8);
  const std::size_t sim_servers = 16;
  const double dequeue_cost = 1.0;  // simulated queue service time

  std::printf("E7: central-queue bottleneck vs invocation grain "
              "(paper §4.1)\n");
  std::printf("simulated: S=%zu, dequeue cost 1 unit, head 1, tail = "
              "grain−1; host: S=%zu on %u core(s)\n\n",
              sim_servers, host_servers, cores);
  std::printf("%12s | %12s %12s | %8s %12s %12s\n", "grain/deq",
              "sim speedup", "sim eff", "depth", "host T(S)ms",
              "host eff");

  const long total_work = smoke_mode() ? 512L * 8 : 512L * 400;
  const int reps = smoke_mode() ? 1 : 2;
  for (int grain : {2, 8, 32, 128, 512}) {
    runtime::SimParams p;
    p.head_cost = 1;
    p.tail_cost = grain - 1;
    p.depth = 512;
    p.servers = sim_servers;
    p.dequeue_cost = dequeue_cost;
    const double sp = runtime::simulate_cri(p).speedup_vs_one(p);
    const double eff = sp / static_cast<double>(sim_servers);

    const int depth = static_cast<int>(total_work / grain);
    run_wallclock(cur, grain, depth, 1);  // warm-up
    double t1 = 1e9;
    double ts = 1e9;
    for (int rep = 0; rep < reps; ++rep) {
      t1 = std::min(t1, run_wallclock(cur, grain, depth, 1));
      ts = std::min(ts, run_wallclock(cur, grain, depth, host_servers));
    }
    std::printf("%12d | %12.2f %11.0f%% | %8d %12.2f %11.0f%%\n", grain,
                sp, 100 * eff, depth, ts * 1e3,
                100 * (t1 / ts) / static_cast<double>(host_servers));
  }
  std::printf("\nshape check: efficiency climbs with grain; at tiny "
              "grains the serialized\ndequeue dominates (sim speedup → "
              "grain/dequeue_cost), the paper's condition.\n");
}

}  // namespace

int main() {
  // Truncate the JSON-lines result file; bench_server_scaling appends.
  std::FILE* js = std::fopen(bench_json_path(), "w");
  run_ab(js);
  if (js != nullptr) std::fclose(js);
  run_grain_sweep();
  return 0;
}
