// E7 (paper §4.1, Figure 9): the central task queue as a bottleneck.
//
// "This bottleneck will not adversely affect performance if the time
// spent executing an invocation is much longer than the time spent
// waiting for the queue."
//
// Part 1 (A/B): raw scheduler throughput across three impls — the
// SingleMutexTaskQueues seed baseline, the retired ShardedTaskQueues
// (PR 2), and the WorkStealingTaskQueues the alias points at — on two
// workload shapes. Every operation is a push+pop pair with no body
// work, so the scheduler IS the workload — the worst case the paper's
// condition warns about.
//
//  * handoff: `threads` live chains, each pop re-enqueues at the NEXT
//    site — uniform cross-site pressure with every server saturated.
//    Kept for history, but no real CRI run produces it: a transformed
//    body enqueues to its own call sites and the spawning server
//    usually consumes its own spawn.
//  * spawn_chain: producer-is-next-consumer — ⌈threads/2⌉ live chains
//    across `threads` servers, every pop re-enqueueing at the same
//    site. This is the shape §4.1 recursion actually generates (a
//    cdr-chain spawns one successor per invocation), in the paper's
//    saturation regime: more servers than spawnable work. Here the
//    schedulers' wake policies dominate — the mutex queue's
//    notify-on-every-push hands each chain to a sleeping server
//    through a futex, while owner-lane affinity plus the wake
//    throttle (no wake when the producer is the next consumer) keeps
//    a chain hot on one server.
//
// Results go to BENCH_scheduler.json (one JSON object per line) with a
// "workload" field; tools/bench_check.py gates the ws-vs-mutex ratio.
//
// Part 2: simulated parallel efficiency while sweeping the
// invocation-grain / dequeue-cost ratio, plus the real pool with spin
// bodies of varying grain (host-core limited).
#include <algorithm>
#include <atomic>
#include <cstdio>
#include <memory>
#include <thread>
#include <type_traits>
#include <vector>

#include "bench_util.hpp"
#include "runtime/sim.hpp"
#include "runtime/task_queue.hpp"

using namespace curare;
using namespace curare::bench;

namespace {

// ---- Part 1: A/B scheduler microbenchmark ---------------------------------

enum class Shape { kHandoff, kSpawnChain };

/// The work-stealing queue wants to know how many threads will touch
/// it (one lane each; +1 covers the main thread seeding the handoff
/// shape); the other impls take sites only.
template <typename Q>
std::unique_ptr<Q> make_queue(std::size_t sites, std::size_t threads) {
  if constexpr (std::is_same_v<Q, runtime::WorkStealingTaskQueues>) {
    return std::make_unique<Q>(sites, threads + 1);
  } else {
    return std::make_unique<Q>(sites);
  }
}

/// Live chains per shape: handoff saturates every server; spawn_chain
/// runs the paper's saturation regime — more servers than spawnable
/// work (§4.1: a recursion spawns one successor per invocation, so
/// chain parallelism is set by the program, not the server count).
std::size_t chains_for(Shape shape, std::size_t threads) {
  return shape == Shape::kHandoff ? threads
                                  : std::max<std::size_t>(1, threads / 2);
}

/// One run: `chains` live chains and a shared budget; every pop
/// decrements it and re-enqueues while at least `chains` operations
/// remain, so exactly `total_ops` tasks flow through the queue and the
/// last `chains` pops let their chains die (the final one closes the
/// queues). handoff seeds all chains at site 0 from the main thread
/// and hops sites; spawn_chain seeds chain t from worker t and stays
/// on its site. Returns wall-clock seconds.
template <typename Q>
double run_shape(Shape shape, std::size_t threads, std::size_t sites,
                 std::size_t total_ops, std::size_t batch) {
  auto qp = make_queue<Q>(sites, threads);
  Q& q = *qp;
  const std::size_t chains = chains_for(shape, threads);
  std::atomic<std::int64_t> budget{static_cast<std::int64_t>(total_ops)};
  if (shape == Shape::kHandoff) {
    for (std::size_t t = 0; t < chains; ++t)
      q.push(0, runtime::TaskArgs{sexpr::Value::fixnum(0)});
  }

  auto handle = [&](std::size_t site) {
    const std::int64_t left =
        budget.fetch_sub(1, std::memory_order_relaxed) - 1;
    if (left >= static_cast<std::int64_t>(chains)) {
      const std::size_t next =
          shape == Shape::kHandoff ? (site + 1) % sites : site;
      q.push(next, runtime::TaskArgs{sexpr::Value::fixnum(left)});
    } else if (left == 0) {
      q.close();
    }
  };

  std::vector<std::thread> ws;
  ws.reserve(threads);
  const double secs = time_s([&] {
    for (std::size_t t = 0; t < threads; ++t) {
      ws.emplace_back([&, t] {
        if (shape == Shape::kSpawnChain && t < chains) {
          q.push(t % sites,
                 runtime::TaskArgs{sexpr::Value::fixnum(
                     static_cast<std::int64_t>(t))});
        }
        if constexpr (requires(std::vector<runtime::TaskArgs>& v) {
                        q.pop_some(v, batch, nullptr);
                      }) {
          if (batch > 1) {
            std::vector<runtime::TaskArgs> buf;
            buf.reserve(batch);
            std::size_t site = 0;
            while (q.pop_some(buf, batch, &site) != 0) {
              for (std::size_t i = 0; i < buf.size(); ++i) handle(site);
              buf.clear();
            }
            return;
          }
        }
        std::size_t site = 0;
        while (q.pop(&site)) handle(site);
      });
    }
    for (auto& w : ws) w.join();
  });
  return secs;
}

struct AbRow {
  const char* impl;
  const char* workload;
  std::size_t threads, chains, sites, batch, ops;
  double secs, mops;
};

template <typename Q>
AbRow measure(const char* impl, Shape shape, std::size_t threads,
              std::size_t sites, std::size_t total_ops, std::size_t batch,
              int reps) {
  double best = 1e9;
  for (int r = 0; r < reps; ++r)
    best = std::min(best,
                    run_shape<Q>(shape, threads, sites, total_ops, batch));
  return AbRow{impl,
               shape == Shape::kHandoff ? "handoff" : "spawn_chain",
               threads,
               chains_for(shape, threads),
               sites,
               batch,
               total_ops,
               best,
               static_cast<double>(total_ops) / best / 1e6};
}

void emit_json(std::FILE* js, const AbRow& r) {
  if (js == nullptr) return;
  std::fprintf(js,
               "{\"bench\":\"queue_ab\",\"impl\":\"%s\","
               "\"workload\":\"%s\",\"threads\":%zu,\"chains\":%zu,"
               "\"sites\":%zu,\"batch\":%zu,\"ops\":%zu,\"secs\":%.6f,"
               "\"mops\":%.3f}\n",
               r.impl, r.workload, r.threads, r.chains, r.sites, r.batch,
               r.ops, r.secs, r.mops);
}

/// ns per {fetch_add, fetch_sub} pair on one shared atomic word — the
/// sharded scheduler's entire serialized section per push+pop pair
/// (its ring cursors live on other cache lines and pipeline with it).
double measure_rmw_pair_ns(std::size_t iters) {
  std::atomic<std::uint64_t> w{0};
  const double secs = time_s([&] {
    for (std::size_t i = 0; i < iters; ++i) {
      w.fetch_add(1, std::memory_order_seq_cst);
      w.fetch_sub(1, std::memory_order_seq_cst);
    }
  });
  g_spin_sink.fetch_add(w.load(), std::memory_order_relaxed);
  return secs / static_cast<double>(iters) * 1e9;
}

void run_ab(std::FILE* js) {
  const bool smoke = smoke_mode();
  const std::size_t total_ops = smoke ? 4'000 : 400'000;
  const int reps = smoke ? 1 : 5;
  const unsigned cores = std::max(1u, std::thread::hardware_concurrency());

  std::printf("A/B: scheduler throughput (no body work), %u core(s)\n",
              cores);
  std::printf("ops=%zu per cell, best of %d; Mops = million push+pop "
              "pairs/sec\n",
              total_ops, reps);

  double mutex_pair_ns = 0;  // threads=1, sites=1, handoff cell
  double shard_pair_ns = 0;
  double ws_pair_ns = 0;
  double ws8_spawn = 0;  // acceptance cell: ws vs mutex, 8 thr, spawn
  double mutex8_spawn = 0;
  for (Shape shape : {Shape::kHandoff, Shape::kSpawnChain}) {
    const char* wname =
        shape == Shape::kHandoff ? "handoff" : "spawn_chain";
    std::printf("\nworkload: %s\n", wname);
    std::printf("%7s %6s | %11s %11s %11s %8s | %11s\n", "threads",
                "sites", "mutex Mops", "shard Mops", "ws Mops",
                "ws/mutex", "ws b=8");
    for (std::size_t sites : {std::size_t{1}, std::size_t{4}}) {
      for (std::size_t threads : {std::size_t{1}, std::size_t{2},
                                  std::size_t{4}, std::size_t{8}}) {
        AbRow a = measure<runtime::SingleMutexTaskQueues>(
            "mutex", shape, threads, sites, total_ops, 1, reps);
        AbRow b = measure<runtime::ShardedTaskQueues>(
            "sharded", shape, threads, sites, total_ops, 1, reps);
        AbRow c = measure<runtime::WorkStealingTaskQueues>(
            "ws", shape, threads, sites, total_ops, 1, reps);
        AbRow d = measure<runtime::WorkStealingTaskQueues>(
            "ws", shape, threads, sites, total_ops, 8, reps);
        emit_json(js, a);
        emit_json(js, b);
        emit_json(js, c);
        emit_json(js, d);
        if (shape == Shape::kHandoff && threads == 1 && sites == 1) {
          mutex_pair_ns = a.secs / static_cast<double>(a.ops) * 1e9;
          shard_pair_ns = b.secs / static_cast<double>(b.ops) * 1e9;
          ws_pair_ns = c.secs / static_cast<double>(c.ops) * 1e9;
        }
        if (shape == Shape::kSpawnChain && threads == 8 && sites == 1) {
          mutex8_spawn = a.mops;
          ws8_spawn = c.mops;
        }
        std::printf("%7zu %6zu | %11.2f %11.2f %11.2f %7.2fx | %11.2f\n",
                    threads, sites, a.mops, b.mops, c.mops,
                    c.mops / a.mops, d.mops);
      }
    }
  }
  std::printf("\nacceptance (ROADMAP item 2): ws vs mutex at 8 threads "
              "(4 chains), spawn_chain,\n1 site:  %.2f vs %.2f Mops = "
              "%.2fx (bar: >= 1.5x; tools/bench_check.py gates\nit in "
              "CI)\n",
              ws8_spawn, mutex8_spawn, ws8_spawn / mutex8_spawn);
  std::printf("\nwall-clock caveat: with %u core(s) the threads above are "
              "time-sliced, so the\nmutex queue's lock is (almost) never "
              "contended — the convoy it forms on a real\nmultiprocessor "
              "does not show in these columns.\n\n",
              cores);

  // §4.1 bottleneck projection. The paper's condition: servers scale
  // until the serialized queue section saturates. For the mutex queue
  // the whole push+pop pair runs under one lock (its critical section
  // IS the measured single-thread pair cost); for the retired sharded
  // queue the packed depth/hint word's two RMWs serialize every pair.
  // The work-stealing queue keeps *no* cross-server serialized section
  // on the owner path — its only lock-prefixed instruction is a CAS on
  // the owner's own lane's consumer cursor — so its projected scaling
  // is bounded by steals, not by a shared line.
  const double shard_serial_ns =
      measure_rmw_pair_ns(smoke ? 100'000 : 4'000'000);
  const double projected = mutex_pair_ns / shard_serial_ns;
  std::printf("saturation projection (S=8, body→0): mutex serialized "
              "%.1f ns/pair; the\nretired sharded impl still serialized "
              "its depth word's two RMWs, %.1f ns/pair\n(measured full "
              "pairs: sharded %.1f ns, ws %.1f ns). The ws owner path\n"
              "shares no line at all, so even the sharded floor's %.1fx "
              "over the mutex\nqueue is a lower bound on its saturated "
              "advantage.\n\n",
              mutex_pair_ns, shard_serial_ns, shard_pair_ns, ws_pair_ns,
              projected);
  if (js != nullptr) {
    std::fprintf(js,
                 "{\"bench\":\"queue_model\",\"S\":8,"
                 "\"mutex_serial_ns\":%.1f,\"shard_serial_ns\":%.1f,"
                 "\"shard_pair_ns\":%.1f,\"ws_pair_ns\":%.1f,"
                 "\"projected_speedup\":%.2f}\n",
                 mutex_pair_ns, shard_serial_ns, shard_pair_ns,
                 ws_pair_ns, projected);
  }
}

// ---- Part 2: grain sweep (original E7) ------------------------------------

double run_wallclock(Curare& cur, int grain, int depth,
                     std::size_t servers) {
  cur.interp().eval_program(
      "(defun grain$cri (n g)"
      "  (when (> n 0)"
      "    (%cri-enqueue 0 (- n 1) g)"
      "    (spin g)))");
  sexpr::Value fn = cur.interp().global("grain$cri");
  return time_s([&] {
    cur.runtime().run_cri(fn, 1, servers,
                          {sexpr::Value::fixnum(depth),
                           sexpr::Value::fixnum(grain)});
  });
}

void run_grain_sweep() {
  sexpr::Ctx ctx;
  Curare cur(ctx, 0);
  install_spin(cur.interp());

  const unsigned cores = std::max(1u, std::thread::hardware_concurrency());
  const std::size_t host_servers = std::min<std::size_t>(cores, 8);
  const std::size_t sim_servers = 16;
  const double dequeue_cost = 1.0;  // simulated queue service time

  std::printf("E7: central-queue bottleneck vs invocation grain "
              "(paper §4.1)\n");
  std::printf("simulated: S=%zu, dequeue cost 1 unit, head 1, tail = "
              "grain−1; host: S=%zu on %u core(s)\n\n",
              sim_servers, host_servers, cores);
  std::printf("%12s | %12s %12s | %8s %12s %12s\n", "grain/deq",
              "sim speedup", "sim eff", "depth", "host T(S)ms",
              "host eff");

  const long total_work = smoke_mode() ? 512L * 8 : 512L * 400;
  const int reps = smoke_mode() ? 1 : 2;
  for (int grain : {2, 8, 32, 128, 512}) {
    runtime::SimParams p;
    p.head_cost = 1;
    p.tail_cost = grain - 1;
    p.depth = 512;
    p.servers = sim_servers;
    p.dequeue_cost = dequeue_cost;
    const double sp = runtime::simulate_cri(p).speedup_vs_one(p);
    const double eff = sp / static_cast<double>(sim_servers);

    const int depth = static_cast<int>(total_work / grain);
    run_wallclock(cur, grain, depth, 1);  // warm-up
    double t1 = 1e9;
    double ts = 1e9;
    for (int rep = 0; rep < reps; ++rep) {
      t1 = std::min(t1, run_wallclock(cur, grain, depth, 1));
      ts = std::min(ts, run_wallclock(cur, grain, depth, host_servers));
    }
    std::printf("%12d | %12.2f %11.0f%% | %8d %12.2f %11.0f%%\n", grain,
                sp, 100 * eff, depth, ts * 1e3,
                100 * (t1 / ts) / static_cast<double>(host_servers));
  }
  std::printf("\nshape check: efficiency climbs with grain; at tiny "
              "grains the serialized\ndequeue dominates (sim speedup → "
              "grain/dequeue_cost), the paper's condition.\n");
}

}  // namespace

int main() {
  // Truncate the JSON-lines result file; bench_server_scaling appends.
  std::FILE* js = std::fopen(bench_json_path(), "w");
  run_ab(js);
  if (js != nullptr) std::fclose(js);
  run_grain_sweep();
  return 0;
}
