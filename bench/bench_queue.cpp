// E7 (paper §4.1, Figure 9): the central task queue as a bottleneck.
//
// "This bottleneck will not adversely affect performance if the time
// spent executing an invocation is much longer than the time spent
// waiting for the queue."
//
// Primary series: simulated parallel efficiency while sweeping the
// invocation-grain / dequeue-cost ratio. Secondary: the real pool with
// spin bodies of varying grain (host-core limited).
#include <algorithm>
#include <cstdio>
#include <thread>

#include "bench_util.hpp"
#include "runtime/sim.hpp"

using namespace curare;
using namespace curare::bench;

namespace {

double run_wallclock(Curare& cur, int grain, int depth,
                     std::size_t servers) {
  cur.interp().eval_program(
      "(defun grain$cri (n g)"
      "  (when (> n 0)"
      "    (%cri-enqueue 0 (- n 1) g)"
      "    (spin g)))");
  sexpr::Value fn = cur.interp().global("grain$cri");
  return time_s([&] {
    cur.runtime().run_cri(fn, 1, servers,
                          {sexpr::Value::fixnum(depth),
                           sexpr::Value::fixnum(grain)});
  });
}

}  // namespace

int main() {
  sexpr::Ctx ctx;
  Curare cur(ctx, 0);
  install_spin(cur.interp());

  const unsigned cores = std::max(1u, std::thread::hardware_concurrency());
  const std::size_t host_servers = std::min<std::size_t>(cores, 8);
  const std::size_t sim_servers = 16;
  const double dequeue_cost = 1.0;  // simulated queue service time

  std::printf("E7: central-queue bottleneck vs invocation grain "
              "(paper §4.1)\n");
  std::printf("simulated: S=%zu, dequeue cost 1 unit, head 1, tail = "
              "grain−1; host: S=%zu on %u core(s)\n\n",
              sim_servers, host_servers, cores);
  std::printf("%12s | %12s %12s | %8s %12s %12s\n", "grain/deq",
              "sim speedup", "sim eff", "depth", "host T(S)ms",
              "host eff");

  const long total_work = 512L * 400;
  for (int grain : {2, 8, 32, 128, 512}) {
    runtime::SimParams p;
    p.head_cost = 1;
    p.tail_cost = grain - 1;
    p.depth = 512;
    p.servers = sim_servers;
    p.dequeue_cost = dequeue_cost;
    const double sp = runtime::simulate_cri(p).speedup_vs_one(p);
    const double eff = sp / static_cast<double>(sim_servers);

    const int depth = static_cast<int>(total_work / grain);
    run_wallclock(cur, grain, depth, 1);  // warm-up
    double t1 = 1e9;
    double ts = 1e9;
    for (int rep = 0; rep < 2; ++rep) {
      t1 = std::min(t1, run_wallclock(cur, grain, depth, 1));
      ts = std::min(ts, run_wallclock(cur, grain, depth, host_servers));
    }
    std::printf("%12d | %12.2f %11.0f%% | %8d %12.2f %11.0f%%\n", grain,
                sp, 100 * eff, depth, ts * 1e3,
                100 * (t1 / ts) / static_cast<double>(host_servers));
  }
  std::printf("\nshape check: efficiency climbs with grain; at tiny "
              "grains the serialized\ndequeue dominates (sim speedup → "
              "grain/dequeue_cost), the paper's condition.\n");
  return 0;
}
