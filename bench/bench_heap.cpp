// Heap allocator A/B + GC pause distribution (DESIGN.md §9).
//
// Part 1 (A/B): cons-allocation throughput, the seed's mutexed-shard
// heap (copied below verbatim in spirit: one unique_ptr push under a
// per-shard mutex per allocation) vs the gc module's per-thread bump
// allocator. Each worker builds cons chains as fast as it can; the
// allocator IS the workload. The bump side runs with the collection
// threshold disabled so both sides pay allocation cost only.
//
// Like bench_queue's saturation projection, the serialized sections are
// compared directly: the shard heap serializes every allocation through
// a mutex'd vector push; the bump heap touches shared state only on
// block refill, once per ~kBlockSize/cell_size allocations.
//
// Part 1.5: quota-overhead column. The same single-thread allocation
// loop with the per-request memory accounting armed (DESIGN.md §14);
// the on/off ratio is a bench_check gate — governance may not cost
// the fast path more than 3%.
//
// Part 2: GC pause distribution. A fixed survivor set stays rooted
// while garbage cons chains churn through a low collection threshold;
// every pause is recorded via the pause callback and reported as
// min/p50/p95/max.
//
// Results go to BENCH_heap.json (one JSON object per line; the file is
// truncated on each run).
#include <algorithm>
#include <array>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <string_view>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "gc/gc.hpp"
#include "obs/request.hpp"
#include "sexpr/heap.hpp"
#include "sexpr/value.hpp"

using namespace curare;
using namespace curare::bench;

namespace {

// ---- Part 1: A/B allocator microbenchmark ---------------------------------

/// The seed heap's allocation path (pre-GC design): hash the thread id
/// to a shard, lock it, push a unique_ptr. Kept here as the baseline so
/// the comparison survives the real Heap's evolution.
class SeedShardHeap {
 public:
  sexpr::Value cons(sexpr::Value car, sexpr::Value cdr) {
    auto owned = std::make_unique<sexpr::Cons>(car, cdr);
    sexpr::Cons* raw = owned.get();
    Shard& s = shard_for_this_thread();
    {
      std::lock_guard<std::mutex> g(s.mu);
      s.objects.push_back(std::move(owned));
    }
    return sexpr::Value::object(raw);
  }

 private:
  static constexpr std::size_t kShards = 64;
  struct Shard {
    mutable std::mutex mu;
    std::vector<std::unique_ptr<sexpr::Obj>> objects;
  };
  Shard& shard_for_this_thread() {
    const std::size_t h =
        std::hash<std::thread::id>{}(std::this_thread::get_id());
    return shards_[h % kShards];
  }
  std::array<Shard, kShards> shards_;
};

/// The real heap with automatic collection disabled: pure bump
/// allocation, shared state touched only on block refill.
class BumpHeap {
 public:
  BumpHeap() { heap_.gc().set_threshold(0); }
  sexpr::Value cons(sexpr::Value car, sexpr::Value cdr) {
    return heap_.cons(car, cdr);
  }

 private:
  sexpr::Heap heap_;
};

/// One throughput run: `threads` workers split `total` cons allocations
/// evenly, each building chains of 64 then dropping them (the chain
/// keeps the compiler from eliding the stores; dropping it keeps the
/// working set out of cache effects). Returns wall-clock seconds.
template <typename H>
double run_alloc(std::size_t threads, std::size_t total) {
  H heap;
  const std::size_t per = total / threads;
  std::vector<std::thread> ws;
  ws.reserve(threads);
  const double secs = time_s([&] {
    for (std::size_t t = 0; t < threads; ++t) {
      ws.emplace_back([&heap, per] {
        sexpr::Value chain = sexpr::Value::nil();
        for (std::size_t i = 0; i < per; ++i) {
          chain = heap.cons(
              sexpr::Value::fixnum(static_cast<std::int64_t>(i)), chain);
          if ((i & 63) == 63) chain = sexpr::Value::nil();
        }
        g_spin_sink.fetch_add(chain.is_object() ? 1 : 0,
                              std::memory_order_relaxed);
      });
    }
    for (auto& w : ws) w.join();
  });
  return secs;
}

struct AbRow {
  const char* impl;
  std::size_t threads, conses;
  double secs, mcons;
};

template <typename H>
AbRow measure(const char* impl, std::size_t threads, std::size_t total,
              int reps) {
  double best = 1e9;
  for (int r = 0; r < reps; ++r)
    best = std::min(best, run_alloc<H>(threads, total));
  return AbRow{impl, threads, total, best,
               static_cast<double>(total) / best / 1e6};
}

void emit_json(std::FILE* js, const AbRow& r) {
  if (js == nullptr) return;
  std::fprintf(js,
               "{\"bench\":\"heap_ab\",\"impl\":\"%s\",\"threads\":%zu,"
               "\"conses\":%zu,\"secs\":%.6f,\"mcons\":%.3f}\n",
               r.impl, r.threads, r.conses, r.secs, r.mcons);
}

void run_ab(std::FILE* js) {
  const bool smoke = smoke_mode();
  const std::size_t total = smoke ? 40'000 : 1'000'000;
  const int reps = smoke ? 1 : 3;
  const unsigned cores = std::max(1u, std::thread::hardware_concurrency());

  std::printf("A/B: cons allocation throughput, seed mutexed-shard heap "
              "vs per-thread bump, %u core(s)\n",
              cores);
  std::printf("conses=%zu per cell, best of %d; Mcons = million "
              "allocations/sec (bump: GC threshold 0)\n\n",
              total, reps);
  std::printf("%7s | %12s %12s %8s\n", "threads", "shard Mcons",
              "bump Mcons", "speedup");

  double shard_1t_ns = 0;
  double bump_1t_ns = 0;
  for (std::size_t threads : {std::size_t{1}, std::size_t{2},
                              std::size_t{4}, std::size_t{8}}) {
    AbRow a = measure<SeedShardHeap>("shard", threads, total, reps);
    AbRow b = measure<BumpHeap>("bump", threads, total, reps);
    emit_json(js, a);
    emit_json(js, b);
    if (threads == 1) {
      shard_1t_ns = a.secs / static_cast<double>(a.conses) * 1e9;
      bump_1t_ns = b.secs / static_cast<double>(b.conses) * 1e9;
    }
    std::printf("%7zu | %12.2f %12.2f %7.2fx\n", threads, a.mcons,
                b.mcons, b.mcons / a.mcons);
  }
  std::printf("\nwall-clock caveat: with %u core(s) extra threads are "
              "time-sliced, so shard-mutex\nconvoys may not show; the "
              "serialized-section comparison below is load-independent."
              "\n\n",
              cores);

  // Serialized-section comparison. The shard heap's critical section is
  // the whole lock+push (its single-thread allocation cost bounds it
  // from above; malloc runs outside the lock, so measure the lock+push
  // pair directly on one uncontended shard). The bump heap serializes
  // only the refill, once per cells-per-block allocations.
  const std::size_t iters = smoke ? 50'000 : 2'000'000;
  std::mutex mu;
  std::vector<std::unique_ptr<sexpr::Obj>> vec;
  vec.reserve(iters);
  const double lock_secs = time_s([&] {
    for (std::size_t i = 0; i < iters; ++i) {
      std::lock_guard<std::mutex> g(mu);
      vec.emplace_back(nullptr);
    }
  });
  const double shard_serial_ns =
      lock_secs / static_cast<double>(iters) * 1e9;
  const std::size_t cell =
      (sizeof(gc::GcHeader) + sizeof(sexpr::Cons) + gc::kCellAlign - 1) &
      ~(gc::kCellAlign - 1);
  const double cells_per_block =
      static_cast<double>(gc::kBlockSize) / static_cast<double>(cell);
  const double bump_serial_ns = shard_serial_ns / cells_per_block;
  std::printf("serialized section per cons: shard lock+push %.1f ns vs "
              "bump refill %.3f ns amortized\n(one mutex acquisition per "
              "%.0f-cons block) → %.0fx less serialized work; "
              "single-thread\nfull alloc %.1f ns (shard) vs %.1f ns "
              "(bump).\n\n",
              shard_serial_ns, bump_serial_ns, cells_per_block,
              shard_serial_ns / bump_serial_ns, shard_1t_ns, bump_1t_ns);
  if (js != nullptr) {
    std::fprintf(js,
                 "{\"bench\":\"heap_model\",\"shard_serial_ns\":%.1f,"
                 "\"bump_serial_ns\":%.3f,\"cells_per_block\":%.0f,"
                 "\"shard_1t_ns\":%.1f,\"bump_1t_ns\":%.1f}\n",
                 shard_serial_ns, bump_serial_ns, cells_per_block,
                 shard_1t_ns, bump_1t_ns);
  }
}

// ---- Part 1.5: per-request accounting overhead ----------------------------

/// Single-thread cons throughput with the request-scoped memory
/// accounting armed: a RequestContext with an effectively unlimited
/// quota is installed, so every allocation pays charge_allocation's
/// load + fetch_add but never throws. Compared against the plain run
/// (no request in scope — the one-thread-local-load fast path).
double run_alloc_quota(std::size_t total) {
  BumpHeap heap;
  auto rc = std::make_shared<obs::RequestContext>();
  rc->mem_quota = UINT64_MAX / 2;  // armed, never breached
  const double secs = time_s([&] {
    std::thread w([&heap, &rc, total] {
      obs::RequestScope scope(rc);
      sexpr::Value chain = sexpr::Value::nil();
      for (std::size_t i = 0; i < total; ++i) {
        chain = heap.cons(
            sexpr::Value::fixnum(static_cast<std::int64_t>(i)), chain);
        if ((i & 63) == 63) chain = sexpr::Value::nil();
      }
      g_spin_sink.fetch_add(chain.is_object() ? 1 : 0,
                            std::memory_order_relaxed);
    });
    w.join();
  });
  return secs;
}

/// Quota-overhead column: the acceptance bar (DESIGN.md §14, enforced
/// by tools/bench_check.py) is on/off >= 0.97 — governance may not
/// cost the allocator fast path more than 3% single-threaded.
void run_quota_overhead(std::FILE* js) {
  const bool smoke = smoke_mode();
  const std::size_t total = smoke ? 40'000 : 1'000'000;
  // Best-of-5: the ratio of two separately-measured single-thread
  // runs is the noisiest number in this file, and it feeds a gate.
  const int reps = smoke ? 1 : 5;

  double off = 1e9, on = 1e9;
  for (int r = 0; r < reps; ++r) {
    off = std::min(off, run_alloc<BumpHeap>(1, total));
    on = std::min(on, run_alloc_quota(total));
  }
  const double mcons_off = static_cast<double>(total) / off / 1e6;
  const double mcons_on = static_cast<double>(total) / on / 1e6;
  const double ratio = mcons_on / mcons_off;
  std::printf("quota accounting overhead (1 thread, %zu conses, best of "
              "%d):\noff %.2f Mcons, on %.2f Mcons → ratio %.3f "
              "(acceptance: >= 0.97)\n\n",
              total, reps, mcons_off, mcons_on, ratio);
  if (js != nullptr) {
    std::fprintf(js,
                 "{\"bench\":\"heap_quota\",\"threads\":1,\"conses\":%zu,"
                 "\"mcons_off\":%.3f,\"mcons_on\":%.3f,"
                 "\"overhead_ratio\":%.4f}\n",
                 total, mcons_off, mcons_on, ratio);
  }
}

// ---- Part 2: GC pause distribution ----------------------------------------

void run_pause_distribution(std::FILE* js) {
  const bool smoke = smoke_mode();
  const std::size_t garbage = smoke ? 200'000 : 4'000'000;
  const std::size_t survivors = smoke ? 5'000 : 50'000;
  const std::uint64_t threshold = smoke ? 256 * 1024 : 4 * 1024 * 1024;

  sexpr::Heap heap;
  gc::GcHeap& gc = heap.gc();
  gc.set_threshold(threshold);

  std::mutex pauses_mu;
  std::vector<std::uint64_t> pauses;
  gc.set_pause_callback([&](const gc::GcPause& p) {
    std::lock_guard<std::mutex> g(pauses_mu);
    pauses.push_back(p.pause_ns);
  });

  // A rooted survivor chain gives marking real work each cycle.
  gc::RootScope keep(gc);
  {
    gc::MutatorScope ms(gc);
    sexpr::Value chain = sexpr::Value::nil();
    for (std::size_t i = 0; i < survivors; ++i)
      chain = heap.cons(sexpr::Value::fixnum(1), chain);
    keep.add(chain);
  }

  // Churn garbage chains; every 1024 conses is a quiescent point.
  for (std::size_t i = 0; i < garbage; i += 1024) {
    {
      gc::MutatorScope ms(gc);
      sexpr::Value chain = sexpr::Value::nil();
      for (std::size_t j = 0; j < 1024; ++j)
        chain = heap.cons(sexpr::Value::fixnum(0), chain);
      g_spin_sink.fetch_add(chain.is_object() ? 1 : 0,
                            std::memory_order_relaxed);
    }
    gc.maybe_collect();
  }
  gc.collect("bench-final");
  gc.set_pause_callback(nullptr);

  std::sort(pauses.begin(), pauses.end());
  const gc::GcStats st = gc.stats();
  auto pct = [&](double q) -> std::uint64_t {
    if (pauses.empty()) return 0;
    const auto idx = static_cast<std::size_t>(
        q * static_cast<double>(pauses.size() - 1));
    return pauses[idx];
  };
  std::printf("GC pause distribution: %zu collections over %zu garbage "
              "conses (threshold %llu KiB,\n%zu-cons rooted survivor "
              "set)\n",
              pauses.size(), garbage,
              static_cast<unsigned long long>(threshold / 1024),
              survivors);
  std::printf("pause us: min %.1f  p50 %.1f  p95 %.1f  max %.1f | "
              "reclaimed %llu objects / %llu KiB total\n\n",
              static_cast<double>(pauses.empty() ? 0 : pauses.front()) /
                  1e3,
              static_cast<double>(pct(0.50)) / 1e3,
              static_cast<double>(pct(0.95)) / 1e3,
              static_cast<double>(pauses.empty() ? 0 : pauses.back()) /
                  1e3,
              static_cast<unsigned long long>(st.reclaimed_objects),
              static_cast<unsigned long long>(st.reclaimed_bytes / 1024));
  if (js != nullptr) {
    std::fprintf(
        js,
        "{\"bench\":\"gc_pause\",\"collections\":%zu,"
        "\"garbage_conses\":%zu,\"survivors\":%zu,"
        "\"threshold_bytes\":%llu,\"min_ns\":%llu,\"p50_ns\":%llu,"
        "\"p95_ns\":%llu,\"max_ns\":%llu,\"reclaimed_objects\":%llu,"
        "\"reclaimed_bytes\":%llu}\n",
        pauses.size(), garbage, survivors,
        static_cast<unsigned long long>(threshold),
        static_cast<unsigned long long>(pauses.empty() ? 0
                                                       : pauses.front()),
        static_cast<unsigned long long>(pct(0.50)),
        static_cast<unsigned long long>(pct(0.95)),
        static_cast<unsigned long long>(pauses.empty() ? 0
                                                       : pauses.back()),
        static_cast<unsigned long long>(st.reclaimed_objects),
        static_cast<unsigned long long>(st.reclaimed_bytes));
  }
}

}  // namespace

int main() {
  const char* path = std::getenv("CURARE_BENCH_HEAP_JSON");
  if (path == nullptr || *path == '\0') path = "BENCH_heap.json";
  std::FILE* js = std::fopen(path, "w");
  run_ab(js);
  run_quota_overhead(js);
  run_pause_distribution(js);
  if (js != nullptr) std::fclose(js);
  return 0;
}
