// E4 + E13 (paper §2): conflict-detection micro-benchmarks
// (google-benchmark). The analyzer must be cheap enough to run over
// whole programs: these measure extraction, NFA construction, and the
// prefix queries on the paper's own examples and on generated functions
// of growing size.
#include <benchmark/benchmark.h>

#include "analysis/conflict.hpp"
#include "analysis/extract.hpp"
#include "analysis/headtail.hpp"
#include "sexpr/reader.hpp"

using namespace curare;

namespace {

const char* kFig5 =
    "(defun f (l)"
    "  (cond ((null l) nil)"
    "        ((null (cdr l)) (f (cdr l)))"
    "        (t (setf (cadr l) (+ (car l) (cadr l)))"
    "           (f (cdr l)))))";

void BM_ExtractFig5(benchmark::State& state) {
  sexpr::Ctx ctx;
  decl::Declarations decls(ctx);
  sexpr::Value form = sexpr::read_one(ctx, kFig5);
  for (auto _ : state) {
    auto info = analysis::extract_function(ctx, decls, form);
    benchmark::DoNotOptimize(info.refs.size());
  }
}
BENCHMARK(BM_ExtractFig5);

void BM_DetectConflictsFig5(benchmark::State& state) {
  sexpr::Ctx ctx;
  decl::Declarations decls(ctx);
  auto info = analysis::extract_function(ctx, decls,
                                         sexpr::read_one(ctx, kFig5));
  for (auto _ : state) {
    auto report = analysis::detect_conflicts(ctx, decls, info);
    benchmark::DoNotOptimize(report.conflicts.size());
  }
}
BENCHMARK(BM_DetectConflictsFig5);

void BM_HeadTailFig5(benchmark::State& state) {
  sexpr::Ctx ctx;
  decl::Declarations decls(ctx);
  auto info = analysis::extract_function(ctx, decls,
                                         sexpr::read_one(ctx, kFig5));
  for (auto _ : state) {
    auto ht = analysis::partition_head_tail(ctx, info);
    benchmark::DoNotOptimize(ht.head_size);
  }
}
BENCHMARK(BM_HeadTailFig5);

/// Generated function with k accessor statements — analysis scaling.
std::string generated_fn(int k) {
  std::string body;
  for (int i = 0; i < k; ++i) {
    body += "(setf (nth " + std::to_string(i % 7) +
            " l) (nth " + std::to_string((i + 3) % 7) + " l))";
  }
  return "(defun g (l) (when l " + body + " (g (cdr l))))";
}

void BM_DetectConflictsGenerated(benchmark::State& state) {
  sexpr::Ctx ctx;
  decl::Declarations decls(ctx);
  auto info = analysis::extract_function(
      ctx, decls,
      sexpr::read_one(ctx, generated_fn(static_cast<int>(state.range(0)))));
  for (auto _ : state) {
    auto report = analysis::detect_conflicts(ctx, decls, info);
    benchmark::DoNotOptimize(report.conflicts.size());
  }
  state.counters["refs"] = static_cast<double>(info.refs.size());
}
BENCHMARK(BM_DetectConflictsGenerated)->Arg(2)->Arg(8)->Arg(32);

void BM_NfaPrefixQuery(benchmark::State& state) {
  sexpr::Ctx ctx;
  analysis::Field fcdr = ctx.symbols.intern("cdr");
  analysis::Field fcar = ctx.symbols.intern("car");
  auto step = analysis::PathRegex::literal(fcdr);
  auto rd = analysis::PathRegex::concat(
      analysis::PathRegex::power(step,
                                 static_cast<std::size_t>(state.range(0))),
      analysis::PathRegex::word(analysis::FieldPath({fcar})));
  analysis::Nfa nfa(rd);
  analysis::FieldPath probe({fcdr, fcar});
  for (auto _ : state) {
    benchmark::DoNotOptimize(nfa.word_is_prefix_of_language(probe));
  }
  state.counters["nfa_states"] = static_cast<double>(nfa.state_count());
}
BENCHMARK(BM_NfaPrefixQuery)->Arg(1)->Arg(8)->Arg(64);

void BM_ReaderWholeProgram(benchmark::State& state) {
  std::string program;
  for (int i = 0; i < 50; ++i) program += kFig5;
  for (auto _ : state) {
    sexpr::Ctx ctx;
    auto forms = sexpr::read_all(ctx, program);
    benchmark::DoNotOptimize(forms.size());
  }
}
BENCHMARK(BM_ReaderWholeProgram);

}  // namespace

BENCHMARK_MAIN();
