// E8 (paper §4.1, Figure 10): T(S) = (⌈d/S⌉−1)(h+t) + (S·h+t), optimum
// S* = sqrt(d(h+t)/h) clamped by c_f = (h+t)/h.
//
// Primary series: simulated T(S) against the closed-form model across a
// server sweep — the two coincide exactly at S = c_f and closely below
// it; beyond c_f extra servers are wasted (the clamp the paper
// prescribes). Secondary: wall-clock on the host pool.
//
// Besides the human-readable table, each sweep point emits one
// machine-readable JSON line (prefix "JSON ") with the measured
// CriStats aggregates, so plots/regressions can be driven from the
// bench output directly. The same records are appended to
// BENCH_scheduler.json (bench_queue truncates it; run that first).
#include <algorithm>
#include <cstdio>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "runtime/scheduler.hpp"
#include "runtime/sim.hpp"

using namespace curare;
using namespace curare::bench;

namespace {

double run_wallclock(Curare& cur, int h, int t, int depth,
                     std::size_t servers) {
  cur.interp().eval_program(
      "(defun scale$cri (n hh tt)"
      "  (when (> n 0)"
      "    (spin hh)"
      "    (%cri-enqueue 0 (- n 1) hh tt)"
      "    (spin tt)))");
  sexpr::Value fn = cur.interp().global("scale$cri");
  return time_s([&] {
    cur.runtime().run_cri(fn, 1, servers,
                          {sexpr::Value::fixnum(depth),
                           sexpr::Value::fixnum(h),
                           sexpr::Value::fixnum(t)});
  });
}

}  // namespace

int main() {
  sexpr::Ctx ctx;
  Curare cur(ctx, 0);
  install_spin(cur.interp());

  const int h = 20;
  const int t = 380;  // c_f = 20
  const int depth = 512;
  const unsigned cores = std::max(1u, std::thread::hardware_concurrency());

  const double s_star = runtime::optimal_servers_continuous(depth, h, t);
  const double cf = runtime::max_concurrency(h, t, std::nullopt);
  std::printf("E8: server scaling vs the Figure 10 model\n");
  std::printf("d=%d, h=%d, t=%d  →  S* = %.1f, c_f = (h+t)/h = %.1f, "
              "choose min = %zu (host: %u core(s))\n\n",
              depth, h, t, s_star, cf,
              runtime::choose_servers(depth, h, t, std::nullopt, 1024),
              cores);
  std::printf("%6s %14s %14s %10s | %14s\n", "S", "model T(S)",
              "simulated", "ratio", "host ms");

  std::vector<std::size_t> sweep{1, 2, 4, 8, 12, 16, 20, 24, 32, 64};
  if (smoke_mode()) sweep = {1, 4, 16};
  const int reps = smoke_mode() ? 1 : 2;
  std::FILE* js = std::fopen(bench_json_path(), "a");
  run_wallclock(cur, h, t, depth, 1);  // warm-up

  double best_sim = 1e18;
  std::size_t best_s = 1;
  for (std::size_t s : sweep) {
    const double model =
        runtime::predicted_time(static_cast<double>(s), depth, h, t);
    runtime::SimParams p;
    p.head_cost = h;
    p.tail_cost = t;
    p.depth = static_cast<std::size_t>(depth);
    p.servers = s;
    const double sim = runtime::simulate_cri(p).total_time;
    if (sim < best_sim) {
      best_sim = sim;
      best_s = s;
    }
    double wall = 1e9;
    for (int rep = 0; rep < reps; ++rep)
      wall = std::min(wall,
                      run_wallclock(cur, h, t, depth,
                                    std::min<std::size_t>(s, 16)));
    std::printf("%6zu %14.0f %14.0f %10.3f | %14.2f\n", s, model, sim,
                sim / model, wall * 1e3);

    // Machine-readable record for this sweep point (stats are from the
    // last wall-clock rep; the recorder is on but the tracer is off).
    const runtime::CriStats& st = cur.runtime().last_cri_stats();
    const double inv = static_cast<double>(st.invocations);
    char rec[512];
    std::snprintf(
        rec, sizeof rec,
        "{\"bench\":\"server_scaling\",\"S\":%zu,\"d\":%d,"
        "\"h_units\":%d,\"t_units\":%d,\"model_T\":%.1f,\"sim_T\":%.1f,"
        "\"wall_ms\":%.3f,\"invocations\":%llu,"
        "\"head_ns_mean\":%.1f,\"tail_ns_mean\":%.1f,"
        "\"utilization\":%.4f,\"max_queue\":%llu,"
        "\"notify_suppressed\":%llu,\"sleeps\":%llu}",
        s, depth, h, t, model, sim, wall * 1e3,
        static_cast<unsigned long long>(st.invocations),
        inv > 0 ? static_cast<double>(st.head_ns) / inv : 0.0,
        inv > 0 ? static_cast<double>(st.tail_ns) / inv : 0.0,
        st.utilization(),
        static_cast<unsigned long long>(st.max_queue_length),
        static_cast<unsigned long long>(st.queue.notify_suppressed),
        static_cast<unsigned long long>(st.queue.sleeps));
    std::printf("JSON %s\n", rec);
    if (js != nullptr) std::fprintf(js, "%s\n", rec);
  }
  if (js != nullptr) std::fclose(js);

  std::printf("\nsimulated argmin: S = %zu (clamped optimum %zu, "
              "unclamped S* = %.1f)\n",
              best_s,
              runtime::choose_servers(depth, h, t, std::nullopt, 1024),
              s_star);
  std::printf("shape check: simulated T(S) matches the model for "
              "S ≤ c_f (exactly at c_f)\nand flattens beyond — the "
              "paper's instruction to use min(S*, c_f).\n");
  return 0;
}
