// E9 (paper §3.2.1): "The maximum concurrency of f is no more than
// min(d1, d2, … du)" — the conflict distance caps the win.
//
// Primary series: simulated speedup at ample servers with the lock
// constraint "invocation i waits for invocation i−k's unlock", sweeping
// k. Secondary: the real pool running a lock-protected k-ahead writer
// (Curare's lock plan for (setf (nth k l) (car l)) with τ=cdr), whose
// results are checked against the sequential run.
#include <algorithm>
#include <cstdio>
#include <thread>

#include "bench_util.hpp"
#include "runtime/sim.hpp"
#include "sexpr/equal.hpp"

using namespace curare;
using namespace curare::bench;

namespace {

std::string locked_writer_src(int k) {
  const std::string ks = std::to_string(k);
  return "(defun wk$cri (l)"
         "  (%lock l 'car)"
         "  (%lock (nthcdr " + ks + " l) 'car)"
         "  (when (nthcdr " + ks + " l)"
         "    (%cri-enqueue 0 (cdr l))"
         "    (spin 80)"
         "    (setf (nth " + ks + " l) (car l)))"
         "  (%unlock (nthcdr " + ks + " l) 'car)"
         "  (%unlock l 'car))";
}

}  // namespace

int main() {
  const unsigned cores = std::max(1u, std::thread::hardware_concurrency());
  const std::size_t host_servers = std::min<std::size_t>(cores, 8);
  const int list_len = 256;
  const std::size_t sim_servers = 32;

  std::printf("E9: conflict distance caps concurrency (paper §3.2.1)\n");
  std::printf("simulated machine S=%zu (h=1, t=15); host pool S=%zu on "
              "%u core(s), list length %d\n\n",
              sim_servers, host_servers, cores, list_len);
  std::printf("%10s | %12s %8s | %12s %12s %10s %8s\n", "distance k",
              "sim speedup", "cap", "host T(1)ms", "host T(S)ms",
              "host spd", "correct");

  for (int k : {1, 2, 4, 8, 16}) {
    runtime::SimParams p;
    p.head_cost = 1;
    p.tail_cost = 15;
    p.depth = 512;
    p.servers = sim_servers;
    p.conflict_distance = static_cast<std::size_t>(k);
    const double sim_speedup = runtime::simulate_cri(p).speedup_vs_one(p);

    sexpr::Ctx ctx;
    Curare cur(ctx, 0);
    install_spin(cur.interp());
    cur.interp().eval_program(locked_writer_src(k));
    sexpr::Value fn = cur.interp().global("wk$cri");
    auto make = [&] { return sexpr::read_one(ctx, list_src(list_len)); };

    // Correctness: compare the parallel final list against the serial
    // (S=1) run — invocation-order semantics.
    sexpr::Value ref = make();
    cur.runtime().run_cri(fn, 1, 1, {ref});
    sexpr::Value par = make();
    cur.runtime().run_cri(fn, 1, host_servers, {par});
    const bool ok = sexpr::equal_values(ref, par);

    double t1 = 1e9;
    double ts = 1e9;
    for (int rep = 0; rep < 3; ++rep) {
      t1 = std::min(t1, time_s([&] {
                      cur.runtime().run_cri(fn, 1, 1, {make()});
                    }));
      ts = std::min(ts, time_s([&] {
                      cur.runtime().run_cri(fn, 1, host_servers,
                                            {make()});
                    }));
    }
    std::printf("%10d | %12.2f %8d | %12.2f %12.2f %10.2f %8s\n", k,
                sim_speedup, k, t1 * 1e3, ts * 1e3, t1 / ts,
                ok ? "yes" : "NO");
  }
  std::printf("\nshape check: simulated speedup ≈ k (never above), the "
              "paper's min-distance\nbound; the lock-protected pool run "
              "must stay correct at every k.\n");
  return 0;
}
