// E12 (paper §5): recursion→iteration.
//
// The accumulating reduction (sum over a list) is transformed by
// Curare's rec2iter into a loop. Three effects are measured:
//  * the recursive original pays non-tail C++ stack and loses to the
//    loop even sequentially;
//  * the iterative version handles depths the recursive one cannot
//    (the evaluator's recursion guard);
//  * downstream, the reduction becomes a reorderable update a CRI
//    traversal can parallelize (+ is declared comm/assoc/atomic).
#include <algorithm>
#include <cstdio>
#include <thread>

#include "bench_util.hpp"

using namespace curare;
using namespace curare::bench;

int main() {
  const unsigned cores = std::max(1u, std::thread::hardware_concurrency());
  const std::size_t servers = std::min<std::size_t>(cores, 8);

  std::printf("E12: recursion→iteration (paper §5)\n\n");
  std::printf("%8s %14s %14s %12s %14s\n", "n", "recursive ms",
              "iterative ms", "ratio", "parallel ms");

  for (int n : {1000, 4000, 16000, 100000}) {
    sexpr::Ctx ctx;
    Curare cur(ctx, 0);
    install_spin(cur.interp());
    cur.interp().set_max_depth(20000);  // the evaluator's default guard

    cur.load_program(
        "(defun sum (l) (if (null l) 0 (+ (car l) (sum (cdr l)))))");
    sexpr::Value list = sexpr::read_one(ctx, list_src(n));
    const sexpr::Value args[] = {list};

    double t_rec = 1e9;
    bool rec_overflow = false;
    for (int rep = 0; rep < 3 && !rec_overflow; ++rep) {
      try {
        t_rec = std::min(t_rec, time_s([&] {
                           cur.run_sequential("sum", args);
                         }));
      } catch (const sexpr::LispError&) {
        rec_overflow = true;  // recursion guard tripped — the §5 motive
      }
    }
    const std::int64_t expect =
        static_cast<std::int64_t>(n) * (n + 1) / 2;

    TransformPlan plan = cur.transform("sum");
    if (!plan.ok) {
      std::printf("transform failed: %s\n", plan.failure.c_str());
      return 1;
    }
    double t_iter = 1e9;
    std::int64_t got = 0;
    for (int rep = 0; rep < 3; ++rep)
      t_iter = std::min(t_iter, time_s([&] {
                          got = cur.run_sequential("sum", args).as_fixnum();
                        }));

    // Parallel spelling: reorderable accumulation over a CRI traversal
    // (what the pipeline produces for effect-style tallies).
    cur.interp().eval_program(
        "(setq total 0)"
        "(defun tally$cri (l)"
        "  (when l"
        "    (spin 8)"
        "    (%cri-enqueue 0 (cdr l))"
        "    (%atomic-incf-var 'total (car l))))");
    sexpr::Value tfn = cur.interp().global("tally$cri");
    double t_par = 1e9;
    std::int64_t got_par = 0;
    for (int rep = 0; rep < 3; ++rep) {
      cur.interp().eval_program("(setq total 0)");
      t_par = std::min(t_par, time_s([&] {
                         cur.runtime().run_cri(tfn, 1, servers, {list});
                       }));
      got_par = cur.interp().eval_program("total").as_fixnum();
    }

    const bool ok = got == expect && got_par == expect;
    if (rec_overflow) {
      std::printf("%8d %14s %14.2f %12s %14.2f%s\n", n, "depth error",
                  t_iter * 1e3, "—", t_par * 1e3,
                  ok ? "" : "  RESULT MISMATCH");
    } else {
      std::printf("%8d %14.2f %14.2f %12.2f %14.2f%s\n", n, t_rec * 1e3,
                  t_iter * 1e3, t_rec / t_iter, t_par * 1e3,
                  ok ? "" : "  RESULT MISMATCH");
    }
  }
  std::printf("\nshape check: the iterative version runs at recursive "
              "speed on small inputs\nand keeps working at depths where "
              "the recursive form overflows (the row\nmarked 'depth "
              "error') — §5's motivation. The reorderable tally variant\n"
              "parallelizes the same reduction under CRI.\n");
  return 0;
}
