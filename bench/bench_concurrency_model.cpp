// E5 (paper §3.1, Figs 6–7): concurrency = (|H|+|T|)/|H|.
//
// Primary series: the discrete-event CRI simulator (the 5–100 processor
// machine of §1.2 that this host may lack) sweeping the head fraction
// h/(h+t) at fixed h+t. The simulated speedup must track the paper's
// bound min((h+t)/h, S).
//
// Secondary series: the same workload on the real thread-backed server
// pool with calibrated spin bodies — meaningful only on a multi-core
// host (the run reports the core count; on one core wall-clock speedup
// is pinned at ~1 by physics, not by the model).
#include <algorithm>
#include <cstdio>
#include <thread>

#include "bench_util.hpp"
#include "runtime/scheduler.hpp"
#include "runtime/sim.hpp"

using namespace curare;
using namespace curare::bench;

namespace {

double run_wallclock(Curare& cur, int head_units, int tail_units,
                     int depth, std::size_t servers) {
  cur.interp().eval_program(
      "(defun work$cri (n hh tt)"
      "  (when (> n 0)"
      "    (spin hh)"
      "    (%cri-enqueue 0 (- n 1) hh tt)"
      "    (spin tt)))");
  sexpr::Value fn = cur.interp().global("work$cri");
  return time_s([&] {
    cur.runtime().run_cri(fn, 1, servers,
                          {sexpr::Value::fixnum(depth),
                           sexpr::Value::fixnum(head_units),
                           sexpr::Value::fixnum(tail_units)});
  });
}

}  // namespace

int main() {
  sexpr::Ctx ctx;
  Curare cur(ctx, 0);
  install_spin(cur.interp());

  const int total_units = 400;
  const int depth = 256;
  const std::size_t sim_servers = 16;
  const unsigned cores = std::max(1u, std::thread::hardware_concurrency());
  const std::size_t host_servers = std::min<std::size_t>(cores, 8);

  std::printf("E5: concurrency model — speedup vs head fraction "
              "(paper §3.1)\n");
  std::printf("depth=%d, h+t=%d; simulated machine S=%zu; host has %u "
              "core(s), pool S=%zu\n\n",
              depth, total_units, sim_servers, cores, host_servers);
  std::printf("%10s %8s | %12s %10s | %12s %12s %10s\n", "head_frac",
              "h", "sim speedup", "bound", "host T(1)ms", "host T(S)ms",
              "host spd");

  for (double frac : {0.9, 0.5, 0.25, 0.125, 0.0625}) {
    const int h = std::max(1, static_cast<int>(total_units * frac));
    const int t = total_units - h;

    runtime::SimParams p;
    p.head_cost = h;
    p.tail_cost = t;
    p.depth = static_cast<std::size_t>(depth);
    p.servers = sim_servers;
    const double sim_speedup = runtime::simulate_cri(p).speedup_vs_one(p);
    const double bound = std::min(
        runtime::max_concurrency(h, t, std::nullopt),
        static_cast<double>(sim_servers));

    run_wallclock(cur, h, t, depth, 1);  // warm-up
    double t1 = 1e9;
    double ts = 1e9;
    for (int rep = 0; rep < 3; ++rep) {
      t1 = std::min(t1, run_wallclock(cur, h, t, depth, 1));
      ts = std::min(ts, run_wallclock(cur, h, t, depth, host_servers));
    }
    std::printf("%10.4f %8d | %12.2f %10.2f | %12.2f %12.2f %10.2f\n",
                static_cast<double>(h) / total_units, h, sim_speedup,
                bound, t1 * 1e3, ts * 1e3, t1 / ts);
  }
  std::printf(
      "\nshape check: simulated speedup rises as the head shrinks and "
      "hugs\nmin((h+t)/h, S) — the paper's concurrency bound. Host "
      "columns show the\nsame trend when cores are available.\n");
  return 0;
}
