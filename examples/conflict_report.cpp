// Conflict-detection walkthrough over the paper's own figures (§2).
//
// For each example function this prints the accessor inventory, the
// transfer function τ (in the paper's regex notation), every conflict
// with its dependence kind and distance, and the head/tail split — the
// §6 feedback a programmer would tune declarations against.
//
// Build: cmake --build build && ./build/examples/conflict_report
#include <cstdio>

#include "curare/curare.hpp"

namespace {

struct Example {
  const char* title;
  const char* source;
};

const Example kExamples[] = {
    {"Figure 3 — pure traversal (conflict-free; τ_l = cdr⁺)",
     "(defun fig3 (l) (when l (print (car l)) (fig3 (cdr l))))"},

    {"Figure 4 — write one ahead (A1=cdr.car ⊙₁ A2=car)",
     "(defun fig4 (l) (when l (setf (cadr l) (car l)) (fig4 (cdr l))))"},

    {"Figure 5 — prefix sum (A2=cdr.car conflicts with A3=car only)",
     "(defun fig5 (l)"
     "  (cond ((null l) nil)"
     "        ((null (cdr l)) (fig5 (cdr l)))"
     "        (t (setf (cadr l) (+ (car l) (cadr l)))"
     "           (fig5 (cdr l)))))"},

    {"Figure 8 shape — reorderable counter update",
     "(defun fig8 (l) (when l (setq a (+ a 1)) (fig8 (cdr l))))"},

    {"Figure 12 — remq (recursive result used: needs §5 DPS)",
     "(defun remq (obj lst)"
     "  (cond ((null lst) nil)"
     "        ((eq obj (car lst)) (remq obj (cdr lst)))"
     "        (t (cons (car lst) (remq obj (cdr lst))))))"},

    {"Figure 13 — remq-d (flow-insensitive analysis still sees "
     "conflicts, exactly as §5 predicts)",
     "(defun remq-d (dest obj lst)"
     "  (cond ((null lst) (setf (cdr dest) nil))"
     "        ((eq obj (car lst)) (remq-d dest obj (cdr lst)))"
     "        (t (let ((cell (cons (car lst) nil)))"
     "             (remq-d cell obj (cdr lst))"
     "             (setf (cdr dest) cell)))))"},

    {"write k=3 ahead — distance-3 conflict caps concurrency at 3",
     "(defun ahead3 (l)"
     "  (when (nthcdr 3 l) (setf (nth 3 l) (car l)) (ahead3 (cdr l))))"},

    {"unanalyzable step — τ = Σ*, worst-case distance 1",
     "(defun scramble (l)"
     "  (when l (setf (car l) 0) (scramble (reverse l))))"},
};

}  // namespace

int main() {
  for (const Example& ex : kExamples) {
    curare::sexpr::Ctx ctx;
    curare::Curare cur(ctx);
    std::printf("──────────────────────────────────────────────────\n");
    std::printf("%s\n\n", ex.title);
    cur.load_program(ex.source);
    // The defun name is the first symbol after "defun ".
    std::string src(ex.source);
    const std::size_t at = src.find("defun ") + 6;
    const std::string name = src.substr(at, src.find(' ', at) - at);
    curare::AnalysisReport report = cur.analyze(name);
    std::printf("%s\n", report.to_string().c_str());
  }
  return 0;
}
