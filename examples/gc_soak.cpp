// GC soak: repeated CRI runs under a tight collection threshold must
// reach a steady state — live objects after each cycle's collection may
// not creep upward (DESIGN.md §9 acceptance check).
//
// Each iteration builds a fresh 200-element list, runs the transformed
// traversal on the 4-server pool twice, then collects and records the
// exact live-object count. The list is rooted only for its iteration,
// so everything it allocated — spine, CRI argument copies, scheduler
// spill — must be reclaimed by the next collection. 120 iterations ×
// 2 runs ≥ 240 CRI pool runs; the tight threshold keeps the automatic
// trigger armed should any cycle outgrow its explicit collection.
// (Mid-run threshold collections are exercised directly by
// tests/gc/gc_test.cpp's AllocatingServerBodiesCollectMidRun.)
//
// Exits nonzero if a parallel result ever disagrees with the expected
// sum or if the steady-state live count grows beyond 1.5x + slack of
// the early-iteration baseline.
//
// Build: cmake --build build && ./build/examples/gc_soak
#include <cstdio>
#include <vector>

#include "curare/curare.hpp"
#include "gc/gc.hpp"
#include "sexpr/heap.hpp"

int main() {
  curare::sexpr::Ctx ctx;
  curare::gc::GcHeap& gc = ctx.heap.gc();
  gc.set_threshold(256 * 1024);

  curare::Curare cur(ctx);
  cur.load_program(
      "(setq total 0)"
      "(defun tally (l)"
      "  (when l (setq total (+ total (car l))) (tally (cdr l))))");
  curare::TransformPlan plan = cur.transform("tally");
  if (!plan.ok) {
    std::printf("gc_soak: transform failed\n");
    return 1;
  }

  constexpr int kIters = 120;
  constexpr int kListLen = 200;
  constexpr long long kExpected =
      2LL * kListLen * (kListLen + 1) / 2;  // two runs per iteration

  std::vector<std::size_t> live;
  live.reserve(kIters);
  for (int it = 0; it < kIters; ++it) {
    curare::gc::RootScope roots(gc);
    curare::Value list = curare::Value::nil();
    {
      curare::gc::MutatorScope ms(gc);
      for (int i = 1; i <= kListLen; ++i)
        list = ctx.heap.cons(curare::Value::fixnum(i), list);
      roots.add(list);
    }

    cur.interp().eval_program("(setq total 0)");
    const curare::Value args[] = {list};
    cur.run_parallel("tally", args, 4);
    cur.run_parallel("tally", args, 4);
    const long long got =
        cur.interp().eval_program("total").as_fixnum();
    if (got != kExpected) {
      std::printf("gc_soak: iteration %d: total %lld != %lld\n", it, got,
                  kExpected);
      return 1;
    }

    gc.collect("soak");
    live.push_back(ctx.heap.live_objects());
  }

  // Steady state: after warm-up (interned symbols, transformed defuns,
  // scheduler structures) the post-collection live count must stay flat.
  const std::size_t baseline = live[20];
  std::size_t worst = 0;
  for (int it = 21; it < kIters; ++it) worst = std::max(worst, live[it]);
  const std::size_t bound = baseline + baseline / 2 + 512;
  const curare::gc::GcStats st = gc.stats();
  std::printf("gc_soak: %d iterations, %llu collections, baseline %zu "
              "live, worst %zu (bound %zu),\n%llu objects / %llu KiB "
              "reclaimed, max pause %.1f us — %s\n",
              kIters, static_cast<unsigned long long>(st.collections),
              baseline, worst, bound,
              static_cast<unsigned long long>(st.reclaimed_objects),
              static_cast<unsigned long long>(st.reclaimed_bytes / 1024),
              static_cast<double>(st.max_pause_ns) / 1e3,
              worst <= bound ? "bounded" : "LEAK");
  return worst <= bound ? 0 : 1;
}
