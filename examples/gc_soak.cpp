// GC soak: repeated CRI runs under a tight collection threshold must
// reach a steady state — live objects after each cycle's collection may
// not creep upward (DESIGN.md §9 acceptance check).
//
// Each iteration builds a fresh 200-element list, runs the transformed
// traversal on the 4-server pool twice, then collects and records the
// exact live-object count. The list is rooted only for its iteration,
// so everything it allocated — spine, CRI argument copies, scheduler
// spill — must be reclaimed by the next collection. 120 iterations ×
// 2 runs ≥ 240 CRI pool runs; the tight threshold keeps the automatic
// trigger armed should any cycle outgrow its explicit collection.
// (Mid-run threshold collections are exercised directly by
// tests/gc/gc_test.cpp's AllocatingServerBodiesCollectMidRun.)
//
// Exits nonzero if a parallel result ever disagrees with the expected
// sum or if the steady-state live count grows beyond 1.5x + slack of
// the early-iteration baseline.
//
// Build: cmake --build build && ./build/examples/gc_soak
//
// Chaos mode: CURARE_CHAOS=seed:rate[:kinds[:sites]] (kinds ⊆
// delay,throw,wake, comma-separated, default all; sites named as in
// FaultInjector::site_name, default all) arms the deterministic fault
// injector for the whole soak. Iterations aborted by an injected throw skip the
// exact-total check — the invariants that remain are "no hang" and the
// steady-state live bound, i.e. aborted runs must not leak.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "curare/curare.hpp"
#include "gc/gc.hpp"
#include "runtime/fault_injector.hpp"
#include "sexpr/heap.hpp"

namespace {

// Parses seed:rate[:kinds[:sites]]; returns false (injector untouched)
// on a malformed spec so CI fails loudly rather than soaking without
// faults. Site names resolve through FaultInjector::site_bit, so the
// soak can be aimed at one subsystem (e.g. :queue.steal alone).
bool configure_chaos(const char* spec) {
  using curare::runtime::FaultInjector;
  std::string s(spec);
  const std::size_t c1 = s.find(':');
  if (c1 == std::string::npos) return false;
  const std::size_t c2 = s.find(':', c1 + 1);
  const std::size_t c3 =
      c2 == std::string::npos ? std::string::npos : s.find(':', c2 + 1);
  try {
    const std::uint64_t seed = std::stoull(s.substr(0, c1), nullptr, 0);
    const double rate =
        std::stod(s.substr(c1 + 1, c2 == std::string::npos
                                       ? std::string::npos
                                       : c2 - c1 - 1));
    unsigned kinds = 0;
    if (c2 == std::string::npos) {
      kinds = FaultInjector::kAllKinds;
    } else {
      std::string rest = s.substr(
          c2 + 1,
          c3 == std::string::npos ? std::string::npos : c3 - c2 - 1);
      for (std::size_t pos = 0; pos <= rest.size();) {
        std::size_t comma = rest.find(',', pos);
        if (comma == std::string::npos) comma = rest.size();
        const std::string word = rest.substr(pos, comma - pos);
        if (word == "delay") kinds |= FaultInjector::kDelay;
        else if (word == "throw") kinds |= FaultInjector::kThrow;
        else if (word == "wake") kinds |= FaultInjector::kWake;
        else if (word == "all") kinds |= FaultInjector::kAllKinds;
        else return false;
        pos = comma + 1;
      }
    }
    unsigned sites = FaultInjector::kAllSites;
    if (c3 != std::string::npos) {
      const std::string rest = s.substr(c3 + 1);
      if (!rest.empty() && rest != "all") {
        sites = 0;
        for (std::size_t pos = 0; pos <= rest.size();) {
          std::size_t comma = rest.find(',', pos);
          if (comma == std::string::npos) comma = rest.size();
          unsigned bit = 0;
          if (!FaultInjector::site_bit(rest.substr(pos, comma - pos), bit))
            return false;
          sites |= bit;
          pos = comma + 1;
        }
        if (sites == 0) return false;
      }
    }
    if (rate <= 0.0 || rate > 1.0 || kinds == 0) return false;
    FaultInjector::instance().configure(seed, rate, kinds, sites);
    return true;
  } catch (...) {
    return false;
  }
}

}  // namespace

int main() {
  curare::sexpr::Ctx ctx;
  curare::gc::GcHeap& gc = ctx.heap.gc();
  gc.set_threshold(256 * 1024);

  curare::Curare cur(ctx);
  cur.load_program(
      "(setq total 0)"
      "(defun tally (l)"
      "  (when l (setq total (+ total (car l))) (tally (cdr l))))");
  curare::TransformPlan plan = cur.transform("tally");
  if (!plan.ok) {
    std::printf("gc_soak: transform failed\n");
    return 1;
  }

  const char* chaos_spec = std::getenv("CURARE_CHAOS");
  if (chaos_spec != nullptr && !configure_chaos(chaos_spec)) {
    std::printf("gc_soak: bad CURARE_CHAOS spec '%s' "
                "(want seed:rate[:kinds[:sites]])\n", chaos_spec);
    return 1;
  }
  const bool chaos = chaos_spec != nullptr;

  constexpr int kIters = 120;
  constexpr int kListLen = 200;
  constexpr long long kExpected =
      2LL * kListLen * (kListLen + 1) / 2;  // two runs per iteration

  int aborted = 0;
  std::vector<std::size_t> live;
  live.reserve(kIters);
  for (int it = 0; it < kIters; ++it) {
    curare::gc::RootScope roots(gc);
    try {
      curare::Value list = curare::Value::nil();
      {
        curare::gc::MutatorScope ms(gc);
        for (int i = 1; i <= kListLen; ++i)
          list = ctx.heap.cons(curare::Value::fixnum(i), list);
        roots.add(list);
      }

      cur.interp().eval_program("(setq total 0)");
      const curare::Value args[] = {list};
      cur.run_parallel("tally", args, 4);
      cur.run_parallel("tally", args, 4);
      const long long got =
          cur.interp().eval_program("total").as_fixnum();
      if (got != kExpected) {
        std::printf("gc_soak: iteration %d: total %lld != %lld\n", it,
                    got, kExpected);
        return 1;
      }
    } catch (const curare::sexpr::LispError& e) {
      if (!chaos) {
        std::printf("gc_soak: iteration %d: %s\n", it, e.what());
        return 1;
      }
      // Injected fault aborted the run mid-flight; a throw between a
      // lock and its unlock may leak a hold — reset is the documented
      // recovery. The iteration's total is meaningless, but its
      // allocations must still be reclaimed below.
      ++aborted;
      cur.runtime().locks().reset();
    }

    gc.collect("soak");
    live.push_back(ctx.heap.live_objects());
  }
  if (chaos) {
    std::printf("gc_soak: chaos '%s': %d/%d iterations aborted\n%s",
                chaos_spec, aborted, kIters,
                curare::runtime::FaultInjector::instance()
                    .report().c_str());
  }

  // Steady state: after warm-up (interned symbols, transformed defuns,
  // scheduler structures) the post-collection live count must stay flat.
  const std::size_t baseline = live[20];
  std::size_t worst = 0;
  for (int it = 21; it < kIters; ++it) worst = std::max(worst, live[it]);
  const std::size_t bound = baseline + baseline / 2 + 512;
  const curare::gc::GcStats st = gc.stats();
  std::printf("gc_soak: %d iterations, %llu collections, baseline %zu "
              "live, worst %zu (bound %zu),\n%llu objects / %llu KiB "
              "reclaimed, max pause %.1f us — %s\n",
              kIters, static_cast<unsigned long long>(st.collections),
              baseline, worst, bound,
              static_cast<unsigned long long>(st.reclaimed_objects),
              static_cast<unsigned long long>(st.reclaimed_bytes / 1024),
              static_cast<double>(st.max_pause_ns) / 1e3,
              worst <= bound ? "bounded" : "LEAK");
  return worst <= bound ? 0 : 1;
}
