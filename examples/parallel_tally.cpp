// Strategy selection in action (§3.2): one workload, three syntactic
// spellings, three different devices chosen by Curare — plus the §4.1
// scheduler's server choice and the simulated machine's predictions.
//
// Build: cmake --build build && ./build/examples/parallel_tally
#include <cstdio>

#include "curare/curare.hpp"
#include "runtime/scheduler.hpp"
#include "runtime/sim.hpp"
#include "sexpr/reader.hpp"

namespace {

struct Case {
  const char* title;
  const char* source;
  const char* fn;
};

const Case kCases[] = {
    {"reorderable counter (+ is declared comm/assoc/atomic → §3.2.3)",
     "(setq total 0)"
     "(defun tally (l)"
     "  (when l (setq total (+ total (car l))) (tally (cdr l))))",
     "tally"},
    {"non-commutative update (- is not declared → locks, §3.2.1)",
     "(setq balance 1000000)"
     "(defun drain (l)"
     "  (when l (setq balance (- balance (car l))) (drain (cdr l))))",
     "drain"},
    {"structure write one ahead (Fig 4 → locks at distance 1)",
     "(defun shift (l)"
     "  (when (cdr l) (setf (cadr l) (car l)) (shift (cdr l))))",
     "shift"},
};

}  // namespace

int main() {
  for (const Case& c : kCases) {
    curare::sexpr::Ctx ctx;
    curare::Curare cur(ctx);
    std::printf("──────────────────────────────────────────────────\n");
    std::printf("%s\n\n", c.title);
    cur.load_program(c.source);
    curare::TransformPlan plan = cur.transform(c.fn);
    std::printf("%s\n", plan.to_string().c_str());
    if (!plan.ok) continue;

    const auto& ht = plan.final_headtail;
    const double h = static_cast<double>(ht.head_size ? ht.head_size : 1);
    const double t = static_cast<double>(ht.tail_size);
    const double depth = 1000;
    std::printf("static sizes: |H|=%zu |T|=%zu → concurrency bound %.2f\n",
                ht.head_size, ht.tail_size, ht.concurrency());
    std::printf("scheduler: S* = %.1f, chosen S = %zu (16-processor "
                "machine)\n",
                curare::runtime::optimal_servers_continuous(depth, h, t),
                curare::runtime::choose_servers(depth, h, t,
                                                plan.concurrency_cap, 16));

    curare::runtime::SimParams p;
    p.head_cost = h;
    p.tail_cost = t;
    p.depth = static_cast<std::size_t>(depth);
    p.servers = 16;
    if (plan.concurrency_cap)
      p.conflict_distance =
          static_cast<std::size_t>(*plan.concurrency_cap);
    std::printf("simulated 16-server speedup: %.2f\n\n",
                curare::runtime::simulate_cri(p).speedup_vs_one(p));

    // Execute for real and verify the effect.
    curare::Value list = curare::sexpr::read_one(
        ctx, "(1 2 3 4 5 6 7 8 9 10)");
    const curare::Value args[] = {list};
    cur.run_parallel(c.fn, args, 4);
    if (std::string(c.fn) == "tally") {
      std::printf("total after parallel tally of (1..10): %lld\n\n",
                  static_cast<long long>(
                      cur.interp().eval_program("total").as_fixnum()));
    }
  }
  return 0;
}
