;; Deliberate deadlock — the CI hang canary.
;;
;;   curare --stall-ms 500 examples/lisp/deadlock.lisp
;;
;; The top level takes an exclusive variable lock and never releases
;; it; the CRI server body then tries to take the same lock from a
;; server thread and blocks forever. Without the resilience layer this
;; hangs the process. With --stall-ms the per-run watchdog notices no
;; task completes, fires the run's cancel token, and the blocked lock
;; wait aborts with a StallError whose dump names the held lock —
;; non-zero exit (code 3) instead of a hung CI job.

(defun stuck$cri (i)
  (%lock-var 'shared-loc)
  (%unlock-var 'shared-loc))

(%lock-var 'shared-loc)
(%cri-run stuck$cri 1 2 0)
