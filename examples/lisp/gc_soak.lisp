; GC soak from Lisp: 120 future-driven build/sum cycles under a tight
; collection threshold. Run it as
;
;   curare --gc-threshold 262144 --gc-stats examples/lisp/gc_soak.lisp
;
; Every cycle's list is garbage the moment its future is touched, so
; the heap must reach a steady state instead of growing by 150 conses
; per cycle; the --gc-stats footer shows the reclamation totals.

(defun build (n)
  (if (> n 0) (cons n (build (- n 1))) nil))

(defun sum (l)
  (if l (+ (car l) (sum (cdr l))) 0))

(defun soak (k)
  (when (> k 0)
    (touch (future (sum (build 150))))
    (soak (- k 1))))

(soak 120)
(print 'soak-ok)
