;; serve_session.lisp — session isolation demo for the serving daemon.
;;
;; Start the daemon, then load this file from TWO concurrent clients:
;;
;;   ./build/tools/curare_serve --port-file=/tmp/curare.port &
;;   PORT=$(cat /tmp/curare.port)
;;   ./build/tools/curare_client --port $PORT examples/lisp/serve_session.lisp &
;;   ./build/tools/curare_client --port $PORT examples/lisp/serve_session.lisp &
;;   wait
;;
;; Both clients print (session-counter 2 fib-10 55): each connection is
;; its own session with its own top-level environment, so `counter`
;; below starts at 0 for every client — if sessions shared globals, the
;; second client would see the first one's bumps (counter 4). The heap,
;; symbol table, future pool, and lock manager behind the sessions are
;; shared process-wide; only the bindings are per-session.

(setq counter 0)
(defun bump () (setq counter (+ counter 1)))

(defun fib (n)
  (if (< n 2) n (+ (fib (- n 1)) (fib (- n 2)))))

(bump)
(bump)

(list 'session-counter counter 'fib-10 (fib 10))
