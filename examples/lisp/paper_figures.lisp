;; The worked examples from the paper, ready for the curare CLI:
;;
;;   ./build/tools/curare examples/lisp/paper_figures.lisp
;;
;; Figure 3: pure traversal — conflict-free, tau_l = cdr+.
(defun fig3 (l)
  (when l
    (print (car l))
    (fig3 (cdr l))))

;; Figure 4: write one cell ahead — A1 = cdr.car conflicts with A2 = car
;; at distance 1.
(defun fig4 (l)
  (when l
    (setf (cadr l) (car l))
    (fig4 (cdr l))))

;; Figure 5: prefix sum — only A2 (cdr.car, modify) x A3 (car) conflict.
(defun fig5 (l)
  (cond ((null l) nil)
        ((null (cdr l)) (fig5 (cdr l)))
        (t (setf (cadr l) (+ (car l) (cadr l)))
           (fig5 (cdr l)))))

;; Figure 8 shape: reorderable counter — becomes an atomic update.
(setq fig8-count 0)
(defun fig8 (l)
  (when l
    (setq fig8-count (+ fig8-count 1))
    (fig8 (cdr l))))

;; Figure 12: remq — result used, goes through the section-5 DPS
;; transformation (compare the generated remq$dps with Figure 13).
(defun remq (obj lst)
  (cond ((null lst) nil)
        ((eq obj (car lst)) (remq obj (cdr lst)))
        (t (cons (car lst) (remq obj (cdr lst))))))

;; Section 5: associative reduction — recursion becomes iteration.
(defun sum (l)
  (if (null l) 0 (+ (car l) (sum (cdr l)))))
