;; Observability demo for the CLI:
;;
;;   curare --trace out.json --stats examples/lisp/obs_demo.lisp
;;
;; Top-level forms run while the program loads, so the %cri-run calls
;; below execute a hand-transformed CRI recursion (the transform
;; module's output shape) at S = 1, 2, 4 server threads. The --stats
;; table then shows measured wall time against the paper's §4.1
;; T(S) = (ceil(d/S)-1)(h+t) + (S*h+t) with the measured h and t, and
;; --trace captures per-server task spans, enqueue instants, and the
;; lock traffic from %atomic-incf-var.

(defun iota (n)
  (if (> n 0) (cons n (iota (- n 1))) nil))

(setq hits 0)

;; Hand-transformed server body: the recursive call became a
;; %cri-enqueue on call site 0; the shared counter update is the
;; reordering device of §3.2.3 (lock-backed for variables).
(defun walk$cri (l)
  (when l
    (%atomic-incf-var 'hits 1)
    (%cri-enqueue 0 (cdr l))))

(setq xs (iota 400))
(%cri-run walk$cri 1 1 xs)
(%cri-run walk$cri 1 2 xs)
(%cri-run walk$cri 1 4 xs)
