// Observability demo: run one recursion under the CRI server pool at
// several server counts with the tracer on, then
//
//   * write a Chrome trace-event JSON (trace_demo.json — open it in
//     Perfetto or chrome://tracing: per-server task spans, enqueue
//     instants, lock acquire/release, idle gaps);
//   * print the metrics registry (lock wait/contention, queue depths,
//     head vs tail time, busy/idle);
//   * print the measured-vs-predicted T(S) table from the §4.1 model
//     with the h and t the instrumentation actually measured.
//
// Self-checking (exits nonzero on failure) so it doubles as a smoke
// test: invocation counts must be exact, events must come from at
// least two server threads, and the exported JSON must be non-trivial.
#include <cstdio>
#include <fstream>
#include <string>

#include "curare/curare.hpp"
#include "obs/recorder.hpp"
#include "sexpr/reader.hpp"

using namespace curare;

namespace {

int fail(const char* what) {
  std::fprintf(stderr, "trace_demo FAILED: %s\n", what);
  return 1;
}

}  // namespace

int main() {
  sexpr::Ctx ctx;
  Curare cur(ctx, 2);
  obs::Recorder& rec = cur.runtime().obs();
  rec.tracer.set_enabled(true);

  // A busy-work builtin so head/tail sizes are controllable (the
  // paper's h and t), same idea as the benches' `spin`.
  cur.interp().define_builtin(
      "spin", 1, 1, [](lisp::Interp&, std::span<const sexpr::Value> a) {
        volatile std::uint64_t acc = 0;
        for (std::int64_t i = 0; i < lisp::as_int(a[0]) * 64; ++i)
          acc += static_cast<std::uint64_t>(i) * 2654435761u;
        return sexpr::Value::nil();
      });

  // Hand-transformed server body: count down `n`, small head (the
  // enqueue side) and a larger tail — plus a lock-guarded shared
  // counter so the lock instrumentation has something to record.
  cur.interp().eval_program(
      "(setq total 0)"
      "(defun demo$cri (n)"
      "  (when (> n 0)"
      "    (spin 5)"
      "    (%cri-enqueue 0 (- n 1))"
      "    (spin 60)"
      "    (%atomic-incf-var 'total 1)))");
  sexpr::Value fn = cur.interp().global("demo$cri");

  // Deep enough that one run outlives the work-stealing scheduler's
  // first sleep slice (~1 ms): an idle server's desperate round can
  // only migrate the chain once it has slept that long, so a run
  // shorter than the slice legitimately stays on one server.
  const int depth = 4000;
  for (std::size_t servers : {1u, 2u, 4u}) {
    cur.interp().eval_program("(setq total 0)");
    runtime::CriStats stats = cur.runtime().run_cri(
        fn, 1, servers, {sexpr::Value::fixnum(depth)}, "demo$cri");
    if (stats.invocations != static_cast<std::uint64_t>(depth) + 1)
      return fail("invocation count != depth + 1");
    if (cur.interp().eval_program("total").as_fixnum() != depth)
      return fail("lock-guarded counter lost updates");
    if (stats.busy_ns.size() != servers)
      return fail("per-server busy vector has wrong size");
    if (stats.head_ns == 0 || stats.wall_ns == 0)
      return fail("measured head/wall time missing");
  }

  // The S=4 run must actually have spread work across servers. A
  // single-site queue holds at most ~1 pending task, and the
  // work-stealing scheduler deliberately leaves a consuming owner's
  // single in-flight task alone until a sleeper's desperate round —
  // so on a heavily loaded host one server can still win every
  // dequeue race; retry a few times before calling that a failure.
  auto active_servers = [&] {
    std::size_t active = 0;
    for (std::uint64_t n : cur.runtime().last_cri_stats().tasks_per_server)
      active += (n > 0);
    return active;
  };
  std::size_t active = active_servers();
  for (int attempt = 0; attempt < 10 && active < 2; ++attempt) {
    cur.interp().eval_program("(setq total 0)");
    cur.runtime().run_cri(fn, 1, 4, {sexpr::Value::fixnum(depth)},
                          "demo$cri");
    active = active_servers();
  }
  if (active < 2) return fail("work never left the first server");

  if (rec.tracer.thread_count() < 2)
    return fail("trace has events from fewer than 2 threads");
  if (rec.tracer.events_recorded() == 0) return fail("trace is empty");

  const std::string json = rec.tracer.chrome_trace_json();
  if (json.size() < 200 || json.find("\"cri-task\"") == std::string::npos ||
      json.find("\"lock-acquire\"") == std::string::npos)
    return fail("trace JSON lacks expected events");
  std::ofstream out("trace_demo.json");
  out << json;
  out.close();

  std::printf("wrote trace_demo.json (%zu events, %zu threads, "
              "%llu dropped)\n\n",
              rec.tracer.events_recorded(), rec.tracer.thread_count(),
              static_cast<unsigned long long>(rec.tracer.dropped()));
  std::printf("%s", obs::full_report(rec).c_str());
  std::printf("\ntrace_demo OK\n");
  return 0;
}
