// The §5 destination-passing-style pipeline on the paper's own remq
// (Figures 12 → 13): show the generated code, then run the original and
// the transformed parallel version and compare results.
//
// Build: cmake --build build && ./build/examples/dps_remq
#include <cstdio>

#include "curare/curare.hpp"
#include "sexpr/equal.hpp"
#include "sexpr/printer.hpp"
#include "sexpr/reader.hpp"

int main() {
  curare::sexpr::Ctx ctx;
  curare::Curare cur(ctx);

  const char* fig12 =
      "(defun remq (obj lst)"
      "  (cond ((null lst) nil)"
      "        ((eq obj (car lst)) (remq obj (cdr lst)))"
      "        (t (cons (car lst) (remq obj (cdr lst))))))";
  std::printf("=== input (paper Figure 12) ===\n%s\n\n", fig12);
  cur.load_program(fig12);

  curare::TransformPlan plan = cur.transform("remq");
  std::printf("=== transform ===\n%s\n", plan.to_string().c_str());
  if (!plan.ok) return 1;

  std::printf("=== generated code (cf. paper Figure 13) ===\n");
  for (curare::Value f : plan.forms)
    std::printf("%s\n\n", curare::sexpr::write_str(f).c_str());

  // Run on data with removable elements sprinkled through.
  std::string list_src = "(";
  for (int i = 0; i < 30; ++i)
    list_src += (i % 3 == 0) ? "x " : std::to_string(i) + " ";
  list_src += ")";
  curare::Value obj = ctx.sym("x");
  const curare::Value args[] = {obj,
                                curare::sexpr::read_one(ctx, list_src)};

  curare::Value seq = cur.run_sequential("remq", args);
  curare::Value par = cur.run_parallel("remq", args, 4);

  std::printf("=== results ===\ninput:      %s\nsequential: %s\nparallel:  "
              " %s\n",
              list_src.c_str(), curare::sexpr::write_str(seq).c_str(),
              curare::sexpr::write_str(par).c_str());
  const bool ok = curare::sexpr::equal_values(seq, par);
  std::printf("%s\n", ok ? "identical — final-state sequentializable "
                           "(§3.1.1)"
                         : "MISMATCH");
  return ok ? 0 : 1;
}
