// ASCII rendering of the paper's Figures 6, 7, and the §3.2.1 lock
// serialization: per-invocation Gantt charts from the CRI simulator.
//
//   ==== head (sequential — each spawns the next invocation)
//   ---- tail (overlaps freely, or blocks on locks)
//
// Build: cmake --build build && ./build/examples/cri_trace
#include <cstdio>
#include <string>

#include "runtime/sim.hpp"

using curare::runtime::InvocationTrace;
using curare::runtime::SimParams;
using curare::runtime::simulate_cri_trace;

namespace {

void render(const char* title, const SimParams& p, double scale) {
  std::printf("%s\n", title);
  std::printf("h=%.0f t=%.0f d=%zu S=%zu", p.head_cost, p.tail_cost,
              p.depth, p.servers);
  if (p.conflict_distance)
    std::printf(" conflict-distance=%zu", p.conflict_distance);
  std::printf("\n\n");

  const auto trace = simulate_cri_trace(p);
  double end = 0;
  for (const auto& t : trace) end = std::max(end, t.finish);

  for (std::size_t i = 0; i < trace.size(); ++i) {
    const auto& t = trace[i];
    std::string line(static_cast<std::size_t>(end / scale) + 1, ' ');
    for (double x = t.start; x < t.head_end; x += scale)
      line[static_cast<std::size_t>(x / scale)] = '=';
    for (double x = t.head_end; x < t.finish; x += scale)
      line[static_cast<std::size_t>(x / scale)] = '-';
    std::printf("I%-3zu srv%zu |%s\n", i, t.server, line.c_str());
  }
  std::printf("%56s\n\n", "time →");
}

}  // namespace

int main() {
  SimParams fig6;  // sequential execution: heads then unwinding tails
  fig6.head_cost = 2;
  fig6.tail_cost = 6;
  fig6.depth = 8;
  fig6.servers = 1;
  render("Figure 6 — one processor: heads descend, tails unwind "
         "(strictly serial)",
         fig6, 1.0);

  SimParams fig7 = fig6;  // spawn per call: tails overlap
  fig7.servers = 8;
  render("Figure 7 — CRI: each head spawns the next invocation; tails "
         "overlap",
         fig7, 1.0);

  SimParams locked = fig7;  // §3.2.1: distance-2 conflict, locks
  locked.conflict_distance = 2;
  render("§3.2.1 — the same recursion with a distance-2 conflict under "
         "locks:\nconcurrency capped at 2",
         locked, 1.0);

  SimParams queue = fig7;  // §4.1: costly central queue
  queue.dequeue_cost = 3;
  render("§4.1 — central-queue bottleneck: dequeues (part of each bar's "
         "start)\nserialize at 1 per 3 time units",
         queue, 1.0);
  return 0;
}
