// Quickstart: the full Curare pipeline in ~40 lines.
//
//   1. load a Lisp program (the paper's Figure 3 traversal),
//   2. analyze it — transfer functions, conflicts, head/tail split,
//   3. transform it for Concurrent Recursive Invocations,
//   4. run it sequentially and on the server pool, and compare.
//
// Build: cmake --build build && ./build/examples/quickstart
#include <cstdio>

#include "curare/curare.hpp"
#include "sexpr/printer.hpp"
#include "sexpr/reader.hpp"

int main() {
  curare::sexpr::Ctx ctx;
  curare::Curare cur(ctx);

  // A recursive list traversal with a side effect per element.
  cur.load_program(
      "(setq visited 0)"
      "(defun visit (l)"
      "  (when l"
      "    (%atomic-incf-var 'visited 1)"
      "    (visit (cdr l))))");

  // ---- analyze --------------------------------------------------------
  curare::AnalysisReport report = cur.analyze("visit");
  std::printf("=== analysis ===\n%s\n", report.to_string().c_str());

  // ---- transform ------------------------------------------------------
  curare::TransformPlan plan = cur.transform("visit");
  std::printf("=== transform ===\n%s\n", plan.to_string().c_str());
  if (!plan.ok) return 1;
  for (curare::Value f : plan.forms)
    std::printf("%s\n", curare::sexpr::write_str(f).c_str());

  // ---- run both ways ---------------------------------------------------
  curare::Value list = curare::sexpr::read_one(
      ctx, "(a b c d e f g h i j k l m n o p q r s t u v w x y z)");
  const curare::Value args[] = {list};

  cur.interp().eval_program("(setq visited 0)");
  cur.run_sequential("visit", args);
  const std::int64_t seq = cur.interp().eval_program("visited").as_fixnum();

  cur.interp().eval_program("(setq visited 0)");
  cur.run_parallel("visit", args, 4);
  const std::int64_t par = cur.interp().eval_program("visited").as_fixnum();

  std::printf("\nsequential visited %lld elements, 4-server pool visited "
              "%lld — %s\n",
              static_cast<long long>(seq), static_cast<long long>(par),
              seq == par ? "identical, as §3.1.1 requires" : "MISMATCH");
  return seq == par ? 0 : 1;
}
