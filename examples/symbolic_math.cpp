// Symbolic computation — the domain the paper opens with ("Lisp …
// is typically used for symbolic, not numeric, computation such as in
// artificial intelligence or compiler writing").
//
// A symbolic differentiator works on expression trees. Around it:
//
//   * d/dx          — uses recursive results ⇒ Curare refuses with §6
//                     feedback pointing at the §5 transformations;
//   * count-ops     — tree walk with a reorderable counter ⇒ transformed
//                     to a 2-site CRI pool with an atomic update;
//   * find-division — any-result search (§3.2.3 class 3) via
//                     %cri-finish: first server to spot a division wins.
//
// Build: cmake --build build && ./build/examples/symbolic_math
#include <cstdio>

#include "curare/curare.hpp"
#include "sexpr/printer.hpp"
#include "sexpr/reader.hpp"

namespace {

const char* kProgram = R"lisp(
;; d/dx over prefix expressions: (+ a b), (* a b), (expt x n), atoms.
(defun d/dx (e)
  (cond ((numberp e) 0)
        ((eq e 'x) 1)
        ((symbolp e) 0)
        ((eq (car e) '+)
         (list '+ (d/dx (cadr e)) (d/dx (caddr e))))
        ((eq (car e) '*)
         (list '+
               (list '* (d/dx (cadr e)) (caddr e))
               (list '* (cadr e) (d/dx (caddr e)))))
        ((eq (car e) 'expt)
         (list '* (caddr e)
               (list '* (list 'expt (cadr e) (- (caddr e) 1))
                     (d/dx (cadr e)))))
        (t (error "d/dx: unknown operator"))))

;; Count interior operator nodes, in parallel: a tree recursion whose
;; only side effect is a reorderable counter.
(setq ops 0)
(defun count-ops (e)
  (when (consp e)
    (incf ops)
    (count-ops (cadr e))
    (count-ops (caddr e))))

;; Any-result search: find SOME division subexpression (hand-written in
;; the CRI runtime vocabulary; the declaration records the licence).
(curare-declare (any-search find-division))
(defun find-division$cri (e)
  (when (consp e)
    (if (eq (car e) '/)
        (%cri-finish e)
        (progn (%cri-enqueue 0 (cadr e))
               (%cri-enqueue 1 (caddr e))))))
)lisp";

}  // namespace

int main() {
  curare::sexpr::Ctx ctx;
  curare::Curare cur(ctx);
  cur.load_program(kProgram);

  // ---- 1. differentiate (sequentially) and inspect the refusal --------
  curare::Value f = curare::sexpr::read_one(
      ctx, "(+ (* 3 (expt x 4)) (* x x))");
  const curare::Value args[] = {f};
  curare::Value df = cur.run_sequential("d/dx", args);
  std::printf("f(x)  = %s\nf'(x) = %s\n\n",
              curare::sexpr::write_str(f).c_str(),
              curare::sexpr::write_str(df).c_str());

  curare::TransformPlan plan = cur.transform("d/dx");
  std::printf("=== Curare on d/dx (§6 feedback) ===\n%s\n",
              plan.to_string().c_str());

  // ---- 2. parallel op-count over the derivative ------------------------
  curare::TransformPlan count_plan = cur.transform("count-ops");
  std::printf("=== Curare on count-ops ===\n%s\n",
              count_plan.to_string().c_str());
  if (count_plan.ok) {
    cur.interp().eval_program("(setq ops 0)");
    const curare::Value cargs[] = {df};
    cur.run_parallel("count-ops", cargs, 4);
    std::printf("operator nodes in f': %lld\n\n",
                static_cast<long long>(
                    cur.interp().eval_program("ops").as_fixnum()));
  }

  // ---- 3. any-result search --------------------------------------------
  curare::Value with_div = curare::sexpr::read_one(
      ctx, "(+ (* a (+ b c)) (* (/ p q) (+ (/ r s) t2)))");
  curare::Value hit = cur.interp().eval_program(
      "(%cri-run find-division$cri 2 3 '(+ (* a (+ b c)) "
      "(* (/ p q) (+ (/ r s) t2))))");
  std::printf("=== any-result search (§3.2.3) ===\nsearching %s\nfound "
              "division: %s  (either (/ p q) or (/ r s) is acceptable)\n",
              curare::sexpr::write_str(with_div).c_str(),
              curare::sexpr::write_str(hit).c_str());
  return 0;
}
