;; Differential corpus: the compiled subset, shape by shape. Every
;; form here lands on bytecode under the VM; the runner diffs printed
;; output and the final value against the tree-walker.

(defun fact (n) (if (< n 2) 1 (* n (fact (- n 1)))))
(print (fact 12))

;; Deep tail recursion: TCE on both engines, no depth error.
(defun count-down (n acc) (if (< n 1) acc (count-down (- n 1) (+ acc 1))))
(print (count-down 100000 0))

;; cond with builtin slow paths burned in (mod, /).
(defun collatz-len (n steps)
  (cond ((= n 1) steps)
        ((= (mod n 2) 0) (collatz-len (/ n 2) (+ steps 1)))
        (t (collatz-len (+ (* 3 n) 1) (+ steps 1)))))
(print (collatz-len 27 0))

;; let evaluates inits in the outer scope; let* sequentially.
(let ((x 1) (y 2)) (print (+ x y)))
(print (let ((x 1)) (let ((x 2) (y x)) y)))
(print (let* ((x 2) (y (* x x))) (- y x)))
(print (let ((x)) x))

;; Top-level setq creates a global; later forms read it.
(setq g-counter 10)
(print (+ g-counter 1))

;; Loops: while, dotimes (result form), dolist (result form).
(print (let ((acc 0) (i 0))
         (while (< i 10) (setq acc (+ acc i)) (setq i (+ i 1)))
         acc))
(print (let ((acc 0)) (dotimes (i 10 acc) (setq acc (+ acc (* i i))))))
(print (let ((s 0)) (dolist (x '(1 2 3 4) s) (setq s (+ s x)))))
;; dotimes leaves var = n after the loop; dolist leaves var nil.
(print (let ((last 0)) (dotimes (i 3 i) (setq last i))))

;; push / pop / incf / decf on slot places.
(let ((l nil))
  (push 1 l)
  (push 2 l)
  (push 3 l)
  (print l)
  (print (pop l))
  (print l))
(let ((n 5)) (incf n 2) (decf n) (print n))

;; setf on cxr places navigates and mutates in place.
(let ((c (cons 1 2)))
  (setf (car c) 10)
  (setf (cdr c) 20)
  (print c))
(let ((l (list 1 2 3)))
  (setf (cadr l) 99)
  (print l))

;; Short-circuit forms and their empty/degenerate spellings.
(print (and 1 2 3))
(print (and 1 nil 3))
(print (and))
(print (or nil nil 7))
(print (or))
(print (when (< 1 2) 'yes))
(print (unless (< 1 2) 'no))
(print (cond (nil 1) (7) (t 2)))

;; Predicates and list surgery through the direct opcodes.
(print (null nil))
(print (not 3))
(print (atom '(1)))
(print (consp '(1)))
(print (eq 'a 'a))
(print (car '(1 2)))
(print (cdr '(1 2)))
(print (cons 1 (cons 2 nil)))
(print (1+ 41))
(print (1- 43))

;; Redefinition is late-bound for user functions: callers see the new
;; definition without recompilation.
(defun base-fn (x) (+ x 1))
(defun caller (x) (base-fn x))
(print (caller 10))
(defun base-fn (x) (* x 100))
(print (caller 10))

(print 'done)
