;; Differential corpus: numeric and data edges. The VM's fast opcodes
;; (add/sub/mul/compare) inline only the two-fixnum case and punt to
;; the burned-in builtin otherwise — floats, negatives, and chain
;; comparisons walk both paths and must not diverge.

(print (+ 1 2))
(print (+ 1.5 2))
(print (- 3 4.5))
(print (* -3 7))
(print (< 1 2.5))
(print (<= 2 2))
(print (> -1 -2))
(print (>= 2 3))
(print (= 2 2.0))

;; Variadic spellings skip the 2-arg fast ops entirely.
(print (+ 1 2 3 4))
(print (- 10 1 2))
(print (* 2 3 4))
(print (< 1 2 3))
(print (< 1 3 2))
(print (max 3 1 4 1 5))
(print (min 3 1 4))

;; Integer edges: division, modulo with negatives, expt, abs.
(print (/ 7 2))
(print (mod 7 3))
(print (mod -7 3))
(print (expt 2 10))
(print (abs -42))
(print (floor 2.7))
(print (truncate -2.7))

;; Equality ladder: eq (identity) vs eql vs equal (structure).
(print (eq '(1) '(1)))
(print (equal '(1 (2 3)) '(1 (2 3))))
(print (eql 2 2))
(print (zerop 0))
(print (evenp 4))
(print (oddp 4))

;; Strings and symbols through the constant pool.
(print "hello")
(print (concat "a" "b" "c"))
(print (string= "x" "x"))
(print (symbol-name 'foo))
(print (length '(1 2 3)))
(print (reverse '(1 2 3)))
(print (append '(1 2) '(3 4)))
(print (nth 2 '(a b c d)))
(print (member 3 '(1 2 3 4)))
(print (assoc 'b '((a 1) (b 2))))

;; Deterministic RNG: both engines run under the same seed.
(print (random 1000))
(print (random 1000))

(print 'done)
