;; Differential corpus: forms the compiler refuses (lambda, defstruct,
;; struct/nth setf places) interleaved with compiled calls, so the
;; fallback seams — bytecode calling tree-walked closures and back —
;; are crossed repeatedly in one program.

;; A compiled caller applying tree-walked lambdas.
(defun twice (f x) (funcall f (funcall f x)))
(print (twice (lambda (x) (* x 3)) 7))

;; A closure factory: the body holds a lambda, so make-adder itself
;; tree-walks; the closures it returns tree-walk too — all invisible
;; to callers.
(defun make-adder (k) (lambda (x) (+ x k)))
(print (funcall (make-adder 5) 10))
(print (mapcar (make-adder 100) '(1 2 3)))

;; Structs: definition, construction, accessors, and setf on a struct
;; field (a place the bytecode compiler refuses).
(defstruct pt (data x) (data y))
(let ((p (make-pt 'x 1 'y 2)))
  (print (x p))
  (setf (y p) 9)
  (print (y p))
  (print (pt-p p)))

;; Higher-order builtins driving compiled closures: apply/reduce/sort
;; re-enter the engine through Interp::apply, which routes compiled
;; closures back onto bytecode.
(defun add2 (a b) (+ a b))
(print (apply add2 '(3 4)))
(print (reduce add2 '(1 2 3 4 5)))
(defun lt (a b) (< a b))
(print (sort '(3 1 4 1 5 9 2 6) lt))

;; setf on an nth place (refused → tree) beside cxr places (compiled).
(let ((l (list 1 2 3)))
  (setf (nth 1 l) 'two)
  (setf (car l) 'one)
  (print l))

(print 'done)
