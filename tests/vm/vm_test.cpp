// Bytecode VM tests: expression parity against the tree-walker, error
// parity (same messages from either engine), fallback coverage, tail
// calls, late binding, and the burned-in-builtin contract.
#include "vm/vm.hpp"

#include <gtest/gtest.h>

#include <string>
#include <string_view>

#include "gc/gc.hpp"
#include "lisp/interp.hpp"
#include "sexpr/printer.hpp"
#include "sexpr/reader.hpp"
#include "vm/compiler.hpp"

namespace curare::vm {
namespace {

using sexpr::write_str;

/// Result-or-error plus captured printer output of one program run.
struct Outcome {
  std::string result;
  std::string output;
  bool operator==(const Outcome&) const = default;
};

Outcome run_tree(std::string_view src) {
  sexpr::Ctx ctx;
  lisp::Interp in(ctx);
  in.set_echo(false);
  Outcome o;
  try {
    o.result = write_str(in.eval_program(src));
  } catch (const sexpr::LispError& e) {
    o.result = std::string("error: ") + e.what();
  }
  o.output = in.take_output();
  return o;
}

Outcome run_vm(std::string_view src) {
  sexpr::Ctx ctx;
  lisp::Interp in(ctx);
  in.set_echo(false);
  Vm vm(in);
  vm.install_apply_hook();
  Outcome o;
  try {
    o.result = write_str(vm.eval_program(src));
  } catch (const sexpr::LispError& e) {
    o.result = std::string("error: ") + e.what();
  }
  o.output = in.take_output();
  return o;
}

/// Both engines on fresh interpreters; everything observable equal.
void expect_parity(std::string_view src) {
  const Outcome tree = run_tree(src);
  const Outcome vm = run_vm(src);
  EXPECT_EQ(tree.result, vm.result) << "program: " << src;
  EXPECT_EQ(tree.output, vm.output) << "program: " << src;
}

TEST(VmParityTest, ExpressionBattery) {
  const char* programs[] = {
      "42",
      "nil",
      "t",
      "'sym",
      "'(1 2 3)",
      "\"str\"",
      "(+ 1 2)",
      "(+ 1 2 3 4)",
      "(- 7)",
      "(* 2.5 4)",
      "(if 0 'yes 'no)",
      "(if nil 1)",
      "(cond (nil 1) (7) (t 2))",
      "(when t 1 2 3)",
      "(unless t 'x)",
      "(and)",
      "(or)",
      "(and 1 nil 3)",
      "(or nil 2)",
      "(let ((x 1)) (let ((x 2) (y x)) y))",
      "(let* ((x 2) (y (+ x 1))) (* x y))",
      "(let ((x)) x)",
      "(let ((x 1) (x 2)) x)",
      "(progn 1 2 3)",
      "(progn)",
      "(setq a 1 b 2) (+ a b)",
      "(setq)",
      "(let ((c (cons 1 2))) (setf (car c) 9) c)",
      "(let ((l (list 1 2 3))) (setf (caddr l) 'z) l)",
      "(let ((i 0)) (while (< i 5) (setq i (+ i 1))) i)",
      "(dotimes (i 4) i)",
      "(let ((s 0)) (dotimes (i 5 s) (setq s (+ s i))))",
      "(let ((s 0)) (dolist (x '(1 2 3) s) (setq s (+ s x))))",
      "(dolist (x nil) x)",
      "(let ((n 3)) (incf n) (decf n 2) n)",
      "(let ((l '())) (push 'a l) (push 'b l) (list (pop l) l))",
      "(defun f (x &rest r) (cons x r)) (f 1 2 3)",
      "(defun g (x &optional y) (list x y)) (g 1)",
      "(declare (ignore x))",
      "(defun fib (n) (if (< n 2) n (+ (fib (- n 1)) (fib (- n 2))))) "
      "(fib 15)",
      "((lambda (x y) (* x y)) 6 7)",
      "(funcall (lambda (x) (+ x 1)) 41)",
      "(eq 'a 'a)",
      "(equal '(1 2) '(1 2))",
      "(car nil)",
      "(cdr nil)",
      "(1+ 1.5)",
  };
  for (const char* p : programs) expect_parity(p);
}

TEST(VmParityTest, ErrorMessagesMatchTreeWalker) {
  const char* programs[] = {
      "no-such-var",
      "(no-such-fn 1)",
      "(3 4)",
      "(defun f (x) x) (f 1 2)",
      "(defun f (x &rest r) x) (f)",
      "(car 5)",
      "(cons 1)",
      "(+ 'a 1)",
      "(1+ 'a)",
      "(dotimes (i 'x) i)",
      "(setf (car 5) 1)",
      "(dolist (x 5) x)",
      "(let ((l (list 1))) (setf (cadr l) 2) l)",
      // Non-tail infinite recursion: both engines hit the depth limit
      // with the same message.
      "(defun inf (n) (+ 1 (inf n))) (inf 0)",
  };
  for (const char* p : programs) expect_parity(p);
}

TEST(VmTest, DeepTailRecursionStaysFlat) {
  const Outcome o = run_vm(
      "(defun lp (n) (if (< n 1) 'ok (lp (- n 1)))) (lp 200000)");
  EXPECT_EQ(o.result, "ok");
}

TEST(VmTest, MutualTailCallsThroughApply) {
  // even?/odd? tail-call each other: every hop reuses the frame via
  // kTailCall on a freshly compiled callee.
  const Outcome o = run_vm(
      "(defun ev (n) (if (< n 1) t (od (- n 1))))"
      "(defun od (n) (if (< n 1) nil (ev (- n 1))))"
      "(ev 100001)");
  EXPECT_EQ(o.result, "nil");
}

TEST(VmTest, RedefinedFunctionsAreLateBound) {
  sexpr::Ctx ctx;
  lisp::Interp in(ctx);
  in.set_echo(false);
  Vm vm(in);
  vm.install_apply_hook();
  vm.eval_program("(defun base (x) (+ x 1)) (defun caller (x) (base x))");
  EXPECT_EQ(write_str(vm.eval_program("(caller 10)")), "11");
  vm.eval_program("(defun base (x) (* x 100))");
  EXPECT_EQ(write_str(vm.eval_program("(caller 10)")), "1000")
      << "user functions resolve through the environment on every call";
}

TEST(VmTest, CoreBuiltinsBurnInAtCompileTime) {
  // The documented contract (vm/compiler.hpp): a global that holds the
  // interpreter's own builtin at compile time is burned into the code
  // object. Shadowing `+` after `user-plus` compiled does not re-route
  // the compiled code; a function compiled after the shadowing sees
  // the new binding.
  sexpr::Ctx ctx;
  lisp::Interp in(ctx);
  in.set_echo(false);
  Vm vm(in);
  vm.install_apply_hook();
  vm.eval_program("(defun user-plus (a b) (+ a b))");
  EXPECT_EQ(write_str(vm.eval_program("(user-plus 2 3)")), "5");
  vm.eval_program("(defun + (a b) 'shadowed)");
  EXPECT_EQ(write_str(vm.eval_program("(user-plus 2 3)")), "5")
      << "already-compiled code keeps the burned-in builtin";
  vm.eval_program("(defun late-plus (a b) (+ a b))");
  EXPECT_EQ(write_str(vm.eval_program("(late-plus 2 3)")), "shadowed")
      << "code compiled after the shadowing sees the new binding";
}

TEST(VmTest, RefusedFormsFallBackToTree) {
  sexpr::Ctx ctx;
  lisp::Interp in(ctx);
  in.set_echo(false);
  Vm vm(in);
  vm.install_apply_hook();
  // defun itself refuses (top-level fallback); make-adder's body holds
  // a lambda so the closure caches a refusal and tree-walks on apply.
  const Value v = vm.eval_program(
      "(defun make-adder (k) (lambda (x) (+ x k)))"
      "(funcall (make-adder 5) 10)");
  EXPECT_EQ(write_str(v), "15");
  EXPECT_GT(vm.fallback_entries(), 0u)
      << "refused closures are counted as tree-walker entries";
}

TEST(VmTest, CompiledEntriesCountApplications) {
  sexpr::Ctx ctx;
  lisp::Interp in(ctx);
  in.set_echo(false);
  Vm vm(in);
  vm.install_apply_hook();
  vm.eval_program("(defun sq (x) (* x x))");
  EXPECT_EQ(vm.compiled_entries(), 0u);
  // Applied through the hook (mapcar calls Interp::apply): every
  // application enters the VM.
  EXPECT_EQ(write_str(vm.eval_program("(mapcar sq '(1 2 3))")),
            "(1 4 9)");
  EXPECT_GT(vm.compiled_entries(), 0u);
}

TEST(VmTest, DisassembleNamesOpsAndConstants) {
  sexpr::Ctx ctx;
  lisp::Interp in(ctx);
  in.set_echo(false);
  Vm vm(in);
  vm.eval_program("(defun f (x) (if (< x 2) 'small (1+ x)))");
  const auto fn = in.global_env()->lookup(ctx.symbols.intern("f"));
  ASSERT_TRUE(fn.has_value());
  ASSERT_TRUE(fn->is(sexpr::Kind::Closure));
  const CodeObject* code = nullptr;
  {
    gc::MutatorScope ms(ctx.heap.gc());
    code = vm.ensure_compiled(
        static_cast<const lisp::Closure*>(fn->obj()));
  }
  ASSERT_NE(code, nullptr);
  const std::string dis = code->disassemble();
  EXPECT_NE(dis.find("f (params 1"), std::string::npos) << dis;
  EXPECT_NE(dis.find("jump-if-nil"), std::string::npos) << dis;
  EXPECT_NE(dis.find("add1"), std::string::npos) << dis;
  EXPECT_NE(dis.find("return"), std::string::npos) << dis;
  EXPECT_NE(dis.find("small"), std::string::npos)
      << "constant-pool operands print as s-expressions: " << dis;
}

TEST(VmTest, CompileRefusalCarriesAReason) {
  sexpr::Ctx ctx;
  lisp::Interp in(ctx);
  gc::MutatorScope ms(ctx.heap.gc());
  const Value form =
      sexpr::read_one(ctx, "(lambda (x) x)");
  const CompileResult r = compile_expr(in, form, in.global_env());
  EXPECT_EQ(r.code, nullptr);
  EXPECT_FALSE(r.why.empty());
}

}  // namespace
}  // namespace curare::vm
