// The differential oracle: every program in examples/lisp/ and
// tests/vm/corpus/ runs under both engines — a plain tree-walking
// Interp and a Vm over a fresh Interp — and everything observable
// must match: the final value, any error text, and the captured
// printer output.
//
// The runner mirrors Curare::load_program's treatment of top-level
// forms (curare-declare is advice, not code) and Interp::eval_program's
// rooting, but deliberately uses bare interpreters with no Runtime:
// programs that need runtime primitives (%cri-run, locks) fail with
// the *same* unbound error on both engines, which is itself parity
// coverage; and deadlock.lisp would otherwise live up to its name.
// The RNG is seeded identically so (random n) streams agree.
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "gc/gc.hpp"
#include "lisp/interp.hpp"
#include "sexpr/printer.hpp"
#include "sexpr/reader.hpp"
#include "vm/vm.hpp"

namespace curare::vm {
namespace {

namespace fs = std::filesystem;
using sexpr::write_str;

struct Outcome {
  std::string result;
  std::string output;
};

Outcome run_program(const std::string& src, bool use_vm) {
  sexpr::Ctx ctx;
  lisp::Interp in(ctx);
  in.set_echo(false);
  in.seed_rng(42);
  Vm vm(in);
  if (use_vm) vm.install_apply_hook();
  Outcome o;
  try {
    gc::RootScope roots(ctx.heap.gc());
    std::vector<Value> forms;
    {
      gc::MutatorScope ms(ctx.heap.gc());
      forms = sexpr::read_all(ctx, src);
      for (Value f : forms) roots.add(f);
    }
    Value last = Value::nil();
    for (Value form : forms) {
      ctx.heap.gc().maybe_collect();
      if (form.is(sexpr::Kind::Cons) &&
          sexpr::car(form).is(sexpr::Kind::Symbol) &&
          sexpr::as_symbol(sexpr::car(form))->name == "curare-declare")
        continue;
      last = use_vm ? vm.eval_top(form) : in.eval_top(form);
    }
    o.result = write_str(last);
  } catch (const std::exception& e) {
    o.result = std::string("error: ") + e.what();
  }
  o.output = in.take_output();
  return o;
}

std::vector<fs::path> corpus() {
  const fs::path repo = CURARE_REPO_DIR;
  std::vector<fs::path> files;
  for (const char* dir : {"tests/vm/corpus", "examples/lisp"}) {
    for (const auto& entry : fs::directory_iterator(repo / dir)) {
      if (entry.path().extension() == ".lisp")
        files.push_back(entry.path());
    }
  }
  std::sort(files.begin(), files.end());
  return files;
}

TEST(DifferentialTest, EnginesAgreeOnEveryCorpusProgram) {
  const std::vector<fs::path> files = corpus();
  ASSERT_GE(files.size(), 3u) << "corpus missing — wrong CURARE_REPO_DIR?";
  for (const fs::path& path : files) {
    std::ifstream f(path);
    ASSERT_TRUE(f.is_open()) << path;
    std::stringstream ss;
    ss << f.rdbuf();
    const std::string src = ss.str();
    const Outcome tree = run_program(src, /*use_vm=*/false);
    const Outcome vm = run_program(src, /*use_vm=*/true);
    EXPECT_EQ(tree.result, vm.result) << path.filename();
    EXPECT_EQ(tree.output, vm.output) << path.filename();
  }
}

// The corpus must actually exercise the VM: the core-forms program
// compiles its defuns (compiled entries) and the fallback program
// crosses the refusal seam (fallback entries).
TEST(DifferentialTest, CorpusCoversBothEnginePaths) {
  const fs::path repo = CURARE_REPO_DIR;
  for (const auto& [file, want_compiled, want_fallback] :
       {std::tuple{"core_forms.lisp", true, false},
        std::tuple{"fallback_mix.lisp", true, true}}) {
    std::ifstream f(repo / "tests/vm/corpus" / file);
    ASSERT_TRUE(f.is_open()) << file;
    std::stringstream ss;
    ss << f.rdbuf();
    sexpr::Ctx ctx;
    lisp::Interp in(ctx);
    in.set_echo(false);
    in.seed_rng(42);
    Vm vm(in);
    vm.install_apply_hook();
    vm.eval_program(ss.str());
    if (want_compiled) {
      EXPECT_GT(vm.compiled_entries(), 0u) << file;
    }
    if (want_fallback) {
      EXPECT_GT(vm.fallback_entries(), 0u) << file;
    }
  }
}

}  // namespace
}  // namespace curare::vm
