// VM rooting under collection, mirroring gc_test's QueueGcRootsTest:
// a collection forced from another thread *mid-execution* must see
// every live frame slot and operand of the running VM (the ExecRoots
// StackRoots frame), while values the program already dropped are
// reclaimed in the same pause.
#include <atomic>
#include <thread>

#include <gtest/gtest.h>

#include "gc/gc.hpp"
#include "lisp/interp.hpp"
#include "sexpr/printer.hpp"
#include "vm/vm.hpp"

namespace curare::vm {
namespace {

using sexpr::write_str;

/// Installs (gc-now): releases this thread's unsafe region, runs a
/// full stop-the-world collection from a helper thread (the same
/// shape a blocked future touch exposes), reacquires, and records how
/// many objects the pause reclaimed.
void install_gc_now(lisp::Interp& in, gc::GcHeap& h,
                    std::atomic<std::uint64_t>& reclaimed) {
  in.define_builtin(
      "gc-now", 0, 0,
      [&h, &reclaimed](lisp::Interp&, std::span<const sexpr::Value>) {
        const std::uint64_t before = h.stats().reclaimed_objects;
        const std::size_t depth = h.blocking_release();
        std::thread t([&h] { h.collect("test"); });
        t.join();
        h.blocking_reacquire(depth);
        reclaimed.fetch_add(h.stats().reclaimed_objects - before,
                            std::memory_order_relaxed);
        return sexpr::Value::nil();
      });
}

TEST(VmGcRootsTest, LiveFrameSlotsSurviveMidExecutionCollect) {
  sexpr::Ctx ctx;
  lisp::Interp in(ctx);
  in.set_echo(false);
  Vm vm(in);
  vm.install_apply_hook();
  std::atomic<std::uint64_t> reclaimed{0};
  install_gc_now(in, ctx.heap.gc(), reclaimed);

  // keeper builds a 100-cons list in a frame slot and 50 dropped
  // decoy conses, collects mid-frame, then folds the list. The fold
  // result proves every slot survived; the reclaim counter proves the
  // pause actually swept (the decoys are the only garbage).
  const Value v = vm.eval_program(
      "(defun keeper (n)"
      "  (let ((l nil) (s 0))"
      "    (dotimes (i n) (push i l))"
      "    (dotimes (i 50) (cons i i))"
      "    (gc-now)"
      "    (dolist (x l) (setq s (+ s x)))"
      "    s))"
      "(keeper 100)");
  EXPECT_EQ(write_str(v), "4950");
  EXPECT_GE(reclaimed.load(), 50u)
      << "the dropped decoy conses are garbage at the pause";
}

TEST(VmGcRootsTest, OperandStackSurvivesCollectInsideExpression) {
  sexpr::Ctx ctx;
  lisp::Interp in(ctx);
  in.set_echo(false);
  Vm vm(in);
  vm.install_apply_hook();
  std::atomic<std::uint64_t> reclaimed{0};
  install_gc_now(in, ctx.heap.gc(), reclaimed);

  // The outer cons's first operand is a freshly consed pair sitting
  // on the operand stack (not in any slot, not in any environment)
  // while gc-now stops the world inside the second operand.
  const Value v = vm.eval_program(
      "(defun mid (a b)"
      "  (cons (cons a b) (progn (gc-now) (cons b a))))"
      "(mid 1 2)");
  EXPECT_EQ(write_str(v), "((1 . 2) 2 . 1)");
}

TEST(VmGcRootsTest, NestedCompiledFramesAllTraced) {
  sexpr::Ctx ctx;
  lisp::Interp in(ctx);
  in.set_echo(false);
  Vm vm(in);
  vm.install_apply_hook();
  std::atomic<std::uint64_t> reclaimed{0};
  install_gc_now(in, ctx.heap.gc(), reclaimed);

  // Three compiled frames deep at the pause; each frame holds a list
  // in a slot that is consumed only after the collection.
  const Value v = vm.eval_program(
      "(defun leaf (x) (gc-now) x)"
      "(defun midf (x) (let ((m (list x x))) (+ (leaf x) (car m))))"
      "(defun root (x) (let ((r (list x x x))) (+ (midf x) (length r))))"
      "(root 7)");
  EXPECT_EQ(write_str(v), "17");
}

}  // namespace
}  // namespace curare::vm
