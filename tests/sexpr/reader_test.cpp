// Reader tests: the analyzer consumes program text through this path, so
// every syntactic form the paper's examples use is covered.
#include "sexpr/reader.hpp"

#include <gtest/gtest.h>

#include "sexpr/printer.hpp"

namespace curare::sexpr {
namespace {

class ReaderTest : public ::testing::Test {
 protected:
  Ctx ctx;

  Value one(std::string_view src) { return read_one(ctx, src); }
  std::string round_trip(std::string_view src) {
    return write_str(one(src));
  }
};

TEST_F(ReaderTest, Fixnum) {
  Value v = one("42");
  ASSERT_TRUE(v.is_fixnum());
  EXPECT_EQ(v.as_fixnum(), 42);
}

TEST_F(ReaderTest, NegativeFixnum) {
  EXPECT_EQ(one("-17").as_fixnum(), -17);
}

TEST_F(ReaderTest, Float) {
  Value v = one("3.5");
  ASSERT_TRUE(v.is(Kind::Float));
  EXPECT_DOUBLE_EQ(static_cast<Float*>(v.obj())->value, 3.5);
}

TEST_F(ReaderTest, SymbolBasic) {
  Value v = one("foo");
  ASSERT_TRUE(v.is(Kind::Symbol));
  EXPECT_EQ(as_symbol(v)->name, "foo");
}

TEST_F(ReaderTest, SymbolWithSpecialChars) {
  EXPECT_EQ(as_symbol(one("list*"))->name, "list*");
  EXPECT_EQ(as_symbol(one("1+"))->name, "1+");
  EXPECT_EQ(as_symbol(one("remq-d"))->name, "remq-d");
  EXPECT_EQ(as_symbol(one("&rest"))->name, "&rest");
  EXPECT_EQ(as_symbol(one("%cri-enqueue"))->name, "%cri-enqueue");
}

TEST_F(ReaderTest, NilReadsAsNil) {
  EXPECT_TRUE(one("nil").is_nil());
  EXPECT_TRUE(one("()").is_nil());
}

TEST_F(ReaderTest, SimpleList) {
  EXPECT_EQ(round_trip("(a b c)"), "(a b c)");
}

TEST_F(ReaderTest, NestedList) {
  EXPECT_EQ(round_trip("(defun f (l) (when l (print (car l)) (f (cdr l))))"),
            "(defun f (l) (when l (print (car l)) (f (cdr l))))");
}

TEST_F(ReaderTest, DottedPair) {
  EXPECT_EQ(round_trip("(a . b)"), "(a . b)");
  EXPECT_EQ(round_trip("(a b . c)"), "(a b . c)");
}

TEST_F(ReaderTest, DotInFloatIsNotDottedPair) {
  EXPECT_EQ(round_trip("(1.5 2.5)"), "(1.5 2.5)");
}

TEST_F(ReaderTest, QuoteShorthand) {
  EXPECT_EQ(round_trip("'x"), "(quote x)");
  EXPECT_EQ(round_trip("'(a b)"), "(quote (a b))");
}

TEST_F(ReaderTest, StringLiteral) {
  Value v = one("\"hello\"");
  ASSERT_TRUE(v.is(Kind::String));
  EXPECT_EQ(as_string(v)->text, "hello");
}

TEST_F(ReaderTest, StringEscapes) {
  EXPECT_EQ(as_string(one(R"("a\nb\t\"c\\")"))->text, "a\nb\t\"c\\");
}

TEST_F(ReaderTest, CommentsSkipped) {
  EXPECT_EQ(round_trip("; header\n(a ; mid\n b)"), "(a b)");
}

TEST_F(ReaderTest, MultipleFormsReadAll) {
  auto forms = read_all(ctx, "(a) (b) 3");
  ASSERT_EQ(forms.size(), 3u);
  EXPECT_EQ(write_str(forms[0]), "(a)");
  EXPECT_EQ(write_str(forms[1]), "(b)");
  EXPECT_EQ(forms[2].as_fixnum(), 3);
}

TEST_F(ReaderTest, EmptyInputGivesNoForms) {
  EXPECT_TRUE(read_all(ctx, "  ; just a comment\n").empty());
}

TEST_F(ReaderTest, ErrorUnmatchedClose) {
  EXPECT_THROW(one(")"), ReadError);
}

TEST_F(ReaderTest, ErrorUnterminatedList) {
  EXPECT_THROW(one("(a b"), ReadError);
}

TEST_F(ReaderTest, ErrorUnterminatedString) {
  EXPECT_THROW(one("\"abc"), ReadError);
}

TEST_F(ReaderTest, ErrorDottedNoHead) {
  EXPECT_THROW(one("( . b)"), ReadError);
}

TEST_F(ReaderTest, ErrorMalformedDotted) {
  EXPECT_THROW(one("(a . b c)"), ReadError);
}

TEST_F(ReaderTest, ErrorPositionReported) {
  try {
    one("(a\n  b");
    FAIL() << "expected ReadError";
  } catch (const ReadError& e) {
    EXPECT_GE(e.line(), 2u) << "error should point past line 1";
  }
}

TEST_F(ReaderTest, ReadOneRejectsTrailing) {
  EXPECT_THROW(read_one(ctx, "(a) (b)"), LispError);
}

TEST_F(ReaderTest, PaperFigure4ReadsCleanly) {
  // The Fig. 4 function with a distance-1 conflict.
  const char* src =
      "(defun f (l)"
      "  (when l"
      "    (setf (cadr l) (car l))"
      "    (f (cdr l))))";
  EXPECT_EQ(round_trip(src),
            "(defun f (l) (when l (setf (cadr l) (car l)) (f (cdr l))))");
}

}  // namespace
}  // namespace curare::sexpr
