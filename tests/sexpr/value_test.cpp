// Unit tests for the tagged Value representation and checked accessors.
#include "sexpr/value.hpp"

#include <gtest/gtest.h>

#include "sexpr/ctx.hpp"

namespace curare::sexpr {
namespace {

TEST(Value, NilIsFalsyAndUnique) {
  Value n = Value::nil();
  EXPECT_TRUE(n.is_nil());
  EXPECT_FALSE(n.truthy());
  EXPECT_FALSE(n.is_fixnum());
  EXPECT_FALSE(n.is_object());
  EXPECT_EQ(n, Value::nil());
}

TEST(Value, FixnumRoundTrip) {
  for (std::int64_t n : {0LL, 1LL, -1LL, 42LL, -123456789LL,
                         (1LL << 60), -(1LL << 60)}) {
    Value v = Value::fixnum(n);
    EXPECT_TRUE(v.is_fixnum());
    EXPECT_FALSE(v.is_object());
    EXPECT_EQ(v.as_fixnum(), n);
  }
}

TEST(Value, FixnumZeroIsNotNil) {
  // fixnum 0 must be distinguishable from nil (the tag bit is set).
  Value zero = Value::fixnum(0);
  EXPECT_TRUE(zero.is_fixnum());
  EXPECT_FALSE(zero.is_nil());
  EXPECT_TRUE(zero.truthy());
}

TEST(Value, NegativeFixnumPreservesSign) {
  Value v = Value::fixnum(-7);
  EXPECT_EQ(v.as_fixnum(), -7);
}

TEST(Value, ConsCellHoldsCarAndCdr) {
  Ctx ctx;
  Value c = ctx.cons(Value::fixnum(1), Value::fixnum(2));
  EXPECT_TRUE(c.is(Kind::Cons));
  EXPECT_EQ(car(c).as_fixnum(), 1);
  EXPECT_EQ(cdr(c).as_fixnum(), 2);
}

TEST(Value, ConsMutation) {
  Ctx ctx;
  Value c = ctx.cons(Value::nil(), Value::nil());
  as_cons(c)->set_car(Value::fixnum(10));
  as_cons(c)->set_cdr(Value::fixnum(20));
  EXPECT_EQ(car(c).as_fixnum(), 10);
  EXPECT_EQ(cdr(c).as_fixnum(), 20);
}

TEST(Value, CarCdrOfNilIsNil) {
  EXPECT_TRUE(car(Value::nil()).is_nil());
  EXPECT_TRUE(cdr(Value::nil()).is_nil());
}

TEST(Value, CarOfFixnumThrows) {
  EXPECT_THROW(car(Value::fixnum(3)), LispError);
  EXPECT_THROW(cdr(Value::fixnum(3)), LispError);
}

TEST(Value, AsConsTypeError) {
  Ctx ctx;
  EXPECT_THROW(as_cons(ctx.sym("x")), LispError);
  EXPECT_THROW(as_symbol(Value::fixnum(1)), LispError);
  EXPECT_THROW(as_string(Value::nil()), LispError);
}

TEST(Value, CompositeAccessors) {
  Ctx ctx;
  // (1 2 3)
  Value l = ctx.make_list(Value::fixnum(1), Value::fixnum(2),
                          Value::fixnum(3));
  EXPECT_EQ(car(l).as_fixnum(), 1);
  EXPECT_EQ(cadr(l).as_fixnum(), 2);
  EXPECT_EQ(caddr(l).as_fixnum(), 3);
  EXPECT_TRUE(cdddr(l).is_nil());
}

TEST(Value, ListLength) {
  Ctx ctx;
  EXPECT_EQ(list_length(Value::nil()), 0u);
  Value l = ctx.make_list(Value::fixnum(1), Value::fixnum(2));
  EXPECT_EQ(list_length(l), 2u);
}

TEST(Value, ListLengthImproperThrows) {
  Ctx ctx;
  Value dotted = ctx.cons(Value::fixnum(1), Value::fixnum(2));
  EXPECT_THROW(list_length(dotted), LispError);
}

TEST(Value, IsProperList) {
  Ctx ctx;
  EXPECT_TRUE(is_proper_list(Value::nil()));
  EXPECT_TRUE(is_proper_list(ctx.make_list(Value::fixnum(1))));
  EXPECT_FALSE(is_proper_list(ctx.cons(Value::fixnum(1), Value::fixnum(2))));
  EXPECT_FALSE(is_proper_list(Value::fixnum(5)));
}

TEST(Value, IsProperListHandlesCycle) {
  Ctx ctx;
  Value a = ctx.cons(Value::fixnum(1), Value::nil());
  as_cons(a)->set_cdr(a);  // self-cycle
  EXPECT_FALSE(is_proper_list(a, 1000));
}

TEST(Value, SymbolInterning) {
  Ctx ctx;
  Value a = ctx.sym("foo");
  Value b = ctx.sym("foo");
  Value c = ctx.sym("bar");
  EXPECT_EQ(a, b) << "same spelling must intern to the same symbol";
  EXPECT_NE(a, c);
  EXPECT_EQ(as_symbol(a)->name, "foo");
}

TEST(Value, GensymIsFresh) {
  Ctx ctx;
  Value g1 = Value::object(ctx.symbols.gensym());
  Value g2 = Value::object(ctx.symbols.gensym());
  EXPECT_NE(g1, g2);
}

TEST(Value, GensymAvoidsExistingNames) {
  Ctx ctx;
  ctx.sym("g0");
  ctx.sym("g1");
  Value g = Value::object(ctx.symbols.gensym());
  EXPECT_NE(as_symbol(g)->name, "g0");
  EXPECT_NE(as_symbol(g)->name, "g1");
}

}  // namespace
}  // namespace curare::sexpr
