// Heap and symbol-table concurrency tests: the CRI server pool allocates
// and interns from many threads, so these exercise the sharded heap and
// shared-lock interning under contention.
#include "sexpr/heap.hpp"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "sexpr/ctx.hpp"
#include "sexpr/list_ops.hpp"

namespace curare::sexpr {
namespace {

TEST(Heap, ListBuilder) {
  Heap heap;
  Value l = heap.list({Value::fixnum(1), Value::fixnum(2), Value::fixnum(3)});
  EXPECT_EQ(list_length(l), 3u);
  EXPECT_EQ(car(l).as_fixnum(), 1);
  EXPECT_EQ(caddr(l).as_fixnum(), 3);
}

TEST(Heap, EmptyListIsNil) {
  Heap heap;
  EXPECT_TRUE(heap.list({}).is_nil());
}

TEST(Heap, LiveObjectCount) {
  Heap heap;
  const std::size_t before = heap.live_objects();
  heap.cons(Value::nil(), Value::nil());
  heap.cons(Value::nil(), Value::nil());
  EXPECT_EQ(heap.live_objects(), before + 2);
}

TEST(Heap, ConcurrentAllocationIsSafe) {
  Heap heap;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20000;
  std::vector<std::thread> ts;
  std::vector<Value> heads(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    ts.emplace_back([&heap, &heads, t] {
      Value acc = Value::nil();
      for (int i = 0; i < kPerThread; ++i)
        acc = heap.cons(Value::fixnum(i), acc);
      heads[static_cast<std::size_t>(t)] = acc;
    });
  }
  for (auto& t : ts) t.join();
  EXPECT_EQ(heap.live_objects(),
            static_cast<std::size_t>(kThreads) * kPerThread);
  for (Value h : heads)
    EXPECT_EQ(list_length(h), static_cast<std::size_t>(kPerThread));
}

TEST(SymbolTable, ConcurrentInterningGivesOneIdentity) {
  Heap heap;
  SymbolTable syms(heap);
  constexpr int kThreads = 8;
  std::vector<std::thread> ts;
  std::vector<Symbol*> results(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    ts.emplace_back([&syms, &results, t] {
      for (int i = 0; i < 1000; ++i)
        results[static_cast<std::size_t>(t)] = syms.intern("shared-name");
    });
  }
  for (auto& t : ts) t.join();
  for (int t = 1; t < kThreads; ++t)
    EXPECT_EQ(results[static_cast<std::size_t>(t)], results[0]);
}

TEST(ListOps, AppendSharesTail) {
  Heap heap;
  Value b = heap.list({Value::fixnum(3), Value::fixnum(4)});
  Value a = heap.list({Value::fixnum(1), Value::fixnum(2)});
  Value ab = append2(heap, a, b);
  EXPECT_EQ(list_length(ab), 4u);
  EXPECT_EQ(cdr(cdr(ab)), b) << "append shares the second list";
}

TEST(ListOps, Reverse) {
  Heap heap;
  Value l = heap.list({Value::fixnum(1), Value::fixnum(2), Value::fixnum(3)});
  Value r = reverse_list(heap, l);
  EXPECT_EQ(car(r).as_fixnum(), 3);
  EXPECT_EQ(caddr(r).as_fixnum(), 1);
  EXPECT_EQ(car(l).as_fixnum(), 1) << "reverse is non-destructive";
}

TEST(ListOps, MemberAndAssoc) {
  Heap heap;
  SymbolTable syms(heap);
  Value a = syms.intern_value("a");
  Value b = syms.intern_value("b");
  Value l = heap.list({a, b});
  EXPECT_FALSE(member_eq(b, l).is_nil());
  EXPECT_TRUE(member_eq(syms.intern_value("c"), l).is_nil());

  Value alist = heap.list({heap.cons(a, Value::fixnum(1)),
                           heap.cons(b, Value::fixnum(2))});
  Value hit = assoc_eq(b, alist);
  EXPECT_EQ(cdr(hit).as_fixnum(), 2);
  EXPECT_TRUE(assoc_eq(syms.intern_value("z"), alist).is_nil());
}

TEST(ListOps, CopyTreeIsDeep) {
  Heap heap;
  Value inner = heap.cons(Value::fixnum(1), Value::nil());
  Value outer = heap.cons(inner, Value::nil());
  Value copy = copy_tree(heap, outer);
  EXPECT_NE(copy, outer);
  EXPECT_NE(car(copy), inner);
  as_cons(inner)->set_car(Value::fixnum(99));
  EXPECT_EQ(car(car(copy)).as_fixnum(), 1) << "copy unaffected by mutation";
}

}  // namespace
}  // namespace curare::sexpr
