#include "sexpr/equal.hpp"

#include <gtest/gtest.h>

#include "sexpr/ctx.hpp"
#include "sexpr/reader.hpp"

namespace curare::sexpr {
namespace {

class EqualTest : public ::testing::Test {
 protected:
  Ctx ctx;
};

TEST_F(EqualTest, EqIsIdentity) {
  Value a = ctx.cons(Value::fixnum(1), Value::nil());
  Value b = ctx.cons(Value::fixnum(1), Value::nil());
  EXPECT_TRUE(eq(a, a));
  EXPECT_FALSE(eq(a, b)) << "distinct conses are not eq";
  EXPECT_TRUE(eq(ctx.sym("s"), ctx.sym("s"))) << "interned symbols are eq";
}

TEST_F(EqualTest, EqlOnNumbers) {
  EXPECT_TRUE(eql(Value::fixnum(3), Value::fixnum(3)));
  EXPECT_FALSE(eql(Value::fixnum(3), Value::fixnum(4)));
  EXPECT_TRUE(eql(ctx.real(2.5), ctx.real(2.5)));
  EXPECT_FALSE(eql(Value::fixnum(2), ctx.real(2.0)))
      << "eql distinguishes fixnum from float, like Common Lisp";
}

TEST_F(EqualTest, EqualOnLists) {
  Value a = read_one(ctx, "(1 (2 3) 4)");
  Value b = read_one(ctx, "(1 (2 3) 4)");
  Value c = read_one(ctx, "(1 (2 9) 4)");
  EXPECT_TRUE(equal_values(a, b));
  EXPECT_FALSE(equal_values(a, c));
}

TEST_F(EqualTest, EqualOnDottedPairs) {
  EXPECT_TRUE(equal_values(read_one(ctx, "(a . b)"),
                           read_one(ctx, "(a . b)")));
  EXPECT_FALSE(equal_values(read_one(ctx, "(a . b)"),
                            read_one(ctx, "(a b)")));
}

TEST_F(EqualTest, EqualOnStrings) {
  EXPECT_TRUE(equal_values(ctx.str("hi"), ctx.str("hi")));
  EXPECT_FALSE(equal_values(ctx.str("hi"), ctx.str("ho")));
}

TEST_F(EqualTest, EqualDifferentLengths) {
  EXPECT_FALSE(equal_values(read_one(ctx, "(1 2)"),
                            read_one(ctx, "(1 2 3)")));
}

TEST_F(EqualTest, EqualLongListIterative) {
  // 100k-long lists must not blow the C++ stack.
  std::string src = "(";
  for (int i = 0; i < 100000; ++i) src += "1 ";
  src += ")";
  Value a = read_one(ctx, src);
  Value b = read_one(ctx, src);
  EXPECT_TRUE(equal_values(a, b, 1u << 20));
}

TEST_F(EqualTest, CyclicStructureTerminates) {
  Value a = ctx.cons(Value::fixnum(1), Value::nil());
  as_cons(a)->set_cdr(a);
  Value b = ctx.cons(Value::fixnum(1), Value::nil());
  as_cons(b)->set_cdr(b);
  // Bounded comparison: must terminate (result is unspecified-but-false
  // once the budget is exhausted).
  EXPECT_FALSE(equal_values(a, b, 1000));
}

}  // namespace
}  // namespace curare::sexpr
