#include "sexpr/printer.hpp"

#include <gtest/gtest.h>

#include "sexpr/ctx.hpp"
#include "sexpr/reader.hpp"

namespace curare::sexpr {
namespace {

class PrinterTest : public ::testing::Test {
 protected:
  Ctx ctx;
};

TEST_F(PrinterTest, Atoms) {
  EXPECT_EQ(write_str(Value::nil()), "nil");
  EXPECT_EQ(write_str(Value::fixnum(5)), "5");
  EXPECT_EQ(write_str(Value::fixnum(-5)), "-5");
  EXPECT_EQ(write_str(ctx.sym("abc")), "abc");
}

TEST_F(PrinterTest, FloatAlwaysReadsBackAsFloat) {
  EXPECT_EQ(write_str(ctx.real(2.0)), "2.0");
  EXPECT_EQ(write_str(ctx.real(2.5)), "2.5");
}

TEST_F(PrinterTest, StringReadablyVsDisplay) {
  Value s = ctx.str("a\"b");
  EXPECT_EQ(write_str(s), "\"a\\\"b\"");
  EXPECT_EQ(display_str(s), "a\"b");
}

TEST_F(PrinterTest, ProperList) {
  Value l = ctx.make_list(Value::fixnum(1), Value::fixnum(2));
  EXPECT_EQ(write_str(l), "(1 2)");
}

TEST_F(PrinterTest, DottedPair) {
  EXPECT_EQ(write_str(ctx.cons(Value::fixnum(1), Value::fixnum(2))),
            "(1 . 2)");
}

TEST_F(PrinterTest, CyclicListTerminates) {
  Value a = ctx.cons(Value::fixnum(1), Value::nil());
  as_cons(a)->set_cdr(a);
  PrintOptions opts;
  opts.max_length = 16;
  std::string out = print_str(a, opts);
  EXPECT_NE(out.find("..."), std::string::npos);
}

TEST_F(PrinterTest, DeepNestingTerminates) {
  Value v = Value::fixnum(0);
  for (int i = 0; i < 2000; ++i) v = ctx.cons(v, Value::nil());
  PrintOptions opts;
  opts.max_depth = 64;
  std::string out = print_str(v, opts);
  EXPECT_NE(out.find("..."), std::string::npos);
}

TEST_F(PrinterTest, Vector) {
  auto* vec = ctx.heap.alloc<Vector>(
      std::vector<Value>{Value::fixnum(1), Value::fixnum(2)});
  EXPECT_EQ(write_str(Value::object(vec)), "#(1 2)");
}

// Property: for a corpus of representative sources, read ∘ print ∘ read
// is identity on the printed form.
class RoundTripTest : public ::testing::TestWithParam<const char*> {
 protected:
  Ctx ctx;
};

TEST_P(RoundTripTest, PrintReadPrintIsStable) {
  Value v1 = read_one(ctx, GetParam());
  std::string p1 = write_str(v1);
  Value v2 = read_one(ctx, p1);
  EXPECT_EQ(write_str(v2), p1);
}

INSTANTIATE_TEST_SUITE_P(
    Corpus, RoundTripTest,
    ::testing::Values(
        "x", "42", "-1", "2.5", "\"str\\n\"", "(a)", "(a b c)", "(a . b)",
        "(a (b (c (d))))", "'(quote x)",
        "(defun remq (obj lst) (cond ((null lst) nil) ((eq obj (car lst)) "
        "(remq obj (cdr lst))) (t (cons (car lst) (remq obj (cdr lst))))))",
        "(defun remq-d (dest obj lst) (cond ((null lst) (setf (cdr dest) "
        "nil)) ((eq obj (car lst)) (remq-d dest obj (cdr lst))) (t (let "
        "((cell (cons (car lst) nil))) (remq-d cell obj (cdr lst)) (setf "
        "(cdr dest) cell)))))"));

}  // namespace
}  // namespace curare::sexpr
