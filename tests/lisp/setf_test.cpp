// setf-place tests. The paper's transformations pivot on `setf` of
// accessor places — (setf (cadr l) ...) is the canonical conflicting
// modification (Figs. 4 and 5) — so place handling must be exact.
#include <gtest/gtest.h>

#include "lisp/interp.hpp"
#include "sexpr/printer.hpp"

namespace curare::lisp {
namespace {

class SetfTest : public ::testing::Test {
 protected:
  sexpr::Ctx ctx;
  Interp in{ctx};

  std::string run(std::string_view src) {
    return sexpr::write_str(in.eval_program(src));
  }
};

TEST_F(SetfTest, VariablePlace) {
  EXPECT_EQ(run("(let ((x 1)) (setf x 2) x)"), "2");
}

TEST_F(SetfTest, CarPlace) {
  EXPECT_EQ(run("(let ((x (list 1 2))) (setf (car x) 9) x)"), "(9 2)");
}

TEST_F(SetfTest, CdrPlace) {
  EXPECT_EQ(run("(let ((x (list 1 2))) (setf (cdr x) '(8)) x)"), "(1 8)");
}

TEST_F(SetfTest, CadrPlace) {
  EXPECT_EQ(run("(let ((x (list 1 2 3))) (setf (cadr x) 9) x)"), "(1 9 3)");
}

TEST_F(SetfTest, CaddrPlace) {
  EXPECT_EQ(run("(let ((x (list 1 2 3))) (setf (caddr x) 9) x)"),
            "(1 2 9)");
}

TEST_F(SetfTest, CddrPlace) {
  EXPECT_EQ(run("(let ((x (list 1 2 3))) (setf (cddr x) nil) x)"), "(1 2)");
}

TEST_F(SetfTest, CaarPlace) {
  EXPECT_EQ(run("(let ((x (list (list 1) 2))) (setf (caar x) 9) x)"),
            "((9) 2)");
}

TEST_F(SetfTest, SetfReturnsValue) {
  EXPECT_EQ(run("(let ((x (list 1))) (setf (car x) 5))"), "5");
}

TEST_F(SetfTest, MultiplePlacePairs) {
  EXPECT_EQ(run("(let ((x (list 1 2))) (setf (car x) 9 (cadr x) 8) x)"),
            "(9 8)");
}

TEST_F(SetfTest, NthPlace) {
  EXPECT_EQ(run("(let ((x (list 1 2 3))) (setf (nth 1 x) 9) x)"),
            "(1 9 3)");
}

TEST_F(SetfTest, GethashPlace) {
  EXPECT_EQ(run("(let ((h (make-hash-table)))"
                "  (setf (gethash 'k h) 42)"
                "  (gethash 'k h))"),
            "42");
}

TEST_F(SetfTest, ArefPlace) {
  EXPECT_EQ(run("(let ((v (make-array 3 0))) (setf (aref v 2) 9)"
                " (aref v 2))"),
            "9");
}

TEST_F(SetfTest, SetfOfNilCarThrows) {
  EXPECT_THROW(run("(setf (car nil) 1)"), sexpr::LispError);
}

TEST_F(SetfTest, UnsupportedPlaceThrows) {
  EXPECT_THROW(run("(setf (length '(1 2)) 5)"), sexpr::LispError);
}

TEST_F(SetfTest, PaperFigure5Increment) {
  // Fig. 5 body: (setf (cadr l) (+ (car l) (cadr l))) — prefix-sum step.
  EXPECT_EQ(run("(defun f (l)"
                "  (cond ((null l) nil)"
                "        ((null (cdr l)) nil)"
                "        (t (setf (cadr l) (+ (car l) (cadr l)))"
                "           (f (cdr l)))))"
                "(let ((x (list 1 2 3 4))) (f x) x)"),
            "(1 3 6 10)");
}

TEST_F(SetfTest, SetfDeepChainViaLetAlias) {
  EXPECT_EQ(run("(let* ((x (list (list 1 2) 3)) (y (car x)))"
                "  (setf (cadr y) 9) x)"),
            "((1 9) 3)");
}

}  // namespace
}  // namespace curare::lisp
