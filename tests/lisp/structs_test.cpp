// defstruct tests: the paper's user-defined structures with named
// fields, pointer/data classes, accessors, and setf places.
#include <gtest/gtest.h>

#include "lisp/interp.hpp"
#include "sexpr/printer.hpp"

namespace curare::lisp {
namespace {

class StructsTest : public ::testing::Test {
 protected:
  sexpr::Ctx ctx;
  Interp in{ctx};

  std::string run(std::string_view src) {
    return sexpr::write_str(in.eval_program(src));
  }
};

TEST_F(StructsTest, DefineAndConstruct) {
  EXPECT_EQ(run("(defstruct node (pointers next prev) (data val))"),
            "node");
  EXPECT_EQ(run("(node-p (make-node))"), "t");
  EXPECT_EQ(run("(node-p 5)"), "nil");
  EXPECT_EQ(run("(node-p nil)"), "nil");
}

TEST_F(StructsTest, SlotsDefaultToNil) {
  run("(defstruct node (pointers next) (data val))");
  EXPECT_EQ(run("(next (make-node))"), "nil");
  EXPECT_EQ(run("(val (make-node))"), "nil");
}

TEST_F(StructsTest, PlistInitialization) {
  run("(defstruct node (pointers next) (data val))");
  EXPECT_EQ(run("(val (make-node 'val 42))"), "42");
  EXPECT_EQ(run("(let ((a (make-node 'val 1)))"
                "  (val (next (make-node 'next a 'val 2))))"),
            "1");
}

TEST_F(StructsTest, BareFieldsAreData) {
  run("(defstruct point x y)");
  EXPECT_EQ(run("(x (make-point 'x 3 'y 4))"), "3");
  EXPECT_EQ(run("(y (make-point 'x 3 'y 4))"), "4");
}

TEST_F(StructsTest, SetfSlotPlace) {
  run("(defstruct node (pointers next) (data val))");
  EXPECT_EQ(run("(let ((n (make-node)))"
                "  (setf (val n) 9)"
                "  (val n))"),
            "9");
  EXPECT_EQ(run("(let ((a (make-node)) (b (make-node 'val 7)))"
                "  (setf (next a) b)"
                "  (val (next a)))"),
            "7");
}

TEST_F(StructsTest, AccessorOnNilIsNil) {
  run("(defstruct node (pointers next))");
  EXPECT_EQ(run("(next nil)"), "nil")
      << "traversals end at nil, like car/cdr";
}

TEST_F(StructsTest, AccessorTypeChecked) {
  run("(defstruct node (pointers next))");
  run("(defstruct leaf (data weight))");
  EXPECT_THROW(run("(next (make-leaf))"), sexpr::LispError);
  EXPECT_THROW(run("(next 5)"), sexpr::LispError);
}

TEST_F(StructsTest, MakeRejectsUnknownFieldAndOddPlist) {
  run("(defstruct node (data val))");
  EXPECT_THROW(run("(make-node 'bogus 1)"), sexpr::LispError);
  EXPECT_THROW(run("(make-node 'val)"), sexpr::LispError);
}

TEST_F(StructsTest, DuplicateFieldNameAcrossTypesRejected) {
  run("(defstruct node (pointers next))");
  EXPECT_THROW(run("(defstruct other (pointers next))"),
               sexpr::LispError)
      << "the paper's unique-accessor-name requirement";
}

TEST_F(StructsTest, FieldCollidingWithBuiltinRejected) {
  EXPECT_THROW(run("(defstruct weird (data length))"), sexpr::LispError);
}

TEST_F(StructsTest, BadFieldGroupRejected) {
  EXPECT_THROW(run("(defstruct node (links a b))"), sexpr::LispError);
}

TEST_F(StructsTest, DoublyLinkedListBuildAndWalk) {
  run("(defstruct dnode (pointers succ pred) (data item))");
  EXPECT_EQ(run("(defun link (a b) (setf (succ a) b) (setf (pred b) a))"
                "(let ((a (make-dnode 'item 1))"
                "      (b (make-dnode 'item 2))"
                "      (c (make-dnode 'item 3)))"
                "  (link a b) (link b c)"
                "  (list (item (succ a)) (item (pred c))"
                "        (item (succ (pred b)))))"),
            "(2 2 2)");
}

TEST_F(StructsTest, RecursiveWalkOverStructs) {
  run("(defstruct cell2 (pointers rest) (data v))");
  EXPECT_EQ(run("(defun build (n)"
                "  (if (= n 0) nil"
                "      (make-cell2 'v n 'rest (build (- n 1)))))"
                "(defun total (c)"
                "  (if (null c) 0 (+ (v c) (total (rest c)))))"
                "(total (build 10))"),
            "55");
}

TEST_F(StructsTest, StructsPrintOpaquely) {
  run("(defstruct node (data val))");
  EXPECT_EQ(run("(prin1 (make-node)) 'done"), "done");
  EXPECT_EQ(in.take_output(), "#<struct>");
}

}  // namespace
}  // namespace curare::lisp
