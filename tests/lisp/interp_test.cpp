// Evaluator tests: special forms, closures, tail calls, scoping, errors.
#include "lisp/interp.hpp"

#include <gtest/gtest.h>

#include "sexpr/printer.hpp"
#include "sexpr/reader.hpp"

namespace curare::lisp {
namespace {

using sexpr::write_str;

class InterpTest : public ::testing::Test {
 protected:
  sexpr::Ctx ctx;
  Interp in{ctx};

  std::string run(std::string_view src) {
    return write_str(in.eval_program(src));
  }
};

TEST_F(InterpTest, SelfEvaluatingAtoms) {
  EXPECT_EQ(run("42"), "42");
  EXPECT_EQ(run("nil"), "nil");
  EXPECT_EQ(run("t"), "t");
  EXPECT_EQ(run("\"s\""), "\"s\"");
  EXPECT_EQ(run("2.5"), "2.5");
}

TEST_F(InterpTest, QuotePreventsEvaluation) {
  EXPECT_EQ(run("'x"), "x");
  EXPECT_EQ(run("'(+ 1 2)"), "(+ 1 2)");
}

TEST_F(InterpTest, UnboundVariableThrows) {
  EXPECT_THROW(run("no-such-var"), sexpr::LispError);
}

TEST_F(InterpTest, IfBothBranches) {
  EXPECT_EQ(run("(if t 1 2)"), "1");
  EXPECT_EQ(run("(if nil 1 2)"), "2");
  EXPECT_EQ(run("(if nil 1)"), "nil");
  EXPECT_EQ(run("(if 0 'yes 'no)"), "yes") << "0 is truthy in Lisp";
}

TEST_F(InterpTest, CondSelectsFirstTrueClause) {
  EXPECT_EQ(run("(cond (nil 1) (t 2) (t 3))"), "2");
  EXPECT_EQ(run("(cond (nil 1))"), "nil");
  EXPECT_EQ(run("(cond ((= 1 2) 'a) ((= 1 1) 'b))"), "b");
}

TEST_F(InterpTest, CondClauseWithoutBodyReturnsTest) {
  EXPECT_EQ(run("(cond (nil) (7))"), "7");
}

TEST_F(InterpTest, WhenUnless) {
  EXPECT_EQ(run("(when t 1 2 3)"), "3");
  EXPECT_EQ(run("(when nil 1)"), "nil");
  EXPECT_EQ(run("(unless nil 'x)"), "x");
  EXPECT_EQ(run("(unless t 'x)"), "nil");
}

TEST_F(InterpTest, AndOrShortCircuit) {
  EXPECT_EQ(run("(and 1 2 3)"), "3");
  EXPECT_EQ(run("(and 1 nil (error \"not reached\"))"), "nil");
  EXPECT_EQ(run("(or nil 2 (error \"not reached\"))"), "2");
  EXPECT_EQ(run("(or nil nil)"), "nil");
  EXPECT_EQ(run("(and)"), "t");
  EXPECT_EQ(run("(or)"), "nil");
}

TEST_F(InterpTest, LetBindsInParallel) {
  EXPECT_EQ(run("(let ((x 1)) (let ((x 2) (y x)) y))"), "1")
      << "plain let evaluates inits in the outer scope";
}

TEST_F(InterpTest, LetStarBindsSequentially) {
  EXPECT_EQ(run("(let* ((x 1) (y (+ x 1))) y)"), "2");
}

TEST_F(InterpTest, LetWithUninitializedBinding) {
  EXPECT_EQ(run("(let ((x)) x)"), "nil");
  EXPECT_EQ(run("(let (x) x)"), "nil");
}

TEST_F(InterpTest, SetqAssignsInnermostBinding) {
  EXPECT_EQ(run("(let ((x 1)) (setq x 5) x)"), "5");
}

TEST_F(InterpTest, SetqCreatesGlobal) {
  run("(setq g-var 9)");
  EXPECT_EQ(run("g-var"), "9");
}

TEST_F(InterpTest, SetqMultiplePairs) {
  EXPECT_EQ(run("(let ((a 0) (b 0)) (setq a 1 b 2) (+ a b))"), "3");
}

TEST_F(InterpTest, DefunAndCall) {
  EXPECT_EQ(run("(defun sq (x) (* x x)) (sq 7)"), "49");
}

TEST_F(InterpTest, DefunReturnsName) {
  EXPECT_EQ(run("(defun foo () 1)"), "foo");
}

TEST_F(InterpTest, LambdaClosureCapturesEnvironment) {
  EXPECT_EQ(run("(let ((n 10)) (funcall (lambda (x) (+ x n)) 5))"), "15");
}

TEST_F(InterpTest, ClosureCapturesAtCreationScope) {
  EXPECT_EQ(run("(defun make-adder (n) (lambda (x) (+ x n)))"
                "(let ((add3 (make-adder 3))) (funcall add3 4))"),
            "7");
}

TEST_F(InterpTest, RestParameters) {
  EXPECT_EQ(run("(defun f (a &rest r) (cons a r)) (f 1 2 3)"), "(1 2 3)");
  EXPECT_EQ(run("(f 1)"), "(1)");
}

TEST_F(InterpTest, WrongArityThrows) {
  run("(defun two (a b) a)");
  EXPECT_THROW(run("(two 1)"), sexpr::LispError);
  EXPECT_THROW(run("(two 1 2 3)"), sexpr::LispError);
}

TEST_F(InterpTest, RecursionFactorial) {
  EXPECT_EQ(run("(defun fact (n) (if (= n 0) 1 (* n (fact (- n 1)))))"
                "(fact 10)"),
            "3628800");
}

TEST_F(InterpTest, TailRecursionDoesNotGrowStack) {
  // 1e6 iterations must run in O(1) stack thanks to TCO.
  EXPECT_EQ(run("(defun count-down (n) (if (= n 0) 'done (count-down "
                "(- n 1)))) (count-down 1000000)"),
            "done");
}

TEST_F(InterpTest, MutualTailRecursion) {
  EXPECT_EQ(run("(defun even? (n) (if (= n 0) t (odd? (- n 1))))"
                "(defun odd? (n) (if (= n 0) nil (even? (- n 1))))"
                "(even? 100001)"),
            "nil");
}

TEST_F(InterpTest, NonTailRecursionDepthLimit) {
  in.set_max_depth(100);
  EXPECT_THROW(run("(defun inf (n) (+ 1 (inf n))) (inf 0)"),
               sexpr::LispError);
}

TEST_F(InterpTest, WhileLoop) {
  EXPECT_EQ(run("(let ((i 0) (acc 0))"
                "  (while (< i 5) (setq acc (+ acc i)) (setq i (+ i 1)))"
                "  acc)"),
            "10");
}

TEST_F(InterpTest, Dotimes) {
  EXPECT_EQ(run("(let ((acc 0)) (dotimes (i 4) (setq acc (+ acc i))) acc)"),
            "6");
  EXPECT_EQ(run("(let ((acc 0)) (dotimes (i 4 acc) (setq acc (+ acc i))))"),
            "6");
  EXPECT_EQ(run("(dotimes (i 3 i))"), "3")
      << "loop variable holds n in the result form";
}

TEST_F(InterpTest, Dolist) {
  EXPECT_EQ(run("(let ((acc 0)) (dolist (x '(1 2 3)) (setq acc (+ acc x)))"
                " acc)"),
            "6");
  EXPECT_EQ(run("(dolist (x '(1 2) 'end))"), "end");
}

TEST_F(InterpTest, PrognSequencing) {
  EXPECT_EQ(run("(progn 1 2 3)"), "3");
  EXPECT_EQ(run("(progn)"), "nil");
}

TEST_F(InterpTest, DeclareIsIgnoredAtRuntime) {
  EXPECT_EQ(run("(defun f (l) (declare (curare sapp l)) (car l)) (f '(9))"),
            "9");
}

TEST_F(InterpTest, FutureWithoutRuntimeHookIsEager) {
  EXPECT_EQ(run("(touch (future (+ 1 2)))"), "3");
  EXPECT_EQ(run("(future 42)"), "42");
}

TEST_F(InterpTest, DefmacroRejectedWithClearMessage) {
  try {
    run("(defmacro m (x) x)");
    FAIL() << "expected error";
  } catch (const sexpr::LispError& e) {
    EXPECT_NE(std::string(e.what()).find("defmacro"), std::string::npos);
  }
}

TEST_F(InterpTest, OutputCapture) {
  run("(print 1) (princ \"a\") (terpri)");
  EXPECT_EQ(in.take_output(), "1\na\n");
  EXPECT_EQ(in.take_output(), "") << "take_output drains the buffer";
}

TEST_F(InterpTest, ApplyCountAdvances) {
  const auto before = in.apply_count();
  run("(defun g (x) x) (g 1) (g 2)");
  EXPECT_GE(in.apply_count(), before + 2);
}

TEST_F(InterpTest, PaperFigure3RunsAndPrints) {
  run("(defun f (l) (when l (print (car l)) (f (cdr l))))"
      "(f '(1 2 3))");
  EXPECT_EQ(in.take_output(), "1\n2\n3\n");
}

TEST_F(InterpTest, PaperRemqFigure12) {
  EXPECT_EQ(run("(defun remq (obj lst)"
                "  (cond ((null lst) nil)"
                "        ((eq obj (car lst)) (remq obj (cdr lst)))"
                "        (t (cons (car lst) (remq obj (cdr lst))))))"
                "(remq 'a '(a b a c a))"),
            "(b c)");
}

TEST_F(InterpTest, PaperRemqDFigure13) {
  // The destination-passing-style version from Fig. 13, driven the way
  // Curare would drive it: seed a destination cell and read its cdr.
  EXPECT_EQ(run("(defun remq-d (dest obj lst)"
                "  (cond ((null lst) (setf (cdr dest) nil))"
                "        ((eq obj (car lst)) (remq-d dest obj (cdr lst)))"
                "        (t (let ((cell (cons (car lst) nil)))"
                "             (remq-d cell obj (cdr lst))"
                "             (setf (cdr dest) cell)))))"
                "(let ((dest (cons nil nil)))"
                "  (remq-d dest 'a '(a b a c a))"
                "  (cdr dest))"),
            "(b c)");
}

}  // namespace
}  // namespace curare::lisp
