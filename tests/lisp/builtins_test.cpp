// Builtin library tests.
#include <gtest/gtest.h>

#include "lisp/interp.hpp"
#include "sexpr/printer.hpp"

namespace curare::lisp {
namespace {

class BuiltinsTest : public ::testing::Test {
 protected:
  sexpr::Ctx ctx;
  Interp in{ctx};

  std::string run(std::string_view src) {
    return sexpr::write_str(in.eval_program(src));
  }
};

TEST_F(BuiltinsTest, ConsCarCdr) {
  EXPECT_EQ(run("(cons 1 2)"), "(1 . 2)");
  EXPECT_EQ(run("(car '(1 2))"), "1");
  EXPECT_EQ(run("(cdr '(1 2))"), "(2)");
  EXPECT_EQ(run("(car nil)"), "nil");
  EXPECT_EQ(run("(cdr nil)"), "nil");
}

TEST_F(BuiltinsTest, CxrFamily) {
  EXPECT_EQ(run("(cadr '(1 2 3))"), "2");
  EXPECT_EQ(run("(caddr '(1 2 3))"), "3");
  EXPECT_EQ(run("(cddr '(1 2 3))"), "(3)");
  EXPECT_EQ(run("(caar '((9)))"), "9");
  EXPECT_EQ(run("(cdar '((9 8)))"), "(8)");
  EXPECT_EQ(run("(cadddr '(1 2 3 4))"), "4");
}

TEST_F(BuiltinsTest, RplacaRplacd) {
  EXPECT_EQ(run("(let ((x (cons 1 2))) (rplaca x 9) x)"), "(9 . 2)");
  EXPECT_EQ(run("(let ((x (cons 1 2))) (rplacd x 9) x)"), "(1 . 9)");
}

TEST_F(BuiltinsTest, ListBuilders) {
  EXPECT_EQ(run("(list 1 2 3)"), "(1 2 3)");
  EXPECT_EQ(run("(list)"), "nil");
  EXPECT_EQ(run("(list* 1 2 '(3 4))"), "(1 2 3 4)");
  EXPECT_EQ(run("(append '(1 2) '(3) '(4 5))"), "(1 2 3 4 5)");
  EXPECT_EQ(run("(append)"), "nil");
  EXPECT_EQ(run("(append nil '(1))"), "(1)");
}

TEST_F(BuiltinsTest, ReverseAndNreverse) {
  EXPECT_EQ(run("(reverse '(1 2 3))"), "(3 2 1)");
  EXPECT_EQ(run("(nreverse (list 1 2 3))"), "(3 2 1)");
  EXPECT_EQ(run("(reverse nil)"), "nil");
}

TEST_F(BuiltinsTest, LengthNthLast) {
  EXPECT_EQ(run("(length '(a b c))"), "3");
  EXPECT_EQ(run("(length nil)"), "0");
  EXPECT_EQ(run("(nth 0 '(a b))"), "a");
  EXPECT_EQ(run("(nth 5 '(a b))"), "nil");
  EXPECT_EQ(run("(nthcdr 1 '(a b c))"), "(b c)");
  EXPECT_EQ(run("(last '(1 2 3))"), "(3)");
}

TEST_F(BuiltinsTest, MemberAssoc) {
  EXPECT_EQ(run("(member 'b '(a b c))"), "(b c)");
  EXPECT_EQ(run("(member 'z '(a b))"), "nil");
  EXPECT_EQ(run("(assoc 'b '((a . 1) (b . 2)))"), "(b . 2)");
}

TEST_F(BuiltinsTest, Predicates) {
  EXPECT_EQ(run("(null nil)"), "t");
  EXPECT_EQ(run("(null 0)"), "nil");
  EXPECT_EQ(run("(atom 'x)"), "t");
  EXPECT_EQ(run("(atom '(1))"), "nil");
  EXPECT_EQ(run("(consp '(1))"), "t");
  EXPECT_EQ(run("(listp nil)"), "t");
  EXPECT_EQ(run("(symbolp 'x)"), "t");
  EXPECT_EQ(run("(numberp 3)"), "t");
  EXPECT_EQ(run("(numberp 2.5)"), "t");
  EXPECT_EQ(run("(stringp \"s\")"), "t");
  EXPECT_EQ(run("(functionp (lambda (x) x))"), "t");
  EXPECT_EQ(run("(functionp 'car)"), "nil") << "symbol is not a function";
}

TEST_F(BuiltinsTest, EqualityPredicates) {
  EXPECT_EQ(run("(eq 'a 'a)"), "t");
  EXPECT_EQ(run("(eq '(1) '(1))"), "nil");
  EXPECT_EQ(run("(eql 3 3)"), "t");
  EXPECT_EQ(run("(equal '(1 (2)) '(1 (2)))"), "t");
}

TEST_F(BuiltinsTest, Arithmetic) {
  EXPECT_EQ(run("(+ 1 2 3)"), "6");
  EXPECT_EQ(run("(+)"), "0");
  EXPECT_EQ(run("(- 10 3 2)"), "5");
  EXPECT_EQ(run("(- 4)"), "-4");
  EXPECT_EQ(run("(* 2 3 4)"), "24");
  EXPECT_EQ(run("(/ 7 2)"), "3");
  EXPECT_EQ(run("(/ 2.0)"), "0.5");
  EXPECT_EQ(run("(mod 7 3)"), "1");
  EXPECT_EQ(run("(mod -7 3)"), "2") << "mod follows the divisor's sign";
  EXPECT_EQ(run("(rem -7 3)"), "-1");
  EXPECT_EQ(run("(1+ 4)"), "5");
  EXPECT_EQ(run("(1- 4)"), "3");
  EXPECT_EQ(run("(min 3 1 2)"), "1");
  EXPECT_EQ(run("(max 3 1 2)"), "3");
  EXPECT_EQ(run("(abs -4)"), "4");
  EXPECT_EQ(run("(expt 2 10)"), "1024");
  EXPECT_EQ(run("(floor 2.7)"), "2");
  EXPECT_EQ(run("(truncate 2.7)"), "2");
}

TEST_F(BuiltinsTest, FloatContagion) {
  EXPECT_EQ(run("(+ 1 0.5)"), "1.5");
  EXPECT_EQ(run("(* 2 2.5)"), "5.0");
}

TEST_F(BuiltinsTest, DivisionByZeroThrows) {
  EXPECT_THROW(run("(/ 1 0)"), sexpr::LispError);
  EXPECT_THROW(run("(mod 1 0)"), sexpr::LispError);
}

TEST_F(BuiltinsTest, Comparisons) {
  EXPECT_EQ(run("(= 2 2 2)"), "t");
  EXPECT_EQ(run("(= 2 3)"), "nil");
  EXPECT_EQ(run("(= 2 2.0)"), "t") << "numeric = compares across types";
  EXPECT_EQ(run("(< 1 2 3)"), "t");
  EXPECT_EQ(run("(< 1 3 2)"), "nil");
  EXPECT_EQ(run("(> 3 2 1)"), "t");
  EXPECT_EQ(run("(<= 1 1 2)"), "t");
  EXPECT_EQ(run("(>= 2 2 1)"), "t");
  EXPECT_EQ(run("(/= 1 2)"), "t");
}

TEST_F(BuiltinsTest, ApplyLeadingArgsThenList) {
  // (apply f x y list) — leading args precede the spread list. Functions
  // are values in this Lisp-1, so pass the function itself, not a symbol.
  EXPECT_EQ(run("(apply (lambda (a b c d) (+ a b c d)) 1 2 '(3 4))"), "10");
}

TEST_F(BuiltinsTest, ApplyFuncallMapcar) {
  EXPECT_EQ(run("(apply (lambda (a b) (+ a b)) '(1 2))"), "3");
  EXPECT_EQ(run("(funcall (lambda (a) (* a 2)) 21)"), "42");
  EXPECT_EQ(run("(mapcar (lambda (x) (* x x)) '(1 2 3))"), "(1 4 9)");
  EXPECT_EQ(run("(mapcar (lambda (a b) (+ a b)) '(1 2) '(10 20))"),
            "(11 22)");
  EXPECT_EQ(run("(let ((acc nil))"
                "  (mapc (lambda (x) (setq acc (cons x acc))) '(1 2 3))"
                "  acc)"),
            "(3 2 1)");
}

TEST_F(BuiltinsTest, Reduce) {
  EXPECT_EQ(run("(reduce (lambda (a b) (+ a b)) '(1 2 3 4))"), "10");
  EXPECT_EQ(run("(reduce (lambda (a b) (+ a b)) '(1 2) 100)"), "103");
  EXPECT_EQ(run("(reduce (lambda (a b) (+ a b)) nil 5)"), "5");
}

TEST_F(BuiltinsTest, Sort) {
  EXPECT_EQ(run("(sort '(3 1 2) (lambda (a b) (< a b)))"), "(1 2 3)");
  EXPECT_EQ(run("(sort nil (lambda (a b) (< a b)))"), "nil");
}

TEST_F(BuiltinsTest, HashTables) {
  EXPECT_EQ(run("(let ((h (make-hash-table)))"
                "  (puthash 'k 1 h)"
                "  (gethash 'k h))"),
            "1");
  EXPECT_EQ(run("(gethash 'missing (make-hash-table))"), "nil");
  EXPECT_EQ(run("(gethash 'missing (make-hash-table) 'dflt)"), "dflt");
  EXPECT_EQ(run("(let ((h (make-hash-table)))"
                "  (puthash 1 'a h) (puthash 2 'b h) (remhash 1 h)"
                "  (hash-table-count h))"),
            "1");
}

TEST_F(BuiltinsTest, Vectors) {
  EXPECT_EQ(run("(length (make-array 5))"), "5");
  EXPECT_EQ(run("(aref (make-array 3 7) 1)"), "7");
  EXPECT_THROW(run("(aref (make-array 2) 5)"), sexpr::LispError);
  EXPECT_THROW(run("(make-array -1)"), sexpr::LispError);
}

TEST_F(BuiltinsTest, SymbolsAndStrings) {
  EXPECT_EQ(run("(symbol-name 'abc)"), "\"abc\"");
  EXPECT_EQ(run("(eq (intern \"zz\") 'zz)"), "t");
  EXPECT_EQ(run("(string= \"a\" \"a\")"), "t");
  EXPECT_EQ(run("(concat \"a\" \"b\" \"c\")"), "\"abc\"");
  EXPECT_EQ(run("(eq (gensym) (gensym))"), "nil");
}

TEST_F(BuiltinsTest, CopyListIndependent) {
  EXPECT_EQ(run("(let* ((a (list 1 2)) (b (copy-list a)))"
                "  (rplaca a 9) (car b))"),
            "1");
}

TEST_F(BuiltinsTest, RandomIsDeterministicUnderSeed) {
  in.seed_rng(7);
  std::string first = run("(list (random 100) (random 100) (random 100))");
  in.seed_rng(7);
  EXPECT_EQ(run("(list (random 100) (random 100) (random 100))"), first);
  EXPECT_THROW(run("(random 0)"), sexpr::LispError);
}

TEST_F(BuiltinsTest, ErrorBuiltinThrows) {
  EXPECT_THROW(run("(error \"boom\")"), sexpr::LispError);
}

TEST_F(BuiltinsTest, FormatToString) {
  EXPECT_EQ(run("(format nil \"x=~d y=~a\" 3 'sym)"), "\"x=3 y=sym\"");
  EXPECT_EQ(run("(format nil \"~s\" \"quoted\")"), "\"\\\"quoted\\\"\"");
  EXPECT_EQ(run("(format nil \"~a~%~a\" 1 2)"), "\"1\\n2\"");
  EXPECT_EQ(run("(format nil \"100~~\")"), "\"100~\"");
}

TEST_F(BuiltinsTest, FormatToOutput) {
  EXPECT_EQ(run("(format t \"n=~d~%\" 7)"), "nil");
  EXPECT_EQ(in.take_output(), "n=7\n");
}

TEST_F(BuiltinsTest, FormatErrors) {
  EXPECT_THROW(run("(format nil \"~d\")"), sexpr::LispError);
  EXPECT_THROW(run("(format nil \"~q\" 1)"), sexpr::LispError);
  EXPECT_THROW(run("(format nil \"end~\")"), sexpr::LispError);
}

TEST_F(BuiltinsTest, GetInternalRealTimeAdvances) {
  EXPECT_EQ(run("(let ((t0 (get-internal-real-time)))"
                "  (if (<= t0 (get-internal-real-time)) 'ok 'bad))"),
            "ok");
}

}  // namespace
}  // namespace curare::lisp
