// incf/decf/push/pop across interpreter, analysis, reorder transform,
// and the full driver pipeline (paper §3.2.3's two reorderable classes).
#include <gtest/gtest.h>

#include "analysis/conflict.hpp"
#include "analysis/extract.hpp"
#include "curare/curare.hpp"
#include "lisp/interp.hpp"
#include "sexpr/printer.hpp"
#include "sexpr/reader.hpp"
#include "transform/reorder.hpp"

namespace curare {
namespace {

class SetfMacrosTest : public ::testing::Test {
 protected:
  sexpr::Ctx ctx;
  lisp::Interp in{ctx};

  std::string run(std::string_view src) {
    return sexpr::write_str(in.eval_program(src));
  }
};

TEST_F(SetfMacrosTest, IncfVariable) {
  EXPECT_EQ(run("(let ((x 5)) (incf x) x)"), "6");
  EXPECT_EQ(run("(let ((x 5)) (incf x 10) x)"), "15");
  EXPECT_EQ(run("(setq g1 0) (incf g1 3) g1"), "3");
}

TEST_F(SetfMacrosTest, DecfVariable) {
  EXPECT_EQ(run("(let ((x 5)) (decf x) x)"), "4");
  EXPECT_EQ(run("(let ((x 5)) (decf x 2) x)"), "3");
}

TEST_F(SetfMacrosTest, IncfReturnsNewValue) {
  EXPECT_EQ(run("(let ((x 1)) (incf x 4))"), "5");
}

TEST_F(SetfMacrosTest, IncfStructurePlace) {
  EXPECT_EQ(run("(let ((l (list 1 2 3))) (incf (cadr l) 10) l)"),
            "(1 12 3)");
}

TEST_F(SetfMacrosTest, PushOntoVariable) {
  EXPECT_EQ(run("(let ((stack nil)) (push 1 stack) (push 2 stack) stack)"),
            "(2 1)");
}

TEST_F(SetfMacrosTest, PushOntoPlace) {
  EXPECT_EQ(run("(let ((l (list nil 9))) (push 'x (car l)) l)"),
            "((x) 9)");
}

TEST_F(SetfMacrosTest, PopReturnsHeadAndShortens) {
  EXPECT_EQ(run("(let ((s '(a b c))) (list (pop s) s))"), "(a (b c))");
  EXPECT_EQ(run("(let ((s nil)) (list (pop s) s))"), "(nil nil)");
}

TEST_F(SetfMacrosTest, PushPopRoundTrip) {
  EXPECT_EQ(run("(let ((s nil))"
                "  (push 1 s) (push 2 s) (push 3 s)"
                "  (list (pop s) (pop s) (pop s)))"),
            "(3 2 1)");
}

// ---- analysis --------------------------------------------------------

class SetfMacrosAnalysisTest : public ::testing::Test {
 protected:
  sexpr::Ctx ctx;
  decl::Declarations decls{ctx};

  analysis::FunctionInfo extract(std::string_view src) {
    return analysis::extract_function(ctx, decls,
                                      sexpr::read_one(ctx, src));
  }
};

TEST_F(SetfMacrosAnalysisTest, IncfGlobalGivesPlusUpdateOp) {
  auto info = extract(
      "(defun f (l) (when l (incf total) (f (cdr l))))");
  bool found = false;
  for (const auto& v : info.var_refs) {
    if (v.is_write && v.var->name == "total") {
      found = true;
      ASSERT_NE(v.update_op, nullptr);
      EXPECT_EQ(v.update_op->name, "+");
    }
  }
  EXPECT_TRUE(found);
}

TEST_F(SetfMacrosAnalysisTest, DecfAlsoCountsAsAdditive) {
  auto info = extract(
      "(defun f (l) (when l (decf total 2) (f (cdr l))))");
  for (const auto& v : info.var_refs) {
    if (v.is_write) {
      EXPECT_EQ(v.update_op->name, "+");
    }
  }
}

TEST_F(SetfMacrosAnalysisTest, IncfOfStructurePlaceIsWrite) {
  auto info = extract(
      "(defun f (l) (when l (incf (cadr l)) (f (cdr l))))");
  bool w = false;
  for (const auto& r : info.refs) {
    if (r.is_write && r.path.to_string() == "cdr.car") {
      w = true;
      ASSERT_NE(r.update_op, nullptr);
      EXPECT_EQ(r.update_op->name, "+");
    }
  }
  EXPECT_TRUE(w);
}

TEST_F(SetfMacrosAnalysisTest, IncfOfParameterDirtiesIt) {
  auto info = extract("(defun f (n) (when (> n 0) (incf n -1) (f n)))");
  EXPECT_TRUE(info.is_dirty(info.params[0]));
}

TEST_F(SetfMacrosAnalysisTest, PushOnUnorderedVarIsReorderable) {
  decls.load(sexpr::read_one(ctx, "(curare-declare (unordered results))"));
  auto info = extract(
      "(defun f (l) (when l (push (car l) results) (f (cdr l))))");
  auto report = analysis::detect_conflicts(ctx, decls, info);
  bool push_ww = false;
  for (const auto& c : report.conflicts) {
    if (c.is_variable_conflict() && c.var_earlier.is_write &&
        c.var_later.is_write) {
      push_ww = true;
      EXPECT_NE(c.reorderable_op, nullptr)
          << "declared-unordered push must be reorderable";
    }
  }
  EXPECT_TRUE(push_ww);
}

TEST_F(SetfMacrosAnalysisTest, PushWithoutDeclarationIsNotReorderable) {
  auto info = extract(
      "(defun f (l) (when l (push (car l) results) (f (cdr l))))");
  auto report = analysis::detect_conflicts(ctx, decls, info);
  for (const auto& c : report.conflicts) {
    if (c.is_variable_conflict() && c.var_earlier.is_write &&
        c.var_later.is_write) {
      EXPECT_EQ(c.reorderable_op, nullptr);
    }
  }
}

// ---- reorder transform -------------------------------------------------

TEST_F(SetfMacrosAnalysisTest, ReorderRewritesIncf) {
  auto info = extract(
      "(defun f (l) (when l (incf total 2) (f (cdr l))))");
  auto r = transform::apply_reorder(ctx, decls, info);
  EXPECT_EQ(r.rewritten, 1);
  EXPECT_NE(sexpr::write_str(r.defun)
                .find("(%atomic-incf-var (quote total) 2)"),
            std::string::npos)
      << sexpr::write_str(r.defun);
}

TEST_F(SetfMacrosAnalysisTest, ReorderRewritesDecfWithNegation) {
  auto info = extract(
      "(defun f (l) (when l (decf total 2) (f (cdr l))))");
  auto r = transform::apply_reorder(ctx, decls, info);
  EXPECT_EQ(r.rewritten, 1);
  EXPECT_NE(sexpr::write_str(r.defun)
                .find("(%atomic-incf-var (quote total) -2)"),
            std::string::npos)
      << sexpr::write_str(r.defun);
}

TEST_F(SetfMacrosAnalysisTest, ReorderRewritesIncfOnStructure) {
  auto info = extract(
      "(defun f (l) (when l (incf (cadr l) 5) (f (cdr l))))");
  auto r = transform::apply_reorder(ctx, decls, info);
  EXPECT_EQ(r.rewritten, 1);
  EXPECT_NE(sexpr::write_str(r.defun)
                .find("(%atomic-add (cdr l) (quote car) 5)"),
            std::string::npos);
}

TEST_F(SetfMacrosAnalysisTest, ReorderRewritesDeclaredUnorderedPush) {
  decls.load(sexpr::read_one(ctx, "(curare-declare (unordered results))"));
  auto info = extract(
      "(defun f (l) (when l (push (car l) results) (f (cdr l))))");
  auto r = transform::apply_reorder(ctx, decls, info);
  EXPECT_EQ(r.rewritten, 1);
  EXPECT_NE(sexpr::write_str(r.defun).find("%locked-update-var"),
            std::string::npos);
}

TEST_F(SetfMacrosAnalysisTest, ReorderLeavesUndeclaredPushAlone) {
  auto info = extract(
      "(defun f (l) (when l (push (car l) results) (f (cdr l))))");
  auto r = transform::apply_reorder(ctx, decls, info);
  EXPECT_EQ(r.rewritten, 0);
}

// ---- end-to-end ------------------------------------------------------------

TEST(SetfMacrosEndToEnd, UnorderedCollectorRunsParallel) {
  sexpr::Ctx ctx;
  Curare cur(ctx, 4);
  cur.load_program(
      "(curare-declare (unordered bag))"
      "(setq bag nil)"
      "(defun collect (l)"
      "  (when l (push (car l) bag) (collect (cdr l))))");
  TransformPlan plan = cur.transform("collect");
  ASSERT_TRUE(plan.ok) << plan.failure;
  EXPECT_GT(plan.reordered, 0);
  EXPECT_EQ(plan.locks_inserted, 0);

  std::string src = "(";
  for (int i = 1; i <= 100; ++i) src += std::to_string(i) + " ";
  src += ")";
  const Value args[] = {sexpr::read_one(ctx, src)};
  cur.run_parallel("collect", args, 4);
  // Unordered: the SET of elements must match, order may not.
  Value bag = cur.interp().eval_program(
      "(sort bag (lambda (a b) (< a b)))");
  EXPECT_EQ(sexpr::list_length(bag), 100u);
  EXPECT_EQ(sexpr::car(bag).as_fixnum(), 1);
  std::int64_t sum = 0;
  for (Value v = bag; !v.is_nil(); v = sexpr::cdr(v))
    sum += sexpr::car(v).as_fixnum();
  EXPECT_EQ(sum, 5050);
}

TEST(SetfMacrosEndToEnd, IncfCounterParallel) {
  sexpr::Ctx ctx;
  Curare cur(ctx, 4);
  cur.load_program(
      "(setq hits 0)"
      "(defun count-down (n)"
      "  (when (> n 0) (incf hits) (count-down (- n 1))))");
  TransformPlan plan = cur.transform("count-down");
  ASSERT_TRUE(plan.ok) << plan.failure;
  EXPECT_GT(plan.reordered, 0);
  const Value args[] = {Value::fixnum(500)};
  cur.run_parallel("count-down", args, 4);
  EXPECT_EQ(cur.interp().eval_program("hits").as_fixnum(), 500);
}

}  // namespace
}  // namespace curare
