// End-to-end observability: a real CRI run under a Runtime with the
// tracer on must produce metrics and a speedup-report row that are
// consistent with the run's own CriStats, and lock contention must be
// visible in the lock aggregates.
#include <gtest/gtest.h>

#include <chrono>
#include <string>
#include <thread>

#include "lisp/interp.hpp"
#include "obs/recorder.hpp"
#include "runtime/runtime.hpp"
#include "sexpr/reader.hpp"

namespace curare::runtime {
namespace {

using sexpr::Value;

class ObsIntegrationTest : public ::testing::Test {
 protected:
  sexpr::Ctx ctx;
  lisp::Interp in{ctx};
  Runtime rt{in, 2};

  void SetUp() override {
    rt.install();
    rt.obs().tracer.set_enabled(true);
  }
};

TEST_F(ObsIntegrationTest, CriRunAggregatesMatchStats) {
  in.eval_program(
      "(setq hits 0)"
      "(defun walk$cri (l)"
      "  (when l"
      "    (%atomic-incf-var 'hits 1)"
      "    (%cri-enqueue 0 (cdr l))))");
  std::string list = "(";
  for (int i = 0; i < 300; ++i) list += "x ";
  list += ")";
  CriStats stats = rt.run_cri(in.global("walk$cri"), 1, 4,
                              {sexpr::read_one(ctx, list)});

  EXPECT_EQ(stats.invocations, 301u);
  EXPECT_EQ(stats.enqueues, 300u);
  EXPECT_GT(stats.wall_ns, 0u);
  ASSERT_EQ(stats.busy_ns.size(), 4u);
  ASSERT_EQ(stats.idle_ns.size(), 4u);
  ASSERT_EQ(stats.tasks_per_server.size(), 4u);

  // Tasks are conserved across servers.
  std::uint64_t tasks = 0;
  for (std::uint64_t n : stats.tasks_per_server) tasks += n;
  EXPECT_EQ(tasks, stats.invocations);

  // Head+tail is measured inside the busy spans.
  EXPECT_GT(stats.head_ns, 0u);
  EXPECT_LE(stats.head_ns + stats.tail_ns, stats.busy_ns_total());
  // Each server's busy+idle is bounded by the wall time it lived.
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_LE(stats.busy_ns[i], stats.wall_ns);
  }
  EXPECT_GT(stats.utilization(), 0.0);
  EXPECT_LE(stats.utilization(), 1.0);

  obs::Recorder& rec = rt.obs();
  // Metrics mirror the stats.
  EXPECT_EQ(rec.metrics.counter("cri.invocations").get(),
            stats.invocations);
  EXPECT_EQ(rec.metrics.counter("cri.enqueues").get(), stats.enqueues);
  EXPECT_EQ(rec.metrics.counter("cri.head_ns").get(), stats.head_ns);
  EXPECT_EQ(rec.metrics.counter("cri.busy_ns").get(),
            stats.busy_ns_total());
  EXPECT_EQ(rec.metrics.histogram("cri.queue_depth").count(),
            stats.enqueues);

  // Every %atomic-incf-var takes the variable's lock once.
  EXPECT_EQ(rec.metrics.counter("lock.acquisitions").get(), 300u);
  // Contended acquisitions, if any, all recorded a wait time.
  EXPECT_EQ(rec.metrics.counter("lock.contended").get(),
            rec.metrics.histogram("lock.wait_ns").count());

  // One speedup-report row, consistent with the stats.
  const auto runs = rec.speedup.runs();
  ASSERT_EQ(runs.size(), 1u);
  EXPECT_EQ(runs[0].label, "walk$cri");
  EXPECT_EQ(runs[0].servers, 4u);
  EXPECT_EQ(runs[0].invocations, stats.invocations);
  EXPECT_EQ(runs[0].wall_ns, stats.wall_ns);
  EXPECT_EQ(runs[0].head_ns, stats.head_ns);

  // The trace saw server threads and task events.
  EXPECT_GE(rt.obs().tracer.thread_count(), 2u);
  const std::string json = rec.tracer.chrome_trace_json();
  EXPECT_NE(json.find("\"cri-task\""), std::string::npos);
  EXPECT_NE(json.find("\"cri-enqueue\""), std::string::npos);
  EXPECT_NE(json.find("\"lock-acquire\""), std::string::npos);
  EXPECT_NE(json.find("cri-server-0"), std::string::npos);
}

TEST_F(ObsIntegrationTest, TracerOffStillCollectsMetrics) {
  rt.obs().tracer.set_enabled(false);
  in.eval_program("(defun g$cri (l) (when l (%cri-enqueue 0 (cdr l))))");
  CriStats stats = rt.run_cri(in.global("g$cri"), 1, 2,
                              {sexpr::read_one(ctx, "(1 2 3 4)")});
  EXPECT_EQ(stats.invocations, 5u);
  EXPECT_GT(stats.wall_ns, 0u);
  EXPECT_EQ(rt.obs().tracer.events_recorded(), 0u);
  EXPECT_EQ(rt.obs().metrics.counter("cri.invocations").get(), 5u);
}

TEST_F(ObsIntegrationTest, EarlyFinishEmitsEvent) {
  in.eval_program(
      "(defun find$cri (l)"
      "  (when l"
      "    (if (eq (car l) 'needle) (%cri-finish (car l))"
      "      (%cri-enqueue 0 (cdr l)))))");
  CriStats stats =
      rt.run_cri(in.global("find$cri"), 1, 2,
                 {sexpr::read_one(ctx, "(a b needle c d)")});
  EXPECT_TRUE(stats.finished_early);
  EXPECT_NE(rt.obs().tracer.chrome_trace_json().find("early-finish"),
            std::string::npos);
}

TEST_F(ObsIntegrationTest, FullReportMentionsEverySection) {
  in.eval_program("(defun r$cri (l) (when l (%cri-enqueue 0 (cdr l))))");
  rt.run_cri(in.global("r$cri"), 1, 2, {sexpr::read_one(ctx, "(1 2)")});
  const std::string rep = obs::full_report(rt.obs());
  EXPECT_NE(rep.find("measured vs predicted"), std::string::npos);
  EXPECT_NE(rep.find("r$cri"), std::string::npos);
  EXPECT_NE(rep.find("cri.invocations"), std::string::npos);
  EXPECT_NE(rep.find("trace:"), std::string::npos);
}

TEST_F(ObsIntegrationTest, FutureWaitMetricsProveBlockingWait) {
  // A future that takes real time: the toucher must block (not help —
  // the queue is empty once this task is picked up) and the wait-time
  // histogram must record roughly that long.
  in.define_builtin("slow", 0, 0,
                    [](lisp::Interp&, std::span<const Value>) {
                      std::this_thread::sleep_for(
                          std::chrono::milliseconds(50));
                      return Value::fixnum(7);
                    });
  Value v = in.eval_program("(touch (spawn (lambda () (slow))))");
  EXPECT_EQ(v.as_fixnum(), 7);
  obs::Recorder& rec = rt.obs();
  EXPECT_EQ(rec.metrics.counter("future.spawned").get(), 1u);
  EXPECT_GE(rec.metrics.counter("future.touches").get(), 1u);
  ASSERT_EQ(rec.metrics.counter("future.touch_waits").get(), 1u);
  ASSERT_EQ(rec.metrics.histogram("future.wait_ns").count(), 1u);
  // Blocked for a large share of the 50ms sleep (generous slack: the
  // interpreter spends a few ms between the spawn and the touch, and a
  // loaded test host adds more). The lower bound proves the touch
  // really waited for completion rather than returning early.
  EXPECT_GE(rec.metrics.histogram("future.wait_ns").sum(), 20'000'000u);
  EXPECT_NE(rec.tracer.chrome_trace_json().find("future-touch-wait"),
            std::string::npos);
}

}  // namespace
}  // namespace curare::runtime
