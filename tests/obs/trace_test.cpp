// Tracer tests: ring-buffer overflow, concurrent emit, disabled no-op,
// and well-formedness of the Chrome trace-event JSON export.
#include "obs/trace.hpp"

#include <gtest/gtest.h>

#include <cstddef>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/request.hpp"

namespace curare::obs {
namespace {

// ---- a minimal JSON validity checker ---------------------------------
// Recursive-descent parse of the full JSON grammar; returns false on
// the first syntax error. Enough to prove the exporter emits something
// chrome://tracing's (strict) JSON parser will accept.
class JsonChecker {
 public:
  explicit JsonChecker(const std::string& s) : s_(s) {}
  bool valid() {
    skip_ws();
    return value() && (skip_ws(), pos_ == s_.size());
  }

 private:
  bool value() {
    if (pos_ >= s_.size()) return false;
    switch (s_[pos_]) {
      case '{': return object();
      case '[': return array();
      case '"': return string();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return number();
    }
  }
  bool object() {
    ++pos_;  // {
    skip_ws();
    if (peek() == '}') { ++pos_; return true; }
    for (;;) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (peek() != ':') return false;
      ++pos_;
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == '}') { ++pos_; return true; }
      return false;
    }
  }
  bool array() {
    ++pos_;  // [
    skip_ws();
    if (peek() == ']') { ++pos_; return true; }
    for (;;) {
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == ']') { ++pos_; return true; }
      return false;
    }
  }
  bool string() {
    if (peek() != '"') return false;
    ++pos_;
    while (pos_ < s_.size() && s_[pos_] != '"') {
      if (s_[pos_] == '\\') ++pos_;  // skip escaped char
      ++pos_;
    }
    if (pos_ >= s_.size()) return false;
    ++pos_;  // closing quote
    return true;
  }
  bool number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (isdigit(peek())) ++pos_;
    if (peek() == '.') { ++pos_; while (isdigit(peek())) ++pos_; }
    if (peek() == 'e' || peek() == 'E') {
      ++pos_;
      if (peek() == '+' || peek() == '-') ++pos_;
      while (isdigit(peek())) ++pos_;
    }
    return pos_ > start;
  }
  bool literal(const char* lit) {
    const std::string l(lit);
    if (s_.compare(pos_, l.size(), l) != 0) return false;
    pos_ += l.size();
    return true;
  }
  char peek() const { return pos_ < s_.size() ? s_[pos_] : '\0'; }
  static bool isdigit(char c) { return c >= '0' && c <= '9'; }
  void skip_ws() {
    while (pos_ < s_.size() &&
           (s_[pos_] == ' ' || s_[pos_] == '\n' || s_[pos_] == '\t' ||
            s_[pos_] == '\r'))
      ++pos_;
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

TEST(JsonCheckerTest, AcceptsAndRejects) {
  std::string good = R"({"a":[1,2.5,-3e2,"x\"y",true,null],"b":{}})";
  std::string bad1 = R"({"a":[1,)";
  std::string bad2 = R"({"a" 1})";
  EXPECT_TRUE(JsonChecker(good).valid());
  EXPECT_FALSE(JsonChecker(bad1).valid());
  EXPECT_FALSE(JsonChecker(bad2).valid());
}

TEST(TracerTest, DisabledEmitsNothing) {
  Tracer t(64);
  t.emit(EventKind::kTaskRun, 1, 2);
  t.instant(EventKind::kLockAcquire);
  EXPECT_EQ(t.events_recorded(), 0u);
  EXPECT_EQ(t.dropped(), 0u);
}

TEST(TracerTest, RecordsWhenEnabled) {
  Tracer t(64);
  t.set_enabled(true);
  t.instant(EventKind::kLockAcquire, 7, 1);
  t.emit(EventKind::kTaskRun, 10, 5, 0, 42);
  EXPECT_EQ(t.events_recorded(), 2u);
  EXPECT_EQ(t.thread_count(), 1u);
}

TEST(TracerTest, OverflowKeepsMostRecentAndCountsDrops) {
  constexpr std::size_t kCap = 16;
  Tracer t(kCap);
  t.set_enabled(true);
  for (std::uint64_t i = 0; i < 100; ++i)
    t.emit(EventKind::kTaskRun, i, 1, i);
  EXPECT_EQ(t.events_recorded(), kCap);
  EXPECT_EQ(t.dropped(), 100u - kCap);
  // The survivors are the newest events: a0 in [84, 100).
  const std::string json = t.chrome_trace_json();
  EXPECT_TRUE(JsonChecker(json).valid()) << json;
  EXPECT_EQ(json.find("\"a0\":83"), std::string::npos);
  EXPECT_NE(json.find("\"a0\":84"), std::string::npos);
  EXPECT_NE(json.find("\"a0\":99"), std::string::npos);
}

TEST(TracerTest, ConcurrentEmitFromManyThreads) {
  constexpr int kThreads = 8;
  constexpr int kPerThread = 1000;
  Tracer t(4096);
  t.set_enabled(true);
  std::vector<std::thread> ths;
  for (int i = 0; i < kThreads; ++i) {
    ths.emplace_back([&t, i] {
      t.name_thread("worker-" + std::to_string(i));
      for (int j = 0; j < kPerThread; ++j)
        t.instant(EventKind::kTaskEnqueue,
                  static_cast<std::uint64_t>(i),
                  static_cast<std::uint64_t>(j));
    });
  }
  for (auto& th : ths) th.join();
  EXPECT_EQ(t.thread_count(), static_cast<std::size_t>(kThreads));
  EXPECT_EQ(t.events_recorded(),
            static_cast<std::size_t>(kThreads * kPerThread));
  EXPECT_EQ(t.dropped(), 0u);
  const std::string json = t.chrome_trace_json();
  EXPECT_TRUE(JsonChecker(json).valid());
  // Every thread is present and named.
  for (int i = 0; i < kThreads; ++i) {
    EXPECT_NE(json.find("worker-" + std::to_string(i)),
              std::string::npos);
    EXPECT_NE(json.find("\"tid\":" + std::to_string(i)),
              std::string::npos);
  }
}

TEST(TracerTest, SpanAndInstantPhases) {
  Tracer t(64);
  t.set_enabled(true);
  const auto t0 = t.now_ns();
  t.span(EventKind::kLockWait, t0, 1, 1);   // dur may round to 0 — ok
  t.emit(EventKind::kTaskRun, 0, 500, 0, 0);  // explicit span
  t.instant(EventKind::kFutureSpawn, 3);
  const std::string json = t.chrome_trace_json();
  EXPECT_TRUE(JsonChecker(json).valid()) << json;
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"future-spawn\""), std::string::npos);
}

TEST(TracerTest, ClearResetsRings) {
  Tracer t(64);
  t.set_enabled(true);
  t.instant(EventKind::kTaskRun);
  EXPECT_EQ(t.events_recorded(), 1u);
  t.clear();
  EXPECT_EQ(t.events_recorded(), 0u);
  const std::string json = t.chrome_trace_json();
  EXPECT_TRUE(JsonChecker(json).valid()) << json;
}

TEST(TracerTest, RingWrapFeedsTheDropCounter) {
  constexpr std::size_t kCap = 4;
  Metrics m;
  Tracer t(kCap);
  t.set_drop_counter(&m.counter("obs.trace.dropped"));
  t.set_enabled(true);
  for (std::uint64_t i = 0; i < 10; ++i)
    t.emit(EventKind::kTaskRun, i, 1);
  EXPECT_EQ(t.dropped(), 10u - kCap);
  EXPECT_EQ(m.counter("obs.trace.dropped").get(), 10u - kCap);
}

TEST(TracerTest, EventsCarryTheCurrentRequestRid) {
  Tracer t(64);
  t.set_enabled(true);
  auto rctx = std::make_shared<RequestContext>();
  rctx->rid = RequestContext::next_rid();
  t.emit(EventKind::kTaskRun, 0, 1, 1);  // before any request: rid 0
  {
    RequestScope scope(rctx);
    t.emit(EventKind::kTaskRun, 0, 1, 2);
    t.emit(EventKind::kLockAcquire, 0, 1, 3);
  }
  t.emit(EventKind::kTaskRun, 0, 1, 4);  // after: rid 0 again

  const std::string all = t.chrome_trace_json();
  EXPECT_TRUE(JsonChecker(all).valid()) << all;
  const std::string rid_key =
      "\"rid\":" + std::to_string(rctx->rid);
  // Filtered export keeps exactly the two in-scope events.
  const std::string lane = t.chrome_trace_json(rctx->rid);
  EXPECT_TRUE(JsonChecker(lane).valid()) << lane;
  EXPECT_NE(lane.find(rid_key), std::string::npos) << lane;
  EXPECT_NE(lane.find("\"a0\":2"), std::string::npos);
  EXPECT_NE(lane.find("\"a0\":3"), std::string::npos);
  EXPECT_EQ(lane.find("\"a0\":1,"), std::string::npos) << lane;
  EXPECT_EQ(lane.find("\"a0\":4,"), std::string::npos) << lane;
  EXPECT_EQ(lane.find("\"rid\":0"), std::string::npos) << lane;
}

TEST(TracerTest, TwoTracersOnOneThreadStayIndependent) {
  Tracer a(64), b(64);
  a.set_enabled(true);
  b.set_enabled(true);
  a.instant(EventKind::kTaskRun);
  a.instant(EventKind::kTaskRun);
  b.instant(EventKind::kLockAcquire);
  EXPECT_EQ(a.events_recorded(), 2u);
  EXPECT_EQ(b.events_recorded(), 1u);
}

}  // namespace
}  // namespace curare::obs
