// SpeedupReport tests: the §4.1 model columns computed from measured
// runs, error behavior, and the JSON/ table exports.
#include "obs/report.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "runtime/scheduler.hpp"

namespace curare::obs {
namespace {

MeasuredRun make_run(std::size_t servers, std::uint64_t d,
                     std::uint64_t h_ns, std::uint64_t t_ns) {
  MeasuredRun r;
  r.label = "walk$cri";
  r.servers = servers;
  r.invocations = d;
  r.head_ns = h_ns * d;
  r.tail_ns = t_ns * d;
  // Wall time exactly at the model's prediction → error ≈ 0.
  r.wall_ns = static_cast<std::uint64_t>(runtime::predicted_time(
      static_cast<double>(servers), static_cast<double>(d),
      static_cast<double>(h_ns), static_cast<double>(t_ns)));
  r.busy_ns = r.head_ns + r.tail_ns;
  r.idle_ns = servers * r.wall_ns - r.busy_ns;
  return r;
}

TEST(SpeedupReportTest, PerfectRunHasZeroError) {
  SpeedupReport rep;
  rep.add(make_run(4, 1000, 100, 900));
  const auto rows = rep.rows();
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_DOUBLE_EQ(rows[0].mean_h_ns, 100.0);
  EXPECT_DOUBLE_EQ(rows[0].mean_t_ns, 900.0);
  EXPECT_NEAR(rows[0].error_pct, 0.0, 0.01);
  // S* = sqrt(d(h+t)/h) = sqrt(1000*1000/100) = 100.
  EXPECT_NEAR(rows[0].s_star, 100.0, 0.01);
  EXPECT_GT(rows[0].utilization, 0.0);
  EXPECT_LE(rows[0].utilization, 1.0);
}

TEST(SpeedupReportTest, SlowRunHasPositiveError) {
  SpeedupReport rep;
  MeasuredRun r = make_run(2, 500, 50, 450);
  r.wall_ns *= 2;  // twice as slow as the model
  rep.add(r);
  EXPECT_NEAR(rep.rows()[0].error_pct, 100.0, 0.5);
}

TEST(SpeedupReportTest, PredictionMatchesSchedulerHeader) {
  SpeedupReport rep;
  rep.add(make_run(8, 512, 20, 380));
  const double expected =
      runtime::predicted_time(8, 512, 20, 380);
  EXPECT_NEAR(rep.rows()[0].predicted_ns, expected, 1e-6);
}

TEST(SpeedupReportTest, TableListsEveryRunAndFormula) {
  SpeedupReport rep;
  rep.add(make_run(1, 100, 10, 90));
  rep.add(make_run(4, 100, 10, 90));
  const std::string t = rep.table();
  EXPECT_NE(t.find("walk$cri"), std::string::npos);
  EXPECT_NE(t.find("T_pred"), std::string::npos);
  EXPECT_NE(t.find("S*"), std::string::npos);
  // Both rows present: S column values 1 and 4.
  EXPECT_NE(t.find("    1"), std::string::npos);
  EXPECT_NE(t.find("    4"), std::string::npos);
}

TEST(SpeedupReportTest, EmptyReportPrintsGracefully) {
  SpeedupReport rep;
  EXPECT_NE(rep.table().find("no CRI runs"), std::string::npos);
  EXPECT_EQ(rep.json_lines(), "");
}

TEST(SpeedupReportTest, JsonLinesOnePerRun) {
  SpeedupReport rep;
  rep.add(make_run(2, 64, 5, 45));
  rep.add(make_run(4, 64, 5, 45));
  const std::string j = rep.json_lines();
  EXPECT_EQ(std::count(j.begin(), j.end(), '\n'), 2);
  EXPECT_NE(j.find("\"servers\":2"), std::string::npos);
  EXPECT_NE(j.find("\"servers\":4"), std::string::npos);
  EXPECT_NE(j.find("\"predicted_ns\":"), std::string::npos);
}

TEST(SpeedupReportTest, BaseCaseOnlyRunStaysDefined) {
  SpeedupReport rep;
  MeasuredRun r;
  r.servers = 2;
  r.invocations = 0;  // nothing ran
  r.wall_ns = 1000;
  rep.add(r);
  const auto rows = rep.rows();
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_GT(rows[0].predicted_ns, 0.0);  // no div-by-zero, no NaN
  EXPECT_EQ(rows[0].utilization, 0.0);
}

TEST(SpeedupReportTest, ClearEmpties) {
  SpeedupReport rep;
  rep.add(make_run(1, 10, 1, 9));
  EXPECT_EQ(rep.size(), 1u);
  rep.clear();
  EXPECT_EQ(rep.size(), 0u);
}

}  // namespace
}  // namespace curare::obs
