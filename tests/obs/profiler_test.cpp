// Sampling-profiler tests: the shadow stack, sampling/interning, the
// collapsed and hot-form reports, and the end-to-end path through the
// interpreter's eval tick (the 1-in-N gate in Interp::eval).
//
// The profiler is one process-wide instance, so every test arms it
// through an RAII guard that disarms and clears on the way out —
// required for the TSan CI job, which runs the whole binary in one
// process rather than one ctest invocation per TEST.
#include "obs/profiler.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "curare/curare.hpp"
#include "sexpr/ctx.hpp"

namespace curare::obs {
namespace {

struct ProfilerGuard {
  explicit ProfilerGuard(unsigned period) {
    auto& p = Profiler::instance();
    p.set_enabled(false);
    p.clear();
    p.set_period(period);
    p.set_enabled(true);
  }
  ~ProfilerGuard() {
    auto& p = Profiler::instance();
    p.set_enabled(false);
    p.clear();
    p.set_period(Profiler::kDefaultPeriod);
  }
};

TEST(ProfilerTest, PeriodRoundsDownToPowerOfTwoWithFloor) {
  auto& p = Profiler::instance();
  p.set_period(100);
  EXPECT_EQ(p.period(), 64u);
  p.set_period(64);
  EXPECT_EQ(p.period(), 64u);
  p.set_period(3);  // below the floor
  EXPECT_EQ(p.period(), Profiler::kMinPeriod);
  p.set_period(Profiler::kDefaultPeriod);
}

TEST(ProfilerTest, DisarmedRecordsNothing) {
  auto& p = Profiler::instance();
  p.set_enabled(false);
  p.clear();
  EXPECT_FALSE(Profiler::armed());
  EXPECT_FALSE(Profiler::due(0));
  const std::string leaf = "ignored";
  p.sample(&leaf);  // direct call still records (the gate is due())…
  p.clear();        // …so tidy up; due() is what the interpreter obeys
  EXPECT_EQ(p.samples(), 0u);
  EXPECT_NE(p.hot_report().find("no samples"), std::string::npos);
}

TEST(ProfilerTest, ShadowStackShapesTheCollapsedDump) {
  ProfilerGuard guard(Profiler::kMinPeriod);
  auto& p = Profiler::instance();
  const std::string outer = "outer";
  const std::string inner = "inner";
  const std::string leaf = "leaf-form";
  {
    ProfileFrameScope a(Profiler::FrameKind::kFn, &outer);
    {
      ProfileFrameScope b(Profiler::FrameKind::kBuiltin, &inner);
      p.sample(&leaf);
    }
    p.sample(&leaf);
  }
  EXPECT_EQ(p.samples(), 2u);
  const std::string folded = p.collapsed();
  EXPECT_NE(folded.find("fn:outer;builtin:inner;form:leaf-form 1"),
            std::string::npos)
      << folded;
  EXPECT_NE(folded.find("fn:outer;form:leaf-form 1"), std::string::npos)
      << folded;
}

TEST(ProfilerTest, TailCallRenamesTheTopFrame) {
  ProfilerGuard guard(Profiler::kMinPeriod);
  auto& p = Profiler::instance();
  const std::string first = "first";
  const std::string second = "second";
  const std::string leaf = "l";
  {
    ProfileFrameScope a(Profiler::FrameKind::kFn, &first);
    p.note_tail_call(&second);  // the frame is reused, not stacked
    p.sample(&leaf);
  }
  const std::string folded = p.collapsed();
  EXPECT_NE(folded.find("fn:second;form:l 1"), std::string::npos)
      << folded;
  EXPECT_EQ(folded.find("fn:first"), std::string::npos) << folded;
}

TEST(ProfilerTest, NullNamesGetSentinels) {
  ProfilerGuard guard(Profiler::kMinPeriod);
  auto& p = Profiler::instance();
  {
    ProfileFrameScope a(Profiler::FrameKind::kFn, nullptr);
    p.sample(nullptr);
  }
  const std::string folded = p.collapsed();
  EXPECT_NE(folded.find("fn:<lambda>;form:<atom> 1"), std::string::npos)
      << folded;
}

TEST(ProfilerTest, SamplesRecursiveEvaluationThroughTheInterpreter) {
  ProfilerGuard guard(Profiler::kMinPeriod);
  sexpr::Ctx ctx;
  Curare cur(ctx);
  cur.interp().set_echo(false);
  // ~8000 recursion steps at 1-in-8 sampling: plenty of samples, and
  // the hot report must name the workload as a top cost center.
  cur.load_program(
      "(defun prof-count (n acc) (if (< n 1) acc "
      "(prof-count (- n 1) (+ acc 1))))");
  cur.interp().eval_program("(prof-count 8000 0)");
  auto& p = Profiler::instance();
  EXPECT_GT(p.samples(), 100u);
  const std::string report = p.hot_report();
  EXPECT_NE(report.find("== eval profile ("), std::string::npos);
  EXPECT_NE(report.find("prof-count"), std::string::npos) << report;
  const std::string folded = p.collapsed();
  EXPECT_NE(folded.find("prof-count"), std::string::npos);

  // clear() forgets the samples; a disarmed evaluation adds none.
  p.clear();
  EXPECT_EQ(p.samples(), 0u);
  p.set_enabled(false);
  cur.interp().eval_program("(prof-count 8000 0)");
  EXPECT_EQ(p.samples(), 0u);
}

TEST(ProfilerTest, DeepStacksKeepTheDeepestFrames) {
  ProfilerGuard guard(Profiler::kMinPeriod);
  auto& p = Profiler::instance();
  std::vector<std::string> names;
  names.reserve(Profiler::kMaxDepth + 4);
  for (std::size_t i = 0; i < Profiler::kMaxDepth + 4; ++i)
    names.push_back("f" + std::to_string(i));
  std::vector<std::unique_ptr<ProfileFrameScope>> frames;
  for (const auto& n : names) {
    frames.push_back(std::make_unique<ProfileFrameScope>(
        Profiler::FrameKind::kFn, &n));
  }
  const std::string leaf = "deep-leaf";
  p.sample(&leaf);
  frames.clear();
  const std::string folded = p.collapsed();
  // The base of the stack (f0..f3) is truncated away; the deepest
  // frame and the leaf survive.
  EXPECT_EQ(folded.find("fn:f0;"), std::string::npos) << folded;
  EXPECT_EQ(folded.find("fn:f3;"), std::string::npos) << folded;
  EXPECT_NE(folded.find("fn:f4;"), std::string::npos) << folded;
  EXPECT_NE(
      folded.find("fn:f" + std::to_string(Profiler::kMaxDepth + 3) +
                  ";form:deep-leaf 1"),
      std::string::npos)
      << folded;
}

}  // namespace
}  // namespace curare::obs
