// Metrics registry tests: counters/gauges/histograms, concurrent
// updates, bucket placement, quantiles, and export shape.
#include "obs/metrics.hpp"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace curare::obs {
namespace {

TEST(MetricsTest, CounterNamesAreStableIdentities) {
  Metrics m;
  Counter& a = m.counter("x");
  Counter& b = m.counter("x");
  EXPECT_EQ(&a, &b);
  a.add(3);
  b.add();
  EXPECT_EQ(m.counter("x").get(), 4u);
  EXPECT_EQ(m.counter("y").get(), 0u);
}

TEST(MetricsTest, ConcurrentCounterAddsAreLossless) {
  Metrics m;
  Counter& c = m.counter("hits");
  constexpr int kThreads = 8, kAdds = 10000;
  std::vector<std::thread> ths;
  for (int i = 0; i < kThreads; ++i)
    ths.emplace_back([&c] {
      for (int j = 0; j < kAdds; ++j) c.add();
    });
  for (auto& t : ths) t.join();
  EXPECT_EQ(c.get(), static_cast<std::uint64_t>(kThreads * kAdds));
}

TEST(MetricsTest, GaugeSetAndAdd) {
  Metrics m;
  Gauge& g = m.gauge("depth");
  g.set(10);
  g.add(-3);
  EXPECT_EQ(g.get(), 7);
}

TEST(HistogramTest, BucketPlacementAndStats) {
  Histogram h({10, 100, 1000});
  h.observe(5);     // bucket 0 (≤10)
  h.observe(10);    // bucket 0 (bound inclusive)
  h.observe(50);    // bucket 1
  h.observe(5000);  // overflow bucket
  EXPECT_EQ(h.count(), 4u);
  EXPECT_EQ(h.sum(), 5065u);
  EXPECT_EQ(h.min(), 5u);
  EXPECT_EQ(h.max(), 5000u);
  EXPECT_EQ(h.bucket_count(0), 2u);
  EXPECT_EQ(h.bucket_count(1), 1u);
  EXPECT_EQ(h.bucket_count(2), 0u);
  EXPECT_EQ(h.bucket_count(3), 1u);
  EXPECT_DOUBLE_EQ(h.mean(), 5065.0 / 4.0);
}

TEST(HistogramTest, EmptyHistogramIsDefined) {
  Histogram h({10});
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 0u);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 0.0);
}

TEST(HistogramTest, QuantilesAreMonotoneAndBounded) {
  Histogram h(Histogram::default_ns_bounds());
  for (std::uint64_t v = 1; v <= 100000; v += 7) h.observe(v * 100);
  const double p10 = h.quantile(0.10);
  const double p50 = h.quantile(0.50);
  const double p99 = h.quantile(0.99);
  EXPECT_LE(p10, p50);
  EXPECT_LE(p50, p99);
  EXPECT_LE(p99, static_cast<double>(h.max()));
  EXPECT_GE(p10, static_cast<double>(h.min()));
}

TEST(HistogramTest, ConcurrentObserveKeepsCountAndSum) {
  Histogram h(Histogram::default_ns_bounds());
  constexpr int kThreads = 8, kObs = 5000;
  std::vector<std::thread> ths;
  for (int i = 0; i < kThreads; ++i)
    ths.emplace_back([&h, i] {
      for (int j = 1; j <= kObs; ++j)
        h.observe(static_cast<std::uint64_t>(i * kObs + j));
    });
  for (auto& t : ths) t.join();
  EXPECT_EQ(h.count(), static_cast<std::uint64_t>(kThreads * kObs));
  std::uint64_t bucket_total = 0;
  for (std::size_t i = 0; i < h.num_buckets(); ++i)
    bucket_total += h.bucket_count(i);
  EXPECT_EQ(bucket_total, h.count());
  EXPECT_EQ(h.min(), 1u);
  EXPECT_EQ(h.max(), static_cast<std::uint64_t>(kThreads * kObs));
}

TEST(HistogramTest, SingleSampleQuantilesCollapseToIt) {
  Histogram h(Histogram::default_ns_bounds());
  h.observe(42);
  // With one observation, min == max == 42 and the clamp pins every
  // quantile to it — interpolating across a bucket's full width would
  // otherwise report values the histogram never saw.
  EXPECT_DOUBLE_EQ(h.quantile(0.0), 42.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 42.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.99), 42.0);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 42.0);
}

TEST(HistogramTest, AllSamplesInOverflowBucketStayBounded) {
  // Every observation lands past the last finite bound, where the
  // bucket is conceptually infinite; quantiles must still come back
  // from [min, max], never from the unbounded bucket width.
  Histogram h({10, 100});
  h.observe(5000);
  h.observe(6000);
  h.observe(7000);
  EXPECT_EQ(h.bucket_count(2), 3u);
  const double p50 = h.quantile(0.5);
  const double p99 = h.quantile(0.99);
  EXPECT_GE(p50, 5000.0);
  EXPECT_LE(p50, 7000.0);
  EXPECT_GE(p99, 5000.0);
  EXPECT_LE(p99, 7000.0);
  EXPECT_LE(p50, p99);
}

TEST(MetricsTest, PrometheusExpositionShape) {
  Metrics m;
  m.counter("serve.requests").add(7);
  m.gauge("serve.inflight").set(-2);
  Histogram& h = m.histogram("serve.request_ns");
  for (std::uint64_t v = 1; v <= 100; ++v) h.observe(v * 1000);
  const std::string text = m.to_prometheus();
  // Dots sanitize to underscores under the curare_ prefix; counters
  // and gauges are single samples with a # TYPE header.
  EXPECT_NE(text.find("# TYPE curare_serve_requests counter\n"
                      "curare_serve_requests 7\n"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("# TYPE curare_serve_inflight gauge\n"
                      "curare_serve_inflight -2\n"),
            std::string::npos);
  // Histograms export as summaries: three quantiles plus _sum/_count.
  EXPECT_NE(text.find("# TYPE curare_serve_request_ns summary"),
            std::string::npos);
  EXPECT_NE(text.find("curare_serve_request_ns{quantile=\"0.5\"} "),
            std::string::npos);
  EXPECT_NE(text.find("curare_serve_request_ns{quantile=\"0.9\"} "),
            std::string::npos);
  EXPECT_NE(text.find("curare_serve_request_ns{quantile=\"0.99\"} "),
            std::string::npos);
  EXPECT_NE(text.find("curare_serve_request_ns_sum 5050000\n"),
            std::string::npos);
  EXPECT_NE(text.find("curare_serve_request_ns_count 100\n"),
            std::string::npos);
  // Every non-comment line is "name[{labels}] value".
  std::size_t pos = 0;
  while (pos < text.size()) {
    const std::size_t eol = text.find('\n', pos);
    const std::string line = text.substr(pos, eol - pos);
    pos = eol == std::string::npos ? text.size() : eol + 1;
    if (line.empty() || line[0] == '#') continue;
    const std::size_t sp = line.rfind(' ');
    ASSERT_NE(sp, std::string::npos) << line;
    EXPECT_EQ(line.rfind("curare_", 0), 0u) << line;
  }
}

TEST(MetricsTest, ExportContainsEveryInstrument) {
  Metrics m;
  m.counter("c.one").add(5);
  m.gauge("g.two").set(-3);
  m.histogram("h.three").observe(1234);
  const std::string text = m.to_string();
  EXPECT_NE(text.find("c.one = 5"), std::string::npos);
  EXPECT_NE(text.find("g.two = -3"), std::string::npos);
  EXPECT_NE(text.find("h.three: count=1"), std::string::npos);
  const std::string json = m.to_json();
  EXPECT_NE(json.find("\"c.one\":5"), std::string::npos);
  EXPECT_NE(json.find("\"g.two\":-3"), std::string::npos);
  EXPECT_NE(json.find("\"h.three\":{\"count\":1"), std::string::npos);
}

}  // namespace
}  // namespace curare::obs
