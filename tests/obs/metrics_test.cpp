// Metrics registry tests: counters/gauges/histograms, concurrent
// updates, bucket placement, quantiles, and export shape.
#include "obs/metrics.hpp"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace curare::obs {
namespace {

TEST(MetricsTest, CounterNamesAreStableIdentities) {
  Metrics m;
  Counter& a = m.counter("x");
  Counter& b = m.counter("x");
  EXPECT_EQ(&a, &b);
  a.add(3);
  b.add();
  EXPECT_EQ(m.counter("x").get(), 4u);
  EXPECT_EQ(m.counter("y").get(), 0u);
}

TEST(MetricsTest, ConcurrentCounterAddsAreLossless) {
  Metrics m;
  Counter& c = m.counter("hits");
  constexpr int kThreads = 8, kAdds = 10000;
  std::vector<std::thread> ths;
  for (int i = 0; i < kThreads; ++i)
    ths.emplace_back([&c] {
      for (int j = 0; j < kAdds; ++j) c.add();
    });
  for (auto& t : ths) t.join();
  EXPECT_EQ(c.get(), static_cast<std::uint64_t>(kThreads * kAdds));
}

TEST(MetricsTest, GaugeSetAndAdd) {
  Metrics m;
  Gauge& g = m.gauge("depth");
  g.set(10);
  g.add(-3);
  EXPECT_EQ(g.get(), 7);
}

TEST(HistogramTest, BucketPlacementAndStats) {
  Histogram h({10, 100, 1000});
  h.observe(5);     // bucket 0 (≤10)
  h.observe(10);    // bucket 0 (bound inclusive)
  h.observe(50);    // bucket 1
  h.observe(5000);  // overflow bucket
  EXPECT_EQ(h.count(), 4u);
  EXPECT_EQ(h.sum(), 5065u);
  EXPECT_EQ(h.min(), 5u);
  EXPECT_EQ(h.max(), 5000u);
  EXPECT_EQ(h.bucket_count(0), 2u);
  EXPECT_EQ(h.bucket_count(1), 1u);
  EXPECT_EQ(h.bucket_count(2), 0u);
  EXPECT_EQ(h.bucket_count(3), 1u);
  EXPECT_DOUBLE_EQ(h.mean(), 5065.0 / 4.0);
}

TEST(HistogramTest, EmptyHistogramIsDefined) {
  Histogram h({10});
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 0u);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 0.0);
}

TEST(HistogramTest, QuantilesAreMonotoneAndBounded) {
  Histogram h(Histogram::default_ns_bounds());
  for (std::uint64_t v = 1; v <= 100000; v += 7) h.observe(v * 100);
  const double p10 = h.quantile(0.10);
  const double p50 = h.quantile(0.50);
  const double p99 = h.quantile(0.99);
  EXPECT_LE(p10, p50);
  EXPECT_LE(p50, p99);
  EXPECT_LE(p99, static_cast<double>(h.max()));
  EXPECT_GE(p10, static_cast<double>(h.min()));
}

TEST(HistogramTest, ConcurrentObserveKeepsCountAndSum) {
  Histogram h(Histogram::default_ns_bounds());
  constexpr int kThreads = 8, kObs = 5000;
  std::vector<std::thread> ths;
  for (int i = 0; i < kThreads; ++i)
    ths.emplace_back([&h, i] {
      for (int j = 1; j <= kObs; ++j)
        h.observe(static_cast<std::uint64_t>(i * kObs + j));
    });
  for (auto& t : ths) t.join();
  EXPECT_EQ(h.count(), static_cast<std::uint64_t>(kThreads * kObs));
  std::uint64_t bucket_total = 0;
  for (std::size_t i = 0; i < h.num_buckets(); ++i)
    bucket_total += h.bucket_count(i);
  EXPECT_EQ(bucket_total, h.count());
  EXPECT_EQ(h.min(), 1u);
  EXPECT_EQ(h.max(), static_cast<std::uint64_t>(kThreads * kObs));
}

TEST(MetricsTest, ExportContainsEveryInstrument) {
  Metrics m;
  m.counter("c.one").add(5);
  m.gauge("g.two").set(-3);
  m.histogram("h.three").observe(1234);
  const std::string text = m.to_string();
  EXPECT_NE(text.find("c.one = 5"), std::string::npos);
  EXPECT_NE(text.find("g.two = -3"), std::string::npos);
  EXPECT_NE(text.find("h.three: count=1"), std::string::npos);
  const std::string json = m.to_json();
  EXPECT_NE(json.find("\"c.one\":5"), std::string::npos);
  EXPECT_NE(json.find("\"g.two\":-3"), std::string::npos);
  EXPECT_NE(json.find("\"h.three\":{\"count\":1"), std::string::npos);
}

}  // namespace
}  // namespace curare::obs
