// Lock insertion tests (paper §3.2.1): planning, coalescing, codegen.
#include "transform/lock_insert.hpp"

#include <gtest/gtest.h>

#include "analysis/extract.hpp"
#include "sexpr/printer.hpp"
#include "sexpr/reader.hpp"
#include "transform/build.hpp"

namespace curare::transform {
namespace {

class LockInsertTest : public ::testing::Test {
 protected:
  sexpr::Ctx ctx;
  decl::Declarations decls{ctx};

  std::pair<FunctionInfo, ConflictReport> analyze(std::string_view src) {
    FunctionInfo info =
        analysis::extract_function(ctx, decls, sexpr::read_one(ctx, src));
    auto report = analysis::detect_conflicts(ctx, decls, info);
    return {info, report};
  }
};

TEST_F(LockInsertTest, Fig4PlanLocksBothEndpoints) {
  auto [info, report] = analyze(
      "(defun f (l) (when l (setf (cadr l) (car l)) (f (cdr l))))");
  LockPlan plan = plan_locks(ctx, info, report);
  ASSERT_FALSE(plan.empty());
  // Conflict endpoints: write cdr.car and read car → "car" is a prefix
  // of nothing here (car vs cdr.car differ at position 0), so both
  // locations are locked — the read endpoint with a shared lock, the
  // written one exclusively (§3.2.1's read-write refinement).
  std::vector<std::string> names;
  for (const auto& s : plan.locks) names.push_back(s.to_string());
  EXPECT_NE(std::find(names.begin(), names.end(), "l.car [read]"),
            names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "l.cdr.car [write]"),
            names.end());
}

TEST_F(LockInsertTest, CoalescingPrefixSubsumes) {
  // The paper's example: conflicts over l.car, l.car.cdr, l.car.cdr.car
  // → a single lock on l.car. Synthesize the conflict set directly.
  FunctionInfo info;
  info.name = ctx.symbols.intern("f");
  Symbol* l = ctx.symbols.intern("l");
  info.params = {l};
  auto mk = [&](std::initializer_list<const char*> fields, bool write) {
    analysis::StructRef r;
    r.root = l;
    std::vector<analysis::Field> fs;
    for (const char* f : fields) fs.push_back(ctx.symbols.intern(f));
    r.path = FieldPath(fs);
    r.is_write = write;
    return r;
  };
  ConflictReport report;
  Conflict c1;
  c1.earlier = mk({"car"}, true);
  c1.later = mk({"car", "cdr"}, false);
  Conflict c2;
  c2.earlier = mk({"car"}, true);
  c2.later = mk({"car", "cdr", "car"}, false);
  report.conflicts = {c1, c2};

  LockPlan plan = plan_locks(ctx, info, report);
  ASSERT_EQ(plan.locks.size(), 1u)
      << "l.car must subsume l.car.cdr and l.car.cdr.car";
  EXPECT_EQ(plan.locks[0].to_string(), "l.car [write]")
      << "the synthesized info has a write at car, so the coalesced "
         "lock stays exclusive";
  EXPECT_GE(plan.notes.size(), 2u);
}

TEST_F(LockInsertTest, VariableConflictPlansVariableLock) {
  auto [info, report] = analyze(
      "(defun f (l) (when l (setq g (- g 1)) (f (cdr l))))");
  LockPlan plan = plan_locks(ctx, info, report);
  bool has_var = false;
  for (const auto& s : plan.locks) has_var |= s.variable;
  EXPECT_TRUE(has_var);
}

TEST_F(LockInsertTest, ApplyGeneratesLockUnlockPair) {
  auto [info, report] = analyze(
      "(defun f (l) (when l (setf (cadr l) (car l)) (f (cdr l))))");
  LockPlan plan = plan_locks(ctx, info, report);
  Value out = apply_lock_plan(ctx, info.defun_form, plan);
  std::string text = sexpr::write_str(out);
  EXPECT_NE(text.find("(%lock l (quote car) (quote read))"), std::string::npos) << text;
  EXPECT_NE(text.find("(%lock (cdr l) (quote car) (quote write))"), std::string::npos)
      << text;
  EXPECT_NE(text.find("%unlock"), std::string::npos);
  // Locks precede the original body; unlocks follow it.
  EXPECT_LT(text.find("%lock"), text.find("(when l"));
  EXPECT_GT(text.find("%unlock"), text.find("(when l"));
}

TEST_F(LockInsertTest, UnlocksInReverseOrder) {
  auto [info, report] = analyze(
      "(defun f (l) (when l (setf (cadr l) (car l)) (f (cdr l))))");
  LockPlan plan = plan_locks(ctx, info, report);
  ASSERT_EQ(plan.locks.size(), 2u);
  Value out = apply_lock_plan(ctx, info.defun_form, plan);
  std::string text = sexpr::write_str(out);
  // First lock l.car, then l.cdr.car; unlock order reversed.
  std::size_t lock1 = text.find("(%lock l (quote car) (quote read))");
  std::size_t lock2 = text.find("(%lock (cdr l) (quote car) (quote write))");
  std::size_t unlock2 = text.find("(%unlock (cdr l) (quote car) (quote write))");
  std::size_t unlock1 = text.find("(%unlock l (quote car) (quote read))");
  ASSERT_NE(lock1, std::string::npos);
  ASSERT_NE(lock2, std::string::npos);
  EXPECT_LT(lock1, lock2);
  EXPECT_LT(unlock2, unlock1) << "two-phase: release in reverse order";
}

TEST_F(LockInsertTest, UnlocksPlacedAfterLastUseNotAtBodyEnd) {
  // §3.2.1: "move unlock statements so that they execute as soon after
  // their lock statements as possible". A trailing statement that never
  // touches the locked structure must run after the release.
  auto [info, report] = analyze(
      "(defun f (l)"
      "  (when l (setf (cadr l) (car l)) (f (cdr l)))"
      "  (print 'done))");
  LockPlan plan = plan_locks(ctx, info, report);
  ASSERT_FALSE(plan.empty());
  Value out = apply_lock_plan(ctx, info.defun_form, plan);
  std::string text = sexpr::write_str(out);
  EXPECT_LT(text.rfind("%unlock"), text.find("(print (quote done))"))
      << "unlocks must precede the l-free trailing statement: " << text;
}

TEST_F(LockInsertTest, EmptyPlanLeavesDefunUntouched) {
  auto [info, report] =
      analyze("(defun f (l) (when l (print (car l)) (f (cdr l))))");
  LockPlan plan = plan_locks(ctx, info, report);
  EXPECT_TRUE(plan.empty());
  Value out = apply_lock_plan(ctx, info.defun_form, plan);
  EXPECT_EQ(out, info.defun_form);
}

TEST_F(LockInsertTest, LocationExprHelpers) {
  Symbol* l = ctx.symbols.intern("l");
  FieldPath p({ctx.symbols.intern("cdr"), ctx.symbols.intern("car")});
  EXPECT_EQ(sexpr::write_str(path_expr(ctx, l, p)), "(car (cdr l))");
  LocationExpr loc = location_expr(ctx, l, p);
  EXPECT_EQ(sexpr::write_str(loc.cell), "(cdr l)");
  EXPECT_EQ(loc.field->name, "car");
  EXPECT_THROW(location_expr(ctx, l, FieldPath()), sexpr::LispError);
}

}  // namespace
}  // namespace curare::transform
