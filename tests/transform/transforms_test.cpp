// Tests for delay (§3.2.2), reorder (§3.2.3), rec2iter and DPS (§5),
// and CRI codegen (§3.1/§4) — each transformation's output is also
// EXECUTED to confirm semantic equivalence with the original.
#include <gtest/gtest.h>

#include "analysis/conflict.hpp"
#include "analysis/extract.hpp"
#include "lisp/interp.hpp"
#include "sexpr/printer.hpp"
#include "sexpr/reader.hpp"
#include "transform/cri.hpp"
#include "transform/delay.hpp"
#include "transform/dps.hpp"
#include "transform/rec2iter.hpp"
#include "transform/reorder.hpp"

namespace curare::transform {
namespace {

using analysis::FunctionInfo;

class TransformTest : public ::testing::Test {
 protected:
  sexpr::Ctx ctx;
  decl::Declarations decls{ctx};
  lisp::Interp in{ctx};

  FunctionInfo extract(std::string_view src) {
    return analysis::extract_function(ctx, decls,
                                      sexpr::read_one(ctx, src));
  }

  std::string run(std::string_view src) {
    return sexpr::write_str(in.eval_program(src));
  }

  std::string eval_form(sexpr::Value form) {
    return sexpr::write_str(in.eval_top(form));
  }
};

// ---- delay (§3.2.2) ----------------------------------------------------

TEST_F(TransformTest, DelayHoistsTailWriteAboveCall) {
  FunctionInfo info = extract(
      "(defun f (l) (when l (f (cdr l)) (setf (cadr l) (car l))))");
  auto conflicts = analysis::detect_conflicts(ctx, decls, info);
  ASSERT_FALSE(conflicts.conflicts.empty());
  DelayResult r = apply_delay(ctx, decls, info, conflicts);
  EXPECT_EQ(r.moved, 1);
  std::string text = sexpr::write_str(r.defun);
  EXPECT_LT(text.find("(setf (cadr l)"), text.find("(f (cdr l))"))
      << "write must now precede the recursive call: " << text;
}

TEST_F(TransformTest, DelayedFunctionMatchesInvocationOrderSemantics) {
  // §3.1.1: Curare's correctness criterion is final-state
  // sequentializability — "the serial execution of the same set of
  // transactions in their sequential [invocation] order". For side
  // effects in the TAIL this differs from nested Lisp recursion (tails
  // unwind in reverse); the delay transformation realizes the paper's
  // invocation-order semantics. The reference below executes the
  // invocations serially in order with a loop.
  const char* original =
      "(defun f (l) (when (cdr l) (f (cdr l)) (setf (cadr l) (car l))))";
  FunctionInfo info = extract(original);
  auto conflicts = analysis::detect_conflicts(ctx, decls, info);
  DelayResult r = apply_delay(ctx, decls, info, conflicts);
  ASSERT_EQ(r.moved, 1);

  run("(defun serial-ref (l)"
      "  (while (cdr l) (setf (cadr l) (car l)) (setq l (cdr l))))");
  std::string reference =
      run("(let ((x (list 1 2 3 4))) (serial-ref x) x)");
  eval_form(r.defun);  // defines the delayed f
  std::string delayed = run("(let ((x (list 1 2 3 4))) (f x) x)");
  EXPECT_EQ(delayed, reference);
  EXPECT_EQ(delayed, "(1 1 1 1)") << "serial invocation order propagates "
                                     "the first car down the list";
}

TEST_F(TransformTest, DelayRefusesWhenWriteFeedsCallArguments) {
  // The write clobbers (cdr l), which the call's argument reads:
  // motion would change the spawned argument.
  FunctionInfo info = extract(
      "(defun f (l) (when l (f (cdr l)) (setf (cdr l) nil)))");
  auto conflicts = analysis::detect_conflicts(ctx, decls, info);
  DelayResult r = apply_delay(ctx, decls, info, conflicts);
  EXPECT_EQ(r.moved, 0) << "W=cdr is a prefix of the call's read cdr";
}

TEST_F(TransformTest, DelaySetqHoistsWhenIndependent) {
  FunctionInfo info = extract(
      "(defun f (l) (when l (f (cdr l)) (setq total (- total 1))))");
  auto conflicts = analysis::detect_conflicts(ctx, decls, info);
  DelayResult r = apply_delay(ctx, decls, info, conflicts);
  EXPECT_EQ(r.moved, 1);
}

TEST_F(TransformTest, DelaySetqRefusesWhenCallMentionsVariable) {
  FunctionInfo info = extract(
      "(defun f (n) (when (> n 0) (f (- n step)) (setq step (- step 1))))");
  auto conflicts = analysis::detect_conflicts(ctx, decls, info);
  DelayResult r = apply_delay(ctx, decls, info, conflicts);
  EXPECT_EQ(r.moved, 0) << "the call argument reads `step`";
}

// ---- reorder (§3.2.3) -----------------------------------------------------

TEST_F(TransformTest, ReorderRewritesGlobalIncrement) {
  FunctionInfo info = extract(
      "(defun f (l) (when l (setq a (+ a 1)) (f (cdr l))))");
  ReorderResult r = apply_reorder(ctx, decls, info);
  EXPECT_EQ(r.rewritten, 1);
  EXPECT_NE(sexpr::write_str(r.defun).find("(%atomic-incf-var (quote a) 1)"),
            std::string::npos)
      << sexpr::write_str(r.defun);
}

TEST_F(TransformTest, ReorderRewritesStructureUpdate) {
  FunctionInfo info = extract(
      "(defun f (l) (when l (setf (cadr l) (+ (cadr l) 5)) (f (cdr l))))");
  ReorderResult r = apply_reorder(ctx, decls, info);
  EXPECT_EQ(r.rewritten, 1);
  EXPECT_NE(sexpr::write_str(r.defun)
                .find("(%atomic-add (cdr l) (quote car) 5)"),
            std::string::npos)
      << sexpr::write_str(r.defun);
}

TEST_F(TransformTest, ReorderUsesLockedUpdateForNonPlusOps) {
  FunctionInfo info = extract(
      "(defun f (l) (when l (setq m (max m (car l))) (f (cdr l))))");
  ReorderResult r = apply_reorder(ctx, decls, info);
  EXPECT_EQ(r.rewritten, 1);
  EXPECT_NE(sexpr::write_str(r.defun).find("%locked-update-var"),
            std::string::npos);
}

TEST_F(TransformTest, ReorderLeavesNonCommutativeAlone) {
  FunctionInfo info = extract(
      "(defun f (l) (when l (setq a (- a 1)) (f (cdr l))))");
  ReorderResult r = apply_reorder(ctx, decls, info);
  EXPECT_EQ(r.rewritten, 0);
}

TEST_F(TransformTest, ReorderLeavesParameterUpdatesAlone) {
  FunctionInfo info = extract(
      "(defun f (n) (when (> n 0) (setq n (+ n -1)) (f n)))");
  ReorderResult r = apply_reorder(ctx, decls, info);
  EXPECT_EQ(r.rewritten, 0) << "parameters are invocation-local";
}

// ---- recursion→iteration (§5) -----------------------------------------------

TEST_F(TransformTest, Rec2IterSumList) {
  FunctionInfo info = extract(
      "(defun sum (l) (if (null l) 0 (+ (car l) (sum (cdr l)))))");
  Rec2IterResult r = apply_rec2iter(ctx, decls, info);
  ASSERT_TRUE(r.ok) << r.failure;
  EXPECT_EQ(r.op->name, "+");
  eval_form(r.defun);
  EXPECT_EQ(run("(sum '(1 2 3 4 5))"), "15");
  EXPECT_EQ(run("(sum nil)"), "0");
  EXPECT_EQ(run("(sum '(7))"), "7");
}

TEST_F(TransformTest, Rec2IterCondSpelling) {
  FunctionInfo info = extract(
      "(defun product (l) (cond ((null l) 1)"
      " (t (* (car l) (product (cdr l))))))");
  Rec2IterResult r = apply_rec2iter(ctx, decls, info);
  ASSERT_TRUE(r.ok) << r.failure;
  eval_form(r.defun);
  EXPECT_EQ(run("(product '(2 3 4))"), "24");
}

TEST_F(TransformTest, Rec2IterRecCallFirstArgument) {
  FunctionInfo info = extract(
      "(defun sum2 (l) (if (null l) 0 (+ (sum2 (cdr l)) (car l))))");
  Rec2IterResult r = apply_rec2iter(ctx, decls, info);
  ASSERT_TRUE(r.ok) << r.failure;
  eval_form(r.defun);
  EXPECT_EQ(run("(sum2 '(10 20 30))"), "60");
}

TEST_F(TransformTest, Rec2IterMultiParameter) {
  FunctionInfo info = extract(
      "(defun countdown-sum (n acc-unused)"
      "  (if (= n 0) 0 (+ n (countdown-sum (- n 1) acc-unused))))");
  Rec2IterResult r = apply_rec2iter(ctx, decls, info);
  ASSERT_TRUE(r.ok) << r.failure;
  eval_form(r.defun);
  EXPECT_EQ(run("(countdown-sum 10 nil)"), "55");
}

TEST_F(TransformTest, Rec2IterDeepRecursionNoStackGrowth) {
  FunctionInfo info = extract(
      "(defun sumn (n) (if (= n 0) 0 (+ n (sumn (- n 1)))))");
  Rec2IterResult r = apply_rec2iter(ctx, decls, info);
  ASSERT_TRUE(r.ok) << r.failure;
  eval_form(r.defun);
  // 5e5 would overflow the evaluator's non-tail depth limit; the
  // iterative version must handle it.
  EXPECT_EQ(run("(sumn 500000)"), "125000250000");
}

TEST_F(TransformTest, Rec2IterRejectsNonAssociativeOp) {
  FunctionInfo info = extract(
      "(defun sub (l) (if (null l) 0 (- (car l) (sub (cdr l)))))");
  Rec2IterResult r = apply_rec2iter(ctx, decls, info);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.failure.find("declarations"), std::string::npos);
}

TEST_F(TransformTest, Rec2IterRejectsNonReductionShape) {
  FunctionInfo info = extract(
      "(defun f (l) (when l (print (car l)) (f (cdr l))))");
  Rec2IterResult r = apply_rec2iter(ctx, decls, info);
  EXPECT_FALSE(r.ok);
}

// ---- destination-passing style (§5, Figs 12–13) ----------------------------

TEST_F(TransformTest, DpsRemqMatchesPaperShape) {
  FunctionInfo info = extract(
      "(defun remq (obj lst)"
      "  (cond ((null lst) nil)"
      "        ((eq obj (car lst)) (remq obj (cdr lst)))"
      "        (t (cons (car lst) (remq obj (cdr lst))))))");
  DpsResult r = apply_dps(ctx, info);
  ASSERT_TRUE(r.ok) << r.failure;
  EXPECT_TRUE(r.dps_safe);
  std::string dps = sexpr::write_str(r.dps_defun);
  // The Fig 13 ingredients: destination parameter, base stores nil,
  // pass-through, fresh cell + link.
  EXPECT_NE(dps.find("remq$dps"), std::string::npos);
  EXPECT_NE(dps.find("(setf (cdr %dest) nil)"), std::string::npos) << dps;
  EXPECT_NE(dps.find("(remq$dps %dest obj (cdr lst))"), std::string::npos)
      << dps;
  EXPECT_NE(dps.find("(cons (car lst) nil)"), std::string::npos) << dps;
  EXPECT_NE(dps.find("(setf (cdr %dest) %cell)"), std::string::npos)
      << dps;
}

TEST_F(TransformTest, DpsRemqComputesSameResults) {
  FunctionInfo info = extract(
      "(defun remq (obj lst)"
      "  (cond ((null lst) nil)"
      "        ((eq obj (car lst)) (remq obj (cdr lst)))"
      "        (t (cons (car lst) (remq obj (cdr lst))))))");
  DpsResult r = apply_dps(ctx, info);
  ASSERT_TRUE(r.ok);
  eval_form(r.dps_defun);
  eval_form(r.wrapper_defun);  // redefines remq via the DPS helper
  EXPECT_EQ(run("(remq 'a '(a b a c a))"), "(b c)");
  EXPECT_EQ(run("(remq 'a nil)"), "nil");
  EXPECT_EQ(run("(remq 'z '(a b))"), "(a b)");
  EXPECT_EQ(run("(remq 'a '(a a a))"), "nil");
}

TEST_F(TransformTest, DpsIfSpelling) {
  FunctionInfo info = extract(
      "(defun ident (l) (if (null l) nil (cons (car l) (ident (cdr l)))))");
  DpsResult r = apply_dps(ctx, info);
  ASSERT_TRUE(r.ok) << r.failure;
  eval_form(r.dps_defun);
  eval_form(r.wrapper_defun);
  EXPECT_EQ(run("(ident '(1 2 3))"), "(1 2 3)");
}

TEST_F(TransformTest, DpsRejectsNonConsUse) {
  FunctionInfo info = extract(
      "(defun f (l) (if (null l) 0 (+ 1 (f (cdr l)))))");
  DpsResult r = apply_dps(ctx, info);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.failure.find("cons"), std::string::npos);
}

// ---- CRI codegen (§3.1/§4) ---------------------------------------------------

TEST_F(TransformTest, CriRewritesCallToEnqueue) {
  FunctionInfo info = extract(
      "(defun f (l) (when l (print (car l)) (f (cdr l))))");
  CriResult r = make_cri(ctx, info);
  ASSERT_TRUE(r.ok) << r.failure;
  EXPECT_EQ(r.num_sites, 1u);
  std::string server = sexpr::write_str(r.server_defun);
  EXPECT_NE(server.find("(%cri-enqueue 0 (cdr l))"), std::string::npos)
      << server;
  EXPECT_EQ(server.find("(f (cdr l))"), std::string::npos)
      << "no direct recursive call may remain";
  std::string wrapper = sexpr::write_str(r.wrapper_defun);
  EXPECT_NE(wrapper.find("(%cri-run f$cri 1 %servers l)"),
            std::string::npos)
      << wrapper;
}

TEST_F(TransformTest, CriMultipleSitesNumbered) {
  FunctionInfo info = extract(
      "(defun walk (x) (when (consp x) (walk (car x)) (walk (cdr x))))");
  CriResult r = make_cri(ctx, info);
  ASSERT_TRUE(r.ok) << r.failure;
  EXPECT_EQ(r.num_sites, 2u);
  std::string server = sexpr::write_str(r.server_defun);
  EXPECT_NE(server.find("(%cri-enqueue 0 (car x))"), std::string::npos);
  EXPECT_NE(server.find("(%cri-enqueue 1 (cdr x))"), std::string::npos);
}

TEST_F(TransformTest, CriCapturesTailResult) {
  FunctionInfo info = extract(
      "(defun last-elt (l) (if (null (cdr l)) (car l)"
      " (last-elt (cdr l))))");
  CriResult r = make_cri(ctx, info);
  ASSERT_TRUE(r.ok) << r.failure;
  ASSERT_NE(r.result_var, nullptr);
  EXPECT_EQ(r.result_var->name, "last-elt$result");
  std::string server = sexpr::write_str(r.server_defun);
  EXPECT_NE(server.find("(setq last-elt$result (car l))"),
            std::string::npos)
      << server;
}

TEST_F(TransformTest, CriRejectsEmbeddedResultUse) {
  FunctionInfo info = extract(
      "(defun f (l) (if (null l) 0 (+ 1 (f (cdr l)))))");
  CriResult r = make_cri(ctx, info);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.failure.find("§5"), std::string::npos)
      << "feedback should point at the enabling transformations";
}

TEST_F(TransformTest, CriRejectsNonRecursive) {
  FunctionInfo info = extract("(defun f (l) (car l))");
  CriResult r = make_cri(ctx, info);
  EXPECT_FALSE(r.ok);
}

}  // namespace
}  // namespace curare::transform
