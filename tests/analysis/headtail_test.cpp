// Head/tail partition tests (paper §3.1): the split that determines
// concurrency (|H|+|T|)/|H| and where locks/delays may be placed.
#include "analysis/headtail.hpp"

#include <gtest/gtest.h>

#include "analysis/extract.hpp"
#include "sexpr/printer.hpp"
#include "sexpr/reader.hpp"

namespace curare::analysis {
namespace {

class HeadTailTest : public ::testing::Test {
 protected:
  sexpr::Ctx ctx;
  decl::Declarations decls{ctx};

  HeadTail partition(std::string_view src) {
    FunctionInfo info =
        extract_function(ctx, decls, sexpr::read_one(ctx, src));
    return partition_head_tail(ctx, info);
  }

  static bool stmt_in_tail(const HeadTail& ht, const std::string& text) {
    for (const StmtClass& s : ht.stmts) {
      if (sexpr::write_str(s.form) == text) return s.in_tail;
    }
    ADD_FAILURE() << "statement not found: " << text;
    return false;
  }
};

TEST_F(HeadTailTest, TailRecursiveFunctionIsAllHead) {
  // Fig 3: everything runs before the recursive call → all head.
  HeadTail ht = partition(
      "(defun f (l) (when l (print (car l)) (f (cdr l))))");
  EXPECT_EQ(ht.tail_size, 0u);
  EXPECT_GT(ht.head_size, 0u);
  EXPECT_DOUBLE_EQ(ht.concurrency(), 1.0)
      << "tail-recursive: no overlap possible without restructuring";
}

TEST_F(HeadTailTest, HeadRecursiveFunctionHasTail) {
  // Recursive call first, then work → work is in the tail.
  HeadTail ht = partition(
      "(defun f (l) (when l (f (cdr l)) (print (car l))))");
  EXPECT_GT(ht.tail_size, 0u);
  EXPECT_TRUE(stmt_in_tail(ht, "(print (car l))"));
  EXPECT_FALSE(stmt_in_tail(ht, "(f (cdr l))"))
      << "recursive calls are head by definition";
  EXPECT_GT(ht.concurrency(), 1.0);
}

TEST_F(HeadTailTest, RemqDTailStatement) {
  // Fig 13's t-clause: the rec call precedes (setf (cdr dest) cell),
  // which therefore lands in the tail — that is exactly why DPS makes
  // remq concurrent.
  HeadTail ht = partition(
      "(defun remq-d (dest obj lst)"
      "  (cond ((null lst) (setf (cdr dest) nil))"
      "        ((eq obj (car lst)) (remq-d dest obj (cdr lst)))"
      "        (t (let ((cell (cons (car lst) nil)))"
      "             (remq-d cell obj (cdr lst))"
      "             (setf (cdr dest) cell)))))");
  EXPECT_TRUE(stmt_in_tail(ht, "(setf (cdr dest) cell)"));
  EXPECT_FALSE(stmt_in_tail(ht, "(setf (cdr dest) nil)"))
      << "the base-case setf is not dominated by a recursive call";
  EXPECT_GT(ht.concurrency(), 1.0);
}

TEST_F(HeadTailTest, StatementsAfterConditionalCallAreNotDominated) {
  // (when p (f ...)) may skip the call, so the next statement is head.
  HeadTail ht = partition(
      "(defun f (l)"
      "  (progn (when (car l) (f (cdr l))) (print (car l))))");
  EXPECT_FALSE(stmt_in_tail(ht, "(print (car l))"));
}

TEST_F(HeadTailTest, IfWithCallsInBothArmsDominates) {
  HeadTail ht = partition(
      "(defun f (l)"
      "  (progn (if (car l) (f (cdr l)) (f (cddr l)))"
      "         (print (car l))))");
  EXPECT_TRUE(stmt_in_tail(ht, "(print (car l))"));
}

TEST_F(HeadTailTest, IfWithoutElseDoesNotDominate) {
  HeadTail ht = partition(
      "(defun f (l)"
      "  (progn (if (car l) (f (cdr l))) (print (car l))))");
  EXPECT_FALSE(stmt_in_tail(ht, "(print (car l))"));
}

TEST_F(HeadTailTest, CondWithDefaultAndAllCallsDominates) {
  HeadTail ht = partition(
      "(defun f (l)"
      "  (progn (cond ((null l) (f nil)) (t (f (cdr l))))"
      "         (print 1)))");
  EXPECT_TRUE(stmt_in_tail(ht, "(print 1)"));
}

TEST_F(HeadTailTest, CondWithoutDefaultDoesNotDominate) {
  HeadTail ht = partition(
      "(defun f (l)"
      "  (progn (cond ((null l) (f nil)) ((car l) (f (cdr l))))"
      "         (print 1)))");
  EXPECT_FALSE(stmt_in_tail(ht, "(print 1)"));
}

TEST_F(HeadTailTest, EmbeddedCallStatementStaysInHead) {
  // (setf (cdr dest) (f ...)) contains the call: head, and it dominates
  // what follows.
  HeadTail ht = partition(
      "(defun f (dest l)"
      "  (progn (setf (cdr dest) (f dest (cdr l))) (print 1)))");
  EXPECT_FALSE(stmt_in_tail(ht, "(setf (cdr dest) (f dest (cdr l)))"));
  EXPECT_TRUE(stmt_in_tail(ht, "(print 1)"));
}

TEST_F(HeadTailTest, ConcurrencyGrowsAsHeadShrinks) {
  // E5's static shape: more post-call work → higher (h+t)/h.
  HeadTail small_tail = partition(
      "(defun f (l) (when l (f (cdr l)) (print (car l))))");
  HeadTail big_tail = partition(
      "(defun f (l) (when l (f (cdr l))"
      " (print (car l)) (print (car l)) (print (car l))"
      " (print (car l)) (print (car l)) (print (car l))))");
  EXPECT_GT(big_tail.concurrency(), small_tail.concurrency());
}

TEST_F(HeadTailTest, FormSizeCountsNodes) {
  EXPECT_EQ(form_size(sexpr::read_one(ctx, "x")), 1u);
  EXPECT_GT(form_size(sexpr::read_one(ctx, "(print (car l))")),
            form_size(sexpr::read_one(ctx, "(print l)")));
}

TEST_F(HeadTailTest, ContainsRecCallIgnoresQuote) {
  FunctionInfo info = extract_function(
      ctx, decls, sexpr::read_one(ctx, "(defun f (l) (print '(f x)))"));
  EXPECT_FALSE(contains_rec_call(ctx, sexpr::read_one(ctx, "(print '(f x))"),
                                 info.name));
  EXPECT_TRUE(contains_rec_call(ctx, sexpr::read_one(ctx, "(g (f x))"),
                                info.name));
}

}  // namespace
}  // namespace curare::analysis
