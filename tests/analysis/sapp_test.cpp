// SAPP verifier tests (paper §2.1): trees pass, shared substructure and
// cycles fail.
#include "analysis/sapp.hpp"

#include <gtest/gtest.h>

#include "sexpr/ctx.hpp"
#include "sexpr/reader.hpp"

namespace curare::analysis {
namespace {

using sexpr::Value;

class SappTest : public ::testing::Test {
 protected:
  sexpr::Ctx ctx;
};

TEST_F(SappTest, AtomsHold) {
  EXPECT_TRUE(check_sapp(Value::nil()));
  EXPECT_TRUE(check_sapp(Value::fixnum(7)));
  EXPECT_TRUE(check_sapp(ctx.sym("x")));
}

TEST_F(SappTest, ProperListHolds) {
  SappResult r = check_sapp(sexpr::read_one(ctx, "(1 2 3 (4 5) 6)"));
  EXPECT_TRUE(r);
  EXPECT_EQ(r.cells, 7u);
}

TEST_F(SappTest, SharedAtomsAreFine) {
  Value a = ctx.sym("a");
  Value l = ctx.make_list(a, a, a);
  EXPECT_TRUE(check_sapp(l)) << "interned atoms are shared by design";
}

TEST_F(SappTest, SharedSubstructureFails) {
  Value shared = sexpr::read_one(ctx, "(x)");
  Value l = ctx.make_list(shared, shared);
  SappResult r = check_sapp(l);
  EXPECT_FALSE(r);
  EXPECT_FALSE(r.violation.empty());
}

TEST_F(SappTest, CycleFails) {
  Value a = ctx.cons(Value::fixnum(1), Value::nil());
  sexpr::as_cons(a)->set_cdr(a);
  EXPECT_FALSE(check_sapp(a));
}

TEST_F(SappTest, DiamondViaCarAndCdrFails) {
  Value shared = ctx.cons(Value::fixnum(9), Value::nil());
  Value both = ctx.cons(shared, shared);
  EXPECT_FALSE(check_sapp(both));
}

TEST_F(SappTest, LargeListIterative) {
  std::string src = "(";
  for (int i = 0; i < 200000; ++i) src += "1 ";
  src += ")";
  SappResult r = check_sapp(sexpr::read_one(ctx, src));
  EXPECT_TRUE(r);
  EXPECT_EQ(r.cells, 200000u);
}

}  // namespace
}  // namespace curare::analysis
