// Array subscript analysis tests (paper §2: FORTRAN techniques applied
// to Lisp arrays): affine parsing, collision distances, extraction,
// conflicts, and the end-to-end pipeline with whole-array locks.
#include "analysis/array.hpp"

#include <gtest/gtest.h>

#include "analysis/conflict.hpp"
#include "analysis/extract.hpp"
#include "curare/curare.hpp"
#include "sexpr/reader.hpp"

namespace curare::analysis {
namespace {

class AffineTest : public ::testing::Test {
 protected:
  sexpr::Ctx ctx;

  std::optional<AffineIndex> parse(std::string_view src) {
    return parse_affine(ctx, sexpr::read_one(ctx, src));
  }
};

TEST_F(AffineTest, Literal) {
  auto a = parse("7");
  ASSERT_TRUE(a);
  EXPECT_EQ(a->var, nullptr);
  EXPECT_EQ(a->offset, 7);
}

TEST_F(AffineTest, BareVariable) {
  auto a = parse("n");
  ASSERT_TRUE(a);
  EXPECT_EQ(a->var->name, "n");
  EXPECT_EQ(a->coef, 1);
  EXPECT_EQ(a->offset, 0);
}

TEST_F(AffineTest, AddSubForms) {
  EXPECT_EQ(parse("(+ n 3)")->offset, 3);
  EXPECT_EQ(parse("(- n 2)")->offset, -2);
  EXPECT_EQ(parse("(+ 3 n)")->offset, 3);
  EXPECT_EQ(parse("(1+ n)")->offset, 1);
  EXPECT_EQ(parse("(1- n)")->offset, -1);
}

TEST_F(AffineTest, ScaledForms) {
  auto a = parse("(* 2 n)");
  ASSERT_TRUE(a);
  EXPECT_EQ(a->coef, 2);
  auto b = parse("(+ (* 2 n) 5)");
  ASSERT_TRUE(b);
  EXPECT_EQ(b->coef, 2);
  EXPECT_EQ(b->offset, 5);
  auto c = parse("(- (* 3 n) 1)");
  ASSERT_TRUE(c);
  EXPECT_EQ(c->coef, 3);
  EXPECT_EQ(c->offset, -1);
}

TEST_F(AffineTest, Negation) {
  auto a = parse("(- n)");
  ASSERT_TRUE(a);
  EXPECT_EQ(a->coef, -1);
}

TEST_F(AffineTest, NonAffineRejected) {
  EXPECT_FALSE(parse("(* n n)").has_value());
  EXPECT_FALSE(parse("(+ n m)").has_value()) << "two variables";
  EXPECT_FALSE(parse("(car n)").has_value());
  EXPECT_FALSE(parse("(/ n 2)").has_value());
}

TEST_F(AffineTest, VariableCancellation) {
  auto a = parse("(- n n)");
  ASSERT_TRUE(a);
  EXPECT_EQ(a->var, nullptr) << "n - n is the constant 0";
  EXPECT_EQ(a->offset, 0);
}

// ---- collision distances -------------------------------------------------

class CollisionTest : public ::testing::Test {
 protected:
  sexpr::Ctx ctx;

  ArrayRef ref(const char* index_src, bool write) {
    ArrayRef r;
    r.array = ctx.symbols.intern("v");
    r.is_write = write;
    auto a = parse_affine(ctx, sexpr::read_one(ctx, index_src));
    if (a) {
      r.index = *a;
      r.affine = true;
    } else {
      r.affine = false;
    }
    return r;
  }
};

TEST_F(CollisionTest, WriteAheadByK) {
  // write v[n+k] (earlier), read v[n] (later, n advanced by 1):
  // n+k == n+d  →  d = k.
  for (int k : {1, 2, 5, 12}) {
    auto d = array_collision_distance(
        ref(("(+ n " + std::to_string(k) + ")").c_str(), true),
        ref("n", false), 1, 64);
    ASSERT_TRUE(d.has_value()) << k;
    EXPECT_EQ(*d, k);
  }
}

TEST_F(CollisionTest, WriteBehindNeverCollidesForward) {
  auto d = array_collision_distance(ref("(- n 1)", true), ref("n", false),
                                    1, 64);
  EXPECT_FALSE(d.has_value())
      << "the earlier invocation writes below every later subscript";
}

TEST_F(CollisionTest, SameIndexDisjointAcrossInvocations) {
  auto d = array_collision_distance(ref("n", true), ref("n", false), 1,
                                    64);
  EXPECT_FALSE(d.has_value()) << "v[n] vs v[n+d] never meet for d ≥ 1";
}

TEST_F(CollisionTest, NegativeStepReversesDirection) {
  // Counting down (δ = −1): writing v[n−2] collides with a later
  // read of v[n] at distance 2.
  auto d = array_collision_distance(ref("(- n 2)", true), ref("n", false),
                                    -1, 64);
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(*d, 2);
}

TEST_F(CollisionTest, Stride2OnlyEvenOffsetsCollide) {
  // δ = 2: write v[n+4] meets read v[n] at d = 2; v[n+3] never.
  EXPECT_EQ(array_collision_distance(ref("(+ n 4)", true), ref("n", false),
                                     2, 64)
                .value_or(-1),
            2);
  EXPECT_FALSE(array_collision_distance(ref("(+ n 3)", true),
                                        ref("n", false), 2, 64)
                   .has_value());
}

TEST_F(CollisionTest, ConstantIndexAlwaysCollides) {
  EXPECT_EQ(array_collision_distance(ref("5", true), ref("5", false), 1,
                                     64)
                .value_or(-1),
            1);
  EXPECT_FALSE(array_collision_distance(ref("5", true), ref("6", false),
                                        1, 64)
                   .has_value());
}

TEST_F(CollisionTest, UnknownStepWorstCase) {
  EXPECT_EQ(array_collision_distance(ref("n", true), ref("n", false),
                                     std::nullopt, 64)
                .value_or(-1),
            1);
}

TEST_F(CollisionTest, NonAffineWorstCase) {
  EXPECT_EQ(array_collision_distance(ref("(* n n)", true),
                                     ref("n", false), 1, 64)
                .value_or(-1),
            1);
}

TEST_F(CollisionTest, DifferentArraysNeverConflict) {
  ArrayRef a = ref("n", true);
  ArrayRef b = ref("n", false);
  b.array = ctx.symbols.intern("w");
  EXPECT_FALSE(array_collision_distance(a, b, 1, 64).has_value());
}

// ---- extraction + conflicts ------------------------------------------------

class ArrayConflictTest : public ::testing::Test {
 protected:
  sexpr::Ctx ctx;
  decl::Declarations decls{ctx};

  ConflictReport analyze(std::string_view src) {
    FunctionInfo info =
        extract_function(ctx, decls, sexpr::read_one(ctx, src));
    return detect_conflicts(ctx, decls, info);
  }
};

TEST_F(ArrayConflictTest, StencilWriteAheadDistanceK) {
  ConflictReport r = analyze(
      "(defun st (v n)"
      "  (when (< n 100)"
      "    (setf (aref v (+ n 3)) (aref v n))"
      "    (st v (+ n 1))))");
  bool found = false;
  for (const auto& c : r.conflicts) {
    if (c.is_array_conflict()) {
      found = true;
      EXPECT_EQ(c.distance, 3);
    }
  }
  EXPECT_TRUE(found);
  EXPECT_EQ(r.min_distance().value_or(-1), 3);
}

TEST_F(ArrayConflictTest, IndependentElementsNoConflict) {
  // Each invocation writes only its own element: embarrassingly
  // parallel, the analyzer must prove it.
  ConflictReport r = analyze(
      "(defun fill-sq (v n)"
      "  (when (< n 100)"
      "    (setf (aref v n) (* n n))"
      "    (fill-sq v (+ n 1))))");
  for (const auto& c : r.conflicts)
    EXPECT_FALSE(c.is_array_conflict()) << c.describe();
}

TEST_F(ArrayConflictTest, InductionStepExtracted) {
  FunctionInfo info = extract_function(
      ctx, decls,
      sexpr::read_one(ctx, "(defun f (v n) (when (< n 9)"
                           " (setf (aref v n) 0) (f v (+ n 2))))"));
  auto step = info.induction_step(ctx, info.params[1]);
  ASSERT_TRUE(step.has_value());
  EXPECT_EQ(*step, 2);
}

TEST_F(ArrayConflictTest, DisagreeingSitesGiveUnknownStep) {
  FunctionInfo info = extract_function(
      ctx, decls,
      sexpr::read_one(ctx,
                      "(defun f (v n) (cond ((evenp n) (f v (+ n 1)))"
                      " (t (f v (+ n 2)))))"));
  EXPECT_FALSE(info.induction_step(ctx, info.params[1]).has_value());
}

TEST_F(ArrayConflictTest, NonAffineSubscriptWorstCased) {
  ConflictReport r = analyze(
      "(defun f (v n)"
      "  (when (< n 9) (setf (aref v (* n n)) 1) (f v (+ n 1))))");
  bool found = false;
  for (const auto& c : r.conflicts)
    if (c.is_array_conflict()) found = true;
  EXPECT_TRUE(found);
  EXPECT_EQ(r.min_distance().value_or(-1), 1);
}

}  // namespace
}  // namespace curare::analysis

namespace curare {
namespace {

TEST(ArrayEndToEnd, StencilGetsWholeArrayLockAndStaysCorrect) {
  sexpr::Ctx ctx;
  Curare cur(ctx, 4);
  cur.load_program(
      "(defun st (v n)"
      "  (when (< n 29)"
      "    (setf (aref v (+ n 1)) (+ (aref v n) (aref v (+ n 1))))"
      "    (st v (+ n 1))))");
  TransformPlan plan = cur.transform("st");
  ASSERT_TRUE(plan.ok) << plan.failure;
  EXPECT_GT(plan.locks_inserted, 0);

  auto fresh = [&] {
    return cur.interp().eval_program("(let ((v (make-array 30 1))) v)");
  };
  // Sequential reference: prefix sums in the array.
  Value ref = fresh();
  {
    const Value args[] = {ref, Value::fixnum(0)};
    cur.run_sequential("st", args);
  }
  Value par = fresh();
  {
    const Value args[] = {par, Value::fixnum(0)};
    cur.run_parallel("st", args, 4);
  }
  for (int i = 0; i < 30; ++i) {
    const Value a[] = {ref, Value::fixnum(i)};
    const Value b[] = {par, Value::fixnum(i)};
    EXPECT_EQ(cur.interp().apply(cur.interp().global("aref"), a).bits(),
              cur.interp().apply(cur.interp().global("aref"), b).bits())
        << "element " << i;
  }
}

TEST(ArrayEndToEnd, IndependentFillNeedsNoLocks) {
  sexpr::Ctx ctx;
  Curare cur(ctx, 4);
  cur.load_program(
      "(defun fill-sq (v n)"
      "  (when (< n 50)"
      "    (setf (aref v n) (* n n))"
      "    (fill-sq v (+ n 1))))");
  TransformPlan plan = cur.transform("fill-sq");
  ASSERT_TRUE(plan.ok) << plan.failure;
  EXPECT_EQ(plan.locks_inserted, 0)
      << "per-invocation-disjoint subscripts are conflict-free";

  Value v = cur.interp().eval_program("(make-array 50 0)");
  const Value args[] = {v, Value::fixnum(0)};
  cur.run_parallel("fill-sq", args, 4);
  const Value probe[] = {v, Value::fixnum(7)};
  EXPECT_EQ(
      cur.interp().apply(cur.interp().global("aref"), probe).as_fixnum(),
      49);
}

}  // namespace
}  // namespace curare
