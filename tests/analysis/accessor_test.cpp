// FieldPath and path-regex tests, including the paper's canonicalization
// example (E14: doubly-linked succ/pred) and the τ machinery of §2.
#include <gtest/gtest.h>

#include "analysis/field_path.hpp"
#include "analysis/path_regex.hpp"
#include "decl/declarations.hpp"
#include "sexpr/ctx.hpp"

namespace curare::analysis {
namespace {

class AccessorTest : public ::testing::Test {
 protected:
  sexpr::Ctx ctx;
  decl::Declarations decls{ctx};

  Field f(const char* name) { return ctx.symbols.intern(name); }
  FieldPath path(std::initializer_list<const char*> names) {
    std::vector<Field> v;
    for (const char* n : names) v.push_back(f(n));
    return FieldPath(std::move(v));
  }
};

TEST_F(AccessorTest, ToStringUsesDotNotation) {
  EXPECT_EQ(path({"cdr", "car"}).to_string(), "cdr.car");
  EXPECT_EQ(path({}).to_string(), "ε");
}

TEST_F(AccessorTest, PrefixOperator) {
  // The paper's ≤: a ≤ b iff a is a prefix of b.
  EXPECT_TRUE(path({"cdr"}).prefix_of(path({"cdr", "car"})));
  EXPECT_TRUE(path({"cdr", "car"}).prefix_of(path({"cdr", "car"})));
  EXPECT_FALSE(path({"car"}).prefix_of(path({"cdr", "car"})));
  EXPECT_FALSE(path({"cdr", "car"}).prefix_of(path({"cdr"})));
  EXPECT_TRUE(path({}).prefix_of(path({"car"})));
}

TEST_F(AccessorTest, ThenExtends) {
  FieldPath p = path({"cdr"}).then(f("car"));
  EXPECT_EQ(p.to_string(), "cdr.car");
  EXPECT_EQ(path({"a"}).then(path({"b", "c"})).to_string(), "a.b.c");
}

TEST_F(AccessorTest, Repeated) {
  EXPECT_EQ(path({"cdr"}).repeated(3).to_string(), "cdr.cdr.cdr");
  EXPECT_EQ(path({"cdr"}).repeated(0).to_string(), "ε");
}

TEST_F(AccessorTest, CanonDoublyLinked) {
  // E14: succ.pred collapses under the declared inverse (paper §2.1):
  // C(..., (Ix succ Iy), (Iy pred Ix), ...) => C(..., ...)
  decls.declare_inverse(f("succ"), f("pred"));
  EXPECT_EQ(path({"succ", "pred"}).canonicalize(decls).to_string(), "ε");
  EXPECT_EQ(path({"pred", "succ"}).canonicalize(decls).to_string(), "ε");
  EXPECT_EQ(
      path({"succ", "succ", "pred", "val"}).canonicalize(decls).to_string(),
      "succ.val");
  // Nested cancellation: succ succ pred pred -> ε.
  EXPECT_EQ(
      path({"succ", "succ", "pred", "pred"}).canonicalize(decls).to_string(),
      "ε");
}

TEST_F(AccessorTest, CanonWithoutDeclarationIsIdentity) {
  EXPECT_EQ(path({"succ", "pred"}).canonicalize(decls).to_string(),
            "succ.pred");
}

// ---- regex -----------------------------------------------------------

TEST_F(AccessorTest, RegexToString) {
  RegexPtr cdr_plus = PathRegex::plus(PathRegex::literal(f("cdr")));
  EXPECT_EQ(cdr_plus->to_string(), "cdr.cdr*");
  EXPECT_EQ(PathRegex::any_star()->to_string(), "Σ*");
  RegexPtr alt = PathRegex::alt(
      {PathRegex::literal(f("car")), PathRegex::literal(f("cdr"))});
  EXPECT_EQ(alt->to_string(), "car|cdr");
}

TEST_F(AccessorTest, NfaMatchesWord) {
  Nfa nfa(PathRegex::word(path({"cdr", "car"})));
  EXPECT_TRUE(nfa.matches(path({"cdr", "car"})));
  EXPECT_FALSE(nfa.matches(path({"cdr"})));
  EXPECT_FALSE(nfa.matches(path({"cdr", "car", "car"})));
  EXPECT_FALSE(nfa.matches(path({"car", "cdr"})));
}

TEST_F(AccessorTest, NfaMatchesStar) {
  Nfa nfa(PathRegex::star(PathRegex::literal(f("cdr"))));
  EXPECT_TRUE(nfa.matches(path({})));
  EXPECT_TRUE(nfa.matches(path({"cdr"})));
  EXPECT_TRUE(nfa.matches(path({"cdr", "cdr", "cdr"})));
  EXPECT_FALSE(nfa.matches(path({"car"})));
}

TEST_F(AccessorTest, NfaMatchesPlus) {
  Nfa nfa(PathRegex::plus(PathRegex::literal(f("cdr"))));
  EXPECT_FALSE(nfa.matches(path({}))) << "plus requires one occurrence";
  EXPECT_TRUE(nfa.matches(path({"cdr"})));
  EXPECT_TRUE(nfa.matches(path({"cdr", "cdr"})));
}

TEST_F(AccessorTest, NfaMatchesAlternation) {
  Nfa nfa(PathRegex::concat(
      PathRegex::alt(
          {PathRegex::literal(f("car")), PathRegex::literal(f("cdr"))}),
      PathRegex::literal(f("val"))));
  EXPECT_TRUE(nfa.matches(path({"car", "val"})));
  EXPECT_TRUE(nfa.matches(path({"cdr", "val"})));
  EXPECT_FALSE(nfa.matches(path({"val"})));
}

TEST_F(AccessorTest, NfaAnyWildcard) {
  Nfa nfa(PathRegex::concat(PathRegex::any(),
                            PathRegex::literal(f("car"))));
  EXPECT_TRUE(nfa.matches(path({"cdr", "car"})));
  EXPECT_TRUE(nfa.matches(path({"zork", "car"})));
  EXPECT_FALSE(nfa.matches(path({"car"})));
}

TEST_F(AccessorTest, Power) {
  Nfa nfa(PathRegex::power(PathRegex::literal(f("cdr")), 3));
  EXPECT_TRUE(nfa.matches(path({"cdr", "cdr", "cdr"})));
  EXPECT_FALSE(nfa.matches(path({"cdr", "cdr"})));
  Nfa zero(PathRegex::power(PathRegex::literal(f("cdr")), 0));
  EXPECT_TRUE(zero.matches(path({})));
}

TEST_F(AccessorTest, WordIsPrefixOfLanguage) {
  // The paper's conflict test direction: A1 ≤ some word of L(τ·A2).
  // τ·A2 = cdr⁺ · car; is "cdr.car" a prefix of some word? It IS a word.
  RegexPtr r = PathRegex::concat(
      PathRegex::plus(PathRegex::literal(f("cdr"))),
      PathRegex::literal(f("car")));
  Nfa nfa(r);
  EXPECT_TRUE(nfa.word_is_prefix_of_language(path({"cdr", "car"})));
  EXPECT_TRUE(nfa.word_is_prefix_of_language(path({"cdr"})));
  EXPECT_TRUE(nfa.word_is_prefix_of_language(path({"cdr", "cdr"})));
  EXPECT_FALSE(nfa.word_is_prefix_of_language(path({"car"})));
  EXPECT_FALSE(nfa.word_is_prefix_of_language(path({"cdr", "car", "x"})));
}

TEST_F(AccessorTest, LanguageHasPrefixOfWord) {
  RegexPtr r = PathRegex::plus(PathRegex::literal(f("cdr")));
  Nfa nfa(r);
  EXPECT_TRUE(nfa.language_has_prefix_of_word(path({"cdr", "car"})))
      << "'cdr' ∈ L is a prefix of cdr.car";
  EXPECT_FALSE(nfa.language_has_prefix_of_word(path({"car", "cdr"})));
  EXPECT_TRUE(nfa.language_has_prefix_of_word(path({"cdr"})))
      << "equality counts as prefix";
}

TEST_F(AccessorTest, EpsilonInLanguageIsPrefixOfEverything) {
  Nfa nfa(PathRegex::star(PathRegex::literal(f("cdr"))));
  EXPECT_TRUE(nfa.language_has_prefix_of_word(path({"car"})))
      << "ε ∈ cdr* and ε ≤ any word";
}

TEST_F(AccessorTest, PaperSection22NoConflictExample) {
  // §2.2: "A2 does not conflict with A1 since cdr⁺.car can never be a
  // prefix of cdr" — the write cdr.car against read cdr at any distance:
  // is some word of cdr^d·cdr a prefix-or-extension of cdr.car? We check
  // the exact direction the paper states: cdr.car ≤ word of cdr⁺·cdr?
  RegexPtr r = PathRegex::concat(
      PathRegex::plus(PathRegex::literal(f("cdr"))),
      PathRegex::literal(f("cdr")));
  Nfa nfa(r);
  EXPECT_FALSE(nfa.word_is_prefix_of_language(path({"cdr", "car"})));
  EXPECT_FALSE(nfa.language_has_prefix_of_word(path({"cdr", "car"})))
      << "all words of cdr⁺·cdr diverge from cdr.car at position 2";
}

// Parameterized sweep: τ = cdr, write at cdr^k·car conflicts with read
// `car` exactly at distance k (property of the distance machinery).
class DistanceSweep : public ::testing::TestWithParam<int> {
 protected:
  sexpr::Ctx ctx;
};

TEST_P(DistanceSweep, WriteAtDepthKConflictsAtDistanceK) {
  const int k = GetParam();
  Field fcdr = ctx.symbols.intern("cdr");
  Field fcar = ctx.symbols.intern("car");
  std::vector<Field> wfields(static_cast<std::size_t>(k), fcdr);
  wfields.push_back(fcar);
  FieldPath write_path{std::move(wfields)};
  RegexPtr step = PathRegex::literal(fcdr);

  for (int d = 1; d <= k + 2; ++d) {
    RegexPtr rd = PathRegex::concat(
        PathRegex::power(step, static_cast<std::size_t>(d)),
        PathRegex::word(FieldPath({fcar})));
    Nfa nfa(rd);
    const bool conflict = nfa.word_is_prefix_of_language(write_path);
    EXPECT_EQ(conflict, d == k)
        << "write cdr^" << k << ".car vs read car at distance " << d;
  }
}

INSTANTIATE_TEST_SUITE_P(Depths, DistanceSweep,
                         ::testing::Values(1, 2, 3, 5, 8));

}  // namespace
}  // namespace curare::analysis
