// Canonicalization applied during extraction (paper §2.1): accessor
// paths that traverse declared inverse pairs collapse before conflict
// matching, so the doubly-linked idiom analyzes like its canonical form.
#include <gtest/gtest.h>

#include "analysis/conflict.hpp"
#include "analysis/extract.hpp"
#include "sexpr/reader.hpp"

namespace curare::analysis {
namespace {

class CanonExtractTest : public ::testing::Test {
 protected:
  sexpr::Ctx ctx;
  decl::Declarations decls{ctx};

  void SetUp() override {
    decls.load(sexpr::read_one(
        ctx,
        "(curare-declare (structure dnode (pointers succ pred)"
        " (data item)) (inverse succ pred))"));
  }

  FunctionInfo extract(std::string_view src) {
    return extract_function(ctx, decls, sexpr::read_one(ctx, src));
  }
};

TEST_F(CanonExtractTest, BacktrackingPathCollapses) {
  // (item (pred (succ n))) is just (item n) after canonicalization.
  FunctionInfo info = extract(
      "(defun f (n) (when n (setf (item (pred (succ n))) 0)"
      " (f (succ n))))");
  bool found = false;
  for (const auto& r : info.refs) {
    if (r.is_write) {
      found = true;
      EXPECT_EQ(r.path.to_string(), "item")
          << "succ.pred must cancel in the recorded path";
    }
  }
  EXPECT_TRUE(found);
}

TEST_F(CanonExtractTest, CanonicalizedSelfWriteHasNoConflict) {
  // After collapsing, each invocation writes only its own node's item:
  // τ = succ, write at `item`, read at `item` — item vs succ^d·item
  // never align, exactly like (setf (car l)…) under τ=cdr.
  FunctionInfo info = extract(
      "(defun f (n) (when n (setf (item (pred (succ n))) 0)"
      " (f (succ n))))");
  auto report = detect_conflicts(ctx, decls, info);
  for (const auto& c : report.conflicts)
    EXPECT_TRUE(c.is_variable_conflict()) << c.describe();
}

TEST_F(CanonExtractTest, ForwardWriteStillConflicts) {
  // Writing the successor's item conflicts with the next invocation's
  // read — canonicalization must not erase REAL forward motion.
  FunctionInfo info = extract(
      "(defun f (n)"
      "  (when (succ n)"
      "    (setf (item (succ n)) (item n))"
      "    (f (succ n))))");
  auto report = detect_conflicts(ctx, decls, info);
  bool hit = false;
  for (const auto& c : report.conflicts) {
    if (!c.is_variable_conflict()) {
      hit = true;
      EXPECT_EQ(c.distance, 1);
    }
  }
  EXPECT_TRUE(hit);
}

TEST_F(CanonExtractTest, TransferFunctionCanonicalizesToo) {
  // Stepping (pred (succ (succ n))) is one canonical succ step.
  FunctionInfo info = extract(
      "(defun f (n) (when n (f (pred (succ (succ n))))))");
  ASSERT_EQ(info.rec_calls.size(), 1u);
  ASSERT_TRUE(info.rec_calls[0].arg_paths[0].has_value());
  EXPECT_EQ(info.rec_calls[0].arg_paths[0]->to_string(), "succ");
}

TEST_F(CanonExtractTest, UndeclaredInversePairDoesNotCollapse) {
  decl::Declarations bare(ctx);
  bare.load(sexpr::read_one(
      ctx, "(curare-declare (structure dnode (pointers succ pred)"
           " (data item)))"));  // no (inverse …)
  FunctionInfo info = extract_function(
      ctx, bare,
      sexpr::read_one(ctx,
                      "(defun f (n) (when n (setf (item (pred (succ n)))"
                      " 0) (f (succ n))))"));
  bool found = false;
  for (const auto& r : info.refs) {
    if (r.is_write) {
      found = true;
      EXPECT_EQ(r.path.to_string(), "succ.pred.item");
    }
  }
  EXPECT_TRUE(found);
}

}  // namespace
}  // namespace curare::analysis
