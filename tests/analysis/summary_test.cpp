// Interprocedural effect summary tests: the fixpoint classification and
// its payoff in the extractor/driver (helpers no longer worst-cased).
#include "analysis/summary.hpp"

#include <gtest/gtest.h>

#include "analysis/conflict.hpp"
#include "analysis/extract.hpp"
#include "curare/curare.hpp"
#include "sexpr/reader.hpp"

namespace curare::analysis {
namespace {

class SummaryTest : public ::testing::Test {
 protected:
  sexpr::Ctx ctx;
  decl::Declarations decls{ctx};

  SummaryMap compute(std::string_view src) {
    std::vector<Value> defuns;
    for (Value f : sexpr::read_all(ctx, src)) defuns.push_back(f);
    return compute_summaries(ctx, decls, defuns);
  }

  FnEffect effect_of_fn(const SummaryMap& m, const char* name) {
    const FnSummary* s = m.lookup(ctx.symbols.intern(name));
    EXPECT_NE(s, nullptr) << name;
    return s ? s->effect : FnEffect::Opaque;
  }
};

TEST_F(SummaryTest, PureArithmetic) {
  auto m = compute("(defun sq (x) (* x x))");
  EXPECT_EQ(effect_of_fn(m, "sq"), FnEffect::Pure);
}

TEST_F(SummaryTest, AccessorsAreReadOnly) {
  // A summary cannot carry the precise accessor path, so a function
  // that dereferences its argument is abstracted as "reads somewhere
  // below it" — DeepRead, the sound over-approximation.
  auto m = compute("(defun get-val (x) (car x))");
  EXPECT_EQ(effect_of_fn(m, "get-val"), FnEffect::DeepRead);
}

TEST_F(SummaryTest, PrintMakesDeepRead) {
  auto m = compute("(defun show (x) (print x))");
  EXPECT_EQ(effect_of_fn(m, "show"), FnEffect::DeepRead);
}

TEST_F(SummaryTest, SetfThroughPlaceIsDeepWrite) {
  auto m = compute("(defun clobber (x) (setf (car x) 0))");
  EXPECT_EQ(effect_of_fn(m, "clobber"), FnEffect::DeepWrite);
}

TEST_F(SummaryTest, EvalIsOpaque) {
  auto m = compute("(defun danger (x) (eval x))");
  EXPECT_EQ(effect_of_fn(m, "danger"), FnEffect::Opaque);
}

TEST_F(SummaryTest, EffectsPropagateThroughCalls) {
  auto m = compute(
      "(defun leaf (x) (rplaca x 1))"
      "(defun mid (x) (leaf x))"
      "(defun top (x) (mid x))");
  EXPECT_EQ(effect_of_fn(m, "leaf"), FnEffect::DeepWrite);
  EXPECT_EQ(effect_of_fn(m, "mid"), FnEffect::DeepWrite);
  EXPECT_EQ(effect_of_fn(m, "top"), FnEffect::DeepWrite);
}

TEST_F(SummaryTest, MutualRecursionConverges) {
  auto m = compute(
      "(defun even? (n) (if (= n 0) t (odd? (- n 1))))"
      "(defun odd? (n) (if (= n 0) nil (even? (- n 1))))");
  EXPECT_EQ(effect_of_fn(m, "even?"), FnEffect::Pure);
  EXPECT_EQ(effect_of_fn(m, "odd?"), FnEffect::Pure);
}

TEST_F(SummaryTest, MutualRecursionWithWriteInfectsBoth) {
  auto m = compute(
      "(defun a1 (x) (b1 x))"
      "(defun b1 (x) (when x (setf (car x) 0) (a1 (cdr x))))");
  EXPECT_EQ(effect_of_fn(m, "a1"), FnEffect::DeepWrite);
  EXPECT_EQ(effect_of_fn(m, "b1"), FnEffect::DeepWrite);
}

TEST_F(SummaryTest, GlobalTrafficCollected) {
  auto m = compute(
      "(defun bump () (setq counter (+ counter 1)))"
      "(defun caller (x) (bump) x)");
  const FnSummary* s = m.lookup(ctx.symbols.intern("caller"));
  ASSERT_NE(s, nullptr);
  Symbol* counter = ctx.symbols.intern("counter");
  EXPECT_TRUE(s->global_writes.contains(counter));
  EXPECT_TRUE(s->global_reads.contains(counter));
}

TEST_F(SummaryTest, LocalsAreNotGlobals) {
  auto m = compute(
      "(defun f (x) (let ((y 1)) (setq y 2) (+ x y)))");
  const FnSummary* s = m.lookup(ctx.symbols.intern("f"));
  ASSERT_NE(s, nullptr);
  EXPECT_TRUE(s->global_writes.empty());
  EXPECT_TRUE(s->global_reads.empty());
  EXPECT_EQ(s->effect, FnEffect::Pure);
}

TEST_F(SummaryTest, ExtractorUsesSummaries) {
  auto program =
      "(defun get-val (x) (car x))"
      "(defun walk (l) (when l (print (get-val l)) (walk (cdr l))))";
  auto m = compute(program);
  std::vector<Value> forms = sexpr::read_all(ctx, program);
  FunctionInfo with =
      extract_function(ctx, decls, forms[1], &m);
  FunctionInfo without = extract_function(ctx, decls, forms[1], nullptr);

  auto has_write = [](const FunctionInfo& i) {
    for (const auto& r : i.refs)
      if (r.is_write) return true;
    return false;
  };
  EXPECT_FALSE(has_write(with))
      << "summarized get-val is pure: no writes through l";
  EXPECT_TRUE(has_write(without))
      << "without summaries, the helper call is worst-cased";
}

TEST_F(SummaryTest, ToStringMentionsEverything) {
  auto m = compute("(defun f (x) (setq g (+ g 1)) (print x))");
  const FnSummary* s = m.lookup(ctx.symbols.intern("f"));
  ASSERT_NE(s, nullptr);
  std::string text = s->to_string();
  EXPECT_NE(text.find("read"), std::string::npos);
  EXPECT_NE(text.find("g"), std::string::npos);
}

}  // namespace
}  // namespace curare::analysis

namespace curare {
namespace {

TEST(SummaryEndToEnd, HelperCallsNoLongerBlockTransformation) {
  sexpr::Ctx ctx;
  Curare cur(ctx, 4);
  cur.load_program(
      "(setq seen 0)"
      "(defun observe (x) (%atomic-incf-var 'seen 1) x)"
      "(defun visit (l) (when l (observe (car l)) (visit (cdr l))))");
  TransformPlan plan = cur.transform("visit");
  ASSERT_TRUE(plan.ok) << plan.failure
                       << " — the pure-ish helper must not block CRI";
  const Value args[] = {sexpr::read_one(ctx, "(a b c d e)")};
  cur.run_parallel("visit", args, 3);
  EXPECT_EQ(cur.interp().eval_program("seen").as_fixnum(), 5);
}

TEST(SummaryEndToEnd, HelperGlobalWritesStillConflict) {
  sexpr::Ctx ctx;
  Curare cur(ctx, 4);
  cur.load_program(
      "(setq log nil)"
      "(defun note (x) (setq log (cons x log)))"
      "(defun visit (l) (when l (note (car l)) (visit (cdr l))))");
  AnalysisReport report = cur.analyze("visit");
  bool log_conflict = false;
  for (const auto& c : report.conflicts.conflicts) {
    if (c.is_variable_conflict() && c.var->name == "log")
      log_conflict = true;
  }
  EXPECT_TRUE(log_conflict)
      << "the callee's global write must surface in the caller";
}

TEST(SummaryEndToEnd, WriterHelperStillGetsConflicts) {
  sexpr::Ctx ctx;
  Curare cur(ctx, 4);
  cur.load_program(
      "(defun smash (x) (rplaca x 0))"
      "(defun visit (l) (when l (smash (cdr l)) (visit (cdr l))))");
  AnalysisReport report = cur.analyze("visit");
  EXPECT_FALSE(report.conflicts.conflicts.empty())
      << "deep-write helper keeps its conflicts";
}

}  // namespace
}  // namespace curare
