// Conflict-detection tests reproducing the paper's worked examples:
// E1 (Fig 2), E2 (Fig 3), E3 (Fig 4), E4 (Fig 5), plus the reorderable
// and aliasing cases of §3.2.3 and §1.3.
#include "analysis/conflict.hpp"

#include <gtest/gtest.h>

#include "analysis/extract.hpp"
#include "sexpr/reader.hpp"

namespace curare::analysis {
namespace {

class ConflictTest : public ::testing::Test {
 protected:
  sexpr::Ctx ctx;
  decl::Declarations decls{ctx};

  ConflictReport analyze(std::string_view src,
                         const ConflictOptions& opts = {}) {
    FunctionInfo info =
        extract_function(ctx, decls, sexpr::read_one(ctx, src));
    return detect_conflicts(ctx, decls, info, opts);
  }
};

TEST_F(ConflictTest, NoConflictFig3) {
  // E2: Figure 3 — pure traversal with print; no writes, no conflicts.
  ConflictReport r =
      analyze("(defun f (l) (when l (print (car l)) (f (cdr l))))");
  EXPECT_TRUE(r.clean()) << "Fig 3 must be conflict-free";
  EXPECT_FALSE(r.min_distance().has_value());
}

TEST_F(ConflictTest, ConflictFig4Distance1) {
  // E3: Figure 4 — A1 = cdr.car (write), A2 = car, τ = cdr. The paper:
  // "A1 ⊙ A2 under τ because τ∘A2 = cdr.car = A1", distance 1.
  ConflictReport r = analyze(
      "(defun f (l) (when l (setf (cadr l) (car l)) (f (cdr l))))");
  ASSERT_FALSE(r.conflicts.empty());
  bool found = false;
  for (const Conflict& c : r.conflicts) {
    if (!c.is_variable_conflict() && c.earlier.is_write &&
        c.earlier.path.to_string() == "cdr.car" &&
        c.later.path.to_string() == "car") {
      found = true;
      EXPECT_EQ(c.distance, 1);
      EXPECT_EQ(c.kind, DepKind::Flow);
    }
  }
  EXPECT_TRUE(found) << "the paper's A1 ⊙₁ A2 conflict must be reported";
  EXPECT_EQ(r.min_distance().value_or(-99), 1);
}

TEST_F(ConflictTest, Fig5OnlyA2A3Conflict) {
  // E4: Figure 5 — "A2 does not conflict with A1 since cdr⁺.car can
  // never be a prefix of cdr. However A2 ⊙ A3."
  ConflictReport r = analyze(
      "(defun f (l)"
      "  (cond ((null l) nil)"
      "        ((null (cdr l)) (f (cdr l)))"
      "        (t (setf (cadr l) (+ (car l) (cadr l)))"
      "           (f (cdr l)))))");
  bool a2_vs_a3 = false;
  for (const Conflict& c : r.conflicts) {
    if (c.is_variable_conflict()) continue;
    const std::string e = c.earlier.path.to_string();
    const std::string l = c.later.path.to_string();
    EXPECT_NE(l, "cdr") << "write cdr.car must not conflict with read cdr: "
                        << c.describe();
    if (c.earlier.is_write && e == "cdr.car" && l == "car") {
      a2_vs_a3 = true;
      EXPECT_EQ(c.distance, 1);
    }
  }
  EXPECT_TRUE(a2_vs_a3);
}

TEST_F(ConflictTest, ConflictFig2StaticPair) {
  // E1: Figure 2's statements both write/read through x.cdr.car. Model
  // them as one function that performs both accesses and recurs on cdr:
  // the write (setf (cadr x) ...) vs the deep use of (cadr x)'s car.
  ConflictReport r = analyze(
      "(defun g (x)"
      "  (when x"
      "    (setf (cadr x) (car x))"
      "    (print (car (cadr x)))"
      "    (g (cdr x))))");
  // write cdr.car vs read cdr.car.car in the NEXT invocation:
  // cdr.car ≤ cdr·(cdr.car.car)? positions: cdr=cdr, car≠cdr → no.
  // But within-direction: read in later invocation rooted deeper —
  // the conflicting pair here is write cdr.car (inv i) vs read
  // cdr.car.car (inv i): same invocation — not an inter-invocation
  // conflict. The write DOES conflict with the later invocation's read
  // of car (prefix relation), like Fig 4.
  bool found = false;
  for (const Conflict& c : r.conflicts) {
    if (!c.is_variable_conflict() && c.earlier.is_write) found = true;
  }
  EXPECT_TRUE(found);
}

TEST_F(ConflictTest, WriteTwoAheadHasDistance2) {
  // (setf (caddr l) ...) writes cdr.cdr.car; read (car l); τ = cdr →
  // conflict at distance 2 exactly.
  ConflictReport r = analyze(
      "(defun f (l) (when l (setf (caddr l) (car l)) (f (cdr l))))");
  bool found = false;
  for (const Conflict& c : r.conflicts) {
    if (!c.is_variable_conflict() && c.earlier.is_write &&
        c.earlier.path.to_string() == "cdr.cdr.car" &&
        c.later.path.to_string() == "car") {
      found = true;
      EXPECT_EQ(c.distance, 2);
    }
  }
  EXPECT_TRUE(found);
  EXPECT_EQ(r.min_distance().value_or(-99), 2);
}

TEST_F(ConflictTest, OutputDependencyBetweenInvocationWrites) {
  // (setf (cadr l) 0) in consecutive invocations writes different cells
  // (cdr.car vs cdr.cdr.car) — no output dependency. But writing (car l)
  // and (cadr l) conflicts: car written by inv i+1 is cdr.car of inv i.
  ConflictReport r = analyze(
      "(defun f (l)"
      "  (when l (setf (car l) 1) (setf (cadr l) 2) (f (cdr l))))");
  bool output_found = false;
  for (const Conflict& c : r.conflicts) {
    if (!c.is_variable_conflict() && c.kind == DepKind::Output)
      output_found = true;
  }
  EXPECT_TRUE(output_found);
}

TEST_F(ConflictTest, SelfWriteDoesNotConflictAcrossInvocations) {
  // (setf (car l) ...) with τ = cdr: inv i writes car, inv i+d writes
  // cdr^d.car — never the same cell.
  ConflictReport r = analyze(
      "(defun f (l) (when l (setf (car l) 0) (f (cdr l))))");
  for (const Conflict& c : r.conflicts) {
    EXPECT_TRUE(c.is_variable_conflict()) << c.describe();
  }
}

TEST_F(ConflictTest, DeepReadConflictsWithWriteBelow) {
  // (print l) traverses the whole list; (setf (cadr l) ...) in a later
  // invocation writes inside the traversed region.
  ConflictReport r = analyze(
      "(defun f (l) (when l (print l) (setf (cadr l) 0) (f (cdr l))))");
  bool deep_hit = false;
  for (const Conflict& c : r.conflicts) {
    if (!c.is_variable_conflict() &&
        (c.earlier.deep || c.later.deep)) {
      deep_hit = true;
    }
  }
  EXPECT_TRUE(deep_hit);
}

TEST_F(ConflictTest, UnknownTransferConflictsAtDistance1) {
  ConflictReport r = analyze(
      "(defun f (l) (when l (setf (car l) 0) (f (reverse l))))");
  ASSERT_FALSE(r.conflicts.empty());
  EXPECT_EQ(r.min_distance().value_or(-99), 1)
      << "τ = Σ* must yield worst-case distance 1";
}

TEST_F(ConflictTest, VariableConflictFig8Shape) {
  // E6: (setq a (+ a 1)) — free-variable update. Conflict exists, but
  // is flagged reorderable because + is commutative+associative+atomic.
  ConflictReport r = analyze(
      "(defun f (l) (when l (setq a (+ a 1)) (f (cdr l))))");
  bool var_conflict = false;
  for (const Conflict& c : r.conflicts) {
    if (c.is_variable_conflict() && c.var->name == "a") {
      var_conflict = true;
      if (c.var_earlier.is_write && c.var_later.is_write) {
        EXPECT_NE(c.reorderable_op, nullptr);
      }
    }
  }
  EXPECT_TRUE(var_conflict);
}

TEST_F(ConflictTest, DropReorderableRemovesFig8WriteWriteConflict) {
  ConflictOptions opts;
  opts.drop_reorderable = true;
  ConflictReport r = analyze(
      "(defun f (l) (when l (setq a (+ a 1)) (f (cdr l))))", opts);
  for (const Conflict& c : r.conflicts) {
    EXPECT_FALSE(c.is_variable_conflict() && c.var_earlier.is_write &&
                 c.var_later.is_write)
        << "write/write on a reorderable update must be dropped";
  }
}

TEST_F(ConflictTest, NonCommutativeUpdateIsNotReorderable) {
  ConflictOptions opts;
  opts.drop_reorderable = true;
  ConflictReport r = analyze(
      "(defun f (l) (when l (setq a (- a 1)) (f (cdr l))))", opts);
  bool ww = false;
  for (const Conflict& c : r.conflicts) {
    if (c.is_variable_conflict() && c.var_earlier.is_write &&
        c.var_later.is_write) {
      ww = true;
    }
  }
  EXPECT_TRUE(ww) << "- is not declared commutative; conflict must stay";
}

TEST_F(ConflictTest, CrossParamAliasingAssumedWithoutDeclaration) {
  ConflictReport r = analyze(
      "(defun f (a b) (when a (setf (car a) (car b)) (f (cdr a) (cdr b))))");
  EXPECT_TRUE(r.cross_param_aliasing);
  EXPECT_EQ(r.min_distance().value_or(-99), 1);
}

TEST_F(ConflictTest, NoaliasDeclarationRemovesCrossParamWorstCase) {
  decls.load(sexpr::read_one(ctx, "(curare-declare (noalias f))"));
  ConflictReport r = analyze(
      "(defun f (a b) (when a (setf (car a) (car b)) (f (cdr a) (cdr b))))");
  EXPECT_FALSE(r.cross_param_aliasing);
}

TEST_F(ConflictTest, NonRecursiveFunctionHasNoConflicts) {
  ConflictReport r = analyze("(defun f (l) (setf (car l) 1))");
  EXPECT_TRUE(r.clean());
}

TEST_F(ConflictTest, RemqDStillConflictsFlowInsensitively) {
  // Paper §5: fed back into the analyzer, remq-d "would need
  // synchronization code" because flow-insensitive analysis can't prove
  // the stores hit unique cells. Our analyzer must agree.
  ConflictReport r = analyze(
      "(defun remq-d (dest obj lst)"
      "  (cond ((null lst) (setf (cdr dest) nil))"
      "        ((eq obj (car lst)) (remq-d dest obj (cdr lst)))"
      "        (t (let ((cell (cons (car lst) nil)))"
      "             (remq-d cell obj (cdr lst))"
      "             (setf (cdr dest) cell)))))");
  EXPECT_FALSE(r.conflicts.empty());
}

// Distance sweep as a property: writing k cells ahead caps concurrency
// at k (paper §3.2.1: max concurrency ≤ min conflict distance).
class ConflictDistanceSweep : public ::testing::TestWithParam<int> {
 protected:
  sexpr::Ctx ctx;
};

TEST_P(ConflictDistanceSweep, MinDistanceEqualsWriteDepth) {
  const int k = GetParam();
  decl::Declarations decls(ctx);
  // Build (setf (c a d^k r) l) textually: cdr^k then car.
  std::string place = "(nth " + std::to_string(k) + " l)";
  std::string src = "(defun f (l) (when l (setf " + place +
                    " (car l)) (f (cdr l))))";
  FunctionInfo info =
      extract_function(ctx, decls, sexpr::read_one(ctx, src));
  ConflictOptions opts;
  opts.max_distance = 32;
  ConflictReport r = detect_conflicts(ctx, decls, info, opts);
  ASSERT_TRUE(r.min_distance().has_value());
  EXPECT_EQ(*r.min_distance(), k);
}

INSTANTIATE_TEST_SUITE_P(Depths, ConflictDistanceSweep,
                         ::testing::Values(1, 2, 3, 4, 8, 16));

}  // namespace
}  // namespace curare::analysis
