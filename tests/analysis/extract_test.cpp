// Extractor tests: accessor/transfer extraction from the paper's figures.
#include "analysis/extract.hpp"

#include <gtest/gtest.h>

#include "sexpr/reader.hpp"

namespace curare::analysis {
namespace {

class ExtractTest : public ::testing::Test {
 protected:
  sexpr::Ctx ctx;
  decl::Declarations decls{ctx};

  FunctionInfo extract(std::string_view src) {
    return extract_function(ctx, decls, sexpr::read_one(ctx, src));
  }

  static const StructRef* find_ref(const FunctionInfo& info,
                                   const std::string& path,
                                   bool is_write) {
    for (const StructRef& r : info.refs) {
      if (r.path.to_string() == path && r.is_write == is_write) return &r;
    }
    return nullptr;
  }
};

TEST_F(ExtractTest, RejectsNonDefun) {
  EXPECT_THROW(extract("(+ 1 2)"), sexpr::LispError);
}

TEST_F(ExtractTest, ParamsAndName) {
  FunctionInfo info = extract("(defun f (a b) a)");
  EXPECT_EQ(info.name->name, "f");
  ASSERT_EQ(info.params.size(), 2u);
  EXPECT_EQ(info.params[0]->name, "a");
  EXPECT_EQ(info.params[1]->name, "b");
  EXPECT_FALSE(info.is_recursive());
}

TEST_F(ExtractTest, Figure3TransferIsCdrPlus) {
  // (defun f (l) (when l (print (car l)) (f (cdr l))))
  FunctionInfo info =
      extract("(defun f (l) (when l (print (car l)) (f (cdr l))))");
  ASSERT_TRUE(info.is_recursive());
  ASSERT_EQ(info.rec_calls.size(), 1u);
  const RecCall& call = info.rec_calls[0];
  ASSERT_TRUE(call.arg_paths[0].has_value());
  EXPECT_EQ(call.arg_paths[0]->to_string(), "cdr");
  EXPECT_FALSE(call.result_used) << "call for effect is a free call";

  RegexPtr tau = info.transfer_closure(info.params[0]);
  ASSERT_NE(tau, nullptr);
  EXPECT_EQ(tau->to_string(), "cdr.cdr*");  // cdr⁺, as the paper writes
}

TEST_F(ExtractTest, Figure3RefsArePrintDeepReadAndCdrRead) {
  FunctionInfo info =
      extract("(defun f (l) (when l (print (car l)) (f (cdr l))))");
  // (print (car l)) → deep read of l.car; (cdr l) in the call → read.
  const StructRef* car_read = find_ref(info, "car", false);
  ASSERT_NE(car_read, nullptr);
  EXPECT_TRUE(car_read->deep) << "print traverses its argument";
  EXPECT_NE(find_ref(info, "cdr", false), nullptr);
  for (const StructRef& r : info.refs) EXPECT_FALSE(r.is_write);
}

TEST_F(ExtractTest, Figure4WriteAndRead) {
  // (defun f (l) (when l (setf (cadr l) (car l)) (f (cdr l))))
  FunctionInfo info =
      extract("(defun f (l) (when l (setf (cadr l) (car l)) (f (cdr l))))");
  const StructRef* w = find_ref(info, "cdr.car", true);
  ASSERT_NE(w, nullptr) << "A1 = cdr.car (modify)";
  EXPECT_FALSE(w->deep);
  EXPECT_NE(find_ref(info, "car", false), nullptr) << "A2 = car";
}

TEST_F(ExtractTest, Figure5AccessorInventory) {
  // §2.2 lists A1=cdr, A2=cdr.car (modify), A3=car, τ=cdr.
  FunctionInfo info = extract(
      "(defun f (l)"
      "  (cond ((null l) nil)"
      "        ((null (cdr l)) (f (cdr l)))"
      "        (t (setf (cadr l) (+ (car l) (cadr l)))"
      "           (f (cdr l)))))");
  EXPECT_NE(find_ref(info, "cdr", false), nullptr) << "A1";
  const StructRef* a2 = find_ref(info, "cdr.car", true);
  ASSERT_NE(a2, nullptr) << "A2 (modify)";
  EXPECT_NE(find_ref(info, "car", false), nullptr) << "A3";
  ASSERT_EQ(info.rec_calls.size(), 2u);
  EXPECT_EQ(info.step_transfer(info.params[0])->to_string(), "cdr|cdr");
}

TEST_F(ExtractTest, Figure5UpdateOperatorDetected) {
  FunctionInfo info = extract(
      "(defun f (l)"
      "  (when l (setf (cadr l) (+ (car l) (cadr l))) (f (cdr l))))");
  const StructRef* w = find_ref(info, "cdr.car", true);
  ASSERT_NE(w, nullptr);
  ASSERT_NE(w->update_op, nullptr);
  EXPECT_EQ(w->update_op->name, "+");
}

TEST_F(ExtractTest, RemqResultUsedInConsPosition) {
  FunctionInfo info = extract(
      "(defun remq (obj lst)"
      "  (cond ((null lst) nil)"
      "        ((eq obj (car lst)) (remq obj (cdr lst)))"
      "        (t (cons (car lst) (remq obj (cdr lst))))))");
  ASSERT_EQ(info.rec_calls.size(), 2u);
  EXPECT_FALSE(info.rec_calls[0].result_used)
      << "tail call in clause 2 does not embed its result";
  EXPECT_TRUE(info.rec_calls[1].result_used)
      << "(cons x (remq ...)) uses the result";
  // obj never changes: τ_obj = ε per call site.
  ASSERT_TRUE(info.rec_calls[0].arg_paths[0].has_value());
  EXPECT_TRUE(info.rec_calls[0].arg_paths[0]->is_empty());
  // lst steps by cdr at both sites.
  EXPECT_EQ(info.rec_calls[0].arg_paths[1]->to_string(), "cdr");
  EXPECT_EQ(info.rec_calls[1].arg_paths[1]->to_string(), "cdr");
}

TEST_F(ExtractTest, RemqDFreshCellPromotion) {
  // remq-d (Fig. 13): the fresh `cell` is stored at (cdr dest) and then
  // passed as the next dest — flow-insensitive analysis must see
  // τ_dest = cdr⁺ and the (setf (cdr dest) ...) writes, so remq-d is NOT
  // provably conflict-free from scratch (paper §5 says exactly this).
  FunctionInfo info = extract(
      "(defun remq-d (dest obj lst)"
      "  (cond ((null lst) (setf (cdr dest) nil))"
      "        ((eq obj (car lst)) (remq-d dest obj (cdr lst)))"
      "        (t (let ((cell (cons (car lst) nil)))"
      "             (remq-d cell obj (cdr lst))"
      "             (setf (cdr dest) cell)))))");
  ASSERT_EQ(info.rec_calls.size(), 2u);
  // Site 0 passes dest through unchanged; site 1 passes the promoted
  // fresh cell = dest.cdr.
  EXPECT_EQ(info.rec_calls[0].arg_paths[0]->to_string(), "ε");
  ASSERT_TRUE(info.rec_calls[1].arg_paths[0].has_value())
      << "fresh-cell promotion must make `cell` an accessor of dest";
  EXPECT_EQ(info.rec_calls[1].arg_paths[0]->to_string(), "cdr");
  EXPECT_NE(find_ref(info, "cdr", true), nullptr)
      << "(setf (cdr dest) ...) is a write at dest.cdr";
}

TEST_F(ExtractTest, UnanalyzableArgGivesNulloptPath) {
  FunctionInfo info = extract(
      "(defun f (l) (when l (f (reverse l))))");
  ASSERT_EQ(info.rec_calls.size(), 1u);
  EXPECT_FALSE(info.rec_calls[0].arg_paths[0].has_value());
  EXPECT_EQ(info.step_transfer(info.params[0])->to_string(), "Σ*");
}

TEST_F(ExtractTest, SetqOfParameterMakesItDirty) {
  FunctionInfo info = extract(
      "(defun f (l) (setq l (cdr l)) (when l (f (cdr l))))");
  EXPECT_TRUE(info.is_dirty(info.params[0]));
  EXPECT_EQ(info.step_transfer(info.params[0])->to_string(), "Σ*");
  EXPECT_FALSE(info.warnings.empty());
}

TEST_F(ExtractTest, EvalDefeatsAnalysis) {
  FunctionInfo info =
      extract("(defun f (l) (eval (car l)) (when l (f (cdr l))))");
  EXPECT_FALSE(info.analyzable);
}

TEST_F(ExtractTest, SetDefeatsAnalysis) {
  FunctionInfo info =
      extract("(defun f (l) (set (car l) 1) (when l (f (cdr l))))");
  EXPECT_FALSE(info.analyzable);
}

TEST_F(ExtractTest, LetAliasExtendsPath) {
  FunctionInfo info = extract(
      "(defun f (l) (let ((x (cdr l))) (setf (car x) 1)) (f (cdr l)))");
  EXPECT_NE(find_ref(info, "cdr.car", true), nullptr)
      << "write through the alias x = (cdr l) is a write at l.cdr.car";
}

TEST_F(ExtractTest, FreshConsWriteIsSilent) {
  FunctionInfo info = extract(
      "(defun f (l)"
      "  (let ((c (cons 1 2))) (setf (car c) 3))"
      "  (when l (f (cdr l))))");
  EXPECT_TRUE(info.analyzable);
  for (const StructRef& r : info.refs)
    EXPECT_FALSE(r.is_write) << "write to a fresh cons is invisible";
}

TEST_F(ExtractTest, RplacaIsWriteOfCarField) {
  FunctionInfo info =
      extract("(defun f (l) (when l (rplaca (cdr l) 0) (f (cdr l))))");
  EXPECT_NE(find_ref(info, "cdr.car", true), nullptr);
}

TEST_F(ExtractTest, RplacdIsWriteOfCdrField) {
  FunctionInfo info =
      extract("(defun f (l) (when l (rplacd l nil) (f (cdr l))))");
  EXPECT_NE(find_ref(info, "cdr", true), nullptr);
}

TEST_F(ExtractTest, NreverseIsDeepWrite) {
  FunctionInfo info =
      extract("(defun f (l) (when l (nreverse (cdr l)) (f (cdr l))))");
  const StructRef* w = find_ref(info, "cdr", true);
  ASSERT_NE(w, nullptr);
  EXPECT_TRUE(w->deep);
}

TEST_F(ExtractTest, UnknownFunctionIsDeepReadWrite) {
  FunctionInfo info =
      extract("(defun f (l) (when l (mystery (car l)) (f (cdr l))))");
  EXPECT_NE(find_ref(info, "car", true), nullptr);
  EXPECT_NE(find_ref(info, "car", false), nullptr);
  EXPECT_FALSE(info.warnings.empty());
}

TEST_F(ExtractTest, FreeVariableReadAndWrite) {
  FunctionInfo info = extract(
      "(defun f (l) (when l (setq total (+ total (car l))) (f (cdr l))))");
  bool saw_write = false;
  bool saw_read = false;
  for (const VarRef& r : info.var_refs) {
    if (r.var->name == "total") {
      saw_write |= r.is_write;
      saw_read |= !r.is_write;
      if (r.is_write) {
        ASSERT_NE(r.update_op, nullptr);
        EXPECT_EQ(r.update_op->name, "+");
      }
    }
  }
  EXPECT_TRUE(saw_write);
  EXPECT_TRUE(saw_read);
}

TEST_F(ExtractTest, NthAccessorResolves) {
  FunctionInfo info =
      extract("(defun f (l) (when l (setf (nth 2 l) 0) (f (cdr l))))");
  EXPECT_NE(find_ref(info, "cdr.cdr.car", true), nullptr);
}

TEST_F(ExtractTest, DeclaredStructureAccessorResolves) {
  decls.load(sexpr::read_one(
      ctx, "(curare-declare (structure node (pointers next) (data val)))"));
  FunctionInfo info =
      extract("(defun walk (n) (when n (print (val n)) (walk (next n))))");
  ASSERT_EQ(info.rec_calls.size(), 1u);
  ASSERT_TRUE(info.rec_calls[0].arg_paths[0].has_value());
  EXPECT_EQ(info.rec_calls[0].arg_paths[0]->to_string(), "next");
}

TEST_F(ExtractTest, DeclareFormsSkippedInBody) {
  FunctionInfo info = extract(
      "(defun f (l) (declare (curare (sapp l))) (when l (f (cdr l))))");
  EXPECT_TRUE(info.is_recursive());
}

TEST_F(ExtractTest, ResolveAccessorPublicHelper) {
  auto rp = resolve_accessor(ctx, sexpr::read_one(ctx, "(cadr x)"));
  ASSERT_TRUE(rp.has_value());
  EXPECT_EQ(rp->root->name, "x");
  EXPECT_EQ(rp->path.to_string(), "cdr.car");
  EXPECT_FALSE(
      resolve_accessor(ctx, sexpr::read_one(ctx, "(car (g x))")).has_value());
}

}  // namespace
}  // namespace curare::analysis
