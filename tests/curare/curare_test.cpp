// End-to-end driver tests: load → analyze → transform → run, with the
// paper's correctness criterion checked directly — final-state
// sequentializability: "concurrent execution improves the speed of a
// program but does not change its result" (§3.1.1).
#include "curare/curare.hpp"

#include <gtest/gtest.h>

#include "sexpr/equal.hpp"
#include "sexpr/printer.hpp"
#include "sexpr/reader.hpp"

namespace curare {
namespace {

using sexpr::Value;
using sexpr::write_str;

class CurareTest : public ::testing::Test {
 protected:
  sexpr::Ctx ctx;
  Curare cur{ctx, 4};

  Value read(std::string_view src) { return sexpr::read_one(ctx, src); }

  std::string build_list(int n) {
    std::string s = "(";
    for (int i = 1; i <= n; ++i) s += std::to_string(i) + " ";
    return s + ")";
  }
};

TEST_F(CurareTest, AnalyzeFig3) {
  cur.load_program(
      "(defun f (l) (when l (print (car l)) (f (cdr l))))");
  AnalysisReport r = cur.analyze("f");
  EXPECT_TRUE(r.conflicts.clean());
  ASSERT_EQ(r.transfers.size(), 1u);
  EXPECT_EQ(r.transfers[0].first, "l");
  EXPECT_EQ(r.transfers[0].second, "cdr.cdr*");
  std::string text = r.to_string();
  EXPECT_NE(text.find("conflicts: 0"), std::string::npos) << text;
}

TEST_F(CurareTest, AnalyzeUnknownFunctionThrows) {
  EXPECT_THROW(cur.analyze("nope"), sexpr::LispError);
}

TEST_F(CurareTest, TransformConflictFreeTraversal) {
  cur.load_program(
      "(setq seen 0)"
      "(defun count-elts (l)"
      "  (when l (%atomic-incf-var 'seen 1) (count-elts (cdr l))))");
  TransformPlan plan = cur.transform("count-elts");
  ASSERT_TRUE(plan.ok) << plan.failure;
  EXPECT_EQ(plan.locks_inserted, 0);
  EXPECT_EQ(plan.num_sites, 1u);
  const Value args[] = {read(build_list(200))};
  cur.run_parallel("count-elts", args, 4);
  EXPECT_EQ(cur.interp().eval_program("seen").as_fixnum(), 200);
}

TEST_F(CurareTest, Fig4GetsLocksAndStaysSequentializable) {
  // Fig 4 prefix-shift: (setf (cadr l) (car l)) with τ=cdr: every cell
  // becomes the original car of its predecessor. Locks must preserve
  // the sequential result under 4 servers.
  cur.load_program(
      "(defun shift (l) (when (cdr l) (setf (cadr l) (car l))"
      " (shift (cdr l))))");
  TransformPlan plan = cur.transform("shift");
  ASSERT_TRUE(plan.ok) << plan.failure;
  EXPECT_GT(plan.locks_inserted, 0);
  ASSERT_TRUE(plan.concurrency_cap.has_value());
  EXPECT_EQ(*plan.concurrency_cap, 1) << "distance-1 conflict";

  // Sequential reference.
  Value seq_list = read(build_list(64));
  const Value seq_args[] = {seq_list};
  cur.run_sequential("shift", seq_args);

  // Parallel run on a fresh copy.
  Value par_list = read(build_list(64));
  const Value par_args[] = {par_list};
  cur.run_parallel("shift", par_args, 4);

  EXPECT_TRUE(sexpr::equal_values(seq_list, par_list))
      << "sequentializability violated:\n  seq: " << write_str(seq_list)
      << "\n  par: " << write_str(par_list);
}

TEST_F(CurareTest, Fig5PrefixSumSequentializable) {
  cur.load_program(
      "(defun psum (l)"
      "  (cond ((null l) nil)"
      "        ((null (cdr l)) nil)"
      "        (t (setf (cadr l) (+ (car l) (cadr l)))"
      "           (psum (cdr l)))))");
  TransformPlan plan = cur.transform("psum");
  ASSERT_TRUE(plan.ok) << plan.failure;

  Value seq_list = read(build_list(64));
  const Value a1[] = {seq_list};
  cur.run_sequential("psum", a1);

  Value par_list = read(build_list(64));
  const Value a2[] = {par_list};
  cur.run_parallel("psum", a2, 4);

  EXPECT_TRUE(sexpr::equal_values(seq_list, par_list));
  // Cross-check the actual values: prefix sums 1, 3, 6, 10, …
  EXPECT_EQ(sexpr::cadr(seq_list).as_fixnum(), 3);
  EXPECT_EQ(sexpr::caddr(seq_list).as_fixnum(), 6);
}

TEST_F(CurareTest, ReorderableCounterUsesAtomicNotLocks) {
  cur.load_program(
      "(setq total 0)"
      "(defun tally (l)"
      "  (when l (setq total (+ total (car l))) (tally (cdr l))))");
  TransformPlan plan = cur.transform("tally");
  ASSERT_TRUE(plan.ok) << plan.failure;
  EXPECT_GT(plan.reordered, 0);
  EXPECT_EQ(plan.locks_inserted, 0)
      << "reordering must remove the need for locks";

  const Value args[] = {read(build_list(100))};
  cur.run_parallel("tally", args, 4);
  EXPECT_EQ(cur.interp().eval_program("total").as_fixnum(), 5050);
}

TEST_F(CurareTest, SumBecomesIterative) {
  cur.load_program(
      "(defun sum (l) (if (null l) 0 (+ (car l) (sum (cdr l)))))");
  TransformPlan plan = cur.transform("sum");
  ASSERT_TRUE(plan.ok) << plan.failure;
  EXPECT_TRUE(plan.used_rec2iter);
  const Value args[] = {read(build_list(1000))};
  EXPECT_EQ(cur.run_parallel("sum", args, 4).as_fixnum(), 500500);
  EXPECT_EQ(cur.run_sequential("sum", args).as_fixnum(), 500500);
}

TEST_F(CurareTest, RemqGoesThroughDps) {
  cur.load_program(
      "(defun remq (obj lst)"
      "  (cond ((null lst) nil)"
      "        ((eq obj (car lst)) (remq obj (cdr lst)))"
      "        (t (cons (car lst) (remq obj (cdr lst))))))");
  TransformPlan plan = cur.transform("remq");
  ASSERT_TRUE(plan.ok) << plan.failure;
  EXPECT_TRUE(plan.used_dps);
  EXPECT_EQ(plan.locks_inserted, 0)
      << "DPS provenance must suppress destination locks";

  const Value args[] = {ctx.sym("a"),
                        read("(a 1 a 2 a 3 a)")};
  Value seq = cur.run_sequential("remq", args);
  Value par = cur.run_parallel("remq", args, 4);
  EXPECT_EQ(write_str(seq), "(1 2 3)");
  EXPECT_TRUE(sexpr::equal_values(seq, par))
      << "par: " << write_str(par);
}

TEST_F(CurareTest, DpsParallelLargeListMatchesSequential) {
  cur.load_program(
      "(defun keep-odd (obj lst)"
      "  (cond ((null lst) nil)"
      "        ((eq obj (car lst)) (keep-odd obj (cdr lst)))"
      "        (t (cons (car lst) (keep-odd obj (cdr lst))))))");
  TransformPlan plan = cur.transform("keep-odd");
  ASSERT_TRUE(plan.ok) << plan.failure;

  std::string big = "(";
  for (int i = 0; i < 2000; ++i)
    big += (i % 2 == 0) ? "x " : std::to_string(i) + " ";
  big += ")";
  const Value args[] = {ctx.sym("x"), read(big)};
  Value seq = cur.run_sequential("keep-odd", args);
  Value par = cur.run_parallel("keep-odd", args, 8);
  EXPECT_EQ(sexpr::list_length(par), 1000u);
  EXPECT_TRUE(sexpr::equal_values(seq, par));
}

TEST_F(CurareTest, TailResultCaptured) {
  cur.load_program(
      "(defun last-elt (l)"
      "  (if (null (cdr l)) (car l) (last-elt (cdr l))))");
  TransformPlan plan = cur.transform("last-elt");
  ASSERT_TRUE(plan.ok) << plan.failure;
  const Value args[] = {read("(1 2 3 99)")};
  EXPECT_EQ(cur.run_parallel("last-elt", args, 3).as_fixnum(), 99);
}

TEST_F(CurareTest, NotRecursiveRefused) {
  cur.load_program("(defun plain (x) (+ x 1))");
  TransformPlan plan = cur.transform("plain");
  EXPECT_FALSE(plan.ok);
  EXPECT_NE(plan.failure.find("not self-recursive"), std::string::npos);
}

TEST_F(CurareTest, NoRestructureDeclarationRespected) {
  cur.load_program(
      "(curare-declare (no-restructure f))"
      "(defun f (l) (when l (f (cdr l))))");
  TransformPlan plan = cur.transform("f");
  EXPECT_FALSE(plan.ok);
  EXPECT_NE(plan.failure.find("no-restructure"), std::string::npos);
}

TEST_F(CurareTest, EvalDefeatsTransformWithFeedback) {
  cur.load_program(
      "(defun f (l) (when l (eval (car l)) (f (cdr l))))");
  TransformPlan plan = cur.transform("f");
  EXPECT_FALSE(plan.ok);
  EXPECT_FALSE(plan.feedback.empty());
}

TEST_F(CurareTest, CrossParamAliasingRefusedWithAdvice) {
  cur.load_program(
      "(defun zip-set (a b)"
      "  (when a (setf (car a) (car b)) (zip-set (cdr a) (cdr b))))");
  TransformPlan plan = cur.transform("zip-set");
  EXPECT_FALSE(plan.ok);
  EXPECT_NE(plan.failure.find("noalias"), std::string::npos)
      << "feedback must name the unblocking declaration (§6)";
}

TEST_F(CurareTest, NoaliasDeclarationUnblocks) {
  cur.load_program(
      "(curare-declare (noalias zip-set))"
      "(defun zip-set (a b)"
      "  (when a (setf (car a) (car b)) (zip-set (cdr a) (cdr b))))");
  TransformPlan plan = cur.transform("zip-set");
  EXPECT_TRUE(plan.ok) << plan.failure;
}

TEST_F(CurareTest, ResultUsedWithoutEnablingTransformsFails) {
  cur.load_program(
      "(defun depth (x)"
      "  (if (atom x) 0 (max (depth (car x)) (depth (cdr x)))))");
  TransformOptions opts;
  opts.enable_rec2iter = false;
  opts.enable_dps = false;
  TransformPlan plan = cur.transform("depth", opts);
  EXPECT_FALSE(plan.ok);
}

TEST_F(CurareTest, PlanToStringMentionsStrategy) {
  cur.load_program(
      "(defun f (l) (when l (setf (cadr l) (car l)) (f (cdr l))))");
  TransformPlan plan = cur.transform("f");
  ASSERT_TRUE(plan.ok);
  std::string text = plan.to_string();
  EXPECT_NE(text.find("locks"), std::string::npos);
  EXPECT_NE(text.find("f$parallel"), std::string::npos);
}

TEST_F(CurareTest, RunParallelWithoutTransformThrows) {
  cur.load_program("(defun f (l) (when l (f (cdr l))))");
  const Value args[] = {Value::nil()};
  EXPECT_THROW(cur.run_parallel("f", args, 2), sexpr::LispError);
}

TEST_F(CurareTest, SchedulerPicksServersWhenZero) {
  cur.load_program(
      "(setq c 0)"
      "(defun f (l) (when l (%atomic-incf-var 'c 1) (f (cdr l))))");
  TransformPlan plan = cur.transform("f");
  ASSERT_TRUE(plan.ok);
  const Value args[] = {read(build_list(50))};
  cur.run_parallel("f", args, 0);  // scheduler decides S
  EXPECT_EQ(cur.interp().eval_program("c").as_fixnum(), 50);
}

// Property sweep: Fig 4-style shift with varying list sizes and server
// counts always matches the sequential result.
struct SweepParam {
  int list_size;
  int servers;
};

class SequentializableSweep
    : public ::testing::TestWithParam<SweepParam> {};

TEST_P(SequentializableSweep, ShiftMatchesSequential) {
  sexpr::Ctx ctx;
  Curare cur(ctx, 4);
  cur.load_program(
      "(defun shift (l) (when (cdr l) (setf (cadr l) (car l))"
      " (shift (cdr l))))");
  TransformPlan plan = cur.transform("shift");
  ASSERT_TRUE(plan.ok) << plan.failure;

  auto make_list = [&](int n) {
    std::string s = "(";
    for (int i = 1; i <= n; ++i) s += std::to_string(i * 3) + " ";
    return sexpr::read_one(ctx, s + ")");
  };
  Value seq_list = make_list(GetParam().list_size);
  const Value a1[] = {seq_list};
  cur.run_sequential("shift", a1);

  Value par_list = make_list(GetParam().list_size);
  const Value a2[] = {par_list};
  cur.run_parallel("shift", a2,
                   static_cast<std::size_t>(GetParam().servers));
  EXPECT_TRUE(sexpr::equal_values(seq_list, par_list));
}

INSTANTIATE_TEST_SUITE_P(
    SizesAndServers, SequentializableSweep,
    ::testing::Values(SweepParam{1, 2}, SweepParam{2, 2},
                      SweepParam{17, 3}, SweepParam{64, 4},
                      SweepParam{128, 8}, SweepParam{256, 2}));

}  // namespace
}  // namespace curare
