// Property-based tests: randomly generated recursive list programs are
// pushed through the entire pipeline. Invariants:
//
//   P1  the analyzer never crashes and never reports a conflict for a
//       function with no writes;
//   P2  whenever the transformation succeeds, the parallel run under
//       several servers produces the same final structure as the
//       one-server run (conflict serializability w.r.t. the invocation
//       order — the paper's §3.1.1 criterion);
//   P3  transformation failures always carry §6 feedback text;
//   P4  head/tail sizes are consistent (every statement in exactly one
//       side, sizes positive for nonempty bodies).
//
// The generator composes bodies from a fixed grammar of reads, writes at
// bounded depths, counter updates, and a cdr-stepping recursive call —
// the shape family of the paper's Figures 3–5.
#include <gtest/gtest.h>

#include <random>
#include <sstream>

#include "curare/curare.hpp"
#include "sexpr/equal.hpp"
#include "sexpr/printer.hpp"
#include "sexpr/reader.hpp"

namespace curare {
namespace {

class ProgramGen {
 public:
  explicit ProgramGen(std::uint64_t seed) : rng_(seed) {}

  /// A random traversal body statement.
  std::string statement() {
    switch (rng_() % 6) {
      case 0: return "(print (car l))";
      case 1: {
        const int k = static_cast<int>(rng_() % 3);
        return "(setf (nth " + std::to_string(k) +
               " l) (+ 1 (car l)))";
      }
      case 2: return "(incf gen-counter)";
      case 3: return "(setq gen-acc (+ gen-acc (car l)))";
      case 4: return "(print (length l))";
      default: {
        const int k = 1 + static_cast<int>(rng_() % 2);
        return "(setf (nth " + std::to_string(k) + " l) (car l))";
      }
    }
  }

  std::string function(const std::string& name) {
    std::ostringstream out;
    out << "(setq gen-counter 0) (setq gen-acc 0)";
    // Guard by the deepest write the statement grammar can produce
    // (nth 2), so no statement ever setfs past the end of the list.
    out << "(defun " << name << " (l) (when (nthcdr 3 l) ";
    const int pre = 1 + static_cast<int>(rng_() % 2);
    for (int i = 0; i < pre; ++i) out << statement() << " ";
    out << "(" << name << " (cdr l))";
    if (rng_() % 2 == 0) out << " " << statement();
    out << "))";
    return out.str();
  }

 private:
  std::mt19937_64 rng_;
};

std::string fixnum_list(int n) {
  std::string s = "(";
  for (int i = 1; i <= n; ++i) s += std::to_string(i) + " ";
  return s + ")";
}

class PropertySweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PropertySweep, PipelineInvariantsHold) {
  ProgramGen gen(GetParam());
  const std::string program = gen.function("gf");

  sexpr::Ctx ctx;
  Curare cur(ctx, 4);
  cur.load_program(program);

  // P1: analysis terminates; read-only functions are conflict-free.
  AnalysisReport report = cur.analyze("gf");
  bool has_write = false;
  for (const auto& r : report.info.refs) has_write |= r.is_write;
  for (const auto& v : report.info.var_refs) has_write |= v.is_write;
  if (!has_write) {
    EXPECT_TRUE(report.conflicts.conflicts.empty())
        << "no writes but conflicts reported for: " << program;
  }

  // P4: the partition covers the body.
  EXPECT_GT(report.headtail.head_size, 0u);
  for (const auto& s : report.headtail.stmts)
    EXPECT_EQ(s.in_tail, s.in_tail && !s.has_rec_call);

  // P2/P3: transform, then compare S=1 vs S=4 end states.
  TransformPlan plan = cur.transform("gf");
  if (!plan.ok) {
    EXPECT_FALSE(plan.failure.empty()) << program;
    return;
  }

  auto run_with = [&](std::size_t servers) {
    cur.interp().eval_program("(setq gen-counter 0) (setq gen-acc 0)");
    Value list = sexpr::read_one(ctx, fixnum_list(24));
    const Value args[] = {list};
    cur.run_parallel("gf", args, servers);
    (void)cur.interp().take_output();
    return std::tuple<Value, std::int64_t, std::int64_t>(
        list, cur.interp().eval_program("gen-counter").as_fixnum(),
        cur.interp().eval_program("gen-acc").as_fixnum());
  };

  auto [serial_list, serial_counter, serial_acc] = run_with(1);
  auto [par_list, par_counter, par_acc] = run_with(4);

  EXPECT_TRUE(sexpr::equal_values(serial_list, par_list))
      << "final structure diverged for: " << program
      << "\n  serial: " << sexpr::write_str(serial_list)
      << "\n  parallel: " << sexpr::write_str(par_list);
  EXPECT_EQ(serial_counter, par_counter) << program;
  EXPECT_EQ(serial_acc, par_acc) << program;
}

INSTANTIATE_TEST_SUITE_P(Seeds, PropertySweep,
                         ::testing::Range<std::uint64_t>(1, 33));

// The same sweep on a second grammar family: struct-based chains.
class StructPropertySweep : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(StructPropertySweep, StructTraversalsStaySequentializable) {
  std::mt19937_64 rng(GetParam());
  const int write_depth = 1 + static_cast<int>(rng() % 2);
  std::string next_chain = "n";
  for (int i = 0; i < write_depth; ++i)
    next_chain = "(next " + next_chain + ")";

  std::ostringstream program;
  program
      << "(defstruct gnode (pointers next) (data payload))"
      << "(defun build (k)"
      << "  (if (= k 0) nil"
      << "      (make-gnode 'payload k 'next (build (- k 1)))))"
      << "(defun walk (n)"
      << "  (when " << next_chain << " "
      << "    (setf (payload " << next_chain << ") (payload n))"
      << "    (walk (next n))))";

  sexpr::Ctx ctx;
  Curare cur(ctx, 4);
  cur.load_program(program.str());

  TransformPlan plan = cur.transform("walk");
  ASSERT_TRUE(plan.ok) << plan.failure << " for " << program.str();
  ASSERT_TRUE(plan.concurrency_cap.has_value());
  EXPECT_EQ(*plan.concurrency_cap, write_depth);

  auto run_with = [&](std::size_t servers) {
    Value chain = cur.interp().eval_program("(build 20)");
    const Value args[] = {chain};
    cur.run_parallel("walk", args, servers);
    // Serialize payloads for comparison.
    std::string out;
    Value n = chain;
    while (!n.is_nil()) {
      const Value one[] = {n};
      out += sexpr::write_str(
                 cur.interp().apply(cur.interp().global("payload"), one)) +
             " ";
      const Value step[] = {n};
      n = cur.interp().apply(cur.interp().global("next"), step);
    }
    return out;
  };

  EXPECT_EQ(run_with(1), run_with(4)) << program.str();
}

INSTANTIATE_TEST_SUITE_P(Seeds, StructPropertySweep,
                         ::testing::Range<std::uint64_t>(1, 9));

}  // namespace
}  // namespace curare
