// E14 end-to-end: canonicalization-aware SAPP over real defstruct
// graphs (paper §2.1's doubly-linked example).
#include "curare/struct_sapp.hpp"

#include <gtest/gtest.h>

#include "curare/curare.hpp"
#include "sexpr/reader.hpp"

namespace curare {
namespace {

class StructSappTest : public ::testing::Test {
 protected:
  sexpr::Ctx ctx;
  Curare cur{ctx};

  Value eval(std::string_view src) {
    return cur.interp().eval_program(src);
  }
};

TEST_F(StructSappTest, SinglyLinkedChainHolds) {
  cur.load_program(
      "(defstruct node (pointers next) (data item))"
      "(defun build (n)"
      "  (if (= n 0) nil (make-node 'item n 'next (build (- n 1)))))");
  Value chain = eval("(build 20)");
  StructSappResult r = check_struct_sapp(chain, cur.declarations());
  EXPECT_TRUE(r) << r.violation;
  EXPECT_EQ(r.instances, 20u);
}

TEST_F(StructSappTest, DoublyLinkedFailsWithoutInverseDeclaration) {
  cur.load_program(
      "(defstruct dnode (pointers succ pred) (data item))"
      "(defun link (a b) (setf (succ a) b) (setf (pred b) a))");
  Value head = eval(
      "(let ((a (make-dnode 'item 1)) (b (make-dnode 'item 2)))"
      "  (link a b) a)");
  StructSappResult r = check_struct_sapp(head, cur.declarations());
  EXPECT_FALSE(r) << "without (inverse succ pred) the back-pointer "
                     "looks like a second path";
}

TEST_F(StructSappTest, DoublyLinkedHoldsWithInverseDeclaration) {
  cur.load_program(
      "(curare-declare (inverse succ pred))"
      "(defstruct dnode (pointers succ pred) (data item))"
      "(defun link (a b) (setf (succ a) b) (setf (pred b) a))");
  Value head = eval(
      "(let ((a (make-dnode 'item 1)) (b (make-dnode 'item 2))"
      "      (c (make-dnode 'item 3)))"
      "  (link a b) (link b c) a)");
  StructSappResult r = check_struct_sapp(head, cur.declarations());
  EXPECT_TRUE(r) << r.violation;
  EXPECT_EQ(r.instances, 3u);
}

TEST_F(StructSappTest, WalkFromTheMiddleAlsoHolds) {
  cur.load_program(
      "(curare-declare (inverse succ pred))"
      "(defstruct dnode (pointers succ pred) (data item))"
      "(defun link (a b) (setf (succ a) b) (setf (pred b) a))");
  Value mid = eval(
      "(let ((a (make-dnode 'item 1)) (b (make-dnode 'item 2))"
      "      (c (make-dnode 'item 3)))"
      "  (link a b) (link b c) b)");
  StructSappResult r = check_struct_sapp(mid, cur.declarations());
  EXPECT_TRUE(r) << r.violation;
  EXPECT_EQ(r.instances, 3u);
}

TEST_F(StructSappTest, GenuineSharingStillFails) {
  cur.load_program(
      "(curare-declare (inverse succ pred))"
      "(defstruct dnode (pointers succ pred) (data item))");
  // Two distinct nodes whose succ points at the SAME third node: two
  // canonical paths, a real violation even with canonicalization.
  Value head = eval(
      "(let ((a (make-dnode)) (b (make-dnode)) (shared (make-dnode)))"
      "  (setf (succ a) b)"
      "  (setf (pred b) a)"
      "  (setf (item a) shared)"  // reach shared through a data field
      "  (setf (succ b) shared)"
      "  a)");
  StructSappResult r = check_struct_sapp(head, cur.declarations());
  EXPECT_FALSE(r);
}

TEST_F(StructSappTest, ConsListInsideDataFieldChecked) {
  cur.load_program("(defstruct holder (data payload))");
  Value shared_list = eval("(setq shared '(1 2))"
                           "(make-holder 'payload (cons shared (cons "
                           "shared nil)))");
  StructSappResult r = check_struct_sapp(shared_list, cur.declarations());
  EXPECT_FALSE(r) << "shared cons substructure under a data field";
}

TEST_F(StructSappTest, AtomsHold) {
  StructSappResult r = check_struct_sapp(Value::fixnum(5),
                                         cur.declarations());
  EXPECT_TRUE(r);
  EXPECT_EQ(r.instances, 0u);
}

TEST_F(StructSappTest, AnalysisUsesDefstructFieldsAsAccessors) {
  // The defstruct auto-declaration must let the analyzer resolve field
  // accessors: τ = next⁺ for a walker over the struct chain.
  cur.load_program(
      "(defstruct node (pointers next) (data item))"
      "(defun walk (n) (when n (print (item n)) (walk (next n))))");
  AnalysisReport report = cur.analyze("walk");
  ASSERT_EQ(report.transfers.size(), 1u);
  EXPECT_EQ(report.transfers[0].second, "next.next*");
  EXPECT_TRUE(report.conflicts.clean());
}

TEST_F(StructSappTest, StructWriterGetsConflictDetected) {
  cur.load_program(
      "(defstruct node (pointers next) (data item))"
      "(defun bump (n)"
      "  (when (next n)"
      "    (setf (item (next n)) (item n))"
      "    (bump (next n))))");
  AnalysisReport report = cur.analyze("bump");
  ASSERT_FALSE(report.conflicts.conflicts.empty());
  EXPECT_EQ(report.conflicts.min_distance().value_or(-1), 1)
      << "write next.item vs read item: distance 1, like Fig 4";
}

TEST_F(StructSappTest, StructTraversalTransformsAndRuns) {
  cur.load_program(
      "(setq count 0)"
      "(defstruct node (pointers next) (data item))"
      "(defun build (n)"
      "  (if (= n 0) nil (make-node 'item n 'next (build (- n 1)))))"
      "(defun visit (n)"
      "  (when n (%atomic-incf-var 'count 1) (visit (next n))))");
  TransformPlan plan = cur.transform("visit");
  ASSERT_TRUE(plan.ok) << plan.failure;
  Value chain = eval("(build 50)");
  const Value args[] = {chain};
  cur.run_parallel("visit", args, 4);
  EXPECT_EQ(eval("count").as_fixnum(), 50);
}

}  // namespace
}  // namespace curare
