// Warm-start subsystem tests (DESIGN.md §15).
//
// Round-trip properties: a template session's globals — closures with
// captured frames, struct instances, shared substructure, cycles built
// with setf — survive capture → clone bit-for-bit in behaviour, and
// the clone is a *copy*: mutating one session never leaks into
// another. Damage properties: corrupt, truncated, version-skewed, and
// wrong-magic blobs are rejected with distinct errors, never half-
// loaded. Cache properties: the restructure cache is a bounded LRU
// whose hits answer byte-identically to the miss that seeded them.
#include "image/image.hpp"

#include <cstdio>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "curare/curare.hpp"
#include "gc/gc.hpp"
#include "image/restructure_cache.hpp"
#include "lisp/function.hpp"
#include "lisp/interp.hpp"
#include "runtime/runtime.hpp"
#include "serve/client.hpp"
#include "serve/server.hpp"
#include "sexpr/ctx.hpp"
#include "sexpr/printer.hpp"

namespace image = curare::image;
namespace sexpr = curare::sexpr;
namespace serve = curare::serve;
using curare::Curare;
using sexpr::Kind;
using sexpr::Value;

namespace {

/// Host interpreter + shared runtime + any number of serving-mode
/// sessions over one heap — the daemon's shape without the sockets.
struct ImageFixture {
  sexpr::Ctx ctx;
  curare::lisp::Interp host{ctx};
  curare::runtime::Runtime rt{host, 2};

  std::unique_ptr<Curare> session() {
    return std::make_unique<Curare>(ctx, rt);
  }

  /// Evaluate in `s` and print the last value.
  std::string run(Curare& s, const std::string& src) {
    curare::gc::GcHeap& gc = ctx.heap.gc();
    curare::gc::RootScope roots(gc);
    std::string printed;
    {
      curare::gc::MutatorScope ms(gc);
      Value last = s.load_program(src);
      roots.add(last);
      printed = sexpr::write_str(last);
    }
    s.interp().take_output();
    return printed;
  }
};

const char* kPrelude =
    "(defstruct point (pointers) (data px py))"
    "(defun fib (n) (if (< n 2) n (+ (fib (- n 1)) (fib (- n 2)))))"
    "(defun make-adder (n) (lambda (x) (+ x n)))"
    "(setq add3 (make-adder 3))"
    "(setq origin (make-point 'px 3 'py 4))"
    "(setq greeting \"hello\")"
    "(setq pi-ish 3.5)"
    "(setq arr (make-array 3 7))"
    "(setq tbl (make-hash-table))"
    "(setf (gethash 'k tbl) 42)"
    "(setq pair (list 1 2 3))";

}  // namespace

TEST(Image, RoundTripGlobalsClosuresStructs) {
  ImageFixture f;
  auto templ = f.session();
  f.run(*templ, kPrelude);
  image::SessionImage img = image::SessionImage::capture(*templ);
  templ.reset();  // the clone must not depend on the template's heap refs

  auto target = f.session();
  image::CloneStats stats = img.clone_into(*target);
  EXPECT_GT(stats.nodes, 0u);
  EXPECT_GT(stats.bindings, 0u);

  EXPECT_EQ(f.run(*target, "(fib 10)"), "55");
  EXPECT_EQ(f.run(*target, "(funcall add3 4)"), "7");
  EXPECT_EQ(f.run(*target, "(px origin)"), "3");
  EXPECT_EQ(f.run(*target, "(point-p origin)"), "t");
  EXPECT_EQ(f.run(*target, "greeting"), "\"hello\"");
  EXPECT_EQ(f.run(*target, "pi-ish"), "3.5");
  EXPECT_EQ(f.run(*target, "(aref arr 1)"), "7");
  EXPECT_EQ(f.run(*target, "(gethash 'k tbl)"), "42");
  EXPECT_EQ(f.run(*target, "pair"), "(1 2 3)");
  // Builtins were serialized by name and resolved against the target.
  EXPECT_EQ(f.run(*target, "(car (cdr pair))"), "2");
  // defstruct re-registration: new instances work in the clone.
  EXPECT_EQ(f.run(*target, "(py (make-point 'py 9))"), "9");
}

TEST(Image, CloneIsACopyNotAnAlias) {
  ImageFixture f;
  auto templ = f.session();
  f.run(*templ, "(setq cell (cons 1 2))");
  image::SessionImage img = image::SessionImage::capture(*templ);

  auto a = f.session();
  auto b = f.session();
  img.clone_into(*a);
  img.clone_into(*b);
  f.run(*a, "(setf (car cell) 99)");
  EXPECT_EQ(f.run(*a, "(car cell)"), "99");
  EXPECT_EQ(f.run(*b, "(car cell)"), "1");   // b's world untouched
  EXPECT_EQ(f.run(*templ, "(car cell)"), "1");
}

TEST(Image, SharedSubstructureStaysShared) {
  ImageFixture f;
  auto templ = f.session();
  f.run(*templ, "(setq a (list 1 2)) (setq b (cons 0 a))");
  image::SessionImage img = image::SessionImage::capture(*templ);

  auto target = f.session();
  img.clone_into(*target);
  EXPECT_EQ(f.run(*target, "(eq a (cdr b))"), "t");
  f.run(*target, "(setf (car a) 99)");
  EXPECT_EQ(f.run(*target, "(car (cdr b))"), "99");
}

TEST(Image, CyclesBuiltWithSetfSurvive) {
  ImageFixture f;
  auto templ = f.session();
  // A self-referential cons and a two-cons ring — the capture walk and
  // the fixup pass must both terminate and preserve identity.
  f.run(*templ,
        "(setq self (cons 1 2)) (setf (cdr self) self)"
        "(setq ring1 (cons 'a nil)) (setq ring2 (cons 'b ring1))"
        "(setf (cdr ring1) ring2)");
  image::SessionImage img = image::SessionImage::capture(*templ);

  auto target = f.session();
  img.clone_into(*target);
  EXPECT_EQ(f.run(*target, "(eq self (cdr self))"), "t");
  EXPECT_EQ(f.run(*target, "(car (cdr (cdr self)))"), "1");
  EXPECT_EQ(f.run(*target, "(eq ring1 (cdr (cdr ring1)))"), "t");
  EXPECT_EQ(f.run(*target, "(car (cdr ring1))"), "b");
}

TEST(Image, ClonedClosuresForgetCompiledCode) {
  ImageFixture f;
  auto templ = f.session();
  templ->set_engine(curare::EngineKind::kVm);
  // Calling sq under the VM compiles its closure (code_state leaves
  // kCodeUnknown); the image must not carry that cache across.
  f.run(*templ, "(defun sq (x) (* x x)) (sq 5)");
  {
    Value v = templ->interp().global("sq");
    ASSERT_TRUE(v.is(Kind::Closure));
    const auto* c = static_cast<const curare::lisp::Closure*>(v.obj());
    EXPECT_NE(c->code_state.load(), curare::lisp::Closure::kCodeUnknown);
  }
  image::SessionImage img = image::SessionImage::capture(*templ);

  auto target = f.session();
  img.clone_into(*target);
  Value v = target->interp().global("sq");
  ASSERT_TRUE(v.is(Kind::Closure));
  const auto* c = static_cast<const curare::lisp::Closure*>(v.obj());
  EXPECT_EQ(c->code_state.load(), curare::lisp::Closure::kCodeUnknown);
  EXPECT_EQ(f.run(*target, "(sq 6)"), "36");
}

TEST(Image, NativeObjectsRefuseCapture) {
  ImageFixture f;
  auto templ = f.session();
  // A future handle is a Kind::Native (pool state + thread plumbing);
  // it cannot relocate into another process, so capture fails loudly.
  f.run(*templ, "(setq fut (future 42))");
  EXPECT_THROW(image::SessionImage::capture(*templ), image::ImageError);
}

TEST(Image, BytesRoundTripAndFileRoundTrip) {
  ImageFixture f;
  auto templ = f.session();
  f.run(*templ, kPrelude);
  image::SessionImage img = image::SessionImage::capture(*templ);

  image::SessionImage re =
      image::SessionImage::from_bytes(img.bytes());
  EXPECT_EQ(re.node_count(), img.node_count());

  const std::string path =
      testing::TempDir() + "curare_image_test_blob.img";
  img.save_file(path);
  image::SessionImage loaded = image::SessionImage::load_file(path);
  auto target = f.session();
  loaded.clone_into(*target);
  EXPECT_EQ(f.run(*target, "(fib 10)"), "55");
  std::remove(path.c_str());
}

TEST(Image, CaptureIsDeterministic) {
  // Two captures of the same session state are byte-identical (global
  // bindings are sorted by name), so image files diff cleanly.
  ImageFixture f;
  auto templ = f.session();
  f.run(*templ, kPrelude);
  image::SessionImage a = image::SessionImage::capture(*templ);
  image::SessionImage b = image::SessionImage::capture(*templ);
  EXPECT_EQ(a.bytes(), b.bytes());
}

TEST(Image, RejectsCorruptTruncatedSkewedBlobs) {
  ImageFixture f;
  auto templ = f.session();
  f.run(*templ, "(setq x 1)");
  image::SessionImage img = image::SessionImage::capture(*templ);
  const std::vector<std::uint8_t>& good = img.bytes();
  ASSERT_GT(good.size(), 40u);

  auto expect_reject = [](std::vector<std::uint8_t> bytes,
                          const std::string& needle) {
    try {
      image::SessionImage::from_bytes(std::move(bytes));
      FAIL() << "blob should have been rejected (" << needle << ")";
    } catch (const image::ImageError& e) {
      EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
          << e.what();
    }
  };

  {  // payload corruption → checksum mismatch
    std::vector<std::uint8_t> bad = good;
    bad[bad.size() - 3] ^= 0xFF;
    expect_reject(std::move(bad), "checksum");
  }
  {  // truncated mid-payload
    std::vector<std::uint8_t> bad = good;
    bad.resize(bad.size() - 7);
    expect_reject(std::move(bad), "truncated");
  }
  {  // too short to even hold a header
    expect_reject(std::vector<std::uint8_t>(good.begin(),
                                            good.begin() + 10),
                  "truncated");
  }
  {  // format version skew (bytes 8..11, little-endian)
    std::vector<std::uint8_t> bad = good;
    bad[8] = static_cast<std::uint8_t>(bad[8] + 1);
    expect_reject(std::move(bad), "version");
  }
  {  // wrong magic
    std::vector<std::uint8_t> bad = good;
    bad[0] ^= 0xFF;
    expect_reject(std::move(bad), "magic");
  }
}

// ---- restructure cache ----------------------------------------------------

TEST(RestructureCache, BoundedLruWithMetrics) {
  sexpr::Ctx ctx;
  curare::gc::GcHeap& gc = ctx.heap.gc();
  image::RestructureCache cache(gc, 8);  // 8 shards → 1 entry each

  image::RestructureEntry e;
  e.text = "chunk";
  e.ok = true;
  e.is_recursive = true;
  for (int i = 0; i < 64; ++i)
    cache.insert("key-" + std::to_string(i), e);
  // Every shard holds at most its share; the rest were evicted.
  EXPECT_LE(cache.size(), 8u);
  EXPECT_GE(cache.evictions(), 56u);

  // Re-insert one key and look it up: a hit copies the entry out.
  cache.insert("stable", e);
  image::RestructureEntry out;
  {
    curare::gc::MutatorScope ms(gc);
    EXPECT_TRUE(cache.lookup("stable", &out));
    EXPECT_FALSE(cache.lookup("never-inserted", &out));
  }
  EXPECT_EQ(out.text, "chunk");
  EXPECT_TRUE(out.ok);
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_DOUBLE_EQ(cache.hit_ratio(), 0.5);
}

TEST(RestructureCache, KeyNormalizesLoadOrderAndTracksDecls) {
  ImageFixture f;
  const std::string defun_a =
      "(defun len (l) (if (null l) 0 (+ 1 (len (cdr l)))))";
  const std::string defun_b =
      "(defun last1 (l) (if (null (cdr l)) (car l) (last1 (cdr l))))";

  auto s1 = f.session();
  auto s2 = f.session();
  f.run(*s1, defun_a + defun_b);
  f.run(*s2, defun_b + defun_a);  // same program, opposite load order
  std::string k1, k2;
  {
    curare::gc::MutatorScope ms(f.ctx.heap.gc());
    k1 = image::RestructureCache::make_key(*s1, "len", true);
    k2 = image::RestructureCache::make_key(*s2, "len", true);
  }
  EXPECT_EQ(k1, k2);

  // A declaration feeds the analyzer, so it must change the key; the
  // request mode (named vs. sweep) answers differently, so it too.
  auto s3 = f.session();
  f.run(*s3, defun_a + defun_b +
                 "(curare-declare (no-restructure len))");
  std::string k3, k1_sweep;
  {
    curare::gc::MutatorScope ms(f.ctx.heap.gc());
    k3 = image::RestructureCache::make_key(*s3, "len", true);
    k1_sweep = image::RestructureCache::make_key(*s1, "len", false);
  }
  EXPECT_NE(k1, k3);
  EXPECT_NE(k1, k1_sweep);
}

// ---- end-to-end through the daemon ---------------------------------------

namespace {

struct DaemonFixture {
  sexpr::Ctx ctx;
  serve::ServeDaemon daemon;

  explicit DaemonFixture(serve::ServeOptions opts = {})
      : daemon(ctx, std::move(opts)) {
    std::string err;
    EXPECT_TRUE(daemon.start(&err)) << err;
  }
  ~DaemonFixture() { daemon.shutdown(); }

  serve::ClientConnection connect() {
    serve::ClientConnection c;
    std::string err;
    EXPECT_TRUE(c.connect("127.0.0.1", daemon.port(), &err)) << err;
    return c;
  }
};

}  // namespace

TEST(RestructureCache, HitAnswersByteIdenticallyToMiss) {
  DaemonFixture f;  // default options: cache enabled
  const std::string program =
      "(defun len (l) (if (null l) 0 (+ 1 (len (cdr l)))))";
  serve::Request req;
  req.op = "restructure";
  req.program = program;
  req.name = "len";

  auto a = f.connect();
  auto miss = a.request(req);
  ASSERT_TRUE(miss.has_value());
  ASSERT_EQ(miss->status, "ok") << miss->error;
  EXPECT_EQ(f.daemon.restructure_cache()->hits(), 0u);

  auto b = f.connect();
  auto hit = b.request(req);
  ASSERT_TRUE(hit.has_value());
  ASSERT_EQ(hit->status, "ok") << hit->error;
  EXPECT_EQ(f.daemon.restructure_cache()->hits(), 1u);

  EXPECT_EQ(miss->result, hit->result);  // the differential check

  // The hit installed the transformed defun into session b: it must
  // answer calls exactly like the session that paid for the miss.
  serve::Request ev;
  ev.op = "eval";
  ev.program = "(len (list 1 2 3))";
  auto ra = a.request(ev);
  auto rb = b.request(ev);
  ASSERT_TRUE(ra.has_value() && rb.has_value());
  EXPECT_EQ(ra->result, "3");
  EXPECT_EQ(rb->result, "3");
}

TEST(RestructureCache, SweepSkipsCachedNonRecursiveVerdicts) {
  DaemonFixture f;
  const std::string program =
      "(defun twice (x) (* 2 x))"  // not recursive: sweep skips it
      "(defun len (l) (if (null l) 0 (+ 1 (len (cdr l)))))";
  serve::Request req;
  req.op = "restructure";  // no name → sweep
  req.program = program;

  auto a = f.connect();
  auto miss = a.request(req);
  ASSERT_TRUE(miss.has_value());
  ASSERT_EQ(miss->status, "ok") << miss->error;

  auto b = f.connect();
  auto hit = b.request(req);
  ASSERT_TRUE(hit.has_value());
  ASSERT_EQ(hit->status, "ok") << hit->error;
  EXPECT_EQ(miss->result, hit->result);
  // Both names hit the second time: the recursive chunk and the
  // cached negative verdict for the non-recursive one.
  EXPECT_EQ(f.daemon.restructure_cache()->hits(), 2u);
}

TEST(Serve, ImageWarmStartMatchesPreludeColdStart) {
  const std::string prelude =
      "(defstruct point (pointers) (data px py))"
      "(defun fib (n) (if (< n 2) n (+ (fib (- n 1)) (fib (- n 2)))))"
      "(setq origin (make-point 'px 3 'py 4))";

  serve::ServeOptions warm;
  warm.prelude_src = prelude;
  DaemonFixture w(warm);
  ASSERT_NE(w.daemon.session_image(), nullptr);

  serve::ServeOptions cold;
  cold.prelude_src = prelude;
  cold.use_image = false;
  DaemonFixture c(cold);
  EXPECT_EQ(c.daemon.session_image(), nullptr);

  for (DaemonFixture* f : {&w, &c}) {
    auto conn = f->connect();
    serve::Request ev;
    ev.op = "eval";
    ev.program = "(list (fib 10) (px origin))";
    auto r = conn.request(ev);
    ASSERT_TRUE(r.has_value());
    ASSERT_EQ(r->status, "ok") << r->error;
    EXPECT_EQ(r->result, "(55 3)");
  }
}

TEST(Serve, BadImageFileFailsStartup) {
  const std::string path =
      testing::TempDir() + "curare_image_test_bad.img";
  {
    std::FILE* fp = std::fopen(path.c_str(), "wb");
    ASSERT_NE(fp, nullptr);
    std::fputs("definitely not an image", fp);
    std::fclose(fp);
  }
  serve::ServeOptions opts;
  opts.image_load = path;
  sexpr::Ctx ctx;
  serve::ServeDaemon daemon(ctx, opts);
  std::string err;
  EXPECT_FALSE(daemon.start(&err));
  EXPECT_NE(err.find("image"), std::string::npos) << err;
  daemon.shutdown();
  std::remove(path.c_str());
}
