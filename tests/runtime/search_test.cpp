// Any-result parallel search (§3.2.3's third class) and the ordered
// multi-site queue behaviour (§4.1).
#include <gtest/gtest.h>

#include "runtime/runtime.hpp"
#include "runtime/task_queue.hpp"
#include "sexpr/printer.hpp"
#include "sexpr/reader.hpp"

namespace curare::runtime {
namespace {

using sexpr::Value;

class SearchTest : public ::testing::Test {
 protected:
  sexpr::Ctx ctx;
  lisp::Interp in{ctx};
  Runtime rt{in, 4};

  void SetUp() override { rt.install(); }
};

TEST_F(SearchTest, FinishDeliversResultAndStopsEarly) {
  // Search a list for any even number; %cri-finish short-circuits.
  in.eval_program(
      "(defun find-even$cri (l)"
      "  (when l"
      "    (if (evenp (car l))"
      "        (%cri-finish (car l))"
      "        (%cri-enqueue 0 (cdr l)))))");
  Value fn = in.global("find-even$cri");
  CriStats stats =
      rt.run_cri(fn, 1, 3, {sexpr::read_one(ctx, "(1 3 5 8 9 11 13)")});
  EXPECT_TRUE(stats.finished_early);
  EXPECT_EQ(stats.result.as_fixnum(), 8);
  EXPECT_LT(stats.invocations, 8u)
      << "servers must stop before walking the whole list";
}

TEST_F(SearchTest, NoMatchRunsToCompletion) {
  in.eval_program(
      "(defun find-even$cri (l)"
      "  (when l"
      "    (if (evenp (car l))"
      "        (%cri-finish (car l))"
      "        (%cri-enqueue 0 (cdr l)))))");
  Value fn = in.global("find-even$cri");
  CriStats stats =
      rt.run_cri(fn, 1, 3, {sexpr::read_one(ctx, "(1 3 5 7)")});
  EXPECT_FALSE(stats.finished_early);
  EXPECT_TRUE(stats.result.is_nil());
}

TEST_F(SearchTest, FirstFinishWins) {
  // Tree search with two call sites: several servers may match at once;
  // exactly one result must come back and it must satisfy the predicate.
  in.eval_program(
      "(defun find-fix$cri (x)"
      "  (cond ((numberp x) (%cri-finish x))"
      "        ((consp x)"
      "         (%cri-enqueue 0 (car x))"
      "         (%cri-enqueue 1 (cdr x)))))");
  Value fn = in.global("find-fix$cri");
  CriStats stats = rt.run_cri(
      fn, 2, 4, {sexpr::read_one(ctx, "((a (b 1)) (2 c) (d (3)))")});
  EXPECT_TRUE(stats.finished_early);
  EXPECT_TRUE(stats.result.is_fixnum());
  const std::int64_t v = stats.result.as_fixnum();
  EXPECT_TRUE(v == 1 || v == 2 || v == 3) << v;
}

TEST_F(SearchTest, CriRunBuiltinReturnsSearchResult) {
  EXPECT_EQ(sexpr::write_str(in.eval_program(
                "(defun pick$cri (l)"
                "  (when l"
                "    (if (eq (car l) 'hit)"
                "        (%cri-finish 'found)"
                "        (%cri-enqueue 0 (cdr l)))))"
                "(%cri-run pick$cri 1 2 '(a b hit c))")),
            "found");
}

TEST_F(SearchTest, FinishOutsidePoolThrows) {
  EXPECT_THROW(in.eval_program("(%cri-finish 1)"), sexpr::LispError);
}

TEST_F(SearchTest, FinishWithNoValueDeliversNil) {
  in.eval_program(
      "(defun stop$cri (l) (%cri-finish))");
  CriStats stats =
      rt.run_cri(in.global("stop$cri"), 1, 2, {Value::nil()});
  EXPECT_TRUE(stats.finished_early);
  EXPECT_TRUE(stats.result.is_nil());
}

// ---- ordered multi-site queues (§4.1) ----------------------------------

TEST(OrderedQueues, LowerSiteDrainsFirst) {
  OrderedTaskQueues q(3);
  q.push(2, {Value::fixnum(22)});
  q.push(0, {Value::fixnum(1)});
  q.push(1, {Value::fixnum(11)});
  q.push(0, {Value::fixnum(2)});
  EXPECT_EQ((*q.pop())[0].as_fixnum(), 1);
  EXPECT_EQ((*q.pop())[0].as_fixnum(), 2);
  EXPECT_EQ((*q.pop())[0].as_fixnum(), 11);
  EXPECT_EQ((*q.pop())[0].as_fixnum(), 22);
}

TEST(OrderedQueues, CloseWakesWithEmpty) {
  OrderedTaskQueues q(1);
  q.close();
  EXPECT_FALSE(q.pop().has_value());
  EXPECT_TRUE(q.closed());
}

TEST(OrderedQueues, DrainsRemainingAfterClose) {
  OrderedTaskQueues q(1);
  q.push(0, {Value::fixnum(1)});
  q.close();
  // Items already enqueued are still served before the kill token.
  EXPECT_TRUE(q.pop().has_value());
  EXPECT_FALSE(q.pop().has_value());
}

TEST(OrderedQueues, BadSiteThrows) {
  OrderedTaskQueues q(2);
  EXPECT_THROW(q.push(5, {}), sexpr::LispError);
}

TEST(OrderedQueues, MaxLengthHighWaterMark) {
  OrderedTaskQueues q(2);
  q.push(0, {});
  q.push(1, {});
  q.push(1, {});
  (void)q.pop();
  q.push(0, {});
  EXPECT_EQ(q.max_length(), 3u);
}

}  // namespace
}  // namespace curare::runtime
