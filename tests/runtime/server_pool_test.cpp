// CRI server-pool tests: the §4 execution model end-to-end on hand-
// transformed functions (the transform module's output shape).
#include "runtime/server_pool.hpp"

#include <gtest/gtest.h>

#include "runtime/runtime.hpp"
#include "sexpr/printer.hpp"
#include "sexpr/reader.hpp"

namespace curare::runtime {
namespace {

using sexpr::Value;

class ServerPoolTest : public ::testing::Test {
 protected:
  sexpr::Ctx ctx;
  lisp::Interp in{ctx};
  Runtime rt{in, 4};

  void SetUp() override { rt.install(); }

  Value run_src(std::string_view src) { return in.eval_program(src); }
};

TEST_F(ServerPoolTest, SingleSiteTraversalVisitsEveryElement) {
  // Hand-transformed Fig 3: the recursive call became %cri-enqueue.
  run_src(
      "(setq visited 0)"
      "(defun f-cri (l)"
      "  (when l"
      "    (%atomic-incf-var 'visited 1)"
      "    (%cri-enqueue 0 (cdr l))))");
  Value fn = in.global("f-cri");
  std::string list_src = "(";
  for (int i = 0; i < 500; ++i) list_src += std::to_string(i) + " ";
  list_src += ")";
  Value list = sexpr::read_one(ctx, list_src);

  CriStats stats = rt.run_cri(fn, 1, 4, {list});
  EXPECT_EQ(stats.invocations, 501u) << "500 elements + the nil base case";
  EXPECT_EQ(run_src("visited").as_fixnum(), 500);
}

TEST_F(ServerPoolTest, SingleSiteQueueNeverGrows) {
  // §4.1: with one call site the queue never exceeds its initial length
  // (1): each task adds at most one successor.
  run_src("(defun g-cri (l) (when l (%cri-enqueue 0 (cdr l))))");
  Value fn = in.global("g-cri");
  Value list = sexpr::read_one(ctx, "(1 2 3 4 5 6 7 8)");
  CriStats stats = rt.run_cri(fn, 1, 3, {list});
  EXPECT_LE(stats.max_queue_length, 1u + stats.servers)
      << "single-site queues stay near their initial size";
}

TEST_F(ServerPoolTest, MultiSiteTreeRecursionCountsAllNodes) {
  // Binary-tree walk: two call sites, one queue each.
  run_src(
      "(setq nodes 0)"
      "(defun walk-cri (x)"
      "  (when (consp x)"
      "    (%atomic-incf-var 'nodes 1)"
      "    (%cri-enqueue 0 (car x))"
      "    (%cri-enqueue 1 (cdr x))))");
  Value fn = in.global("walk-cri");
  Value tree = sexpr::read_one(ctx, "((1 2) (3 (4 5)) 6)");
  rt.run_cri(fn, 2, 4, {tree});
  // Cons count of the tree: ((1 2)(3 (4 5)) 6) has 9 conses.
  EXPECT_EQ(run_src("nodes").as_fixnum(), 9);
}

TEST_F(ServerPoolTest, ServerCountOneIsSequential) {
  run_src(
      "(setq acc nil)"
      "(defun collect-cri (l)"
      "  (when l (setq acc (cons (car l) acc)) (%cri-enqueue 0 (cdr l))))");
  Value fn = in.global("collect-cri");
  Value list = sexpr::read_one(ctx, "(1 2 3 4 5)");
  rt.run_cri(fn, 1, 1, {list});
  EXPECT_EQ(sexpr::write_str(in.eval_program("acc")), "(5 4 3 2 1)")
      << "one server preserves sequential order exactly";
}

TEST_F(ServerPoolTest, StatsCarryMeasuredAggregates) {
  run_src("(defun m-cri (l) (when l (%cri-enqueue 0 (cdr l))))");
  Value fn = in.global("m-cri");
  Value list = sexpr::read_one(ctx, "(1 2 3 4 5 6 7 8 9 10)");
  CriStats stats = rt.run_cri(fn, 1, 3, {list});

  EXPECT_EQ(stats.invocations, 11u);
  EXPECT_EQ(stats.enqueues, 10u) << "one enqueue per non-nil element";
  EXPECT_GT(stats.wall_ns, 0u);
  ASSERT_EQ(stats.busy_ns.size(), stats.servers);
  ASSERT_EQ(stats.idle_ns.size(), stats.servers);
  ASSERT_EQ(stats.tasks_per_server.size(), stats.servers);
  std::uint64_t tasks = 0;
  for (std::uint64_t n : stats.tasks_per_server) tasks += n;
  EXPECT_EQ(tasks, stats.invocations) << "every task ran on some server";
  EXPECT_GT(stats.busy_ns_total(), 0u);
  EXPECT_LE(stats.head_ns + stats.tail_ns, stats.busy_ns_total())
      << "head/tail split partitions (a subset of) body time";
  EXPECT_GT(stats.utilization(), 0.0);
  EXPECT_LE(stats.utilization(), 1.0);
}

TEST_F(ServerPoolTest, BareCriRunWithoutRecorderStillWorks) {
  // Direct CriRun construction (no Recorder): the old zero-overhead
  // path — measured aggregates stay empty, counts stay exact.
  run_src("(defun b-cri (l) (when l (%cri-enqueue 0 (cdr l))))");
  Value fn = in.global("b-cri");
  CriRun run(in, fn, 1, 2);
  CriStats stats = run.run({sexpr::read_one(ctx, "(1 2 3)")});
  EXPECT_EQ(stats.invocations, 4u);
  EXPECT_EQ(stats.wall_ns, 0u);
  EXPECT_EQ(stats.head_ns, 0u);
}

TEST_F(ServerPoolTest, ErrorsInBodyPropagate) {
  run_src("(defun bad-cri (l) (error \"boom\"))");
  Value fn = in.global("bad-cri");
  EXPECT_THROW(rt.run_cri(fn, 1, 3, {Value::nil()}), sexpr::LispError);
}

TEST_F(ServerPoolTest, RerunSameCriRunAfterAbortedRun) {
  // Regression: a thrown body used to leave pending_ permanently
  // elevated and the queues closed with leftovers; a retry on the same
  // CriRun must start from consistent termination accounting.
  run_src(
      "(setq fail 1)(setq count 0)"
      "(defun flaky-cri (l)"
      "  (when (> fail 0) (error \"boom\"))"
      "  (when l"
      "    (%atomic-incf-var 'count 1)"
      "    (%cri-enqueue 0 (cdr l))))");
  Value fn = in.global("flaky-cri");
  CriRun run(in, fn, 1, 3);
  EXPECT_THROW(run.run({sexpr::read_one(ctx, "(1 2 3)")}),
               sexpr::LispError);
  run_src("(setq fail 0)");
  CriStats stats = run.run({sexpr::read_one(ctx, "(1 2 3)")});
  EXPECT_EQ(stats.invocations, 4u) << "3 elements + the nil base case";
  EXPECT_EQ(run_src("count").as_fixnum(), 3);
  EXPECT_FALSE(stats.finished_early);
}

TEST_F(ServerPoolTest, RunCriAfterAbortedRunCriStaysConsistent) {
  // Same regression through the Runtime facade (fresh CriRun, shared
  // recorder/metrics): an aborted run must not poison the next one.
  run_src("(defun boom-cri (l) (error \"boom\"))");
  EXPECT_THROW(rt.run_cri(in.global("boom-cri"), 1, 3, {Value::nil()}),
               sexpr::LispError);
  run_src(
      "(setq visited2 0)"
      "(defun ok-cri (l)"
      "  (when l (%atomic-incf-var 'visited2 1) (%cri-enqueue 0 (cdr l))))");
  CriStats stats = rt.run_cri(in.global("ok-cri"), 1, 4,
                              {sexpr::read_one(ctx, "(1 2 3 4 5)")});
  EXPECT_EQ(stats.invocations, 6u);
  EXPECT_EQ(run_src("visited2").as_fixnum(), 5);
}

TEST_F(ServerPoolTest, ErrorMidRecursionStopsWithoutHanging) {
  // The error fires mid-flight with successors already queued; the
  // remaining tasks are discarded with exact pending_ accounting (no
  // deadlock waiting on a count that can never reach zero).
  run_src(
      "(defun dies-at-3-cri (n)"
      "  (when (> n 0)"
      "    (%cri-enqueue 0 (- n 1))"
      "    (when (= n 3) (error \"mid-flight\"))))");
  Value fn = in.global("dies-at-3-cri");
  EXPECT_THROW(rt.run_cri(fn, 1, 2, {Value::fixnum(10)}),
               sexpr::LispError);
  // And the pool is reusable afterwards.
  CriStats stats = rt.run_cri(fn, 1, 2, {Value::fixnum(2)});
  EXPECT_EQ(stats.invocations, 3u);
}

TEST_F(ServerPoolTest, EarlyFinishDiscardsRemainingQueuedWork) {
  // Exponential two-site fan-out; %cri-finish fires deep inside. The
  // remaining queue must be discarded, not executed: invocations stay
  // far below the 2^12 the full recursion would run.
  run_src(
      "(defun fan-cri (n)"
      "  (when (> n 0)"
      "    (%cri-enqueue 0 (- n 1))"
      "    (%cri-enqueue 1 (- n 1))"
      "    (when (= n 6) (%cri-finish 'deep))))");
  Value fn = in.global("fan-cri");
  CriStats stats = rt.run_cri(fn, 2, 4, {Value::fixnum(12)});
  EXPECT_TRUE(stats.finished_early);
  EXPECT_EQ(sexpr::write_str(stats.result), "deep");
  EXPECT_LT(stats.invocations, 1u << 12)
      << "servers must discard, not drain-execute, after finish";
}

TEST_F(ServerPoolTest, BatchedDequeueCountsStayExact) {
  // Batch limit > 1: servers take several same-site tasks per scheduler
  // transaction. Counts and termination must be unchanged.
  run_src(
      "(setq bnodes 0)"
      "(defun bwalk-cri (x)"
      "  (when (consp x)"
      "    (%atomic-incf-var 'bnodes 1)"
      "    (%cri-enqueue 0 (car x))"
      "    (%cri-enqueue 1 (cdr x))))");
  Value fn = in.global("bwalk-cri");
  Value tree = sexpr::read_one(
      ctx, "((1 2 3 4) (5 (6 7) 8) (9 10) ((11 12) 13) 14)");
  CriStats stats = rt.run_cri(fn, 2, 4, {tree}, "bwalk", /*batch=*/4);
  EXPECT_EQ(run_src("bnodes").as_fixnum(), 20) << "cons count of the tree";
  EXPECT_EQ(stats.queue.pops, stats.invocations);
  EXPECT_LE(stats.queue.pop_calls, stats.queue.pops)
      << "batching can only amortize, never double-serve";
}

TEST_F(ServerPoolTest, TwoSiteSingleServerDrainsSiteZeroFirst) {
  // §4.1 ordering invariant, deterministic with one server: the server
  // finishes all queued site-0 calls before touching site 1, and new
  // site-0 work pulls it back before site 1 resumes.
  run_src(
      "(setq order nil)"
      "(defun two-cri (tag n)"
      "  (setq order (cons tag order))"
      "  (when (> n 0)"
      "    (%cri-enqueue 0 'a (- n 1))"
      "    (%cri-enqueue 1 'b (- n 1))))");
  Value fn = in.global("two-cri");
  rt.run_cri(fn, 2, 1,
             {sexpr::read_one(ctx, "r"), Value::fixnum(2)});
  EXPECT_EQ(sexpr::write_str(in.eval_program("order")),
            "(b b a b a a r)")
      << "execution order must be r a a b a b b (site 0 before site 1)";
}

TEST_F(ServerPoolTest, QueueStatsExposeSchedulerInternals) {
  run_src("(defun q-cri (l) (when l (%cri-enqueue 0 (cdr l))))");
  Value fn = in.global("q-cri");
  CriStats stats = rt.run_cri(fn, 1, 3,
                              {sexpr::read_one(ctx, "(1 2 3 4 5 6 7 8)")});
  EXPECT_EQ(stats.queue.pushes, stats.invocations)
      << "initial task + every enqueue";
  EXPECT_EQ(stats.queue.pops, stats.invocations);
  EXPECT_EQ(stats.queue.notify_sent + stats.queue.notify_suppressed,
            stats.queue.pushes)
      << "every push either signalled a sleeper or skipped the cv";
}

TEST_F(ServerPoolTest, EnqueueOutsideRunThrows) {
  EXPECT_THROW(run_src("(%cri-enqueue 0 nil)"), sexpr::LispError);
}

TEST_F(ServerPoolTest, CriRunBuiltinFromLisp) {
  run_src(
      "(setq n 0)"
      "(defun h-cri (l)"
      "  (when l (%atomic-incf-var 'n 1) (%cri-enqueue 0 (cdr l))))"
      "(%cri-run h-cri 1 4 '(a b c d e f))");
  EXPECT_EQ(run_src("n").as_fixnum(), 6);
}

TEST_F(ServerPoolTest, BadSiteIndexSurfaces) {
  run_src("(defun s-cri (l) (when l (%cri-enqueue 7 (cdr l))))");
  Value fn = in.global("s-cri");
  EXPECT_THROW(rt.run_cri(fn, 1, 2, {sexpr::read_one(ctx, "(1 2)")}),
               sexpr::LispError);
}

// Parameterized: invocation counting is exact for every server count.
class ServerSweep : public ::testing::TestWithParam<int> {
 protected:
  sexpr::Ctx ctx;
  lisp::Interp in{ctx};
  Runtime rt{in, 2};
};

TEST_P(ServerSweep, InvocationCountIndependentOfS) {
  rt.install();
  in.eval_program(
      "(defun c-cri (l) (when l (%cri-enqueue 0 (cdr l))))");
  Value fn = in.global("c-cri");
  std::string list_src = "(";
  for (int i = 0; i < 100; ++i) list_src += "x ";
  list_src += ")";
  CriStats stats = rt.run_cri(fn, 1, static_cast<std::size_t>(GetParam()),
                              {sexpr::read_one(ctx, list_src)});
  EXPECT_EQ(stats.invocations, 101u);
  EXPECT_EQ(stats.servers, static_cast<std::size_t>(GetParam()));
}

INSTANTIATE_TEST_SUITE_P(ServerCounts, ServerSweep,
                         ::testing::Values(1, 2, 3, 4, 8, 16));

}  // namespace
}  // namespace curare::runtime
