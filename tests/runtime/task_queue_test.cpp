// Scheduler queue tests (paper §4.1): the site-ordering invariant,
// depth accounting, close-while-pushing races, ring-overflow FIFO,
// batched pops, notify throttling, and single-threaded parity with the
// seed single-mutex queue — for both the retired sharded impl (kept as
// a baseline) and the work-stealing deques CriRun actually uses. The
// work-stealing suite adds steal-path exactness, the mailbox-lane and
// desperate-round protocols, and a scan-hint staleness regression for
// the sharded impl. This file is part of runtime_test, which the CI
// TSan job runs — the concurrent cases here are the race detectors'
// workload.
#include "runtime/task_queue.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <atomic>
#include <chrono>
#include <future>
#include <random>
#include <thread>
#include <vector>

#include "runtime/mpmc_ring.hpp"

namespace curare::runtime {
namespace {

using sexpr::Value;

TaskArgs task(std::int64_t v) { return {Value::fixnum(v)}; }

std::int64_t val(const TaskArgs& t) { return t[0].as_fixnum(); }

// ---- MpmcRing unit ------------------------------------------------------

TEST(MpmcRing, FillDrainFifo) {
  MpmcRing<TaskArgs> r(8);
  EXPECT_EQ(r.capacity(), 8u);
  for (int i = 0; i < 8; ++i) EXPECT_TRUE(r.try_push(task(i)));
  TaskArgs rejected = task(99);
  EXPECT_FALSE(r.try_push(std::move(rejected)));
  EXPECT_EQ(val(rejected), 99) << "a failed push must not consume the task";
  TaskArgs t;
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(r.try_pop(t));
    EXPECT_EQ(val(t), i);
  }
  EXPECT_FALSE(r.try_pop(t));
}

TEST(MpmcRing, CapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(MpmcRing<int>(1).capacity(), 2u);
  EXPECT_EQ(MpmcRing<int>(5).capacity(), 8u);
  EXPECT_EQ(MpmcRing<int>(64).capacity(), 64u);
}

TEST(MpmcRing, ConcurrentSumExact) {
  // Small capacity so producers hit full and consumers hit empty often.
  MpmcRing<TaskArgs> r(64);
  constexpr int kProducers = 4, kConsumers = 4, kPer = 20000;
  constexpr long kTotal = static_cast<long>(kProducers) * kPer;
  std::atomic<long> sum{0};
  std::atomic<long> taken{0};
  std::vector<std::thread> ts;
  for (int p = 0; p < kProducers; ++p) {
    ts.emplace_back([&r, p] {
      for (int i = 0; i < kPer; ++i) {
        TaskArgs t = task(static_cast<long>(p) * kPer + i);
        while (!r.try_push(std::move(t))) std::this_thread::yield();
      }
    });
  }
  for (int c = 0; c < kConsumers; ++c) {
    ts.emplace_back([&] {
      TaskArgs t;
      while (taken.load(std::memory_order_relaxed) < kTotal) {
        if (r.try_pop(t)) {
          sum.fetch_add(val(t), std::memory_order_relaxed);
          taken.fetch_add(1, std::memory_order_relaxed);
        } else {
          std::this_thread::yield();
        }
      }
    });
  }
  for (auto& th : ts) th.join();
  EXPECT_EQ(taken.load(), kTotal);
  EXPECT_EQ(sum.load(), kTotal * (kTotal - 1) / 2)
      << "every pushed task popped exactly once";
}

// ---- site-ordering invariant (§4.1) -------------------------------------

// Single consumer, interleaved pushes: the sharded queue must produce
// exactly the order the seed single-mutex queue produced. Tiny rings
// force the spill path into the comparison too.
TEST(ShardedQueues, SingleConsumerOrderMatchesSingleMutexQueue) {
  ShardedTaskQueues nq(3, /*ring_capacity=*/4);
  SingleMutexTaskQueues lq(3);
  std::mt19937 rng(42);
  long next = 0, queued = 0;
  for (int step = 0; step < 4000; ++step) {
    if (queued == 0 || rng() % 3 != 0) {
      const std::size_t site = rng() % 3;
      nq.push(site, task(next));
      lq.push(site, task(next));
      ++next;
      ++queued;
    } else {
      std::size_t ns = 7, ls = 7;
      auto a = nq.pop(&ns);
      auto b = lq.pop(&ls);
      ASSERT_TRUE(a.has_value() && b.has_value());
      ASSERT_EQ(val(*a), val(*b)) << "at step " << step;
      ASSERT_EQ(ns, ls);
      --queued;
    }
  }
  nq.close();
  lq.close();
  for (;;) {
    auto a = nq.pop();
    auto b = lq.pop();
    ASSERT_EQ(a.has_value(), b.has_value());
    if (!a) break;
    ASSERT_EQ(val(*a), val(*b));
  }
}

TEST(ShardedQueues, NewLowSiteWorkPreemptsRemainingHighSite) {
  // After the consumer has moved on to site 1, fresh site-0 work must
  // be served before the rest of site 1 (the scan hint re-lowers).
  ShardedTaskQueues q(2);
  q.push(1, task(10));
  q.push(1, task(11));
  q.push(0, task(0));
  std::size_t site = 9;
  EXPECT_EQ(val(*q.pop(&site)), 0);
  EXPECT_EQ(site, 0u);
  EXPECT_EQ(val(*q.pop(&site)), 10);
  EXPECT_EQ(site, 1u);
  q.push(0, task(1));  // arrives while hint sits at site 1
  EXPECT_EQ(val(*q.pop(&site)), 1) << "site 0 drains before site 1 resumes";
  EXPECT_EQ(site, 0u);
  EXPECT_EQ(val(*q.pop(&site)), 11);
  EXPECT_EQ(site, 1u);
}

// ---- O(1) depth counter -------------------------------------------------

TEST(ShardedQueues, PushReturnsDepthSample) {
  ShardedTaskQueues q(2);
  EXPECT_EQ(q.push(0, task(1)), 1u);
  EXPECT_EQ(q.push(1, task(2)), 2u);
  EXPECT_EQ(q.push(0, task(3)), 3u);
  EXPECT_EQ(q.depth(), 3u);
  (void)q.pop();
  EXPECT_EQ(q.depth(), 2u);
  EXPECT_EQ(q.push(0, task(4)), 3u);
  EXPECT_EQ(q.max_length(), 3u);
}

TEST(ShardedQueues, DepthCounterExactUnderConcurrency) {
  ShardedTaskQueues q(4, /*ring_capacity=*/16);
  constexpr int kPushers = 4, kPer = 5000;
  constexpr long kTotal = static_cast<long>(kPushers) * kPer;
  std::atomic<long> popped{0};
  std::vector<std::thread> ts;
  for (int p = 0; p < kPushers; ++p) {
    ts.emplace_back([&q, p] {
      for (int i = 0; i < kPer; ++i)
        q.push(static_cast<std::size_t>(i % 4), task(p));
    });
  }
  std::vector<std::thread> poppers;
  for (int c = 0; c < 2; ++c) {
    poppers.emplace_back([&] {
      while (q.pop()) popped.fetch_add(1, std::memory_order_relaxed);
    });
  }
  for (auto& th : ts) th.join();
  while (popped.load() < kTotal) std::this_thread::yield();
  q.close();
  for (auto& th : poppers) th.join();
  EXPECT_EQ(popped.load(), kTotal);
  EXPECT_EQ(q.depth(), 0u);
  const QueueStats st = q.stats();
  EXPECT_EQ(st.pushes, static_cast<std::uint64_t>(kTotal));
  EXPECT_EQ(st.pops, static_cast<std::uint64_t>(kTotal));
  EXPECT_GE(q.max_length(), 1u);
  EXPECT_LE(q.max_length(), static_cast<std::size_t>(kTotal));
}

// ---- close / termination ------------------------------------------------

TEST(ShardedQueues, CloseWakesWithEmpty) {
  ShardedTaskQueues q(1);
  q.close();
  EXPECT_FALSE(q.pop().has_value());
  EXPECT_TRUE(q.closed());
}

TEST(ShardedQueues, DrainsRemainingAfterClose) {
  ShardedTaskQueues q(1);
  q.push(0, task(1));
  q.close();
  EXPECT_TRUE(q.pop().has_value());
  EXPECT_FALSE(q.pop().has_value());
}

TEST(ShardedQueues, CloseWhilePushingTerminates) {
  // The race the kill-token protocol must survive: producers mid-push
  // while close() fires and consumers drain. Run several rounds; the
  // assertions are liveness (every thread joins) and counter sanity —
  // TSan checks the rest.
  for (int round = 0; round < 10; ++round) {
    ShardedTaskQueues q(2, /*ring_capacity=*/8);
    std::atomic<bool> stop{false};
    std::atomic<long> pushed{0}, popped{0};
    std::vector<std::thread> ts;
    for (int p = 0; p < 2; ++p) {
      ts.emplace_back([&, p] {
        for (long i = 0; !stop.load(std::memory_order_relaxed); ++i) {
          q.push(static_cast<std::size_t>((i + p) % 2), task(i));
          pushed.fetch_add(1, std::memory_order_relaxed);
        }
      });
    }
    for (int c = 0; c < 2; ++c) {
      ts.emplace_back([&] {
        while (q.pop()) popped.fetch_add(1, std::memory_order_relaxed);
      });
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    q.close();
    stop.store(true, std::memory_order_relaxed);
    for (auto& th : ts) th.join();
    EXPECT_LE(popped.load(), pushed.load());
  }
}

TEST(ShardedQueues, ReopenServesAgainWithFreshStats) {
  ShardedTaskQueues q(2);
  q.push(0, task(1));
  q.push(1, task(2));
  q.close();
  EXPECT_TRUE(q.pop().has_value());
  q.reopen();  // drops the un-popped leftover
  EXPECT_FALSE(q.closed());
  EXPECT_EQ(q.depth(), 0u);
  EXPECT_EQ(q.stats().pushes, 0u);
  EXPECT_EQ(q.max_length(), 0u);
  EXPECT_EQ(q.push(0, task(7)), 1u);
  EXPECT_EQ(val(*q.pop()), 7);
  q.close();
  EXPECT_FALSE(q.pop().has_value());
}

TEST(ShardedQueues, BadSiteThrows) {
  ShardedTaskQueues q(2);
  EXPECT_THROW(q.push(5, {}), sexpr::LispError);
}

// ---- ring overflow / spill ----------------------------------------------

TEST(ShardedQueues, SpillOverflowPreservesFifo) {
  ShardedTaskQueues q(1, /*ring_capacity=*/4);
  const int kN = 100;
  for (int i = 0; i < kN; ++i) q.push(0, task(i));
  EXPECT_GT(q.stats().spill_pushes, 0u) << "overflow must hit the spill";
  EXPECT_EQ(q.depth(), static_cast<std::size_t>(kN));
  for (int i = 0; i < kN; ++i) {
    auto t = q.pop();
    ASSERT_TRUE(t.has_value());
    EXPECT_EQ(val(*t), i) << "FIFO across ring→spill→refill boundaries";
  }
  q.close();
  EXPECT_FALSE(q.pop().has_value());
}

// ---- batched pops -------------------------------------------------------

TEST(ShardedQueues, BatchPopStaysWithinOneSiteInOrder) {
  ShardedTaskQueues q(2);
  for (int i = 0; i < 5; ++i) q.push(0, task(i));
  for (int i = 10; i < 13; ++i) q.push(1, task(i));

  std::vector<TaskArgs> out;
  std::size_t site = 9;
  EXPECT_EQ(q.pop_some(out, 4, &site), 4u);
  EXPECT_EQ(site, 0u);
  ASSERT_EQ(out.size(), 4u);
  for (int i = 0; i < 4; ++i) EXPECT_EQ(val(out[i]), i);

  out.clear();
  EXPECT_EQ(q.pop_some(out, 4, &site), 1u)
      << "a batch never spans sites: the site-0 remainder comes alone";
  EXPECT_EQ(site, 0u);
  EXPECT_EQ(val(out[0]), 4);

  out.clear();
  EXPECT_EQ(q.pop_some(out, 4, &site), 3u);
  EXPECT_EQ(site, 1u);
  for (int i = 0; i < 3; ++i) EXPECT_EQ(val(out[i]), 10 + i);

  q.close();
  out.clear();
  EXPECT_EQ(q.pop_some(out, 4, &site), 0u) << "kill token";
}

// ---- notify throttling --------------------------------------------------

// ---- scan-hint staleness (regression) -----------------------------------

// The packed hint/depth word used to be re-raised from a stale local
// copy: a consumer finishing a site-1 pop could overwrite a concurrent
// site-0 push's lowered hint, leaving site-0 work shadowed until the
// next site-1 pop. Soak the packed word with a concurrent producer,
// then drain deterministically: at quiescence every pop must come from
// the lowest nonempty site, and each site must replay in FIFO order.
TEST(ShardedQueues, ScanHintSoakServesLowestSiteAtQuiescence) {
  for (int round = 0; round < 20; ++round) {
    ShardedTaskQueues q(3, /*ring_capacity=*/8);
    constexpr int kPer = 300;
    std::thread producer([&q] {
      std::mt19937 rng(1234);
      for (int i = 0; i < kPer; ++i)
        q.push(rng() % 3, task(i));
    });
    // Concurrent pops keep the hint moving across sites mid-push.
    std::array<long, 3> next_from_site{-1, -1, -1};
    int taken = 0;
    for (int i = 0; i < kPer / 2; ++i) {
      std::size_t site = 9;
      auto t = q.pop(&site);
      ASSERT_TRUE(t.has_value());
      ASSERT_LT(site, 3u);
      EXPECT_GT(val(*t), next_from_site[site]) << "per-site FIFO broke";
      next_from_site[site] = val(*t);
      ++taken;
    }
    producer.join();
    // Quiescent drain: reconstruct per-site pending counts, then check
    // the lowest-nonempty-site rule on every remaining pop.
    std::array<long, 3> pending{0, 0, 0};
    {
      std::mt19937 rng(1234);
      std::array<std::vector<long>, 3> pushed;
      for (int i = 0; i < kPer; ++i) pushed[rng() % 3].push_back(i);
      for (int s = 0; s < 3; ++s) {
        long already = 0;
        for (long v : pushed[s])
          if (v <= next_from_site[s]) ++already;
        pending[s] = static_cast<long>(pushed[s].size()) - already;
      }
    }
    while (taken < kPer) {
      std::size_t site = 9;
      auto t = q.pop(&site);
      ASSERT_TRUE(t.has_value());
      ASSERT_LT(site, 3u);
      for (std::size_t lower = 0; lower < site; ++lower)
        EXPECT_EQ(pending[lower], 0)
            << "site " << site << " served while site " << lower
            << " still had " << pending[lower] << " task(s) (stale hint)";
      EXPECT_GT(val(*t), next_from_site[site]);
      next_from_site[site] = val(*t);
      --pending[site];
      ++taken;
    }
    q.close();
    EXPECT_FALSE(q.pop().has_value());
  }
}

TEST(ShardedQueues, NotifySkippedWithoutSleeperSentWithOne) {
  ShardedTaskQueues q(1);
  q.push(0, task(1));  // nobody asleep: cv untouched
  EXPECT_EQ(q.stats().notify_suppressed, 1u);
  EXPECT_EQ(q.stats().notify_sent, 0u);
  (void)q.pop();

  std::thread popper([&q] { (void)q.pop(); });
  // Wait for the popper to actually block.
  while (q.stats().sleeps < 1) std::this_thread::yield();
  q.push(0, task(2));  // must pay the cv now
  popper.join();
  EXPECT_EQ(q.stats().notify_sent, 1u);
  EXPECT_EQ(q.stats().notify_suppressed, 1u);
  q.close();
}

// ---- work-stealing deques (the CriRun scheduler) ------------------------

// Single-threaded, every task lives in one lane: the deque scheduler
// must reproduce the seed queue's order exactly (FIFO per site, lowest
// site first), spill path included.
TEST(WorkStealingQueues, SingleConsumerOrderMatchesSingleMutexQueue) {
  WorkStealingTaskQueues nq(3, /*workers=*/1, /*ring_capacity=*/4);
  SingleMutexTaskQueues lq(3);
  std::mt19937 rng(42);
  long next = 0, queued = 0;
  for (int step = 0; step < 4000; ++step) {
    if (queued == 0 || rng() % 3 != 0) {
      const std::size_t site = rng() % 3;
      nq.push(site, task(next));
      lq.push(site, task(next));
      ++next;
      ++queued;
    } else {
      std::size_t ns = 7, ls = 7;
      auto a = nq.pop(&ns);
      auto b = lq.pop(&ls);
      ASSERT_TRUE(a.has_value() && b.has_value());
      ASSERT_EQ(val(*a), val(*b)) << "at step " << step;
      ASSERT_EQ(ns, ls);
      --queued;
    }
  }
  nq.close();
  lq.close();
  for (;;) {
    auto a = nq.pop();
    auto b = lq.pop();
    ASSERT_EQ(a.has_value(), b.has_value());
    if (!a) break;
    ASSERT_EQ(val(*a), val(*b));
  }
}

TEST(WorkStealingQueues, PushReturnsLaneDepthSample) {
  WorkStealingTaskQueues q(2);
  EXPECT_EQ(q.push(0, task(1)), 1u);
  EXPECT_EQ(q.push(1, task(2)), 2u);
  EXPECT_EQ(q.push(0, task(3)), 3u);
  EXPECT_EQ(q.depth(), 3u);
  (void)q.pop();
  EXPECT_EQ(q.depth(), 2u);
  EXPECT_EQ(q.push(0, task(4)), 3u);
  EXPECT_EQ(q.max_length(), 3u);
}

// A producer that never pops (the seeding caller, a serve dispatcher)
// leaves a "mailbox" lane; every one of its tasks must be stolen. With
// each worker owning a distinct lane, all takes are cross-lane steals
// and the steal counter must account for every task exactly.
TEST(WorkStealingQueues, MailboxProducerWorkIsStolenAndServed) {
  WorkStealingTaskQueues q(1, /*workers=*/5, /*ring_capacity=*/16);
  constexpr long kN = 2000;
  std::atomic<long> sum{0}, served{0};
  for (long i = 0; i < kN; ++i) q.push(0, task(i));  // main claims lane 0
  std::vector<std::thread> ts;
  for (int t = 0; t < 4; ++t) {
    ts.emplace_back([&] {
      while (auto got = q.pop()) {
        sum.fetch_add(val(*got), std::memory_order_relaxed);
        served.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  while (served.load(std::memory_order_relaxed) < kN)
    std::this_thread::yield();
  q.close();
  for (auto& th : ts) th.join();
  EXPECT_EQ(served.load(), kN);
  EXPECT_EQ(sum.load(), kN * (kN - 1) / 2) << "each task served exactly once";
  const QueueStats st = q.stats();
  EXPECT_EQ(st.pushes, static_cast<std::uint64_t>(kN));
  EXPECT_EQ(st.pops, static_cast<std::uint64_t>(kN));
  EXPECT_EQ(st.steals, static_cast<std::uint64_t>(kN))
      << "every take from the mailbox lane is a steal";
  EXPECT_EQ(q.depth(), 0u);
}

// Liveness backstop for the wake throttle + steal-affinity rule: a
// consuming owner's single parked task is deliberately not offered to
// thieves (no notify, no spin-phase steal), but a sleeping thief's
// desperate round must still rescue it once the owner stalls.
TEST(WorkStealingQueues, DesperateRoundRescuesParkedDepthOneTask) {
  WorkStealingTaskQueues q(1, /*workers=*/2);
  std::promise<void> release;
  std::shared_future<void> gate(release.get_future());
  std::atomic<bool> parked{false};
  std::thread owner([&] {
    q.push(0, task(1));
    (void)q.pop();  // marks this lane's owner as consuming
    q.push(0, task(2));  // depth-1: throttled, no handshake
    parked.store(true, std::memory_order_release);
    gate.wait();  // stall without ever popping again
  });
  while (!parked.load(std::memory_order_acquire)) std::this_thread::yield();
  std::optional<TaskArgs> stolen = q.pop();  // must not block forever
  ASSERT_TRUE(stolen.has_value());
  EXPECT_EQ(val(*stolen), 2);
  EXPECT_GE(q.stats().steals, 1u);
  release.set_value();
  owner.join();
  q.close();
  EXPECT_FALSE(q.pop().has_value());
}

TEST(WorkStealingQueues, DepthAndStatsExactAtQuiescence) {
  WorkStealingTaskQueues q(4, /*workers=*/4, /*ring_capacity=*/16);
  constexpr int kPushers = 4, kPer = 5000;
  constexpr long kTotal = static_cast<long>(kPushers) * kPer;
  std::atomic<long> popped{0};
  std::vector<std::thread> ts;
  for (int p = 0; p < kPushers; ++p) {
    ts.emplace_back([&q, p] {
      for (int i = 0; i < kPer; ++i)
        q.push(static_cast<std::size_t>(i % 4), task(p));
    });
  }
  std::vector<std::thread> poppers;
  for (int c = 0; c < 2; ++c) {
    poppers.emplace_back([&] {
      while (q.pop()) popped.fetch_add(1, std::memory_order_relaxed);
    });
  }
  for (auto& th : ts) th.join();
  while (popped.load() < kTotal) std::this_thread::yield();
  q.close();
  for (auto& th : poppers) th.join();
  EXPECT_EQ(popped.load(), kTotal);
  EXPECT_EQ(q.depth(), 0u);
  const QueueStats st = q.stats();
  EXPECT_EQ(st.pushes, static_cast<std::uint64_t>(kTotal));
  EXPECT_EQ(st.pops, static_cast<std::uint64_t>(kTotal));
  EXPECT_GE(q.max_length(), 1u);
}

TEST(WorkStealingQueues, CloseWakesWithEmpty) {
  WorkStealingTaskQueues q(1);
  q.close();
  EXPECT_FALSE(q.pop().has_value());
  EXPECT_TRUE(q.closed());
}

TEST(WorkStealingQueues, DrainsRemainingAfterCloseFromAnotherThread) {
  WorkStealingTaskQueues q(1, /*workers=*/2);
  q.push(0, task(1));  // main's lane
  q.close();
  std::optional<TaskArgs> got;
  std::thread t([&] { got = q.pop(); });  // cross-lane post-close drain
  t.join();
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(val(*got), 1);
  EXPECT_FALSE(q.pop().has_value());
}

TEST(WorkStealingQueues, CloseWhilePushingTerminates) {
  for (int round = 0; round < 10; ++round) {
    WorkStealingTaskQueues q(2, /*workers=*/4, /*ring_capacity=*/8);
    std::atomic<bool> stop{false};
    std::atomic<long> pushed{0}, popped{0};
    std::vector<std::thread> ts;
    for (int p = 0; p < 2; ++p) {
      ts.emplace_back([&, p] {
        for (long i = 0; !stop.load(std::memory_order_relaxed); ++i) {
          q.push(static_cast<std::size_t>((i + p) % 2), task(i));
          pushed.fetch_add(1, std::memory_order_relaxed);
        }
      });
    }
    for (int c = 0; c < 2; ++c) {
      ts.emplace_back([&] {
        while (q.pop()) popped.fetch_add(1, std::memory_order_relaxed);
      });
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    q.close();
    stop.store(true, std::memory_order_relaxed);
    for (auto& th : ts) th.join();
    EXPECT_LE(popped.load(), pushed.load());
  }
}

TEST(WorkStealingQueues, ReopenServesAgainWithFreshStats) {
  WorkStealingTaskQueues q(2);
  q.push(0, task(1));
  q.push(1, task(2));
  q.close();
  EXPECT_TRUE(q.pop().has_value());
  q.reopen();  // drops the un-popped leftover, revokes lane claims
  EXPECT_FALSE(q.closed());
  EXPECT_EQ(q.depth(), 0u);
  EXPECT_EQ(q.stats().pushes, 0u);
  EXPECT_EQ(q.stats().steals, 0u);
  EXPECT_EQ(q.max_length(), 0u);
  EXPECT_EQ(q.push(0, task(7)), 1u);
  EXPECT_EQ(val(*q.pop()), 7);
  q.close();
  EXPECT_FALSE(q.pop().has_value());
}

TEST(WorkStealingQueues, BadSiteThrows) {
  WorkStealingTaskQueues q(2);
  EXPECT_THROW(q.push(5, {}), sexpr::LispError);
}

TEST(WorkStealingQueues, SpillOverflowPreservesFifo) {
  WorkStealingTaskQueues q(1, /*workers=*/1, /*ring_capacity=*/4);
  const int kN = 100;
  for (int i = 0; i < kN; ++i) q.push(0, task(i));
  EXPECT_GT(q.stats().spill_pushes, 0u) << "overflow must hit the spill";
  EXPECT_EQ(q.depth(), static_cast<std::size_t>(kN));
  for (int i = 0; i < kN; ++i) {
    auto t = q.pop();
    ASSERT_TRUE(t.has_value());
    EXPECT_EQ(val(*t), i) << "FIFO across ring→spill→refill boundaries";
  }
  q.close();
  EXPECT_FALSE(q.pop().has_value());
}

TEST(WorkStealingQueues, BatchPopStaysWithinOneSiteInOrder) {
  WorkStealingTaskQueues q(2);
  for (int i = 0; i < 5; ++i) q.push(0, task(i));
  for (int i = 10; i < 13; ++i) q.push(1, task(i));

  std::vector<TaskArgs> out;
  std::size_t site = 9;
  EXPECT_EQ(q.pop_some(out, 4, &site), 4u);
  EXPECT_EQ(site, 0u);
  ASSERT_EQ(out.size(), 4u);
  for (int i = 0; i < 4; ++i) EXPECT_EQ(val(out[i]), i);

  out.clear();
  EXPECT_EQ(q.pop_some(out, 4, &site), 1u)
      << "a batch never spans sites: the site-0 remainder comes alone";
  EXPECT_EQ(site, 0u);
  EXPECT_EQ(val(out[0]), 4);

  out.clear();
  EXPECT_EQ(q.pop_some(out, 4, &site), 3u);
  EXPECT_EQ(site, 1u);
  for (int i = 0; i < 3; ++i) EXPECT_EQ(val(out[i]), 10 + i);

  q.close();
  out.clear();
  EXPECT_EQ(q.pop_some(out, 4, &site), 0u) << "kill token";
}

// Mixed producers/consumers across more threads than lanes: exercises
// lane sharing, foreign spills, steals and the sleeper handshake all
// at once. This is the TSan workload for the steal path; the visible
// assertion is exactness (no task lost or double-served).
TEST(WorkStealingQueues, ConcurrentMixedStealSumExact) {
  // Three dedicated producers race three dedicated consumers over three
  // lanes. Whichever threads touch the queue first claim lane ownership,
  // so across runs this covers both shapes: producer-owned lanes (owner
  // fast-path pushes, consumers steal everything) and consumer-owned
  // lanes (producers spill foreign, owners drain their mailboxes).
  // Producers never pop, so every push takes the full wake handshake
  // and a consumer blocked on an empty queue is always woken — either
  // by a remaining push or by the final close().
  WorkStealingTaskQueues q(2, /*workers=*/3, /*ring_capacity=*/8);
  constexpr int kProducers = 3, kPer = 8000;
  constexpr long kTotal = static_cast<long>(kProducers) * kPer;
  std::atomic<long> sum{0}, served{0};
  std::vector<std::thread> ts;
  for (int t = 0; t < kProducers; ++t) {
    ts.emplace_back([&, t] {
      std::mt19937 rng(static_cast<unsigned>(t) * 7919 + 1);
      for (long i = 0; i < kPer; ++i)
        q.push(rng() % 2, task(static_cast<long>(t) * kPer + i));
    });
  }
  for (int t = 0; t < kProducers; ++t) {
    ts.emplace_back([&] {
      for (;;) {
        auto got = q.pop();
        if (!got) break;
        sum.fetch_add(val(*got), std::memory_order_relaxed);
        if (served.fetch_add(1, std::memory_order_relaxed) + 1 == kTotal)
          q.close();
      }
    });
  }
  for (auto& th : ts) th.join();
  EXPECT_EQ(served.load(), kTotal);
  EXPECT_EQ(sum.load(), kTotal * (kTotal - 1) / 2);
  EXPECT_EQ(q.depth(), 0u);
  const QueueStats st = q.stats();
  EXPECT_EQ(st.pushes, static_cast<std::uint64_t>(kTotal));
  EXPECT_EQ(st.pops, static_cast<std::uint64_t>(kTotal));
}

}  // namespace
}  // namespace curare::runtime
