// Resilience-layer tests (DESIGN.md §10): deadlines and cancellation,
// the stall watchdog, abort-then-re-run, pool-shutdown touch behavior,
// and the deterministic fault-injection soak.
#include "runtime/resilience.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>

#include "runtime/fault_injector.hpp"
#include "runtime/future_pool.hpp"
#include "runtime/runtime.hpp"
#include "runtime/server_pool.hpp"
#include "sexpr/printer.hpp"
#include "sexpr/reader.hpp"

namespace curare::runtime {
namespace {

using sexpr::Value;

class ResilienceTest : public ::testing::Test {
 protected:
  sexpr::Ctx ctx;
  lisp::Interp in{ctx};
  Runtime rt{in, 2};

  void SetUp() override { rt.install(); }
  void TearDown() override {
    // A test that aborted mid-acquisition may leave Lisp-level holds;
    // never leak them into the next test body.
    FaultInjector::instance().disable();
    rt.locks().reset();
  }

  Value run_src(std::string_view src) { return in.eval_program(src); }
};

TEST_F(ResilienceTest, DeadlineAbortsInfiniteReEnqueue) {
  // Each task re-enqueues itself while stop-flag is 0: the recursion
  // never terminates, but every body completes — only the deadline
  // (not the watchdog) can end this run.
  run_src(
      "(setq stop-flag 0)"
      "(defun spin-cri (i)"
      "  (if (> stop-flag 0) nil (%cri-enqueue 0 i)))");
  Value fn = in.global("spin-cri");

  CriRun run(in, fn, 1, 2);
  ResilienceConfig rc;
  rc.deadline_ms = 150;
  run.set_resilience(rc);

  const auto t0 = std::chrono::steady_clock::now();
  try {
    run.run({Value::fixnum(0)});
    FAIL() << "an infinite re-enqueue loop must not terminate normally";
  } catch (const StallError& e) {
    EXPECT_NE(std::string(e.what()).find("deadline"), std::string::npos)
        << e.what();
    EXPECT_NE(e.dump().find("pending tasks"), std::string::npos)
        << "dump should carry run state, got: " << e.dump();
  }
  const auto elapsed = std::chrono::steady_clock::now() - t0;
  EXPECT_LT(elapsed, std::chrono::seconds(10))
      << "abort must be prompt, not an eventual timeout";

  // The aborted CriRun stays re-runnable, exactly like a body throw.
  run_src("(setq stop-flag 1)");
  CriStats stats = run.run({Value::fixnum(0)});
  EXPECT_EQ(stats.invocations, 1u);
}

TEST_F(ResilienceTest, DeadlineAbortsBusyInfiniteRecursion) {
  // Infinite *tail* recursion inside one body: the server never
  // finishes a task and never blocks, so only the eval loop's
  // cancellation poll can observe the token.
  run_src(
      "(defun rec-loop (n) (rec-loop (+ n 1)))"
      "(defun busy-cri (i) (rec-loop 0))");
  Value fn = in.global("busy-cri");

  rt.set_deadline_ms(150);
  EXPECT_THROW(rt.run_cri(fn, 1, 2, {Value::fixnum(0)}), StallError);
  rt.set_deadline_ms(0);
  EXPECT_GE(rt.obs().metrics.counter("cri.aborts").get(), 1u);
}

TEST_F(ResilienceTest, WatchdogFiresOnDeadlockedLockProgram) {
  // The main thread holds an exclusive variable lock; every server
  // blocks acquiring it. Tasks start but never complete, which is
  // precisely the watchdog's signal.
  run_src(
      "(defun stuck-cri (i)"
      "  (%lock-var 'wd-shared)"
      "  (%unlock-var 'wd-shared))");
  Value fn = in.global("stuck-cri");
  run_src("(%lock-var 'wd-shared)");

  CriRun run(in, fn, 1, 2);
  ResilienceConfig rc;
  rc.stall_ms = 150;
  rc.watchdog = &rt.watchdog();
  rc.extra_dump = [this] { return rt.locks().dump_held(); };
  run.set_resilience(rc);

  const std::uint64_t stalls_before = rt.watchdog().stalls_detected();
  try {
    run.run({Value::fixnum(0)});
    FAIL() << "a deadlocked lock program must not terminate normally";
  } catch (const StallError& e) {
    EXPECT_NE(std::string(e.what()).find("watchdog"), std::string::npos)
        << e.what();
    EXPECT_NE(e.dump().find("held locks"), std::string::npos)
        << "dump should include the lock table, got: " << e.dump();
    EXPECT_NE(e.dump().find("wd-shared"), std::string::npos)
        << "dump should name the deadlocked location, got: " << e.dump();
  }
  EXPECT_GE(rt.watchdog().stalls_detected(), stalls_before + 1);

  // Release the lock; the same CriRun object re-runs to completion.
  run_src("(%unlock-var 'wd-shared)");
  CriStats stats = run.run({Value::fixnum(0)});
  EXPECT_EQ(stats.invocations, 1u);
}

TEST_F(ResilienceTest, WatchdogDisarmedWhenInitialPushThrows) {
  // Regression: CriRun::run armed the watchdog before the initial
  // queue push, and a push that threw (the kQueuePush fault here)
  // unwound past the disarm — the leaked entry then called progress()
  // and dump_state() on the destroyed CriRun.
  run_src("(defun noop-cri (i) nil)");
  Value fn = in.global("noop-cri");
  const std::uint64_t stalls_before = rt.watchdog().stalls_detected();
  {
    CriRun run(in, fn, 1, 2);
    ResilienceConfig rc;
    rc.stall_ms = 50;
    rc.watchdog = &rt.watchdog();
    run.set_resilience(rc);
    FaultInjector::instance().configure(7, 1.0, FaultInjector::kThrow);
    EXPECT_THROW(run.run({Value::fixnum(0)}), sexpr::LispError);
    FaultInjector::instance().disable();
  }  // CriRun gone: a leaked entry would now watch freed memory
  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  EXPECT_EQ(rt.watchdog().stalls_detected(), stalls_before)
      << "a watchdog entry survived an aborted run";
}

TEST_F(ResilienceTest, WatchdogDisarmWaitsForInFlightFire) {
  // Regression: disarm() used to only erase the entry, so a run that
  // finished right at the stall boundary could destroy the CriRun
  // while the watchdog was still inside dump_fn.
  Watchdog wd;
  auto tok = std::make_shared<CancelState>();
  std::atomic<bool> in_dump{false};
  std::atomic<bool> release_dump{false};
  tok->dump_fn = [&] {
    in_dump.store(true);
    while (!release_dump.load()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    return std::string("dump");
  };
  const std::uint64_t id =
      wd.arm(tok, [] { return std::uint64_t{0}; },
             std::chrono::milliseconds(20), "stuck");
  while (!in_dump.load()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  std::atomic<bool> disarmed{false};
  std::thread d([&] {
    wd.disarm(id);
    disarmed.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(disarmed.load())
      << "disarm returned while the dump was still running";
  release_dump.store(true);
  d.join();
  EXPECT_TRUE(tok->cancelled());
  EXPECT_EQ(wd.stalls_detected(), 1u);
}

TEST_F(ResilienceTest, TouchHonorsCancelDeadline) {
  // An orphan state nobody will ever resolve: without the resilience
  // layer, touch would block forever.
  auto orphan = std::make_shared<FutureState>();
  CancelState tok;
  tok.set_deadline_ms(100);
  CancelScope scope(&tok);
  EXPECT_THROW(rt.futures().touch(orphan), StallError);
}

TEST_F(ResilienceTest, AbortWaitersWakesBlockedTouch) {
  auto orphan = std::make_shared<FutureState>();
  std::thread aborter([this] {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    rt.futures().abort_waiters();
  });
  // The orphan never registered with the pool, so the wake arrives via
  // the bounded wait slice rather than a notify — still bounded.
  EXPECT_THROW(rt.futures().touch(orphan), sexpr::LispError);
  aborter.join();
}

TEST_F(ResilienceTest, LockWaitBudgetProducesDiagnosticDump) {
  run_src("(%lock-var 'budget-loc)");
  rt.locks().set_wait_budget_ms(80);
  std::string dump;
  std::thread contender([this, &dump] {
    try {
      rt.locks().lock(
          LocKey{ctx.symbols.intern("budget-loc"), nullptr}, true);
      ADD_FAILURE() << "the budgeted wait must throw, not acquire";
    } catch (const StallError& e) {
      dump = e.dump();
    }
  });
  contender.join();
  rt.locks().set_wait_budget_ms(0);
  EXPECT_NE(dump.find("budget-loc"), std::string::npos)
      << "dump should name the held location, got: " << dump;
  run_src("(%unlock-var 'budget-loc)");
}

TEST_F(ResilienceTest, ChaosSoakIsDeterministicallySurvivable) {
  // Fixed seeds × {delay, throw} over a workload that visits all five
  // fault sites: cons allocation (gc.alloc), %atomic-incf-var
  // (lock.acquire), %cri-enqueue (queue.push), future/touch
  // (future.spawn, task.run). Injected throws abort runs like any
  // body error; the invariant under test is that nothing hangs, leaks
  // a lock the reset can't clear, or corrupts the runtime for the
  // clean run at the end.
  run_src(
      "(setq chaos-count 0)"
      "(defun chaos-cri (l)"
      "  (when l"
      "    (%atomic-incf-var 'chaos-count 1)"
      "    (cons (car l) (touch (future (car l))))"
      "    (%cri-enqueue 0 (cdr l))))");
  Value fn = in.global("chaos-cri");

  gc::GcHeap& gc = ctx.heap.gc();
  gc::RootScope roots(gc);
  Value list;
  {
    gc::MutatorScope ms(gc);
    std::string src = "(";
    for (int i = 0; i < 60; ++i) src += std::to_string(i) + " ";
    src += ")";
    list = sexpr::read_one(ctx, src);
    roots.add(list);
  }
  const std::uint64_t old_threshold = gc.threshold();
  gc.set_threshold(128 * 1024);  // force collections mid-soak

  FaultInjector& fi = FaultInjector::instance();
  const std::uint64_t seeds[] = {0x101, 0x202, 0x303};
  const unsigned kind_sets[] = {FaultInjector::kDelay,
                                FaultInjector::kThrow};
  int aborted = 0, completed = 0;
  for (const std::uint64_t seed : seeds) {
    for (const unsigned kinds : kind_sets) {
      fi.configure(seed, 0.02, kinds);
      for (int iter = 0; iter < 3; ++iter) {
        try {
          // Even the reset of the counter allocates conses, so it can
          // draw a gc.alloc fault — it belongs inside the try.
          run_src("(setq chaos-count 0)");
          rt.run_cri(fn, 1, 2, {list});
          ++completed;
        } catch (const sexpr::LispError&) {
          ++aborted;  // injected throw surfaced as a body error
        }
        // An injected throw between a Lisp lock and its unlock can
        // leak the hold; reset is the documented recovery.
        rt.locks().reset();
      }
    }
  }
  fi.disable();
  gc.set_threshold(old_threshold);
  EXPECT_EQ(aborted + completed, 18);
  if (std::getenv("CURARE_CHAOS_VERBOSE") != nullptr) {
    std::printf("%s", fi.report().c_str());
  }

  // Delay-only rounds never abort a run; with kThrow in the mix some
  // runs abort — either way the runtime must be intact now.
  run_src("(setq chaos-count 0)");
  CriStats stats = rt.run_cri(fn, 1, 2, {list});
  EXPECT_EQ(stats.invocations, 61u);
  EXPECT_EQ(run_src("chaos-count").as_fixnum(), 60);
}

TEST_F(ResilienceTest, StealSiteChaosIsTargetedDeterministicAndSurvivable) {
  FaultInjector& fi = FaultInjector::instance();
  constexpr unsigned kStealOnly =
      1u << static_cast<unsigned>(FaultInjector::Site::kQueueSteal);

  // (a) Named-site targeting with replay determinism: with a fixed
  // seed the fire/skip decision at queue.steal is a pure function of
  // the per-site arrival index (configure() zeroes those counters), so
  // an identical reconfiguration yields the identical schedule — the
  // property the CI chaos jobs rely on for local replays. Sites
  // outside the mask never fire, whatever their arrival count.
  auto throws_in_400 = [&fi] {
    int thrown = 0;
    for (int i = 0; i < 400; ++i) {
      try {
        fi.check(FaultInjector::Site::kQueueSteal);
      } catch (const FaultInjectedError&) {
        ++thrown;
      }
      EXPECT_FALSE(fi.check(FaultInjector::Site::kQueuePush));
      EXPECT_FALSE(fi.check(FaultInjector::Site::kLockAcquire));
    }
    return thrown;
  };
  fi.configure(0xD1CE, 0.05, FaultInjector::kThrow, kStealOnly);
  const int first = throws_in_400();
  EXPECT_GT(first, 0) << "5% over 400 arrivals must fire sometimes";
  fi.configure(0xD1CE, 0.05, FaultInjector::kThrow, kStealOnly);
  EXPECT_EQ(throws_in_400(), first) << "same seed, same schedule";
  EXPECT_EQ(fi.stats(FaultInjector::Site::kQueuePush).throws, 0u);
  EXPECT_EQ(fi.stats(FaultInjector::Site::kLockAcquire).throws, 0u);

  // (b) Soak the real steal path: four servers sharing one spawning
  // chain keep three lanes dry, so every dry round crosses the
  // queue.steal site. Delays stretch the cross-lane races; throws
  // surface out of pop() and must take the server loop's drain path
  // (record, close, keep draining) without wedging the run or leaking
  // state into the clean rerun below.
  run_src(
      "(setq steal-count 0)"
      "(defun steal-cri (n)"
      "  (when (> n 0)"
      "    (%atomic-incf-var 'steal-count 1)"
      "    (%cri-enqueue 0 (- n 1))))");
  Value fn = in.global("steal-cri");
  int aborted = 0, completed = 0;
  for (const unsigned kinds :
       {unsigned(FaultInjector::kDelay),
        unsigned(FaultInjector::kDelay | FaultInjector::kThrow)}) {
    fi.configure(0xD1CE, 0.02, kinds, kStealOnly);
    for (int iter = 0; iter < 3; ++iter) {
      try {
        run_src("(setq steal-count 0)");
        rt.run_cri(fn, 1, 4, {Value::fixnum(200)});
        ++completed;
      } catch (const sexpr::LispError&) {
        ++aborted;  // injected steal-path throw, routed as a body error
      }
      rt.locks().reset();
    }
    const FaultInjector::SiteStats st =
        fi.stats(FaultInjector::Site::kQueueSteal);
    EXPECT_GT(st.visits, 0u) << "idle servers must have probed victims";
    if (kinds == FaultInjector::kDelay) {
      EXPECT_EQ(aborted, 0) << "delay-only rounds never abort a run";
    }
  }
  fi.disable();
  EXPECT_EQ(aborted + completed, 6);

  // Clean rerun: the soak must not have corrupted the runtime.
  run_src("(setq steal-count 0)");
  const CriStats stats = rt.run_cri(fn, 1, 4, {Value::fixnum(200)});
  EXPECT_EQ(stats.invocations, 201u);
  EXPECT_EQ(run_src("steal-count").as_fixnum(), 200);
}

TEST_F(ResilienceTest, InjectorStatsAndReportTrackSites) {
  FaultInjector& fi = FaultInjector::instance();
  fi.configure(42, 1.0, FaultInjector::kThrow);
  EXPECT_THROW(fi.check(FaultInjector::Site::kQueuePush),
               FaultInjectedError);
  const auto st = fi.stats(FaultInjector::Site::kQueuePush);
  EXPECT_EQ(st.visits, 1u);
  EXPECT_EQ(st.throws, 1u);
  EXPECT_NE(fi.report().find("queue.push"), std::string::npos);
  fi.disable();
  EXPECT_FALSE(fi.check(FaultInjector::Site::kQueuePush));
}

TEST_F(ResilienceTest, ResilienceReportListsConfiguration) {
  rt.set_deadline_ms(1000);
  rt.set_stall_ms(500);
  const std::string rep = rt.resilience_report();
  EXPECT_NE(rep.find("1000 ms"), std::string::npos) << rep;
  EXPECT_NE(rep.find("500 ms"), std::string::npos) << rep;
  EXPECT_NE(rep.find("stalls detected"), std::string::npos) << rep;
}

}  // namespace
}  // namespace curare::runtime
