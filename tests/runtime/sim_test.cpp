// Simulator tests: agreement with the paper's closed-form model and its
// qualitative laws (Figure 10, §3.2.1, §4.1).
#include "runtime/sim.hpp"

#include <gtest/gtest.h>

#include "runtime/scheduler.hpp"

namespace curare::runtime {
namespace {

TEST(Sim, OneServerIsSerial) {
  SimParams p;
  p.head_cost = 2;
  p.tail_cost = 3;
  p.depth = 10;
  p.servers = 1;
  SimResult r = simulate_cri(p);
  EXPECT_DOUBLE_EQ(r.total_time, 10 * 5.0);
  EXPECT_DOUBLE_EQ(r.avg_concurrency, 1.0);
}

TEST(Sim, HeadsSerializeEvenWithManyServers) {
  // Pure head (tail 0): invocation i+1 is ready only when i's head is
  // done, so infinite servers cannot beat serial execution.
  SimParams p;
  p.head_cost = 1;
  p.tail_cost = 0;
  p.depth = 100;
  p.servers = 64;
  SimResult r = simulate_cri(p);
  EXPECT_DOUBLE_EQ(r.total_time, 100.0);
}

TEST(Sim, PureTailOverlapsFully) {
  // Tiny head, big tail: near-perfect overlap until servers run out.
  SimParams p;
  p.head_cost = 1;
  p.tail_cost = 99;
  p.depth = 64;
  p.servers = 64;
  SimResult r = simulate_cri(p);
  // Heads serialize: 64 time units; last tail: +99.
  EXPECT_DOUBLE_EQ(r.total_time, 64.0 + 99.0);
  EXPECT_GT(r.avg_concurrency, 30.0);
}

TEST(Sim, SpeedupBoundedByConcurrencyFormula) {
  // §3.1: concurrency ≤ (h+t)/h.
  SimParams p;
  p.head_cost = 10;
  p.tail_cost = 90;
  p.depth = 200;
  p.servers = 64;
  SimResult r = simulate_cri(p);
  const double bound = max_concurrency(10, 90, std::nullopt);
  EXPECT_LE(r.speedup_vs_one(p), bound + 1e-9);
  EXPECT_GT(r.speedup_vs_one(p), bound * 0.9)
      << "with plenty of servers, speedup approaches (h+t)/h";
}

TEST(Sim, MatchesPaperFormulaWithinConcurrencyCap) {
  // Figure 10's T(S) group model assumes a new group can start every
  // h+t — feasible only while S·h ≤ h+t, i.e. S ≤ c_f = (h+t)/h (the
  // paper clamps S* by c_f for exactly this reason, §4.1). Within that
  // regime the simulator and the formula agree tightly; at S = c_f they
  // coincide exactly.
  const double h = 2;
  const double t = 30;
  const std::size_t d = 256;
  for (std::size_t S : {1u, 2u, 4u, 8u, 16u}) {  // c_f = 16
    SimParams p;
    p.head_cost = h;
    p.tail_cost = t;
    p.depth = d;
    p.servers = S;
    const double sim = simulate_cri(p).total_time;
    const double model =
        predicted_time(static_cast<double>(S), static_cast<double>(d), h,
                       t);
    EXPECT_NEAR(sim / model, 1.0, 0.20)
        << "S=" << S << " sim=" << sim << " model=" << model;
  }
  // Exact coincidence at the cap.
  SimParams cap;
  cap.head_cost = h;
  cap.tail_cost = t;
  cap.depth = d;
  cap.servers = 16;
  EXPECT_DOUBLE_EQ(simulate_cri(cap).total_time,
                   predicted_time(16, 256, h, t));
}

TEST(Sim, BeyondConcurrencyCapExtraServersAreWasted) {
  // Past c_f the chain of spawns gates everything: adding servers buys
  // nothing, which is why the paper clamps S* by c_f.
  const double h = 2;
  const double t = 30;  // c_f = 16
  SimParams p;
  p.head_cost = h;
  p.tail_cost = t;
  p.depth = 256;
  p.servers = 16;
  const double at_cap = simulate_cri(p).total_time;
  p.servers = 64;
  EXPECT_DOUBLE_EQ(simulate_cri(p).total_time, at_cap);
}

TEST(Sim, OptimalServersIsTheClampedSStar) {
  const double h = 1;
  const double t = 15;
  const std::size_t d = 1024;
  double best_time = 1e18;
  std::size_t best_s = 1;
  for (std::size_t S = 1; S <= 256; ++S) {
    SimParams p;
    p.head_cost = h;
    p.tail_cost = t;
    p.depth = d;
    p.servers = S;
    const double tt = simulate_cri(p).total_time;
    if (tt < best_time) {
      best_time = tt;
      best_s = S;
    }
  }
  // choose_servers = min(S*, c_f, …) — with d ≫ c_f the binding
  // constraint is c_f = (h+t)/h = 16, and the simulator's argmin lands
  // there.
  EXPECT_EQ(best_s, 16u);
  EXPECT_EQ(choose_servers(static_cast<double>(d), h, t, std::nullopt,
                           256),
            16u);
}

TEST(Sim, ConflictDistanceCapsConcurrency) {
  // §3.2.1: max concurrency ≤ min conflict distance.
  for (std::size_t k : {1u, 2u, 4u, 8u}) {
    SimParams p;
    p.head_cost = 1;
    p.tail_cost = 63;
    p.depth = 256;
    p.servers = 64;
    p.conflict_distance = k;
    SimResult r = simulate_cri(p);
    EXPECT_LE(r.speedup_vs_one(p), static_cast<double>(k) + 1e-9)
        << "distance " << k;
    if (k > 1) {
      EXPECT_GT(r.speedup_vs_one(p), static_cast<double>(k) * 0.8)
          << "the cap should be nearly achieved with ample servers";
    }
  }
}

TEST(Sim, DistanceOneIsSerial) {
  SimParams p;
  p.head_cost = 1;
  p.tail_cost = 9;
  p.depth = 100;
  p.servers = 16;
  p.conflict_distance = 1;
  SimResult r = simulate_cri(p);
  EXPECT_DOUBLE_EQ(r.total_time, 100.0 * 10.0);
}

TEST(Sim, QueueBottleneckLimitsThroughput) {
  // §4.1: when dequeue cost rivals invocation cost, the central queue
  // serializes everything.
  SimParams fast;
  fast.head_cost = 1;
  fast.tail_cost = 15;
  fast.depth = 512;
  fast.servers = 16;
  fast.dequeue_cost = 0.01;
  SimParams slow = fast;
  slow.dequeue_cost = 8.0;  // half an invocation per pop
  const double sp_fast = simulate_cri(fast).speedup_vs_one(fast);
  const double sp_slow = simulate_cri(slow).speedup_vs_one(slow);
  EXPECT_GT(sp_fast, sp_slow * 2)
      << "queue cost must visibly erode parallel efficiency";
  EXPECT_LE(sp_slow, (slow.head_cost + slow.tail_cost + slow.dequeue_cost) /
                          slow.dequeue_cost +
                      1e-9)
      << "throughput ≤ one dequeue per dequeue_cost";
}

TEST(Sim, MoreServersNeverHurtWithFreeQueue) {
  SimParams p;
  p.head_cost = 1;
  p.tail_cost = 31;
  p.depth = 256;
  double prev = 1e18;
  for (std::size_t S : {1u, 2u, 4u, 8u, 16u, 32u, 64u}) {
    p.servers = S;
    const double tt = simulate_cri(p).total_time;
    EXPECT_LE(tt, prev + 1e-9) << "S=" << S;
    prev = tt;
  }
}

}  // namespace
}  // namespace curare::runtime
