// Runtime facade tests: lock builtins, atomic updates, futures from
// Lisp, force-tree, and the scheduler model functions.
#include "runtime/runtime.hpp"

#include <gtest/gtest.h>

#include "runtime/scheduler.hpp"
#include "sexpr/printer.hpp"
#include "sexpr/reader.hpp"

namespace curare::runtime {
namespace {

using sexpr::Value;

class RuntimeTest : public ::testing::Test {
 protected:
  sexpr::Ctx ctx;
  lisp::Interp in{ctx};
  Runtime rt{in, 4};

  void SetUp() override { rt.install(); }

  std::string run(std::string_view src) {
    return sexpr::write_str(in.eval_program(src));
  }
};

TEST_F(RuntimeTest, LockUnlockRoundTrip) {
  EXPECT_EQ(run("(let ((x (cons 1 2)))"
                "  (%lock x 'car)"
                "  (%unlock x 'car)"
                "  'ok)"),
            "ok");
  EXPECT_EQ(rt.locks().live_entries(), 0u);
}

TEST_F(RuntimeTest, LockReadMode) {
  EXPECT_EQ(run("(let ((x (cons 1 2)))"
                "  (%lock x 'car 'read)"
                "  (%unlock x 'car 'read)"
                "  'ok)"),
            "ok");
}

TEST_F(RuntimeTest, LockOnNilLocationIsNoop) {
  EXPECT_EQ(run("(progn (%lock nil 'car) (%unlock nil 'car) 'ok)"), "ok");
  EXPECT_EQ(rt.locks().operations(), 0u);
}

TEST_F(RuntimeTest, BadLockModeThrows) {
  EXPECT_THROW(run("(%lock (cons 1 2) 'car 'sideways)"), sexpr::LispError);
}

TEST_F(RuntimeTest, VarLockRoundTrip) {
  EXPECT_EQ(run("(progn (%lock-var 'v) (%unlock-var 'v) 'ok)"), "ok");
}

TEST_F(RuntimeTest, AtomicAddOnCons) {
  EXPECT_EQ(run("(let ((x (cons 10 0)))"
                "  (%atomic-add x 'car 5)"
                "  (car x))"),
            "15");
  EXPECT_EQ(run("(let ((x (cons 0 10)))"
                "  (%atomic-add x 'cdr -3)"
                "  (cdr x))"),
            "7");
}

TEST_F(RuntimeTest, AtomicAddRejectsNonFixnum) {
  EXPECT_THROW(run("(%atomic-add (cons 'sym 0) 'car 1)"),
               sexpr::LispError);
}

TEST_F(RuntimeTest, AtomicIncfVar) {
  EXPECT_EQ(run("(progn (setq n 10) (%atomic-incf-var 'n 7) n)"), "17");
  EXPECT_EQ(run("(progn (%atomic-incf-var 'fresh-var 3) fresh-var)"), "3")
      << "unbound variables start from 0";
}

TEST_F(RuntimeTest, LockedUpdateVarAppliesFunction) {
  EXPECT_EQ(run("(progn (setq acc '(1))"
                "  (%locked-update-var 'acc (lambda (old) (cons 2 old)))"
                "  acc)"),
            "(2 1)");
}

TEST_F(RuntimeTest, FutureSpecialFormIsAsyncWithRuntime) {
  EXPECT_EQ(run("(touch (future (+ 40 2)))"), "42");
}

TEST_F(RuntimeTest, FuturePPredicate) {
  EXPECT_EQ(run("(future-p (future 1))"), "t");
  EXPECT_EQ(run("(future-p 1)"), "nil");
  EXPECT_EQ(run("(future-p (touch (future 1)))"), "nil");
}

TEST_F(RuntimeTest, SpawnBuiltinReturnsFuture) {
  EXPECT_EQ(run("(touch (spawn (lambda () 99)))"), "99");
}

TEST_F(RuntimeTest, TouchOnPlainValueIsIdentity) {
  EXPECT_EQ(run("(touch 5)"), "5");
}

TEST_F(RuntimeTest, FutureErrorsSurfaceAtTouch) {
  EXPECT_THROW(run("(touch (future (error \"inside\")))"),
               sexpr::LispError);
}

TEST_F(RuntimeTest, ForceTreeResolvesNestedFutures) {
  EXPECT_EQ(run("(force-tree (cons (future 1) (cons (future (cons 2 3))"
                " nil)))"),
            "(1 (2 . 3))");
}

TEST_F(RuntimeTest, ForceTreeOnPlainStructure) {
  EXPECT_EQ(run("(force-tree '(1 (2) 3))"), "(1 (2) 3)");
  EXPECT_EQ(run("(force-tree 7)"), "7");
}

TEST_F(RuntimeTest, ForceTreeLongFutureChain) {
  // remq-with-futures shape: futures in successive cdrs.
  EXPECT_EQ(run("(defun count-f (n)"
                "  (if (= n 0) nil (cons n (future (count-f (- n 1))))))"
                "(length (force-tree (count-f 200)))"),
            "200");
}

TEST_F(RuntimeTest, ConcurrentAtomicIncrementsAllLand) {
  // 4 CRI servers incrementing one counter 250 times each.
  in.eval_program(
      "(setq hits 0)"
      "(defun inc-cri (n)"
      "  (when (> n 0)"
      "    (%atomic-incf-var 'hits 1)"
      "    (%cri-enqueue 0 (- n 1))))");
  rt.run_cri(in.global("inc-cri"), 1, 4, {Value::fixnum(1000)});
  EXPECT_EQ(run("hits"), "1000");
}

// ---- scheduler model (§4.1 / Figure 10) ---------------------------------

TEST(Scheduler, PredictedTimeMatchesFormula) {
  // d=100, h=1, t=9, S=10: (⌈100/10⌉-1)(10) + (10·1+9) = 90+19 = 109.
  EXPECT_DOUBLE_EQ(predicted_time(10, 100, 1, 9), 109.0);
}

TEST(Scheduler, OneServerIsFullySequentialPlusOverhead) {
  // S=1: (d-1)(h+t) + (h+t) = d(h+t).
  EXPECT_DOUBLE_EQ(predicted_time(1, 50, 2, 3), 50.0 * 5.0);
}

TEST(Scheduler, OptimalServersFormula) {
  // S* = sqrt(d(h+t)/h): d=100, h=1, t=3 → sqrt(400) = 20.
  EXPECT_DOUBLE_EQ(optimal_servers_continuous(100, 1, 3), 20.0);
}

TEST(Scheduler, PredictedTimeIsMinimalNearSStar) {
  const double d = 1024, h = 1, t = 7;
  const double s_star = optimal_servers_continuous(d, h, t);
  const double at_star = predicted_time(s_star, d, h, t);
  EXPECT_LE(at_star, predicted_time(s_star / 4, d, h, t));
  EXPECT_LE(at_star, predicted_time(s_star * 4, d, h, t));
}

TEST(Scheduler, MaxConcurrencyCappedByConflictDistance) {
  EXPECT_DOUBLE_EQ(max_concurrency(1, 9, std::nullopt), 10.0);
  EXPECT_DOUBLE_EQ(max_concurrency(1, 9, 4), 4.0);
}

TEST(Scheduler, NestedAllocationGivesSerialInnerNothing) {
  // The inner recursion is all-head (serial no matter how many servers
  // it gets): the split gives the processors to the outer pool, where
  // the inner runs — folded into outer tails — can still overlap.
  RecursionShape outer{64, 1, 31};
  RecursionShape inner{64, 10, 0};
  NestedAllocation a = allocate_nested(outer, inner, 16);
  EXPECT_GE(a.outer, 8u);
  EXPECT_EQ(a.inner, 1u);
}

TEST(Scheduler, NestedAllocationNeverExtravagant) {
  // §4.1: "extravagant allocation [S1 × S2] … is not practical". The
  // split never hands out more than P per level.
  RecursionShape outer{64, 1, 15};
  RecursionShape inner{64, 1, 15};
  NestedAllocation a = allocate_nested(outer, inner, 16);
  EXPECT_LE(a.outer, 16u);
  EXPECT_LE(a.inner, 16u);
  EXPECT_LE(a.outer * a.inner, 16u)
      << "S2 = P / S1: the product stays within the machine";
}

TEST(Scheduler, NestedAllocationBeatsBothExtremes) {
  RecursionShape outer{128, 2, 30};
  RecursionShape inner{128, 2, 30};
  NestedAllocation a = allocate_nested(outer, inner, 12);
  const double all_outer = predicted_nested_time(outer, inner, 12, 1);
  const double all_inner = predicted_nested_time(outer, inner, 1, 12);
  EXPECT_LE(a.predicted, all_outer);
  EXPECT_LE(a.predicted, all_inner);
}

TEST(Scheduler, NestedAllocationOneProcessorIsSerial) {
  RecursionShape outer{10, 1, 1};
  RecursionShape inner{10, 1, 1};
  NestedAllocation a = allocate_nested(outer, inner, 1);
  EXPECT_EQ(a.outer, 1u);
  EXPECT_EQ(a.inner, 1u);
  EXPECT_DOUBLE_EQ(a.predicted,
                   10.0 * (1 + 1 + 10.0 * 2.0));
}

TEST(Scheduler, ChooseServersRespectsAllCaps) {
  EXPECT_EQ(choose_servers(10000, 1, 99, std::nullopt, 8), 8u)
      << "hardware cap";
  EXPECT_EQ(choose_servers(10000, 1, 99, 3, 64), 3u) << "conflict cap";
  EXPECT_EQ(choose_servers(4, 1, 99, std::nullopt, 64), 4u) << "depth cap";
  EXPECT_GE(choose_servers(1, 1, 0, 1, 1), 1u) << "at least one server";
}

}  // namespace
}  // namespace curare::runtime
