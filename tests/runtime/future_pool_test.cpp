// FuturePool tests: spawn/touch, error propagation, help-first waiting.
#include "runtime/future_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>

#include "sexpr/value.hpp"

namespace curare::runtime {
namespace {

using sexpr::Value;

TEST(FuturePool, SpawnAndTouch) {
  FuturePool pool(2);
  auto f = pool.spawn([] { return Value::fixnum(42); });
  EXPECT_EQ(pool.touch(f).as_fixnum(), 42);
}

TEST(FuturePool, TouchIsIdempotent) {
  FuturePool pool(2);
  auto f = pool.spawn([] { return Value::fixnum(7); });
  EXPECT_EQ(pool.touch(f).as_fixnum(), 7);
  EXPECT_EQ(pool.touch(f).as_fixnum(), 7);
}

TEST(FuturePool, ManyFuturesAllResolve) {
  FuturePool pool(4);
  std::vector<std::shared_ptr<FutureState>> fs;
  for (int i = 0; i < 500; ++i)
    fs.push_back(pool.spawn([i] { return Value::fixnum(i); }));
  for (int i = 0; i < 500; ++i)
    EXPECT_EQ(pool.touch(fs[static_cast<std::size_t>(i)]).as_fixnum(), i);
}

TEST(FuturePool, ErrorsPropagateOnTouch) {
  FuturePool pool(2);
  auto f = pool.spawn([]() -> Value {
    throw sexpr::LispError("task failed");
  });
  EXPECT_THROW(pool.touch(f), sexpr::LispError);
}

TEST(FuturePool, HelpFirstTouchAvoidsDeadlockOnSingleWorker) {
  // One worker, and the worker's task spawns+touches a child future. A
  // blocking touch would deadlock; help-first touch must complete.
  FuturePool pool(1);
  auto parent = pool.spawn([&pool]() -> Value {
    auto child = pool.spawn([] { return Value::fixnum(5); });
    return Value::fixnum(pool.touch(child).as_fixnum() + 1);
  });
  EXPECT_EQ(pool.touch(parent).as_fixnum(), 6);
}

TEST(FuturePool, DeepFutureChainCompletes) {
  FuturePool pool(2);
  std::function<Value(int)> chain = [&](int n) -> Value {
    if (n == 0) return Value::fixnum(0);
    auto f = pool.spawn([&chain, n] { return chain(n - 1); });
    return Value::fixnum(pool.touch(f).as_fixnum() + 1);
  };
  EXPECT_EQ(chain(100).as_fixnum(), 100);
}

TEST(FuturePool, WorkerCountDefaultsPositive) {
  FuturePool pool;
  EXPECT_GE(pool.workers(), 2u);
}

TEST(FuturePool, SpawnCountTracks) {
  FuturePool pool(2);
  auto a = pool.spawn([] { return Value::nil(); });
  auto b = pool.spawn([] { return Value::nil(); });
  pool.touch(a);
  pool.touch(b);
  EXPECT_EQ(pool.spawned(), 2u);
}

TEST(FuturePool, RecorderCountsSpawnsAndWaits) {
  obs::Recorder rec;
  FuturePool pool(2, &rec);
  auto slow = pool.spawn([]() -> Value {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    return Value::fixnum(1);
  });
  auto fast = pool.spawn([] { return Value::fixnum(2); });
  EXPECT_EQ(pool.touch(slow).as_fixnum(), 1);
  EXPECT_EQ(pool.touch(fast).as_fixnum(), 2);
  EXPECT_EQ(rec.metrics.counter("future.spawned").get(), 2u);
  EXPECT_EQ(rec.metrics.counter("future.touches").get(), 2u);
  // The slow touch blocked; its wait time was recorded (this histogram
  // is the proof the old 1ms poll loop is gone — a poll would burn CPU,
  // a blocked predicate wait records one span covering the whole wait).
  EXPECT_GE(rec.metrics.counter("future.touch_waits").get(), 1u);
  EXPECT_EQ(rec.metrics.histogram("future.wait_ns").count(),
            rec.metrics.counter("future.touch_waits").get());
  EXPECT_GE(rec.metrics.histogram("future.wait_ns").max(), 5'000'000u);
}

TEST(FuturePool, ResolvedTouchNeverCountsAsWait) {
  obs::Recorder rec;
  FuturePool pool(2, &rec);
  auto f = pool.spawn([] { return Value::fixnum(3); });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_EQ(pool.touch(f).as_fixnum(), 3);
  EXPECT_EQ(rec.metrics.counter("future.touch_waits").get(), 0u);
  EXPECT_EQ(rec.metrics.histogram("future.wait_ns").count(), 0u);
}

TEST(FuturePool, HelpedCounterTracksInlineRuns) {
  obs::Recorder rec;
  // One worker busy on a slow task; touching a queued future forces the
  // caller to help-run it inline.
  FuturePool pool(1, &rec);
  auto slow = pool.spawn([]() -> Value {
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    return Value::nil();
  });
  auto queued = pool.spawn([] { return Value::fixnum(9); });
  EXPECT_EQ(pool.touch(queued).as_fixnum(), 9);
  EXPECT_GE(rec.metrics.counter("future.helped").get(), 1u);
  pool.touch(slow);
}

TEST(FuturePool, ParallelExecutionActuallyOverlaps) {
  FuturePool pool(4);
  std::atomic<int> running{0};
  std::atomic<int> peak{0};
  std::vector<std::shared_ptr<FutureState>> fs;
  for (int i = 0; i < 4; ++i) {
    fs.push_back(pool.spawn([&]() -> Value {
      int now = running.fetch_add(1) + 1;
      int old = peak.load();
      while (now > old && !peak.compare_exchange_weak(old, now)) {
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(30));
      running.fetch_sub(1);
      return Value::nil();
    }));
  }
  for (auto& f : fs) pool.touch(f);
  EXPECT_GT(peak.load(), 1) << "tasks must overlap on a 4-worker pool";
}

}  // namespace
}  // namespace curare::runtime
