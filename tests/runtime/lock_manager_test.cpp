// LockManager tests: exclusion, read sharing, reentrancy, error cases.
#include "runtime/lock_manager.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "sexpr/ctx.hpp"

namespace curare::runtime {
namespace {

class LockManagerTest : public ::testing::Test {
 protected:
  sexpr::Ctx ctx;
  LockManager lm;

  LocKey key(const char* field = "car") {
    return LocKey{cell_, ctx.symbols.intern(field)};
  }

  sexpr::Cons* cell_ = ctx.heap.alloc<sexpr::Cons>(sexpr::Value::nil(),
                                                   sexpr::Value::nil());
};

TEST_F(LockManagerTest, ExclusiveLockUnlock) {
  lm.lock(key(), true);
  EXPECT_EQ(lm.live_entries(), 1u);
  lm.unlock(key(), true);
  EXPECT_EQ(lm.live_entries(), 0u);
}

TEST_F(LockManagerTest, DistinctFieldsAreDistinctLocations) {
  lm.lock(key("car"), true);
  lm.lock(key("cdr"), true);  // must not self-deadlock
  EXPECT_EQ(lm.live_entries(), 2u);
  lm.unlock(key("cdr"), true);
  lm.unlock(key("car"), true);
}

TEST_F(LockManagerTest, WriterReentrancy) {
  lm.lock(key(), true);
  lm.lock(key(), true);  // same thread, same location
  lm.unlock(key(), true);
  EXPECT_EQ(lm.live_entries(), 1u) << "still held once";
  lm.unlock(key(), true);
  EXPECT_EQ(lm.live_entries(), 0u);
}

TEST_F(LockManagerTest, WriterMayAlsoTakeReadLock) {
  lm.lock(key(), true);
  lm.lock(key(), false);  // read inside write: counts as reentrant hold
  lm.unlock(key(), false);
  lm.unlock(key(), true);
  EXPECT_EQ(lm.live_entries(), 0u);
}

TEST_F(LockManagerTest, ReadToWriteUpgradeThrowsInsteadOfDeadlocking) {
  // A reader that asks for the write lock on the same location would
  // wait for its own read hold to drain — a self-deadlock. The manager
  // must detect this and throw while the read hold stays intact.
  lm.lock(key(), false);
  try {
    lm.lock(key(), true);
    FAIL() << "upgrade must throw, not acquire (or hang)";
  } catch (const sexpr::LispError& e) {
    EXPECT_NE(std::string(e.what()).find("upgrade"), std::string::npos)
        << e.what();
  }
  EXPECT_EQ(lm.live_entries(), 1u) << "the read hold must survive";
  lm.unlock(key(), false);
  EXPECT_EQ(lm.live_entries(), 0u);
}

TEST_F(LockManagerTest, UpgradeDetectionIsPerThread) {
  // Another thread's read hold is ordinary contention, not an upgrade:
  // the writer must wait for it, then acquire.
  lm.lock(key(), false);
  std::atomic<bool> acquired{false};
  std::thread writer([&] {
    lm.lock(key(), true);  // blocks until the main thread releases
    acquired.store(true);
    lm.unlock(key(), true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  EXPECT_FALSE(acquired.load()) << "writer ran through a live read hold";
  lm.unlock(key(), false);
  writer.join();
  EXPECT_TRUE(acquired.load());
  EXPECT_EQ(lm.live_entries(), 0u);
}

TEST_F(LockManagerTest, HandOffUnlockLeavesNoStaleUpgradeRecord) {
  // Hand-off pattern: lock shared on one thread, unlock on another.
  // Regression: the locker's reader_holds record used to survive the
  // other thread's unlock, so the locker's later exclusive request on
  // the same key threw a false "read->write upgrade" error even though
  // it no longer held anything.
  lm.lock(key(), false);
  std::thread other([&] { lm.unlock(key(), false); });
  other.join();
  EXPECT_EQ(lm.live_entries(), 0u);
  EXPECT_NO_THROW(lm.lock(key(), true))
      << "stale reader record misread as an upgrade";
  lm.unlock(key(), true);
  EXPECT_EQ(lm.live_entries(), 0u);
}

TEST_F(LockManagerTest, HandOffUnlockWithOtherReadersTracksCounts) {
  // Two live read holds, one of them handed off: the hand-off unlock
  // must retire exactly one record so the count view stays exact and
  // a later fresh exclusive acquisition (after the second release)
  // succeeds.
  lm.lock(key(), false);
  std::thread t([&] {
    lm.lock(key(), false);
    lm.unlock(key(), false);  // its own hold: ordinary unlock
  });
  t.join();
  std::thread other([&] { lm.unlock(key(), false); });  // hand-off
  other.join();
  EXPECT_EQ(lm.live_entries(), 0u);
  EXPECT_NO_THROW(lm.lock(key(), true));
  lm.unlock(key(), true);
}

TEST_F(LockManagerTest, DumpHeldNamesLocationsAndReset) {
  EXPECT_NE(lm.dump_held().find("none"), std::string::npos);
  lm.lock(key(), true);
  const std::string dump = lm.dump_held();
  EXPECT_NE(dump.find("held locks (1)"), std::string::npos) << dump;
  EXPECT_NE(dump.find("car"), std::string::npos) << dump;
  lm.reset();  // recovery path after an aborted run
  EXPECT_EQ(lm.live_entries(), 0u);
}

TEST_F(LockManagerTest, SharedReadersCoexist) {
  std::atomic<int> concurrent{0};
  std::atomic<int> peak{0};
  std::vector<std::thread> ts;
  for (int i = 0; i < 4; ++i) {
    ts.emplace_back([&] {
      lm.lock(key(), false);
      int now = concurrent.fetch_add(1) + 1;
      int old_peak = peak.load();
      while (now > old_peak && !peak.compare_exchange_weak(old_peak, now)) {
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
      concurrent.fetch_sub(1);
      lm.unlock(key(), false);
    });
  }
  for (auto& t : ts) t.join();
  EXPECT_GT(peak.load(), 1) << "read locks must admit multiple readers";
}

TEST_F(LockManagerTest, WriterExcludesWriter) {
  std::atomic<int> inside{0};
  std::atomic<bool> overlap{false};
  std::vector<std::thread> ts;
  for (int i = 0; i < 4; ++i) {
    ts.emplace_back([&] {
      for (int k = 0; k < 50; ++k) {
        lm.lock(key(), true);
        if (inside.fetch_add(1) != 0) overlap = true;
        std::this_thread::yield();
        inside.fetch_sub(1);
        lm.unlock(key(), true);
      }
    });
  }
  for (auto& t : ts) t.join();
  EXPECT_FALSE(overlap.load());
}

TEST_F(LockManagerTest, WriterWaitsForReaders) {
  lm.lock(key(), false);  // this thread reads
  std::atomic<bool> writer_done{false};
  std::thread w([&] {
    lm.lock(key(), true);
    writer_done = true;
    lm.unlock(key(), true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  EXPECT_FALSE(writer_done.load()) << "writer must wait for the reader";
  lm.unlock(key(), false);
  w.join();
  EXPECT_TRUE(writer_done.load());
}

TEST_F(LockManagerTest, UnlockWithoutLockThrows) {
  EXPECT_THROW(lm.unlock(key(), true), sexpr::LispError);
}

TEST_F(LockManagerTest, UnlockByNonOwnerThrows) {
  lm.lock(key(), true);
  std::exception_ptr err;
  std::thread t([&] {
    try {
      lm.unlock(key(), true);
    } catch (...) {
      err = std::current_exception();
    }
  });
  t.join();
  EXPECT_NE(err, nullptr);
  lm.unlock(key(), true);
}

TEST_F(LockManagerTest, OperationCountAdvances) {
  const auto before = lm.operations();
  lm.lock(key(), true);
  lm.unlock(key(), true);
  EXPECT_EQ(lm.operations(), before + 2);
}

TEST_F(LockManagerTest, HashSpreadsAlignedPointerKeys) {
  // Regression: heap objects are allocated at (at least) 16-byte-aligned
  // addresses, so without a finalizer the low bits feeding `% shards`
  // are mostly zero and whole shard groups go unused. 512 distinct cons
  // locations must spread across nearly all 64 shards, with no shard
  // absorbing a large multiple of its fair share (fair = 8 per shard).
  constexpr std::size_t kNumShards = 64;  // mirrors LockManager::kShards
  std::array<int, kNumShards> bucket{};
  const sexpr::Symbol* field = ctx.symbols.intern("car");
  for (int i = 0; i < 512; ++i) {
    auto* cell = ctx.heap.alloc<sexpr::Cons>(sexpr::Value::nil(),
                                             sexpr::Value::nil());
    LocKey k{cell, field};
    ++bucket[LocKeyHash{}(k) % kNumShards];
  }
  int hit = 0;
  int worst = 0;
  for (int n : bucket) {
    if (n > 0) ++hit;
    worst = std::max(worst, n);
  }
  EXPECT_GE(hit, 56) << "aligned pointers must not collapse onto a few "
                        "shards (pre-fix behaviour hit ~4 of 64)";
  EXPECT_LE(worst, 64) << "no shard may absorb 8x its fair share";
}

TEST_F(LockManagerTest, VariableLocationKeys) {
  LocKey var_key{ctx.symbols.intern("total"), nullptr};
  lm.lock(var_key, true);
  lm.unlock(var_key, true);
  EXPECT_EQ(lm.live_entries(), 0u);
}

}  // namespace
}  // namespace curare::runtime
