// In-process daemon tests: real TCP, real threads, one ServeDaemon per
// test. These are the serving layer's acceptance criteria — session
// isolation across ≥8 concurrent connections, structured deadline
// failures that don't take the daemon down, admission rejections, and
// graceful drain.
#include "serve/server.hpp"

#include <atomic>
#include <condition_variable>
#include <mutex>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "serve/client.hpp"
#include "serve/exit_codes.hpp"
#include "sexpr/ctx.hpp"

namespace serve = curare::serve;

namespace {

/// Reusable latch: all `expected` threads block in arrive_and_wait
/// until the last one arrives (std::barrier without the C++20 dance).
class Latch {
 public:
  explicit Latch(int expected) : expected_(expected) {}
  void arrive_and_wait() {
    std::unique_lock<std::mutex> g(mu_);
    if (++arrived_ >= expected_) {
      cv_.notify_all();
      return;
    }
    cv_.wait(g, [this] { return arrived_ >= expected_; });
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  int expected_;
  int arrived_ = 0;
};

struct DaemonFixture {
  curare::sexpr::Ctx ctx;
  serve::ServeDaemon daemon;

  explicit DaemonFixture(serve::ServeOptions opts = {})
      : daemon(ctx, std::move(opts)) {
    std::string err;
    EXPECT_TRUE(daemon.start(&err)) << err;
  }
  ~DaemonFixture() { daemon.shutdown(); }

  serve::ClientConnection connect() {
    serve::ClientConnection c;
    std::string err;
    EXPECT_TRUE(c.connect("127.0.0.1", daemon.port(), &err)) << err;
    return c;
  }
};

serve::Request eval_req(std::string program,
                        std::int64_t deadline_ms = 0) {
  serve::Request r;
  r.op = "eval";
  r.program = std::move(program);
  r.deadline_ms = deadline_ms;
  return r;
}

}  // namespace

TEST(Serve, EvalRoundTrip) {
  DaemonFixture f;
  auto conn = f.connect();
  auto resp = conn.request(eval_req("(+ 40 2)"));
  ASSERT_TRUE(resp.has_value());
  EXPECT_EQ(resp->status, "ok");
  EXPECT_EQ(resp->result, "42");
  EXPECT_GE(resp->metrics.get_int("wall_us", -1), 0);
}

TEST(Serve, CapturesPrintedOutput) {
  DaemonFixture f;
  auto conn = f.connect();
  auto resp = conn.request(eval_req("(print (list 1 2)) 7"));
  ASSERT_TRUE(resp.has_value());
  EXPECT_EQ(resp->status, "ok");
  EXPECT_EQ(resp->result, "7");
  EXPECT_NE(resp->output.find("(1 2)"), std::string::npos)
      << resp->output;
}

TEST(Serve, EightConcurrentSessionsAreIsolated) {
  serve::ServeOptions opts;
  opts.max_inflight = 16;
  DaemonFixture f(opts);

  constexpr int kSessions = 8;
  Latch all_connected(kSessions);
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (int i = 0; i < kSessions; ++i) {
    threads.emplace_back([&, i] {
      auto conn = f.connect();
      // Hold all 8 connections open at once before any state lands,
      // so the sessions are genuinely concurrent, not sequential.
      all_connected.arrive_and_wait();
      const std::string mine = std::to_string(1000 + i);
      auto def = conn.request(
          eval_req("(setq session-x " + mine + ") session-x"));
      if (!def || def->status != "ok" || def->result != mine) {
        ++failures;
        return;
      }
      // Read back through a *separate* request on the same session —
      // must still be this session's value, whatever the other seven
      // sessions wrote to the same global name.
      auto readback = conn.request(eval_req("session-x"));
      if (!readback || readback->status != "ok" ||
          readback->result != mine) {
        ++failures;
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
}

TEST(Serve, TopLevelsDoNotLeakAcrossSessions) {
  DaemonFixture f;
  auto a = f.connect();
  auto b = f.connect();
  auto def = a.request(eval_req("(setq only-in-a 1) only-in-a"));
  ASSERT_TRUE(def.has_value());
  EXPECT_EQ(def->status, "ok");
  auto leak = b.request(eval_req("only-in-a"));
  ASSERT_TRUE(leak.has_value());
  EXPECT_EQ(leak->status, "error");
  EXPECT_NE(leak->error.find("unbound"), std::string::npos)
      << leak->error;
}

TEST(Serve, DeadlineKillsOnlyThatRequest) {
  DaemonFixture f;
  auto victim = f.connect();
  auto bystander = f.connect();

  // A bystander evaluating concurrently with the doomed request.
  std::thread by([&] {
    for (int i = 0; i < 5; ++i) {
      auto r = bystander.request(eval_req("(+ 1 2)"));
      ASSERT_TRUE(r.has_value());
      EXPECT_EQ(r->status, "ok");
    }
  });

  auto doomed = victim.request(eval_req(
      "(defun spin-forever (n) (spin-forever (+ n 1))) "
      "(spin-forever 0)",
      /*deadline_ms=*/250));
  by.join();
  ASSERT_TRUE(doomed.has_value());
  EXPECT_EQ(doomed->status, "deadline");
  EXPECT_NE(doomed->error.find("deadline exceeded"), std::string::npos)
      << doomed->error;

  // The victim's own connection (and session) survives its dead run.
  auto after = victim.request(eval_req("(* 6 7)"));
  ASSERT_TRUE(after.has_value());
  EXPECT_EQ(after->status, "ok");
  EXPECT_EQ(after->result, "42");
}

TEST(Serve, OverloadedRejectionWhenSaturated) {
  serve::ServeOptions opts;
  opts.max_inflight = 1;
  opts.queue_limit = 0;  // reject instead of queueing
  DaemonFixture f(opts);

  auto hog = f.connect();
  auto bounced = f.connect();

  std::thread hogger([&] {
    // Occupies the single slot until its deadline fires.
    auto r = hog.request(eval_req(
        "(defun spin-forever (n) (spin-forever (+ n 1))) "
        "(spin-forever 0)",
        /*deadline_ms=*/1000));
    ASSERT_TRUE(r.has_value());
    EXPECT_EQ(r->status, "deadline");
  });

  // Wait until the hog actually holds the slot, then expect a bounce.
  bool saw_overload = false;
  for (int i = 0; i < 200 && !saw_overload; ++i) {
    auto r = bounced.request(eval_req("(+ 1 1)"));
    ASSERT_TRUE(r.has_value());
    if (r->status == "overloaded") {
      saw_overload = true;
    } else {
      EXPECT_EQ(r->status, "ok");  // raced ahead of the hog
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
  }
  hogger.join();
  EXPECT_TRUE(saw_overload);
  EXPECT_EQ(serve::status_exit_code("overloaded"),
            serve::kExitOverloaded);

  // Slot free again: the same connection that was bounced now runs.
  auto ok = bounced.request(eval_req("(+ 2 2)"));
  ASSERT_TRUE(ok.has_value());
  EXPECT_EQ(ok->status, "ok");
}

TEST(Serve, StatsOpReportsServeMetrics) {
  DaemonFixture f;
  auto conn = f.connect();
  ASSERT_TRUE(conn.request(eval_req("(+ 1 2)")).has_value());
  serve::Request req;
  req.op = "stats";
  auto resp = conn.request(req);
  ASSERT_TRUE(resp.has_value());
  EXPECT_EQ(resp->status, "ok");
  EXPECT_NE(resp->result.find("measured vs predicted"),
            std::string::npos);
  EXPECT_NE(resp->result.find("serve.requests"), std::string::npos)
      << resp->result;
  EXPECT_NE(resp->result.find("serve.admitted"), std::string::npos);
}

TEST(Serve, MalformedFramesGetProtocolErrors) {
  DaemonFixture f;
  auto conn = f.connect();
  serve::Request bad;
  bad.op = "no-such-op";
  auto resp = conn.request(bad);
  ASSERT_TRUE(resp.has_value());
  EXPECT_EQ(resp->status, "error");
  EXPECT_NE(resp->error.find("unknown op"), std::string::npos);
  // The connection survives a protocol error.
  auto ok = conn.request(eval_req("(+ 1 2)"));
  ASSERT_TRUE(ok.has_value());
  EXPECT_EQ(ok->status, "ok");
}

TEST(Serve, GracefulDrainCancelsInFlight) {
  serve::ServeOptions opts;
  opts.drain_grace_ms = 100;
  DaemonFixture f(opts);
  auto conn = f.connect();

  // An unbounded request (no deadline): only the drain can end it.
  std::thread victim([&] {
    auto r = conn.request(eval_req(
        "(defun spin-forever (n) (spin-forever (+ n 1))) "
        "(spin-forever 0)"));
    // Either a structured stall response ("server draining") or a torn
    // connection if the write raced the socket teardown — both are
    // clean ends; a hang here is the failure mode this test exists for.
    if (r.has_value()) {
      EXPECT_EQ(r->status, "stall");
      EXPECT_NE(r->error.find("server draining"), std::string::npos)
          << r->error;
    }
  });

  // Give the request time to start executing, then drain.
  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  f.daemon.shutdown();
  victim.join();
  f.daemon.join();  // must have fully drained

  // A fresh connection must be refused (listen socket is gone).
  serve::ClientConnection late;
  std::string err;
  EXPECT_FALSE(late.connect("127.0.0.1", f.daemon.port(), &err));
}

TEST(Serve, RestructureOpTransformsARecursiveDefun) {
  DaemonFixture f;
  auto conn = f.connect();
  serve::Request req;
  req.op = "restructure";
  req.name = "count-up";
  req.program =
      "(defun count-up (n acc) (if (< n 1) acc "
      "(count-up (- n 1) (+ acc 1))))";
  auto resp = conn.request(req);
  ASSERT_TRUE(resp.has_value());
  EXPECT_EQ(resp->status, "ok");
  EXPECT_NE(resp->result.find("count-up"), std::string::npos)
      << resp->result;
}
