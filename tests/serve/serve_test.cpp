// In-process daemon tests: real TCP, real threads, one ServeDaemon per
// test. These are the serving layer's acceptance criteria — session
// isolation across ≥8 concurrent connections, structured deadline
// failures that don't take the daemon down, admission rejections, and
// graceful drain.
#include "serve/server.hpp"

#include <atomic>
#include <condition_variable>
#include <mutex>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "runtime/fault_injector.hpp"
#include "serve/client.hpp"
#include "serve/exit_codes.hpp"
#include "sexpr/ctx.hpp"

namespace serve = curare::serve;

namespace {

/// Reusable latch: all `expected` threads block in arrive_and_wait
/// until the last one arrives (std::barrier without the C++20 dance).
class Latch {
 public:
  explicit Latch(int expected) : expected_(expected) {}
  void arrive_and_wait() {
    std::unique_lock<std::mutex> g(mu_);
    if (++arrived_ >= expected_) {
      cv_.notify_all();
      return;
    }
    cv_.wait(g, [this] { return arrived_ >= expected_; });
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  int expected_;
  int arrived_ = 0;
};

struct DaemonFixture {
  curare::sexpr::Ctx ctx;
  serve::ServeDaemon daemon;

  explicit DaemonFixture(serve::ServeOptions opts = {})
      : daemon(ctx, std::move(opts)) {
    std::string err;
    EXPECT_TRUE(daemon.start(&err)) << err;
  }
  ~DaemonFixture() { daemon.shutdown(); }

  serve::ClientConnection connect() {
    serve::ClientConnection c;
    std::string err;
    EXPECT_TRUE(c.connect("127.0.0.1", daemon.port(), &err)) << err;
    return c;
  }
};

serve::Request eval_req(std::string program,
                        std::int64_t deadline_ms = 0) {
  serve::Request r;
  r.op = "eval";
  r.program = std::move(program);
  r.deadline_ms = deadline_ms;
  return r;
}

}  // namespace

TEST(Serve, EvalRoundTrip) {
  DaemonFixture f;
  auto conn = f.connect();
  auto resp = conn.request(eval_req("(+ 40 2)"));
  ASSERT_TRUE(resp.has_value());
  EXPECT_EQ(resp->status, "ok");
  EXPECT_EQ(resp->result, "42");
  EXPECT_GE(resp->metrics.get_int("wall_us", -1), 0);
}

TEST(Serve, CapturesPrintedOutput) {
  DaemonFixture f;
  auto conn = f.connect();
  auto resp = conn.request(eval_req("(print (list 1 2)) 7"));
  ASSERT_TRUE(resp.has_value());
  EXPECT_EQ(resp->status, "ok");
  EXPECT_EQ(resp->result, "7");
  EXPECT_NE(resp->output.find("(1 2)"), std::string::npos)
      << resp->output;
}

TEST(Serve, EightConcurrentSessionsAreIsolated) {
  serve::ServeOptions opts;
  opts.max_inflight = 16;
  DaemonFixture f(opts);

  constexpr int kSessions = 8;
  Latch all_connected(kSessions);
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (int i = 0; i < kSessions; ++i) {
    threads.emplace_back([&, i] {
      auto conn = f.connect();
      // Hold all 8 connections open at once before any state lands,
      // so the sessions are genuinely concurrent, not sequential.
      all_connected.arrive_and_wait();
      const std::string mine = std::to_string(1000 + i);
      auto def = conn.request(
          eval_req("(setq session-x " + mine + ") session-x"));
      if (!def || def->status != "ok" || def->result != mine) {
        ++failures;
        return;
      }
      // Read back through a *separate* request on the same session —
      // must still be this session's value, whatever the other seven
      // sessions wrote to the same global name.
      auto readback = conn.request(eval_req("session-x"));
      if (!readback || readback->status != "ok" ||
          readback->result != mine) {
        ++failures;
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
}

TEST(Serve, TopLevelsDoNotLeakAcrossSessions) {
  DaemonFixture f;
  auto a = f.connect();
  auto b = f.connect();
  auto def = a.request(eval_req("(setq only-in-a 1) only-in-a"));
  ASSERT_TRUE(def.has_value());
  EXPECT_EQ(def->status, "ok");
  auto leak = b.request(eval_req("only-in-a"));
  ASSERT_TRUE(leak.has_value());
  EXPECT_EQ(leak->status, "error");
  EXPECT_NE(leak->error.find("unbound"), std::string::npos)
      << leak->error;
}

TEST(Serve, DeadlineKillsOnlyThatRequest) {
  DaemonFixture f;
  auto victim = f.connect();
  auto bystander = f.connect();

  // A bystander evaluating concurrently with the doomed request.
  std::thread by([&] {
    for (int i = 0; i < 5; ++i) {
      auto r = bystander.request(eval_req("(+ 1 2)"));
      ASSERT_TRUE(r.has_value());
      EXPECT_EQ(r->status, "ok");
    }
  });

  auto doomed = victim.request(eval_req(
      "(defun spin-forever (n) (spin-forever (+ n 1))) "
      "(spin-forever 0)",
      /*deadline_ms=*/250));
  by.join();
  ASSERT_TRUE(doomed.has_value());
  EXPECT_EQ(doomed->status, "deadline");
  EXPECT_NE(doomed->error.find("deadline exceeded"), std::string::npos)
      << doomed->error;

  // The victim's own connection (and session) survives its dead run.
  auto after = victim.request(eval_req("(* 6 7)"));
  ASSERT_TRUE(after.has_value());
  EXPECT_EQ(after->status, "ok");
  EXPECT_EQ(after->result, "42");
}

TEST(Serve, OverloadedRejectionWhenSaturated) {
  serve::ServeOptions opts;
  opts.max_inflight = 1;
  opts.queue_limit = 0;  // reject instead of queueing
  DaemonFixture f(opts);

  auto hog = f.connect();
  auto bounced = f.connect();

  std::thread hogger([&] {
    // Occupies the single slot until its deadline fires.
    auto r = hog.request(eval_req(
        "(defun spin-forever (n) (spin-forever (+ n 1))) "
        "(spin-forever 0)",
        /*deadline_ms=*/1000));
    ASSERT_TRUE(r.has_value());
    EXPECT_EQ(r->status, "deadline");
  });

  // Wait until the hog actually holds the slot, then expect a bounce.
  bool saw_overload = false;
  for (int i = 0; i < 200 && !saw_overload; ++i) {
    auto r = bounced.request(eval_req("(+ 1 1)"));
    ASSERT_TRUE(r.has_value());
    if (r->status == "overloaded") {
      saw_overload = true;
    } else {
      EXPECT_EQ(r->status, "ok");  // raced ahead of the hog
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
  }
  hogger.join();
  EXPECT_TRUE(saw_overload);
  EXPECT_EQ(serve::status_exit_code("overloaded"),
            serve::kExitOverloaded);

  // Slot free again: the same connection that was bounced now runs.
  auto ok = bounced.request(eval_req("(+ 2 2)"));
  ASSERT_TRUE(ok.has_value());
  EXPECT_EQ(ok->status, "ok");
}

TEST(Serve, StatsOpReportsServeMetrics) {
  DaemonFixture f;
  auto conn = f.connect();
  ASSERT_TRUE(conn.request(eval_req("(+ 1 2)")).has_value());
  serve::Request req;
  req.op = "stats";
  auto resp = conn.request(req);
  ASSERT_TRUE(resp.has_value());
  EXPECT_EQ(resp->status, "ok");
  EXPECT_NE(resp->result.find("measured vs predicted"),
            std::string::npos);
  EXPECT_NE(resp->result.find("serve.requests"), std::string::npos)
      << resp->result;
  EXPECT_NE(resp->result.find("serve.admitted"), std::string::npos);
}

TEST(Serve, MalformedFramesGetProtocolErrors) {
  DaemonFixture f;
  auto conn = f.connect();
  serve::Request bad;
  bad.op = "no-such-op";
  auto resp = conn.request(bad);
  ASSERT_TRUE(resp.has_value());
  EXPECT_EQ(resp->status, "error");
  EXPECT_NE(resp->error.find("unknown op"), std::string::npos);
  // The connection survives a protocol error.
  auto ok = conn.request(eval_req("(+ 1 2)"));
  ASSERT_TRUE(ok.has_value());
  EXPECT_EQ(ok->status, "ok");
}

TEST(Serve, GracefulDrainCancelsInFlight) {
  serve::ServeOptions opts;
  opts.drain_grace_ms = 100;
  DaemonFixture f(opts);
  auto conn = f.connect();

  // An unbounded request (no deadline): only the drain can end it.
  std::thread victim([&] {
    auto r = conn.request(eval_req(
        "(defun spin-forever (n) (spin-forever (+ n 1))) "
        "(spin-forever 0)"));
    // Either a structured stall response ("server draining") or a torn
    // connection if the write raced the socket teardown — both are
    // clean ends; a hang here is the failure mode this test exists for.
    if (r.has_value()) {
      EXPECT_EQ(r->status, "stall");
      EXPECT_NE(r->error.find("server draining"), std::string::npos)
          << r->error;
    }
  });

  // Give the request time to start executing, then drain.
  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  f.daemon.shutdown();
  victim.join();
  f.daemon.join();  // must have fully drained

  // A fresh connection must be refused (listen socket is gone).
  serve::ClientConnection late;
  std::string err;
  EXPECT_FALSE(late.connect("127.0.0.1", f.daemon.port(), &err));
}

TEST(Serve, RestructureOpTransformsARecursiveDefun) {
  DaemonFixture f;
  auto conn = f.connect();
  serve::Request req;
  req.op = "restructure";
  req.name = "count-up";
  req.program =
      "(defun count-up (n acc) (if (< n 1) acc "
      "(count-up (- n 1) (+ acc 1))))";
  auto resp = conn.request(req);
  ASSERT_TRUE(resp.has_value());
  EXPECT_EQ(resp->status, "ok");
  EXPECT_NE(resp->result.find("count-up"), std::string::npos)
      << resp->result;
  // Restructure replies carry a breakdown too, with the transform
  // phase attributed to restructure_ns.
  const curare::serve::Json& bd = resp->metrics.get("breakdown");
  ASSERT_TRUE(bd.is_object()) << resp->metrics.dump();
  EXPECT_GT(bd.get_int("restructure_ns", -1), 0);
}

TEST(Serve, RequestIdIsEchoedOrMinted) {
  DaemonFixture f;
  auto conn = f.connect();
  serve::Request req = eval_req("(+ 1 2)");
  req.request_id = "my-req-007";
  auto resp = conn.request(req);
  ASSERT_TRUE(resp.has_value());
  EXPECT_EQ(resp->status, "ok");
  EXPECT_EQ(resp->metrics.get_string("request_id", ""), "my-req-007");
  const std::int64_t rid = resp->metrics.get_int("rid", 0);
  EXPECT_GT(rid, 0);

  // Without a client id the server mints one from the rid.
  auto anon = conn.request(eval_req("(+ 2 3)"));
  ASSERT_TRUE(anon.has_value());
  const std::int64_t rid2 = anon->metrics.get_int("rid", 0);
  EXPECT_GT(rid2, rid);  // rids are process-unique and monotone
  EXPECT_EQ(anon->metrics.get_string("request_id", ""),
            "r-" + std::to_string(rid2));
}

TEST(Serve, BreakdownComponentsSumNearWallTime) {
  DaemonFixture f;
  auto conn = f.connect();
  // A compute-heavy request (tens of ms of pure eval), so the phases
  // the breakdown tracks dominate the wall clock and fixed per-request
  // overhead (dispatch, JSON assembly) stays inside the 10% tolerance.
  auto resp = conn.request(eval_req(
      "(defun burn (n acc) (if (< n 1) acc (burn (- n 1) (+ acc n)))) "
      "(burn 120000 0)"));
  ASSERT_TRUE(resp.has_value());
  ASSERT_EQ(resp->status, "ok") << resp->error;
  const curare::serve::Json& bd = resp->metrics.get("breakdown");
  ASSERT_TRUE(bd.is_object()) << resp->metrics.dump();
  const std::int64_t wall = bd.get_int("wall_ns", 0);
  const std::int64_t parse = bd.get_int("parse_ns", -1);
  const std::int64_t eval = bd.get_int("eval_ns", -1);
  const std::int64_t admission = bd.get_int("admission_ns", -1);
  const std::int64_t restructure = bd.get_int("restructure_ns", -1);
  ASSERT_GT(wall, 0);
  EXPECT_GE(parse, 0);
  EXPECT_GT(eval, 0);
  EXPECT_GE(admission, 0);
  EXPECT_EQ(restructure, 0);  // plain eval has no transform phase
  // The disjoint phases must account for the request's wall time:
  // within 10% in either direction (lock_wait/gc_pause overlap eval,
  // so they are deliberately left out of the sum).
  const double sum =
      static_cast<double>(admission + parse + eval + restructure);
  EXPECT_GT(sum, 0.9 * static_cast<double>(wall))
      << "admission=" << admission << " parse=" << parse
      << " eval=" << eval << " wall=" << wall;
  EXPECT_LT(sum, 1.1 * static_cast<double>(wall));
}

TEST(Serve, MetricsOpExposesPromAndJson) {
  DaemonFixture f;
  auto conn = f.connect();
  ASSERT_TRUE(conn.request(eval_req("(+ 1 2)")).has_value());

  serve::Request prom;
  prom.op = "metrics";  // prom is the default format
  auto p = conn.request(prom);
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->status, "ok");
  EXPECT_NE(p->result.find("# TYPE curare_serve_requests counter"),
            std::string::npos)
      << p->result;
  EXPECT_NE(p->result.find("curare_serve_request_ns{quantile=\"0.99\"}"),
            std::string::npos);
  EXPECT_NE(p->result.find("curare_obs_trace_dropped"),
            std::string::npos);

  serve::Request json;
  json.op = "metrics";
  json.format = "json";
  auto j = conn.request(json);
  ASSERT_TRUE(j.has_value());
  EXPECT_EQ(j->status, "ok");
  auto parsed = curare::serve::Json::parse(j->result);
  ASSERT_TRUE(parsed.has_value()) << j->result;
  EXPECT_NE(j->result.find("serve.requests"), std::string::npos);

  serve::Request bad;
  bad.op = "metrics";
  bad.format = "xml";
  auto b = conn.request(bad);
  ASSERT_TRUE(b.has_value());
  EXPECT_EQ(b->status, "error");
  EXPECT_NE(b->error.find("unknown format"), std::string::npos);
}

TEST(Serve, TraceOpNeedsTheTracer) {
  DaemonFixture f;
  auto conn = f.connect();
  serve::Request req;
  req.op = "trace";
  auto resp = conn.request(req);
  ASSERT_TRUE(resp.has_value());
  EXPECT_EQ(resp->status, "error");
  EXPECT_NE(resp->error.find("--trace"), std::string::npos)
      << resp->error;
}

TEST(Serve, TraceOpExportsExactlyOneRequestsLane) {
  DaemonFixture f;
  f.daemon.runtime().obs().tracer.set_enabled(true);
  auto conn = f.connect();

  // Spans come from the runtime layers (CRI runs, futures, locks), so
  // drive the transformed workload through the shared pool.
  serve::Request def;
  def.op = "restructure";
  def.name = "count-up";
  def.program =
      "(defun count-up (n acc) (if (< n 1) acc "
      "(count-up (- n 1) (+ acc 1))))";
  auto defined = conn.request(def);
  ASSERT_TRUE(defined.has_value());
  ASSERT_EQ(defined->status, "ok") << defined->error;

  auto ran = conn.request(eval_req("(count-up$parallel 2 200 0)"));
  ASSERT_TRUE(ran.has_value());
  ASSERT_EQ(ran->status, "ok") << ran->error;
  const std::int64_t rid = ran->metrics.get_int("rid", 0);
  ASSERT_GT(rid, 0);

  // Default lane: the session's previous request (the trace op itself
  // runs under a newer rid).
  serve::Request trace;
  trace.op = "trace";
  auto lane = conn.request(trace);
  ASSERT_TRUE(lane.has_value());
  ASSERT_EQ(lane->status, "ok") << lane->error;
  auto parsed = curare::serve::Json::parse(lane->result);
  ASSERT_TRUE(parsed.has_value()) << lane->result;
  // rid is the last arg in each event, so the closing brace anchors
  // the match (rid 5 must not match inside rid 50).
  const std::string rid_key = "\"rid\":" + std::to_string(rid) + "}";
  EXPECT_NE(lane->result.find(rid_key), std::string::npos)
      << lane->result;
  // Every event in the export belongs to that lane: as many rid args
  // as events (one "rid": per event, all with the requested value).
  std::size_t any = 0, mine = 0;
  for (std::size_t pos = lane->result.find("\"rid\":");
       pos != std::string::npos;
       pos = lane->result.find("\"rid\":", pos + 1))
    ++any;
  for (std::size_t pos = lane->result.find(rid_key);
       pos != std::string::npos;
       pos = lane->result.find(rid_key, pos + 1))
    ++mine;
  EXPECT_GT(any, 0u);
  EXPECT_EQ(any, mine) << lane->result;

  // An explicit rid selects the same lane.
  serve::Request by_rid;
  by_rid.op = "trace";
  by_rid.rid = rid;
  auto same = conn.request(by_rid);
  ASSERT_TRUE(same.has_value());
  EXPECT_EQ(same->status, "ok");
  EXPECT_NE(same->result.find(rid_key), std::string::npos);
}

TEST(Serve, ConcurrentSessionsKeepObservabilityApart) {
  serve::ServeOptions opts;
  opts.max_inflight = 8;
  DaemonFixture f(opts);
  f.daemon.runtime().obs().tracer.set_enabled(true);

  constexpr int kSessions = 2;
  Latch both_ready(kSessions);
  struct PerSession {
    std::int64_t rid = 0;
    std::string request_id;
    std::int64_t eval_ns = -1;
    bool ok = false;
  };
  PerSession out[kSessions];
  std::vector<std::thread> threads;
  for (int i = 0; i < kSessions; ++i) {
    threads.emplace_back([&, i] {
      auto conn = f.connect();
      serve::Request def;
      def.op = "restructure";
      def.name = "count-up";
      def.program =
          "(defun count-up (n acc) (if (< n 1) acc "
          "(count-up (- n 1) (+ acc 1))))";
      if (auto d = conn.request(def); !d || d->status != "ok") return;
      both_ready.arrive_and_wait();
      // Both requests are in flight at once: each runs a CRI workload
      // of a different size under its own request identity.
      serve::Request req = eval_req(
          "(count-up$parallel 2 " + std::to_string(200 + 200 * i) +
          " 0)");
      req.request_id = "session-" + std::to_string(i);
      auto resp = conn.request(req);
      if (!resp || resp->status != "ok") return;
      PerSession& mine = out[i];
      mine.rid = resp->metrics.get_int("rid", 0);
      mine.request_id = resp->metrics.get_string("request_id", "");
      mine.eval_ns = resp->metrics.get("breakdown").get_int("eval_ns", -1);
      mine.ok = true;
    });
  }
  for (auto& t : threads) t.join();
  ASSERT_TRUE(out[0].ok);
  ASSERT_TRUE(out[1].ok);
  // Identities never bleed across concurrent sessions: distinct rids,
  // each reply carrying its own client-chosen id and a breakdown
  // measured for that request alone.
  EXPECT_NE(out[0].rid, out[1].rid);
  EXPECT_EQ(out[0].request_id, "session-0");
  EXPECT_EQ(out[1].request_id, "session-1");
  EXPECT_GT(out[0].eval_ns, 0);
  EXPECT_GT(out[1].eval_ns, 0);

  // Span isolation: each rid's trace lane contains only its own
  // events, even though both CRI runs shared the future pool.
  auto conn = f.connect();
  for (int i = 0; i < kSessions; ++i) {
    serve::Request trace;
    trace.op = "trace";
    trace.rid = out[i].rid;
    auto lane = conn.request(trace);
    ASSERT_TRUE(lane.has_value());
    ASSERT_EQ(lane->status, "ok") << lane->error;
    EXPECT_NE(lane->result.find(
                  "\"rid\":" + std::to_string(out[i].rid) + "}"),
              std::string::npos);
    EXPECT_EQ(lane->result.find(
                  "\"rid\":" +
                  std::to_string(out[(i + 1) % kSessions].rid) + "}"),
              std::string::npos)
        << "lane " << out[i].rid << " contains events from "
        << out[(i + 1) % kSessions].rid;
  }
}

// ---------------------------------------------------------------------------
// Resource governance (DESIGN.md §14): per-request quotas and fuel,
// heap watermarks, result caps, and the gc.alloc fault site — all
// observed end to end through the wire protocol. The acceptance bar is
// the runaway canary: a hostile program is clipped with a structured
// status while every other session keeps serving.
// ---------------------------------------------------------------------------

TEST(ServeResource, RunawayAllocationClippedWhileBystanderServes) {
  serve::ServeOptions opts;
  opts.max_inflight = 8;
  opts.mem_quota = 4ull << 20;  // 4 MiB per request
  DaemonFixture f(opts);

  auto victim = f.connect();
  auto bystander = f.connect();

  // The bystander evaluates concurrently with the runaway request.
  std::thread by([&] {
    for (int i = 0; i < 10; ++i) {
      auto r = bystander.request(eval_req("(+ 1 2)"));
      ASSERT_TRUE(r.has_value());
      EXPECT_EQ(r->status, "ok") << r->error;
    }
  });

  auto clipped = victim.request(eval_req("(while t (cons 1 2))"));
  by.join();
  ASSERT_TRUE(clipped.has_value());
  EXPECT_EQ(clipped->status, "resource-exhausted");
  EXPECT_NE(clipped->error.find("memory quota"), std::string::npos)
      << clipped->error;
  EXPECT_EQ(serve::status_exit_code(clipped->status),
            serve::kExitResourceExhausted);

  // The budget dies with the request: the victim's own session keeps
  // serving, with a fresh quota per request.
  auto after = victim.request(eval_req("(* 6 7)"));
  ASSERT_TRUE(after.has_value());
  EXPECT_EQ(after->status, "ok");
  EXPECT_EQ(after->result, "42");

  // The clip is visible to operators: the quota counter moved.
  serve::Request m;
  m.op = "metrics";
  auto prom = victim.request(m);
  ASSERT_TRUE(prom.has_value());
  ASSERT_EQ(prom->status, "ok");
  EXPECT_NE(prom->result.find("curare_resource_exhausted_quota 1"),
            std::string::npos)
      << prom->result;
}

TEST(ServeResource, FuelClipsPureLoopOnBothEngines) {
  // `(while t 1)` never allocates, so the memory quota cannot stop it;
  // fuel rides the shared eval tick, which both engines pass through.
  for (curare::EngineKind engine :
       {curare::EngineKind::kVm, curare::EngineKind::kTree}) {
    serve::ServeOptions opts;
    opts.engine = engine;
    opts.fuel = 200000;
    DaemonFixture f(opts);
    auto conn = f.connect();

    auto clipped = conn.request(eval_req("(while t 1)"));
    ASSERT_TRUE(clipped.has_value());
    EXPECT_EQ(clipped->status, "resource-exhausted")
        << (engine == curare::EngineKind::kVm ? "vm" : "tree");
    EXPECT_NE(clipped->error.find("fuel exhausted"), std::string::npos)
        << clipped->error;

    // Fresh budget per request: a cheap program still completes.
    auto ok = conn.request(eval_req("(+ 40 2)"));
    ASSERT_TRUE(ok.has_value());
    EXPECT_EQ(ok->status, "ok");
    EXPECT_EQ(ok->result, "42");
  }
}

TEST(ServeResource, HeapSoftShedCarriesRetryAfterHint) {
  serve::ServeOptions opts;
  opts.heap_soft = 1;  // daemon startup already grew past one byte
  opts.retry_after_ms = 123;
  DaemonFixture f(opts);
  auto conn = f.connect();

  // Allocating ops shed with the structured overload + backoff hint...
  auto shed = conn.request(eval_req("(+ 1 2)"));
  ASSERT_TRUE(shed.has_value());
  EXPECT_EQ(shed->status, "overloaded");
  EXPECT_NE(shed->error.find("soft watermark"), std::string::npos)
      << shed->error;
  EXPECT_EQ(shed->retry_after_ms, 123);

  // ...while observability ops pass, so an operator can still see the
  // pressure they are being asked to diagnose.
  serve::Request ping;
  ping.op = "ping";
  auto pong = conn.request(ping);
  ASSERT_TRUE(pong.has_value());
  EXPECT_EQ(pong->status, "ok");

  serve::Request m;
  m.op = "metrics";
  auto prom = conn.request(m);
  ASSERT_TRUE(prom.has_value());
  ASSERT_EQ(prom->status, "ok");
  EXPECT_NE(prom->result.find("curare_resource_shed_heap_soft"),
            std::string::npos);
}

TEST(ServeResource, HeapHardWatermarkFailsTheAllocatingRequest) {
  serve::ServeOptions opts;
  opts.heap_hard = 1ull << 20;  // far below what a runaway needs
  DaemonFixture f(opts);
  auto conn = f.connect();

  auto failed = conn.request(eval_req("(while t (cons 1 2))"));
  ASSERT_TRUE(failed.has_value());
  EXPECT_EQ(failed->status, "resource-exhausted");
  EXPECT_NE(failed->error.find("hard watermark"), std::string::npos)
      << failed->error;
}

TEST(ServeResource, ResultCapConvertsOversizedReplies) {
  serve::ServeOptions opts;
  opts.result_cap = 64;
  DaemonFixture f(opts);
  auto conn = f.connect();

  std::string big = "(list";
  for (int i = 0; i < 40; ++i) big += " " + std::to_string(100 + i);
  big += ")";
  auto capped = conn.request(eval_req(big));
  ASSERT_TRUE(capped.has_value());
  EXPECT_EQ(capped->status, "resource-exhausted");
  EXPECT_NE(capped->error.find("result"), std::string::npos)
      << capped->error;
  EXPECT_TRUE(capped->result.empty()) << "the oversized payload must "
                                         "not ride the error reply";

  auto small = conn.request(eval_req("(+ 1 2)"));
  ASSERT_TRUE(small.has_value());
  EXPECT_EQ(small->status, "ok");
  EXPECT_EQ(small->result, "3");
}

TEST(ServeResource, EightSessionsIsolatedWhileOneRunsAway) {
  // The 8-session isolation suite, with a hostile twist: one session
  // burns its quota on a runaway cons loop while the other seven do
  // the setq/readback dance. The clip must not perturb anyone's
  // session state — including the runaway's own.
  serve::ServeOptions opts;
  opts.max_inflight = 16;
  opts.mem_quota = 2ull << 20;
  DaemonFixture f(opts);

  constexpr int kSessions = 8;
  Latch all_connected(kSessions);
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  std::atomic<int> clips{0};
  for (int i = 0; i < kSessions; ++i) {
    threads.emplace_back([&, i] {
      auto conn = f.connect();
      all_connected.arrive_and_wait();
      if (i == 0) {
        auto r = conn.request(eval_req("(while t (cons 1 2))"));
        if (r && r->status == "resource-exhausted") ++clips;
      }
      const std::string mine = std::to_string(1000 + i);
      auto def = conn.request(
          eval_req("(setq session-x " + mine + ") session-x"));
      if (!def || def->status != "ok" || def->result != mine) {
        ++failures;
        return;
      }
      auto readback = conn.request(eval_req("session-x"));
      if (!readback || readback->status != "ok" ||
          readback->result != mine) {
        ++failures;
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(clips.load(), 1) << "the runaway must have been clipped";
}

TEST(ServeResource, GcAllocChaosYieldsStructuredErrorsSessionsSurvive) {
  // The quota's throw path shares its unwind with the gc.alloc fault
  // site; here the injector drives that path at random mid-request
  // points across 8 concurrent sessions. Every reply must be a
  // structured frame (ok or error), and every session must still
  // serve once the chaos stops.
  struct InjectorGuard {
    ~InjectorGuard() {
      curare::runtime::FaultInjector::instance().disable();
    }
  } guard;
  using FI = curare::runtime::FaultInjector;

  serve::ServeOptions opts;
  opts.max_inflight = 16;
  DaemonFixture f(opts);

  constexpr int kSessions = 8;
  std::vector<serve::ClientConnection> conns;
  for (int i = 0; i < kSessions; ++i) {
    conns.push_back(f.connect());
    auto warm = conns.back().request(eval_req("(+ 1 1)"));
    ASSERT_TRUE(warm.has_value());
    ASSERT_EQ(warm->status, "ok");
  }

  FI::instance().configure(
      0xA110C, 0.02, FI::kThrow,
      1u << static_cast<unsigned>(FI::Site::kGcAlloc));

  std::vector<std::thread> threads;
  std::atomic<int> bad{0};
  for (int i = 0; i < kSessions; ++i) {
    threads.emplace_back([&, i] {
      for (int r = 0; r < 25; ++r) {
        auto resp = conns[i].request(eval_req(
            "(defun build (n) (if (> n 0) (cons n (build (- n 1))) "
            "nil)) (build 60) 7"));
        if (!resp) {
          ++bad;  // torn connection: the failure mode under test
          return;
        }
        if (resp->status != "ok" &&
            !(resp->status == "error" &&
              resp->error.find("fault injected") != std::string::npos)) {
          ++bad;
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  FI::instance().disable();

  EXPECT_EQ(bad.load(), 0)
      << "every reply is a structured ok or fault-injected error";
  EXPECT_GT(FI::instance().stats(FI::Site::kGcAlloc).throws, 0u)
      << "the storm must actually have fired";

  // Chaos over: all eight sessions answer correctly again.
  for (int i = 0; i < kSessions; ++i) {
    auto after = conns[i].request(eval_req("(* 6 7)"));
    ASSERT_TRUE(after.has_value());
    EXPECT_EQ(after->status, "ok") << after->error;
    EXPECT_EQ(after->result, "42");
  }
}

TEST(ServeResource, GcAllocChaosAtSessionSetupCostsOnlyThatConnection) {
  // The test above warms its connections before the storm starts, so
  // it never exercises the other place gc.alloc can throw: inside
  // Session construction itself, where the interpreter's prelude
  // allocates before the request loop's catch ladder exists. A fault
  // there must cost exactly that connection — a structured last word,
  // then teardown — never the daemon (a real heap hard watermark
  // takes the same path).
  struct InjectorGuard {
    ~InjectorGuard() {
      curare::runtime::FaultInjector::instance().disable();
    }
  } guard;
  using FI = curare::runtime::FaultInjector;

  DaemonFixture f;

  // Every allocation faults: each cold connection's session setup
  // dies deterministically at its first prelude cons.
  FI::instance().configure(
      0x5E55, 1.0, FI::kThrow,
      1u << static_cast<unsigned>(FI::Site::kGcAlloc));

  int structured = 0;
  for (int i = 0; i < 6; ++i) {
    auto conn = f.connect();
    auto resp = conn.request(eval_req("(+ 1 2)"));
    if (!resp) continue;  // close raced the error frame: tolerated
    EXPECT_EQ(resp->status, "error");
    EXPECT_NE(resp->error.find("session setup failed"), std::string::npos)
        << resp->error;
    EXPECT_NE(resp->error.find("fault injected"), std::string::npos)
        << resp->error;
    ++structured;
  }
  EXPECT_GT(structured, 0)
      << "at least one setup failure must surface as a structured frame";
  EXPECT_GT(FI::instance().stats(FI::Site::kGcAlloc).throws, 0u);
  FI::instance().disable();

  // The daemon took six setup faults and is still fully alive.
  auto conn = f.connect();
  auto after = conn.request(eval_req("(* 6 7)"));
  ASSERT_TRUE(after.has_value());
  EXPECT_EQ(after->status, "ok") << after->error;
  EXPECT_EQ(after->result, "42");
}

TEST(ServeResource, RetryPolicyIsDeterministicAndHonorsHints) {
  serve::RetryPolicy a(3, 100, 42);
  serve::RetryPolicy b(3, 100, 42);
  serve::RetryPolicy other(3, 100, 43);

  bool any_diff = false;
  for (unsigned attempt = 0; attempt < 6; ++attempt) {
    const std::int64_t base = 100ll << attempt;
    const std::int64_t d = a.delay_ms(attempt, 0);
    // Same seed → the exact same schedule, call after call.
    EXPECT_EQ(d, b.delay_ms(attempt, 0));
    EXPECT_EQ(d, a.delay_ms(attempt, 0));
    // Exponential base with bounded jitter: [base, 1.5 * base].
    EXPECT_GE(d, base);
    EXPECT_LE(d, base + base / 2);
    if (d != other.delay_ms(attempt, 0)) any_diff = true;
  }
  EXPECT_TRUE(any_diff) << "different seeds must decorrelate a fleet";

  // A server hint replaces the doubling for that attempt: the daemon
  // knows when pressure recedes better than a blind backoff.
  const std::int64_t hinted = a.delay_ms(5, 40);
  EXPECT_GE(hinted, 40);
  EXPECT_LE(hinted, 60);

  // Degenerate configs stay sane: zero backoff yields zero delay.
  serve::RetryPolicy zero(1, 0, 7);
  EXPECT_EQ(zero.delay_ms(0, 0), 0);
  // Deep attempts clamp the shift instead of overflowing.
  EXPECT_GT(serve::RetryPolicy(40, 100, 7).delay_ms(39, 0), 0);
}
