#include "serve/protocol.hpp"

#include <sys/socket.h>
#include <unistd.h>

#include <thread>

#include <gtest/gtest.h>

#include "serve/exit_codes.hpp"

namespace serve = curare::serve;

namespace {

/// A connected fd pair; index 0 and 1 are the two ends.
struct FdPair {
  int fd[2] = {-1, -1};
  FdPair() { EXPECT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fd), 0); }
  ~FdPair() {
    if (fd[0] >= 0) ::close(fd[0]);
    if (fd[1] >= 0) ::close(fd[1]);
  }
};

}  // namespace

TEST(Protocol, FrameRoundTrip) {
  FdPair p;
  ASSERT_TRUE(serve::write_frame(p.fd[0], "hello"));
  std::string got;
  ASSERT_TRUE(serve::read_frame(p.fd[1], got));
  EXPECT_EQ(got, "hello");
}

TEST(Protocol, EmptyAndBinaryPayloads) {
  FdPair p;
  ASSERT_TRUE(serve::write_frame(p.fd[0], ""));
  std::string payload("a\0b\nc", 5);
  ASSERT_TRUE(serve::write_frame(p.fd[0], payload));
  std::string got;
  ASSERT_TRUE(serve::read_frame(p.fd[1], got));
  EXPECT_EQ(got, "");
  ASSERT_TRUE(serve::read_frame(p.fd[1], got));
  EXPECT_EQ(got, payload);
}

TEST(Protocol, LargeFrameCrossesPipeBuffers) {
  FdPair p;
  const std::string big(1 << 20, 'x');
  // Writer on a thread: 1 MiB exceeds the socket buffer, so a
  // single-threaded write-then-read would deadlock.
  std::thread w([&] { EXPECT_TRUE(serve::write_frame(p.fd[0], big)); });
  std::string got;
  EXPECT_TRUE(serve::read_frame(p.fd[1], got));
  w.join();
  EXPECT_EQ(got.size(), big.size());
  EXPECT_EQ(got, big);
}

TEST(Protocol, RejectsMalformedLengthLine) {
  {
    FdPair p;
    ::write(p.fd[0], "notanumber\nxxxx\n", 16);
    std::string got;
    EXPECT_FALSE(serve::read_frame(p.fd[1], got));
  }
  {
    FdPair p;
    ::write(p.fd[0], "\n", 1);  // empty length line
    std::string got;
    EXPECT_FALSE(serve::read_frame(p.fd[1], got));
  }
}

TEST(Protocol, RejectsOversizedFrame) {
  FdPair p;
  ::write(p.fd[0], "999999999\n", 10);
  std::string got;
  EXPECT_FALSE(serve::read_frame(p.fd[1], got, /*max_bytes=*/1024));
}

TEST(Protocol, EofMidFrameFails) {
  FdPair p;
  ::write(p.fd[0], "100\npartial", 11);
  ::close(p.fd[0]);
  p.fd[0] = -1;
  std::string got;
  EXPECT_FALSE(serve::read_frame(p.fd[1], got));
}

TEST(Protocol, RequestJsonRoundTrip) {
  serve::Request req;
  req.op = "eval";
  req.program = "(+ 1\n 2)";
  req.deadline_ms = 750;
  auto back = serve::Request::from_json(
      *serve::Json::parse(req.to_json().dump()));
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->op, "eval");
  EXPECT_EQ(back->program, "(+ 1\n 2)");
  EXPECT_EQ(back->deadline_ms, 750);
}

TEST(Protocol, RequestRequiresOp) {
  EXPECT_FALSE(serve::Request::from_json(*serve::Json::parse("{}"))
                   .has_value());
  EXPECT_FALSE(serve::Request::from_json(*serve::Json::parse("[1]"))
                   .has_value());
  EXPECT_FALSE(
      serve::Request::from_json(*serve::Json::parse("\"eval\""))
          .has_value());
}

TEST(Protocol, ResponseJsonRoundTrip) {
  serve::Response resp =
      serve::Response::fail(serve::kStatusDeadline, "too slow");
  serve::JsonObject m;
  m["wall_us"] = 42;
  resp.metrics = serve::Json(std::move(m));
  serve::Response back = serve::Response::from_json(
      *serve::Json::parse(resp.to_json().dump()));
  EXPECT_EQ(back.status, "deadline");
  EXPECT_EQ(back.error, "too slow");
  EXPECT_EQ(back.metrics.get_int("wall_us"), 42);
}

TEST(Protocol, StatusExitCodeTable) {
  EXPECT_EQ(serve::status_exit_code("ok"), serve::kExitOk);
  EXPECT_EQ(serve::status_exit_code("error"), serve::kExitError);
  EXPECT_EQ(serve::status_exit_code("stall"), serve::kExitStall);
  EXPECT_EQ(serve::status_exit_code("deadline"), serve::kExitDeadline);
  EXPECT_EQ(serve::status_exit_code("overloaded"),
            serve::kExitOverloaded);
  EXPECT_EQ(serve::status_exit_code("???"), serve::kExitError);
}
