#include "serve/json.hpp"

#include <gtest/gtest.h>

namespace serve = curare::serve;
using serve::Json;
using serve::JsonArray;
using serve::JsonObject;

TEST(Json, ParsesScalars) {
  EXPECT_TRUE(Json::parse("null")->is_null());
  EXPECT_TRUE(Json::parse("true")->as_bool());
  EXPECT_FALSE(Json::parse("false")->as_bool(true));
  EXPECT_DOUBLE_EQ(Json::parse("-12.5")->as_number(), -12.5);
  EXPECT_EQ(Json::parse("42")->as_int(), 42);
  EXPECT_EQ(Json::parse("\"hi\"")->as_string(), "hi");
  EXPECT_DOUBLE_EQ(Json::parse("1e3")->as_number(), 1000.0);
}

TEST(Json, ParsesNested) {
  auto v = Json::parse(
      R"({"op":"eval","args":[1,2,{"k":true}],"deadline_ms":250})");
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->get_string("op"), "eval");
  EXPECT_EQ(v->get_int("deadline_ms"), 250);
  const JsonArray& args = v->get("args").as_array();
  ASSERT_EQ(args.size(), 3u);
  EXPECT_TRUE(args[2].get("k").as_bool());
}

TEST(Json, RejectsMalformed) {
  EXPECT_FALSE(Json::parse("").has_value());
  EXPECT_FALSE(Json::parse("{").has_value());
  EXPECT_FALSE(Json::parse("[1,]").has_value());
  EXPECT_FALSE(Json::parse("{\"a\":}").has_value());
  EXPECT_FALSE(Json::parse("treu").has_value());
  EXPECT_FALSE(Json::parse("1 2").has_value());  // trailing garbage
  EXPECT_FALSE(Json::parse("\"unterminated").has_value());
  EXPECT_FALSE(Json::parse("\"bad\\q\"").has_value());
  EXPECT_FALSE(Json::parse("01").has_value());  // leading zero
}

TEST(Json, RejectsDeepNesting) {
  std::string deep(100, '[');
  deep += std::string(100, ']');
  EXPECT_FALSE(Json::parse(deep).has_value());
  std::string ok(50, '[');
  ok += std::string(50, ']');
  EXPECT_TRUE(Json::parse(ok).has_value());
}

TEST(Json, StringEscapes) {
  auto v = Json::parse(R"("a\n\t\"\\\u0041\u00e9")");
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->as_string(), "a\n\t\"\\A\xc3\xa9");
  // Surrogate pair → 4-byte UTF-8.
  auto pair = Json::parse(R"("\ud83d\ude00")");
  ASSERT_TRUE(pair.has_value());
  EXPECT_EQ(pair->as_string(), "\xf0\x9f\x98\x80");
  // Lone surrogate is malformed.
  EXPECT_FALSE(Json::parse(R"("\ud83d")").has_value());
}

TEST(Json, DumpRoundTrips) {
  JsonObject o;
  o["s"] = "line1\nline2 \"q\"";
  o["n"] = 7;
  o["f"] = 2.5;
  o["b"] = true;
  o["a"] = Json(JsonArray{Json(1), Json("x")});
  const std::string text = Json(std::move(o)).dump();
  auto back = Json::parse(text);
  ASSERT_TRUE(back.has_value()) << text;
  EXPECT_EQ(back->get_string("s"), "line1\nline2 \"q\"");
  EXPECT_EQ(back->get_int("n"), 7);
  EXPECT_DOUBLE_EQ(back->get("f").as_number(), 2.5);
  EXPECT_TRUE(back->get("b").as_bool());
  EXPECT_EQ(back->get("a").as_array()[1].as_string(), "x");
  // Integral numbers print without a fraction.
  EXPECT_NE(text.find("\"n\":7"), std::string::npos) << text;
}

TEST(Json, MissingFieldsUseDefaults) {
  auto v = Json::parse(R"({"op":"eval"})");
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->get_string("absent", "dflt"), "dflt");
  EXPECT_EQ(v->get_int("absent", -1), -1);
  EXPECT_TRUE(v->get("absent").is_null());
  EXPECT_FALSE(v->has("absent"));
}
