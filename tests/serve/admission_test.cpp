#include "serve/admission.hpp"

#include <atomic>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "obs/metrics.hpp"

namespace serve = curare::serve;
using Outcome = serve::AdmissionController::Outcome;

TEST(Admission, AdmitsUpToLimitThenQueues) {
  curare::obs::Metrics m;
  serve::AdmissionController ctl(2, 4, m);
  EXPECT_EQ(ctl.admit(nullptr), Outcome::kAdmitted);
  EXPECT_EQ(ctl.admit(nullptr), Outcome::kAdmitted);
  EXPECT_EQ(ctl.inflight(), 2u);

  // A third admit must block until a slot frees.
  std::atomic<bool> got{false};
  std::thread t([&] {
    EXPECT_EQ(ctl.admit(nullptr), Outcome::kAdmitted);
    got.store(true);
    ctl.release();
  });
  while (ctl.queued() == 0) std::this_thread::yield();
  EXPECT_FALSE(got.load());
  ctl.release();
  t.join();
  EXPECT_TRUE(got.load());
  ctl.release();
  EXPECT_EQ(ctl.inflight(), 0u);
  EXPECT_EQ(m.counter("serve.admitted").get(), 3u);
}

TEST(Admission, RejectsWhenQueueFull) {
  curare::obs::Metrics m;
  serve::AdmissionController ctl(1, 0, m);  // no wait queue at all
  EXPECT_EQ(ctl.admit(nullptr), Outcome::kAdmitted);
  EXPECT_EQ(ctl.admit(nullptr), Outcome::kOverloaded);
  EXPECT_EQ(m.counter("serve.rejected.overload").get(), 1u);
  ctl.release();
  EXPECT_EQ(ctl.admit(nullptr), Outcome::kAdmitted);
  ctl.release();
}

TEST(Admission, QueuedRequestHonorsItsToken) {
  curare::obs::Metrics m;
  serve::AdmissionController ctl(1, 4, m);
  ASSERT_EQ(ctl.admit(nullptr), Outcome::kAdmitted);

  curare::runtime::CancelState tok;
  std::thread t([&] {
    EXPECT_EQ(ctl.admit(&tok), Outcome::kDeadline);
  });
  while (ctl.queued() == 0) std::this_thread::yield();
  tok.cancel("client deadline");
  t.join();
  EXPECT_EQ(m.counter("serve.rejected.deadline").get(), 1u);
  ctl.release();
  EXPECT_TRUE(ctl.idle());
}

TEST(Admission, CloseWakesWaitersWithShutdown) {
  curare::obs::Metrics m;
  serve::AdmissionController ctl(1, 8, m);
  ASSERT_EQ(ctl.admit(nullptr), Outcome::kAdmitted);
  std::vector<std::thread> ts;
  std::atomic<int> shutdowns{0};
  for (int i = 0; i < 3; ++i) {
    ts.emplace_back([&] {
      if (ctl.admit(nullptr) == Outcome::kShutdown) ++shutdowns;
    });
  }
  while (ctl.queued() < 3) std::this_thread::yield();
  ctl.close();
  for (auto& t : ts) t.join();
  EXPECT_EQ(shutdowns.load(), 3);
  EXPECT_EQ(ctl.admit(nullptr), Outcome::kShutdown);
  ctl.release();  // the pre-close slot is still valid to release
  EXPECT_TRUE(ctl.idle());
}

TEST(Admission, TicketReleasesOnlyWhenAdmitted) {
  curare::obs::Metrics m;
  serve::AdmissionController ctl(1, 0, m);
  {
    serve::AdmissionTicket outer(ctl, nullptr);
    ASSERT_TRUE(outer.admitted());
    serve::AdmissionTicket bounced(ctl, nullptr);
    EXPECT_EQ(bounced.outcome(), Outcome::kOverloaded);
    // bounced's destructor must NOT release outer's slot.
  }
  EXPECT_TRUE(ctl.idle());
  serve::AdmissionTicket again(ctl, nullptr);
  EXPECT_TRUE(again.admitted());
}

TEST(Admission, GaugesTrackDepth) {
  curare::obs::Metrics m;
  serve::AdmissionController ctl(1, 4, m);
  ASSERT_EQ(ctl.admit(nullptr), Outcome::kAdmitted);
  EXPECT_EQ(m.gauge("serve.inflight").get(), 1);
  std::thread t([&] {
    EXPECT_EQ(ctl.admit(nullptr), Outcome::kAdmitted);
    ctl.release();
  });
  while (m.gauge("serve.queue_depth").get() == 0)
    std::this_thread::yield();
  ctl.release();
  t.join();
  EXPECT_EQ(m.gauge("serve.inflight").get(), 0);
  EXPECT_EQ(m.gauge("serve.queue_depth").get(), 0);
  EXPECT_GE(m.histogram("serve.queue_wait_ns").count(), 2u);
}
