// Declarations registry tests (paper §6).
#include "decl/declarations.hpp"

#include <gtest/gtest.h>

#include "sexpr/reader.hpp"

namespace curare::decl {
namespace {

class DeclTest : public ::testing::Test {
 protected:
  sexpr::Ctx ctx;
  Declarations decls{ctx};

  Symbol* sym(const char* n) { return ctx.symbols.intern(n); }
};

TEST_F(DeclTest, DefaultsListCellAndArithmetic) {
  EXPECT_TRUE(decls.is_pointer_field(sym("car")));
  EXPECT_TRUE(decls.is_pointer_field(sym("cdr")));
  EXPECT_TRUE(decls.is_reorderable_op(sym("+")));
  EXPECT_TRUE(decls.is_reorderable_op(sym("*")));
  EXPECT_FALSE(decls.is_reorderable_op(sym("-")));
  EXPECT_TRUE(decls.is_unordered_insert(sym("puthash")));
}

TEST_F(DeclTest, DeclareStructure) {
  decls.load(sexpr::read_one(
      ctx,
      "(curare-declare (structure node (pointers next prev) (data val)))"));
  const StructDecl* d = decls.structure(sym("node"));
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->pointer_fields.size(), 2u);
  EXPECT_EQ(d->data_fields.size(), 1u);
  EXPECT_TRUE(decls.is_pointer_field(sym("next")));
  EXPECT_FALSE(decls.is_pointer_field(sym("val")));
  EXPECT_TRUE(decls.is_known_field(sym("val")));
  EXPECT_FALSE(decls.is_known_field(sym("bogus")));
}

TEST_F(DeclTest, InverseBothDirections) {
  decls.load(sexpr::read_one(ctx, "(curare-declare (inverse succ pred))"));
  EXPECT_EQ(decls.inverse_of(sym("succ")), sym("pred"));
  EXPECT_EQ(decls.inverse_of(sym("pred")), sym("succ"));
  EXPECT_EQ(decls.inverse_of(sym("car")), nullptr);
}

TEST_F(DeclTest, OperationProperties) {
  decls.load(sexpr::read_one(
      ctx, "(curare-declare (commutative gcd) (associative gcd)"
           " (atomic gcd))"));
  EXPECT_TRUE(decls.is_reorderable_op(sym("gcd")));
}

TEST_F(DeclTest, PartialPropertiesAreNotReorderable) {
  decls.load(sexpr::read_one(
      ctx, "(curare-declare (commutative foo) (associative foo))"));
  EXPECT_FALSE(decls.is_reorderable_op(sym("foo")))
      << "atomicity is required too";
}

TEST_F(DeclTest, UnorderedAndAnySearch) {
  decls.load(sexpr::read_one(
      ctx, "(curare-declare (unordered insert!) (any-search find-any))"));
  EXPECT_TRUE(decls.is_unordered_insert(sym("insert!")));
  EXPECT_TRUE(decls.is_any_search(sym("find-any")));
}

TEST_F(DeclTest, SappTopLevel) {
  decls.load(sexpr::read_one(ctx, "(curare-declare (sapp f l m))"));
  EXPECT_TRUE(decls.has_sapp(sym("f"), sym("l")));
  EXPECT_TRUE(decls.has_sapp(sym("f"), sym("m")));
  EXPECT_FALSE(decls.has_sapp(sym("g"), sym("l")));
}

TEST_F(DeclTest, RestructureHints) {
  decls.load(sexpr::read_one(
      ctx, "(curare-declare (restructure f) (no-restructure g))"));
  EXPECT_EQ(decls.restructure_hint(sym("f")), std::optional<bool>(true));
  EXPECT_EQ(decls.restructure_hint(sym("g")), std::optional<bool>(false));
  EXPECT_EQ(decls.restructure_hint(sym("h")), std::nullopt);
}

TEST_F(DeclTest, Noalias) {
  decls.load(sexpr::read_one(ctx, "(curare-declare (noalias f))"));
  EXPECT_TRUE(decls.has_noalias(sym("f")));
  EXPECT_FALSE(decls.has_noalias(sym("g")));
}

TEST_F(DeclTest, MalformedClauseThrows) {
  EXPECT_THROW(
      decls.load(sexpr::read_one(ctx, "(curare-declare (frobnicate x))")),
      sexpr::LispError);
  EXPECT_THROW(decls.load(sexpr::read_one(ctx, "(not-a-declare)")),
               sexpr::LispError);
  EXPECT_THROW(
      decls.load(sexpr::read_one(
          ctx, "(curare-declare (structure n (wrong f)))")),
      sexpr::LispError);
}

TEST_F(DeclTest, LoadProgramPicksUpTopLevelAndInline) {
  auto forms = sexpr::read_all(
      ctx,
      "(curare-declare (commutative op1))"
      "(defun f (l)"
      "  (declare (curare (sapp l) (noalias)))"
      "  (f (cdr l)))");
  decls.load_program(forms);
  EXPECT_TRUE(decls.is_commutative(sym("op1")));
  EXPECT_TRUE(decls.has_sapp(sym("f"), sym("l")));
  EXPECT_TRUE(decls.has_noalias(sym("f")));
}

TEST_F(DeclTest, InlineDeclareMustLeadBody) {
  auto forms = sexpr::read_all(
      ctx,
      "(defun f (l) (print l) (declare (curare (sapp l))) (f (cdr l)))");
  decls.load_program(forms);
  EXPECT_FALSE(decls.has_sapp(sym("f"), sym("l")))
      << "declares after the first body form are not scanned";
}

}  // namespace
}  // namespace curare::decl
