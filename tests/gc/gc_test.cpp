// Memory-management subsystem tests: exact live counters, reclamation
// of unreachable objects, root precision (RootScope, future slots,
// queued CRI task arguments), concurrent allocation under repeated
// collections, and GC interaction with aborted/re-run server pools and
// full transform pipelines.
//
// The multithreaded cases double as the TSan/ASan targets wired into
// CI: they exercise the bump-allocation fast path, the two-phase
// stop-the-world handshake, and parallel marking from several threads.
#include "gc/gc.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "curare/curare.hpp"
#include "lisp/interp.hpp"
#include "obs/request.hpp"
#include "runtime/resource.hpp"
#include "runtime/runtime.hpp"
#include "runtime/server_pool.hpp"
#include "runtime/task_queue.hpp"
#include "sexpr/ctx.hpp"
#include "sexpr/equal.hpp"
#include "sexpr/list_ops.hpp"
#include "sexpr/reader.hpp"

namespace curare::gc {
namespace {

using sexpr::car;
using sexpr::cdr;
using sexpr::Value;

TEST(GcHeapTest, ExactLiveCountersTrackAllocationAndReclamation) {
  sexpr::Ctx ctx;
  GcHeap& gc = ctx.heap.gc();
  const std::size_t base = ctx.heap.live_objects();

  {
    RootScope roots(gc);
    {
      MutatorScope ms(gc);
      Value chain = Value::nil();
      for (int i = 0; i < 100; ++i) chain = ctx.heap.cons(Value::fixnum(i), chain);
      roots.add(chain);
    }
    EXPECT_EQ(ctx.heap.live_objects(), base + 100)
        << "counters are exact, not approximate";

    gc.collect("test");
    EXPECT_EQ(ctx.heap.live_objects(), base + 100)
        << "rooted chain survives a collection";
  }
  // Scope gone: the whole chain is garbage now.
  gc.collect("test");
  EXPECT_EQ(ctx.heap.live_objects(), base);
}

TEST(GcHeapTest, UnreachableConsesAreReclaimed) {
  sexpr::Ctx ctx;
  GcHeap& gc = ctx.heap.gc();
  const std::size_t base = ctx.heap.live_objects();
  {
    MutatorScope ms(gc);
    for (int i = 0; i < 1000; ++i) ctx.heap.cons(Value::fixnum(i), Value::nil());
  }
  const std::uint64_t before = gc.stats().reclaimed_objects;
  gc.collect("test");
  EXPECT_EQ(ctx.heap.live_objects(), base);
  EXPECT_GE(gc.stats().reclaimed_objects, before + 1000);
  EXPECT_EQ(gc.stats().live_objects, base);
}

TEST(GcHeapTest, RootScopeContentsSurviveWithStructureIntact) {
  sexpr::Ctx ctx;
  GcHeap& gc = ctx.heap.gc();
  RootScope roots(gc);
  {
    MutatorScope ms(gc);
    Value inner = ctx.heap.cons(Value::fixnum(7), Value::fixnum(8));
    roots.add(ctx.heap.cons(Value::fixnum(1), inner));
  }
  gc.collect("test");
  gc.collect("test");  // survives repeated cycles, not just one

  // Re-read through the still-rooted value (the scope keeps a copy).
  // Allocate a probe to make sure the allocator still works after the
  // sweeps returned blocks.
  MutatorScope ms(gc);
  Value probe = ctx.heap.cons(Value::fixnum(9), Value::nil());
  EXPECT_EQ(car(probe).as_fixnum(), 9);
}

/// An object whose cell exceeds a bump block: exercises the dedicated-
/// block path (no sexpr type embeds its payload, so build one).
struct BigObj : sexpr::Obj {
  BigObj() : sexpr::Obj(sexpr::Kind::Native) {}
  char payload[2 * kBlockSize] = {};
};

TEST(GcHeapTest, OversizedObjectsGetDedicatedBlocksAndAreReclaimed) {
  sexpr::Ctx ctx;
  GcHeap& gc = ctx.heap.gc();
  // Prime this thread's cache so the baseline block count is stable.
  {
    MutatorScope ms(gc);
    ctx.heap.cons(Value::nil(), Value::nil());
  }
  const std::uint64_t blocks_before = gc.stats().total_blocks;
  {
    MutatorScope ms(gc);
    ctx.heap.alloc<BigObj>();  // dropped immediately
  }
  EXPECT_GT(gc.stats().total_blocks, blocks_before);
  gc.collect("test");
  EXPECT_EQ(gc.stats().total_blocks, blocks_before)
      << "dead oversized blocks are released, not pooled";
}

TEST(GcHeapTest, ThresholdArmsAutomaticCollection) {
  sexpr::Ctx ctx;
  GcHeap& gc = ctx.heap.gc();
  gc.set_threshold(kBlockSize);  // every refill crosses the threshold
  {
    MutatorScope ms(gc);
    for (int i = 0; i < 20000; ++i)
      ctx.heap.cons(Value::fixnum(i), Value::nil());
  }
  gc.maybe_collect();
  EXPECT_GE(gc.stats().collections, 1u);
  // Threshold 0 disables the automatic trigger entirely.
  gc.set_threshold(0);
  const std::uint64_t n = gc.stats().collections;
  {
    MutatorScope ms(gc);
    for (int i = 0; i < 20000; ++i)
      ctx.heap.cons(Value::fixnum(i), Value::nil());
  }
  gc.maybe_collect();
  EXPECT_EQ(gc.stats().collections, n);
}

TEST(GcRootPrecisionTest, ResolvedFutureSlotValueSurvives) {
  sexpr::Ctx ctx;
  lisp::Interp in(ctx);
  runtime::Runtime rt(in, 2);
  rt.install();

  // Hold only the C++ FutureState handle: once resolved, the value's
  // sole root is the pool's slot registry.
  auto state = rt.futures().spawn(
      [&ctx] {
        MutatorScope ms(ctx.heap.gc());
        return ctx.heap.cons(Value::fixnum(41), Value::fixnum(42));
      },
      Value::nil());
  Value v = rt.futures().touch(state);
  ASSERT_EQ(car(v).as_fixnum(), 41);

  ctx.heap.gc().collect("test");
  Value again = rt.futures().touch(state);
  EXPECT_EQ(car(again).as_fixnum(), 41);
  EXPECT_EQ(cdr(again).as_fixnum(), 42);
}

TEST(GcRootPrecisionTest, PendingFutureThunkSurvives) {
  sexpr::Ctx ctx;
  lisp::Interp in(ctx);
  runtime::Runtime rt(in, 2);
  rt.install();

  // Each recursion level gets a fresh binding of n, so every thunk
  // captures its own value. A collection may run before any worker
  // picks a task up; the thunk rides along as the task's root.
  in.eval_program(
      "(defun mk (n)"
      "  (if (> n 0) (cons (future (cons n n)) (mk (- n 1))) nil))"
      "(setq fs (mk 50))");
  ctx.heap.gc().collect("test");
  Value n = in.eval_program(
      "(setq total 0)"
      "(dolist (f fs total) (setq total (+ total (car (touch f)))))");
  EXPECT_EQ(n.as_fixnum(), 50 * 51 / 2);
}

TEST(GcRootPrecisionTest, QueuedCriTaskArgumentSurvives) {
  sexpr::Ctx ctx;
  lisp::Interp in(ctx);
  runtime::CriRun run(in, Value::nil(), 1, 1);

  const std::size_t base = ctx.heap.live_objects();
  {
    MutatorScope ms(ctx.heap.gc());
    Value payload = ctx.heap.cons(Value::fixnum(123), Value::nil());
    run.enqueue(0, {payload});
  }
  ctx.heap.gc().collect("test");
  EXPECT_EQ(ctx.heap.live_objects(), base + 1)
      << "a pending task's argument is a root while queued";
}

TEST(GcRootPrecisionTest, NegativeControlUnrootedValueIsCollected) {
  sexpr::Ctx ctx;
  const std::size_t base = ctx.heap.live_objects();
  {
    MutatorScope ms(ctx.heap.gc());
    ctx.heap.cons(Value::fixnum(123), Value::nil());  // dropped
  }
  ctx.heap.gc().collect("test");
  EXPECT_EQ(ctx.heap.live_objects(), base)
      << "without a root the same cons is reclaimed";
}

// ---------------------------------------------------------------------------
// Root precision across every queue implementation. The work-stealing
// rework moved pending tasks out of one mutex-guarded deque into
// per-lane rings and spill vectors; these typed tests pin down that
// for_each_task still reaches a payload wherever it is physically
// parked — owner ring, a sibling lane a thief would rob, or a spill
// vector — and that a payload stops being a root the moment its task
// is dequeued (reclamation is exact, not deferred).
// ---------------------------------------------------------------------------

template <typename Q>
struct QueueFactory;

template <>
struct QueueFactory<runtime::SingleMutexTaskQueues> {
  static std::unique_ptr<runtime::SingleMutexTaskQueues> make(
      std::size_t nsites) {
    return std::make_unique<runtime::SingleMutexTaskQueues>(nsites);
  }
};

template <>
struct QueueFactory<runtime::ShardedTaskQueues> {
  static std::unique_ptr<runtime::ShardedTaskQueues> make(std::size_t nsites) {
    // Capacity-4 rings so a handful of same-site pushes reach the
    // spill vector, the position a ring-only root walk would miss.
    return std::make_unique<runtime::ShardedTaskQueues>(nsites,
                                                        /*ring_capacity=*/4);
  }
};

template <>
struct QueueFactory<runtime::WorkStealingTaskQueues> {
  static std::unique_ptr<runtime::WorkStealingTaskQueues> make(
      std::size_t nsites) {
    return std::make_unique<runtime::WorkStealingTaskQueues>(
        nsites, /*workers=*/2, /*ring_capacity=*/4);
  }
};

/// The CriRun root hookup, reduced to its essence: every queued task's
/// argument vector is a root while — and only while — it is queued.
template <typename Q>
class QueueRootAdapter : public RootSource {
 public:
  explicit QueueRootAdapter(const Q& q) : q_(q) {}
  void gc_roots(std::vector<sexpr::Value>& out) override {
    q_.for_each_task([&out](const runtime::TaskArgs& t) {
      out.insert(out.end(), t.begin(), t.end());
    });
  }

 private:
  const Q& q_;
};

template <typename Q>
class QueueGcRootsTest : public ::testing::Test {};

using QueueImpls =
    ::testing::Types<runtime::SingleMutexTaskQueues,
                     runtime::ShardedTaskQueues,
                     runtime::WorkStealingTaskQueues>;
TYPED_TEST_SUITE(QueueGcRootsTest, QueueImpls);

TYPED_TEST(QueueGcRootsTest, PayloadsSurviveAtEveryQueuePosition) {
  sexpr::Ctx ctx;
  GcHeap& gc = ctx.heap.gc();
  auto q = QueueFactory<TypeParam>::make(2);
  q->attach_gc(&gc);
  QueueRootAdapter<TypeParam> roots(*q);
  gc.add_root_source(&roots);
  const std::size_t base = ctx.heap.live_objects();

  // Payload k is (cons k nil); nine in total, planted so the
  // work-stealing impl has them in all three physical positions.
  int next = 0;
  auto payload = [&](int k) {
    return runtime::TaskArgs{ctx.heap.cons(Value::fixnum(k), Value::nil())};
  };
  {
    MutatorScope ms(gc);
    // 0..3: this thread's pushes — in the work-stealing impl they claim
    // lane 0 and fill its capacity-4 site-0 ring (the owner fast path).
    // 4..5: same site, ring full — the spill vector.
    for (; next < 6; ++next) q->push(0, payload(next));
    // A decoy with no root: precision means the collector reclaims
    // exactly this one while every queued payload survives.
    ctx.heap.cons(Value::fixnum(999), Value::nil());
  }
  // 6..7: pushed by a sibling thread, which claims the second lane —
  // the position a thief's steal would serve. 8: pushed by a third
  // thread with no lane left to claim — the foreign mailbox spill.
  // Joined before collecting: for_each_task wants quiescence, which is
  // exactly what a stop-the-world gives the real collector.
  std::thread([&] {
    MutatorScope ms(gc);
    for (int k = 6; k < 8; ++k) q->push(1, payload(k));
  }).join();
  std::thread([&] {
    MutatorScope ms(gc);
    q->push(1, payload(8));
  }).join();

  gc.collect("test");
  EXPECT_EQ(ctx.heap.live_objects(), base + 9)
      << "all queued payloads survive; the unqueued decoy does not";

  // Dequeue three. Their payloads leave the root set with them: the
  // next collection must reclaim exactly those three.
  long sum = 0;
  for (int i = 0; i < 3; ++i) {
    auto got = q->pop();
    ASSERT_TRUE(got.has_value());
    sum += sexpr::car((*got)[0]).as_fixnum();
  }
  gc.collect("test");
  EXPECT_EQ(ctx.heap.live_objects(), base + 6)
      << "a dequeued task's payload is garbage immediately";

  // Drain the rest — in the work-stealing impl this thread owns lane 0,
  // so payloads 6..8 arrive via the steal path — and verify integrity:
  // every planted fixnum came back exactly once.
  for (int i = 3; i < 9; ++i) {
    auto got = q->pop();
    ASSERT_TRUE(got.has_value());
    sum += sexpr::car((*got)[0]).as_fixnum();
  }
  EXPECT_EQ(sum, 9 * 8 / 2);
  gc.collect("test");
  EXPECT_EQ(ctx.heap.live_objects(), base);
  gc.remove_root_source(&roots);
}

TYPED_TEST(QueueGcRootsTest, RemainingTasksStayRootedAfterClose) {
  sexpr::Ctx ctx;
  GcHeap& gc = ctx.heap.gc();
  auto q = QueueFactory<TypeParam>::make(1);
  q->attach_gc(&gc);
  QueueRootAdapter<TypeParam> roots(*q);
  gc.add_root_source(&roots);
  const std::size_t base = ctx.heap.live_objects();

  {
    MutatorScope ms(gc);
    for (int k = 0; k < 5; ++k)
      q->push(0, {ctx.heap.cons(Value::fixnum(k), Value::nil())});
  }
  q->close();
  gc.collect("test");
  EXPECT_EQ(ctx.heap.live_objects(), base + 5)
      << "close() is not a drain: undrained payloads remain rooted";

  // Post-close pops still serve the backlog (the kill token only
  // arrives once empty), and the roots fall away task by task.
  for (int k = 0; k < 5; ++k) {
    auto got = q->pop();
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(sexpr::car((*got)[0]).as_fixnum(), k) << "FIFO across close";
  }
  EXPECT_FALSE(q->pop().has_value()) << "kill token after the backlog";
  gc.collect("test");
  EXPECT_EQ(ctx.heap.live_objects(), base);
  gc.remove_root_source(&roots);
}

TEST(GcStressTest, ConcurrentAllocationAndCollection) {
  sexpr::Ctx ctx;
  GcHeap& gc = ctx.heap.gc();
  constexpr int kThreads = 4;
  constexpr int kIters = 300;
  constexpr int kChain = 20;

  std::atomic<bool> stop{false};
  std::atomic<int> bad{0};
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&ctx, &gc, &bad] {
      RootScope kept(gc);
      std::vector<Value> mine;
      for (int i = 0; i < kIters; ++i) {
        MutatorScope ms(gc);
        Value chain = Value::nil();
        for (int k = 0; k < kChain; ++k)
          chain = ctx.heap.cons(Value::fixnum(k), chain);
        if (i % 10 == 0) {
          kept.add(chain);
          mine.push_back(chain);
        }
        // Most chains drop here — garbage for the concurrent sweeps.
      }
      // Verify every kept chain end-to-end before the scope dies.
      for (Value chain : mine) {
        MutatorScope ms(gc);
        int expect = kChain - 1;
        for (Value c = chain; !c.is_nil(); c = cdr(c))
          if (car(c).as_fixnum() != expect--) bad.fetch_add(1);
      }
    });
  }

  std::thread collector([&gc, &stop] {
    while (!stop.load()) {
      gc.collect("stress");
      std::this_thread::yield();
    }
  });

  for (std::thread& w : workers) w.join();
  stop.store(true);
  collector.join();

  EXPECT_EQ(bad.load(), 0) << "kept chains must survive intact";
  gc.collect("final");
  EXPECT_GE(gc.stats().collections, 2u);
}

class GcServerPoolTest : public ::testing::Test {
 protected:
  sexpr::Ctx ctx;
  lisp::Interp in{ctx};
  runtime::Runtime rt{in, 2};

  void SetUp() override {
    rt.install();
    // Collect on every block refill: maximal GC pressure during runs.
    ctx.heap.gc().set_threshold(kBlockSize);
  }
};

TEST_F(GcServerPoolTest, AbortedRunCanBeRerunUnderCollections) {
  in.eval_program(
      "(setq visited 0)"
      "(defun f-cri (l)"
      "  (when l"
      "    (when (eq (car l) 'boom) (error \"boom\"))"
      "    (%atomic-incf-var 'visited 1)"
      "    (cons (car l) (car l))"  // garbage per task
      "    (%cri-enqueue 0 (cdr l))))");
  Value fn = in.global("f-cri");
  runtime::CriRun run(in, fn, 1, 4);

  Value poisoned = sexpr::read_one(ctx, "(1 2 3 boom 5 6)");
  EXPECT_THROW(run.run({poisoned}), sexpr::LispError);

  // Same CriRun object, fresh input: termination accounting and the
  // GC hand-off must both have been left consistent by the abort.
  in.eval_program("(setq visited 0)");
  std::string big = "(";
  for (int i = 0; i < 400; ++i) big += std::to_string(i) + " ";
  big += ")";
  Value list = sexpr::read_one(ctx, big);
  runtime::CriStats stats = run.run({list});
  EXPECT_EQ(stats.invocations, 401u);
  EXPECT_EQ(in.eval_program("visited").as_fixnum(), 400);
}

TEST_F(GcServerPoolTest, AllocatingServerBodiesCollectMidRun) {
  in.eval_program(
      "(defun build (n) (if (> n 0) (cons n (build (- n 1))) nil))"
      "(defun sum (l) (if l (+ (car l) (sum (cdr l))) 0))"
      "(setq total 0)"
      "(defun g-cri (l)"
      "  (when l"
      "    (%atomic-incf-var 'total (sum (build 40)))"
      "    (%cri-enqueue 0 (cdr l))))");
  Value fn = in.global("g-cri");
  std::string big = "(";
  for (int i = 0; i < 300; ++i) big += "x ";
  big += ")";
  Value list = sexpr::read_one(ctx, big);
  rt.run_cri(fn, 1, 4, {list});
  EXPECT_EQ(in.eval_program("total").as_fixnum(), 300 * (40 * 41 / 2));
  EXPECT_GE(ctx.heap.gc().stats().collections, 1u)
      << "the threshold must have fired during the run";
}

// ---------------------------------------------------------------------------
// Resource governance (DESIGN.md §14). The allocator is the charge
// point for both the per-request memory quota and the process-wide
// heap watermarks; these tests pin down that a budget breach throws
// *before* the cell is carved (the unwind leaves no half-built object,
// exactly like the gc.alloc fault-injection site) and that the heap
// keeps serving normal allocations once the pressure is gone.
// ---------------------------------------------------------------------------

TEST(GcResourceTest, MemQuotaBreachThrowsAndLeavesHeapConsistent) {
  sexpr::Ctx ctx;
  GcHeap& gc = ctx.heap.gc();
  const std::size_t base = ctx.heap.live_objects();

  auto rc = std::make_shared<obs::RequestContext>();
  rc->mem_quota = 16 * 1024;
  bool threw = false;
  {
    obs::RequestScope scope(rc);
    MutatorScope ms(gc);
    try {
      for (int i = 0; i < 100000; ++i)
        ctx.heap.cons(Value::fixnum(i), Value::nil());
    } catch (const runtime::ResourceExhausted& e) {
      threw = true;
      EXPECT_EQ(e.kind(), runtime::ResourceExhausted::Kind::kMemQuota);
    }
  }
  ASSERT_TRUE(threw) << "a 16 KiB quota cannot survive 100k conses";
  EXPECT_GT(rc->mem_used.load(), rc->mem_quota)
      << "the breaching charge itself is recorded";

  // The throw unwound out of allocate() before any cell was carved:
  // every successfully returned cons is garbage now, nothing else.
  gc.collect("test");
  EXPECT_EQ(ctx.heap.live_objects(), base);

  // With the budget scope gone the same thread allocates freely again.
  MutatorScope ms(gc);
  Value probe = ctx.heap.cons(Value::fixnum(7), Value::nil());
  EXPECT_EQ(car(probe).as_fixnum(), 7);
}

TEST(GcResourceTest, QuotaIsPerRequestNotPerThread) {
  sexpr::Ctx ctx;
  GcHeap& gc = ctx.heap.gc();

  // Two contexts on the same thread: exhausting the first must not
  // taint the second — the budget lives in the context, not the heap.
  auto starved = std::make_shared<obs::RequestContext>();
  starved->mem_quota = 1;  // any allocation breaches
  {
    obs::RequestScope scope(starved);
    MutatorScope ms(gc);
    EXPECT_THROW(ctx.heap.cons(Value::nil(), Value::nil()),
                 runtime::ResourceExhausted);
  }
  auto roomy = std::make_shared<obs::RequestContext>();
  roomy->mem_quota = 1 << 20;
  {
    obs::RequestScope scope(roomy);
    MutatorScope ms(gc);
    Value v = ctx.heap.cons(Value::fixnum(1), Value::nil());
    EXPECT_EQ(car(v).as_fixnum(), 1);
  }
  EXPECT_GT(roomy->mem_used.load(), 0u);
}

TEST(GcResourceTest, HeapHardWatermarkFailsAllocationNotTheProcess) {
  sexpr::Ctx ctx;
  GcHeap& gc = ctx.heap.gc();

  // Park the hard limit below the next block refill: growth past it
  // must surface as a catchable error, not an OS-level OOM.
  gc.set_heap_limits(0, gc.used_bytes_estimate() + 1);
  bool threw = false;
  {
    MutatorScope ms(gc);
    try {
      for (int i = 0; i < 100000; ++i)
        ctx.heap.cons(Value::fixnum(i), Value::nil());
    } catch (const runtime::ResourceExhausted& e) {
      threw = true;
      EXPECT_EQ(e.kind(), runtime::ResourceExhausted::Kind::kHeapHard);
    }
  }
  ASSERT_TRUE(threw);

  // Lifting the limit (an operator raising --heap-hard) restores
  // service; the aborted allocation left the heap consistent.
  gc.set_heap_limits(0, 0);
  gc.collect("test");
  MutatorScope ms(gc);
  Value probe = ctx.heap.cons(Value::fixnum(9), Value::nil());
  EXPECT_EQ(car(probe).as_fixnum(), 9);
}

TEST(GcResourceTest, SoftWatermarkArmsCollectionAndRecedesAfterSweep) {
  sexpr::Ctx ctx;
  GcHeap& gc = ctx.heap.gc();
  gc.set_threshold(0);  // isolate the watermark trigger

  {
    MutatorScope ms(gc);
    for (int i = 0; i < 20000; ++i)
      ctx.heap.cons(Value::fixnum(i), Value::nil());  // all garbage
  }
  const std::uint64_t grown = gc.used_bytes_estimate();
  ASSERT_GT(grown, 0u);
  gc.set_heap_limits(grown / 2, 0);
  EXPECT_TRUE(gc.above_soft_watermark());

  // A sweep re-bases the estimate to live bytes: the dead 20k conses
  // fall out and the measure recedes below the soft line — the
  // property that lets the serving layer stop shedding once GC has
  // caught up (heap_bytes_, the monotone capacity total, could not
  // express this).
  gc.collect("test");
  EXPECT_LT(gc.used_bytes_estimate(), grown / 2);
  EXPECT_FALSE(gc.above_soft_watermark());
}

TEST(GcTransformTest, TransformedRunMatchesSequentialUnderLowThreshold) {
  sexpr::Ctx ctx;
  Curare cur(ctx, 4);
  ctx.heap.gc().set_threshold(2 * kBlockSize);

  cur.load_program(
      "(setq seen 0)"
      "(defun count-elts (l)"
      "  (when l (%atomic-incf-var 'seen 1) (count-elts (cdr l))))");
  TransformPlan plan = cur.transform("count-elts");
  ASSERT_TRUE(plan.ok) << plan.failure;

  std::string big = "(";
  for (int i = 0; i < 2000; ++i) big += std::to_string(i) + " ";
  big += ")";
  for (int round = 0; round < 5; ++round) {
    cur.interp().eval_program("(setq seen 0)");
    RootScope roots(ctx.heap.gc());
    Value args0;
    {
      MutatorScope ms(ctx.heap.gc());
      args0 = sexpr::read_one(ctx, big);
      roots.add(args0);
    }
    const Value args[] = {args0};
    cur.run_parallel("count-elts", args, 4);
    EXPECT_EQ(cur.interp().eval_program("seen").as_fixnum(), 2000)
        << "round " << round;
  }
  EXPECT_EQ(cur.interp().ctx().heap.live_objects(),
            ctx.heap.live_objects());
}

}  // namespace
}  // namespace curare::gc
