// curare_serve — the multi-session serving daemon.
//
//   curare_serve [opts]
//
// Listens on a local TCP socket and serves the length-prefixed JSON
// protocol (src/serve/protocol.hpp): each connection gets its own
// session — an isolated interpreter and top-level environment — over
// the shared heap, lock manager, future pool, and metrics. Use
// curare_client to talk to it.
//
// Options (every value flag also accepts --flag=value):
//   --port N            listen port (default 0 = kernel-assigned;
//                       the bound port is printed on stdout)
//   --port-file PATH    also write the bound port to PATH (for
//                       scripts that must not parse stdout)
//   --host ADDR         bind address (default 127.0.0.1)
//   --max-inflight N    concurrent executing requests (default 8)
//   --queue-limit N     waiting requests before "overloaded" (default 32)
//   --deadline-ms N     default per-request deadline when the request
//                       carries none (default 0 = unlimited)
//   --drain-grace-ms N  how long SIGTERM waits for in-flight requests
//                       before cancelling them (default 2000)
//   --stall-ms N        per-CRI-run watchdog window (default 0 = off)
//   --lock-budget-ms N  cap any single blocked lock acquisition
//   --workers N         future-pool threads (default hw concurrency)
//   --engine NAME       evaluator for every session: vm (bytecode,
//                       default) or tree (the tree-walking oracle)
//   --mem-quota N       per-request GC-allocation quota in bytes
//                       (k/m/g suffixes accepted; 0 = unlimited);
//                       a crossing request answers
//                       status="resource-exhausted" and only that
//                       request dies
//   --heap-soft N       heap soft watermark: above it, eval and
//                       restructure admissions shed with
//                       status="overloaded" + retry_after_ms while
//                       GC urgency is raised
//   --heap-hard N       heap hard watermark: above it, in-flight
//                       allocations fail with resource-exhausted
//                       instead of reaching the OS OOM killer
//   --fuel N            per-request eval-step budget (tree steps /
//                       VM instructions; 0 = unlimited)
//   --result-cap N      cap on a reply's result+output bytes
//   --retry-after-ms N  backoff hint stamped on overloaded responses
//                       (default 100)
//   --chaos SEED:RATE[:KINDS[:SITES]]  arm the fault injector; SITES
//                       is a comma list of injection sites
//                       (e.g. queue.push,task.run — default all)
//   --prelude PATH      program file evaluated into every session
//                       before its first request; by default it is
//                       evaluated once into a template session and
//                       captured as an image that new connections
//                       clone (warm start, DESIGN.md §15)
//   --image-save PATH   persist the captured session image so a
//                       restarted daemon can skip prelude evaluation
//   --image-load PATH   start from a saved image instead of
//                       evaluating --prelude (corrupt or
//                       version-skewed files fail startup loudly)
//   --no-image          re-evaluate the prelude per session instead
//                       of cloning (the cold-start baseline)
//   --restructure-cache N  restructure-cache entry bound
//                       (default 1024; 0 disables the cache)
//   --stats             print the metrics report on exit
//   --trace             enable the tracer: requests' spans stay in the
//                       per-thread rings and the `trace` op can export
//                       one request's lane as Chrome trace JSON
//   --profile[=N]       arm the sampling eval profiler (1-in-N eval
//                       steps, default 64); the report rides `stats`
//
// Exit: 0 after a graceful SIGTERM/SIGINT drain; 1 on socket errors;
// 2 on a bad command line (the shared table in serve/exit_codes.hpp).
#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iterator>
#include <string>

#include <unistd.h>

#include "obs/profiler.hpp"
#include "obs/recorder.hpp"
#include "runtime/fault_injector.hpp"
#include "serve/exit_codes.hpp"
#include "serve/server.hpp"
#include "sexpr/ctx.hpp"

namespace {

int g_signal_pipe[2] = {-1, -1};

/// "64m" → 67108864; plain bytes without a suffix (the CLI's
/// --gc-threshold grammar, reused for the governance byte flags).
bool parse_bytes(const std::string& text, std::uint64_t& out) {
  if (text.empty()) return false;
  std::uint64_t mult = 1;
  std::string digits = text;
  switch (digits.back()) {
    case 'k': case 'K': mult = 1024; digits.pop_back(); break;
    case 'm': case 'M': mult = 1024 * 1024; digits.pop_back(); break;
    case 'g': case 'G': mult = 1024 * 1024 * 1024; digits.pop_back(); break;
    default: break;
  }
  if (digits.empty()) return false;
  std::uint64_t n = 0;
  for (char c : digits) {
    if (c < '0' || c > '9') return false;
    n = n * 10 + static_cast<std::uint64_t>(c - '0');
  }
  out = n * mult;
  return true;
}

extern "C" void on_signal(int) {
  const char byte = 1;
  // Best-effort: if the pipe is full a drain is already pending.
  [[maybe_unused]] ssize_t n = ::write(g_signal_pipe[1], &byte, 1);
}

/// SEED:RATE[:KINDS[:SITES]] — the CLI's --chaos grammar plus an
/// optional site list (queue.push,task.run,…) for targeted injection.
bool parse_chaos(const std::string& text, std::uint64_t& seed,
                 double& rate, unsigned& kinds, unsigned& sites) {
  using curare::runtime::FaultInjector;
  kinds = FaultInjector::kAllKinds;
  sites = FaultInjector::kAllSites;
  const auto c1 = text.find(':');
  if (c1 == std::string::npos) return false;
  const auto c2 = text.find(':', c1 + 1);
  const auto c3 =
      c2 == std::string::npos ? std::string::npos : text.find(':', c2 + 1);
  try {
    seed = std::stoull(text.substr(0, c1), nullptr, 0);
    rate = std::stod(text.substr(
        c1 + 1,
        c2 == std::string::npos ? std::string::npos : c2 - c1 - 1));
  } catch (...) {
    return false;
  }
  if (c2 != std::string::npos) {
    const std::string kinds_text = text.substr(
        c2 + 1,
        c3 == std::string::npos ? std::string::npos : c3 - c2 - 1);
    if (!kinds_text.empty() && kinds_text != "all") {
      kinds = 0;
      std::size_t pos = 0;
      while (pos <= kinds_text.size()) {
        const auto comma = kinds_text.find(',', pos);
        const std::string k = kinds_text.substr(
            pos, comma == std::string::npos ? std::string::npos
                                            : comma - pos);
        if (k == "delay") {
          kinds |= FaultInjector::kDelay;
        } else if (k == "throw") {
          kinds |= FaultInjector::kThrow;
        } else if (k == "wake") {
          kinds |= FaultInjector::kWake;
        } else if (k == "all") {
          kinds |= FaultInjector::kAllKinds;
        } else {
          return false;
        }
        if (comma == std::string::npos) break;
        pos = comma + 1;
      }
      if (kinds == 0) return false;
    }
  }
  if (c3 != std::string::npos) {
    const std::string sites_text = text.substr(c3 + 1);
    if (!sites_text.empty() && sites_text != "all") {
      sites = 0;
      std::size_t pos = 0;
      while (pos <= sites_text.size()) {
        const auto comma = sites_text.find(',', pos);
        const std::string s = sites_text.substr(
            pos, comma == std::string::npos ? std::string::npos
                                            : comma - pos);
        unsigned bit = 0;
        if (!FaultInjector::site_bit(s, bit)) return false;
        sites |= bit;
        if (comma == std::string::npos) break;
        pos = comma + 1;
      }
      if (sites == 0) return false;
    }
  }
  return rate > 0.0 && rate <= 1.0;
}

int usage() {
  std::fprintf(
      stderr,
      "usage: curare_serve [--port N] [--port-file PATH] [--host ADDR]\n"
      "                    [--max-inflight N] [--queue-limit N]\n"
      "                    [--deadline-ms N] [--drain-grace-ms N]\n"
      "                    [--stall-ms N] [--lock-budget-ms N]\n"
      "                    [--workers N] [--engine vm|tree]\n"
      "                    [--mem-quota N] [--heap-soft N] [--heap-hard N]\n"
      "                    [--fuel N] [--result-cap N] [--retry-after-ms N]\n"
      "                    [--chaos SEED:RATE[:KINDS[:SITES]]]\n"
      "                    [--prelude PATH] [--image-save PATH]\n"
      "                    [--image-load PATH] [--no-image]\n"
      "                    [--restructure-cache N]\n"
      "                    [--stats] [--trace] [--profile[=N]]\n");
  return curare::serve::kExitUsage;
}

}  // namespace

int main(int argc, char** argv) {
  curare::serve::ServeOptions opts;
  std::string port_file;
  bool stats = false;
  bool trace = false;
  std::int64_t profile_period = 0;  // 0 = profiler off
  std::int64_t stall_ms = 0;
  std::int64_t lock_budget_ms = 0;
  bool have_chaos = false;
  std::uint64_t chaos_seed = 0;
  double chaos_rate = 0;
  unsigned chaos_kinds = 0;
  unsigned chaos_sites = 0;

  // Value flags accept both "--flag VALUE" and "--flag=VALUE".
  auto take_value = [&](int& i, const std::string& arg,
                        const std::string& flag,
                        std::string& out) -> bool {
    if (arg.rfind(flag + "=", 0) == 0) {
      out = arg.substr(flag.size() + 1);
      return true;
    }
    if (arg != flag) return false;
    if (i + 1 >= argc) {
      std::fprintf(stderr, "%s requires a value\n", flag.c_str());
      std::exit(curare::serve::kExitUsage);
    }
    out = argv[++i];
    return true;
  };
  auto parse_nonneg = [](const std::string& flag, const std::string& text,
                         std::int64_t& out) {
    char* end = nullptr;
    const long long v = std::strtoll(text.c_str(), &end, 10);
    if (end == text.c_str() || *end != '\0' || v < 0) {
      std::fprintf(stderr, "%s: bad value '%s'\n", flag.c_str(),
                   text.c_str());
      std::exit(curare::serve::kExitUsage);
    }
    out = v;
  };

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    std::string v;
    std::int64_t n = 0;
    if (take_value(i, arg, "--port", v)) {
      parse_nonneg("--port", v, n);
      opts.port = static_cast<int>(n);
    } else if (take_value(i, arg, "--port-file", v)) {
      port_file = v;
    } else if (take_value(i, arg, "--host", v)) {
      opts.host = v;
    } else if (take_value(i, arg, "--max-inflight", v)) {
      parse_nonneg("--max-inflight", v, n);
      opts.max_inflight = static_cast<std::size_t>(n);
    } else if (take_value(i, arg, "--queue-limit", v)) {
      parse_nonneg("--queue-limit", v, n);
      opts.queue_limit = static_cast<std::size_t>(n);
    } else if (take_value(i, arg, "--deadline-ms", v)) {
      parse_nonneg("--deadline-ms", v, opts.default_deadline_ms);
    } else if (take_value(i, arg, "--drain-grace-ms", v)) {
      parse_nonneg("--drain-grace-ms", v, opts.drain_grace_ms);
    } else if (take_value(i, arg, "--stall-ms", v)) {
      parse_nonneg("--stall-ms", v, stall_ms);
    } else if (take_value(i, arg, "--lock-budget-ms", v)) {
      parse_nonneg("--lock-budget-ms", v, lock_budget_ms);
    } else if (take_value(i, arg, "--workers", v)) {
      parse_nonneg("--workers", v, n);
      opts.workers = static_cast<std::size_t>(n);
    } else if (take_value(i, arg, "--engine", v)) {
      if (v == "vm") {
        opts.engine = curare::EngineKind::kVm;
      } else if (v == "tree") {
        opts.engine = curare::EngineKind::kTree;
      } else {
        std::fprintf(stderr, "--engine: unknown engine '%s' (vm|tree)\n",
                     v.c_str());
        return curare::serve::kExitUsage;
      }
    } else if (take_value(i, arg, "--mem-quota", v)) {
      if (!parse_bytes(v, opts.mem_quota)) {
        std::fprintf(stderr, "--mem-quota: bad byte count '%s'\n",
                     v.c_str());
        return curare::serve::kExitUsage;
      }
    } else if (take_value(i, arg, "--heap-soft", v)) {
      if (!parse_bytes(v, opts.heap_soft)) {
        std::fprintf(stderr, "--heap-soft: bad byte count '%s'\n",
                     v.c_str());
        return curare::serve::kExitUsage;
      }
    } else if (take_value(i, arg, "--heap-hard", v)) {
      if (!parse_bytes(v, opts.heap_hard)) {
        std::fprintf(stderr, "--heap-hard: bad byte count '%s'\n",
                     v.c_str());
        return curare::serve::kExitUsage;
      }
    } else if (take_value(i, arg, "--fuel", v)) {
      parse_nonneg("--fuel", v, n);
      opts.fuel = static_cast<std::uint64_t>(n);
    } else if (take_value(i, arg, "--result-cap", v)) {
      std::uint64_t cap = 0;
      if (!parse_bytes(v, cap)) {
        std::fprintf(stderr, "--result-cap: bad byte count '%s'\n",
                     v.c_str());
        return curare::serve::kExitUsage;
      }
      opts.result_cap = static_cast<std::size_t>(cap);
    } else if (take_value(i, arg, "--retry-after-ms", v)) {
      parse_nonneg("--retry-after-ms", v, opts.retry_after_ms);
    } else if (take_value(i, arg, "--prelude", v)) {
      std::ifstream in(v, std::ios::binary);
      if (!in) {
        std::fprintf(stderr, "--prelude: cannot read '%s'\n", v.c_str());
        return curare::serve::kExitUsage;
      }
      opts.prelude_src.assign(std::istreambuf_iterator<char>(in),
                              std::istreambuf_iterator<char>());
    } else if (take_value(i, arg, "--image-save", v)) {
      opts.image_save = v;
    } else if (take_value(i, arg, "--image-load", v)) {
      opts.image_load = v;
    } else if (arg == "--no-image") {
      opts.use_image = false;
    } else if (take_value(i, arg, "--restructure-cache", v)) {
      parse_nonneg("--restructure-cache", v, n);
      opts.restructure_cache_cap = static_cast<std::size_t>(n);
    } else if (take_value(i, arg, "--chaos", v)) {
      if (!parse_chaos(v, chaos_seed, chaos_rate, chaos_kinds,
                       chaos_sites)) {
        std::fprintf(stderr,
                     "--chaos wants SEED:RATE[:KINDS[:SITES]] with "
                     "RATE in (0,1]\n");
        return curare::serve::kExitUsage;
      }
      have_chaos = true;
    } else if (arg == "--stats") {
      stats = true;
    } else if (arg == "--trace") {
      trace = true;
    } else if (arg == "--profile") {
      profile_period = curare::obs::Profiler::kDefaultPeriod;
    } else if (arg.rfind("--profile=", 0) == 0) {
      parse_nonneg("--profile", arg.substr(10), profile_period);
      if (profile_period == 0) {
        std::fprintf(stderr, "--profile: period must be >= 1\n");
        return curare::serve::kExitUsage;
      }
    } else {
      std::fprintf(stderr, "unknown option %s\n", arg.c_str());
      return usage();
    }
  }

  if (::pipe(g_signal_pipe) != 0) {
    std::perror("pipe");
    return curare::serve::kExitError;
  }
  std::signal(SIGTERM, on_signal);
  std::signal(SIGINT, on_signal);
  std::signal(SIGPIPE, SIG_IGN);  // torn clients are routine

  curare::sexpr::Ctx ctx;
  curare::serve::ServeDaemon daemon(ctx, opts);
  daemon.runtime().set_stall_ms(stall_ms);
  daemon.runtime().locks().set_wait_budget_ms(lock_budget_ms);
  if (have_chaos) {
    curare::runtime::FaultInjector::instance().configure(
        chaos_seed, chaos_rate, chaos_kinds, chaos_sites);
  }
  if (trace) daemon.runtime().obs().tracer.set_enabled(true);
  if (profile_period > 0) {
    auto& prof = curare::obs::Profiler::instance();
    prof.set_period(static_cast<unsigned>(profile_period));
    prof.set_enabled(true);
  }

  std::string err;
  if (!daemon.start(&err)) {
    std::fprintf(stderr, "curare_serve: %s\n", err.c_str());
    return curare::serve::kExitError;
  }
  std::printf("curare_serve: listening on %s:%d\n", opts.host.c_str(),
              daemon.port());
  std::fflush(stdout);
  if (!port_file.empty()) {
    std::ofstream pf(port_file);
    pf << daemon.port() << "\n";
    if (!pf) {
      std::fprintf(stderr, "curare_serve: cannot write %s\n",
                   port_file.c_str());
      daemon.shutdown();
      return curare::serve::kExitError;
    }
  }

  // Park until a signal lands (self-pipe: the handler only writes).
  char byte = 0;
  while (::read(g_signal_pipe[0], &byte, 1) < 0 && errno == EINTR) {
  }
  std::printf("curare_serve: draining\n");
  std::fflush(stdout);
  daemon.shutdown();
  if (stats) {
    std::printf("%s",
                curare::obs::full_report(daemon.runtime().obs()).c_str());
  }
  std::printf("curare_serve: drained, exiting\n");
  return curare::serve::kExitOk;
}
