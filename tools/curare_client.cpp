// curare_client — command-line client for curare_serve.
//
//   curare_client --port N [opts] -e "(+ 1 2)"     eval one expression
//   curare_client --port N [opts] program.lisp     eval a file
//   curare_client --port N --op stats              server-side report
//   curare_client --port N --op restructure [--name F] program.lisp
//   curare_client --port N --stats-format=prom     metrics exposition
//   curare_client --port N --op trace [--rid N]    one request's spans
//   curare_client --port N --op ping
//
// Options (every value flag also accepts --flag=value):
//   --port N         server port (required)
//   --host ADDR      server address (default 127.0.0.1)
//   --deadline-ms N  per-request deadline; the server cancels the run
//                    and answers status="deadline"
//   --op OP          eval | restructure | stats | metrics | trace |
//                    ping (default eval)
//   --name F         restructure: the defun to transform
//   --request-id ID  client-chosen id echoed in the reply's metrics
//                    (else the server generates one)
//   --rid N          trace: which request lane to export (default:
//                    the session's previous request)
//   --stats-format F metrics exposition format, prom or json
//                    (shorthand for --op metrics)
//   --retries N      retry budget for "overloaded" responses and
//                    refused connects (default 0 = fail fast);
//                    transport losses mid-request never retry — the
//                    daemon may already have run the program
//   --backoff-ms B   first retry delay, doubling per attempt with up
//                    to +50% deterministic jitter (default 100); a
//                    response's retry_after_ms hint overrides the
//                    doubling for that attempt
//   --retry-seed S   seed for the jitter stream (default 1), so
//                    scripted runs are reproducible
//   -e EXPR          inline program instead of a file
//
// The exit code mirrors the response status via the shared table in
// serve/exit_codes.hpp: ok=0, error=1, stall=3, deadline=4,
// overloaded=5, resource-exhausted=6 — so scripts treat a remote run
// exactly like a local `curare` invocation.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>

#include "serve/client.hpp"
#include "serve/exit_codes.hpp"

namespace {

int usage() {
  std::fprintf(
      stderr,
      "usage: curare_client --port N [--host ADDR] [--deadline-ms N]\n"
      "                     [--op eval|restructure|stats|metrics|trace|ping]\n"
      "                     [--name FN] [--request-id ID] [--rid N]\n"
      "                     [--stats-format prom|json]\n"
      "                     [--retries N] [--backoff-ms B] [--retry-seed S]\n"
      "                     [-e EXPR | program.lisp]\n");
  return curare::serve::kExitUsage;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace curare::serve;
  std::string host = "127.0.0.1";
  int port = 0;
  Request req;
  req.op = "eval";
  std::string file;
  bool have_program = false;
  long long retries = 0;
  long long backoff_ms = 100;
  unsigned long long retry_seed = 1;

  auto take_value = [&](int& i, const std::string& arg,
                        const std::string& flag,
                        std::string& out) -> bool {
    if (arg.rfind(flag + "=", 0) == 0) {
      out = arg.substr(flag.size() + 1);
      return true;
    }
    if (arg != flag) return false;
    if (i + 1 >= argc) {
      std::fprintf(stderr, "%s requires a value\n", flag.c_str());
      std::exit(kExitUsage);
    }
    out = argv[++i];
    return true;
  };

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    std::string v;
    if (take_value(i, arg, "--port", v)) {
      port = std::atoi(v.c_str());
    } else if (take_value(i, arg, "--host", v)) {
      host = v;
    } else if (take_value(i, arg, "--deadline-ms", v)) {
      char* end = nullptr;
      const long long ms = std::strtoll(v.c_str(), &end, 10);
      if (end == v.c_str() || *end != '\0' || ms < 0) {
        std::fprintf(stderr, "--deadline-ms: bad value '%s'\n",
                     v.c_str());
        return kExitUsage;
      }
      req.deadline_ms = ms;
    } else if (take_value(i, arg, "--op", v)) {
      req.op = v;
    } else if (take_value(i, arg, "--name", v)) {
      req.name = v;
    } else if (take_value(i, arg, "--request-id", v)) {
      req.request_id = v;
    } else if (take_value(i, arg, "--rid", v)) {
      char* end = nullptr;
      const long long rid = std::strtoll(v.c_str(), &end, 10);
      if (end == v.c_str() || *end != '\0' || rid <= 0) {
        std::fprintf(stderr, "--rid: bad value '%s'\n", v.c_str());
        return kExitUsage;
      }
      req.rid = rid;
    } else if (take_value(i, arg, "--retries", v)) {
      char* end = nullptr;
      retries = std::strtoll(v.c_str(), &end, 10);
      if (end == v.c_str() || *end != '\0' || retries < 0) {
        std::fprintf(stderr, "--retries: bad value '%s'\n", v.c_str());
        return kExitUsage;
      }
    } else if (take_value(i, arg, "--backoff-ms", v)) {
      char* end = nullptr;
      backoff_ms = std::strtoll(v.c_str(), &end, 10);
      if (end == v.c_str() || *end != '\0' || backoff_ms < 0) {
        std::fprintf(stderr, "--backoff-ms: bad value '%s'\n", v.c_str());
        return kExitUsage;
      }
    } else if (take_value(i, arg, "--retry-seed", v)) {
      char* end = nullptr;
      retry_seed = std::strtoull(v.c_str(), &end, 0);
      if (end == v.c_str() || *end != '\0') {
        std::fprintf(stderr, "--retry-seed: bad value '%s'\n", v.c_str());
        return kExitUsage;
      }
    } else if (take_value(i, arg, "--stats-format", v)) {
      if (v != "prom" && v != "json") {
        std::fprintf(stderr,
                     "--stats-format: want prom or json, got '%s'\n",
                     v.c_str());
        return kExitUsage;
      }
      req.op = "metrics";
      req.format = v;
    } else if (take_value(i, arg, "-e", v)) {
      req.program = v;
      have_program = true;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "unknown option %s\n", arg.c_str());
      return usage();
    } else if (!file.empty()) {
      std::fprintf(stderr,
                   "multiple program files ('%s' and '%s'); pass one\n",
                   file.c_str(), arg.c_str());
      return kExitUsage;
    } else {
      file = arg;
    }
  }

  if (port <= 0) {
    std::fprintf(stderr, "--port is required\n");
    return usage();
  }
  if (!file.empty()) {
    if (have_program) {
      std::fprintf(stderr, "pass either -e or a file, not both\n");
      return kExitUsage;
    }
    std::ifstream in(file);
    if (!in) {
      std::fprintf(stderr, "cannot open %s\n", file.c_str());
      return kExitError;
    }
    std::stringstream ss;
    ss << in.rdbuf();
    req.program = ss.str();
    have_program = true;
  }
  if ((req.op == "eval" || req.op == "restructure") && !have_program &&
      req.name.empty()) {
    std::fprintf(stderr, "op %s needs a program (-e or a file)\n",
                 req.op.c_str());
    return usage();
  }

  // Retry loop: a refused connect or an "overloaded" rejection means
  // the request never executed, so trying again is always safe. A
  // torn connection mid-request is not retried — the daemon may have
  // run the program before the transport died.
  const RetryPolicy policy(static_cast<unsigned>(retries), backoff_ms,
                           retry_seed);
  auto backoff = [&](unsigned attempt, std::int64_t hint) {
    const std::int64_t ms = policy.delay_ms(attempt, hint);
    std::fprintf(stderr,
                 "curare_client: retrying in %lld ms (attempt %u of "
                 "%u)\n",
                 static_cast<long long>(ms), attempt + 1,
                 policy.retries());
    std::this_thread::sleep_for(std::chrono::milliseconds(ms));
  };

  ClientConnection conn;
  std::optional<Response> resp;
  for (unsigned attempt = 0;; ++attempt) {
    std::string err;
    if (!conn.connected() && !conn.connect(host, port, &err)) {
      if (attempt < policy.retries()) {
        backoff(attempt, 0);
        continue;
      }
      std::fprintf(stderr, "curare_client: %s\n", err.c_str());
      return kExitError;
    }
    resp = conn.request(req);
    if (!resp) {
      std::fprintf(stderr, "curare_client: connection lost\n");
      return kExitError;
    }
    if (resp->status == kStatusOverloaded && attempt < policy.retries()) {
      backoff(attempt, resp->retry_after_ms);
      continue;
    }
    break;
  }
  if (!resp->output.empty()) std::printf("%s", resp->output.c_str());
  if (!resp->result.empty()) std::printf("%s\n", resp->result.c_str());
  if (!resp->error.empty()) {
    std::fprintf(stderr, "%s: %s\n", resp->status.c_str(),
                 resp->error.c_str());
  }
  return status_exit_code(resp->status);
}
