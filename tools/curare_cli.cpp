// curare — command-line front end to the restructurer.
//
//   curare [opts] program.lisp   batch: load, analyze & transform every
//                                recursive defun, print the report and
//                                the restructured program (top-level
//                                forms run, so %cri-run calls execute)
//   curare [opts] -e "(…)"       evaluate one form and print the result
//   curare [opts]                interactive REPL with commands:
//                                  :analyze NAME     §2/§3 analysis report
//                                  :transform NAME   restructure NAME
//                                  :par S (NAME a…)  run transformed NAME
//                                  :sapp EXPR        SAPP check a value
//                                  :stats            metrics + measured-
//                                                    vs-predicted T(S)
//                                  :trace FILE       dump trace JSON
//                                  :profile [on|off|report|clear]
//                                                    sampling eval
//                                                    profiler control
//                                  :gc               force a collection
//                                  :quit
//                                anything else is evaluated as Lisp.
// Options:
//   --trace FILE   record runtime events (locks, tasks, futures) and
//                  write a Chrome trace-event JSON to FILE on exit —
//                  open it in Perfetto or chrome://tracing
//   --stats        print the metrics registry and the §4.1 measured-
//                  vs-predicted server-allocation table on exit
//   --gc-threshold N   bytes of fresh allocation between collections
//                  (k/m/g suffixes accepted; 0 disables the automatic
//                  trigger — explicit :gc still collects)
//   --gc-stats     print collector statistics (pauses, reclaimed,
//                  live) on exit
//   --deadline-ms N    abort any CRI run (and batch/-e evaluation) that
//                  exceeds N ms of wall clock with a StallError +
//                  diagnostic dump (exit code 3)
//   --stall-ms N   arm the per-run watchdog: abort a CRI run in which
//                  no task completes for N ms (exit code 3)
//   --lock-budget-ms N  cap any single blocked lock acquisition
//   --chaos SEED:RATE[:KINDS[:SITES]]  arm the deterministic fault
//                  injector (KINDS ⊆ delay,throw,wake — default all;
//                  SITES ⊆ lock.acquire,queue.push,future.spawn,
//                  task.run,gc.alloc,queue.steal — default all); see
//                  :resilience for per-site counts
//   --profile[=N]  arm the sampling eval profiler (one sample per N
//                  eval steps, default 64, power of two >= 8) and print
//                  the collapsed hot-form report on exit
//   --engine NAME  evaluator: vm (bytecode, default) or tree (the
//                  tree-walking oracle)
//   --mem-quota N  per-run GC-allocation quota in bytes (k/m/g
//                  suffixes; 0 = unlimited) — a crossing run dies with
//                  a ResourceExhausted diagnosis and exit code 6; in
//                  the REPL only that line dies and the session
//                  continues with a fresh budget per line
//   --fuel N       per-run eval-step budget (tree steps / VM
//                  instructions; 0 = unlimited), same exit code 6
//   --heap-soft N  arm the heap soft watermark: crossing it raises GC
//                  urgency (a collection at every next quiescent point
//                  while above)
//   --heap-hard N  arm the heap hard watermark: above it allocations
//                  fail with ResourceExhausted instead of growing
//                  toward the OS OOM killer
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "curare/curare.hpp"
#include "curare/struct_sapp.hpp"
#include "obs/profiler.hpp"
#include "obs/recorder.hpp"
#include "obs/request.hpp"
#include "runtime/fault_injector.hpp"
#include "runtime/resilience.hpp"
#include "runtime/resource.hpp"
#include "serve/exit_codes.hpp"
#include "sexpr/list_ops.hpp"
#include "sexpr/printer.hpp"
#include "sexpr/reader.hpp"

namespace {

using curare::Curare;
using curare::Value;

/// "64m" → 67108864; plain bytes without a suffix.
bool parse_bytes(const std::string& text, std::size_t& out) {
  if (text.empty()) return false;
  std::size_t mult = 1;
  std::string digits = text;
  switch (digits.back()) {
    case 'k': case 'K': mult = 1024; digits.pop_back(); break;
    case 'm': case 'M': mult = 1024 * 1024; digits.pop_back(); break;
    case 'g': case 'G': mult = 1024 * 1024 * 1024; digits.pop_back(); break;
    default: break;
  }
  if (digits.empty()) return false;
  std::size_t n = 0;
  for (char c : digits) {
    if (c < '0' || c > '9') return false;
    n = n * 10 + static_cast<std::size_t>(c - '0');
  }
  out = n * mult;
  return true;
}

/// "1234:0.02", "0x4d2:0.02:delay,throw", or
/// "7:0.01:throw:queue.steal,queue.push" → injector configuration.
/// Base 0 so hex seeds (the convention in CI) parse as written. The
/// optional fourth field names sites (see FaultInjector::site_name) so
/// a replay can aim at one subsystem — e.g. the steal path alone.
bool parse_chaos(const std::string& text, std::uint64_t& seed,
                 double& rate, unsigned& kinds, unsigned& sites) {
  using curare::runtime::FaultInjector;
  const auto c1 = text.find(':');
  if (c1 == std::string::npos) return false;
  const auto c2 = text.find(':', c1 + 1);
  const auto c3 =
      c2 == std::string::npos ? std::string::npos : text.find(':', c2 + 1);
  try {
    seed = std::stoull(text.substr(0, c1), nullptr, 0);
    rate = std::stod(text.substr(
        c1 + 1, c2 == std::string::npos ? std::string::npos
                                        : c2 - c1 - 1));
  } catch (...) {
    return false;
  }
  kinds = FaultInjector::kAllKinds;
  if (c2 != std::string::npos) {
    const std::string kinds_text = text.substr(
        c2 + 1, c3 == std::string::npos ? std::string::npos
                                        : c3 - c2 - 1);
    kinds = 0;
    std::istringstream iss(kinds_text);
    std::string k;
    while (std::getline(iss, k, ',')) {
      if (k == "delay") {
        kinds |= FaultInjector::kDelay;
      } else if (k == "throw") {
        kinds |= FaultInjector::kThrow;
      } else if (k == "wake") {
        kinds |= FaultInjector::kWake;
      } else if (k == "all") {
        kinds |= FaultInjector::kAllKinds;
      } else {
        return false;
      }
    }
    if (kinds == 0) return false;
  }
  sites = FaultInjector::kAllSites;
  if (c3 != std::string::npos) {
    const std::string sites_text = text.substr(c3 + 1);
    if (!sites_text.empty() && sites_text != "all") {
      sites = 0;
      std::istringstream iss(sites_text);
      std::string s;
      while (std::getline(iss, s, ',')) {
        unsigned bit = 0;
        if (!FaultInjector::site_bit(s, bit)) return false;
        sites |= bit;
      }
      if (sites == 0) return false;
    }
  }
  return rate > 0.0 && rate <= 1.0;
}

/// A stalled run is its own exit condition (code 3), with the dump on
/// stderr so CI logs show *why* — not just that — a program died.
void print_stall(const curare::runtime::StallError& e) {
  std::fprintf(stderr, "stall: %s\n", e.what());
  if (!e.dump().empty()) std::fprintf(stderr, "%s", e.dump().c_str());
}

/// A fresh per-run budget context (quota/fuel), or null when no
/// governance flag was passed — RequestScope treats null as a no-op,
/// matching CancelScope's convention. Fresh per run/REPL line: a
/// clipped line must not tax the next one.
std::shared_ptr<curare::obs::RequestContext> fresh_budget(
    std::uint64_t mem_quota, std::uint64_t fuel) {
  if (mem_quota == 0 && fuel == 0) return nullptr;
  auto rc = std::make_shared<curare::obs::RequestContext>();
  rc->rid = curare::obs::RequestContext::next_rid();
  rc->mem_quota = mem_quota;
  rc->fuel_limit = fuel;
  return rc;
}

/// Deadline-killed runs exit 4, watchdog/cancel stalls exit 3 — the
/// shared table in serve/exit_codes.hpp, so a local run and a served
/// one report the same way. The cancel reason is the discriminator
/// ("deadline exceeded" is minted only by CancelState's deadline path).
int stall_exit_code(const curare::runtime::StallError& e) {
  return std::string_view(e.what()).find("deadline exceeded") !=
                 std::string_view::npos
             ? curare::serve::kExitDeadline
             : curare::serve::kExitStall;
}

void print_gc_stats(const curare::gc::GcHeap& gc, std::FILE* to) {
  const curare::gc::GcStats st = gc.stats();
  std::fprintf(to,
               "gc: %llu collection(s), pause last/max/total %llu/%llu/%llu "
               "us\n"
               "gc: reclaimed %llu object(s) / %llu bytes; live %llu "
               "object(s) / %llu bytes; heap %llu bytes in %llu block(s) "
               "(%llu free)\n",
               static_cast<unsigned long long>(st.collections),
               static_cast<unsigned long long>(st.last_pause_ns / 1000),
               static_cast<unsigned long long>(st.max_pause_ns / 1000),
               static_cast<unsigned long long>(st.total_pause_ns / 1000),
               static_cast<unsigned long long>(st.reclaimed_objects),
               static_cast<unsigned long long>(st.reclaimed_bytes),
               static_cast<unsigned long long>(st.live_objects),
               static_cast<unsigned long long>(st.live_bytes),
               static_cast<unsigned long long>(st.heap_bytes),
               static_cast<unsigned long long>(st.total_blocks),
               static_cast<unsigned long long>(st.free_blocks));
}

void batch_transform_all(Curare& cur, const std::string& source) {
  cur.load_program(source);
  // Loading evaluated every top-level form; surface what they printed.
  const std::string out = cur.interp().take_output();
  if (!out.empty()) std::printf("%s", out.c_str());

  // Find every defun in the program and try to restructure it. The
  // re-read forms live in a plain C++ vector, so they are pinned for
  // the duration of the walk — transforms and top-level runs inside the
  // loop may trigger collections.
  curare::sexpr::Ctx& ctx = cur.interp().ctx();
  curare::gc::GcHeap& gc = ctx.heap.gc();
  curare::gc::RootScope roots(gc);
  std::vector<Value> forms;
  {
    curare::gc::MutatorScope ms(gc);
    forms = curare::sexpr::read_all(ctx, source);
    for (Value f : forms) roots.add(f);
  }
  for (Value form : forms) {
    gc.maybe_collect();
    if (!form.is(curare::sexpr::Kind::Cons)) continue;
    Value head = curare::sexpr::car(form);
    if (!head.is(curare::sexpr::Kind::Symbol)) continue;
    if (curare::sexpr::as_symbol(head)->name != "defun") continue;
    const std::string name =
        curare::sexpr::as_symbol(curare::sexpr::cadr(form))->name;

    std::printf("────────────────────────────────────────────\n");
    std::printf(";; %s\n", name.c_str());
    curare::AnalysisReport report = cur.analyze(name);
    std::printf("%s\n", report.to_string().c_str());
    if (!report.info.is_recursive()) {
      std::printf(";; not recursive — left unchanged\n\n");
      continue;
    }
    curare::TransformPlan plan = cur.transform(name);
    std::printf("%s\n", plan.to_string().c_str());
    for (Value f : plan.forms)
      std::printf("%s\n", curare::sexpr::write_str(f).c_str());
    std::printf("\n");
  }
}

bool write_trace_file(const curare::obs::Recorder& rec,
                      const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "cannot write trace to %s\n", path.c_str());
    return false;
  }
  rec.tracer.write_chrome_trace(out);
  std::fprintf(stderr,
               "trace: %zu event(s) from %zu thread(s) → %s "
               "(open in Perfetto / chrome://tracing)\n",
               rec.tracer.events_recorded(), rec.tracer.thread_count(),
               path.c_str());
  return true;
}

int repl(Curare& cur, std::uint64_t mem_quota, std::uint64_t fuel) {
  curare::sexpr::Ctx& ctx = cur.interp().ctx();
  std::string line;
  std::printf("curare> ");
  while (std::getline(std::cin, line)) {
    try {
      // Each line runs under its own budget, like each served request.
      curare::obs::RequestScope budget(fresh_budget(mem_quota, fuel));
      if (line.empty()) {
        // fallthrough to the prompt
      } else if (line == ":quit" || line == ":q") {
        return 0;
      } else if (line.rfind(":analyze ", 0) == 0) {
        std::printf("%s",
                    cur.analyze(line.substr(9)).to_string().c_str());
      } else if (line.rfind(":transform ", 0) == 0) {
        curare::TransformPlan plan = cur.transform(line.substr(11));
        std::printf("%s", plan.to_string().c_str());
        for (Value f : plan.forms)
          std::printf("%s\n", curare::sexpr::write_str(f).c_str());
      } else if (line.rfind(":par ", 0) == 0) {
        // :par S (fn arg...)
        std::istringstream iss(line.substr(5));
        std::size_t servers = 0;
        iss >> servers;
        std::string call;
        std::getline(iss, call);
        curare::gc::RootScope arg_roots(ctx.heap.gc());
        Value form;
        std::vector<Value> args;
        {
          // The parsed form and each evaluated argument must survive
          // the evaluation of the next one (and the parallel run).
          curare::gc::MutatorScope ms(ctx.heap.gc());
          form = curare::sexpr::read_one(ctx, call);
          arg_roots.add(form);
          for (Value a = curare::sexpr::cdr(form); !a.is_nil();
               a = curare::sexpr::cdr(a)) {
            Value v = cur.interp().eval_top(curare::sexpr::car(a));
            args.push_back(v);
            arg_roots.add(v);
          }
        }
        const std::string fname =
            curare::sexpr::as_symbol(curare::sexpr::car(form))->name;
        Value out = cur.run_parallel(fname, args, servers);
        std::printf("%s\n", curare::sexpr::write_str(out).c_str());
      } else if (line.rfind(":sapp ", 0) == 0) {
        Value v = cur.eval_program(line.substr(6));
        auto r = curare::check_struct_sapp(v, cur.declarations());
        std::printf("%s (%zu instances)%s%s\n",
                    r.holds ? "SAPP holds" : "SAPP violated",
                    r.instances, r.violation.empty() ? "" : ": ",
                    r.violation.c_str());
      } else if (line == ":gc") {
        const std::uint64_t freed = ctx.heap.gc().collect("repl");
        std::printf("collected: %llu byte(s) reclaimed, %zu object(s) "
                    "live\n",
                    static_cast<unsigned long long>(freed),
                    ctx.heap.live_objects());
      } else if (line == ":stats") {
        std::printf("%s",
                    curare::obs::full_report(cur.runtime().obs()).c_str());
      } else if (line == ":resilience") {
        std::printf("%s", cur.runtime().resilience_report().c_str());
      } else if (line.rfind(":trace ", 0) == 0) {
        // Dumps what the ring buffers currently hold; recording must
        // have been enabled (run the CLI with --trace, which also
        // writes a final dump on exit).
        write_trace_file(cur.runtime().obs(), line.substr(7));
      } else if (line == ":profile" || line.rfind(":profile ", 0) == 0) {
        auto& prof = curare::obs::Profiler::instance();
        const std::string sub =
            line.size() > 9 ? line.substr(9) : std::string("report");
        if (sub == "on") {
          prof.set_enabled(true);
          std::printf("profiler armed (1-in-%u eval steps)\n",
                      prof.period());
        } else if (sub == "off") {
          prof.set_enabled(false);
          std::printf("profiler disarmed (%llu sample(s) held; "
                      ":profile report to print)\n",
                      static_cast<unsigned long long>(prof.samples()));
        } else if (sub == "clear") {
          prof.clear();
          std::printf("profiler samples cleared\n");
        } else if (sub == "report") {
          std::printf("%s", prof.hot_report().c_str());
        } else {
          std::printf(":profile wants on, off, report, or clear\n");
        }
      } else if (line[0] == ':') {
        std::printf("unknown command; try :analyze :transform :par "
                    ":sapp :stats :resilience :trace :profile :gc "
                    ":quit\n");
      } else {
        // Plain Lisp. Loading through the driver keeps defuns known to
        // the transformer.
        cur.load_program(line);
        std::string out = cur.interp().take_output();
        if (!out.empty()) std::printf("%s", out.c_str());
      }
    } catch (const curare::runtime::StallError& e) {
      // The run died but the session survives: the CriRun drained its
      // queues on abort and a fresh run mints a fresh token.
      print_stall(e);
    } catch (const curare::runtime::ResourceExhausted& e) {
      // Same survival story as a stall: exactly this line was
      // clipped; the next line gets a fresh budget.
      std::printf("resource-exhausted: %s\n", e.what());
    } catch (const std::exception& e) {
      std::printf("error: %s\n", e.what());
    }
    // Each REPL line is a quiescent point: nothing typed so far holds
    // unrooted Values on this stack.
    ctx.heap.gc().maybe_collect();
    std::printf("curare> ");
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string trace_path;
  bool stats = false;
  bool gc_stats = false;
  bool have_threshold = false;
  std::size_t gc_threshold = 0;
  std::string eval_expr;
  bool have_eval = false;
  std::string file;
  std::int64_t deadline_ms = 0;
  std::int64_t stall_ms = 0;
  curare::EngineKind engine = curare::EngineKind::kVm;
  std::int64_t lock_budget_ms = 0;
  std::size_t mem_quota = 0;
  std::int64_t fuel = 0;
  std::size_t heap_soft = 0;
  std::size_t heap_hard = 0;
  bool have_chaos = false;
  std::uint64_t chaos_seed = 0;
  double chaos_rate = 0;
  unsigned chaos_kinds = 0;
  unsigned chaos_sites = curare::runtime::FaultInjector::kAllSites;
  long long profile_period = 0;  // 0 = profiler off

  // Every value flag accepts both "--flag VALUE" and "--flag=VALUE"
  // spellings; take_value recognizes the flag and yields the value.
  auto take_value = [&](int& i, const std::string& arg,
                        const std::string& flag,
                        std::string& out) -> bool {
    if (arg.rfind(flag + "=", 0) == 0) {
      out = arg.substr(flag.size() + 1);
      return true;
    }
    if (arg != flag) return false;
    if (i + 1 >= argc) {
      std::fprintf(stderr, "%s requires an argument\n", flag.c_str());
      std::exit(curare::serve::kExitUsage);
    }
    out = argv[++i];
    return true;
  };
  auto parse_ms = [](const std::string& flag, const std::string& text,
                     std::int64_t& out) -> bool {
    char* end = nullptr;
    const long long v = std::strtoll(text.c_str(), &end, 10);
    if (end == text.c_str() || *end != '\0' || v < 0) {
      std::fprintf(stderr, "%s: bad millisecond count '%s'\n",
                   flag.c_str(), text.c_str());
      return false;
    }
    out = v;
    return true;
  };

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    std::string v;
    if (take_value(i, arg, "--gc-threshold", v)) {
      if (!parse_bytes(v, gc_threshold)) {
        std::fprintf(stderr,
                     "--gc-threshold requires a byte count (k/m/g "
                     "suffixes accepted)\n");
        return curare::serve::kExitUsage;
      }
      have_threshold = true;
    } else if (arg == "--gc-stats") {
      gc_stats = true;
    } else if (take_value(i, arg, "--deadline-ms", v)) {
      if (!parse_ms("--deadline-ms", v, deadline_ms))
        return curare::serve::kExitUsage;
    } else if (take_value(i, arg, "--stall-ms", v)) {
      if (!parse_ms("--stall-ms", v, stall_ms))
        return curare::serve::kExitUsage;
    } else if (take_value(i, arg, "--lock-budget-ms", v)) {
      if (!parse_ms("--lock-budget-ms", v, lock_budget_ms))
        return curare::serve::kExitUsage;
    } else if (take_value(i, arg, "--mem-quota", v)) {
      if (!parse_bytes(v, mem_quota)) {
        std::fprintf(stderr, "--mem-quota: bad byte count '%s'\n",
                     v.c_str());
        return curare::serve::kExitUsage;
      }
    } else if (take_value(i, arg, "--fuel", v)) {
      if (!parse_ms("--fuel", v, fuel))  // same nonneg-integer grammar
        return curare::serve::kExitUsage;
    } else if (take_value(i, arg, "--heap-soft", v)) {
      if (!parse_bytes(v, heap_soft)) {
        std::fprintf(stderr, "--heap-soft: bad byte count '%s'\n",
                     v.c_str());
        return curare::serve::kExitUsage;
      }
    } else if (take_value(i, arg, "--heap-hard", v)) {
      if (!parse_bytes(v, heap_hard)) {
        std::fprintf(stderr, "--heap-hard: bad byte count '%s'\n",
                     v.c_str());
        return curare::serve::kExitUsage;
      }
    } else if (take_value(i, arg, "--chaos", v)) {
      if (!parse_chaos(v, chaos_seed, chaos_rate, chaos_kinds,
                       chaos_sites)) {
        std::fprintf(stderr,
                     "--chaos requires SEED:RATE[:KINDS[:SITES]] with "
                     "RATE in (0,1], KINDS from delay,throw,wake,all "
                     "and SITES from lock.acquire,queue.push,"
                     "future.spawn,task.run,gc.alloc,queue.steal,all\n");
        return curare::serve::kExitUsage;
      }
      have_chaos = true;
    } else if (take_value(i, arg, "--trace", v)) {
      trace_path = v;
    } else if (take_value(i, arg, "--engine", v)) {
      if (v == "vm") {
        engine = curare::EngineKind::kVm;
      } else if (v == "tree") {
        engine = curare::EngineKind::kTree;
      } else {
        std::fprintf(stderr, "--engine: unknown engine '%s' (vm|tree)\n",
                     v.c_str());
        return curare::serve::kExitUsage;
      }
    } else if (take_value(i, arg, "-e", v)) {
      eval_expr = v;
      have_eval = true;
    } else if (arg == "--stats") {
      stats = true;
    } else if (arg == "--profile") {
      profile_period = curare::obs::Profiler::kDefaultPeriod;
    } else if (arg.rfind("--profile=", 0) == 0) {
      char* end = nullptr;
      const std::string v2 = arg.substr(10);
      profile_period = std::strtoll(v2.c_str(), &end, 10);
      if (end == v2.c_str() || *end != '\0' || profile_period <= 0) {
        std::fprintf(stderr, "--profile: bad period '%s'\n", v2.c_str());
        return curare::serve::kExitUsage;
      }
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr,
                   "unknown option %s\nusage: curare [--trace out.json] "
                   "[--stats] [--profile[=N]] [--gc-threshold N] "
                   "[--gc-stats] [--deadline-ms N] [--stall-ms N] "
                   "[--lock-budget-ms N] [--engine vm|tree] "
                   "[--mem-quota N] [--fuel N] "
                   "[--heap-soft N] [--heap-hard N] "
                   "[--chaos SEED:RATE[:KINDS[:SITES]]] "
                   "[-e EXPR | program.lisp]\n",
                   arg.c_str());
      return curare::serve::kExitUsage;
    } else if (!file.empty()) {
      // A silently dropped first file is worse than an error: the user
      // almost certainly misspelled a flag or forgot quoting.
      std::fprintf(stderr,
                   "multiple program files ('%s' and '%s'); pass one\n",
                   file.c_str(), arg.c_str());
      return curare::serve::kExitUsage;
    } else {
      file = arg;
    }
  }

  curare::sexpr::Ctx ctx;
  Curare cur(ctx);
  cur.set_engine(engine);
  cur.interp().set_echo(false);
  if (have_threshold) ctx.heap.gc().set_threshold(gc_threshold);
  if (heap_soft != 0 || heap_hard != 0)
    ctx.heap.gc().set_heap_limits(heap_soft, heap_hard);
  if (!trace_path.empty()) cur.runtime().obs().tracer.set_enabled(true);
  cur.runtime().set_deadline_ms(deadline_ms);
  cur.runtime().set_stall_ms(stall_ms);
  cur.runtime().locks().set_wait_budget_ms(lock_budget_ms);
  // Armed only now: chaos targets the user's program, and a fault
  // thrown during interpreter bootstrap would escape every handler.
  if (have_chaos) {
    curare::runtime::FaultInjector::instance().configure(
        chaos_seed, chaos_rate, chaos_kinds, chaos_sites);
  }
  if (profile_period > 0) {
    auto& prof = curare::obs::Profiler::instance();
    prof.set_period(static_cast<unsigned>(profile_period));
    prof.set_enabled(true);
  }

  // Batch/-e evaluations get a top-level token too, so a deadline also
  // bounds Lisp that hangs *outside* any CRI run (top-level infinite
  // recursion, a lock wait on the main thread). CRI runs install their
  // own per-run token on their server threads; this one governs the
  // main thread only.
  curare::runtime::CancelState top_token;
  top_token.dump_fn = [&cur] {
    return cur.runtime().locks().dump_held();
  };
  if (deadline_ms > 0 && (have_eval || !file.empty())) {
    top_token.set_deadline_ms(deadline_ms);
  }
  curare::runtime::CancelScope top_scope(
      deadline_ms > 0 && (have_eval || !file.empty()) ? &top_token
                                                      : nullptr);

  // Deferred reporting so every mode (batch, -e, REPL) flushes the
  // trace and stats on the way out, including on error exits.
  auto finish = [&](int code) {
    if (!trace_path.empty() &&
        !write_trace_file(cur.runtime().obs(), trace_path)) {
      code = code == 0 ? 1 : code;
    }
    if (stats) {
      std::printf("%s",
                  curare::obs::full_report(cur.runtime().obs()).c_str());
    }
    // --stats already embeds the profile via full_report; avoid
    // printing the same table twice.
    if (profile_period > 0 && !stats) {
      std::printf("%s",
                  curare::obs::Profiler::instance().hot_report().c_str());
    }
    if (gc_stats) print_gc_stats(ctx.heap.gc(), stdout);
    return code;
  };

  if (have_eval) {
    try {
      curare::obs::RequestScope budget(
          fresh_budget(mem_quota, static_cast<std::uint64_t>(fuel)));
      Value v = cur.eval_program(eval_expr);
      std::string out = cur.interp().take_output();
      if (!out.empty()) std::printf("%s", out.c_str());
      std::printf("%s\n", curare::sexpr::write_str(v).c_str());
      return finish(curare::serve::kExitOk);
    } catch (const curare::runtime::StallError& e) {
      print_stall(e);
      return finish(stall_exit_code(e));
    } catch (const curare::runtime::ResourceExhausted& e) {
      std::fprintf(stderr, "resource-exhausted: %s\n", e.what());
      return finish(curare::serve::kExitResourceExhausted);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "error: %s\n", e.what());
      return finish(curare::serve::kExitError);
    }
  }

  if (!file.empty()) {
    std::ifstream in(file);
    if (!in) {
      std::fprintf(stderr, "cannot open %s\n", file.c_str());
      return curare::serve::kExitError;
    }
    std::stringstream ss;
    ss << in.rdbuf();
    try {
      curare::obs::RequestScope budget(
          fresh_budget(mem_quota, static_cast<std::uint64_t>(fuel)));
      batch_transform_all(cur, ss.str());
      return finish(curare::serve::kExitOk);
    } catch (const curare::runtime::StallError& e) {
      print_stall(e);
      return finish(stall_exit_code(e));
    } catch (const curare::runtime::ResourceExhausted& e) {
      std::fprintf(stderr, "resource-exhausted: %s\n", e.what());
      return finish(curare::serve::kExitResourceExhausted);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "error: %s\n", e.what());
      return finish(curare::serve::kExitError);
    }
  }

  return finish(
      repl(cur, mem_quota, static_cast<std::uint64_t>(fuel)));
}
