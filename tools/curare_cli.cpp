// curare — command-line front end to the restructurer.
//
//   curare [opts] program.lisp   batch: load, analyze & transform every
//                                recursive defun, print the report and
//                                the restructured program (top-level
//                                forms run, so %cri-run calls execute)
//   curare [opts] -e "(…)"       evaluate one form and print the result
//   curare [opts]                interactive REPL with commands:
//                                  :analyze NAME     §2/§3 analysis report
//                                  :transform NAME   restructure NAME
//                                  :par S (NAME a…)  run transformed NAME
//                                  :sapp EXPR        SAPP check a value
//                                  :stats            metrics + measured-
//                                                    vs-predicted T(S)
//                                  :trace FILE       dump trace JSON
//                                  :quit
//                                anything else is evaluated as Lisp.
// Options:
//   --trace FILE   record runtime events (locks, tasks, futures) and
//                  write a Chrome trace-event JSON to FILE on exit —
//                  open it in Perfetto or chrome://tracing
//   --stats        print the metrics registry and the §4.1 measured-
//                  vs-predicted server-allocation table on exit
#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "curare/curare.hpp"
#include "curare/struct_sapp.hpp"
#include "obs/recorder.hpp"
#include "sexpr/list_ops.hpp"
#include "sexpr/printer.hpp"
#include "sexpr/reader.hpp"

namespace {

using curare::Curare;
using curare::Value;

void batch_transform_all(Curare& cur, const std::string& source) {
  cur.load_program(source);

  // Find every defun in the program and try to restructure it.
  curare::sexpr::Ctx& ctx = cur.interp().ctx();
  for (Value form : curare::sexpr::read_all(ctx, source)) {
    if (!form.is(curare::sexpr::Kind::Cons)) continue;
    Value head = curare::sexpr::car(form);
    if (!head.is(curare::sexpr::Kind::Symbol)) continue;
    if (curare::sexpr::as_symbol(head)->name != "defun") continue;
    const std::string name =
        curare::sexpr::as_symbol(curare::sexpr::cadr(form))->name;

    std::printf("────────────────────────────────────────────\n");
    std::printf(";; %s\n", name.c_str());
    curare::AnalysisReport report = cur.analyze(name);
    std::printf("%s\n", report.to_string().c_str());
    if (!report.info.is_recursive()) {
      std::printf(";; not recursive — left unchanged\n\n");
      continue;
    }
    curare::TransformPlan plan = cur.transform(name);
    std::printf("%s\n", plan.to_string().c_str());
    for (Value f : plan.forms)
      std::printf("%s\n", curare::sexpr::write_str(f).c_str());
    std::printf("\n");
  }
}

bool write_trace_file(const curare::obs::Recorder& rec,
                      const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "cannot write trace to %s\n", path.c_str());
    return false;
  }
  rec.tracer.write_chrome_trace(out);
  std::fprintf(stderr,
               "trace: %zu event(s) from %zu thread(s) → %s "
               "(open in Perfetto / chrome://tracing)\n",
               rec.tracer.events_recorded(), rec.tracer.thread_count(),
               path.c_str());
  return true;
}

int repl(Curare& cur) {
  curare::sexpr::Ctx& ctx = cur.interp().ctx();
  std::string line;
  std::printf("curare> ");
  while (std::getline(std::cin, line)) {
    try {
      if (line.empty()) {
        // fallthrough to the prompt
      } else if (line == ":quit" || line == ":q") {
        return 0;
      } else if (line.rfind(":analyze ", 0) == 0) {
        std::printf("%s",
                    cur.analyze(line.substr(9)).to_string().c_str());
      } else if (line.rfind(":transform ", 0) == 0) {
        curare::TransformPlan plan = cur.transform(line.substr(11));
        std::printf("%s", plan.to_string().c_str());
        for (Value f : plan.forms)
          std::printf("%s\n", curare::sexpr::write_str(f).c_str());
      } else if (line.rfind(":par ", 0) == 0) {
        // :par S (fn arg...)
        std::istringstream iss(line.substr(5));
        std::size_t servers = 0;
        iss >> servers;
        std::string call;
        std::getline(iss, call);
        Value form = curare::sexpr::read_one(ctx, call);
        const std::string fname =
            curare::sexpr::as_symbol(curare::sexpr::car(form))->name;
        std::vector<Value> args;
        for (Value a = curare::sexpr::cdr(form); !a.is_nil();
             a = curare::sexpr::cdr(a)) {
          args.push_back(cur.interp().eval_top(curare::sexpr::car(a)));
        }
        Value out = cur.run_parallel(fname, args, servers);
        std::printf("%s\n", curare::sexpr::write_str(out).c_str());
      } else if (line.rfind(":sapp ", 0) == 0) {
        Value v = cur.interp().eval_program(line.substr(6));
        auto r = curare::check_struct_sapp(v, cur.declarations());
        std::printf("%s (%zu instances)%s%s\n",
                    r.holds ? "SAPP holds" : "SAPP violated",
                    r.instances, r.violation.empty() ? "" : ": ",
                    r.violation.c_str());
      } else if (line == ":stats") {
        std::printf("%s",
                    curare::obs::full_report(cur.runtime().obs()).c_str());
      } else if (line.rfind(":trace ", 0) == 0) {
        // Dumps what the ring buffers currently hold; recording must
        // have been enabled (run the CLI with --trace, which also
        // writes a final dump on exit).
        write_trace_file(cur.runtime().obs(), line.substr(7));
      } else if (line[0] == ':') {
        std::printf("unknown command; try :analyze :transform :par "
                    ":sapp :stats :trace :quit\n");
      } else {
        // Plain Lisp. Loading through the driver keeps defuns known to
        // the transformer.
        cur.load_program(line);
        std::string out = cur.interp().take_output();
        if (!out.empty()) std::printf("%s", out.c_str());
      }
    } catch (const std::exception& e) {
      std::printf("error: %s\n", e.what());
    }
    std::printf("curare> ");
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string trace_path;
  bool stats = false;
  std::string eval_expr;
  bool have_eval = false;
  std::string file;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--trace" || arg == "-e") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s requires an argument\n", arg.c_str());
        return 2;
      }
      if (arg == "--trace") {
        trace_path = argv[++i];
      } else {
        eval_expr = argv[++i];
        have_eval = true;
      }
    } else if (arg == "--stats") {
      stats = true;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr,
                   "unknown option %s\nusage: curare [--trace out.json] "
                   "[--stats] [-e EXPR | program.lisp]\n",
                   arg.c_str());
      return 2;
    } else {
      file = arg;
    }
  }

  curare::sexpr::Ctx ctx;
  Curare cur(ctx);
  cur.interp().set_echo(false);
  if (!trace_path.empty()) cur.runtime().obs().tracer.set_enabled(true);

  // Deferred reporting so every mode (batch, -e, REPL) flushes the
  // trace and stats on the way out, including on error exits.
  auto finish = [&](int code) {
    if (!trace_path.empty() &&
        !write_trace_file(cur.runtime().obs(), trace_path)) {
      code = code == 0 ? 1 : code;
    }
    if (stats) {
      std::printf("%s",
                  curare::obs::full_report(cur.runtime().obs()).c_str());
    }
    return code;
  };

  if (have_eval) {
    try {
      Value v = cur.interp().eval_program(eval_expr);
      std::string out = cur.interp().take_output();
      if (!out.empty()) std::printf("%s", out.c_str());
      std::printf("%s\n", curare::sexpr::write_str(v).c_str());
      return finish(0);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "error: %s\n", e.what());
      return finish(1);
    }
  }

  if (!file.empty()) {
    std::ifstream in(file);
    if (!in) {
      std::fprintf(stderr, "cannot open %s\n", file.c_str());
      return 1;
    }
    std::stringstream ss;
    ss << in.rdbuf();
    try {
      batch_transform_all(cur, ss.str());
      return finish(0);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "error: %s\n", e.what());
      return finish(1);
    }
  }

  return finish(repl(cur));
}
