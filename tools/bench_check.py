#!/usr/bin/env python3
"""Guard against bench throughput regressions.

Compares a fresh bench JSON-lines file against a committed baseline
(e.g. BENCH_scheduler.json at HEAD) and fails if any matched record's
throughput dropped by more than the threshold:

    bench_check.py BASELINE FRESH [--threshold 0.30]

Records match on their identity fields — everything except the
throughput metrics and the run-volatile fields (iteration counts,
wall times, percentiles), so a CURARE_BENCH_SMOKE run still lines up
against a full-length baseline. Only the "higher is better" throughput
metrics are compared:

    mops            (bench_queue)
    throughput_rps  (bench_serve, bench_obs serve sweep)
    evals_per_s     (bench_obs eval sweep)

Records present in only one file are reported but not fatal — sweeps
legitimately grow and smoke mode legitimately shrinks them. Exit codes:
0 ok, 1 regression found, 2 bad invocation or unparseable input.
"""

import argparse
import json
import sys

# Higher-is-better metrics eligible for the regression check.
METRICS = ("mops", "throughput_rps", "evals_per_s")

# Fields that vary run to run without changing what was measured.
VOLATILE = frozenset(
    METRICS
    + (
        "secs",
        "wall_s",
        "wall_ms",
        "ops",
        "requests",
        "iters",
        "invocations",
        "samples",
        "overhead_pct",
        "p50_ms",
        "p99_ms",
        "mean_admission_ms",
        "mean_eval_ms",
        "rejected",
        "transport_errors",
        "head_ns_mean",
        "tail_ns_mean",
        "utilization",
        "max_queue",
        "notify_suppressed",
        "sleeps",
        "model_T",
        "sim_T",
        "mutex_serial_ns",
        "shard_serial_ns",
        "shard_pair_ns",
        "projected_speedup",
    )
)


def load(path):
    recs = []
    try:
        with open(path) as f:
            for n, line in enumerate(f, 1):
                line = line.strip()
                if not line:
                    continue
                try:
                    recs.append(json.loads(line))
                except json.JSONDecodeError as e:
                    sys.exit(f"bench_check: {path}:{n}: bad JSON: {e}")
    except OSError as e:
        sys.exit(f"bench_check: cannot read {path}: {e}")
    return recs


def identity(rec):
    return tuple(sorted((k, v) for k, v in rec.items() if k not in VOLATILE))


def index(recs, path):
    by_id = {}
    for rec in recs:
        key = identity(rec)
        if key in by_id:
            # Same sweep point twice (e.g. a re-run appended instead of
            # truncating): keep the last record, matching reader habits.
            print(f"bench_check: note: duplicate record in {path}: {dict(key)}")
        by_id[key] = rec
    return by_id


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("baseline")
    ap.add_argument("fresh")
    ap.add_argument(
        "--threshold",
        type=float,
        default=0.30,
        help="allowed fractional throughput drop (default 0.30)",
    )
    args = ap.parse_args()
    if not 0 < args.threshold < 1:
        ap.error("--threshold must be in (0, 1)")

    base = index(load(args.baseline), args.baseline)
    fresh = index(load(args.fresh), args.fresh)

    compared = 0
    regressions = []
    for key, b in sorted(base.items()):
        f = fresh.get(key)
        if f is None:
            continue
        for metric in METRICS:
            if metric not in b or metric not in f:
                continue
            bv, fv = float(b[metric]), float(f[metric])
            if bv <= 0:
                continue
            compared += 1
            drop = (bv - fv) / bv
            marker = "REGRESSION" if drop > args.threshold else "ok"
            label = ", ".join(f"{k}={v}" for k, v in key)
            print(
                f"  {marker:>10}  {metric}: {bv:.3f} -> {fv:.3f} "
                f"({-drop * 100:+.1f}%)  [{label}]"
            )
            if drop > args.threshold:
                regressions.append((key, metric, bv, fv))

    only_base = len([k for k in base if k not in fresh])
    only_fresh = len([k for k in fresh if k not in base])
    print(
        f"bench_check: {compared} metric(s) compared, "
        f"{only_base} baseline-only record(s), "
        f"{only_fresh} fresh-only record(s)"
    )
    if compared == 0:
        # A guard that silently compares nothing is worse than no guard.
        sys.exit(
            "bench_check: no comparable records — baseline and fresh "
            "files share no sweep points with a throughput metric"
        )
    if regressions:
        print(
            f"bench_check: FAIL — {len(regressions)} metric(s) dropped "
            f"more than {args.threshold * 100:.0f}%"
        )
        return 1
    print("bench_check: ok")
    return 0


if __name__ == "__main__":
    sys.exit(main())
