#!/usr/bin/env python3
"""Guard against bench throughput regressions.

Compares a fresh bench JSON-lines file against a committed baseline
(e.g. BENCH_scheduler.json at HEAD) and fails if any matched record's
throughput dropped by more than the threshold:

    bench_check.py BASELINE FRESH [--threshold 0.30]

Records match on their identity fields — everything except the
throughput metrics and the run-volatile fields (iteration counts,
wall times, percentiles), so a CURARE_BENCH_SMOKE run still lines up
against a full-length baseline. Only the "higher is better" throughput
metrics are compared:

    mops            (bench_queue)
    throughput_rps  (bench_serve, bench_obs serve sweep)
    evals_per_s     (bench_obs eval sweep)
    mcons           (bench_heap allocator A/B)

Records present in only one file are reported but not fatal — sweeps
legitimately grow and smoke mode legitimately shrinks them. Exit codes:
0 ok, 1 regression found, 2 bad invocation or unparseable input.

Besides the drift check, both files are held to the scheduler's
*ratio gates* (the acceptance bars of the work-stealing queue rework,
kept here so they are enforced forever, not just the week they landed):

  * queue_ab: at every matched (workload, threads, chains, sites)
    sweep point, ws mops must not fall below mutex mops;
  * queue_ab: the acceptance cell (spawn_chain, 8 threads, 1 site,
    batch 1) must show ws >= 1.5x mutex;
  * server_scaling: utilization must stay above collapse level and
    wall time must stay flat across the sweep (a spinning-server
    regression shows up as 10x wall inflation past S=16);
  * eval_ab (bench_eval): at every (workload, n) point the vm engine
    must not fall below the tree engine, both engines must report the
    *identical* "result" string (a riding differential check), and the
    acceptance cell (arith_loop) must show vm >= 5x tree;
  * heap_ab (bench_heap): the bump allocator's Mcons must not fall
    below the seed mutexed-shard heap at any thread count;
  * heap_quota (bench_heap): per-request memory accounting must keep
    >= 0.97x of the unmetered single-thread allocation throughput;
  * gc_pause (bench_heap): the p95 stop-the-world pause stays under an
    absolute 50 ms ceiling;
  * serve_coldstart (bench_serve): cloning sessions from the captured
    image must be >= 5x faster than re-evaluating the prelude;
  * serve_restructure_cache (bench_serve): a cache hit must answer
    with >= 10x less restructure time than the miss that seeded it.

The committed baseline is judged strictly; the fresh run gets a noise
allowance (--gate-slack, default 0.85) so a loaded CI host does not
flap, while a genuine inversion still fails.
"""

import argparse
import json
import sys

# Higher-is-better metrics eligible for the regression check.
METRICS = ("mops", "throughput_rps", "evals_per_s", "mcons")

# Fields that vary run to run without changing what was measured.
VOLATILE = frozenset(
    METRICS
    + (
        "secs",
        "reps",
        "wall_s",
        "wall_ms",
        "ops",
        "requests",
        "iters",
        "invocations",
        "samples",
        "overhead_pct",
        "p50_ms",
        "p99_ms",
        "mean_admission_ms",
        "mean_eval_ms",
        "rejected",
        "transport_errors",
        "head_ns_mean",
        "tail_ns_mean",
        "utilization",
        "max_queue",
        "notify_suppressed",
        "sleeps",
        "model_T",
        "sim_T",
        "mutex_serial_ns",
        "shard_serial_ns",
        "shard_pair_ns",
        "ws_pair_ns",
        "projected_speedup",
        # bench_heap: smoke mode shrinks the allocation counts and the
        # pause sweep, and every pause statistic is run-volatile.
        "conses",
        "mcons_off",
        "mcons_on",
        "overhead_ratio",
        "bump_serial_ns",
        "cells_per_block",
        "shard_1t_ns",
        "bump_1t_ns",
        "collections",
        "garbage_conses",
        "survivors",
        "threshold_bytes",
        "min_ns",
        "p50_ns",
        "p95_ns",
        "max_ns",
        "reclaimed_objects",
        "reclaimed_bytes",
        # bench_serve runaway mix
        "clipped",
        # bench_serve warm start (lower-is-better costs: compared by
        # the coldstart/cache ratio gates, not the drift check)
        "mean_setup_ms",
        "mean_restructure_ms",
    )
)

# Ratio gates (see module docstring). Slack 1.0 = judge strictly.
ACCEPTANCE_RATIO = 1.5  # ws vs mutex, spawn_chain, 8 threads, 1 site
UTILIZATION_FLOOR = 0.04  # server_scaling collapse level (1-core host)
WALL_FLATNESS = 5.0  # max wall_ms(S) / wall_ms(S_min) across the sweep
EVAL_ACCEPTANCE_RATIO = 5.0  # vm vs tree on the arith_loop workload
QUOTA_OVERHEAD_FLOOR = 0.97  # heap_quota: accounting costs <= 3%
PAUSE_P95_CEILING_NS = 50e6  # gc_pause: p95 stop-the-world <= 50 ms
COLDSTART_RATIO = 5.0  # image clone vs per-session prelude re-eval
CACHE_HIT_RATIO = 10.0  # restructure_ns: miss vs cache hit


def check_gates(recs, label, slack):
    """Return a list of gate-violation strings for one file's records."""
    problems = []
    # queue_ab: per-point ws-vs-mutex floor + the acceptance cell.
    cells = {}
    for r in recs:
        if r.get("bench") != "queue_ab" or r.get("batch") != 1:
            continue
        point = (r.get("workload"), r.get("threads"), r.get("chains"),
                 r.get("sites"))
        cells.setdefault(point, {})[r.get("impl")] = float(r["mops"])
    acceptance_seen = False
    for point, by_impl in sorted(cells.items()):
        ws, mx = by_impl.get("ws"), by_impl.get("mutex")
        if ws is None or mx is None or mx <= 0:
            continue
        name = "workload=%s threads=%s chains=%s sites=%s" % point
        if ws < mx * slack:
            problems.append(
                f"{label}: ws below mutex at {name}: "
                f"{ws:.3f} < {mx:.3f} * {slack:.2f}"
            )
        if point[0] == "spawn_chain" and point[1] == 8 and point[3] == 1:
            acceptance_seen = True
            bar = ACCEPTANCE_RATIO * slack
            if ws < mx * bar:
                problems.append(
                    f"{label}: acceptance cell ws/mutex = {ws / mx:.2f}x "
                    f"< {bar:.2f}x ({name})"
                )
    if cells and not acceptance_seen:
        problems.append(
            f"{label}: queue_ab records present but the acceptance cell "
            "(spawn_chain, threads=8, sites=1, batch=1) is missing"
        )
    # eval_ab: per-point vm-vs-tree floor, result identity, and the
    # arith_loop acceptance cell.
    eval_cells = {}
    for r in recs:
        if r.get("bench") != "eval_ab":
            continue
        point = (r.get("workload"), r.get("n"))
        eval_cells.setdefault(point, {})[r.get("engine")] = r
    eval_acceptance_seen = False
    for point, by_engine in sorted(eval_cells.items()):
        tree, vm = by_engine.get("tree"), by_engine.get("vm")
        if tree is None or vm is None:
            continue
        name = "workload=%s n=%s" % point
        if tree.get("result") != vm.get("result"):
            problems.append(
                f"{label}: engines disagree at {name}: "
                f"tree={tree.get('result')!r} vm={vm.get('result')!r}"
            )
        tv, vv = float(tree["evals_per_s"]), float(vm["evals_per_s"])
        if tv <= 0:
            continue
        if vv < tv * slack:
            problems.append(
                f"{label}: vm below tree at {name}: "
                f"{vv:.1f} < {tv:.1f} * {slack:.2f}"
            )
        if point[0] == "arith_loop":
            eval_acceptance_seen = True
            bar = EVAL_ACCEPTANCE_RATIO * slack
            if vv < tv * bar:
                problems.append(
                    f"{label}: eval acceptance cell vm/tree = "
                    f"{vv / tv:.2f}x < {bar:.2f}x ({name})"
                )
    if eval_cells and not eval_acceptance_seen:
        problems.append(
            f"{label}: eval_ab records present but the acceptance cell "
            "(arith_loop, both engines) is missing"
        )
    # heap_ab: the bump allocator must not fall below the seed shard
    # heap at any matched thread count (the GC rework's reason to
    # exist, kept enforced forever like the queue gates above).
    heap_cells = {}
    for r in recs:
        if r.get("bench") != "heap_ab":
            continue
        heap_cells.setdefault(int(r.get("threads", 0)), {})[
            r.get("impl")
        ] = float(r["mcons"])
    for threads, by_impl in sorted(heap_cells.items()):
        shard, bump = by_impl.get("shard"), by_impl.get("bump")
        if shard is None or bump is None or shard <= 0:
            continue
        if bump < shard * slack:
            problems.append(
                f"{label}: bump allocator below shard heap at "
                f"threads={threads}: {bump:.2f} < {shard:.2f} * "
                f"{slack:.2f} Mcons"
            )
    # heap_quota: per-request accounting must stay within 3% of the
    # unmetered fast path (the resource-governance acceptance bar).
    for r in recs:
        if r.get("bench") != "heap_quota":
            continue
        ratio = float(r.get("overhead_ratio", 0.0))
        bar = QUOTA_OVERHEAD_FLOOR * slack
        if ratio < bar:
            problems.append(
                f"{label}: quota accounting overhead ratio {ratio:.3f} "
                f"below {bar:.3f} (threads={r.get('threads')})"
            )
    # gc_pause: the p95 stop-the-world pause has an absolute ceiling.
    for r in recs:
        if r.get("bench") != "gc_pause":
            continue
        p95 = float(r.get("p95_ns", 0.0))
        if p95 > PAUSE_P95_CEILING_NS / slack:
            problems.append(
                f"{label}: gc_pause p95 {p95 / 1e6:.2f} ms above the "
                f"{PAUSE_P95_CEILING_NS / slack / 1e6:.0f} ms ceiling"
            )
    # serve_coldstart: cloning the session image must beat re-evaluating
    # the prelude by the warm-start acceptance ratio (DESIGN.md §15).
    cold_modes = {
        r.get("mode"): float(r.get("mean_setup_ms", 0.0))
        for r in recs
        if r.get("bench") == "serve_coldstart"
    }
    if cold_modes:
        prelude_ms = cold_modes.get("prelude")
        image_ms = cold_modes.get("image")
        if prelude_ms is None or image_ms is None:
            problems.append(
                f"{label}: serve_coldstart records present but a mode "
                "row (prelude/image) is missing"
            )
        elif image_ms > 0:
            bar = COLDSTART_RATIO * slack
            if prelude_ms < image_ms * bar:
                problems.append(
                    f"{label}: serve_coldstart image speedup "
                    f"{prelude_ms / image_ms:.2f}x below {bar:.2f}x "
                    f"(prelude {prelude_ms:.3f} ms, image "
                    f"{image_ms:.3f} ms)"
                )
    # serve_restructure_cache: a hit must answer with at least the
    # acceptance ratio less restructure_ns than the miss that seeded it.
    cache_modes = {
        r.get("mode"): float(r.get("mean_restructure_ms", 0.0))
        for r in recs
        if r.get("bench") == "serve_restructure_cache"
    }
    if cache_modes:
        miss_ms = cache_modes.get("miss")
        hit_ms = cache_modes.get("hit")
        if miss_ms is None or hit_ms is None:
            problems.append(
                f"{label}: serve_restructure_cache records present but "
                "a mode row (miss/hit) is missing"
            )
        elif hit_ms > 0:
            bar = CACHE_HIT_RATIO * slack
            if miss_ms < hit_ms * bar:
                problems.append(
                    f"{label}: restructure cache hit speedup "
                    f"{miss_ms / hit_ms:.2f}x below {bar:.2f}x "
                    f"(miss {miss_ms:.3f} ms, hit {hit_ms:.3f} ms)"
                )
    # server_scaling: collapse guards.
    scaling = [r for r in recs if r.get("bench") == "server_scaling"]
    if scaling:
        walls = {int(r["S"]): float(r["wall_ms"]) for r in scaling}
        base = walls[min(walls)]
        for r in sorted(scaling, key=lambda r: int(r["S"])):
            s = int(r["S"])
            util = float(r.get("utilization", 0.0))
            if util < UTILIZATION_FLOOR * slack:
                problems.append(
                    f"{label}: server_scaling S={s} utilization "
                    f"{util:.4f} below collapse floor "
                    f"{UTILIZATION_FLOOR * slack:.4f}"
                )
            if base > 0 and walls[s] > base * WALL_FLATNESS / slack:
                problems.append(
                    f"{label}: server_scaling S={s} wall {walls[s]:.2f}ms "
                    f"is {walls[s] / base:.1f}x the S={min(walls)} wall "
                    f"(flatness bar {WALL_FLATNESS / slack:.1f}x)"
                )
    return problems


def load(path):
    recs = []
    try:
        with open(path) as f:
            for n, line in enumerate(f, 1):
                line = line.strip()
                if not line:
                    continue
                try:
                    recs.append(json.loads(line))
                except json.JSONDecodeError as e:
                    sys.exit(f"bench_check: {path}:{n}: bad JSON: {e}")
    except OSError as e:
        sys.exit(f"bench_check: cannot read {path}: {e}")
    return recs


def identity(rec):
    return tuple(sorted((k, v) for k, v in rec.items() if k not in VOLATILE))


def index(recs, path):
    by_id = {}
    for rec in recs:
        key = identity(rec)
        if key in by_id:
            # Same sweep point twice (e.g. a re-run appended instead of
            # truncating): keep the last record, matching reader habits.
            print(f"bench_check: note: duplicate record in {path}: {dict(key)}")
        by_id[key] = rec
    return by_id


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("baseline")
    ap.add_argument("fresh")
    ap.add_argument(
        "--threshold",
        type=float,
        default=0.30,
        help="allowed fractional throughput drop (default 0.30)",
    )
    ap.add_argument(
        "--gate-slack",
        type=float,
        default=0.85,
        help="noise allowance applied to the ratio gates on the fresh "
        "file (default 0.85; the baseline is always judged at 1.0)",
    )
    args = ap.parse_args()
    if not 0 < args.threshold < 1:
        ap.error("--threshold must be in (0, 1)")
    if not 0 < args.gate_slack <= 1:
        ap.error("--gate-slack must be in (0, 1]")

    base_recs = load(args.baseline)
    fresh_recs = load(args.fresh)
    base = index(base_recs, args.baseline)
    fresh = index(fresh_recs, args.fresh)

    gate_problems = check_gates(base_recs, "baseline", 1.0)
    gate_problems += check_gates(fresh_recs, "fresh", args.gate_slack)

    compared = 0
    regressions = []
    for key, b in sorted(base.items()):
        f = fresh.get(key)
        if f is None:
            continue
        for metric in METRICS:
            if metric not in b or metric not in f:
                continue
            bv, fv = float(b[metric]), float(f[metric])
            if bv <= 0:
                continue
            compared += 1
            drop = (bv - fv) / bv
            marker = "REGRESSION" if drop > args.threshold else "ok"
            label = ", ".join(f"{k}={v}" for k, v in key)
            print(
                f"  {marker:>10}  {metric}: {bv:.3f} -> {fv:.3f} "
                f"({-drop * 100:+.1f}%)  [{label}]"
            )
            if drop > args.threshold:
                regressions.append((key, metric, bv, fv))

    only_base = len([k for k in base if k not in fresh])
    only_fresh = len([k for k in fresh if k not in base])
    print(
        f"bench_check: {compared} metric(s) compared, "
        f"{only_base} baseline-only record(s), "
        f"{only_fresh} fresh-only record(s)"
    )
    if compared == 0:
        # A guard that silently compares nothing is worse than no guard.
        sys.exit(
            "bench_check: no comparable records — baseline and fresh "
            "files share no sweep points with a throughput metric"
        )
    for p in gate_problems:
        print(f"  GATE  {p}")
    if regressions or gate_problems:
        if regressions:
            print(
                f"bench_check: FAIL — {len(regressions)} metric(s) dropped "
                f"more than {args.threshold * 100:.0f}%"
            )
        if gate_problems:
            print(
                f"bench_check: FAIL — {len(gate_problems)} ratio-gate "
                "violation(s)"
            )
        return 1
    print("bench_check: ok")
    return 0


if __name__ == "__main__":
    sys.exit(main())
