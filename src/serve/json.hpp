// Minimal JSON for the serving protocol.
//
// The daemon speaks length-prefixed JSON frames (see protocol.hpp);
// request and response bodies are small, flat-ish objects, so this is
// a deliberately small value type — no SAX, no streaming, no
// allocation tricks. It exists because the repo has JSON *writers*
// (trace export, metrics to_json) but the serving layer is the first
// component that must also *parse* untrusted bytes off a socket:
// parse() is strict (full-input, UTF-8 passthrough, \uXXXX escapes,
// nesting-depth cap) and never throws on malformed input — it returns
// nullopt and the connection handler answers with a protocol error.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace curare::serve {

class Json;
using JsonObject = std::map<std::string, Json>;
using JsonArray = std::vector<Json>;

class Json {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Json() : type_(Type::kNull) {}
  Json(std::nullptr_t) : type_(Type::kNull) {}
  Json(bool b) : type_(Type::kBool), bool_(b) {}
  Json(double d) : type_(Type::kNumber), num_(d) {}
  Json(std::int64_t n)
      : type_(Type::kNumber), num_(static_cast<double>(n)) {}
  Json(int n) : type_(Type::kNumber), num_(n) {}
  Json(std::uint64_t n)
      : type_(Type::kNumber), num_(static_cast<double>(n)) {}
  Json(const char* s) : type_(Type::kString), str_(s) {}
  Json(std::string s) : type_(Type::kString), str_(std::move(s)) {}
  Json(std::string_view s) : type_(Type::kString), str_(s) {}
  Json(JsonArray a) : type_(Type::kArray), arr_(std::move(a)) {}
  Json(JsonObject o) : type_(Type::kObject), obj_(std::move(o)) {}

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_object() const { return type_ == Type::kObject; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_number() const { return type_ == Type::kNumber; }

  /// Typed accessors with defaults — the protocol treats a missing and
  /// a wrong-typed field identically (use the default).
  bool as_bool(bool dflt = false) const {
    return type_ == Type::kBool ? bool_ : dflt;
  }
  double as_number(double dflt = 0) const {
    return type_ == Type::kNumber ? num_ : dflt;
  }
  std::int64_t as_int(std::int64_t dflt = 0) const {
    return type_ == Type::kNumber ? static_cast<std::int64_t>(num_)
                                  : dflt;
  }
  const std::string& as_string() const { return str_; }
  const JsonArray& as_array() const { return arr_; }
  const JsonObject& as_object() const { return obj_; }
  JsonObject& as_object() { return obj_; }

  /// Object field lookup; a shared null when absent or not an object.
  const Json& get(const std::string& key) const;
  /// Convenience: string field or default.
  std::string get_string(const std::string& key,
                         std::string dflt = {}) const;
  /// Convenience: integer field or default.
  std::int64_t get_int(const std::string& key,
                       std::int64_t dflt = 0) const;
  bool has(const std::string& key) const;

  /// Compact serialization (no whitespace). Numbers that are integral
  /// print without a fraction so protocol fields stay greppable.
  std::string dump() const;

  /// Strict whole-input parse; nullopt on any syntax error, trailing
  /// garbage, or nesting deeper than 64.
  static std::optional<Json> parse(std::string_view text);

 private:
  Type type_;
  bool bool_ = false;
  double num_ = 0;
  std::string str_;
  JsonArray arr_;
  JsonObject obj_;
};

/// Escape `s` as JSON string *contents* (no surrounding quotes).
std::string json_escape(std::string_view s);

}  // namespace curare::serve
