// Admission control for the serving daemon.
//
// Two bounds, both explicit (ISSUE: "bounded in-flight semaphore plus
// a bounded accept queue with explicit rejection when full"):
//
//   max_inflight   requests executing concurrently. Each one owns a
//                  session interp and may fan out onto the shared
//                  ServerPool, so this bounds runtime pressure.
//   max_queue      requests *waiting* for an in-flight slot. When the
//                  wait queue is also full the request is rejected
//                  immediately with status="overloaded" — the client
//                  learns in microseconds instead of timing out.
//
// A queued request still honors its own deadline/cancel token: if the
// token fires while waiting (client deadline shorter than the queue
// wait, or the daemon starts draining) admit() returns kDeadline /
// kShutdown without ever consuming a slot.
//
// Metrics (obs registry, names are API for :stats and the bench):
//   serve.inflight          gauge     executing now
//   serve.queue_depth       gauge     waiting for a slot now
//   serve.admitted          counter   requests that got a slot
//   serve.rejected.overload counter   bounced: wait queue full
//   serve.rejected.deadline counter   token fired while queued
//   serve.queue_wait_ns     histogram admission wait per admitted req
#pragma once

#include <condition_variable>
#include <cstddef>
#include <mutex>

#include "runtime/resilience.hpp"

namespace curare::obs {
class Metrics;
class Counter;
class Gauge;
class Histogram;
}  // namespace curare::obs

namespace curare::serve {

class AdmissionController {
 public:
  enum class Outcome {
    kAdmitted,    ///< slot acquired; pair with release()
    kOverloaded,  ///< wait queue full, rejected without blocking
    kDeadline,    ///< the request's own token fired while queued
    kShutdown,    ///< controller closed (daemon draining)
  };

  AdmissionController(std::size_t max_inflight, std::size_t max_queue,
                      obs::Metrics& metrics);

  /// Block until a slot frees, the token fires, or the controller
  /// closes. Never throws. On kAdmitted the caller owns one slot and
  /// must call release() exactly once (see Ticket).
  Outcome admit(runtime::CancelState* tok);

  /// Return a slot acquired by a kAdmitted admit().
  void release();

  /// Drain mode: reject new admits with kShutdown and wake all
  /// waiters. In-flight slots stay valid until their release().
  void close();

  /// True once every admitted slot has been released (close() first).
  bool idle() const;

  std::size_t inflight() const;
  std::size_t queued() const;

 private:
  const std::size_t max_inflight_;
  const std::size_t max_queue_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::size_t inflight_ = 0;
  std::size_t queued_ = 0;
  bool closed_ = false;

  obs::Gauge& inflight_g_;
  obs::Gauge& queue_depth_g_;
  obs::Counter& admitted_c_;
  obs::Counter& rej_overload_c_;
  obs::Counter& rej_deadline_c_;
  obs::Histogram& queue_wait_h_;
};

/// RAII slot: releases on destruction iff the admit succeeded.
class AdmissionTicket {
 public:
  AdmissionTicket(AdmissionController& ctl, runtime::CancelState* tok)
      : ctl_(ctl), outcome_(ctl.admit(tok)) {}
  ~AdmissionTicket() {
    if (outcome_ == AdmissionController::Outcome::kAdmitted)
      ctl_.release();
  }
  AdmissionTicket(const AdmissionTicket&) = delete;
  AdmissionTicket& operator=(const AdmissionTicket&) = delete;

  AdmissionController::Outcome outcome() const { return outcome_; }
  bool admitted() const {
    return outcome_ == AdmissionController::Outcome::kAdmitted;
  }

 private:
  AdmissionController& ctl_;
  AdmissionController::Outcome outcome_;
};

}  // namespace curare::serve
