// Process exit codes shared by every Curare front end (curare_cli,
// curare_serve, curare_client). One table, named constants — CI
// scripts assert on these numbers, so they are API.
//
//   0  kExitOk          success
//   1  kExitError       program or I/O error (Lisp error, bad file, …)
//   2  kExitUsage       bad command line
//   3  kExitStall       run aborted by the stall watchdog / cancelled
//   4  kExitDeadline    run exceeded its deadline (CLI --deadline-ms,
//                       or a request's deadline_ms in serving mode)
//   5  kExitOverloaded  request rejected by the daemon's admission
//                       controller (accept queue full, or the heap
//                       soft watermark is shedding)
//   6  kExitResourceExhausted  run clipped by resource governance: a
//                       per-request memory quota, the heap hard
//                       watermark, the eval fuel budget, or the
//                       serve result cap (DESIGN.md §14)
//
// The serving protocol carries the same taxonomy as the response's
// "status" string; status_exit_code() maps one onto the other so
// curare_client's exit code equals what a local run would have
// returned.
#pragma once

#include <string_view>

namespace curare::serve {

inline constexpr int kExitOk = 0;
inline constexpr int kExitError = 1;
inline constexpr int kExitUsage = 2;
inline constexpr int kExitStall = 3;
inline constexpr int kExitDeadline = 4;
inline constexpr int kExitOverloaded = 5;
inline constexpr int kExitResourceExhausted = 6;

/// Wire statuses (Response.status) in the serving protocol.
inline constexpr std::string_view kStatusOk = "ok";
inline constexpr std::string_view kStatusError = "error";
inline constexpr std::string_view kStatusStall = "stall";
inline constexpr std::string_view kStatusDeadline = "deadline";
inline constexpr std::string_view kStatusOverloaded = "overloaded";
inline constexpr std::string_view kStatusResourceExhausted =
    "resource-exhausted";

/// Map a wire status onto the shared exit-code table (unknown statuses
/// conservatively map to kExitError).
inline int status_exit_code(std::string_view status) {
  if (status == kStatusOk) return kExitOk;
  if (status == kStatusStall) return kExitStall;
  if (status == kStatusDeadline) return kExitDeadline;
  if (status == kStatusOverloaded) return kExitOverloaded;
  if (status == kStatusResourceExhausted) return kExitResourceExhausted;
  return kExitError;
}

}  // namespace curare::serve
