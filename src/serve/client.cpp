#include "serve/client.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace curare::serve {

bool ClientConnection::connect(const std::string& host, int port,
                               std::string* err) {
  auto fail = [&](const std::string& what) {
    if (err != nullptr) *err = what + ": " + std::strerror(errno);
    close();
    return false;
  };
  close();
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) return fail("socket");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    errno = EINVAL;
    return fail("inet_pton " + host);
  }
  for (;;) {
    if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr),
                  sizeof addr) == 0) {
      break;
    }
    if (errno == EINTR) continue;
    return fail("connect " + host + ":" + std::to_string(port));
  }
  const int one = 1;
  ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  return true;
}

void ClientConnection::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

std::optional<Response> ClientConnection::request(const Request& req) {
  if (fd_ < 0) return std::nullopt;
  if (!write_frame(fd_, req.to_json().dump())) return std::nullopt;
  std::string payload;
  if (!read_frame(fd_, payload)) return std::nullopt;
  auto parsed = Json::parse(payload);
  if (!parsed) return std::nullopt;
  return Response::from_json(*parsed);
}

}  // namespace curare::serve
