// One serving session = one connection's isolated Lisp world.
//
// A Session owns a Curare driver constructed in shared-runtime mode:
// its own Interp and global Env (top-level defines in one session are
// invisible to every other), while the process-wide Runtime supplies
// the LockManager, FuturePool, Watchdog, and metrics — and the single
// sexpr::Ctx supplies the heap and symbol table, so GC and interning
// are shared across all sessions. The Interp constructor registers the
// session's environment chain as a GC root source, so session state
// survives collections triggered by any thread.
//
// handle() is the whole request state machine: it never throws — every
// failure mode (Lisp error, stall, deadline, reader error) becomes a
// structured Response. The caller installs the request's CancelState
// as the thread's current token *before* calling handle(), so the
// interpreter's eval polling and any CRI run chained under it observe
// the request deadline.
#pragma once

#include <cstdint>
#include <string>

#include "curare/curare.hpp"
#include "image/image.hpp"
#include "image/restructure_cache.hpp"
#include "runtime/resilience.hpp"
#include "serve/protocol.hpp"

namespace curare::serve {

class Session {
 public:
  /// Warm start: when `image` is non-null the session clones its world
  /// from it (bulk allocation + fixup) instead of evaluating; else when
  /// `prelude_src` is non-empty it is evaluated here — the cold-start
  /// baseline. `cache` (may be null) is the process-wide restructure
  /// cache consulted by the restructure op.
  Session(std::uint64_t id, sexpr::Ctx& ctx,
          runtime::Runtime& shared_runtime,
          EngineKind engine = EngineKind::kVm,
          const image::SessionImage* image = nullptr,
          image::RestructureCache* cache = nullptr,
          const std::string* prelude_src = nullptr);
  ~Session();
  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  std::uint64_t id() const { return id_; }
  std::uint64_t requests_handled() const { return requests_; }

  /// Cap on a reply's result+output bytes (0 = unlimited). An ok
  /// response that exceeds it is converted into a structured
  /// `resource-exhausted` failure — a reply must not balloon the
  /// session either (DESIGN.md §14).
  void set_result_cap(std::size_t bytes) { result_cap_ = bytes; }

  /// Execute one request. Pre: the caller has installed `tok` via
  /// CancelScope on this thread (handle only reads it to classify
  /// deadline vs. stall). Never throws.
  Response handle(const Request& req, runtime::CancelState* tok);

 private:
  Response do_eval(const Request& req);
  Response do_restructure(const Request& req);
  Response do_stats();
  Response do_metrics(const Request& req);
  Response do_trace(const Request& req);

  const std::uint64_t id_;
  Curare driver_;
  image::RestructureCache* cache_ = nullptr;
  std::size_t result_cap_ = 0;
  std::uint64_t requests_ = 0;
  /// rid of the previous request on this session — the default lane
  /// the `trace` op exports (the trace request has its own rid).
  std::uint64_t last_rid_ = 0;
};

}  // namespace curare::serve
