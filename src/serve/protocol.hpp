// The curare_serve wire protocol.
//
// Transport: a local TCP stream carrying length-prefixed JSON frames.
// Each frame is
//
//     <decimal byte length of payload> '\n' <payload bytes> '\n'
//
// — a JSON-lines protocol with an explicit length prefix, so the
// reader never has to scan the payload for newlines (programs contain
// them) and a scripting client can speak it with printf + head -c.
//
// Requests (client → daemon), one JSON object per frame:
//
//     {"op": "eval",        "program": "(+ 1 2)", "deadline_ms": 500}
//     {"op": "restructure", "program": "(defun f …)", "name": "f"}
//     {"op": "stats"}
//     {"op": "metrics",     "format": "prom"}
//     {"op": "trace",       "rid": 42}
//     {"op": "ping"}
//
//   op          required: eval | restructure | stats | metrics |
//               trace | ping
//   program     Lisp source (eval: evaluated top-level form by form in
//               the session's environment; restructure: loaded first)
//   name        restructure only: the defun to transform (default:
//               every recursive defun loaded so far)
//   deadline_ms optional wall-clock budget for this request; the
//               daemon cancels exactly this session's run when it
//               expires and answers status="deadline"
//   request_id  optional client-chosen id echoed in the response
//               metrics; the daemon always also assigns a numeric
//               `rid` that stamps every tracer span the request emits
//   format      metrics only: "prom" (default) or "json" exposition
//   rid         trace only: which request's spans to export (default:
//               the previous request on this connection)
//
// Responses (daemon → client), one per request, same framing:
//
//     {"status": "ok", "result": "3", "metrics": {…}}
//     {"status": "deadline", "error": "run aborted: …", "metrics": {…}}
//
//   status      ok | error | stall | deadline | overloaded |
//               resource-exhausted
//               (exit_codes.hpp maps these to process exit codes)
//   result      printed value / report text (ok only)
//   output      anything the program printed (eval, when non-empty)
//   error       human-readable failure (non-ok only)
//   retry_after_ms  overloaded only: the daemon's hint for when to try
//               again (admission queue full, or the heap soft
//               watermark is shedding while GC catches up);
//               curare_client --retries honors it
//   metrics     per-request measurements: wall_us, session id, the
//               admission controller's view at completion, the
//               request's ids (request_id, rid), and — for eval and
//               restructure — a `breakdown` object attributing the
//               request's nanoseconds: admission_ns, parse_ns,
//               eval_ns, restructure_ns, lock_wait_ns, gc_pause_ns
//               (process pauses overlapping the request), reply_ns
//               (the previous reply's write on this connection), and
//               wall_ns (daemon-measured, read → pre-write)
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "serve/json.hpp"

namespace curare::serve {

/// Frame size guard: a single request/response payload larger than
/// this is a protocol error, not a memory-allocation adventure.
inline constexpr std::size_t kMaxFrameBytes = 8u << 20;

struct Request {
  std::string op;
  std::string program;
  std::string name;
  std::int64_t deadline_ms = 0;
  std::string request_id;  ///< optional client id, echoed back
  std::string format;      ///< metrics op: "prom" | "json"
  std::int64_t rid = 0;    ///< trace op: which request's spans

  Json to_json() const;
  /// nullopt when the payload is not a JSON object or has no "op".
  static std::optional<Request> from_json(const Json& v);
};

struct Response {
  std::string status = "ok";  ///< see exit_codes.hpp kStatus*
  std::string result;
  std::string output;
  std::string error;
  /// Backoff hint on "overloaded" responses (0 = no hint).
  std::int64_t retry_after_ms = 0;
  Json metrics;  ///< object; null when the op reports none

  Json to_json() const;
  static Response from_json(const Json& v);
  /// Shorthand constructors for the common shapes.
  static Response ok(std::string result, std::string output = {});
  static Response fail(std::string_view status, std::string error);
};

// ---- framing over a file descriptor ---------------------------------
// Blocking, EINTR-safe, and partial-read/-write-safe. Errors are
// reported by return value, never exceptions — a torn connection is a
// normal event for a server.

/// Write one frame. Returns false on any write error.
bool write_frame(int fd, std::string_view payload);

/// Read one frame into `out`. Returns false on EOF before a complete
/// frame, a malformed length line, an oversized frame, or a read error.
bool read_frame(int fd, std::string& out,
                std::size_t max_bytes = kMaxFrameBytes);

}  // namespace curare::serve
