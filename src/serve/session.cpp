#include "serve/session.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>

#include "gc/gc.hpp"
#include "obs/recorder.hpp"
#include "obs/request.hpp"
#include "runtime/resource.hpp"
#include "sexpr/printer.hpp"
#include "serve/exit_codes.hpp"

namespace curare::serve {

namespace {

/// A fired token's reason decides deadline vs. stall: the daemon and
/// the watchdog both cancel through the same CancelState machinery,
/// and only deadline cancels carry this phrase (resilience.hpp).
bool is_deadline(const std::string& msg) {
  return msg.find("deadline exceeded") != std::string::npos;
}

/// Which resource.exhausted.* counter a clipped request bumps — the
/// names are API for :stats, the metrics op, and the bench.
const char* exhausted_counter_name(runtime::ResourceExhausted::Kind k) {
  switch (k) {
    case runtime::ResourceExhausted::Kind::kMemQuota:
      return "resource.exhausted.quota";
    case runtime::ResourceExhausted::Kind::kHeapHard:
      return "resource.exhausted.heap";
    case runtime::ResourceExhausted::Kind::kFuel:
      return "resource.exhausted.fuel";
    case runtime::ResourceExhausted::Kind::kResultCap:
      return "resource.exhausted.result_cap";
  }
  return "resource.exhausted.quota";
}

}  // namespace

Session::Session(std::uint64_t id, sexpr::Ctx& ctx,
                 runtime::Runtime& shared_runtime, EngineKind engine,
                 const image::SessionImage* image,
                 image::RestructureCache* cache,
                 const std::string* prelude_src)
    : id_(id), driver_(ctx, shared_runtime), cache_(cache) {
  driver_.set_engine(engine);
  if (image != nullptr) {
    const image::CloneStats stats = image->clone_into(driver_);
    shared_runtime.obs().metrics.histogram("image.clone_ns")
        .observe(stats.ns);
  } else if (prelude_src != nullptr && !prelude_src->empty()) {
    // Cold start: evaluate the prelude into this session. The image
    // path above replaces exactly this work with a bulk clone.
    gc::MutatorScope ms(ctx.heap.gc());
    driver_.load_program(*prelude_src);
    driver_.interp().take_output();  // prelude output isn't a reply
  }
}

Session::~Session() {
  // Futures spawned by this session's programs capture driver_.interp()
  // by reference; the shared pool outlives us, so drain it before the
  // interpreter is destroyed.
  try {
    driver_.runtime().futures().wait_idle();
  } catch (...) {
    // Cancellation during teardown: the remaining tasks belong to other
    // sessions or have already observed their own tokens.
  }
}

Response Session::handle(const Request& req,
                         runtime::CancelState* tok) {
  ++requests_;
  const auto t0 = std::chrono::steady_clock::now();
  Response resp;
  try {
    if (req.op == "eval") {
      resp = do_eval(req);
    } else if (req.op == "restructure") {
      resp = do_restructure(req);
    } else if (req.op == "stats") {
      resp = do_stats();
    } else if (req.op == "metrics") {
      resp = do_metrics(req);
    } else if (req.op == "trace") {
      resp = do_trace(req);
    } else if (req.op == "ping") {
      resp = Response::ok("pong");
    } else {
      resp = Response::fail(kStatusError, "unknown op: " + req.op);
    }
  } catch (const runtime::StallError& e) {
    const std::string why =
        tok != nullptr && tok->cancelled() ? tok->reason() : e.what();
    resp = Response::fail(
        is_deadline(why) || is_deadline(e.what()) ? kStatusDeadline
                                                  : kStatusStall,
        e.what());
  } catch (const runtime::ResourceExhausted& e) {
    // Before the generic LispError arm: a clipped request answers
    // with the structured status (exit code 6 client-side), and only
    // this request died — the session's next request gets a fresh
    // budget.
    driver_.runtime().obs().metrics
        .counter(exhausted_counter_name(e.kind()))
        .add();
    resp = Response::fail(kStatusResourceExhausted, e.what());
  } catch (const sexpr::LispError& e) {
    resp = Response::fail(kStatusError, e.what());
  } catch (const std::exception& e) {
    resp = Response::fail(kStatusError, e.what());
  }
  if (result_cap_ != 0 && resp.status == kStatusOk &&
      resp.result.size() + resp.output.size() > result_cap_) {
    driver_.runtime().obs().metrics
        .counter(exhausted_counter_name(
            runtime::ResourceExhausted::Kind::kResultCap))
        .add();
    resp = Response::fail(
        kStatusResourceExhausted,
        "result cap exceeded: reply would carry " +
            std::to_string(resp.result.size() + resp.output.size()) +
            " byte(s), cap " + std::to_string(result_cap_));
  }
  const auto wall = std::chrono::duration_cast<std::chrono::microseconds>(
      std::chrono::steady_clock::now() - t0);
  JsonObject m;
  m["session"] = id_;
  m["wall_us"] = static_cast<std::int64_t>(wall.count());
  resp.metrics = Json(std::move(m));
  // Remember this request's trace lane so a follow-up `trace` op (which
  // runs under its own rid) can default to it.
  if (const std::uint64_t rid = obs::current_rid()) last_rid_ = rid;
  return resp;
}

Response Session::do_eval(const Request& req) {
  sexpr::Ctx& ctx = driver_.interp().ctx();
  gc::GcHeap& gc = ctx.heap.gc();
  gc::RootScope roots(gc);
  std::string printed;
  {
    gc::MutatorScope ms(gc);
    sexpr::Value last = driver_.load_program(req.program);
    roots.add(last);
    printed = sexpr::write_str(last);
  }
  gc.maybe_collect();
  return Response::ok(std::move(printed), driver_.interp().take_output());
}

Response Session::do_restructure(const Request& req) {
  sexpr::Ctx& ctx = driver_.interp().ctx();
  gc::GcHeap& gc = ctx.heap.gc();
  if (!req.program.empty()) {
    gc::MutatorScope ms(gc);
    driver_.load_program(req.program);
  }

  // Everything past program loading is the restructure phase of the
  // request's breakdown (loading charged itself as parse + eval).
  const auto t_restruct0 = std::chrono::steady_clock::now();
  std::vector<std::string> names;
  if (!req.name.empty()) {
    names.push_back(req.name);
  } else {
    // No name → every recursive defun loaded so far, in symbol order
    // (the summary map is unordered; sort for a deterministic reply).
    for (const auto& [sym, summary] : driver_.summaries())
      names.push_back(sym->name);
    std::sort(names.begin(), names.end());
  }

  std::string text;
  std::string output = driver_.interp().take_output();
  std::size_t transformed = 0;
  // Cache keys for every name are derived up front, against the
  // program state as loaded — transform() rewrites the defun table as
  // the sweep progresses, and a key minted mid-sweep would never match
  // the one another session computes before its own sweep starts.
  std::vector<std::string> keys(names.size());
  if (cache_ != nullptr) {
    gc::MutatorScope ms(gc);
    const image::RestructureCache::KeySeed seed =
        image::RestructureCache::seed_state(driver_);
    for (std::size_t i = 0; i < names.size(); ++i)
      keys[i] = image::RestructureCache::make_key(seed, names[i],
                                                  !req.name.empty());
  }

  for (std::size_t ni = 0; ni < names.size(); ++ni) {
    const std::string& name = names[ni];
    // Consult the process-wide content-addressed cache first: the key
    // covers everything the answer depends on (restructure_cache.hpp),
    // so a hit replays the exact reply chunk and installs the cached
    // transformed defuns into *this* session — byte- and
    // behavior-identical to the miss path, minus the analysis cost.
    const std::string& key = keys[ni];
    if (cache_ != nullptr) {
      gc::MutatorScope ms(gc);
      image::RestructureEntry entry;
      if (cache_->lookup(key, &entry)) {
        if (req.name.empty() && !entry.is_recursive) continue;
        text += entry.text;
        for (sexpr::Value f : entry.forms) driver_.interp().eval_top(f);
        if (entry.ok) ++transformed;
        continue;
      }
    }
    AnalysisReport report = driver_.analyze(name);
    if (req.name.empty() && !report.info.is_recursive()) {
      // Cache the negative verdict too: a sweep's skip decision is as
      // expensive to re-derive as a transform refusal.
      if (cache_ != nullptr)
        cache_->insert(key, image::RestructureEntry{});
      continue;
    }
    TransformPlan plan = driver_.transform(name);
    std::string chunk = ";; " + name + "\n";
    chunk += plan.to_string();
    {
      gc::MutatorScope ms(gc);
      for (sexpr::Value f : plan.forms)
        chunk += sexpr::write_str(f) + "\n";
      if (cache_ != nullptr) {
        cache_->insert(key, image::RestructureEntry{
                                chunk, plan.ok,
                                report.info.is_recursive(), plan.forms});
      }
    }
    text += chunk;
    if (plan.ok) ++transformed;
  }
  if (names.empty()) {
    return Response::fail(kStatusError,
                          "restructure: no defuns loaded in this session");
  }
  text += "transformed " + std::to_string(transformed) + " of " +
          std::to_string(names.size()) + " function(s)\n";
  obs::charge_request(
      &obs::Breakdown::restructure_ns,
      static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              std::chrono::steady_clock::now() - t_restruct0)
              .count()));
  return Response::ok(std::move(text), std::move(output));
}

Response Session::do_stats() {
  std::string report = obs::full_report(driver_.runtime().obs());
  // Warm-start health: restructure-cache effectiveness and what a
  // session costs to open (image clone vs. prelude evaluation).
  obs::Metrics& m = driver_.runtime().obs().metrics;
  report += "\n== warm start ==\n";
  if (cache_ != nullptr) {
    char ratio[32];
    std::snprintf(ratio, sizeof(ratio), "%.3f", cache_->hit_ratio());
    report += "restructure cache: " + std::to_string(cache_->size()) +
              " entries, " + std::to_string(cache_->hits()) + " hits, " +
              std::to_string(cache_->misses()) + " misses, " +
              std::to_string(cache_->evictions()) +
              " evictions, hit ratio " + ratio + "\n";
  } else {
    report += "restructure cache: disabled\n";
  }
  obs::Histogram& clone_h = m.histogram("image.clone_ns");
  if (clone_h.count() > 0) {
    report += "image clone: " + std::to_string(clone_h.count()) +
              " clone(s), mean " +
              std::to_string(
                  static_cast<std::uint64_t>(clone_h.mean() / 1000.0)) +
              " us\n";
  } else {
    report += "image clone: none (cold-start sessions)\n";
  }
  obs::Histogram& setup_h = m.histogram("serve.session_setup_ns");
  if (setup_h.count() > 0) {
    report += "session setup: " + std::to_string(setup_h.count()) +
              " session(s), mean " +
              std::to_string(
                  static_cast<std::uint64_t>(setup_h.mean() / 1000.0)) +
              " us\n";
  }
  return Response::ok(std::move(report));
}

Response Session::do_metrics(const Request& req) {
  obs::Metrics& m = driver_.runtime().obs().metrics;
  if (req.format.empty() || req.format == "prom") {
    return Response::ok(m.to_prometheus());
  }
  if (req.format == "json") return Response::ok(m.to_json());
  return Response::fail(kStatusError,
                        "metrics: unknown format '" + req.format +
                            "' (want prom or json)");
}

Response Session::do_trace(const Request& req) {
  const obs::Tracer& tracer = driver_.runtime().obs().tracer;
  if (!tracer.enabled() && tracer.events_recorded() == 0) {
    return Response::fail(
        kStatusError,
        "trace: tracer disabled (start curare_serve with --trace)");
  }
  const std::uint64_t rid =
      req.rid > 0 ? static_cast<std::uint64_t>(req.rid) : last_rid_;
  if (rid == 0) {
    return Response::fail(kStatusError,
                          "trace: no request to export yet (pass "
                          "\"rid\" or send an eval first)");
  }
  return Response::ok(tracer.chrome_trace_json(rid));
}

}  // namespace curare::serve
