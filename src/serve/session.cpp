#include "serve/session.hpp"

#include <algorithm>
#include <chrono>

#include "gc/gc.hpp"
#include "obs/recorder.hpp"
#include "obs/request.hpp"
#include "runtime/resource.hpp"
#include "sexpr/printer.hpp"
#include "serve/exit_codes.hpp"

namespace curare::serve {

namespace {

/// A fired token's reason decides deadline vs. stall: the daemon and
/// the watchdog both cancel through the same CancelState machinery,
/// and only deadline cancels carry this phrase (resilience.hpp).
bool is_deadline(const std::string& msg) {
  return msg.find("deadline exceeded") != std::string::npos;
}

/// Which resource.exhausted.* counter a clipped request bumps — the
/// names are API for :stats, the metrics op, and the bench.
const char* exhausted_counter_name(runtime::ResourceExhausted::Kind k) {
  switch (k) {
    case runtime::ResourceExhausted::Kind::kMemQuota:
      return "resource.exhausted.quota";
    case runtime::ResourceExhausted::Kind::kHeapHard:
      return "resource.exhausted.heap";
    case runtime::ResourceExhausted::Kind::kFuel:
      return "resource.exhausted.fuel";
    case runtime::ResourceExhausted::Kind::kResultCap:
      return "resource.exhausted.result_cap";
  }
  return "resource.exhausted.quota";
}

}  // namespace

Session::Session(std::uint64_t id, sexpr::Ctx& ctx,
                 runtime::Runtime& shared_runtime, EngineKind engine)
    : id_(id), driver_(ctx, shared_runtime) {
  driver_.set_engine(engine);
}

Session::~Session() {
  // Futures spawned by this session's programs capture driver_.interp()
  // by reference; the shared pool outlives us, so drain it before the
  // interpreter is destroyed.
  try {
    driver_.runtime().futures().wait_idle();
  } catch (...) {
    // Cancellation during teardown: the remaining tasks belong to other
    // sessions or have already observed their own tokens.
  }
}

Response Session::handle(const Request& req,
                         runtime::CancelState* tok) {
  ++requests_;
  const auto t0 = std::chrono::steady_clock::now();
  Response resp;
  try {
    if (req.op == "eval") {
      resp = do_eval(req);
    } else if (req.op == "restructure") {
      resp = do_restructure(req);
    } else if (req.op == "stats") {
      resp = do_stats();
    } else if (req.op == "metrics") {
      resp = do_metrics(req);
    } else if (req.op == "trace") {
      resp = do_trace(req);
    } else if (req.op == "ping") {
      resp = Response::ok("pong");
    } else {
      resp = Response::fail(kStatusError, "unknown op: " + req.op);
    }
  } catch (const runtime::StallError& e) {
    const std::string why =
        tok != nullptr && tok->cancelled() ? tok->reason() : e.what();
    resp = Response::fail(
        is_deadline(why) || is_deadline(e.what()) ? kStatusDeadline
                                                  : kStatusStall,
        e.what());
  } catch (const runtime::ResourceExhausted& e) {
    // Before the generic LispError arm: a clipped request answers
    // with the structured status (exit code 6 client-side), and only
    // this request died — the session's next request gets a fresh
    // budget.
    driver_.runtime().obs().metrics
        .counter(exhausted_counter_name(e.kind()))
        .add();
    resp = Response::fail(kStatusResourceExhausted, e.what());
  } catch (const sexpr::LispError& e) {
    resp = Response::fail(kStatusError, e.what());
  } catch (const std::exception& e) {
    resp = Response::fail(kStatusError, e.what());
  }
  if (result_cap_ != 0 && resp.status == kStatusOk &&
      resp.result.size() + resp.output.size() > result_cap_) {
    driver_.runtime().obs().metrics
        .counter(exhausted_counter_name(
            runtime::ResourceExhausted::Kind::kResultCap))
        .add();
    resp = Response::fail(
        kStatusResourceExhausted,
        "result cap exceeded: reply would carry " +
            std::to_string(resp.result.size() + resp.output.size()) +
            " byte(s), cap " + std::to_string(result_cap_));
  }
  const auto wall = std::chrono::duration_cast<std::chrono::microseconds>(
      std::chrono::steady_clock::now() - t0);
  JsonObject m;
  m["session"] = id_;
  m["wall_us"] = static_cast<std::int64_t>(wall.count());
  resp.metrics = Json(std::move(m));
  // Remember this request's trace lane so a follow-up `trace` op (which
  // runs under its own rid) can default to it.
  if (const std::uint64_t rid = obs::current_rid()) last_rid_ = rid;
  return resp;
}

Response Session::do_eval(const Request& req) {
  sexpr::Ctx& ctx = driver_.interp().ctx();
  gc::GcHeap& gc = ctx.heap.gc();
  gc::RootScope roots(gc);
  std::string printed;
  {
    gc::MutatorScope ms(gc);
    sexpr::Value last = driver_.load_program(req.program);
    roots.add(last);
    printed = sexpr::write_str(last);
  }
  gc.maybe_collect();
  return Response::ok(std::move(printed), driver_.interp().take_output());
}

Response Session::do_restructure(const Request& req) {
  sexpr::Ctx& ctx = driver_.interp().ctx();
  gc::GcHeap& gc = ctx.heap.gc();
  if (!req.program.empty()) {
    gc::MutatorScope ms(gc);
    driver_.load_program(req.program);
  }

  // Everything past program loading is the restructure phase of the
  // request's breakdown (loading charged itself as parse + eval).
  const auto t_restruct0 = std::chrono::steady_clock::now();
  std::vector<std::string> names;
  if (!req.name.empty()) {
    names.push_back(req.name);
  } else {
    // No name → every recursive defun loaded so far, in symbol order
    // (the summary map is unordered; sort for a deterministic reply).
    for (const auto& [sym, summary] : driver_.summaries())
      names.push_back(sym->name);
    std::sort(names.begin(), names.end());
  }

  std::string text;
  std::string output = driver_.interp().take_output();
  std::size_t transformed = 0;
  for (const std::string& name : names) {
    AnalysisReport report = driver_.analyze(name);
    if (req.name.empty() && !report.info.is_recursive()) continue;
    TransformPlan plan = driver_.transform(name);
    text += ";; " + name + "\n";
    text += plan.to_string();
    {
      gc::MutatorScope ms(gc);
      for (sexpr::Value f : plan.forms)
        text += sexpr::write_str(f) + "\n";
    }
    if (plan.ok) ++transformed;
  }
  if (names.empty()) {
    return Response::fail(kStatusError,
                          "restructure: no defuns loaded in this session");
  }
  text += "transformed " + std::to_string(transformed) + " of " +
          std::to_string(names.size()) + " function(s)\n";
  obs::charge_request(
      &obs::Breakdown::restructure_ns,
      static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              std::chrono::steady_clock::now() - t_restruct0)
              .count()));
  return Response::ok(std::move(text), std::move(output));
}

Response Session::do_stats() {
  return Response::ok(obs::full_report(driver_.runtime().obs()));
}

Response Session::do_metrics(const Request& req) {
  obs::Metrics& m = driver_.runtime().obs().metrics;
  if (req.format.empty() || req.format == "prom") {
    return Response::ok(m.to_prometheus());
  }
  if (req.format == "json") return Response::ok(m.to_json());
  return Response::fail(kStatusError,
                        "metrics: unknown format '" + req.format +
                            "' (want prom or json)");
}

Response Session::do_trace(const Request& req) {
  const obs::Tracer& tracer = driver_.runtime().obs().tracer;
  if (!tracer.enabled() && tracer.events_recorded() == 0) {
    return Response::fail(
        kStatusError,
        "trace: tracer disabled (start curare_serve with --trace)");
  }
  const std::uint64_t rid =
      req.rid > 0 ? static_cast<std::uint64_t>(req.rid) : last_rid_;
  if (rid == 0) {
    return Response::fail(kStatusError,
                          "trace: no request to export yet (pass "
                          "\"rid\" or send an eval first)");
  }
  return Response::ok(tracer.chrome_trace_json(rid));
}

}  // namespace curare::serve
