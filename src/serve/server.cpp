#include "serve/server.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>

#include "gc/gc.hpp"
#include "obs/request.hpp"
#include "serve/exit_codes.hpp"
#include "serve/protocol.hpp"
#include "serve/session.hpp"

namespace curare::serve {

ServeDaemon::ServeDaemon(sexpr::Ctx& ctx, ServeOptions opts)
    : ctx_(ctx),
      opts_(std::move(opts)),
      host_interp_(ctx),
      runtime_(host_interp_, opts_.workers),
      admission_(opts_.max_inflight, opts_.queue_limit,
                 runtime_.obs().metrics),
      sessions_g_(runtime_.obs().metrics.gauge("serve.sessions")),
      requests_c_(runtime_.obs().metrics.counter("serve.requests")),
      request_ns_h_(
          runtime_.obs().metrics.histogram("serve.request_ns")),
      heap_shed_c_(
          runtime_.obs().metrics.counter("resource.shed.heap_soft")),
      heap_used_g_(
          runtime_.obs().metrics.gauge("resource.heap_used_bytes")),
      gc_pause_h_(
          runtime_.obs().metrics.histogram("cri.gc.pause_ns")),
      session_setup_ns_h_(
          runtime_.obs().metrics.histogram("serve.session_setup_ns")) {
  // The watermarks govern the shared heap, so they are daemon-wide
  // state armed once here (tests construct daemons directly; the
  // curare_serve tool only fills ServeOptions).
  ctx_.heap.gc().set_heap_limits(opts_.heap_soft, opts_.heap_hard);
  if (opts_.restructure_cache_cap > 0) {
    restructure_cache_ = std::make_unique<image::RestructureCache>(
        ctx_.heap.gc(), opts_.restructure_cache_cap);
    restructure_cache_->attach_metrics(runtime_.obs().metrics);
  }
}

bool ServeDaemon::prepare_image(std::string* err) {
  try {
    if (!opts_.image_load.empty()) {
      image_ = std::make_unique<image::SessionImage>(
          image::SessionImage::load_file(opts_.image_load));
    } else if (!opts_.prelude_src.empty() && opts_.use_image) {
      // Build the template session once, capture it, and let it die —
      // the blob holds no pointers into the template's heap objects,
      // which is exactly the relocatability the clone path relies on.
      Curare templ(ctx_, runtime_);
      templ.set_engine(opts_.engine);
      templ.load_program(opts_.prelude_src);
      templ.interp().take_output();  // prelude prints stay out of replies
      image_ = std::make_unique<image::SessionImage>(
          image::SessionImage::capture(templ));
    }
    if (image_ && !opts_.image_save.empty())
      image_->save_file(opts_.image_save);
  } catch (const std::exception& e) {
    if (err != nullptr)
      *err = std::string("warm-start image: ") + e.what();
    image_.reset();
    return false;
  }
  return true;
}

ServeDaemon::~ServeDaemon() { shutdown(); }

bool ServeDaemon::start(std::string* err) {
  // Warm-start preparation before the socket exists: a daemon pointed
  // at a corrupt or version-skewed image must fail loudly at startup,
  // not serve sessions from half a heap.
  if (!prepare_image(err)) return false;

  auto fail = [&](const std::string& what) {
    if (err != nullptr) *err = what + ": " + std::strerror(errno);
    if (listen_fd_ >= 0) {
      ::close(listen_fd_);
      listen_fd_ = -1;
    }
    return false;
  };

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) return fail("socket");
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(opts_.port));
  if (::inet_pton(AF_INET, opts_.host.c_str(), &addr.sin_addr) != 1) {
    errno = EINVAL;
    return fail("inet_pton " + opts_.host);
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
             sizeof addr) != 0) {
    return fail("bind");
  }
  if (::listen(listen_fd_, 64) != 0) return fail("listen");

  sockaddr_in bound{};
  socklen_t blen = sizeof bound;
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound),
                    &blen) != 0) {
    return fail("getsockname");
  }
  port_ = ntohs(bound.sin_port);

  accept_thread_ = std::thread([this] { accept_loop(); });
  {
    std::lock_guard<std::mutex> g(lifecycle_mu_);
    started_ = true;
  }
  return true;
}

void ServeDaemon::accept_loop() {
  for (;;) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      // shutdown() shut the listen socket down; any other error on a
      // listening socket is equally terminal for the accept loop.
      break;
    }
    if (draining_.load(std::memory_order_acquire)) {
      ::close(fd);
      continue;
    }
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);

    const std::uint64_t id =
        conn_ids_.fetch_add(1, std::memory_order_relaxed) + 1;
    auto conn = std::make_unique<Conn>();
    conn->fd = fd;
    Conn* raw = conn.get();
    {
      std::lock_guard<std::mutex> g(conns_mu_);
      conns_.push_back(std::move(conn));
    }
    raw->thread =
        std::thread([this, raw, id] { serve_connection(raw, id); });
    reap_finished();
  }
}

void ServeDaemon::reap_finished() {
  std::vector<std::unique_ptr<Conn>> dead;
  {
    std::lock_guard<std::mutex> g(conns_mu_);
    for (auto it = conns_.begin(); it != conns_.end();) {
      if ((*it)->done.load(std::memory_order_acquire)) {
        dead.push_back(std::move(*it));
        it = conns_.erase(it);
      } else {
        ++it;
      }
    }
  }
  for (auto& c : dead) {
    if (c->thread.joinable()) c->thread.join();
  }
}

void ServeDaemon::serve_connection(Conn* conn, std::uint64_t session_id) {
  sessions_g_.add(1);
  try {
    // The Session's Interp registers with the GC and its destructor
    // drains the shared future pool, so scope it tighter than the
    // connection bookkeeping below. Construction is the cold-start
    // cost — image clone or prelude evaluation — charged to the
    // session-setup histogram the warm-start work is judged by.
    const auto t_setup0 = std::chrono::steady_clock::now();
    Session session(session_id, ctx_, runtime_, opts_.engine,
                    image_.get(), restructure_cache_.get(),
                    image_ ? nullptr : &opts_.prelude_src);
    session_setup_ns_h_.observe(static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - t_setup0)
            .count()));
    session.set_result_cap(opts_.result_cap);
    std::string payload;
    // A reply's own socket write can't be part of the breakdown it
    // carries, so each response reports the *previous* reply's write
    // time on this connection (0 for the first).
    std::uint64_t last_reply_ns = 0;
    while (read_frame(conn->fd, payload)) {
      Response resp;
      std::optional<Request> req;
      if (auto parsed = Json::parse(payload)) {
        req = Request::from_json(*parsed);
      }
      if (!req) {
        resp = Response::fail(kStatusError,
                              "malformed request (want a JSON object "
                              "with an \"op\" field)");
        if (!write_frame(conn->fd, resp.to_json().dump())) break;
        continue;
      }

      // Mint this request's observability identity: a process-unique
      // rid (stamps tracer spans) plus the client's request_id (or a
      // generated one) echoed in the reply.
      auto rctx = std::make_shared<obs::RequestContext>();
      rctx->rid = obs::RequestContext::next_rid();
      rctx->request_id = !req->request_id.empty()
                             ? req->request_id
                             : "r-" + std::to_string(rctx->rid);
      // Fresh budgets per request: a clipped request never taxes its
      // session's next one. Every thread that captures this context
      // (CRI servers, future workers) draws down the same counters.
      rctx->mem_quota = opts_.mem_quota;
      rctx->fuel_limit = opts_.fuel;

      auto tok = std::make_shared<runtime::CancelState>();
      const std::int64_t deadline = req->deadline_ms > 0
                                        ? req->deadline_ms
                                        : opts_.default_deadline_ms;
      if (deadline > 0) tok->set_deadline_ms(deadline);
      {
        std::lock_guard<std::mutex> g(conn->mu);
        conn->active = tok;
      }

      const auto t0 = std::chrono::steady_clock::now();
      const std::uint64_t gc_pause0 = gc_pause_h_.sum();
      {
        // Scope covers admission too: queue wait is the first
        // breakdown component. CriRun/FuturePool capture the context
        // from this thread, so spans on their threads carry the rid.
        obs::RequestScope req_scope(rctx);
        gc::GcHeap& gc = ctx_.heap.gc();
        const bool allocating_op =
            req->op == "eval" || req->op == "restructure";
        if (allocating_op && gc.above_soft_watermark()) {
          // Heap pressure: shed before admission so the heap gets a
          // chance to recede — a collection is armed (urgency), the
          // client gets a structured hint instead of an OOM-killed
          // daemon, and cheap ops (ping, stats, metrics) still pass
          // so operators can observe the pressure.
          gc.request_collection();
          heap_shed_c_.add();
          resp = Response::fail(
              kStatusOverloaded,
              "server overloaded: heap soft watermark (" +
                  std::to_string(gc.used_bytes_estimate()) +
                  " byte(s) in use, soft limit " +
                  std::to_string(gc.soft_limit()) + ")");
          resp.retry_after_ms = opts_.retry_after_ms;
        } else {
          AdmissionTicket ticket(admission_, tok.get());
          switch (ticket.outcome()) {
            case AdmissionController::Outcome::kAdmitted: {
              runtime::CancelScope scope(tok.get());
              resp = session.handle(*req, tok.get());
              break;
            }
            case AdmissionController::Outcome::kOverloaded:
              resp = Response::fail(kStatusOverloaded,
                                    "server overloaded: admission queue "
                                    "full");
              resp.retry_after_ms = opts_.retry_after_ms;
              break;
            case AdmissionController::Outcome::kDeadline:
              resp = Response::fail(kStatusDeadline,
                                    "deadline exceeded while queued for "
                                    "admission");
              break;
            case AdmissionController::Outcome::kShutdown:
              resp = Response::fail(kStatusError, "server draining");
              break;
          }
        }
      }
      {
        std::lock_guard<std::mutex> g(conn->mu);
        conn->active.reset();
      }
      requests_c_.add();
      heap_used_g_.set(
          static_cast<std::int64_t>(ctx_.heap.gc().used_bytes_estimate()));
      const std::uint64_t wall_ns = static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              std::chrono::steady_clock::now() - t0)
              .count());
      request_ns_h_.observe(wall_ns);

      if (!resp.metrics.is_object()) resp.metrics = Json(JsonObject{});
      JsonObject& m = resp.metrics.as_object();
      m["inflight"] =
          static_cast<std::int64_t>(admission_.inflight());
      m["queued"] = static_cast<std::int64_t>(admission_.queued());
      m["request_id"] = rctx->request_id;
      m["rid"] = rctx->rid;
      if (req->op == "eval" || req->op == "restructure") {
        const obs::Breakdown& bd = rctx->bd;
        auto ld = [](const std::atomic<std::uint64_t>& v) {
          return Json(v.load(std::memory_order_relaxed));
        };
        JsonObject b;
        b["admission_ns"] = ld(bd.admission_ns);
        b["parse_ns"] = ld(bd.parse_ns);
        b["eval_ns"] = ld(bd.eval_ns);
        b["restructure_ns"] = ld(bd.restructure_ns);
        b["lock_wait_ns"] = ld(bd.lock_wait_ns);
        b["gc_pause_ns"] = Json(gc_pause_h_.sum() - gc_pause0);
        b["reply_ns"] = Json(last_reply_ns);
        b["wall_ns"] = Json(wall_ns);
        m["breakdown"] = Json(std::move(b));
      }
      const auto t_reply0 = std::chrono::steady_clock::now();
      if (!write_frame(conn->fd, resp.to_json().dump())) break;
      last_reply_ns = static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              std::chrono::steady_clock::now() - t_reply0)
              .count());
    }
  } catch (const std::exception& e) {
    // Session setup itself can allocate (the interpreter's prelude
    // conses go through gc.alloc like any other), so an allocation
    // failure — a heap hard watermark, or the chaos injector proving
    // the path — can surface before the request loop's own catch
    // ladder exists. It costs this connection, never the daemon: send
    // a structured last word (best effort; the peer may already be
    // gone) and fall through to the normal teardown below.
    const Response resp = Response::fail(
        kStatusError, std::string("session setup failed: ") + e.what());
    write_frame(conn->fd, resp.to_json().dump());
  }
  sessions_g_.add(-1);
  {
    // Under the conn mutex: shutdown() reads fd to wake idle readers,
    // and closing outside the lock would let it act on a recycled
    // descriptor.
    std::lock_guard<std::mutex> g(conn->mu);
    ::close(conn->fd);
    conn->fd = -1;
  }
  conn->done.store(true, std::memory_order_release);
}

void ServeDaemon::shutdown() {
  {
    std::lock_guard<std::mutex> g(lifecycle_mu_);
    if (!started_ || stopped_) return;
    stopped_ = true;
  }
  draining_.store(true, std::memory_order_release);

  // 1. Stop accepting: wake the accept thread out of accept(2).
  if (listen_fd_ >= 0) ::shutdown(listen_fd_, SHUT_RDWR);
  if (accept_thread_.joinable()) accept_thread_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }

  // 2. Queued requests bounce with "server draining".
  admission_.close();

  // 3. Give in-flight requests the grace window, then cancel.
  const auto grace_end =
      std::chrono::steady_clock::now() +
      std::chrono::milliseconds(opts_.drain_grace_ms);
  while (!admission_.idle() &&
         std::chrono::steady_clock::now() < grace_end) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  if (!admission_.idle()) {
    std::lock_guard<std::mutex> g(conns_mu_);
    for (auto& c : conns_) {
      std::lock_guard<std::mutex> cg(c->mu);
      if (c->active) c->active->cancel("server draining");
    }
  }

  // 4. Wake idle readers: a read-side shutdown makes their blocked
  //    read return 0 without tearing a response that is mid-write.
  {
    std::lock_guard<std::mutex> g(conns_mu_);
    for (auto& c : conns_) {
      std::lock_guard<std::mutex> cg(c->mu);
      if (c->fd >= 0) ::shutdown(c->fd, SHUT_RD);
    }
  }

  // 5. Join everything (threads close their own fds on exit).
  std::vector<std::unique_ptr<Conn>> all;
  {
    std::lock_guard<std::mutex> g(conns_mu_);
    all.swap(conns_);
  }
  for (auto& c : all) {
    if (c->thread.joinable()) c->thread.join();
  }

  {
    std::lock_guard<std::mutex> g(lifecycle_mu_);
    drained_ = true;
  }
  lifecycle_cv_.notify_all();
}

void ServeDaemon::join() {
  std::unique_lock<std::mutex> g(lifecycle_mu_);
  lifecycle_cv_.wait(g, [this] { return drained_; });
}

}  // namespace curare::serve
