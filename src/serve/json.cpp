#include "serve/json.hpp"

#include <cmath>
#include <cstdio>
#include <cstring>

namespace curare::serve {

namespace {

const Json& null_json() {
  static const Json kNull;
  return kNull;
}

/// Recursive-descent parser over a bounded cursor. All failures are
/// reported by returning false; the caller turns that into nullopt.
struct Parser {
  std::string_view in;
  std::size_t pos = 0;
  int depth = 0;
  static constexpr int kMaxDepth = 64;

  bool eof() const { return pos >= in.size(); }
  char peek() const { return in[pos]; }

  void skip_ws() {
    while (!eof()) {
      const char c = in[pos];
      if (c == ' ' || c == '\t' || c == '\n' || c == '\r') {
        ++pos;
      } else {
        break;
      }
    }
  }

  bool literal(std::string_view word) {
    if (in.substr(pos, word.size()) != word) return false;
    pos += word.size();
    return true;
  }

  bool parse_hex4(unsigned& out) {
    if (pos + 4 > in.size()) return false;
    out = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = in[pos++];
      out <<= 4;
      if (c >= '0' && c <= '9') {
        out |= static_cast<unsigned>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        out |= static_cast<unsigned>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        out |= static_cast<unsigned>(c - 'A' + 10);
      } else {
        return false;
      }
    }
    return true;
  }

  void append_utf8(std::string& s, unsigned cp) {
    if (cp < 0x80) {
      s += static_cast<char>(cp);
    } else if (cp < 0x800) {
      s += static_cast<char>(0xC0 | (cp >> 6));
      s += static_cast<char>(0x80 | (cp & 0x3F));
    } else if (cp < 0x10000) {
      s += static_cast<char>(0xE0 | (cp >> 12));
      s += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      s += static_cast<char>(0x80 | (cp & 0x3F));
    } else {
      s += static_cast<char>(0xF0 | (cp >> 18));
      s += static_cast<char>(0x80 | ((cp >> 12) & 0x3F));
      s += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      s += static_cast<char>(0x80 | (cp & 0x3F));
    }
  }

  bool parse_string(std::string& out) {
    if (eof() || in[pos] != '"') return false;
    ++pos;
    out.clear();
    while (!eof()) {
      const char c = in[pos++];
      if (c == '"') return true;
      if (static_cast<unsigned char>(c) < 0x20) return false;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (eof()) return false;
      const char e = in[pos++];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          unsigned cp = 0;
          if (!parse_hex4(cp)) return false;
          // Surrogate pair: a high surrogate must be followed by
          // \uDC00–\uDFFF; lone surrogates are rejected.
          if (cp >= 0xD800 && cp <= 0xDBFF) {
            if (pos + 2 > in.size() || in[pos] != '\\' ||
                in[pos + 1] != 'u') {
              return false;
            }
            pos += 2;
            unsigned lo = 0;
            if (!parse_hex4(lo) || lo < 0xDC00 || lo > 0xDFFF)
              return false;
            cp = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
          } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
            return false;
          }
          append_utf8(out, cp);
          break;
        }
        default: return false;
      }
    }
    return false;  // unterminated
  }

  bool parse_number(double& out) {
    const std::size_t start = pos;
    if (!eof() && in[pos] == '-') ++pos;
    if (eof() || in[pos] < '0' || in[pos] > '9') return false;
    if (in[pos] == '0') {
      ++pos;  // JSON: a leading zero stands alone ("01" is malformed)
      if (!eof() && in[pos] >= '0' && in[pos] <= '9') return false;
    } else {
      while (!eof() && in[pos] >= '0' && in[pos] <= '9') ++pos;
    }
    if (!eof() && in[pos] == '.') {
      ++pos;
      if (eof() || in[pos] < '0' || in[pos] > '9') return false;
      while (!eof() && in[pos] >= '0' && in[pos] <= '9') ++pos;
    }
    if (!eof() && (in[pos] == 'e' || in[pos] == 'E')) {
      ++pos;
      if (!eof() && (in[pos] == '+' || in[pos] == '-')) ++pos;
      if (eof() || in[pos] < '0' || in[pos] > '9') return false;
      while (!eof() && in[pos] >= '0' && in[pos] <= '9') ++pos;
    }
    // The slice is a valid JSON number by construction; strtod accepts
    // a superset, so no further validation is needed.
    out = std::strtod(std::string(in.substr(start, pos - start)).c_str(),
                      nullptr);
    return true;
  }

  bool parse_value(Json& out) {
    if (++depth > kMaxDepth) return false;
    skip_ws();
    if (eof()) return false;
    bool ok = false;
    const char c = peek();
    if (c == '{') {
      ++pos;
      JsonObject obj;
      skip_ws();
      if (!eof() && peek() == '}') {
        ++pos;
        ok = true;
      } else {
        for (;;) {
          skip_ws();
          std::string key;
          if (!parse_string(key)) break;
          skip_ws();
          if (eof() || in[pos] != ':') break;
          ++pos;
          Json v;
          if (!parse_value(v)) break;
          obj[std::move(key)] = std::move(v);
          skip_ws();
          if (!eof() && peek() == ',') {
            ++pos;
            continue;
          }
          if (!eof() && peek() == '}') {
            ++pos;
            ok = true;
          }
          break;
        }
      }
      if (ok) out = Json(std::move(obj));
    } else if (c == '[') {
      ++pos;
      JsonArray arr;
      skip_ws();
      if (!eof() && peek() == ']') {
        ++pos;
        ok = true;
      } else {
        for (;;) {
          Json v;
          if (!parse_value(v)) break;
          arr.push_back(std::move(v));
          skip_ws();
          if (!eof() && peek() == ',') {
            ++pos;
            continue;
          }
          if (!eof() && peek() == ']') {
            ++pos;
            ok = true;
          }
          break;
        }
      }
      if (ok) out = Json(std::move(arr));
    } else if (c == '"') {
      std::string s;
      ok = parse_string(s);
      if (ok) out = Json(std::move(s));
    } else if (c == 't') {
      ok = literal("true");
      if (ok) out = Json(true);
    } else if (c == 'f') {
      ok = literal("false");
      if (ok) out = Json(false);
    } else if (c == 'n') {
      ok = literal("null");
      if (ok) out = Json();
    } else {
      double d = 0;
      ok = parse_number(d);
      if (ok) out = Json(d);
    }
    --depth;
    return ok;
  }
};

void dump_to(const Json& v, std::string& out);

void dump_number(double d, std::string& out) {
  if (!std::isfinite(d)) {
    out += "null";  // JSON has no Inf/NaN; null is the least-bad lie
    return;
  }
  if (d == std::floor(d) && std::fabs(d) < 9.2e18) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%lld",
                  static_cast<long long>(d));
    out += buf;
    return;
  }
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", d);
  out += buf;
}

void dump_to(const Json& v, std::string& out) {
  switch (v.type()) {
    case Json::Type::kNull: out += "null"; break;
    case Json::Type::kBool: out += v.as_bool() ? "true" : "false"; break;
    case Json::Type::kNumber: dump_number(v.as_number(), out); break;
    case Json::Type::kString:
      out += '"';
      out += json_escape(v.as_string());
      out += '"';
      break;
    case Json::Type::kArray: {
      out += '[';
      bool first = true;
      for (const Json& e : v.as_array()) {
        if (!first) out += ',';
        first = false;
        dump_to(e, out);
      }
      out += ']';
      break;
    }
    case Json::Type::kObject: {
      out += '{';
      bool first = true;
      for (const auto& [k, e] : v.as_object()) {
        if (!first) out += ',';
        first = false;
        out += '"';
        out += json_escape(k);
        out += "\":";
        dump_to(e, out);
      }
      out += '}';
      break;
    }
  }
}

}  // namespace

const Json& Json::get(const std::string& key) const {
  if (type_ != Type::kObject) return null_json();
  auto it = obj_.find(key);
  return it != obj_.end() ? it->second : null_json();
}

std::string Json::get_string(const std::string& key,
                             std::string dflt) const {
  const Json& v = get(key);
  return v.is_string() ? v.as_string() : std::move(dflt);
}

std::int64_t Json::get_int(const std::string& key,
                           std::int64_t dflt) const {
  const Json& v = get(key);
  return v.is_number() ? v.as_int() : dflt;
}

bool Json::has(const std::string& key) const {
  return type_ == Type::kObject && obj_.count(key) != 0;
}

std::string Json::dump() const {
  std::string out;
  dump_to(*this, out);
  return out;
}

std::optional<Json> Json::parse(std::string_view text) {
  Parser p{text};
  Json v;
  if (!p.parse_value(v)) return std::nullopt;
  p.skip_ws();
  if (!p.eof()) return std::nullopt;  // trailing garbage
  return v;
}

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(
                            static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace curare::serve
