#include "serve/admission.hpp"

#include <chrono>

#include "obs/metrics.hpp"
#include "obs/request.hpp"

namespace curare::serve {

AdmissionController::AdmissionController(std::size_t max_inflight,
                                         std::size_t max_queue,
                                         obs::Metrics& metrics)
    : max_inflight_(max_inflight == 0 ? 1 : max_inflight),
      max_queue_(max_queue),
      inflight_g_(metrics.gauge("serve.inflight")),
      queue_depth_g_(metrics.gauge("serve.queue_depth")),
      admitted_c_(metrics.counter("serve.admitted")),
      rej_overload_c_(metrics.counter("serve.rejected.overload")),
      rej_deadline_c_(metrics.counter("serve.rejected.deadline")),
      queue_wait_h_(metrics.histogram("serve.queue_wait_ns")) {}

AdmissionController::Outcome AdmissionController::admit(
    runtime::CancelState* tok) {
  const auto t0 = std::chrono::steady_clock::now();
  std::unique_lock<std::mutex> g(mu_);
  if (closed_) return Outcome::kShutdown;
  if (inflight_ >= max_inflight_) {
    if (queued_ >= max_queue_) {
      rej_overload_c_.add();
      return Outcome::kOverloaded;
    }
    ++queued_;
    queue_depth_g_.set(static_cast<std::int64_t>(queued_));
    // Sliced wait: cv notify covers slot frees and close(); the 10ms
    // slice is only the backstop for the request token's own deadline,
    // which nobody signals this cv for.
    while (inflight_ >= max_inflight_ && !closed_ &&
           !(tok != nullptr && tok->should_abort())) {
      cv_.wait_for(g, std::chrono::milliseconds(10), [&] {
        return inflight_ < max_inflight_ || closed_;
      });
    }
    --queued_;
    queue_depth_g_.set(static_cast<std::int64_t>(queued_));
    if (closed_) return Outcome::kShutdown;
    if (inflight_ >= max_inflight_) {
      rej_deadline_c_.add();
      return Outcome::kDeadline;
    }
  }
  ++inflight_;
  inflight_g_.set(static_cast<std::int64_t>(inflight_));
  admitted_c_.add();
  const auto wait_ns = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - t0)
          .count());
  queue_wait_h_.observe(wait_ns);
  obs::charge_request(&obs::Breakdown::admission_ns, wait_ns);
  return Outcome::kAdmitted;
}

void AdmissionController::release() {
  {
    std::lock_guard<std::mutex> g(mu_);
    if (inflight_ > 0) --inflight_;
    inflight_g_.set(static_cast<std::int64_t>(inflight_));
  }
  cv_.notify_all();
}

void AdmissionController::close() {
  {
    std::lock_guard<std::mutex> g(mu_);
    closed_ = true;
  }
  cv_.notify_all();
}

bool AdmissionController::idle() const {
  std::lock_guard<std::mutex> g(mu_);
  return inflight_ == 0 && queued_ == 0;
}

std::size_t AdmissionController::inflight() const {
  std::lock_guard<std::mutex> g(mu_);
  return inflight_;
}

std::size_t AdmissionController::queued() const {
  std::lock_guard<std::mutex> g(mu_);
  return queued_;
}

}  // namespace curare::serve
