// The multi-session serving daemon.
//
// One ServeDaemon per process: it listens on a local TCP socket,
// spawns a thread per connection, and gives each connection a Session
// (own Interp + global Env) over the shared process infrastructure —
// one sexpr::Ctx (heap + symbols), one runtime::Runtime (lock manager,
// future pool, watchdog, recorder). Request flow per frame:
//
//   read_frame → parse → mint CancelState (+deadline_ms)
//     → AdmissionTicket (bounded in-flight + bounded wait queue;
//        reject "overloaded" when both are full)
//     → CancelScope installs the token on this thread
//     → Session::handle (eval / restructure / stats / ping)
//     → write_frame(response)
//
// The request token chains into any CRI run the program starts
// (Runtime::run_cri_in reads current_cancel()), so a deadline or a
// drain cancels exactly that session's run; the daemon and every other
// session keep going.
//
// Graceful drain (SIGTERM → shutdown()):
//   1. stop accepting: the listen socket is shut down;
//   2. the admission controller closes — queued requests answer
//      "server draining", new frames on open connections too;
//   3. in-flight requests get drain_grace_ms to finish, then their
//      tokens are cancelled ("server draining") — they answer with a
//      structured stall response, not a dropped connection;
//   4. idle connections are shut down read-side so their reader
//      threads wake, all threads are joined, stats are flushed.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "curare/curare.hpp"
#include "image/image.hpp"
#include "image/restructure_cache.hpp"
#include "lisp/interp.hpp"
#include "runtime/runtime.hpp"
#include "sexpr/ctx.hpp"
#include "serve/admission.hpp"

namespace curare::serve {

struct ServeOptions {
  std::string host = "127.0.0.1";
  int port = 0;  ///< 0 = ephemeral; read the bound one via port()
  std::size_t max_inflight = 8;
  std::size_t queue_limit = 32;
  /// Applied when a request carries no deadline_ms (0 = none).
  std::int64_t default_deadline_ms = 0;
  /// How long shutdown() waits for in-flight requests before
  /// cancelling their tokens.
  std::int64_t drain_grace_ms = 2000;
  std::size_t workers = 0;  ///< future-pool size (0 = hw concurrency)
  /// Evaluator for every session this daemon spawns. kVm is the
  /// production default; kTree is the differential oracle (and the
  /// serve-smoke cross-check).
  EngineKind engine = EngineKind::kVm;

  // Resource governance (DESIGN.md §14); 0 disables each bound.
  /// Per-request GC-allocation quota in bytes; crossing it answers
  /// status="resource-exhausted" for exactly that request.
  std::uint64_t mem_quota = 0;
  /// Heap soft watermark: above it, eval/restructure admissions shed
  /// with "overloaded" + retry_after_ms and GC urgency is raised.
  std::uint64_t heap_soft = 0;
  /// Heap hard watermark: above it, in-flight allocations fail with
  /// ResourceExhausted instead of growing toward the OS OOM killer.
  std::uint64_t heap_hard = 0;
  /// Per-request eval fuel (tree steps / VM instructions).
  std::uint64_t fuel = 0;
  /// Cap on a reply's result+output bytes.
  std::size_t result_cap = 0;
  /// Backoff hint stamped on overloaded responses.
  std::int64_t retry_after_ms = 100;

  // Warm start (DESIGN.md §15).
  /// Program text evaluated into every session before its first
  /// request (the tool reads --prelude <file> into this).
  std::string prelude_src;
  /// Load the session image from this blob instead of evaluating the
  /// prelude; start() fails on a corrupt/version-skewed file.
  /// Takes precedence over prelude_src.
  std::string image_load;
  /// After building (or loading) an image, persist it here so a daemon
  /// restart skips prelude evaluation entirely.
  std::string image_save;
  /// When false, sessions re-evaluate prelude_src each time instead of
  /// cloning from a captured image — the cold-start baseline the bench
  /// A/Bs against. Ignored when image_load is set.
  bool use_image = true;
  /// Restructure-cache entry bound; 0 disables the cache.
  std::size_t restructure_cache_cap = 1024;
};

class ServeDaemon {
 public:
  ServeDaemon(sexpr::Ctx& ctx, ServeOptions opts);
  ~ServeDaemon();
  ServeDaemon(const ServeDaemon&) = delete;
  ServeDaemon& operator=(const ServeDaemon&) = delete;

  /// Bind + listen + start the accept thread. False (with *err filled)
  /// on any socket failure; the daemon is then inert.
  bool start(std::string* err = nullptr);

  /// The bound port (valid after start()).
  int port() const { return port_; }

  /// Graceful drain as documented above. Idempotent; blocks until all
  /// connection threads have exited.
  void shutdown();

  /// Block until shutdown() has been called (from any thread) and the
  /// daemon has fully drained.
  void join();

  runtime::Runtime& runtime() { return runtime_; }
  std::uint64_t connections_accepted() const {
    return conn_ids_.load(std::memory_order_relaxed);
  }

  /// The warm-start image sessions clone from (null when cold-starting
  /// via prelude evaluation or when no prelude was given).
  const image::SessionImage* session_image() const { return image_.get(); }
  image::RestructureCache* restructure_cache() {
    return restructure_cache_.get();
  }

 private:
  struct Conn {
    int fd = -1;
    std::thread thread;
    std::atomic<bool> done{false};
    /// The in-flight request's token, if any (drain cancels it).
    std::shared_ptr<runtime::CancelState> active;
    std::mutex mu;  ///< guards `active` and the fd close/-1 teardown
  };

  void accept_loop();
  void serve_connection(Conn* conn, std::uint64_t session_id);
  void reap_finished();
  /// Build/load/save the session image per the warm-start options.
  /// Returns false (with *err filled) on a bad image file.
  bool prepare_image(std::string* err);

  sexpr::Ctx& ctx_;
  ServeOptions opts_;
  /// The runtime needs a host interpreter at construction; sessions
  /// never evaluate through it.
  lisp::Interp host_interp_;
  runtime::Runtime runtime_;
  AdmissionController admission_;

  int listen_fd_ = -1;
  int port_ = 0;
  std::thread accept_thread_;
  std::atomic<bool> draining_{false};
  std::atomic<std::uint64_t> conn_ids_{0};

  std::mutex conns_mu_;
  std::vector<std::unique_ptr<Conn>> conns_;

  std::mutex lifecycle_mu_;
  std::condition_variable lifecycle_cv_;
  bool started_ = false;
  bool stopped_ = false;   ///< shutdown() entered
  bool drained_ = false;   ///< shutdown() finished; join() returns

  obs::Gauge& sessions_g_;
  obs::Counter& requests_c_;
  obs::Histogram& request_ns_h_;
  /// Admissions shed because the heap soft watermark was exceeded.
  obs::Counter& heap_shed_c_;
  /// used_bytes_estimate() sampled at each request's completion.
  obs::Gauge& heap_used_g_;
  /// Sampled at request start/end: the delta is the process-wide GC
  /// pause time overlapping the request (pauses stop every session's
  /// world, whoever triggered the collection).
  obs::Histogram& gc_pause_h_;
  /// Session construction wall time — image clone or prelude
  /// evaluation plus interpreter setup. This is the cold-start number
  /// the warm-start work advertises (DESIGN.md §15).
  obs::Histogram& session_setup_ns_h_;

  std::unique_ptr<image::SessionImage> image_;
  std::unique_ptr<image::RestructureCache> restructure_cache_;
};

}  // namespace curare::serve
