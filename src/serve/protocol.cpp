#include "serve/protocol.hpp"

#include <cerrno>
#include <unistd.h>

namespace curare::serve {

Json Request::to_json() const {
  JsonObject o;
  o["op"] = op;
  if (!program.empty()) o["program"] = program;
  if (!name.empty()) o["name"] = name;
  if (deadline_ms > 0) o["deadline_ms"] = deadline_ms;
  if (!request_id.empty()) o["request_id"] = request_id;
  if (!format.empty()) o["format"] = format;
  if (rid > 0) o["rid"] = rid;
  return Json(std::move(o));
}

std::optional<Request> Request::from_json(const Json& v) {
  if (!v.is_object()) return std::nullopt;
  Request r;
  r.op = v.get_string("op");
  if (r.op.empty()) return std::nullopt;
  r.program = v.get_string("program");
  r.name = v.get_string("name");
  r.deadline_ms = v.get_int("deadline_ms", 0);
  r.request_id = v.get_string("request_id");
  r.format = v.get_string("format");
  r.rid = v.get_int("rid", 0);
  return r;
}

Json Response::to_json() const {
  JsonObject o;
  o["status"] = status;
  if (!result.empty()) o["result"] = result;
  if (!output.empty()) o["output"] = output;
  if (!error.empty()) o["error"] = error;
  if (retry_after_ms > 0) o["retry_after_ms"] = retry_after_ms;
  if (!metrics.is_null()) o["metrics"] = metrics;
  return Json(std::move(o));
}

Response Response::from_json(const Json& v) {
  Response r;
  r.status = v.get_string("status", "error");
  r.result = v.get_string("result");
  r.output = v.get_string("output");
  r.error = v.get_string("error");
  r.retry_after_ms = v.get_int("retry_after_ms", 0);
  r.metrics = v.get("metrics");
  return r;
}

Response Response::ok(std::string result, std::string output) {
  Response r;
  r.status = "ok";
  r.result = std::move(result);
  r.output = std::move(output);
  return r;
}

Response Response::fail(std::string_view status, std::string error) {
  Response r;
  r.status = std::string(status);
  r.error = std::move(error);
  return r;
}

namespace {

bool write_all(int fd, const char* data, std::size_t n) {
  while (n > 0) {
    const ssize_t w = ::write(fd, data, n);
    if (w < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (w == 0) return false;
    data += w;
    n -= static_cast<std::size_t>(w);
  }
  return true;
}

bool read_all(int fd, char* data, std::size_t n) {
  while (n > 0) {
    const ssize_t r = ::read(fd, data, n);
    if (r < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (r == 0) return false;  // EOF mid-frame
    data += r;
    n -= static_cast<std::size_t>(r);
  }
  return true;
}

/// Read up to and including one '\n'; false on EOF/error or if the
/// line exceeds `cap` bytes (a garbage length line, not a client).
bool read_line(int fd, std::string& line, std::size_t cap) {
  line.clear();
  char c = 0;
  while (line.size() <= cap) {
    const ssize_t r = ::read(fd, &c, 1);
    if (r < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (r == 0) return false;
    if (c == '\n') return true;
    line += c;
  }
  return false;
}

}  // namespace

bool write_frame(int fd, std::string_view payload) {
  std::string frame;
  frame.reserve(payload.size() + 24);
  frame += std::to_string(payload.size());
  frame += '\n';
  frame.append(payload.data(), payload.size());
  frame += '\n';
  // One write_all for the whole frame: framing stays intact even when
  // several threads share a log-style fd by mistake, and it halves the
  // syscall count on the hot path.
  return write_all(fd, frame.data(), frame.size());
}

bool read_frame(int fd, std::string& out, std::size_t max_bytes) {
  std::string line;
  if (!read_line(fd, line, /*cap=*/24)) return false;
  if (line.empty() || line.size() > 20) return false;
  std::size_t len = 0;
  for (const char c : line) {
    if (c < '0' || c > '9') return false;
    len = len * 10 + static_cast<std::size_t>(c - '0');
  }
  if (len > max_bytes) return false;
  out.resize(len);
  if (len > 0 && !read_all(fd, out.data(), len)) return false;
  char trailer = 0;
  if (!read_all(fd, &trailer, 1)) return false;
  return trailer == '\n';
}

}  // namespace curare::serve
