// Client side of the serving protocol, shared by the curare_client
// tool, the serve tests, and bench_serve. Blocking, one request at a
// time per connection (the protocol is strictly request/response).
#pragma once

#include <optional>
#include <string>

#include "serve/protocol.hpp"

namespace curare::serve {

class ClientConnection {
 public:
  ClientConnection() = default;
  ~ClientConnection() { close(); }
  ClientConnection(const ClientConnection&) = delete;
  ClientConnection& operator=(const ClientConnection&) = delete;
  ClientConnection(ClientConnection&& other) noexcept
      : fd_(other.fd_) {
    other.fd_ = -1;
  }

  /// Connect to host:port; false (with *err filled) on failure.
  bool connect(const std::string& host, int port,
               std::string* err = nullptr);

  bool connected() const { return fd_ >= 0; }
  void close();

  /// One round trip. nullopt on a transport failure (torn connection,
  /// malformed frame); protocol-level failures come back as a Response
  /// with a non-ok status.
  std::optional<Response> request(const Request& req);

 private:
  int fd_ = -1;
};

}  // namespace curare::serve
