// Client side of the serving protocol, shared by the curare_client
// tool, the serve tests, and bench_serve. Blocking, one request at a
// time per connection (the protocol is strictly request/response).
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "serve/protocol.hpp"

namespace curare::serve {

/// Deterministic jittered exponential backoff for the client's
/// retry loop (curare_client --retries/--backoff-ms). Retries apply
/// to *not-yet-executed* requests only — "overloaded" rejections and
/// refused connects — never to transport losses mid-request, where
/// the daemon may already have run the program.
///
/// The schedule is a pure function of (seed, attempt): base doubles
/// per attempt from `backoff_ms` (or takes the server's
/// retry_after_ms hint verbatim when present — the daemon knows when
/// pressure will recede better than a blind doubling), plus up to
/// +50% jitter drawn from a splitmix64 stream so a fleet of clients
/// bounced together does not reconverge on the same millisecond.
/// Seeded, so tests assert the exact delays.
class RetryPolicy {
 public:
  RetryPolicy(unsigned retries, std::int64_t backoff_ms,
              std::uint64_t seed)
      : retries_(retries), backoff_ms_(backoff_ms), seed_(seed) {}

  unsigned retries() const { return retries_; }

  /// Delay in ms before retry `attempt` (0-based). `retry_after_hint`
  /// is the overloaded response's retry_after_ms (0 = no hint).
  std::int64_t delay_ms(unsigned attempt,
                        std::int64_t retry_after_hint) const {
    std::int64_t base = retry_after_hint > 0
                            ? retry_after_hint
                            : backoff_ms_ << (attempt < 16 ? attempt : 16);
    if (base < 0) base = 0;
    const std::uint64_t x = mix(seed_ ^ mix(attempt + 1));
    const std::int64_t jitter =
        base > 0 ? static_cast<std::int64_t>(
                       x % static_cast<std::uint64_t>(base / 2 + 1))
                 : 0;
    return base + jitter;
  }

 private:
  /// splitmix64 finalizer (same mixer as the fault injector).
  static std::uint64_t mix(std::uint64_t x) {
    x += 0x9E3779B97F4A7C15ull;
    x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
    x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
    return x ^ (x >> 31);
  }

  unsigned retries_;
  std::int64_t backoff_ms_;
  std::uint64_t seed_;
};

class ClientConnection {
 public:
  ClientConnection() = default;
  ~ClientConnection() { close(); }
  ClientConnection(const ClientConnection&) = delete;
  ClientConnection& operator=(const ClientConnection&) = delete;
  ClientConnection(ClientConnection&& other) noexcept
      : fd_(other.fd_) {
    other.fd_ = -1;
  }

  /// Connect to host:port; false (with *err filled) on failure.
  bool connect(const std::string& host, int port,
               std::string* err = nullptr);

  bool connected() const { return fd_ >= 0; }
  void close();

  /// One round trip. nullopt on a transport failure (torn connection,
  /// malformed frame); protocol-level failures come back as a Response
  /// with a non-ok status.
  std::optional<Response> request(const Request& req);

 private:
  int fd_ = -1;
};

}  // namespace curare::serve
