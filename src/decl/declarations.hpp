// Programmer-supplied declarations (paper §6).
//
// Curare "accepts programmer-supplied declarations in place of
// information that is impossible to collect mechanically". The registry
// holds every kind of advice the paper enumerates:
//
//   * which structure fields point to other instances vs. carry data,
//   * canonicalization information — pairs of inverse fields
//     (succ/pred) whose adjacent composition collapses (§2.1),
//   * operation properties licensing reordering (§3.2.3): commutative,
//     associative, atomic (or atomizable with a lock),
//   * unordered-collection insertion operations,
//   * any-result search functions,
//   * SAPP assertions — function parameters whose argument satisfies the
//     Single Access Path Property (its reachable structure is a tree),
//   * restructure hints (transform this function / leave it alone).
//
// Declarations arrive either programmatically or as Lisp forms:
//
//   (curare-declare
//     (structure node (pointers next prev) (data val))
//     (inverse next prev)
//     (commutative + *) (associative + *) (atomic + *)
//     (unordered puthash)
//     (any-search find-any)
//     (sapp f l)
//     (restructure f) (no-restructure g))
//
// and inline in a defun body:  (declare (curare (sapp l) (commutative +)))
#pragma once

#include <optional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "sexpr/ctx.hpp"
#include "sexpr/value.hpp"

namespace curare::decl {

using sexpr::Symbol;
using sexpr::Value;

struct StructDecl {
  Symbol* name = nullptr;
  std::vector<Symbol*> pointer_fields;  ///< fields linking to instances
  std::vector<Symbol*> data_fields;     ///< fields holding other data
};

class Declarations {
 public:
  /// Constructs with the defaults every Lisp program gets: the list-cell
  /// structure whose car and cdr are both pointer fields (paper §2.2
  /// assumes "both fields point only to other list cells"), and the
  /// arithmetic ops + and * declared commutative, associative, atomic.
  explicit Declarations(sexpr::Ctx& ctx);

  // ---- structures -------------------------------------------------------
  void declare_structure(Symbol* name, std::vector<Symbol*> pointer_fields,
                         std::vector<Symbol*> data_fields);
  const StructDecl* structure(Symbol* name) const;
  /// Field classification across all declared structures (the paper's
  /// single-structure simplification: accessor names are unique).
  bool is_pointer_field(Symbol* field) const;
  bool is_known_field(Symbol* field) const;

  // ---- canonicalization -------------------------------------------------
  void declare_inverse(Symbol* f, Symbol* g);
  /// The declared inverse of `f`, or nullptr.
  Symbol* inverse_of(Symbol* f) const;

  // ---- operation properties (reordering, §3.2.3) -----------------------
  void declare_commutative(Symbol* op) { commutative_.insert(op); }
  void declare_associative(Symbol* op) { associative_.insert(op); }
  void declare_atomic(Symbol* op) { atomic_.insert(op); }
  bool is_commutative(Symbol* op) const { return commutative_.contains(op); }
  bool is_associative(Symbol* op) const { return associative_.contains(op); }
  bool is_atomic(Symbol* op) const { return atomic_.contains(op); }
  /// All three at once — the licence for the reorder transformation.
  bool is_reorderable_op(Symbol* op) const {
    return is_commutative(op) && is_associative(op) && is_atomic(op);
  }

  // ---- unordered-collection inserts --------------------------------------
  void declare_unordered_insert(Symbol* op) { unordered_.insert(op); }
  bool is_unordered_insert(Symbol* op) const {
    return unordered_.contains(op);
  }

  // ---- any-result searches ------------------------------------------------
  void declare_any_search(Symbol* fn) { any_search_.insert(fn); }
  bool is_any_search(Symbol* fn) const { return any_search_.contains(fn); }

  // ---- SAPP assertions ------------------------------------------------------
  void declare_sapp(Symbol* fn, Symbol* param);
  bool has_sapp(Symbol* fn, Symbol* param) const;

  // ---- parameter aliasing ---------------------------------------------------
  /// Assert that the function's parameters reach pairwise-disjoint
  /// structures. Without it the analyzer "must assume the worst possible
  /// aliasing between input parameters" (paper §1.3) whenever two
  /// parameters are both dereferenced and one is written.
  void declare_noalias(Symbol* fn) { noalias_.insert(fn); }
  bool has_noalias(Symbol* fn) const { return noalias_.contains(fn); }

  // ---- restructure hints ------------------------------------------------------
  void declare_restructure(Symbol* fn, bool enable);
  std::optional<bool> restructure_hint(Symbol* fn) const;

  // ---- Lisp-form loading ---------------------------------------------------
  /// Load a (curare-declare decl...) form. Throws LispError on malformed
  /// declarations (bad advice must be loud, not silently ignored).
  void load(Value form);
  /// Load one declaration clause, with `fn` as the implied function for
  /// fn-scoped clauses (used for inline (declare (curare ...)) forms).
  void load_clause(Value clause, Symbol* implied_fn);
  /// Scan a whole program: top-level (curare-declare ...) forms and
  /// (declare (curare ...)) forms at the head of defun bodies.
  void load_program(const std::vector<Value>& forms);

 private:
  sexpr::Ctx& ctx_;
  std::unordered_map<Symbol*, StructDecl> structures_;
  std::unordered_map<Symbol*, Symbol*> inverses_;
  std::unordered_set<Symbol*> commutative_;
  std::unordered_set<Symbol*> associative_;
  std::unordered_set<Symbol*> atomic_;
  std::unordered_set<Symbol*> unordered_;
  std::unordered_set<Symbol*> any_search_;
  std::unordered_map<Symbol*, std::unordered_set<Symbol*>> sapp_params_;
  std::unordered_set<Symbol*> noalias_;
  std::unordered_map<Symbol*, bool> restructure_;
};

}  // namespace curare::decl
