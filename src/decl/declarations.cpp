#include "decl/declarations.hpp"

#include "sexpr/list_ops.hpp"
#include "sexpr/printer.hpp"

namespace curare::decl {

using sexpr::as_symbol;
using sexpr::cadr;
using sexpr::car;
using sexpr::cdr;
using sexpr::Kind;
using sexpr::LispError;

Declarations::Declarations(sexpr::Ctx& ctx) : ctx_(ctx) {
  // Default structure: the Lisp list cell, both fields pointers (§2.2).
  declare_structure(ctx.symbols.intern("list-cell"),
                    {ctx.s_car, ctx.s_cdr}, {});
  // Arithmetic defaults the paper's Figure 8 discussion presumes.
  for (const char* op : {"+", "*", "min", "max"}) {
    Symbol* s = ctx.symbols.intern(op);
    declare_commutative(s);
    declare_associative(s);
    declare_atomic(s);
  }
  // Hash-table insertion is the paper's canonical unordered insert.
  declare_unordered_insert(ctx.symbols.intern("puthash"));
}

void Declarations::declare_structure(Symbol* name,
                                     std::vector<Symbol*> pointer_fields,
                                     std::vector<Symbol*> data_fields) {
  StructDecl d;
  d.name = name;
  d.pointer_fields = std::move(pointer_fields);
  d.data_fields = std::move(data_fields);
  structures_[name] = std::move(d);
}

const StructDecl* Declarations::structure(Symbol* name) const {
  auto it = structures_.find(name);
  return it == structures_.end() ? nullptr : &it->second;
}

bool Declarations::is_pointer_field(Symbol* field) const {
  for (const auto& [name, d] : structures_) {
    for (Symbol* f : d.pointer_fields)
      if (f == field) return true;
  }
  return false;
}

bool Declarations::is_known_field(Symbol* field) const {
  for (const auto& [name, d] : structures_) {
    for (Symbol* f : d.pointer_fields)
      if (f == field) return true;
    for (Symbol* f : d.data_fields)
      if (f == field) return true;
  }
  return false;
}

void Declarations::declare_inverse(Symbol* f, Symbol* g) {
  inverses_[f] = g;
  inverses_[g] = f;
}

Symbol* Declarations::inverse_of(Symbol* f) const {
  auto it = inverses_.find(f);
  return it == inverses_.end() ? nullptr : it->second;
}

void Declarations::declare_sapp(Symbol* fn, Symbol* param) {
  sapp_params_[fn].insert(param);
}

bool Declarations::has_sapp(Symbol* fn, Symbol* param) const {
  auto it = sapp_params_.find(fn);
  return it != sapp_params_.end() && it->second.contains(param);
}

void Declarations::declare_restructure(Symbol* fn, bool enable) {
  restructure_[fn] = enable;
}

std::optional<bool> Declarations::restructure_hint(Symbol* fn) const {
  auto it = restructure_.find(fn);
  if (it == restructure_.end()) return std::nullopt;
  return it->second;
}

void Declarations::load(Value form) {
  Value head = car(form);
  if (!head.is(Kind::Symbol) ||
      as_symbol(head)->name != "curare-declare") {
    throw LispError("declarations: expected (curare-declare ...), got " +
                    sexpr::write_str(form));
  }
  for (Value rest = cdr(form); !rest.is_nil(); rest = cdr(rest))
    load_clause(car(rest), nullptr);
}

void Declarations::load_clause(Value clause, Symbol* implied_fn) {
  if (!clause.is(Kind::Cons))
    throw LispError("declarations: malformed clause " +
                    sexpr::write_str(clause));
  const std::string& kw = as_symbol(car(clause))->name;
  Value args = cdr(clause);

  auto each_symbol = [&](auto&& fn) {
    for (Value a = args; !a.is_nil(); a = cdr(a)) fn(as_symbol(car(a)));
  };

  if (kw == "structure") {
    Symbol* name = as_symbol(car(args));
    std::vector<Symbol*> ptrs;
    std::vector<Symbol*> data;
    for (Value part = cdr(args); !part.is_nil(); part = cdr(part)) {
      Value spec = car(part);
      const std::string& which = as_symbol(car(spec))->name;
      std::vector<Symbol*>* dst = nullptr;
      if (which == "pointers") {
        dst = &ptrs;
      } else if (which == "data") {
        dst = &data;
      } else {
        throw LispError("declarations: structure part must be (pointers "
                        "...) or (data ...), got " +
                        sexpr::write_str(spec));
      }
      for (Value f = cdr(spec); !f.is_nil(); f = cdr(f))
        dst->push_back(as_symbol(car(f)));
    }
    declare_structure(name, std::move(ptrs), std::move(data));
  } else if (kw == "inverse") {
    declare_inverse(as_symbol(car(args)), as_symbol(cadr(args)));
  } else if (kw == "commutative") {
    each_symbol([&](Symbol* s) { declare_commutative(s); });
  } else if (kw == "associative") {
    each_symbol([&](Symbol* s) { declare_associative(s); });
  } else if (kw == "atomic") {
    each_symbol([&](Symbol* s) { declare_atomic(s); });
  } else if (kw == "unordered") {
    each_symbol([&](Symbol* s) { declare_unordered_insert(s); });
  } else if (kw == "any-search") {
    each_symbol([&](Symbol* s) { declare_any_search(s); });
  } else if (kw == "sapp") {
    if (implied_fn != nullptr) {
      // inline form: (sapp param...)
      each_symbol([&](Symbol* p) { declare_sapp(implied_fn, p); });
    } else {
      // top-level form: (sapp fn param...)
      Symbol* fn = as_symbol(car(args));
      for (Value p = cdr(args); !p.is_nil(); p = cdr(p))
        declare_sapp(fn, as_symbol(car(p)));
    }
  } else if (kw == "noalias") {
    if (implied_fn != nullptr && args.is_nil()) {
      declare_noalias(implied_fn);
    } else {
      each_symbol([&](Symbol* s) { declare_noalias(s); });
    }
  } else if (kw == "restructure" || kw == "no-restructure") {
    const bool enable = (kw == "restructure");
    if (implied_fn != nullptr && args.is_nil()) {
      declare_restructure(implied_fn, enable);
    } else {
      each_symbol([&](Symbol* fn) { declare_restructure(fn, enable); });
    }
  } else {
    throw LispError("declarations: unknown clause kind '" + kw + "'");
  }
}

void Declarations::load_program(const std::vector<Value>& forms) {
  for (Value form : forms) {
    if (!form.is(Kind::Cons)) continue;
    Value head = car(form);
    if (!head.is(Kind::Symbol)) continue;
    const std::string& name = as_symbol(head)->name;
    if (name == "curare-declare") {
      load(form);
    } else if (name == "defun") {
      // (defun f (params) (declare (curare clause...)) body...)
      Symbol* fn = as_symbol(cadr(form));
      for (Value body = cdr(sexpr::cddr(form)); !body.is_nil();
           body = cdr(body)) {
        Value stmt = car(body);
        if (!stmt.is(Kind::Cons)) break;
        if (!car(stmt).is(Kind::Symbol) ||
            as_symbol(car(stmt))->name != "declare") {
          break;  // declares must lead the body
        }
        for (Value d = cdr(stmt); !d.is_nil(); d = cdr(d)) {
          Value spec = car(d);
          if (spec.is(Kind::Cons) && car(spec).is(Kind::Symbol) &&
              as_symbol(car(spec))->name == "curare") {
            for (Value c = cdr(spec); !c.is_nil(); c = cdr(c))
              load_clause(car(c), fn);
          }
        }
      }
    }
  }
}

}  // namespace curare::decl
