// CRI code generation (paper §3.1 / §4).
//
// Turns a (possibly lock-inserted / delayed / reordered) recursive
// function into the server-body form the runtime's pool executes:
// every self-recursive call (f ARGS…) becomes (%cri-enqueue SITE ARGS…) —
// "a recursive call is the creation of a new process to execute the
// subsequent invocation asynchronously" — and a wrapper starts the pool:
//
//   (defun f$cri (params…) BODY-with-enqueues)
//   (defun f$parallel (%servers params…)
//     [(setq f$result nil)]
//     (%cri-run f$cri NSITES %servers params…)
//     [f$result])
//
// Functions that use a recursive call's result in an embedded position
// are rejected here (the §5 enabling transformations — rec2iter, DPS —
// must run first); tail-position results are captured by assigning the
// base case's value to a result variable, the paper's "changing the
// single return that produces a value into an assignment".
#pragma once

#include <string>
#include <vector>

#include "analysis/extract.hpp"
#include "sexpr/ctx.hpp"

namespace curare::transform {

struct CriResult {
  bool ok = false;
  std::string failure;  ///< §6 feedback when not transformable
  sexpr::Value server_defun;
  sexpr::Value wrapper_defun;
  sexpr::Symbol* server_name = nullptr;
  sexpr::Symbol* wrapper_name = nullptr;
  sexpr::Symbol* result_var = nullptr;  ///< null when capture disabled
  std::size_t num_sites = 0;
  std::vector<std::string> notes;
};

struct CriOptions {
  /// Capture the base case's value in a result variable so the wrapper
  /// can return it (valid for linear recursions whose base case runs
  /// once). When false the wrapper returns nil — call-for-effect.
  bool capture_result = true;
};

CriResult make_cri(sexpr::Ctx& ctx, const analysis::FunctionInfo& info,
                   const CriOptions& opts = {});

}  // namespace curare::transform
