// The delay transformation (paper §3.2.2).
//
// "Moving conflicting statements into the head of a function ensures
// their correct execution order. … By moving S_i to the head of f — also
// moving any statements upon which it depends — the conflict between S_i
// and S_j is always resolved in accordance with sequential execution."
//
// In the CRI model the head executes before the next invocation starts,
// so hoisting a conflicting write above the recursive call serializes
// the conflict for free — at the price of a bigger head (lower
// concurrency), which the strategy benchmarks quantify.
//
// Scope of the motion (checked, not assumed):
//  * the statement moves only above recursive-call statements in its own
//    sequence (same control region, so control dependencies hold);
//  * the hoisted statement must not write any location the skipped
//    calls' argument expressions traverse (W ≤ A for any argument read
//    path A means the motion would change the spawned arguments).
#pragma once

#include <string>
#include <vector>

#include "analysis/conflict.hpp"
#include "analysis/extract.hpp"
#include "sexpr/ctx.hpp"

namespace curare::transform {

struct DelayResult {
  sexpr::Value defun;  ///< rewritten defun (same name)
  int moved = 0;       ///< statements hoisted into the head
  std::vector<std::string> notes;
};

/// Hoist conflicting tail statements above the recursive calls they
/// follow, where legal. Conflicting statements are identified by
/// re-resolving each candidate's write location against the conflict
/// report's written paths.
DelayResult apply_delay(sexpr::Ctx& ctx,
                        const decl::Declarations& decls,
                        const analysis::FunctionInfo& info,
                        const analysis::ConflictReport& report);

}  // namespace curare::transform
