#include "transform/lock_insert.hpp"

#include <algorithm>

#include "sexpr/list_ops.hpp"
#include "transform/build.hpp"

namespace curare::transform {

using sexpr::cadr;
using sexpr::caddr;
using sexpr::cddr;
using sexpr::cdr;
using sexpr::Kind;

namespace {
bool mentions_symbol(Value f, Symbol* s) {
  if (f.is(Kind::Symbol)) return f.obj() == s;
  while (f.is(Kind::Cons)) {
    if (mentions_symbol(sexpr::car(f), s)) return true;
    f = cdr(f);
  }
  return false;
}
}  // namespace

LockPlan plan_locks(sexpr::Ctx& ctx, const FunctionInfo& info,
                    const ConflictReport& report) {
  (void)ctx;
  (void)info;
  LockPlan plan;

  // Collect candidate locations: both endpoints of every structure
  // conflict, and each conflicting variable.
  std::vector<LockSpec> candidates;
  auto add_struct = [&](const analysis::StructRef& r) {
    if (r.path.is_empty()) return;  // whole-parameter: no location
    for (const LockSpec& s : candidates)
      if (!s.variable && s.root == r.root && s.path == r.path) return;
    candidates.push_back(LockSpec{r.root, r.path, false});
  };
  for (const Conflict& c : report.conflicts) {
    if (c.is_variable_conflict()) {
      bool dup = false;
      for (const LockSpec& s : candidates)
        dup |= s.variable && s.root == c.var;
      if (!dup) candidates.push_back(LockSpec{c.var, {}, true});
    } else if (c.is_array_conflict()) {
      // Coarse whole-array lock through the variable holding the
      // vector; per-element lock granularity is future work, noted so
      // the programmer understands the concurrency cost.
      bool dup = false;
      for (const LockSpec& s : candidates)
        dup |= s.variable && s.root == c.array;
      if (!dup) {
        candidates.push_back(LockSpec{c.array, {}, true});
        plan.notes.push_back("array conflict on " + c.array->name +
                             " protected by a whole-array lock");
      }
    } else {
      add_struct(c.earlier);
      add_struct(c.later);
    }
  }

  // Coalesce: shortest-prefix paths subsume their extensions.
  std::sort(candidates.begin(), candidates.end(),
            [](const LockSpec& a, const LockSpec& b) {
              if (a.variable != b.variable) return b.variable;
              if (a.path.size() != b.path.size())
                return a.path.size() < b.path.size();
              return a.to_string() < b.to_string();
            });
  for (const LockSpec& c : candidates) {
    bool subsumed = false;
    for (const LockSpec& kept : plan.locks) {
      if (!kept.variable && !c.variable && kept.root == c.root &&
          kept.path.prefix_of(c.path)) {
        subsumed = true;
        plan.notes.push_back("coalesced lock on " + c.to_string() +
                             " into " + kept.to_string());
        break;
      }
    }
    if (!subsumed) plan.locks.push_back(c);
  }

  // Mode selection (§3.2.1's read-write refinement): a lock covering a
  // location the body writes (at or below its path, since coalescing may
  // have widened it) must be exclusive; covers of read-only endpoints
  // take shared locks.
  // Collect every write reference visible to the planner: the
  // function's own refs plus the conflict endpoints (the latter matter
  // when a caller synthesizes a report directly).
  std::vector<const analysis::StructRef*> writes;
  for (const analysis::StructRef& r : info.refs)
    if (r.is_write) writes.push_back(&r);
  for (const Conflict& c : report.conflicts) {
    if (c.is_variable_conflict()) continue;
    if (c.earlier.is_write) writes.push_back(&c.earlier);
    if (c.later.is_write) writes.push_back(&c.later);
  }

  for (LockSpec& s : plan.locks) {
    if (s.variable) {
      s.exclusive = false;
      for (const analysis::VarRef& v : info.var_refs)
        if (v.var == s.root && v.is_write) s.exclusive = true;
      for (const Conflict& c : report.conflicts) {
        if (c.is_variable_conflict() && c.var == s.root &&
            (c.var_earlier.is_write || c.var_later.is_write)) {
          s.exclusive = true;
        }
        if (c.is_array_conflict() && c.array == s.root)
          s.exclusive = true;
      }
    } else {
      s.exclusive = false;
      for (const analysis::StructRef* r : writes) {
        if (r->root == s.root &&
            (s.path.prefix_of(r->path) ||
             (r->deep && r->path.prefix_of(s.path)))) {
          s.exclusive = true;
          break;
        }
      }
    }
    if (!s.exclusive)
      plan.notes.push_back("read lock suffices for " + s.to_string());
  }
  return plan;
}

Value apply_lock_plan(sexpr::Ctx& ctx, Value defun_form,
                      const LockPlan& plan) {
  if (plan.empty()) return defun_form;

  // (defun name (params) body...) → same with body wrapped in locks.
  Value name = cadr(defun_form);
  Value params = caddr(defun_form);
  Value body = cdr(cddr(defun_form));

  std::vector<Value> locks;
  std::vector<Value> unlocks;
  for (const LockSpec& s : plan.locks) {
    Value mode = quoted(
        ctx, ctx.symbols.intern_value(s.exclusive ? "write" : "read"));
    if (s.variable) {
      // Variable locks are always exclusive at the runtime level; a
      // read-only variable never plans a lock (no conflict without a
      // write), so the mode refinement is moot here.
      Value var = quoted(ctx, Value::object(s.root));
      locks.push_back(form(ctx, {sym(ctx, "%lock-var"), var}));
      unlocks.push_back(form(ctx, {sym(ctx, "%unlock-var"), var}));
    } else {
      LocationExpr loc = location_expr(ctx, s.root, s.path);
      Value fieldq = quoted(ctx, Value::object(loc.field));
      locks.push_back(
          form(ctx, {sym(ctx, "%lock"), loc.cell, fieldq, mode}));
      unlocks.push_back(
          form(ctx, {sym(ctx, "%unlock"), loc.cell, fieldq, mode}));
    }
  }
  std::vector<Value> new_body = locks;
  const std::size_t locks_end = new_body.size();
  for (Value f : sexpr::list_to_vector(body)) new_body.push_back(f);

  // §3.2.1's placement refinement: "move unlock statements so that they
  // execute as soon after their lock statements as possible — after all
  // uses of M and after all lock statements". Each unlock goes directly
  // after the last statement that mentions its root variable (a sound
  // over-approximation of "uses of M"), never before the lock section.
  // Inserting in reverse acquisition order keeps ties released in
  // reverse order.
  for (std::size_t k = plan.locks.size(); k-- > 0;) {
    Symbol* root = plan.locks[k].root;
    std::size_t insert_after = locks_end;  // just past the locks
    for (std::size_t i = locks_end; i < new_body.size(); ++i) {
      if (mentions_symbol(new_body[i], root)) insert_after = i + 1;
    }
    new_body.insert(new_body.begin() +
                        static_cast<std::ptrdiff_t>(insert_after),
                    unlocks[k]);
  }

  std::vector<Value> defun{Value::object(ctx.s_defun), name, params};
  defun.insert(defun.end(), new_body.begin(), new_body.end());
  return form(ctx, defun);
}

}  // namespace curare::transform
