// Destination-passing style (paper §5, second transformation; Figs 12–13).
//
// "Instead of returning a result that is immediately stored in a
// structure, a function is passed the structure as an argument and
// stores the value directly."
//
// Handled class: list-building recursions whose body is a cond (or if
// chain) where every clause returns exactly one of
//
//   BASE                         — no recursive call        → (setf (cdr dest) BASE)
//   (f ARGS…)                    — pass-through             → (f$dps dest ARGS…)
//   (cons E (f ARGS…))           — prepend-and-recur        → (let ((%cell (cons E nil)))
//                                                               (f$dps %cell ARGS…)
//                                                               (setf (cdr dest) %cell))
//
// plus a wrapper (defun f (args…) (let ((%dest (cons nil nil)))
// (f$dps %dest args…) (cdr %dest))).
//
// The result carries `dps_safe = true`: Curare generated these stores
// itself, so it KNOWS each lands in a unique fresh cell and skips the
// synchronization its flow-insensitive detector would otherwise demand —
// the provenance argument of §5.
#pragma once

#include <string>
#include <vector>

#include "analysis/extract.hpp"
#include "sexpr/ctx.hpp"

namespace curare::transform {

struct DpsResult {
  bool ok = false;
  std::string failure;
  sexpr::Value dps_defun;      ///< (defun f$dps (%dest params…) …)
  sexpr::Value wrapper_defun;  ///< (defun f (params…) … (cdr %dest))
  sexpr::Symbol* dps_name = nullptr;
  bool dps_safe = true;  ///< stores provably hit unique fresh cells
  std::vector<std::string> notes;
};

DpsResult apply_dps(sexpr::Ctx& ctx, const analysis::FunctionInfo& info);

}  // namespace curare::transform
