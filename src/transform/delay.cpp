#include "transform/delay.hpp"

#include "analysis/headtail.hpp"
#include "sexpr/equal.hpp"
#include "sexpr/list_ops.hpp"
#include "sexpr/printer.hpp"
#include "transform/build.hpp"

namespace curare::transform {

using analysis::FieldPath;
using analysis::FunctionInfo;
using sexpr::as_symbol;
using sexpr::cadr;
using sexpr::caddr;
using sexpr::cddr;
using sexpr::cdr;
using sexpr::Kind;
using sexpr::Symbol;

namespace {

class Delayer {
 public:
  Delayer(sexpr::Ctx& ctx, const decl::Declarations& decls,
          const FunctionInfo& info,
          const analysis::ConflictReport& report)
      : ctx_(ctx), decls_(decls), info_(info) {
    for (const analysis::Conflict& c : report.conflicts) {
      if (c.is_variable_conflict()) {
        if (c.var_earlier.is_write) conflict_vars_.push_back(c.var);
        if (c.var_later.is_write) conflict_vars_.push_back(c.var);
      } else {
        if (c.earlier.is_write) conflict_writes_.push_back(c.earlier.path);
        if (c.later.is_write) conflict_writes_.push_back(c.later.path);
      }
    }
  }

  Value rewrite_defun(Value defun) {
    Value name = cadr(defun);
    Value params = caddr(defun);
    Value body = cdr(cddr(defun));
    std::vector<Value> out{Value::object(ctx_.s_defun), name, params};
    for (Value f : rewrite_seq(sexpr::list_to_vector(body)))
      out.push_back(f);
    return form(ctx_, out);
  }

  int moved() const { return moved_; }
  const std::vector<std::string>& notes() const { return notes_; }

 private:
  /// Rewrite one statement sequence: hoist eligible conflicting writes
  /// above the recursive-call statements they follow, then recurse into
  /// control forms.
  std::vector<Value> rewrite_seq(std::vector<Value> stmts) {
    // First recurse into nested control structure.
    for (Value& s : stmts) s = rewrite_form(s);

    // Hoisting pass: repeatedly look for [call..., write] adjacencies.
    bool changed = true;
    while (changed) {
      changed = false;
      for (std::size_t i = 0; i + 1 < stmts.size(); ++i) {
        if (!is_rec_call_stmt(stmts[i])) continue;
        // Find the first non-call statement after a run of calls.
        std::size_t j = i;
        while (j < stmts.size() && is_rec_call_stmt(stmts[j])) ++j;
        if (j >= stmts.size()) break;
        Value candidate = stmts[j];
        if (!is_conflicting_write(candidate)) continue;
        if (!motion_legal(candidate, stmts, i, j)) continue;
        // Hoist: move stmts[j] to position i.
        stmts.erase(stmts.begin() + static_cast<std::ptrdiff_t>(j));
        stmts.insert(stmts.begin() + static_cast<std::ptrdiff_t>(i),
                     candidate);
        ++moved_;
        notes_.push_back("delayed conflict: hoisted " +
                         sexpr::write_str(candidate) +
                         " into the head");
        changed = true;
        break;
      }
    }
    return stmts;
  }

  Value rewrite_form(Value f) {
    if (!f.is(Kind::Cons) || !sexpr::car(f).is(Kind::Symbol)) return f;
    const std::string& op = as_symbol(sexpr::car(f))->name;

    auto rebuild_tail_seq = [&](Value head_part, Value seq) {
      std::vector<Value> out = sexpr::list_to_vector(head_part);
      for (Value s : rewrite_seq(sexpr::list_to_vector(seq)))
        out.push_back(s);
      return form(ctx_, out);
    };

    if (op == "progn") {
      return rebuild_tail_seq(ctx_.make_list(sym(ctx_, "progn")), cdr(f));
    }
    if (op == "when" || op == "unless") {
      return rebuild_tail_seq(
          ctx_.make_list(sym(ctx_, op), cadr(f)), cddr(f));
    }
    if (op == "let" || op == "let*") {
      return rebuild_tail_seq(
          ctx_.make_list(sym(ctx_, op), cadr(f)), cddr(f));
    }
    if (op == "cond") {
      std::vector<Value> out{sym(ctx_, "cond")};
      for (Value cl = cdr(f); !cl.is_nil(); cl = cdr(cl)) {
        Value clause = sexpr::car(cl);
        std::vector<Value> nc{sexpr::car(clause)};
        for (Value s : rewrite_seq(sexpr::list_to_vector(cdr(clause))))
          nc.push_back(s);
        out.push_back(form(ctx_, nc));
      }
      return form(ctx_, out);
    }
    if (op == "if") {
      std::vector<Value> out{sym(ctx_, "if"), cadr(f),
                             rewrite_form(caddr(f))};
      if (!sexpr::cdddr(f).is_nil())
        out.push_back(rewrite_form(sexpr::cadddr(f)));
      return form(ctx_, out);
    }
    return f;
  }

  bool is_rec_call_stmt(Value f) const {
    return f.is(Kind::Cons) && sexpr::car(f).is(Kind::Symbol) &&
           static_cast<Symbol*>(sexpr::car(f).obj()) == info_.name;
  }

  /// Is this statement a write whose location participates in a
  /// conflict? (setq of a conflicting variable, or setf/rplac whose
  /// place resolves to a conflicting path.)
  bool is_conflicting_write(Value f) const {
    if (!f.is(Kind::Cons) || !sexpr::car(f).is(Kind::Symbol)) return false;
    const std::string& op = as_symbol(sexpr::car(f))->name;
    if (op == "setq") {
      Symbol* var = sexpr::cadr(f).is(Kind::Symbol)
                        ? static_cast<Symbol*>(cadr(f).obj())
                        : nullptr;
      for (Symbol* v : conflict_vars_)
        if (v == var) return true;
      return false;
    }
    auto loc = write_location(f);
    if (!loc) return false;
    for (const FieldPath& p : conflict_writes_)
      if (p == loc->path) return true;
    return false;
  }

  /// The (root, path) a write statement stores through, if resolvable.
  std::optional<analysis::ResolvedPath> write_location(Value f) const {
    if (!f.is(Kind::Cons) || !sexpr::car(f).is(Kind::Symbol))
      return std::nullopt;
    const std::string& op = as_symbol(sexpr::car(f))->name;
    if (op == "setf") {
      return analysis::resolve_accessor(ctx_, cadr(f));
    }
    if (op == "rplaca" || op == "rplacd") {
      auto base = analysis::resolve_accessor(ctx_, cadr(f));
      if (!base) return std::nullopt;
      base->path = base->path.then(op == "rplaca"
                                       ? static_cast<analysis::Field>(
                                             ctx_.s_car)
                                       : static_cast<analysis::Field>(
                                             ctx_.s_cdr));
      return base;
    }
    return std::nullopt;
  }

  /// Legality: the hoisted write must not alter anything the skipped
  /// calls' arguments read. W ≤ A for an argument read path A means the
  /// argument value would change.
  bool motion_legal(Value write_stmt, const std::vector<Value>& stmts,
                    std::size_t call_begin, std::size_t write_pos) const {
    // setq of a variable: legal iff no skipped call argument mentions
    // the variable.
    if (sexpr::car(write_stmt).is(Kind::Symbol) &&
        as_symbol(sexpr::car(write_stmt))->name == "setq") {
      Symbol* var = static_cast<Symbol*>(cadr(write_stmt).obj());
      for (std::size_t k = call_begin; k < write_pos; ++k)
        if (mentions_symbol(cdr(stmts[k]), var)) return false;
      return true;
    }

    auto loc = write_location(write_stmt);
    if (!loc) return false;
    for (std::size_t k = call_begin; k < write_pos; ++k) {
      for (Value a = cdr(stmts[k]); !a.is_nil(); a = cdr(a)) {
        auto arg = analysis::resolve_accessor(ctx_, sexpr::car(a));
        if (!arg) {
          // Unresolvable argument: cannot prove independence.
          if (sexpr::car(a).is(Kind::Cons)) return false;
          continue;  // constants/variables are unaffected
        }
        if (arg->root == loc->root && loc->path.prefix_of(arg->path))
          return false;
      }
    }
    return true;
  }

  static bool mentions_symbol(Value f, Symbol* s) {
    if (f.is(Kind::Symbol)) return f.obj() == s;
    while (f.is(Kind::Cons)) {
      if (mentions_symbol(sexpr::car(f), s)) return true;
      f = cdr(f);
    }
    return false;
  }

  sexpr::Ctx& ctx_;
  const decl::Declarations& decls_;
  const FunctionInfo& info_;
  std::vector<FieldPath> conflict_writes_;
  std::vector<Symbol*> conflict_vars_;
  int moved_ = 0;
  std::vector<std::string> notes_;
};

}  // namespace

DelayResult apply_delay(sexpr::Ctx& ctx, const decl::Declarations& decls,
                        const analysis::FunctionInfo& info,
                        const analysis::ConflictReport& report) {
  Delayer d(ctx, decls, info, report);
  DelayResult result;
  result.defun = d.rewrite_defun(info.defun_form);
  result.moved = d.moved();
  result.notes = d.notes();
  return result;
}

}  // namespace curare::transform
