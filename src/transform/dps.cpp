#include "transform/dps.hpp"

#include <functional>

#include "sexpr/list_ops.hpp"
#include "sexpr/printer.hpp"
#include "transform/build.hpp"

namespace curare::transform {

using sexpr::as_symbol;
using sexpr::cadr;
using sexpr::caddr;
using sexpr::cdr;
using sexpr::Kind;
using sexpr::Symbol;

namespace {

bool is_call_to(Value v, Symbol* fname) {
  return v.is(Kind::Cons) && sexpr::car(v).is(Kind::Symbol) &&
         static_cast<Symbol*>(sexpr::car(v).obj()) == fname;
}

/// Rewrite one clause-result expression into its DPS statement, or
/// return nil on pattern failure.
Value rewrite_result(sexpr::Ctx& ctx, Value expr, Symbol* fname,
                     Symbol* dps_name, Value dest, std::string* failure) {
  // (f ARGS…): pass the destination through.
  if (is_call_to(expr, fname)) {
    std::vector<Value> call{Value::object(dps_name), dest};
    for (Value a = cdr(expr); !a.is_nil(); a = cdr(a))
      call.push_back(sexpr::car(a));
    return form(ctx, call);
  }
  // (cons E (f ARGS…)): fresh cell, recurse into it, then link.
  if (expr.is(Kind::Cons) && sexpr::car(expr).is(Kind::Symbol) &&
      as_symbol(sexpr::car(expr))->name == "cons" &&
      sexpr::list_length(expr) == 3 && is_call_to(caddr(expr), fname)) {
    Value element = cadr(expr);
    Value rec = caddr(expr);
    Value cell = sym(ctx, "%cell");
    std::vector<Value> call{Value::object(dps_name), cell};
    for (Value a = cdr(rec); !a.is_nil(); a = cdr(a))
      call.push_back(sexpr::car(a));
    Value link = form(
        ctx, {Value::object(ctx.s_setf),
              form(ctx, {Value::object(ctx.s_cdr), dest}), cell});
    return form(ctx,
                {Value::object(ctx.s_let),
                 ctx.make_list(ctx.make_list(
                     cell, form(ctx, {sym(ctx, "cons"), element,
                                      Value::nil()}))),
                 form(ctx, call), link});
  }
  // Anything containing a recursive call in another position is out of
  // the handled class.
  bool has_call = false;
  std::function<void(Value)> scan = [&](Value v) {
    if (is_call_to(v, fname)) has_call = true;
    if (v.is(Kind::Cons)) {
      for (Value r = v; r.is(Kind::Cons); r = cdr(r))
        scan(sexpr::car(r));
    }
  };
  scan(expr);
  if (has_call) {
    *failure = "clause " + sexpr::write_str(expr) +
               " uses the recursive result other than as a cons cdr";
    return Value::nil();
  }
  // BASE: store directly.
  return form(ctx, {Value::object(ctx.s_setf),
                    form(ctx, {Value::object(ctx.s_cdr), dest}), expr});
}

}  // namespace

DpsResult apply_dps(sexpr::Ctx& ctx, const analysis::FunctionInfo& info) {
  DpsResult result;

  // Body must be a single cond (the Fig 12 shape) or a single if.
  if (sexpr::list_length(info.body) != 1) {
    result.failure = "body is not a single cond/if expression";
    return result;
  }
  Value top = sexpr::car(info.body);
  if (!top.is(Kind::Cons) || !sexpr::car(top).is(Kind::Symbol)) {
    result.failure = "body is not a cond/if expression";
    return result;
  }
  const std::string& op = as_symbol(sexpr::car(top))->name;

  Symbol* dps_name =
      ctx.symbols.intern(info.name->name + "$dps");
  Value dest = sym(ctx, "%dest");

  std::vector<std::pair<Value, Value>> clauses;  // (test, result-expr)
  if (op == "cond") {
    for (Value cl = cdr(top); !cl.is_nil(); cl = cdr(cl)) {
      Value clause = sexpr::car(cl);
      if (sexpr::list_length(clause) != 2) {
        result.failure = "cond clause with more than one body form: " +
                         sexpr::write_str(clause);
        return result;
      }
      clauses.emplace_back(sexpr::car(clause), cadr(clause));
    }
  } else if (op == "if" && sexpr::list_length(top) == 4) {
    clauses.emplace_back(cadr(top), caddr(top));
    clauses.emplace_back(Value::object(ctx.s_t), sexpr::cadddr(top));
  } else {
    result.failure = "body is not a cond or two-armed if";
    return result;
  }

  std::vector<Value> out_clauses{sym(ctx, "cond")};
  for (auto& [test, expr] : clauses) {
    std::string failure;
    Value stmt = rewrite_result(ctx, expr, info.name, dps_name, dest,
                                &failure);
    if (stmt.is_nil() && !failure.empty()) {
      result.failure = failure;
      return result;
    }
    out_clauses.push_back(ctx.make_list(test, stmt));
  }

  // (defun f$dps (%dest params…) (cond …))
  std::vector<Value> dps_params{dest};
  for (Symbol* p : info.params) dps_params.push_back(Value::object(p));
  result.dps_defun =
      form(ctx, {Value::object(ctx.s_defun), Value::object(dps_name),
                 form(ctx, dps_params), form(ctx, out_clauses)});

  // (defun f (params…)
  //   (let ((%d (cons nil nil))) (f$dps %d params…) (cdr %d)))
  Value d = sym(ctx, "%d");
  std::vector<Value> call{Value::object(dps_name), d};
  std::vector<Value> params;
  for (Symbol* p : info.params) {
    call.push_back(Value::object(p));
    params.push_back(Value::object(p));
  }
  Value wrapper_body = form(
      ctx, {Value::object(ctx.s_let),
            ctx.make_list(ctx.make_list(
                d, form(ctx, {sym(ctx, "cons"), Value::nil(),
                              Value::nil()}))),
            form(ctx, call),
            form(ctx, {Value::object(ctx.s_cdr), d})});
  result.wrapper_defun =
      form(ctx, {Value::object(ctx.s_defun), Value::object(info.name),
                 form(ctx, params), wrapper_body});

  result.ok = true;
  result.dps_name = dps_name;
  result.notes.push_back(
      "rewritten in destination-passing style (paper §5, Fig 13); "
      "stores land in unique fresh cells, so no synchronization is "
      "required (provenance argument)");
  return result;
}

}  // namespace curare::transform
