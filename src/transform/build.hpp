// Form-construction helpers for the transformations: the code generators
// build new Lisp programs as S-expressions and hand them back to the
// interpreter/printer.
#pragma once

#include <initializer_list>
#include <string_view>
#include <vector>

#include "analysis/field_path.hpp"
#include "sexpr/ctx.hpp"

namespace curare::transform {

using analysis::FieldPath;
using sexpr::Symbol;
using sexpr::Value;

inline Value sym(sexpr::Ctx& ctx, std::string_view name) {
  return ctx.symbols.intern_value(name);
}

inline Value form(sexpr::Ctx& ctx, std::initializer_list<Value> items) {
  return ctx.heap.list(std::vector<Value>(items));
}

inline Value form(sexpr::Ctx& ctx, const std::vector<Value>& items) {
  return ctx.heap.list(items);
}

/// (quote v)
inline Value quoted(sexpr::Ctx& ctx, Value v) {
  return form(ctx, {Value::object(ctx.s_quote), v});
}

/// The expression that navigates `path` from `root`:
/// path cdr.car over l → (car (cdr l)).
inline Value path_expr(sexpr::Ctx& ctx, Symbol* root,
                       const FieldPath& path) {
  Value e = Value::object(root);
  for (analysis::Field f : path.fields())
    e = form(ctx, {Value::object(f), e});
  return e;
}

/// The (cell-expr, field) pair naming the *location* of a non-empty
/// path: cdr.car over l → cell (cdr l), field car.
struct LocationExpr {
  Value cell;     ///< expression evaluating to the containing cons
  Symbol* field;  ///< which slot of that cons
};

inline LocationExpr location_expr(sexpr::Ctx& ctx, Symbol* root,
                                  const FieldPath& path) {
  if (path.is_empty())
    throw sexpr::LispError(
        "location_expr: the empty path names the variable, not a "
        "structure location");
  FieldPath prefix(
      std::vector<analysis::Field>(path.fields().begin(),
                                   path.fields().end() - 1));
  return LocationExpr{path_expr(ctx, root, prefix),
                      path.fields().back()};
}

}  // namespace curare::transform
