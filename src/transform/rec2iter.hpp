// Recursion → iteration (paper §5, first transformation).
//
// "Restricted classes of recursive functions can be transformed into
// iterative functions by a set of well-known transformations. Some of
// these transformations … depend on subtle properties of a function's
// operations, such as commutativity and associativity, and so require
// information like that provided by Curare's declarative model."
//
// The class handled here is the classic accumulating reduction:
//
//   (defun f (params…) (if TEST BASE (op E (f STEP…))))
//
// (also the 2-clause cond spelling) with `op` declared commutative AND
// associative. The result is an equivalent tail-recursive function with
// an accumulator — which Curare's CRI transform can then parallelize,
// because the accumulator update is a reorderable operation.
//
//   (defun f (params…)
//     (f$iter params… BASE-IDENTITY-HANDLING))
//
// realized concretely as a loop (while) to keep the output independent
// of further analysis.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "analysis/extract.hpp"
#include "decl/declarations.hpp"
#include "sexpr/ctx.hpp"

namespace curare::transform {

struct Rec2IterResult {
  bool ok = false;
  std::string failure;   ///< why the pattern did not match (§6 feedback)
  sexpr::Value defun;    ///< the iterative replacement (same name)
  sexpr::Symbol* op = nullptr;  ///< the reduction operator
  std::vector<std::string> notes;
};

Rec2IterResult apply_rec2iter(sexpr::Ctx& ctx,
                              const decl::Declarations& decls,
                              const analysis::FunctionInfo& info);

}  // namespace curare::transform
