#include "transform/cri.hpp"

#include "sexpr/list_ops.hpp"
#include "sexpr/printer.hpp"
#include "transform/build.hpp"

namespace curare::transform {

using sexpr::as_symbol;
using sexpr::cadr;
using sexpr::caddr;
using sexpr::cddr;
using sexpr::cdr;
using sexpr::Kind;
using sexpr::Symbol;

namespace {

class CriGen {
 public:
  CriGen(sexpr::Ctx& ctx, const analysis::FunctionInfo& info,
         const CriOptions& opts)
      : ctx_(ctx), info_(info), opts_(opts) {}

  bool failed() const { return !failure_.empty(); }
  const std::string& failure() const { return failure_; }
  std::size_t sites() const { return next_site_; }

  /// Rewrite a body sequence; `tail` marks that the last form's value is
  /// the function's result.
  std::vector<Value> rewrite_seq(Value forms, bool tail) {
    std::vector<Value> out;
    std::vector<Value> in = sexpr::list_to_vector(forms);
    for (std::size_t i = 0; i < in.size(); ++i) {
      const bool last = (i + 1 == in.size());
      out.push_back(rewrite(in[i], tail && last));
    }
    return out;
  }

  Value rewrite(Value f, bool tail) {
    if (!f.is(Kind::Cons)) return tail ? capture(f) : f;
    Value head = sexpr::car(f);
    if (!head.is(Kind::Symbol)) return tail ? capture(f) : f;
    Symbol* op = static_cast<Symbol*>(head.obj());

    if (op == info_.name) return rewrite_call(f);

    const std::string& name = op->name;
    if (name == "quote") return tail ? capture(f) : f;

    if (name == "progn" || name == "when" || name == "unless") {
      // when/unless: value is nil when the test fails — capturing only
      // the body's last form is fine for effect-style recursions; the
      // base case of a when-style traversal is "test fails", whose nil
      // value is the initial value of the result variable.
      Value keep = (name == "progn") ? ctx_.make_list(Value::object(op))
                                     : ctx_.make_list(Value::object(op),
                                                      cadr(f));
      Value seq = (name == "progn") ? cdr(f) : cddr(f);
      std::vector<Value> out = sexpr::list_to_vector(keep);
      for (Value s : rewrite_seq(seq, tail)) out.push_back(s);
      return form(ctx_, out);
    }
    if (name == "let" || name == "let*") {
      if (contains_call(cadr(f))) {
        failure_ = "recursive call inside let bindings of " +
                   sexpr::write_str(f);
        return f;
      }
      std::vector<Value> out{Value::object(op), cadr(f)};
      for (Value s : rewrite_seq(cddr(f), tail)) out.push_back(s);
      return form(ctx_, out);
    }
    if (name == "cond") {
      std::vector<Value> out{sym(ctx_, "cond")};
      for (Value cl = cdr(f); !cl.is_nil(); cl = cdr(cl)) {
        Value clause = sexpr::car(cl);
        if (contains_call(sexpr::car(clause))) {
          failure_ = "recursive call inside a cond test";
          return f;
        }
        std::vector<Value> nc{sexpr::car(clause)};
        for (Value s : rewrite_seq(cdr(clause), tail)) nc.push_back(s);
        out.push_back(form(ctx_, nc));
      }
      return form(ctx_, out);
    }
    if (name == "if") {
      if (contains_call(cadr(f))) {
        failure_ = "recursive call inside an if test";
        return f;
      }
      std::vector<Value> out{Value::object(ctx_.s_if), cadr(f),
                             rewrite(caddr(f), tail)};
      if (!sexpr::cdddr(f).is_nil())
        out.push_back(rewrite(sexpr::cadddr(f), tail));
      return form(ctx_, out);
    }
    if (name == "and" || name == "or" || name == "while" ||
        name == "dotimes" || name == "dolist" || name == "setq" ||
        name == "setf" || name == "lambda" || name == "future" ||
        name == "declare") {
      if (contains_call(f)) {
        failure_ = "recursive call embedded in " + name +
                   " uses its result or escapes statement position; "
                   "apply rec2iter or DPS first (paper §5)";
        return f;
      }
      return tail ? capture(f) : f;
    }

    // Ordinary call: recursive calls in argument position are the
    // "result used" case the paper excludes.
    if (contains_call(f)) {
      failure_ =
          "recursive call's result is used inside " + sexpr::write_str(f) +
          "; apply rec2iter or DPS first (paper §5)";
      return f;
    }
    return tail ? capture(f) : f;
  }

 private:
  Value rewrite_call(Value f) {
    const int site = next_site_++;
    std::vector<Value> out{sym(ctx_, "%cri-enqueue"),
                           Value::fixnum(site)};
    for (Value a = cdr(f); !a.is_nil(); a = cdr(a)) {
      if (contains_call(sexpr::car(a))) {
        failure_ = "recursive call nested inside another call's "
                   "arguments";
        return f;
      }
      out.push_back(sexpr::car(a));
    }
    return form(ctx_, out);
  }

  /// Wrap a non-call tail expression so the wrapper can return the
  /// sequential result: (setq f$result EXPR).
  Value capture(Value expr) {
    if (!opts_.capture_result) return expr;
    captured_ = true;
    return form(ctx_, {Value::object(ctx_.s_setq), result_var_value(),
                       expr});
  }

 public:
  Value result_var_value() {
    if (result_var_ == nullptr)
      result_var_ = ctx_.symbols.intern(info_.name->name + "$result");
    return Value::object(result_var_);
  }
  Symbol* result_var() const { return result_var_; }
  bool captured() const { return captured_; }

 private:
  bool contains_call(Value f) const {
    if (!f.is(Kind::Cons)) return false;
    if (sexpr::car(f).is(Kind::Symbol)) {
      Symbol* h = static_cast<Symbol*>(sexpr::car(f).obj());
      if (h == info_.name) return true;
      if (h->name == "quote") return false;
    }
    for (Value r = f; r.is(Kind::Cons); r = cdr(r))
      if (contains_call(sexpr::car(r))) return true;
    return false;
  }

  sexpr::Ctx& ctx_;
  const analysis::FunctionInfo& info_;
  const CriOptions& opts_;
  int next_site_ = 0;
  std::string failure_;
  Symbol* result_var_ = nullptr;
  bool captured_ = false;
};

}  // namespace

CriResult make_cri(sexpr::Ctx& ctx, const analysis::FunctionInfo& info,
                   const CriOptions& opts) {
  CriResult result;
  if (!info.is_recursive()) {
    result.failure = "function is not self-recursive";
    return result;
  }
  for (const analysis::RecCall& c : info.rec_calls) {
    if (c.result_used) {
      result.failure =
          "recursive call " + sexpr::write_str(c.form) +
          " uses its result; apply recursion→iteration or DPS first "
          "(paper §5)";
      return result;
    }
  }

  CriGen gen(ctx, info, opts);
  std::vector<Value> body = gen.rewrite_seq(info.body, true);
  if (gen.failed()) {
    result.failure = gen.failure();
    return result;
  }

  Symbol* server_name = ctx.symbols.intern(info.name->name + "$cri");
  Symbol* wrapper_name = ctx.symbols.intern(info.name->name + "$parallel");

  std::vector<Value> params;
  for (Symbol* p : info.params) params.push_back(Value::object(p));

  std::vector<Value> server{Value::object(ctx.s_defun),
                            Value::object(server_name),
                            form(ctx, params)};
  server.insert(server.end(), body.begin(), body.end());
  result.server_defun = form(ctx, server);

  // Wrapper: (defun f$parallel (%servers params…)
  //            [(setq f$result nil)]
  //            (%cri-run f$cri NSITES %servers params…)
  //            [f$result])
  Value servers_param = sym(ctx, "%servers");
  std::vector<Value> wrapper_params{servers_param};
  wrapper_params.insert(wrapper_params.end(), params.begin(),
                        params.end());
  std::vector<Value> run_call{
      sym(ctx, "%cri-run"), Value::object(server_name),
      Value::fixnum(static_cast<std::int64_t>(gen.sites())),
      servers_param};
  run_call.insert(run_call.end(), params.begin(), params.end());

  std::vector<Value> wrapper{Value::object(ctx.s_defun),
                             Value::object(wrapper_name),
                             form(ctx, wrapper_params)};
  if (opts.capture_result && gen.captured()) {
    wrapper.push_back(form(ctx, {Value::object(ctx.s_setq),
                                 gen.result_var_value(), Value::nil()}));
    wrapper.push_back(form(ctx, run_call));
    wrapper.push_back(gen.result_var_value());
    result.result_var = gen.result_var();
  } else {
    wrapper.push_back(form(ctx, run_call));
  }
  result.wrapper_defun = form(ctx, wrapper);

  result.ok = true;
  result.server_name = server_name;
  result.wrapper_name = wrapper_name;
  result.num_sites = gen.sites();
  result.notes.push_back(
      "recursive calls became %cri-enqueue at " +
      std::to_string(gen.sites()) + " site(s); servers execute the body "
      "repeatedly without context switches (paper §4)");
  return result;
}

}  // namespace curare::transform
