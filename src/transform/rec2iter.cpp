#include "transform/rec2iter.hpp"

#include "sexpr/list_ops.hpp"
#include "sexpr/printer.hpp"
#include "transform/build.hpp"

namespace curare::transform {

using sexpr::as_symbol;
using sexpr::cadr;
using sexpr::caddr;
using sexpr::cadddr;
using sexpr::cddr;
using sexpr::cdr;
using sexpr::Kind;
using sexpr::Symbol;

namespace {

struct ReductionPattern {
  Value test;                 // base-case predicate
  Value base;                 // base-case value
  Symbol* op;                 // (op E (f STEP…))
  Value element;              // E
  std::vector<Value> steps;   // STEP… aligned with params
};

/// Match (op E (f STEP…)) or (op (f STEP…) E).
std::optional<ReductionPattern> match_step(Value expr, Symbol* fname,
                                           std::size_t nparams) {
  if (!expr.is(Kind::Cons) || !sexpr::car(expr).is(Kind::Symbol))
    return std::nullopt;
  Symbol* op = as_symbol(sexpr::car(expr));
  std::vector<Value> args = sexpr::list_to_vector(cdr(expr));
  if (args.size() != 2) return std::nullopt;

  auto is_rec = [&](Value v) {
    return v.is(Kind::Cons) && sexpr::car(v).is(Kind::Symbol) &&
           static_cast<Symbol*>(sexpr::car(v).obj()) == fname;
  };
  Value rec;
  Value element;
  if (is_rec(args[1]) && !is_rec(args[0])) {
    rec = args[1];
    element = args[0];
  } else if (is_rec(args[0]) && !is_rec(args[1])) {
    rec = args[0];
    element = args[1];
  } else {
    return std::nullopt;
  }
  std::vector<Value> steps = sexpr::list_to_vector(cdr(rec));
  if (steps.size() != nparams) return std::nullopt;

  ReductionPattern p;
  p.op = op;
  p.element = element;
  p.steps = std::move(steps);
  return p;
}

std::optional<ReductionPattern> match_body(Value body, Symbol* fname,
                                           std::size_t nparams) {
  if (sexpr::list_length(body) != 1) return std::nullopt;
  Value f = sexpr::car(body);
  if (!f.is(Kind::Cons) || !sexpr::car(f).is(Kind::Symbol))
    return std::nullopt;
  const std::string& op = as_symbol(sexpr::car(f))->name;

  Value test, base, step_expr;
  if (op == "if" && sexpr::list_length(f) == 4) {
    test = cadr(f);
    base = caddr(f);
    step_expr = cadddr(f);
  } else if (op == "cond" && sexpr::list_length(f) == 3) {
    Value c1 = cadr(f);
    Value c2 = caddr(f);
    if (sexpr::list_length(c1) != 2 || sexpr::list_length(c2) != 2)
      return std::nullopt;
    if (!(sexpr::car(c2).is(Kind::Symbol) &&
          as_symbol(sexpr::car(c2))->name == "t"))
      return std::nullopt;
    test = sexpr::car(c1);
    base = cadr(c1);
    step_expr = cadr(c2);
  } else {
    return std::nullopt;
  }

  auto p = match_step(step_expr, fname, nparams);
  if (!p) return std::nullopt;
  p->test = test;
  p->base = base;
  return p;
}

}  // namespace

Rec2IterResult apply_rec2iter(sexpr::Ctx& ctx,
                              const decl::Declarations& decls,
                              const analysis::FunctionInfo& info) {
  Rec2IterResult result;

  auto p = match_body(info.body, info.name, info.params.size());
  if (!p) {
    result.failure =
        "body is not a single (if TEST BASE (op E (f STEP…))) reduction";
    return result;
  }
  if (!decls.is_associative(p->op) || !decls.is_commutative(p->op)) {
    result.failure = "operator " + p->op->name +
                     " lacks (commutative …)/(associative …) "
                     "declarations, which this transformation depends on";
    return result;
  }

  // Generated shape:
  // (defun f (params…)
  //   (let ((%acc nil) (%have nil))
  //     (while (not TEST)
  //       (if %have (setq %acc (op %acc E))
  //           (progn (setq %acc E) (setq %have t)))
  //       (let ((%s1 STEP1) …) (setq p1 %s1) … ))
  //     (if %have (op %acc BASE) BASE)))
  Value acc = sym(ctx, "%acc");
  Value have = sym(ctx, "%have");
  Value opv = Value::object(p->op);

  Value update = form(
      ctx, {Value::object(ctx.s_if), have,
            form(ctx, {Value::object(ctx.s_setq), acc,
                       form(ctx, {opv, acc, p->element})}),
            form(ctx, {Value::object(ctx.s_progn),
                       form(ctx, {Value::object(ctx.s_setq), acc,
                                  p->element}),
                       form(ctx, {Value::object(ctx.s_setq), have,
                                  Value::object(ctx.s_t)})})});

  // Simultaneous parameter stepping through temporaries.
  std::vector<Value> bindings;
  std::vector<Value> assigns{Value::object(ctx.s_progn)};
  for (std::size_t i = 0; i < info.params.size(); ++i) {
    Value tmp = sym(ctx, "%s" + std::to_string(i));
    bindings.push_back(ctx.make_list(tmp, p->steps[i]));
    assigns.push_back(form(ctx, {Value::object(ctx.s_setq),
                                 Value::object(info.params[i]), tmp}));
  }
  Value step = form(ctx, {Value::object(ctx.s_let),
                          form(ctx, bindings), form(ctx, assigns)});

  Value loop = form(ctx, {Value::object(ctx.s_while),
                          form(ctx, {sym(ctx, "not"), p->test}), update,
                          step});

  Value final_val =
      form(ctx, {Value::object(ctx.s_if), have,
                 form(ctx, {opv, acc, p->base}), p->base});

  Value let_body = form(
      ctx, {Value::object(ctx.s_let),
            ctx.make_list(ctx.make_list(acc, Value::nil()),
                          ctx.make_list(have, Value::nil())),
            loop, final_val});

  std::vector<Value> params;
  for (Symbol* s : info.params) params.push_back(Value::object(s));
  result.defun = form(ctx, {Value::object(ctx.s_defun),
                            Value::object(info.name), form(ctx, params),
                            let_body});
  result.ok = true;
  result.op = p->op;
  result.notes.push_back("recursion→iteration: reduction over " +
                         p->op->name + " became a loop (paper §5)");
  return result;
}

}  // namespace curare::transform
