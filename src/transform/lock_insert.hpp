// Lock insertion (paper §3.2.1).
//
// "To ensure that I_i has exclusive use of M before I_j, Curare inserts a
// lock statement Lock(M) in the head of f and an unlock statement
// Unlock(M) in the body of f."
//
// Planning applies the paper's coalescing improvement: "if invocations
// conflict over a set of locations M1, M2, … Mm and all such sets are
// disjoint, then replace the m locks by a single lock" — realized here
// as: among the conflicting location paths of one root, a path that is a
// prefix of another subsumes it (the paper's l.car / l.car.cdr /
// l.car.cdr.car → lock l.car example).
//
// Code generation prepends the (%lock …) statements — in a fixed sorted
// order, giving two-phase acquisition — and appends the matching
// (%unlock …) statements to the function body. Unlocks at body end are
// conservative (the paper suggests moving them earlier; see the ablation
// benchmark for the cost).
#pragma once

#include <string>
#include <vector>

#include "analysis/conflict.hpp"
#include "analysis/function_info.hpp"
#include "sexpr/ctx.hpp"

namespace curare::transform {

using analysis::Conflict;
using analysis::ConflictReport;
using analysis::FieldPath;
using analysis::FunctionInfo;
using sexpr::Symbol;
using sexpr::Value;

struct LockSpec {
  Symbol* root = nullptr;  ///< parameter (structure lock) or variable
  FieldPath path;          ///< empty for variable locks
  bool variable = false;
  /// §3.2.1: "replace exclusive locks by read-write locks in cases in
  /// which more than one invocation reads M". A lock is exclusive only
  /// when the body writes at (or below) the location; read-only
  /// endpoints take shared locks.
  bool exclusive = true;

  std::string to_string() const {
    std::string s = variable ? "var " + root->name
                             : root->name + "." + path.to_string();
    return s + (exclusive ? " [write]" : " [read]");
  }
};

struct LockPlan {
  std::vector<LockSpec> locks;
  std::vector<std::string> notes;

  bool empty() const { return locks.empty(); }
};

/// Derive the lock set from a conflict report (conflicts the caller
/// still wants protected — reordered/delayed ones should be gone).
LockPlan plan_locks(sexpr::Ctx& ctx, const FunctionInfo& info,
                    const ConflictReport& report);

/// Rewrite the defun to acquire every planned lock at the top of its
/// body and release at the bottom. Returns the new defun form.
Value apply_lock_plan(sexpr::Ctx& ctx, Value defun_form,
                      const LockPlan& plan);

}  // namespace curare::transform
