#include "transform/reorder.hpp"

#include "sexpr/equal.hpp"
#include "sexpr/list_ops.hpp"
#include "sexpr/printer.hpp"
#include "transform/build.hpp"

namespace curare::transform {

using sexpr::as_symbol;
using sexpr::cadr;
using sexpr::caddr;
using sexpr::cddr;
using sexpr::cdr;
using sexpr::Kind;
using sexpr::Symbol;

namespace {

class Reorderer {
 public:
  Reorderer(sexpr::Ctx& ctx, const decl::Declarations& decls,
            const analysis::FunctionInfo& info)
      : ctx_(ctx), decls_(decls), info_(info) {}

  Value rewrite(Value f) {
    if (!f.is(Kind::Cons) || !sexpr::car(f).is(Kind::Symbol)) return f;
    const std::string& op = as_symbol(sexpr::car(f))->name;

    if (op == "quote" || op == "declare") return f;

    if (op == "setq" && sexpr::list_length(f) == 3) {
      if (Value r = try_rewrite_setq(f); !r.is_nil()) return r;
      return rebuild(f);
    }
    if (op == "setf" && sexpr::list_length(f) == 3) {
      if (Value r = try_rewrite_setf(f); !r.is_nil()) return r;
      return rebuild(f);
    }
    if (op == "incf" || op == "decf") {
      if (Value r = try_rewrite_incf(f, op == "decf"); !r.is_nil())
        return r;
      return rebuild(f);
    }
    if (op == "push") {
      if (Value r = try_rewrite_push(f); !r.is_nil()) return r;
      return rebuild(f);
    }
    return rebuild(f);
  }

  int rewritten() const { return rewritten_; }
  std::vector<std::string> take_notes() { return std::move(notes_); }

 private:
  Value rebuild(Value f) {
    std::vector<Value> out;
    for (Value rest = f; !rest.is_nil(); rest = cdr(rest))
      out.push_back(rewrite(sexpr::car(rest)));
    return form(ctx_, out);
  }

  /// (setq v (op ... v ...)) with v free and op reorderable.
  Value try_rewrite_setq(Value f) {
    if (!cadr(f).is(Kind::Symbol)) return Value::nil();
    Symbol* var = static_cast<Symbol*>(cadr(f).obj());
    if (info_.param_index(var) >= 0) return Value::nil();
    Value val = caddr(f);
    Symbol* op = update_op_of(val, Value::object(var));
    if (op == nullptr || !decls_.is_reorderable_op(op))
      return Value::nil();

    std::vector<Value> others = args_without(val, Value::object(var));
    ++rewritten_;
    notes_.push_back("reordered " + sexpr::write_str(f) +
                     " into an atomic update (§3.2.3)");
    if (op->name == "+") {
      // (%atomic-incf-var 'v (+ others…))
      Value delta = others.size() == 1
                        ? others[0]
                        : form_plus(others);
      return form(ctx_, {sym(ctx_, "%atomic-incf-var"),
                         quoted(ctx_, Value::object(var)), delta});
    }
    // (%locked-update-var 'v (lambda (%old) (op %old others…)))
    return form(ctx_, {sym(ctx_, "%locked-update-var"),
                       quoted(ctx_, Value::object(var)),
                       update_lambda(op, others)});
  }

  /// (setf PLACE (op ... PLACE ...)) with a resolvable place.
  Value try_rewrite_setf(Value f) {
    Value place = cadr(f);
    auto rp = analysis::resolve_accessor(ctx_, place);
    if (!rp || rp->path.is_empty()) return Value::nil();
    Value val = caddr(f);
    Symbol* op = update_op_of(val, place);
    if (op == nullptr || !decls_.is_reorderable_op(op))
      return Value::nil();

    LocationExpr loc = location_expr(ctx_, rp->root, rp->path);
    std::vector<Value> others = args_without(val, place);
    ++rewritten_;
    notes_.push_back("reordered " + sexpr::write_str(f) +
                     " into an atomic location update (§3.2.3)");
    if (op->name == "+") {
      Value delta = others.size() == 1 ? others[0] : form_plus(others);
      return form(ctx_, {sym(ctx_, "%atomic-add"), loc.cell,
                         quoted(ctx_, Value::object(loc.field)), delta});
    }
    return form(ctx_, {sym(ctx_, "%locked-update"), loc.cell,
                       quoted(ctx_, Value::object(loc.field)),
                       update_lambda(op, others)});
  }

  /// (incf PLACE [k]) / (decf PLACE [k]): additive updates are always
  /// reorderable (+ is declared by default), so rewrite to the atomic
  /// primitives. decf negates its delta.
  Value try_rewrite_incf(Value f, bool negate) {
    if (!decls_.is_reorderable_op(ctx_.symbols.intern("+")))
      return Value::nil();
    Value place = cadr(f);
    Value delta = cddr(f).is_nil() ? Value::fixnum(1) : caddr(f);
    if (negate) {
      if (delta.is_fixnum()) {
        delta = Value::fixnum(-delta.as_fixnum());
      } else {
        delta = form(ctx_, {sym(ctx_, "-"), delta});
      }
    }
    if (place.is(Kind::Symbol)) {
      Symbol* var = static_cast<Symbol*>(place.obj());
      if (info_.param_index(var) >= 0) return Value::nil();
      ++rewritten_;
      notes_.push_back("reordered " + sexpr::write_str(f) +
                       " into an atomic update (§3.2.3)");
      return form(ctx_, {sym(ctx_, "%atomic-incf-var"),
                         quoted(ctx_, Value::object(var)), delta});
    }
    auto rp = analysis::resolve_accessor(ctx_, place);
    if (!rp || rp->path.is_empty()) return Value::nil();
    LocationExpr loc = location_expr(ctx_, rp->root, rp->path);
    ++rewritten_;
    notes_.push_back("reordered " + sexpr::write_str(f) +
                     " into an atomic location update (§3.2.3)");
    return form(ctx_, {sym(ctx_, "%atomic-add"), loc.cell,
                       quoted(ctx_, Value::object(loc.field)), delta});
  }

  /// (push ITEM VAR) with VAR declared unordered: the insert's order
  /// doesn't matter (§3.2.3's second class), so a locked prepend is
  /// enough.
  Value try_rewrite_push(Value f) {
    Value place = caddr(f);
    if (!place.is(Kind::Symbol)) return Value::nil();
    Symbol* var = static_cast<Symbol*>(place.obj());
    if (info_.param_index(var) >= 0) return Value::nil();
    if (!decls_.is_unordered_insert(var)) return Value::nil();
    ++rewritten_;
    notes_.push_back("reordered " + sexpr::write_str(f) +
                     ": push onto declared-unordered " + var->name +
                     " (§3.2.3)");
    Value old_var = sym(ctx_, "%old");
    return form(ctx_,
                {sym(ctx_, "%locked-update-var"),
                 quoted(ctx_, Value::object(var)),
                 form(ctx_, {Value::object(ctx_.s_lambda),
                             ctx_.make_list(old_var),
                             form(ctx_, {sym(ctx_, "cons"), cadr(f),
                                         old_var})})});
  }

  /// If `val` is (op args…) with exactly one arg structurally equal to
  /// `self`, return op.
  Symbol* update_op_of(Value val, Value self) {
    if (!val.is(Kind::Cons) || !sexpr::car(val).is(Kind::Symbol))
      return nullptr;
    int hits = 0;
    for (Value a = cdr(val); !a.is_nil(); a = cdr(a))
      if (sexpr::equal_values(sexpr::car(a), self)) ++hits;
    return hits == 1 ? as_symbol(sexpr::car(val)) : nullptr;
  }

  std::vector<Value> args_without(Value val, Value self) {
    std::vector<Value> out;
    bool skipped = false;
    for (Value a = cdr(val); !a.is_nil(); a = cdr(a)) {
      if (!skipped && sexpr::equal_values(sexpr::car(a), self)) {
        skipped = true;
        continue;
      }
      out.push_back(sexpr::car(a));
    }
    return out;
  }

  Value form_plus(const std::vector<Value>& others) {
    std::vector<Value> plus{sym(ctx_, "+")};
    plus.insert(plus.end(), others.begin(), others.end());
    return form(ctx_, plus);
  }

  /// (lambda (%old) (op %old others…))
  Value update_lambda(Symbol* op, const std::vector<Value>& others) {
    Value old_var = sym(ctx_, "%old");
    std::vector<Value> call{Value::object(op), old_var};
    call.insert(call.end(), others.begin(), others.end());
    return form(ctx_, {Value::object(ctx_.s_lambda),
                       ctx_.make_list(old_var), form(ctx_, call)});
  }

  sexpr::Ctx& ctx_;
  const decl::Declarations& decls_;
  const analysis::FunctionInfo& info_;
  int rewritten_ = 0;
  std::vector<std::string> notes_;
};

}  // namespace

ReorderResult apply_reorder(sexpr::Ctx& ctx,
                            const decl::Declarations& decls,
                            const analysis::FunctionInfo& info) {
  Reorderer r(ctx, decls, info);
  ReorderResult result;
  result.defun = r.rewrite(info.defun_form);
  result.rewritten = r.rewritten();
  result.notes = r.take_notes();
  return result;
}

}  // namespace curare::transform
