// The reordering transformation (paper §3.2.3).
//
// "Some conflicts between statements impose constraints that are
// stronger than necessary for correct execution. … The first type is
// atomic, commutative, and associative operations, such as addition."
//
// Declared-reorderable updates are rewritten into synchronized
// primitives, after which the ordering constraint disappears (the
// conflict detector drops them with drop_reorderable):
//
//   (setq v (+ v e…))            → (%atomic-incf-var 'v (+ e…))
//   (setq v (op v e…))           → (%locked-update-var 'v (λ (%old) (op %old e…)))
//   (setf (acc l) (+ (acc l) e…))→ (%atomic-add cell 'field (+ e…))
//   (setf (acc l) (op … ))       → (%locked-update cell 'field (λ …))
//
// Unordered-collection inserts (puthash et al.) and declared any-result
// searches need no rewriting: the collections are internally
// synchronized and the detector already knows these impose no order.
#pragma once

#include <string>
#include <vector>

#include "analysis/extract.hpp"
#include "decl/declarations.hpp"
#include "sexpr/ctx.hpp"

namespace curare::transform {

struct ReorderResult {
  sexpr::Value defun;   ///< rewritten defun (same name)
  int rewritten = 0;    ///< update statements converted
  std::vector<std::string> notes;
};

ReorderResult apply_reorder(sexpr::Ctx& ctx,
                            const decl::Declarations& decls,
                            const analysis::FunctionInfo& info);

}  // namespace curare::transform
