#include "vm/vm.hpp"

#include <mutex>
#include <string>
#include <vector>

#include "obs/profiler.hpp"
#include "runtime/eval_tick.hpp"
#include "sexpr/reader.hpp"
#include "vm/compiler.hpp"

namespace curare::vm {

using lisp::Closure;
using lisp::Env;
using lisp::EnvPtr;
using sexpr::Kind;
using sexpr::LispError;
using sexpr::Symbol;

/// One activation: which code runs, whose frame it is, where its slots
/// begin on the operand stack. `env` points at storage that outlives
/// the frame — the closure's captured-env member (the closure Value is
/// traced, keeping it alive) or the caller's environment reference for
/// the entry expression.
struct Frame {
  const CodeObject* code;
  Value closure;  ///< nil for the entry-expression frame
  const EnvPtr* env;
  std::size_t base;
  std::size_t ip;
  bool pushed_profile;
};

struct ExecState {
  std::vector<Value> stack;
  std::vector<Frame> frames;
};

namespace {

/// Precise roots for one VM execution: every operand-stack value,
/// every frame's closure and environment chain, and the entry code's
/// constant pool (closure-owned code is traced through the Closure;
/// the entry expression's code belongs to nobody else). Registered for
/// the whole execution so a blocking release deeper in the call (a
/// future touch, an explicit collect in a test builtin) can run a full
/// collection without sweeping live slots.
class ExecRoots final : public gc::StackRoots {
 public:
  ExecRoots(gc::GcHeap& h, const ExecState& st, const CodeObject* entry)
      : gc::StackRoots(h), st_(st), entry_(entry) {}

  void trace(sexpr::GcVisitor& g) const override {
    for (Value v : st_.stack) g.visit(v);
    for (const Frame& f : st_.frames) {
      g.visit(f.closure);
      for (const Env* e = f.env->get(); e != nullptr;
           e = e->parent().get()) {
        if (!g.enter_region(e)) break;
        e->for_each_binding([&](Value v) { g.visit(v); });
      }
    }
    if (entry_ != nullptr) entry_->gc_trace(g);
  }

 private:
  const ExecState& st_;
  const CodeObject* entry_;
};

}  // namespace

Vm::Vm(lisp::Interp& interp)
    : interp_(interp),
      ctx_(interp.ctx()),
      gc_(interp.ctx().heap.gc()),
      t_(Value::object(interp.ctx().s_t)) {}

Vm::~Vm() { uninstall_apply_hook(); }

void Vm::install_apply_hook() {
  interp_.set_compiled_apply_hook(
      [this](lisp::Interp&, Value fn, std::span<const Value> args,
             Value* out) { return try_apply(fn, args, out); });
}

void Vm::uninstall_apply_hook() {
  interp_.set_compiled_apply_hook(nullptr);
}

const CodeObject* Vm::ensure_compiled(const Closure* c) {
  int state = c->code_state.load(std::memory_order_acquire);
  if (state == Closure::kCodeReady)
    return static_cast<const CodeObject*>(c->code.get());
  if (state == Closure::kCodeRefused) return nullptr;
  std::lock_guard<std::mutex> lock(c->code_mu);
  state = c->code_state.load(std::memory_order_relaxed);
  if (state == Closure::kCodeReady)
    return static_cast<const CodeObject*>(c->code.get());
  if (state == Closure::kCodeRefused) return nullptr;
  CompileResult r = compile_closure(interp_, c);
  if (r.code == nullptr) {
    c->code_state.store(Closure::kCodeRefused, std::memory_order_release);
    return nullptr;
  }
  c->code = r.code;
  c->code_state.store(Closure::kCodeReady, std::memory_order_release);
  return static_cast<const CodeObject*>(c->code.get());
}

bool Vm::try_apply(Value fn, std::span<const Value> args, Value* out) {
  if (!fn.is(Kind::Closure)) return false;
  auto* c = static_cast<Closure*>(fn.obj());
  const CodeObject* code = ensure_compiled(c);
  if (code == nullptr) {
    fallback_entries_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  compiled_entries_.fetch_add(1, std::memory_order_relaxed);
  *out = execute(code, fn, c->env, args);
  return true;
}

Value Vm::eval(Value form, const EnvPtr& env) {
  // One unsafe region across compile + execute: the compiler's
  // constant pool aliases subtrees of `form`, which the caller roots
  // (same contract as Interp::eval), and nothing may collect between
  // interning those aliases and ExecRoots taking over.
  gc::MutatorScope ms(gc_);
  CompileResult r = compile_expr(interp_, form, env);
  if (r.code == nullptr) {
    fallback_entries_.fetch_add(1, std::memory_order_relaxed);
    return interp_.eval(form, env);
  }
  compiled_entries_.fetch_add(1, std::memory_order_relaxed);
  return execute(r.code.get(), Value::nil(), env, {});
}

Value Vm::eval_program(std::string_view src) {
  // Mirrors Interp::eval_program: root the freshly read forms, then
  // evaluate with a quiescent collection point between top-level forms.
  gc::RootScope roots(gc_);
  std::vector<Value> forms;
  {
    gc::MutatorScope ms(gc_);
    forms = sexpr::read_all(ctx_, src);
    for (Value f : forms) roots.add(f);
  }
  Value result = Value::nil();
  for (Value form : forms) {
    gc_.maybe_collect();
    result = eval_top(form);
  }
  return result;
}

void Vm::enter_frame(ExecState& st, const CodeObject* code, Value fn,
                     std::size_t arg0, std::size_t nargs, bool tail) {
  auto* c = static_cast<Closure*>(fn.obj());
  const std::size_t want = code->nparams;
  if (nargs < want || (!code->has_rest && nargs > want)) {
    throw LispError("wrong number of arguments to " +
                    (c->name.empty() ? std::string("#<lambda>") : c->name) +
                    ": got " + std::to_string(nargs) + ", want " +
                    std::to_string(want) + (code->has_rest ? "+" : ""));
  }
  auto& S = st.stack;
  if (code->has_rest) {
    std::vector<Value> extra(
        S.begin() + static_cast<std::ptrdiff_t>(arg0 + want),
        S.begin() + static_cast<std::ptrdiff_t>(arg0 + nargs));
    Value rest = ctx_.heap.list(extra);
    S.resize(arg0 + want);
    S.push_back(rest);
  }
  S.resize(arg0 + code->nslots);  // remaining slots start out nil
  if (tail) {
    // Reuse the current activation: O(1) stack for tail recursion.
    // pushed_profile is untouched — the caller renamed the profile
    // frame via note_tail_call.
    Frame& f = st.frames.back();
    f.code = code;
    f.closure = fn;
    f.env = &c->env;
    f.base = arg0;
    f.ip = 0;
    return;
  }
  if (st.frames.size() >= interp_.max_depth()) {
    throw LispError("evaluation too deep (recursion limit " +
                    std::to_string(interp_.max_depth()) + " exceeded)");
  }
  bool pushed = false;
  if (obs::Profiler::armed()) {
    obs::Profiler::instance().push_frame(obs::Profiler::FrameKind::kFn,
                                         &c->name);
    pushed = true;
  }
  st.frames.push_back(Frame{code, fn, &c->env, arg0, 0, pushed});
}

Value Vm::execute(const CodeObject* entry, Value entry_closure,
                  const EnvPtr& env, std::span<const Value> args) {
  gc::MutatorScope ms(gc_);
  ExecState st;
  auto& S = st.stack;
  S.reserve(entry->nslots + 32);
  for (Value a : args) S.push_back(a);
  ExecRoots roots(gc_, st, entry);
  if (entry_closure.is(Kind::Closure)) {
    enter_frame(st, entry, entry_closure, 0, args.size(), /*tail=*/false);
  } else {
    S.resize(entry->nslots);
    st.frames.push_back(
        Frame{entry, Value::nil(), &env, 0, 0, /*pushed_profile=*/false});
  }

  // Pop this activation; true when the whole execution is done.
  auto frame_return = [&](Value result) -> bool {
    Frame& f = st.frames.back();
    if (f.pushed_profile) obs::Profiler::instance().pop_frame();
    S.resize(f.base);
    st.frames.pop_back();
    if (st.frames.empty()) return true;
    S.push_back(result);
    return false;
  };

  // Non-fixnum operands of a burned-in 2-arg op: defer to the builtin
  // itself (via apply, which also owns arity errors and profiling for
  // kCallBuiltin), so the fast paths can never fork semantics.
  auto call_builtin = [&](std::int32_t cidx, std::size_t n) {
    Value b = st.frames.back().code->consts[static_cast<std::size_t>(cidx)];
    const std::span<const Value> as(S.data() + (S.size() - n), n);
    Value r = interp_.apply(b, as);
    S.resize(S.size() - n);
    S.push_back(r);
  };

  try {
    for (;;) {
      Frame& f = st.frames.back();
      const Insn in = f.code->code[f.ip++];
      // Shared preemption tick: one step per instruction, same 1-in-64
      // cancellation poll and profiler period as the tree-walker.
      {
        const unsigned tick = runtime::eval_tick_step();
        if (runtime::eval_tick_profile_due(tick))
          obs::Profiler::instance().sample(&f.code->name);
      }
      switch (in.op) {
        case Op::kConst:
          S.push_back(f.code->consts[static_cast<std::size_t>(in.a)]);
          break;
        case Op::kNil:
          S.push_back(Value::nil());
          break;
        case Op::kInt:
          S.push_back(Value::fixnum(in.a));
          break;
        case Op::kLoadSlot:
          S.push_back(S[f.base + static_cast<std::size_t>(in.a)]);
          break;
        case Op::kStoreSlot:
          S[f.base + static_cast<std::size_t>(in.a)] = S.back();
          break;
        case Op::kLoadEnv: {
          auto* s = static_cast<Symbol*>(
              f.code->consts[static_cast<std::size_t>(in.a)].obj());
          if (auto v = (*f.env)->lookup(s)) {
            S.push_back(*v);
          } else {
            throw LispError("unbound variable: " + s->name);
          }
          break;
        }
        case Op::kStoreEnv: {
          auto* s = static_cast<Symbol*>(
              f.code->consts[static_cast<std::size_t>(in.a)].obj());
          (*f.env)->set(s, S.back());
          break;
        }
        case Op::kPop:
          S.pop_back();
          break;
        case Op::kDup:
          S.push_back(S.back());
          break;

        case Op::kJump:
          f.ip = static_cast<std::size_t>(in.a);
          break;
        case Op::kJumpIfNil: {
          const Value v = S.back();
          S.pop_back();
          if (v.is_nil()) f.ip = static_cast<std::size_t>(in.a);
          break;
        }
        case Op::kJumpIfTruthy: {
          const Value v = S.back();
          S.pop_back();
          if (v.truthy()) f.ip = static_cast<std::size_t>(in.a);
          break;
        }
        case Op::kJumpIfNilElsePop:
          if (S.back().is_nil())
            f.ip = static_cast<std::size_t>(in.a);
          else
            S.pop_back();
          break;
        case Op::kJumpIfTruthyElsePop:
          if (S.back().truthy())
            f.ip = static_cast<std::size_t>(in.a);
          else
            S.pop_back();
          break;

        case Op::kCall:
        case Op::kTailCall: {
          const auto n = static_cast<std::size_t>(in.a);
          const std::size_t fnpos = S.size() - n - 1;
          const Value fn = S[fnpos];
          const CodeObject* callee =
              fn.is(Kind::Closure)
                  ? ensure_compiled(static_cast<Closure*>(fn.obj()))
                  : nullptr;
          if (callee == nullptr) {
            // Builtins, refused closures, non-functions: the tree
            // engine owns these (apply declines the hook for refused
            // closures, so there is no re-entry loop).
            const std::span<const Value> as(S.data() + fnpos + 1, n);
            const Value r = interp_.apply(fn, as);
            if (in.op == Op::kCall) {
              S.resize(fnpos);
              S.push_back(r);
              break;
            }
            if (frame_return(r)) return r;
            break;
          }
          interp_.count_apply();  // same work measure as the tree engine
          if (in.op == Op::kCall) {
            for (std::size_t i = 0; i < n; ++i) S[fnpos + i] = S[fnpos + i + 1];
            S.pop_back();
            enter_frame(st, callee, fn, fnpos, n, /*tail=*/false);
            break;
          }
          // Tail call: rename the profile frame (the interpreter's
          // note_tail_call path), slide the args down to the current
          // frame's base, and reuse the activation.
          Frame& cur = st.frames.back();
          if (obs::Profiler::armed()) {
            auto* c = static_cast<Closure*>(fn.obj());
            if (cur.pushed_profile) {
              obs::Profiler::instance().note_tail_call(&c->name);
            } else {
              obs::Profiler::instance().push_frame(
                  obs::Profiler::FrameKind::kFn, &c->name);
              cur.pushed_profile = true;
            }
          }
          for (std::size_t i = 0; i < n; ++i)
            S[cur.base + i] = S[fnpos + 1 + i];
          S.resize(cur.base + n);
          enter_frame(st, callee, fn, cur.base, n, /*tail=*/true);
          break;
        }

        case Op::kCallBuiltin:
          call_builtin(in.a, static_cast<std::size_t>(in.b));
          break;

        case Op::kReturn: {
          const Value r = S.back();
          if (frame_return(r)) return r;
          break;
        }

        // ---- burned-in builtins (fixnum fast paths; everything else
        //      defers to the builtin itself) ---------------------------
        case Op::kAdd: {
          const Value b = S[S.size() - 1], a = S[S.size() - 2];
          if (a.is_fixnum() && b.is_fixnum()) {
            S.pop_back();
            S.back() = Value::fixnum(a.as_fixnum() + b.as_fixnum());
          } else {
            call_builtin(in.a, 2);
          }
          break;
        }
        case Op::kSub: {
          const Value b = S[S.size() - 1], a = S[S.size() - 2];
          if (a.is_fixnum() && b.is_fixnum()) {
            S.pop_back();
            S.back() = Value::fixnum(a.as_fixnum() - b.as_fixnum());
          } else {
            call_builtin(in.a, 2);
          }
          break;
        }
        case Op::kMul: {
          const Value b = S[S.size() - 1], a = S[S.size() - 2];
          if (a.is_fixnum() && b.is_fixnum()) {
            S.pop_back();
            S.back() = Value::fixnum(a.as_fixnum() * b.as_fixnum());
          } else {
            call_builtin(in.a, 2);
          }
          break;
        }
        case Op::kLess: {
          const Value b = S[S.size() - 1], a = S[S.size() - 2];
          if (a.is_fixnum() && b.is_fixnum()) {
            S.pop_back();
            S.back() = a.as_fixnum() < b.as_fixnum() ? t_ : Value::nil();
          } else {
            call_builtin(in.a, 2);
          }
          break;
        }
        case Op::kLessEq: {
          const Value b = S[S.size() - 1], a = S[S.size() - 2];
          if (a.is_fixnum() && b.is_fixnum()) {
            S.pop_back();
            S.back() = a.as_fixnum() <= b.as_fixnum() ? t_ : Value::nil();
          } else {
            call_builtin(in.a, 2);
          }
          break;
        }
        case Op::kGreater: {
          const Value b = S[S.size() - 1], a = S[S.size() - 2];
          if (a.is_fixnum() && b.is_fixnum()) {
            S.pop_back();
            S.back() = a.as_fixnum() > b.as_fixnum() ? t_ : Value::nil();
          } else {
            call_builtin(in.a, 2);
          }
          break;
        }
        case Op::kGreaterEq: {
          const Value b = S[S.size() - 1], a = S[S.size() - 2];
          if (a.is_fixnum() && b.is_fixnum()) {
            S.pop_back();
            S.back() = a.as_fixnum() >= b.as_fixnum() ? t_ : Value::nil();
          } else {
            call_builtin(in.a, 2);
          }
          break;
        }
        case Op::kNumEq: {
          const Value b = S[S.size() - 1], a = S[S.size() - 2];
          if (a.is_fixnum() && b.is_fixnum()) {
            S.pop_back();
            S.back() = a.as_fixnum() == b.as_fixnum() ? t_ : Value::nil();
          } else {
            call_builtin(in.a, 2);
          }
          break;
        }

        case Op::kAdd1:
          S.back() = Value::fixnum(lisp::as_int(S.back()) + 1);
          break;
        case Op::kSub1:
          S.back() = Value::fixnum(lisp::as_int(S.back()) - 1);
          break;
        case Op::kCar:
          S.back() = sexpr::car(S.back());
          break;
        case Op::kCdr:
          S.back() = sexpr::cdr(S.back());
          break;
        case Op::kCons: {
          const Value d = S.back();
          S.pop_back();
          S.back() = ctx_.heap.cons(S.back(), d);
          break;
        }
        case Op::kEq: {
          const Value b = S.back();
          S.pop_back();
          S.back() = S.back() == b ? t_ : Value::nil();
          break;
        }
        case Op::kNull:
        case Op::kNot:
          S.back() = S.back().is_nil() ? t_ : Value::nil();
          break;
        case Op::kConsp:
          S.back() = S.back().is(Kind::Cons) ? t_ : Value::nil();
          break;
        case Op::kAtom:
          S.back() = S.back().is(Kind::Cons) ? Value::nil() : t_;
          break;

        case Op::kSetCar: {
          const Value obj = S.back();
          S.pop_back();
          sexpr::as_cons(obj)->set_car(S.back());
          break;
        }
        case Op::kSetCdr: {
          const Value obj = S.back();
          S.pop_back();
          sexpr::as_cons(obj)->set_cdr(S.back());
          break;
        }

        case Op::kAsInt:
          S.back() = Value::fixnum(lisp::as_int(S.back()));
          break;
        case Op::kIntLess: {
          const Value b = S.back();
          S.pop_back();
          S.back() =
              S.back().as_fixnum() < b.as_fixnum() ? t_ : Value::nil();
          break;
        }
        case Op::kIncSlot: {
          Value& slot = S[f.base + static_cast<std::size_t>(in.a)];
          slot = Value::fixnum(slot.as_fixnum() + 1);
          break;
        }
      }
    }
  } catch (...) {
    // Keep the profiler's shadow stack balanced across Lisp errors and
    // cancellation: pop every frame this execution pushed.
    for (auto it = st.frames.rbegin(); it != st.frames.rend(); ++it)
      if (it->pushed_profile) obs::Profiler::instance().pop_frame();
    throw;
  }
}

}  // namespace curare::vm
