#include "vm/bytecode.hpp"

#include <sstream>

#include "sexpr/printer.hpp"

namespace curare::vm {

const char* op_name(Op op) {
  switch (op) {
    case Op::kConst: return "const";
    case Op::kNil: return "nil";
    case Op::kInt: return "int";
    case Op::kLoadSlot: return "load-slot";
    case Op::kStoreSlot: return "store-slot";
    case Op::kLoadEnv: return "load-env";
    case Op::kStoreEnv: return "store-env";
    case Op::kPop: return "pop";
    case Op::kDup: return "dup";
    case Op::kJump: return "jump";
    case Op::kJumpIfNil: return "jump-if-nil";
    case Op::kJumpIfTruthy: return "jump-if-truthy";
    case Op::kJumpIfNilElsePop: return "jump-if-nil-else-pop";
    case Op::kJumpIfTruthyElsePop: return "jump-if-truthy-else-pop";
    case Op::kCall: return "call";
    case Op::kTailCall: return "tail-call";
    case Op::kCallBuiltin: return "call-builtin";
    case Op::kReturn: return "return";
    case Op::kAdd: return "add";
    case Op::kSub: return "sub";
    case Op::kMul: return "mul";
    case Op::kLess: return "lt";
    case Op::kLessEq: return "le";
    case Op::kGreater: return "gt";
    case Op::kGreaterEq: return "ge";
    case Op::kNumEq: return "num-eq";
    case Op::kAdd1: return "add1";
    case Op::kSub1: return "sub1";
    case Op::kCar: return "car";
    case Op::kCdr: return "cdr";
    case Op::kCons: return "cons";
    case Op::kEq: return "eq";
    case Op::kNull: return "null";
    case Op::kNot: return "not";
    case Op::kConsp: return "consp";
    case Op::kAtom: return "atom";
    case Op::kSetCar: return "set-car";
    case Op::kSetCdr: return "set-cdr";
    case Op::kAsInt: return "as-int";
    case Op::kIntLess: return "int-lt";
    case Op::kIncSlot: return "inc-slot";
  }
  return "?";
}

std::string CodeObject::disassemble() const {
  std::ostringstream os;
  os << name << " (params " << nparams << (has_rest ? "+rest" : "")
     << ", slots " << nslots << ", consts " << consts.size() << ")\n";
  for (std::size_t i = 0; i < code.size(); ++i) {
    const Insn& in = code[i];
    os << "  " << i << ": " << op_name(in.op);
    switch (in.op) {
      case Op::kConst:
      case Op::kLoadEnv:
      case Op::kStoreEnv:
        os << " " << sexpr::write_str(consts[static_cast<std::size_t>(in.a)]);
        break;
      case Op::kCallBuiltin:
        os << " " << sexpr::write_str(consts[static_cast<std::size_t>(in.a)])
           << " nargs=" << in.b;
        break;
      case Op::kNil:
      case Op::kPop:
      case Op::kDup:
      case Op::kReturn:
        break;
      default:
        os << " " << in.a;
        break;
    }
    os << "\n";
  }
  return os.str();
}

}  // namespace curare::vm
