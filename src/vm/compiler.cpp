#include "vm/compiler.hpp"

#include <cstdint>
#include <limits>
#include <optional>
#include <utility>
#include <vector>

#include "sexpr/ctx.hpp"

namespace curare::vm {

using lisp::Closure;
using lisp::Env;
using lisp::EnvPtr;
using sexpr::as_symbol;
using sexpr::cadr;
using sexpr::caddr;
using sexpr::cadddr;
using sexpr::car;
using sexpr::cddr;
using sexpr::cdr;
using sexpr::Kind;
using sexpr::LispError;
using sexpr::Symbol;

namespace {

/// Raised (internally) on the first form the compiler does not cover;
/// converted to a refusal, never surfaced to Lisp code. Malformed
/// forms also refuse rather than erroring at compile time: the
/// tree-walker must stay the one that reports (or never reaches) them.
struct Unsupported {
  std::string why;
};

/// True when `name` spells a car/cdr composition accessor: c[ad]+r.
/// (Mirrors the interpreter's setf-place recognizer.)
bool is_cxr_name(const std::string& name) {
  if (name.size() < 3 || name.front() != 'c' || name.back() != 'r')
    return false;
  for (std::size_t i = 1; i + 1 < name.size(); ++i)
    if (name[i] != 'a' && name[i] != 'd') return false;
  return true;
}

/// Fast opcode for a burned-in builtin call of this exact arity; the
/// fast paths must mirror the builtin bodies bit-for-bit (fixnum
/// arithmetic, t/nil results), and every non-fixnum case defers to the
/// builtin itself, so coverage here is pure speed, never semantics.
std::optional<Op> fast_op(const std::string& name, std::size_t nargs) {
  if (nargs == 2) {
    if (name == "+") return Op::kAdd;
    if (name == "-") return Op::kSub;
    if (name == "*") return Op::kMul;
    if (name == "<") return Op::kLess;
    if (name == "<=") return Op::kLessEq;
    if (name == ">") return Op::kGreater;
    if (name == ">=") return Op::kGreaterEq;
    if (name == "=") return Op::kNumEq;
    if (name == "cons") return Op::kCons;
    if (name == "eq") return Op::kEq;
  } else if (nargs == 1) {
    if (name == "1+") return Op::kAdd1;
    if (name == "1-") return Op::kSub1;
    if (name == "car") return Op::kCar;
    if (name == "cdr") return Op::kCdr;
    if (name == "null") return Op::kNull;
    if (name == "not") return Op::kNot;
    if (name == "consp") return Op::kConsp;
    if (name == "atom") return Op::kAtom;
  }
  return std::nullopt;
}

class Compiler {
 public:
  explicit Compiler(lisp::Interp& interp)
      : interp_(interp),
        ctx_(interp.ctx()),
        s_future_(ctx_.symbols.intern("future")),
        s_defmacro_(ctx_.symbols.intern("defmacro")),
        s_defstruct_(ctx_.symbols.intern("defstruct")),
        s_incf_(ctx_.symbols.intern("incf")),
        s_decf_(ctx_.symbols.intern("decf")),
        s_push_(ctx_.symbols.intern("push")),
        s_pop_(ctx_.symbols.intern("pop")) {}

  CompileResult run_closure(const Closure* c) {
    auto code = std::make_shared<CodeObject>();
    code_ = code.get();
    code_->name = c->name.empty() ? "<lambda>" : c->name;
    code_->nparams = static_cast<std::uint32_t>(c->params.size());
    code_->has_rest = c->rest != nullptr;
    for (Symbol* p : c->params) bind_slot(p);
    if (c->rest != nullptr) bind_slot(c->rest);
    env_ = c->env.get();
    return finish(code, [&] { compile_body(c->body, /*tail=*/true); });
  }

  CompileResult run_expr(Value form, const EnvPtr& env) {
    auto code = std::make_shared<CodeObject>();
    code_ = code.get();
    code_->name = "<toplevel>";
    env_ = env.get();
    return finish(code, [&] { compile(form, /*tail=*/true); });
  }

 private:
  template <typename Fn>
  CompileResult finish(std::shared_ptr<CodeObject> code, Fn&& emit_body) {
    try {
      emit_body();
    } catch (const Unsupported& u) {
      return {nullptr, u.why};
    } catch (const LispError& e) {
      // Structural surprises (dotted arg lists, non-symbol binders) are
      // the tree-walker's to report, and only if it ever reaches them.
      return {nullptr, std::string("malformed form: ") + e.what()};
    }
    emit(Op::kReturn);
    code->nslots = static_cast<std::uint32_t>(max_slots_);
    return {std::move(code), {}};
  }

  // ---- emission helpers ----------------------------------------------

  std::int32_t emit(Op op, std::int32_t a = 0, std::int32_t b = 0) {
    code_->code.push_back(Insn{op, a, b});
    return static_cast<std::int32_t>(code_->code.size() - 1);
  }
  std::int32_t here() const {
    return static_cast<std::int32_t>(code_->code.size());
  }
  void patch(std::int32_t at) { code_->code[at].a = here(); }
  std::int32_t konst(Value v) { return code_->add_const(v); }

  // ---- lexical scope --------------------------------------------------

  /// Bind a frame slot; `name == nullptr` allocates a hidden slot
  /// (loop counters, limits) no Lisp variable can shadow or read.
  int bind_slot(Symbol* name) {
    const int slot = next_slot_++;
    if (next_slot_ > max_slots_) max_slots_ = next_slot_;
    scope_.push_back({name, slot});
    return slot;
  }
  void pop_scope(std::size_t mark) {
    while (scope_.size() > mark) {
      scope_.pop_back();
      --next_slot_;
    }
  }
  int find_slot(Symbol* s) const {
    for (auto it = scope_.rbegin(); it != scope_.rend(); ++it)
      if (it->first == s) return it->second;
    return -1;
  }

  [[noreturn]] void refuse(std::string why) {
    throw Unsupported{std::move(why)};
  }
  Symbol* sym_or_refuse(Value v, const char* what) {
    if (!v.is(Kind::Symbol)) refuse(std::string("non-symbol ") + what);
    return static_cast<Symbol*>(v.obj());
  }

  // ---- expression compilation -----------------------------------------

  /// Push the value of variable `s`, mirroring symbol evaluation: `t`
  /// is self-quoting, lexical slots resolve at compile time, and
  /// everything else is a late-bound environment lookup.
  void compile_var(Symbol* s) {
    if (s == ctx_.s_t) {
      emit(Op::kConst, konst(Value::object(s)));
      return;
    }
    const int slot = find_slot(s);
    if (slot >= 0) {
      emit(Op::kLoadSlot, slot);
      return;
    }
    emit(Op::kLoadEnv, konst(Value::object(s)));
  }

  /// Store the top of stack into variable `s` (value stays on the
  /// stack — setq/setf return the assigned value).
  void emit_store_var(Symbol* s) {
    const int slot = find_slot(s);
    if (slot >= 0)
      emit(Op::kStoreSlot, slot);
    else
      emit(Op::kStoreEnv, konst(Value::object(s)));
  }

  /// Compile a body (list of forms): all but the last for effect, the
  /// last in `tail` position; an empty body evaluates to nil.
  void compile_body(Value body, bool tail) {
    if (body.is_nil()) {
      emit(Op::kNil);
      return;
    }
    while (!cdr(body).is_nil()) {
      compile(car(body), /*tail=*/false);
      emit(Op::kPop);
      body = cdr(body);
    }
    compile(car(body), tail);
  }

  void compile(Value form, bool tail) {
    if (!form.is_object()) {
      if (form.is_nil()) {
        emit(Op::kNil);
      } else {
        const std::int64_t n = form.as_fixnum();
        if (n >= std::numeric_limits<std::int32_t>::min() &&
            n <= std::numeric_limits<std::int32_t>::max())
          emit(Op::kInt, static_cast<std::int32_t>(n));
        else
          emit(Op::kConst, konst(form));
      }
      return;
    }
    switch (form.obj()->kind) {
      case Kind::Symbol:
        compile_var(static_cast<Symbol*>(form.obj()));
        return;
      case Kind::Cons:
        break;
      default:
        // Strings, floats, vectors, opaque objects self-evaluate (to
        // the identical object, as in the tree-walker).
        emit(Op::kConst, konst(form));
        return;
    }
    compile_cons(form, tail);
  }

  void compile_cons(Value form, bool tail) {
    Value head = car(form);
    if (head.is(Kind::Symbol)) {
      Symbol* op = static_cast<Symbol*>(head.obj());
      if (compile_special(op, form, tail)) return;
      std::vector<Value> argforms;
      for (Value a = cdr(form); !a.is_nil(); a = cdr(a))
        argforms.push_back(car(a));
      compile_call_sym(op, argforms, tail);
      return;
    }
    // Non-symbol head: ((lambda …) …) refuses inside compile(head);
    // other heads produce the tree-walker's "not a function" at call.
    compile(head, /*tail=*/false);
    std::int32_t n = 0;
    for (Value a = cdr(form); !a.is_nil(); a = cdr(a), ++n)
      compile(car(a), /*tail=*/false);
    emit(tail ? Op::kTailCall : Op::kCall, n);
  }

  /// Special forms, dispatched by symbol identity (before any scope or
  /// environment lookup, exactly as the interpreter does). Returns
  /// false for ordinary applications.
  bool compile_special(Symbol* op, Value form, bool tail) {
    if (op == ctx_.s_quote) {
      emit(Op::kConst, konst(cadr(form)));
      return true;
    }

    if (op == ctx_.s_if) {
      compile(cadr(form), false);
      const std::int32_t j_else = emit(Op::kJumpIfNil);
      compile(caddr(form), tail);
      const std::int32_t j_end = emit(Op::kJump);
      patch(j_else);
      compile(cadddr(form), tail);  // a missing else-branch reads as nil
      patch(j_end);
      return true;
    }

    if (op == ctx_.s_progn) {
      compile_body(cdr(form), tail);
      return true;
    }

    if (op == ctx_.s_when || op == ctx_.s_unless) {
      compile(cadr(form), false);
      const std::int32_t j_skip =
          emit(op == ctx_.s_when ? Op::kJumpIfNil : Op::kJumpIfTruthy);
      compile_body(cddr(form), tail);
      const std::int32_t j_end = emit(Op::kJump);
      patch(j_skip);
      emit(Op::kNil);
      patch(j_end);
      return true;
    }

    if (op == ctx_.s_cond) {
      std::vector<std::int32_t> ends;
      for (Value clauses = cdr(form); !clauses.is_nil();
           clauses = cdr(clauses)) {
        Value clause = car(clauses);
        Value body = cdr(clause);
        compile(car(clause), false);
        if (body.is_nil()) {
          // (cond (expr)) returns the test value itself when truthy.
          ends.push_back(emit(Op::kJumpIfTruthyElsePop));
        } else {
          const std::int32_t j_next = emit(Op::kJumpIfNil);
          compile_body(body, tail);
          ends.push_back(emit(Op::kJump));
          patch(j_next);
        }
      }
      emit(Op::kNil);  // no clause matched
      for (std::int32_t e : ends) patch(e);
      return true;
    }

    if (op == ctx_.s_and) {
      Value rest = cdr(form);
      if (rest.is_nil()) {
        emit(Op::kConst, konst(Value::object(ctx_.s_t)));
        return true;
      }
      std::vector<std::int32_t> ends;
      while (!cdr(rest).is_nil()) {
        compile(car(rest), false);
        ends.push_back(emit(Op::kJumpIfNilElsePop));
        rest = cdr(rest);
      }
      compile(car(rest), tail);
      for (std::int32_t e : ends) patch(e);
      return true;
    }

    if (op == ctx_.s_or) {
      Value rest = cdr(form);
      if (rest.is_nil()) {
        emit(Op::kNil);
        return true;
      }
      std::vector<std::int32_t> ends;
      while (!cdr(rest).is_nil()) {
        compile(car(rest), false);
        ends.push_back(emit(Op::kJumpIfTruthyElsePop));
        rest = cdr(rest);
      }
      compile(car(rest), tail);
      for (std::int32_t e : ends) patch(e);
      return true;
    }

    if (op == ctx_.s_let || op == ctx_.s_let_star) {
      compile_let(form, op == ctx_.s_let_star, tail);
      return true;
    }

    if (op == ctx_.s_setq) {
      compile_setq(form);
      return true;
    }

    if (op == ctx_.s_setf) {
      compile_setf(form);
      return true;
    }

    if (op == ctx_.s_while) {
      const std::int32_t loop = here();
      compile(cadr(form), false);
      const std::int32_t j_end = emit(Op::kJumpIfNil);
      for (Value b = cddr(form); !b.is_nil(); b = cdr(b)) {
        compile(car(b), false);
        emit(Op::kPop);
      }
      emit(Op::kJump, loop);
      patch(j_end);
      emit(Op::kNil);
      return true;
    }

    if (op == ctx_.s_dotimes) {
      compile_dotimes(form, tail);
      return true;
    }

    if (op == ctx_.s_dolist) {
      compile_dolist(form, tail);
      return true;
    }

    if (op == ctx_.s_declare) {
      emit(Op::kNil);  // advice, not code
      return true;
    }

    if (op == s_incf_ || op == s_decf_) {
      Symbol* var = sym_or_refuse(cadr(form), "incf/decf place");
      Value delta =
          cddr(form).is_nil() ? Value::fixnum(1) : caddr(form);
      // The interpreter rewrites to (+ place delta) and evaluates, so
      // the arithmetic head resolves by the ordinary call rule.
      compile_call_sym(
          ctx_.symbols.intern(op == s_incf_ ? "+" : "-"),
          {Value::object(var), delta}, /*tail=*/false);
      emit_store_var(var);
      return true;
    }

    if (op == s_push_) {
      // (push item place): item evaluates before the place is read.
      Symbol* var = sym_or_refuse(caddr(form), "push place");
      compile(cadr(form), false);
      compile_var(var);
      emit(Op::kCons);
      emit_store_var(var);
      return true;
    }

    if (op == s_pop_) {
      Symbol* var = sym_or_refuse(cadr(form), "pop place");
      compile_var(var);
      emit(Op::kDup);
      emit(Op::kCdr);
      emit_store_var(var);
      emit(Op::kPop);
      emit(Op::kCar);
      return true;
    }

    // Forms the bytecode engine does not cover: the whole body falls
    // back to the tree-walker (which also owns their error reporting).
    if (op == ctx_.s_lambda) refuse("lambda");
    if (op == ctx_.s_defun) refuse("defun");
    if (op == s_defstruct_) refuse("defstruct");
    if (op == s_defmacro_) refuse("defmacro");
    if (op == s_future_) refuse("future");

    return false;
  }

  void compile_let(Value form, bool sequential, bool tail) {
    const std::size_t mark = scope_.size();
    Value bindings = cadr(form);
    if (!sequential) {
      // Plain let: all inits evaluate in the outer scope, then bind.
      // Values sit on the stack in binding order; stores run in
      // reverse so the top of stack matches the last binding (with
      // duplicate names, backwards slot lookup makes reads see the
      // later binding, matching the interpreter's same-frame
      // overwrite).
      std::vector<Symbol*> names;
      for (Value b = bindings; !b.is_nil(); b = cdr(b)) {
        Value binding = car(b);
        if (binding.is(Kind::Symbol)) {
          names.push_back(static_cast<Symbol*>(binding.obj()));
          emit(Op::kNil);
        } else {
          names.push_back(sym_or_refuse(car(binding), "let binder"));
          compile(cadr(binding), false);
        }
      }
      std::vector<int> slots;
      slots.reserve(names.size());
      for (Symbol* n : names) slots.push_back(bind_slot(n));
      for (std::size_t i = names.size(); i-- > 0;) {
        emit(Op::kStoreSlot, slots[i]);
        emit(Op::kPop);
      }
    } else {
      for (Value b = bindings; !b.is_nil(); b = cdr(b)) {
        Value binding = car(b);
        Symbol* name;
        if (binding.is(Kind::Symbol)) {
          name = static_cast<Symbol*>(binding.obj());
          emit(Op::kNil);
        } else {
          name = sym_or_refuse(car(binding), "let* binder");
          compile(cadr(binding), false);
        }
        emit(Op::kStoreSlot, bind_slot(name));
        emit(Op::kPop);
      }
    }
    compile_body(cddr(form), tail);
    pop_scope(mark);
  }

  void compile_setq(Value form) {
    Value rest = cdr(form);
    if (rest.is_nil()) {
      emit(Op::kNil);
      return;
    }
    for (;;) {
      Symbol* name = sym_or_refuse(car(rest), "setq target");
      compile(cadr(rest), false);
      emit_store_var(name);
      rest = cddr(rest);
      if (rest.is_nil()) break;
      emit(Op::kPop);
    }
  }

  void compile_setf(Value form) {
    Value rest = cdr(form);
    if (rest.is_nil()) {
      emit(Op::kNil);
      return;
    }
    for (;;) {
      compile_setf_pair(car(rest), cadr(rest));
      rest = cddr(rest);
      if (rest.is_nil()) break;
      emit(Op::kPop);
    }
  }

  /// One (setf place val) pair: symbol places and cxr places compile;
  /// everything else (nth/gethash/aref/struct fields) refuses. The
  /// new value evaluates BEFORE the place subexpressions, mirroring
  /// eval_setf.
  void compile_setf_pair(Value place, Value valform) {
    if (place.is(Kind::Symbol)) {
      compile(valform, false);
      emit_store_var(static_cast<Symbol*>(place.obj()));
      return;
    }
    if (!place.is(Kind::Cons)) refuse("setf place");
    Value acc_form = car(place);
    if (!acc_form.is(Kind::Symbol)) refuse("setf place");
    const std::string& name = static_cast<Symbol*>(acc_form.obj())->name;
    if (!is_cxr_name(name)) refuse("setf place (" + name + " …)");
    compile(valform, false);
    compile(cadr(place), false);
    // Navigate the inner letters right-to-left, then store through
    // the first letter (same traversal as Interp::setf_place).
    for (std::size_t i = name.size() - 2; i >= 2; --i)
      emit(name[i] == 'a' ? Op::kCar : Op::kCdr);
    emit(name[1] == 'a' ? Op::kSetCar : Op::kSetCdr);
  }

  void compile_dotimes(Value form, bool tail) {
    // (dotimes (var n [result]) body…)
    Value spec = cadr(form);
    Symbol* var = sym_or_refuse(car(spec), "dotimes variable");
    const std::size_t mark = scope_.size();
    compile(cadr(spec), false);
    emit(Op::kAsInt);
    const int lim = bind_slot(nullptr);
    emit(Op::kStoreSlot, lim);
    emit(Op::kPop);
    const int var_slot = bind_slot(var);
    const int ctr = bind_slot(nullptr);
    emit(Op::kInt, 0);
    emit(Op::kStoreSlot, ctr);
    emit(Op::kPop);
    const std::int32_t loop = here();
    emit(Op::kLoadSlot, ctr);
    emit(Op::kLoadSlot, lim);
    emit(Op::kIntLess);
    const std::int32_t j_end = emit(Op::kJumpIfNil);
    // The variable resets from the hidden counter every iteration, so
    // body-side setq of it cannot derail the loop (tree semantics).
    emit(Op::kLoadSlot, ctr);
    emit(Op::kStoreSlot, var_slot);
    emit(Op::kPop);
    for (Value b = cddr(form); !b.is_nil(); b = cdr(b)) {
      compile(car(b), false);
      emit(Op::kPop);
    }
    emit(Op::kIncSlot, ctr);
    emit(Op::kJump, loop);
    patch(j_end);
    emit(Op::kLoadSlot, lim);  // var = n after the loop
    emit(Op::kStoreSlot, var_slot);
    emit(Op::kPop);
    Value result_form = caddr(spec);
    if (result_form.is_nil())
      emit(Op::kNil);
    else
      compile(result_form, tail);
    pop_scope(mark);
  }

  void compile_dolist(Value form, bool tail) {
    // (dolist (var list [result]) body…)
    Value spec = cadr(form);
    Symbol* var = sym_or_refuse(car(spec), "dolist variable");
    const std::size_t mark = scope_.size();
    compile(cadr(spec), false);
    const int tail_slot = bind_slot(nullptr);
    emit(Op::kStoreSlot, tail_slot);
    emit(Op::kPop);
    const int var_slot = bind_slot(var);
    emit(Op::kNil);  // var = nil before (and after) the loop
    emit(Op::kStoreSlot, var_slot);
    emit(Op::kPop);
    const std::int32_t loop = here();
    emit(Op::kLoadSlot, tail_slot);
    const std::int32_t j_end = emit(Op::kJumpIfNil);
    emit(Op::kLoadSlot, tail_slot);
    emit(Op::kCar);
    emit(Op::kStoreSlot, var_slot);
    emit(Op::kPop);
    for (Value b = cddr(form); !b.is_nil(); b = cdr(b)) {
      compile(car(b), false);
      emit(Op::kPop);
    }
    emit(Op::kLoadSlot, tail_slot);
    emit(Op::kCdr);
    emit(Op::kStoreSlot, tail_slot);
    emit(Op::kPop);
    emit(Op::kJump, loop);
    patch(j_end);
    emit(Op::kNil);
    emit(Op::kStoreSlot, var_slot);
    emit(Op::kPop);
    Value result_form = caddr(spec);
    if (result_form.is_nil())
      emit(Op::kNil);
    else
      compile(result_form, tail);
    pop_scope(mark);
  }

  /// Ordinary application with a symbol head. Lexical slots win;
  /// otherwise a head that resolves (now, in the captured environment)
  /// to a Builtin of the same name is burned in — fast opcode when the
  /// arity matches one, kCallBuiltin otherwise. Everything else stays
  /// a late-bound lookup so defun redefinition and mutual recursion
  /// keep tree-walker semantics.
  void compile_call_sym(Symbol* s, const std::vector<Value>& argforms,
                        bool tail) {
    const auto n = static_cast<std::int32_t>(argforms.size());
    if (s != ctx_.s_t && find_slot(s) < 0 && env_ != nullptr) {
      if (auto v = env_->lookup(s); v && v->is(Kind::Builtin)) {
        const auto* b = static_cast<const lisp::Builtin*>(v->obj());
        if (b->name == s->name) {
          for (Value a : argforms) compile(a, false);
          if (auto fast = fast_op(b->name, argforms.size()))
            emit(*fast, konst(*v));
          else
            emit(Op::kCallBuiltin, konst(*v), n);
          return;
        }
      }
    }
    compile_var(s);
    for (Value a : argforms) compile(a, false);
    emit(tail ? Op::kTailCall : Op::kCall, n);
  }

  lisp::Interp& interp_;
  sexpr::Ctx& ctx_;
  Symbol* const s_future_;
  Symbol* const s_defmacro_;
  Symbol* const s_defstruct_;
  Symbol* const s_incf_;
  Symbol* const s_decf_;
  Symbol* const s_push_;
  Symbol* const s_pop_;

  CodeObject* code_ = nullptr;
  const Env* env_ = nullptr;  ///< compile-time resolution environment
  std::vector<std::pair<Symbol*, int>> scope_;
  int next_slot_ = 0;
  int max_slots_ = 0;
};

}  // namespace

CompileResult compile_closure(lisp::Interp& interp,
                              const Closure* closure) {
  return Compiler(interp).run_closure(closure);
}

CompileResult compile_expr(lisp::Interp& interp, Value form,
                           const EnvPtr& env) {
  return Compiler(interp).run_expr(form, env);
}

}  // namespace curare::vm
