// Flat bytecode for the stack VM (DESIGN.md §13).
//
// A CodeObject is the compiled form of one closure body (or one
// top-level expression): a vector of fixed-width instructions, a
// deduplicated constant pool, and the frame shape (parameter count,
// &rest flag, total slot count). Lexical variables are resolved to
// frame-slot indices at compile time; free variables compile to
// kLoadEnv/kStoreEnv against the closure's captured environment chain,
// which preserves the tree-walker's late-binding semantics for globals
// (a defun redefined after compilation is seen by the next call).
//
// CodeObject derives from lisp::CodeBlob so a Closure can cache its
// compiled body without the lisp module depending on this one; the
// collector traces the constant pool through that interface.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "lisp/function.hpp"
#include "sexpr/value.hpp"

namespace curare::vm {

using sexpr::Value;

enum class Op : std::uint8_t {
  // ---- values and slots ----------------------------------------------
  kConst,      ///< push consts[a]
  kNil,        ///< push nil
  kInt,        ///< push fixnum(a) (immediates that fit 32 bits)
  kLoadSlot,   ///< push slots[a]
  kStoreSlot,  ///< slots[a] = top (value stays on the stack)
  kLoadEnv,    ///< push lookup of symbol consts[a]; throws when unbound
  kStoreEnv,   ///< env->set(symbol consts[a], top) (value stays)
  kPop,        ///< drop top
  kDup,        ///< push top again

  // ---- control -------------------------------------------------------
  kJump,                 ///< ip = a
  kJumpIfNil,            ///< pop; ip = a when nil
  kJumpIfTruthy,         ///< pop; ip = a when truthy
  kJumpIfNilElsePop,     ///< top nil: jump keeping it; else pop (and)
  kJumpIfTruthyElsePop,  ///< top truthy: jump keeping it; else pop (or)

  // ---- calls ---------------------------------------------------------
  kCall,         ///< a = nargs; stack [.. fn a1..an] → [.. result]
  kTailCall,     ///< a = nargs; reuse the current frame (O(1) stack)
  kCallBuiltin,  ///< a = const index of a Builtin, b = nargs
  kReturn,       ///< pop frame, leave top as the caller's result

  // ---- burned-in builtins (a = const index of the Builtin for the
  //      non-fixnum slow path, which is the builtin itself) ------------
  kAdd,        ///< 2 args
  kSub,        ///< 2 args
  kMul,        ///< 2 args
  kLess,       ///< 2 args, pushes t/nil
  kLessEq,     ///< 2 args
  kGreater,    ///< 2 args
  kGreaterEq,  ///< 2 args
  kNumEq,      ///< 2 args (numeric =)

  // ---- burned-in builtins with no slow path (semantics are total on
  //      every Value, mirroring the builtin bodies exactly) ------------
  kAdd1,   ///< fixnum(as_int(top) + 1)
  kSub1,   ///< fixnum(as_int(top) - 1)
  kCar,    ///< sexpr::car (nil-tolerant, throws on non-cons)
  kCdr,    ///< sexpr::cdr
  kCons,   ///< [a d] → (a . d)
  kEq,     ///< bit identity → t/nil
  kNull,   ///< is_nil → t/nil
  kNot,    ///< !truthy → t/nil
  kConsp,  ///< is cons → t/nil
  kAtom,   ///< !is cons → t/nil

  // ---- setf support --------------------------------------------------
  kSetCar,  ///< [newval obj] → set (car obj); leave newval
  kSetCdr,  ///< [newval obj] → set (cdr obj); leave newval

  // ---- loop support (dotimes) ----------------------------------------
  kAsInt,    ///< top = fixnum(as_int(top)); throws on non-number
  kIntLess,  ///< [a b] → t/nil, operands guaranteed fixnum
  kIncSlot,  ///< slots[a] = fixnum(slots[a] + 1), guaranteed fixnum
};

/// One instruction. Fixed width keeps decode a struct load; `a`/`b`
/// are jump targets, slot/const indices, immediates, or arg counts
/// depending on the opcode.
struct Insn {
  Op op;
  std::int32_t a = 0;
  std::int32_t b = 0;
};

/// Compiled body of one closure (or one top-level expression). Shared
/// and immutable after compilation; the owning Closure publishes it
/// with a release store of code_state (see lisp/function.hpp).
struct CodeObject final : lisp::CodeBlob {
  std::string name;  ///< function name, for profiler frames/samples
  std::vector<Insn> code;
  std::vector<Value> consts;
  std::uint32_t nparams = 0;
  bool has_rest = false;
  std::uint32_t nslots = 0;  ///< params (+rest) + deepest let nesting

  /// Intern a constant, deduplicating by bit identity (symbols and
  /// quoted subtrees repeat heavily in real bodies).
  std::int32_t add_const(Value v) {
    for (std::size_t i = 0; i < consts.size(); ++i)
      if (consts[i] == v) return static_cast<std::int32_t>(i);
    consts.push_back(v);
    return static_cast<std::int32_t>(consts.size() - 1);
  }

  /// Constants may alias quoted body subtrees or hold burned-in
  /// builtin values; they must live exactly as long as the function.
  void gc_trace(sexpr::GcVisitor& g) const override {
    for (Value v : consts) g.visit(v);
  }

  /// Human-readable listing, one instruction per line (tests, REPL).
  std::string disassemble() const;
};

/// Opcode mnemonic for disassembly and error messages.
const char* op_name(Op op);

}  // namespace curare::vm
