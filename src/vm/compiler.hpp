// One-pass compiler from s-expression bodies to flat bytecode.
//
// Coverage is deliberately partial: the compiler handles the
// expression subset that dominates transformed-program hot loops
// (calls, arithmetic, let/let*, setq/setf on symbols and cxr places,
// if/cond/and/or/when/unless, while/dotimes/dolist, incf/decf,
// push/pop, quote) and *refuses* everything else — lambda, defun,
// defstruct, defmacro, future, exotic setf places. A refusal is not an
// error: the caller caches the verdict on the Closure and the
// tree-walking interpreter remains the single source of truth for
// those forms. The differential corpus test holds the two engines to
// identical results, output, and error messages.
//
// Resolution happens once, at first call. Lexical variables become
// frame slots. A head symbol that resolves to a Builtin of the same
// name is burned in (fast opcode or kCallBuiltin) — redefining a core
// builtin after a body has been compiled does not retro-patch that
// body (documented in DESIGN.md §13); every other head compiles to a
// late-bound environment lookup, so defun redefinition and mutual
// recursion behave exactly as in the tree-walker.
#pragma once

#include <memory>
#include <string>

#include "lisp/env.hpp"
#include "lisp/interp.hpp"
#include "vm/bytecode.hpp"

namespace curare::vm {

/// Outcome of a compilation attempt: `code` set on success, otherwise
/// `why` names the first unsupported form (for diagnostics/tests).
struct CompileResult {
  std::shared_ptr<const CodeObject> code;
  std::string why;
};

/// Compile a closure's body. Parameters map to slots 0..n-1 (the &rest
/// parameter, when present, to the next slot). Free variables resolve
/// against the closure's captured environment.
CompileResult compile_closure(lisp::Interp& interp,
                              const lisp::Closure* closure);

/// Compile one top-level expression evaluated in `env`.
CompileResult compile_expr(lisp::Interp& interp, Value form,
                           const lisp::EnvPtr& env);

}  // namespace curare::vm
