// Stack VM: executes CodeObjects over an explicit frame stack.
//
// One Vm instance wraps one Interp and shares everything with it — the
// heap, the global environment, builtins, the spawn/touch hooks — so
// the two engines are interchangeable on the same program state. The
// VM owns only the execution strategy:
//
//  * Closures compile lazily on first call; the code object caches on
//    the Closure itself (lisp/function.hpp) so every Interp/Vm pair
//    sees one compilation per function. A refusal also caches, and
//    those closures run on the tree-walker forever (via
//    Interp::apply), which is the fallback contract: coverage is an
//    optimization, never a semantic fork.
//
//  * The dispatch loop advances the shared eval tick once per
//    instruction (runtime/eval_tick.hpp): the same 1-in-64
//    cancellation poll and the same profiler period as the
//    tree-walker, so deadlines and profiles are engine-independent.
//
//  * Frames live in a std::vector, traced by a gc::StackRoots frame
//    (ExecRoots) for the whole execution, so a collection triggered
//    while this thread blocks deeper in the call (a future touch, the
//    gc-roots test's forced collect) sees every live slot and operand.
//
//  * install_apply_hook routes Interp::apply's closure branch through
//    try_apply, which accelerates every runtime path that applies
//    closures (CRI server bodies, futures, run_parallel) without those
//    modules knowing the VM exists.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <span>
#include <string_view>

#include "gc/gc.hpp"
#include "lisp/interp.hpp"
#include "vm/bytecode.hpp"

namespace curare::vm {

/// Per-execution VM state (operand stack + frame stack); lives on the
/// C++ stack of execute() so re-entrant executions nest naturally.
struct ExecState;

class Vm {
 public:
  explicit Vm(lisp::Interp& interp);
  ~Vm();
  Vm(const Vm&) = delete;
  Vm& operator=(const Vm&) = delete;

  lisp::Interp& interp() { return interp_; }

  /// Evaluate one form in `env`. Compiles the expression; falls back
  /// to the tree-walker when the compiler refuses (defun, defstruct,
  /// lambda-valued forms, …). The caller must keep `form` rooted, as
  /// with Interp::eval.
  Value eval(Value form, const lisp::EnvPtr& env);
  Value eval_top(Value form) { return eval(form, interp_.global_env()); }

  /// Read and evaluate every form in `src`; returns the last value.
  /// Mirrors Interp::eval_program (same rooting, same quiescent
  /// collection points between top-level forms).
  Value eval_program(std::string_view src);

  /// Apply `fn` on the VM if it is a closure the compiler covers.
  /// Returns false (and leaves *out alone) for everything else; the
  /// caller then uses the tree path. This is the Interp apply hook.
  bool try_apply(Value fn, std::span<const Value> args, Value* out);

  /// Route Interp::apply's closure branch through try_apply (and back).
  void install_apply_hook();
  void uninstall_apply_hook();

  /// Compile-or-fetch the cached code for a closure; nullptr when the
  /// compiler refused (cached too).
  const CodeObject* ensure_compiled(const lisp::Closure* c);

  /// Engine-entry counters: executions started on bytecode vs. handed
  /// to the tree-walker (compile refusals).
  std::uint64_t compiled_entries() const {
    return compiled_entries_.load(std::memory_order_relaxed);
  }
  std::uint64_t fallback_entries() const {
    return fallback_entries_.load(std::memory_order_relaxed);
  }

 private:
  Value execute(const CodeObject* entry, Value entry_closure,
                const lisp::EnvPtr& env, std::span<const Value> args);
  void enter_frame(ExecState& st, const CodeObject* code, Value fn,
                   std::size_t arg0, std::size_t nargs, bool tail);

  lisp::Interp& interp_;
  sexpr::Ctx& ctx_;
  gc::GcHeap& gc_;
  const Value t_;  ///< Value::object(ctx.s_t), for predicate results
  std::atomic<std::uint64_t> compiled_entries_{0};
  std::atomic<std::uint64_t> fallback_entries_{0};
};

}  // namespace curare::vm
