// Standard builtin library: the Common-Lisp-flavoured primitives the
// paper's example programs (and our benchmarks) use. Everything here must
// be safe to call from multiple server threads at once; primitives that
// mutate shared structure (rplaca, sort, nreverse) rely on the program's
// own synchronization, exactly as the paper's execution model prescribes.
#include <algorithm>
#include <chrono>
#include <cmath>

#include "lisp/interp.hpp"
#include "sexpr/equal.hpp"
#include "sexpr/list_ops.hpp"
#include "sexpr/printer.hpp"
#include "sexpr/table.hpp"

namespace curare::lisp {

using sexpr::as_cons;
using sexpr::as_symbol;
using sexpr::car;
using sexpr::cdr;
using sexpr::Cons;
using sexpr::Kind;
using sexpr::LispError;
using sexpr::Table;
using sexpr::Value;

namespace {

Value bool_val(sexpr::Ctx& ctx, bool b) {
  return b ? Value::object(ctx.s_t) : Value::nil();
}

/// Apply a cxr accessor spelled "a..d" (already stripped of c/r) to v,
/// right-to-left.
Value apply_cxr(std::string_view letters, Value v) {
  for (auto it = letters.rbegin(); it != letters.rend(); ++it)
    v = (*it == 'a') ? car(v) : cdr(v);
  return v;
}

bool numeric_equal(Value a, Value b) {
  if (a.is_fixnum() && b.is_fixnum()) return a.as_fixnum() == b.as_fixnum();
  return as_number(a) == as_number(b);
}

bool numeric_less(Value a, Value b) {
  if (a.is_fixnum() && b.is_fixnum()) return a.as_fixnum() < b.as_fixnum();
  return as_number(a) < as_number(b);
}

/// Fold a variadic numeric op, staying in fixnums unless a float appears.
template <typename IntOp, typename DblOp>
Value numeric_fold(Interp& in, std::span<const Value> args,
                   std::int64_t unit, IntOp iop, DblOp dop,
                   bool unary_inverts) {
  if (args.empty()) return Value::fixnum(unit);
  bool any_float = false;
  for (Value v : args) any_float |= v.is(Kind::Float);

  if (!any_float) {
    std::int64_t acc;
    std::size_t start;
    if (args.size() == 1 && unary_inverts) {
      acc = iop(unit, args[0].as_fixnum());
      start = 1;
    } else {
      acc = as_int(args[0]);
      start = 1;
    }
    for (std::size_t i = start; i < args.size(); ++i)
      acc = iop(acc, as_int(args[i]));
    return Value::fixnum(acc);
  }

  double acc;
  std::size_t start;
  if (args.size() == 1 && unary_inverts) {
    acc = dop(static_cast<double>(unit), as_number(args[0]));
    start = 1;
  } else {
    acc = as_number(args[0]);
    start = 1;
  }
  for (std::size_t i = start; i < args.size(); ++i)
    acc = dop(acc, as_number(args[i]));
  return in.ctx().real(acc);
}

template <typename Cmp>
Value chain_compare(sexpr::Ctx& ctx, std::span<const Value> args, Cmp cmp) {
  for (std::size_t i = 0; i + 1 < args.size(); ++i)
    if (!cmp(args[i], args[i + 1])) return Value::nil();
  return Value::object(ctx.s_t);
}

/// Merge sort on a vector of values with a Lisp predicate.
void merge_sort(Interp& in, Value pred, std::vector<Value>& v) {
  std::stable_sort(v.begin(), v.end(), [&](Value a, Value b) {
    const Value args[] = {a, b};
    return in.apply(pred, args).truthy();
  });
}

}  // namespace

void install_builtins(Interp& in) {
  sexpr::Ctx& ctx = in.ctx();

  // ---- cons cells ------------------------------------------------------
  in.define_builtin("cons", 2, 2, [](Interp& i, std::span<const Value> a) {
    return i.ctx().cons(a[0], a[1]);
  });
  in.define_builtin("car", 1, 1, [](Interp&, std::span<const Value> a) {
    return car(a[0]);
  });
  in.define_builtin("cdr", 1, 1, [](Interp&, std::span<const Value> a) {
    return cdr(a[0]);
  });
  // All cxr accessors of 2..4 letters: cadr, cddr, caddr, cdar, ...
  for (int len = 2; len <= 4; ++len) {
    for (int bits = 0; bits < (1 << len); ++bits) {
      std::string letters;
      for (int i = 0; i < len; ++i)
        letters.push_back((bits >> i) & 1 ? 'd' : 'a');
      std::string name = "c" + letters + "r";
      in.define_builtin(name, 1, 1,
                        [letters](Interp&, std::span<const Value> a) {
                          return apply_cxr(letters, a[0]);
                        });
    }
  }
  in.define_builtin("rplaca", 2, 2, [](Interp&, std::span<const Value> a) {
    as_cons(a[0])->set_car(a[1]);
    return a[0];
  });
  in.define_builtin("rplacd", 2, 2, [](Interp&, std::span<const Value> a) {
    as_cons(a[0])->set_cdr(a[1]);
    return a[0];
  });

  // ---- list constructors and walkers ------------------------------------
  in.define_builtin("list", 0, -1, [](Interp& i, std::span<const Value> a) {
    return i.ctx().heap.list(std::vector<Value>(a.begin(), a.end()));
  });
  in.define_builtin("list*", 1, -1, [](Interp& i, std::span<const Value> a) {
    Value acc = a.back();
    for (std::size_t k = a.size() - 1; k-- > 0;)
      acc = i.ctx().cons(a[k], acc);
    return acc;
  });
  in.define_builtin("append", 0, -1, [](Interp& i,
                                        std::span<const Value> a) {
    if (a.empty()) return Value::nil();
    Value acc = a.back();
    for (std::size_t k = a.size() - 1; k-- > 0;)
      acc = sexpr::append2(i.ctx().heap, a[k], acc);
    return acc;
  });
  in.define_builtin("reverse", 1, 1, [](Interp& i,
                                        std::span<const Value> a) {
    return sexpr::reverse_list(i.ctx().heap, a[0]);
  });
  in.define_builtin("nreverse", 1, 1, [](Interp&,
                                         std::span<const Value> a) {
    // Destructive in-place reversal by cdr rewiring.
    Value prev = Value::nil();
    Value cur = a[0];
    while (!cur.is_nil()) {
      Cons* c = as_cons(cur);
      Value next = c->cdr();
      c->set_cdr(prev);
      prev = cur;
      cur = next;
    }
    return prev;
  });
  in.define_builtin("length", 1, 1, [](Interp&, std::span<const Value> a) {
    if (a[0].is(Kind::Vector)) {
      return Value::fixnum(static_cast<std::int64_t>(
          static_cast<sexpr::Vector*>(a[0].obj())->items.size()));
    }
    return Value::fixnum(
        static_cast<std::int64_t>(sexpr::list_length(a[0])));
  });
  in.define_builtin("nth", 2, 2, [](Interp&, std::span<const Value> a) {
    return sexpr::nth(a[1], static_cast<std::size_t>(as_int(a[0])));
  });
  in.define_builtin("nthcdr", 2, 2, [](Interp&, std::span<const Value> a) {
    Value l = a[1];
    for (std::int64_t n = as_int(a[0]); n > 0 && !l.is_nil(); --n)
      l = cdr(l);
    return l;
  });
  in.define_builtin("last", 1, 1, [](Interp&, std::span<const Value> a) {
    Value l = a[0];
    if (l.is_nil()) return Value::nil();
    while (!cdr(l).is_nil()) l = cdr(l);
    return l;
  });
  in.define_builtin("member", 2, 2, [](Interp&, std::span<const Value> a) {
    return sexpr::member_eq(a[0], a[1]);
  });
  in.define_builtin("assoc", 2, 2, [](Interp&, std::span<const Value> a) {
    return sexpr::assoc_eq(a[0], a[1]);
  });
  in.define_builtin("copy-list", 1, 1, [](Interp& i,
                                          std::span<const Value> a) {
    return i.ctx().heap.list(sexpr::list_to_vector(a[0]));
  });
  in.define_builtin("copy-tree", 1, 1, [](Interp& i,
                                          std::span<const Value> a) {
    return sexpr::copy_tree(i.ctx().heap, a[0]);
  });

  // ---- predicates --------------------------------------------------------
  in.define_builtin("null", 1, 1, [&ctx](Interp&, std::span<const Value> a) {
    return bool_val(ctx, a[0].is_nil());
  });
  in.define_builtin("not", 1, 1, [&ctx](Interp&, std::span<const Value> a) {
    return bool_val(ctx, !a[0].truthy());
  });
  in.define_builtin("atom", 1, 1, [&ctx](Interp&, std::span<const Value> a) {
    return bool_val(ctx, !a[0].is(Kind::Cons));
  });
  in.define_builtin("consp", 1, 1, [&ctx](Interp&,
                                          std::span<const Value> a) {
    return bool_val(ctx, a[0].is(Kind::Cons));
  });
  in.define_builtin("listp", 1, 1, [&ctx](Interp&,
                                          std::span<const Value> a) {
    return bool_val(ctx, a[0].is_nil() || a[0].is(Kind::Cons));
  });
  in.define_builtin("symbolp", 1, 1, [&ctx](Interp&,
                                            std::span<const Value> a) {
    return bool_val(ctx, a[0].is(Kind::Symbol) || a[0].is_nil());
  });
  in.define_builtin("numberp", 1, 1, [&ctx](Interp&,
                                            std::span<const Value> a) {
    return bool_val(ctx, is_number(a[0]));
  });
  in.define_builtin("stringp", 1, 1, [&ctx](Interp&,
                                            std::span<const Value> a) {
    return bool_val(ctx, a[0].is(Kind::String));
  });
  in.define_builtin("functionp", 1, 1, [&ctx](Interp&,
                                              std::span<const Value> a) {
    return bool_val(ctx,
                    a[0].is(Kind::Closure) || a[0].is(Kind::Builtin));
  });
  in.define_builtin("eq", 2, 2, [&ctx](Interp&, std::span<const Value> a) {
    return bool_val(ctx, a[0] == a[1]);
  });
  in.define_builtin("eql", 2, 2, [&ctx](Interp&, std::span<const Value> a) {
    return bool_val(ctx, sexpr::eql(a[0], a[1]));
  });
  in.define_builtin("equal", 2, 2, [&ctx](Interp&,
                                          std::span<const Value> a) {
    return bool_val(ctx, sexpr::equal_values(a[0], a[1]));
  });
  in.define_builtin("zerop", 1, 1, [&ctx](Interp&,
                                          std::span<const Value> a) {
    return bool_val(ctx, as_number(a[0]) == 0);
  });
  in.define_builtin("plusp", 1, 1, [&ctx](Interp&,
                                          std::span<const Value> a) {
    return bool_val(ctx, as_number(a[0]) > 0);
  });
  in.define_builtin("minusp", 1, 1, [&ctx](Interp&,
                                           std::span<const Value> a) {
    return bool_val(ctx, as_number(a[0]) < 0);
  });
  in.define_builtin("evenp", 1, 1, [&ctx](Interp&,
                                          std::span<const Value> a) {
    return bool_val(ctx, as_int(a[0]) % 2 == 0);
  });
  in.define_builtin("oddp", 1, 1, [&ctx](Interp&,
                                         std::span<const Value> a) {
    return bool_val(ctx, as_int(a[0]) % 2 != 0);
  });

  // ---- arithmetic ---------------------------------------------------------
  in.define_builtin("+", 0, -1, [](Interp& i, std::span<const Value> a) {
    return numeric_fold(
        i, a, 0, [](std::int64_t x, std::int64_t y) { return x + y; },
        [](double x, double y) { return x + y; }, false);
  });
  in.define_builtin("-", 1, -1, [](Interp& i, std::span<const Value> a) {
    return numeric_fold(
        i, a, 0, [](std::int64_t x, std::int64_t y) { return x - y; },
        [](double x, double y) { return x - y; }, true);
  });
  in.define_builtin("*", 0, -1, [](Interp& i, std::span<const Value> a) {
    return numeric_fold(
        i, a, 1, [](std::int64_t x, std::int64_t y) { return x * y; },
        [](double x, double y) { return x * y; }, false);
  });
  in.define_builtin("/", 1, -1, [](Interp& i, std::span<const Value> a) {
    // Lisp integer division truncates only when exact; we keep it simple
    // and truncate for fixnums, which the benchmarks rely on.
    return numeric_fold(
        i, a, 1,
        [](std::int64_t x, std::int64_t y) {
          if (y == 0) throw LispError("division by zero");
          return x / y;
        },
        [](double x, double y) { return x / y; }, true);
  });
  in.define_builtin("mod", 2, 2, [](Interp&, std::span<const Value> a) {
    const std::int64_t x = as_int(a[0]);
    const std::int64_t y = as_int(a[1]);
    if (y == 0) throw LispError("mod: division by zero");
    std::int64_t r = x % y;
    if (r != 0 && ((r < 0) != (y < 0))) r += y;
    return Value::fixnum(r);
  });
  in.define_builtin("rem", 2, 2, [](Interp&, std::span<const Value> a) {
    const std::int64_t y = as_int(a[1]);
    if (y == 0) throw LispError("rem: division by zero");
    return Value::fixnum(as_int(a[0]) % y);
  });
  in.define_builtin("1+", 1, 1, [](Interp&, std::span<const Value> a) {
    return Value::fixnum(as_int(a[0]) + 1);
  });
  in.define_builtin("1-", 1, 1, [](Interp&, std::span<const Value> a) {
    return Value::fixnum(as_int(a[0]) - 1);
  });
  in.define_builtin("min", 1, -1, [](Interp&, std::span<const Value> a) {
    Value best = a[0];
    for (Value v : a.subspan(1))
      if (numeric_less(v, best)) best = v;
    return best;
  });
  in.define_builtin("max", 1, -1, [](Interp&, std::span<const Value> a) {
    Value best = a[0];
    for (Value v : a.subspan(1))
      if (numeric_less(best, v)) best = v;
    return best;
  });
  in.define_builtin("abs", 1, 1, [](Interp& i, std::span<const Value> a) {
    if (a[0].is_fixnum()) return Value::fixnum(std::abs(a[0].as_fixnum()));
    return i.ctx().real(std::abs(as_number(a[0])));
  });
  in.define_builtin("sqrt", 1, 1, [](Interp& i, std::span<const Value> a) {
    return i.ctx().real(std::sqrt(as_number(a[0])));
  });
  in.define_builtin("expt", 2, 2, [](Interp& i, std::span<const Value> a) {
    if (a[0].is_fixnum() && a[1].is_fixnum() && a[1].as_fixnum() >= 0) {
      std::int64_t base = a[0].as_fixnum();
      std::int64_t acc = 1;
      for (std::int64_t e = a[1].as_fixnum(); e > 0; --e) acc *= base;
      return Value::fixnum(acc);
    }
    return i.ctx().real(std::pow(as_number(a[0]), as_number(a[1])));
  });
  in.define_builtin("floor", 1, 1, [](Interp&, std::span<const Value> a) {
    return Value::fixnum(
        static_cast<std::int64_t>(std::floor(as_number(a[0]))));
  });
  in.define_builtin("truncate", 1, 1, [](Interp&,
                                         std::span<const Value> a) {
    return Value::fixnum(static_cast<std::int64_t>(as_number(a[0])));
  });
  in.define_builtin("=", 1, -1, [&ctx](Interp&, std::span<const Value> a) {
    return chain_compare(ctx, a, numeric_equal);
  });
  in.define_builtin("/=", 2, 2, [&ctx](Interp&, std::span<const Value> a) {
    return bool_val(ctx, !numeric_equal(a[0], a[1]));
  });
  in.define_builtin("<", 1, -1, [&ctx](Interp&, std::span<const Value> a) {
    return chain_compare(ctx, a, numeric_less);
  });
  in.define_builtin(">", 1, -1, [&ctx](Interp&, std::span<const Value> a) {
    return chain_compare(ctx, a,
                         [](Value x, Value y) { return numeric_less(y, x); });
  });
  in.define_builtin("<=", 1, -1, [&ctx](Interp&, std::span<const Value> a) {
    return chain_compare(
        ctx, a, [](Value x, Value y) { return !numeric_less(y, x); });
  });
  in.define_builtin(">=", 1, -1, [&ctx](Interp&, std::span<const Value> a) {
    return chain_compare(
        ctx, a, [](Value x, Value y) { return !numeric_less(x, y); });
  });

  // ---- higher-order -------------------------------------------------------
  in.define_builtin("apply", 2, -1, [](Interp& i,
                                       std::span<const Value> a) {
    // (apply f x y list): final argument is a list of trailing args.
    std::vector<Value> args(a.begin() + 1, a.end() - 1);
    for (Value rest = a.back(); !rest.is_nil(); rest = cdr(rest))
      args.push_back(car(rest));
    return i.apply(a[0], args);
  });
  in.define_builtin("funcall", 1, -1, [](Interp& i,
                                         std::span<const Value> a) {
    return i.apply(a[0], a.subspan(1));
  });
  in.define_builtin("mapcar", 2, -1, [](Interp& i,
                                        std::span<const Value> a) {
    std::vector<Value> lists(a.begin() + 1, a.end());
    std::vector<Value> out;
    for (;;) {
      std::vector<Value> args;
      for (Value& l : lists) {
        if (l.is_nil()) return i.ctx().heap.list(out);
        args.push_back(car(l));
        l = cdr(l);
      }
      out.push_back(i.apply(a[0], args));
    }
  });
  in.define_builtin("mapc", 2, 2, [](Interp& i, std::span<const Value> a) {
    for (Value l = a[1]; !l.is_nil(); l = cdr(l)) {
      const Value args[] = {car(l)};
      i.apply(a[0], args);
    }
    return a[1];
  });
  in.define_builtin("reduce", 2, 3, [](Interp& i,
                                       std::span<const Value> a) {
    Value list = a[1];
    Value acc;
    if (a.size() == 3) {
      acc = a[2];
    } else {
      if (list.is_nil()) return i.apply(a[0], {});
      acc = car(list);
      list = cdr(list);
    }
    for (; !list.is_nil(); list = cdr(list)) {
      const Value args[] = {acc, car(list)};
      acc = i.apply(a[0], args);
    }
    return acc;
  });
  in.define_builtin("sort", 2, 2, [](Interp& i, std::span<const Value> a) {
    std::vector<Value> v = sexpr::list_to_vector(a[0]);
    merge_sort(i, a[1], v);
    return i.ctx().heap.list(v);
  });
  in.define_builtin("identity", 1, 1, [](Interp&,
                                         std::span<const Value> a) {
    return a[0];
  });

  // ---- hash tables ---------------------------------------------------------
  in.define_builtin("make-hash-table", 0, 0,
                    [](Interp& i, std::span<const Value>) {
                      return Value::object(i.ctx().heap.alloc<Table>());
                    });
  in.define_builtin("gethash", 2, 3, [](Interp&, std::span<const Value> a) {
    if (!a[1].is(Kind::Table)) throw LispError("gethash: not a table");
    Value dflt = a.size() == 3 ? a[2] : Value::nil();
    return static_cast<Table*>(a[1].obj())->get(a[0], dflt);
  });
  in.define_builtin("puthash", 3, 3, [](Interp&, std::span<const Value> a) {
    if (!a[2].is(Kind::Table)) throw LispError("puthash: not a table");
    static_cast<Table*>(a[2].obj())->put(a[0], a[1]);
    return a[1];
  });
  in.define_builtin("remhash", 2, 2, [&ctx](Interp&,
                                            std::span<const Value> a) {
    if (!a[1].is(Kind::Table)) throw LispError("remhash: not a table");
    return bool_val(ctx, static_cast<Table*>(a[1].obj())->remove(a[0]));
  });
  in.define_builtin("hash-table-count", 1, 1,
                    [](Interp&, std::span<const Value> a) {
                      if (!a[0].is(Kind::Table))
                        throw LispError("hash-table-count: not a table");
                      return Value::fixnum(static_cast<std::int64_t>(
                          static_cast<Table*>(a[0].obj())->size()));
                    });

  // ---- vectors --------------------------------------------------------------
  in.define_builtin("make-array", 1, 2, [](Interp& i,
                                           std::span<const Value> a) {
    const std::int64_t n = as_int(a[0]);
    if (n < 0) throw LispError("make-array: negative size");
    Value fill = a.size() == 2 ? a[1] : Value::nil();
    auto* v = i.ctx().heap.alloc<sexpr::Vector>(
        std::vector<Value>(static_cast<std::size_t>(n), fill));
    return Value::object(v);
  });
  in.define_builtin("aref", 2, 2, [](Interp&, std::span<const Value> a) {
    auto* v = sexpr::as_vector(a[0]);
    const std::int64_t i = as_int(a[1]);
    if (i < 0 || static_cast<std::size_t>(i) >= v->items.size())
      throw LispError("aref: index out of range");
    return v->items[static_cast<std::size_t>(i)];
  });

  // ---- symbols / strings ------------------------------------------------------
  in.define_builtin("gensym", 0, 1, [](Interp& i,
                                       std::span<const Value> a) {
    std::string_view prefix = "g";
    if (a.size() == 1) prefix = sexpr::as_string(a[0])->text;
    return Value::object(i.ctx().symbols.gensym(prefix));
  });
  in.define_builtin("symbol-name", 1, 1, [](Interp& i,
                                            std::span<const Value> a) {
    return i.ctx().str(as_symbol(a[0])->name);
  });
  in.define_builtin("intern", 1, 1, [](Interp& i,
                                       std::span<const Value> a) {
    return i.ctx().symbols.intern_value(sexpr::as_string(a[0])->text);
  });
  in.define_builtin("string=", 2, 2, [&ctx](Interp&,
                                            std::span<const Value> a) {
    return bool_val(ctx, sexpr::as_string(a[0])->text ==
                             sexpr::as_string(a[1])->text);
  });
  in.define_builtin("concat", 0, -1, [](Interp& i,
                                        std::span<const Value> a) {
    std::string out;
    for (Value v : a) out += sexpr::as_string(v)->text;
    return i.ctx().str(std::move(out));
  });

  // ---- I/O -----------------------------------------------------------------
  in.define_builtin("print", 1, 1, [](Interp& i, std::span<const Value> a) {
    i.write_output(sexpr::write_str(a[0]) + "\n");
    return a[0];
  });
  in.define_builtin("princ", 1, 1, [](Interp& i, std::span<const Value> a) {
    i.write_output(sexpr::display_str(a[0]));
    return a[0];
  });
  in.define_builtin("prin1", 1, 1, [](Interp& i, std::span<const Value> a) {
    i.write_output(sexpr::write_str(a[0]));
    return a[0];
  });
  in.define_builtin("terpri", 0, 0, [](Interp& i, std::span<const Value>) {
    i.write_output("\n");
    return Value::nil();
  });
  // (format dest control args…): dest nil → return the string, dest t →
  // write it. Directives: ~a (display), ~s (write), ~d (decimal),
  // ~% (newline), ~~ (literal tilde).
  in.define_builtin("format", 2, -1, [](Interp& i,
                                        std::span<const Value> a) {
    const std::string& control = sexpr::as_string(a[1])->text;
    std::string out;
    std::size_t next_arg = 2;
    for (std::size_t k = 0; k < control.size(); ++k) {
      if (control[k] != '~') {
        out.push_back(control[k]);
        continue;
      }
      if (++k >= control.size())
        throw LispError("format: control string ends with ~");
      const char d = control[k];
      switch (d) {
        case '%': out.push_back('\n'); break;
        case '~': out.push_back('~'); break;
        case 'a':
        case 'A':
        case 's':
        case 'S':
        case 'd':
        case 'D': {
          if (next_arg >= a.size())
            throw LispError("format: not enough arguments for control "
                            "string");
          Value v = a[next_arg++];
          if (d == 'd' || d == 'D') {
            out += std::to_string(as_int(v));
          } else if (d == 'a' || d == 'A') {
            out += sexpr::display_str(v);
          } else {
            out += sexpr::write_str(v);
          }
          break;
        }
        default:
          throw LispError(std::string("format: unsupported directive ~") +
                          d);
      }
    }
    if (a[0].is_nil()) return i.ctx().str(std::move(out));
    i.write_output(out);
    return Value::nil();
  });

  // ---- misc -----------------------------------------------------------------
  in.define_builtin("random", 1, 1, [](Interp& i,
                                       std::span<const Value> a) {
    return Value::fixnum(i.random_below(as_int(a[0])));
  });
  in.define_builtin("error", 1, -1, [](Interp&, std::span<const Value> a)
                                        -> Value {
    std::string msg = a[0].is(Kind::String)
                          ? sexpr::as_string(a[0])->text
                          : sexpr::write_str(a[0]);
    for (Value v : a.subspan(1)) msg += " " + sexpr::write_str(v);
    throw LispError("error: " + msg);
  });
  in.define_builtin("touch", 1, 1, [](Interp& i, std::span<const Value> a) {
    // Forces a future; identity on ordinary values (Multilisp semantics).
    return i.force_future(a[0]);
  });
  in.define_builtin("get-internal-real-time", 0, 0,
                    [](Interp&, std::span<const Value>) {
                      auto now = std::chrono::steady_clock::now();
                      return Value::fixnum(
                          std::chrono::duration_cast<std::chrono::nanoseconds>(
                              now.time_since_epoch())
                              .count());
                    });
}

}  // namespace curare::lisp
