// Lexical environments.
//
// Local frames form a parent chain and are owned by shared_ptr so
// closures can outlive the activation that created them. The global frame
// is shared by every server thread in the CRI runtime, so its map is
// guarded by a shared_mutex: transformed programs read globals constantly
// (function lookups) and write them rarely (defun, top-level setq).
#pragma once

#include <memory>
#include <mutex>
#include <optional>
#include <shared_mutex>
#include <unordered_map>

#include "sexpr/value.hpp"

namespace curare::lisp {

using sexpr::Symbol;
using sexpr::Value;

class Env;
using EnvPtr = std::shared_ptr<Env>;

class Env {
 public:
  /// Create the global (root) frame.
  static EnvPtr make_global() { return EnvPtr(new Env(nullptr, true)); }

  /// Create a local frame chained to `parent`.
  static EnvPtr make_local(EnvPtr parent) {
    return EnvPtr(new Env(std::move(parent), false));
  }

  /// Lexical lookup; std::nullopt when unbound anywhere in the chain.
  std::optional<Value> lookup(Symbol* name) const {
    for (const Env* e = this; e != nullptr; e = e->parent_.get()) {
      if (e->global_) {
        std::shared_lock lock(e->mu_);
        auto it = e->vars_.find(name);
        if (it != e->vars_.end()) return it->second;
      } else {
        auto it = e->vars_.find(name);
        if (it != e->vars_.end()) return it->second;
      }
    }
    return std::nullopt;
  }

  /// Bind `name` in THIS frame (let/lambda binding or defun).
  void define(Symbol* name, Value v) {
    if (global_) {
      std::unique_lock lock(mu_);
      vars_[name] = v;
    } else {
      vars_[name] = v;
    }
  }

  /// Assign to the innermost existing binding (setq). Creates a global
  /// binding if the variable is unbound, as interactive Lisps do.
  void set(Symbol* name, Value v) {
    for (Env* e = this; e != nullptr; e = e->parent_.get()) {
      if (e->global_) {
        std::unique_lock lock(e->mu_);
        auto it = e->vars_.find(name);
        if (it != e->vars_.end() || e->parent_ == nullptr) {
          e->vars_[name] = v;
          return;
        }
      } else {
        auto it = e->vars_.find(name);
        if (it != e->vars_.end()) {
          it->second = v;
          return;
        }
      }
    }
  }

  bool is_global() const { return global_; }
  const EnvPtr& parent() const { return parent_; }

  /// Visit every value bound in THIS frame (not the chain). Used by the
  /// collector: closures reach their captured frames through here, and
  /// the interpreter enumerates the global frame as a root source.
  template <typename Fn>
  void for_each_binding(Fn&& fn) const {
    if (global_) {
      std::shared_lock lock(mu_);
      for (const auto& [name, v] : vars_) fn(v);
    } else {
      for (const auto& [name, v] : vars_) fn(v);
    }
  }

  /// Visit every (symbol, value) binding in THIS frame. The image
  /// serializer needs the names too: a frame is flattened as a set of
  /// named slots so the clone can re-bind them in a fresh session.
  template <typename Fn>
  void for_each_binding_named(Fn&& fn) const {
    if (global_) {
      std::shared_lock lock(mu_);
      for (const auto& [name, v] : vars_) fn(name, v);
    } else {
      for (const auto& [name, v] : vars_) fn(name, v);
    }
  }

  std::size_t binding_count() const {
    if (global_) {
      std::shared_lock lock(mu_);
      return vars_.size();
    }
    return vars_.size();
  }

 private:
  Env(EnvPtr parent, bool global)
      : parent_(std::move(parent)), global_(global) {}

  EnvPtr parent_;
  const bool global_;
  mutable std::shared_mutex mu_;  // used only when global_
  std::unordered_map<Symbol*, Value> vars_;
};

}  // namespace curare::lisp
