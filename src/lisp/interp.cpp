#include "lisp/interp.hpp"

#include <cassert>
#include <iostream>

#include "obs/profiler.hpp"
#include "runtime/eval_tick.hpp"
#include "sexpr/list_ops.hpp"
#include "sexpr/printer.hpp"
#include "sexpr/reader.hpp"
#include "sexpr/table.hpp"

namespace curare::lisp {

using sexpr::as_cons;
using sexpr::as_symbol;
using sexpr::cadr;
using sexpr::caddr;
using sexpr::cadddr;
using sexpr::car;
using sexpr::cddr;
using sexpr::cdr;
using sexpr::Cons;
using sexpr::Kind;
using sexpr::LispError;
using sexpr::Symbol;

thread_local std::size_t Interp::depth_ = 0;

namespace {

/// RAII depth guard for non-tail recursion into eval.
struct DepthGuard {
  std::size_t& d;
  explicit DepthGuard(std::size_t& depth, std::size_t max) : d(depth) {
    if (++d > max) {
      --d;
      throw LispError("evaluation too deep (recursion limit " +
                      std::to_string(max) + " exceeded)");
    }
  }
  ~DepthGuard() { --d; }
};

/// True when `name` spells a car/cdr composition accessor: c[ad]+r.
bool is_cxr_name(const std::string& name) {
  if (name.size() < 3 || name.front() != 'c' || name.back() != 'r')
    return false;
  for (std::size_t i = 1; i + 1 < name.size(); ++i)
    if (name[i] != 'a' && name[i] != 'd') return false;
  return true;
}

}  // namespace

Interp::Interp(sexpr::Ctx& ctx)
    : ctx_(ctx),
      gc_(ctx.heap.gc()),
      global_(Env::make_global()),
      s_future_(ctx.symbols.intern("future")),
      s_defmacro_unsupported_(ctx.symbols.intern("defmacro")),
      s_defstruct_(ctx.symbols.intern("defstruct")),
      s_incf_(ctx.symbols.intern("incf")),
      s_decf_(ctx.symbols.intern("decf")),
      s_push_(ctx.symbols.intern("push")),
      s_pop_(ctx.symbols.intern("pop")) {
  install_builtins(*this);
  gc_.add_root_source(this);
}

Interp::~Interp() { gc_.remove_root_source(this); }

void Interp::gc_roots(std::vector<Value>& out) {
  // Every reachable Lisp value hangs off a global binding: closures
  // carry their captured frames, conses their elements. Local frames of
  // suspended computations never survive a quiescent point unrooted.
  global_->for_each_binding([&](Value v) { out.push_back(v); });
}

std::shared_ptr<const StructType> Interp::struct_type(Symbol* name) const {
  std::shared_lock lock(structs_mu_);
  auto it = struct_types_.find(name);
  return it == struct_types_.end() ? nullptr : it->second;
}

std::shared_ptr<const StructType> Interp::struct_type_of_field(
    Symbol* field) const {
  std::shared_lock lock(structs_mu_);
  auto it = field_index_.find(field);
  return it == field_index_.end() ? nullptr : it->second;
}

std::vector<std::shared_ptr<const StructType>> Interp::struct_types()
    const {
  std::shared_lock lock(structs_mu_);
  std::vector<std::shared_ptr<const StructType>> out;
  out.reserve(struct_types_.size());
  for (const auto& [name, t] : struct_types_) out.push_back(t);
  return out;
}

Value Interp::eval_defstruct(Value form) {
  // (defstruct name (pointers f…) (data f…))  — bare field symbols are
  // data fields.
  auto type = std::make_shared<StructType>();
  type->name = as_symbol(cadr(form));
  for (Value part = cddr(form); !part.is_nil(); part = cdr(part)) {
    Value spec = car(part);
    if (spec.is(Kind::Symbol)) {
      type->data_fields.push_back(static_cast<Symbol*>(spec.obj()));
      continue;
    }
    const std::string& which = as_symbol(car(spec))->name;
    std::vector<Symbol*>* dst = nullptr;
    if (which == "pointers") {
      dst = &type->pointer_fields;
    } else if (which == "data") {
      dst = &type->data_fields;
    } else {
      throw LispError("defstruct: field group must be (pointers …) or "
                      "(data …), got " +
                      which);
    }
    for (Value f = cdr(spec); !f.is_nil(); f = cdr(f))
      dst->push_back(as_symbol(car(f)));
  }

  // Field (= accessor) names must be globally unique — the paper's §2.1
  // requirement that "structure accessors have unique names".
  for (Symbol* f : type->all_fields()) {
    if (struct_type_of_field(f) != nullptr) {
      throw LispError("defstruct: field " + f->name +
                      " already belongs to another structure");
    }
    if (global_->lookup(f).has_value()) {
      throw LispError("defstruct: accessor name " + f->name +
                      " collides with an existing binding");
    }
  }

  {
    std::unique_lock lock(structs_mu_);
    struct_types_[type->name] = type;
    for (Symbol* f : type->all_fields()) field_index_[f] = type;
  }

  // (make-NAME 'field v …)
  std::shared_ptr<const StructType> t = type;
  define_builtin(
      "make-" + type->name->name, 0, -1,
      [t](Interp& i, std::span<const Value> a) {
        if (a.size() % 2 != 0)
          throw LispError("make-" + t->name->name +
                          ": field/value arguments must come in pairs");
        auto* inst = i.ctx().heap.alloc<Instance>(t);
        for (std::size_t k = 0; k < a.size(); k += 2) {
          const int slot = t->slot_index(as_symbol(a[k]));
          if (slot < 0)
            throw LispError("make-" + t->name->name + ": unknown field " +
                            as_symbol(a[k])->name);
          inst->set(slot, a[k + 1]);
        }
        return Value::object(inst);
      });

  // (NAME-p x)
  define_builtin(type->name->name + "-p", 1, 1,
                 [t](Interp& i, std::span<const Value> a) {
                   const bool yes =
                       a[0].is(Kind::Struct) &&
                       static_cast<Instance*>(a[0].obj())->type == t;
                   return yes ? Value::object(i.ctx().s_t) : Value::nil();
                 });

  // One accessor per field, named exactly like the field.
  for (Symbol* f : type->all_fields()) {
    const int slot = type->slot_index(f);
    define_builtin(f->name, 1, 1,
                   [t, slot, f](Interp&, std::span<const Value> a) {
                     if (a[0].is_nil()) return Value::nil();
                     if (!a[0].is(Kind::Struct) ||
                         static_cast<Instance*>(a[0].obj())->type != t) {
                       throw LispError(f->name + ": argument is not a " +
                                       t->name->name);
                     }
                     return static_cast<Instance*>(a[0].obj())->get(slot);
                   });
  }
  return Value::object(type->name);
}

void Interp::define_builtin(std::string_view name, int min_args,
                            int max_args, BuiltinFn fn) {
  Symbol* s = ctx_.symbols.intern(name);
  auto* b = ctx_.heap.alloc<Builtin>(std::string(name), min_args, max_args,
                                     std::move(fn));
  global_->define(s, Value::object(b));
}

Value Interp::global(std::string_view name) {
  auto v = global_->lookup(ctx_.symbols.intern(name));
  return v ? *v : Value::nil();
}

Value Interp::eval_program(std::string_view src) {
  // Root the freshly read forms before evaluating: collections may run
  // between top-level forms (that is a quiescent point), and a form not
  // yet evaluated is reachable from nowhere else.
  gc::RootScope roots(gc_);
  std::vector<Value> forms;
  {
    gc::MutatorScope ms(gc_);
    forms = sexpr::read_all(ctx_, src);
    for (Value f : forms) roots.add(f);
  }
  Value result = Value::nil();
  for (Value form : forms) {
    gc_.maybe_collect();
    result = eval_top(form);
  }
  return result;
}

void Interp::write_output(std::string_view s) {
  std::lock_guard<std::mutex> g(out_mu_);
  out_.append(s);
  if (echo_) std::cout << s << std::flush;
}

std::string Interp::take_output() {
  std::lock_guard<std::mutex> g(out_mu_);
  return std::exchange(out_, std::string());
}

void Interp::seed_rng(std::uint64_t seed) {
  std::lock_guard<std::mutex> g(rng_mu_);
  rng_.seed(seed);
}

std::int64_t Interp::random_below(std::int64_t n) {
  if (n <= 0) throw LispError("random: bound must be positive");
  std::lock_guard<std::mutex> g(rng_mu_);
  return static_cast<std::int64_t>(rng_() % static_cast<std::uint64_t>(n));
}

EnvPtr Interp::bind_params(const Closure* c, std::span<const Value> args) {
  if (args.size() < c->params.size() ||
      (c->rest == nullptr && args.size() > c->params.size())) {
    throw LispError("wrong number of arguments to " +
                    (c->name.empty() ? std::string("#<lambda>") : c->name) +
                    ": got " + std::to_string(args.size()) + ", want " +
                    std::to_string(c->params.size()) +
                    (c->rest ? "+" : ""));
  }
  EnvPtr env = Env::make_local(c->env);
  for (std::size_t i = 0; i < c->params.size(); ++i)
    env->define(c->params[i], args[i]);
  if (c->rest != nullptr) {
    std::vector<Value> extra(args.begin() +
                                 static_cast<std::ptrdiff_t>(c->params.size()),
                             args.end());
    env->define(c->rest, ctx_.heap.list(extra));
  }
  return env;
}

Value Interp::make_closure(Value lambda_form, const EnvPtr& env,
                           std::string name) {
  // lambda_form = (lambda (params...) body...) or (name (params...) body...)
  Value param_list = cadr(lambda_form);
  std::vector<Symbol*> params;
  Symbol* rest = nullptr;
  for (Value p = param_list; !p.is_nil(); p = cdr(p)) {
    Symbol* s = as_symbol(car(p));
    if (s == ctx_.s_rest) {
      rest = as_symbol(cadr(p));
      break;
    }
    params.push_back(s);
  }
  auto* c = ctx_.heap.alloc<Closure>(std::move(name), std::move(params),
                                     rest, cddr(lambda_form), env);
  return Value::object(c);
}

namespace {
/// Shadow-stack frame for one eval/apply activation: roots the form
/// under evaluation, the frame's environment chain, and the in-flight
/// callee + argument vector of an ordinary application. Registered
/// with the collector so a thread may release its unsafe region across
/// a long block deeper in the call (CriRun::run joining its servers)
/// without the values its suspended frames hold becoming collectible.
class EvalFrame final : public gc::StackRoots {
 public:
  EvalFrame(gc::GcHeap& h, const Value* form, const EnvPtr* env)
      : gc::StackRoots(h), form_(form), env_(env) {}

  /// The ordinary-application path parks its callee and argument
  /// vector here while the arguments are evaluated and applied; the
  /// tail-call path clears them before their storage dies.
  void set_call(const Value* fn, const std::vector<Value>* args) {
    fn_ = fn;
    args_ = args;
  }
  /// One extra local that must survive body evaluation (dolist's list
  /// tail).
  void set_extra(const Value* v) { extra_ = v; }

  void trace(sexpr::GcVisitor& g) const override {
    if (form_ != nullptr) g.visit(*form_);
    if (fn_ != nullptr) g.visit(*fn_);
    if (extra_ != nullptr) g.visit(*extra_);
    if (args_ != nullptr)
      for (Value v : *args_) g.visit(v);
    if (span_ != nullptr)
      for (Value v : *span_) g.visit(v);
    if (env_ != nullptr) {
      for (const Env* e = env_->get(); e != nullptr;
           e = e->parent().get()) {
        if (!g.enter_region(e)) break;
        e->for_each_binding([&](Value v) { g.visit(v); });
      }
    }
  }

  void set_span(const std::span<const Value>* sp) { span_ = sp; }

 private:
  const Value* form_;
  const EnvPtr* env_;
  const Value* fn_ = nullptr;
  const Value* extra_ = nullptr;
  const std::vector<Value>* args_ = nullptr;
  const std::span<const Value>* span_ = nullptr;
};
}  // namespace

Value Interp::apply(Value fn, std::span<const Value> args) {
  gc::MutatorScope gc_scope(gc_);
  EvalFrame gc_frame(gc_, nullptr, nullptr);
  gc_frame.set_call(&fn, nullptr);
  gc_frame.set_span(&args);
  apply_count_.fetch_add(1, std::memory_order_relaxed);
  if (fn.is(Kind::Builtin)) {
    auto* b = static_cast<Builtin*>(fn.obj());
    if (static_cast<int>(args.size()) < b->min_args ||
        (b->max_args >= 0 && static_cast<int>(args.size()) > b->max_args)) {
      throw LispError("wrong number of arguments to builtin " + b->name);
    }
    obs::ProfileFrameScope pf(obs::Profiler::FrameKind::kBuiltin,
                              &b->name);
    return b->fn(*this, args);
  }
  if (fn.is(Kind::Closure)) {
    // VM engine first: compiled closures run on the bytecode stack
    // (which pushes its own profile frames); the hook declines for
    // closures the compiler refused, and the tree path below remains
    // the single fallback.
    if (compiled_apply_) {
      Value out;
      if (compiled_apply_(*this, fn, args, &out)) return out;
    }
    auto* c = static_cast<Closure*>(fn.obj());
    obs::ProfileFrameScope pf(obs::Profiler::FrameKind::kFn, &c->name);
    EnvPtr env = bind_params(c, args);
    Value result = Value::nil();
    for (Value body = c->body; !body.is_nil(); body = cdr(body))
      result = eval(car(body), env);
    return result;
  }
  throw LispError("not a function: " + sexpr::write_str(fn));
}

Value Interp::eval(Value form, EnvPtr env) {
  gc::MutatorScope gc_scope(gc_);
  EvalFrame gc_frame(gc_, &form, &env);
  DepthGuard guard(depth_, max_depth_);
  // This eval activation's profile frame: the inline application path
  // below reuses the loop instead of recursing, so the activation —
  // not apply() — is the call frame the profiler should see. Pushed
  // lazily on the first inlined closure call, renamed by later ones
  // (true tail calls), popped when the activation returns.
  struct TailProfileFrame {
    bool pushed = false;
    ~TailProfileFrame() {
      if (pushed) obs::Profiler::instance().pop_frame();
    }
  } tail_pf;
  for (;;) {
    // Cancellation check (DESIGN.md §10): tail-call elimination funnels
    // every loop a program can write through this point, so polling
    // here bounds how long a busy (not blocked) server can outlive its
    // run's deadline. The tick/poll machinery is shared with the
    // bytecode VM (runtime/eval_tick.hpp): one step per eval step here,
    // one per instruction there, same 1-in-64 poll and poll counter.
    {
      const unsigned tick = runtime::eval_tick_step();
      if (runtime::eval_tick_profile_due(tick)) {
        const std::string* leaf = nullptr;
        if (form.is(Kind::Cons)) {
          Value head = static_cast<Cons*>(form.obj())->car();
          if (head.is(Kind::Symbol)) {
            leaf = &static_cast<Symbol*>(head.obj())->name;
          }
        }
        obs::Profiler::instance().sample(leaf);
      }
    }
    // Self-evaluating atoms.
    if (!form.is_object()) return form;  // nil, fixnum
    switch (form.obj()->kind) {
      case Kind::Symbol: {
        Symbol* s = static_cast<Symbol*>(form.obj());
        if (s == ctx_.s_t) return form;
        if (auto v = env->lookup(s)) return *v;
        throw LispError("unbound variable: " + s->name);
      }
      case Kind::Cons: break;  // handled below
      default: return form;    // strings, floats, vectors, objects
    }

    Cons* cell = static_cast<Cons*>(form.obj());
    Value head = cell->car();

    if (head.is(Kind::Symbol)) {
      Symbol* op = static_cast<Symbol*>(head.obj());

      // ---- special forms, tail-call-aware ----------------------------
      if (op == ctx_.s_quote) return cadr(form);

      if (op == ctx_.s_if) {
        Value test = eval(cadr(form), env);
        form = test.truthy() ? caddr(form) : cadddr(form);
        continue;
      }

      if (op == ctx_.s_progn) {
        Value body = cdr(form);
        if (body.is_nil()) return Value::nil();
        while (!cdr(body).is_nil()) {
          eval(car(body), env);
          body = cdr(body);
        }
        form = car(body);
        continue;
      }

      if (op == ctx_.s_when || op == ctx_.s_unless) {
        Value test = eval(cadr(form), env);
        const bool run = (op == ctx_.s_when) == test.truthy();
        if (!run) return Value::nil();
        Value body = cddr(form);
        if (body.is_nil()) return Value::nil();
        while (!cdr(body).is_nil()) {
          eval(car(body), env);
          body = cdr(body);
        }
        form = car(body);
        continue;
      }

      if (op == ctx_.s_cond) {
        Value clauses = cdr(form);
        bool matched = false;
        for (; !clauses.is_nil(); clauses = cdr(clauses)) {
          Value clause = car(clauses);
          Value test = car(clause);
          // (t ...) clause or evaluated test.
          Value tv = eval(test, env);
          if (tv.truthy()) {
            Value body = cdr(clause);
            if (body.is_nil()) return tv;  // (cond (expr)) returns expr
            while (!cdr(body).is_nil()) {
              eval(car(body), env);
              body = cdr(body);
            }
            form = car(body);
            matched = true;
            break;
          }
        }
        if (matched) continue;
        return Value::nil();
      }

      if (op == ctx_.s_and) {
        Value rest = cdr(form);
        if (rest.is_nil()) return Value::object(ctx_.s_t);
        Value v = Value::object(ctx_.s_t);
        while (!cdr(rest).is_nil()) {
          v = eval(car(rest), env);
          if (!v.truthy()) return Value::nil();
          rest = cdr(rest);
        }
        form = car(rest);
        continue;
      }

      if (op == ctx_.s_or) {
        Value rest = cdr(form);
        while (!rest.is_nil() && !cdr(rest).is_nil()) {
          Value v = eval(car(rest), env);
          if (v.truthy()) return v;
          rest = cdr(rest);
        }
        if (rest.is_nil()) return Value::nil();
        form = car(rest);
        continue;
      }

      if (op == ctx_.s_let || op == ctx_.s_let_star) {
        const bool sequential = (op == ctx_.s_let_star);
        EnvPtr inner = Env::make_local(env);
        for (Value b = cadr(form); !b.is_nil(); b = cdr(b)) {
          Value binding = car(b);
          if (binding.is(Kind::Symbol)) {
            inner->define(static_cast<Symbol*>(binding.obj()), Value::nil());
          } else {
            Symbol* name = as_symbol(car(binding));
            Value init =
                eval(cadr(binding), sequential ? inner : env);
            inner->define(name, init);
          }
        }
        Value body = cddr(form);
        if (body.is_nil()) return Value::nil();
        env = inner;
        while (!cdr(body).is_nil()) {
          eval(car(body), env);
          body = cdr(body);
        }
        form = car(body);
        continue;
      }

      if (op == ctx_.s_lambda) return make_closure(form, env, "");

      if (op == ctx_.s_defun) {
        Symbol* name = as_symbol(cadr(form));
        // (defun name (params) body...) has the same shape as a lambda
        // if we drop the leading defun symbol.
        Value as_lambda = cdr(form);
        Value fn = make_closure(as_lambda, global_, name->name);
        global_->define(name, fn);
        return Value::object(name);
      }

      if (op == s_defstruct_) return eval_defstruct(form);

      // setf-macro family: rewrite to the equivalent setf and evaluate.
      // The place expression is evaluated twice, the classic caveat.
      if (op == s_incf_ || op == s_decf_) {
        Value place = cadr(form);
        Value delta = cddr(form).is_nil() ? Value::fixnum(1) : caddr(form);
        const char* arith = (op == s_incf_) ? "+" : "-";
        Value val = ctx_.make_list(ctx_.sym(arith), place, delta);
        return setf_place(place, eval(val, env), env);
      }
      if (op == s_push_) {
        Value item = eval(cadr(form), env);
        Value place = caddr(form);
        Value old = eval(place, env);
        return setf_place(place, ctx_.cons(item, old), env);
      }
      if (op == s_pop_) {
        Value place = cadr(form);
        Value old = eval(place, env);
        setf_place(place, cdr(old), env);
        return car(old);
      }

      if (op == s_defmacro_unsupported_) {
        throw LispError(
            "defmacro is not supported by this Lisp subset (Curare "
            "analyzes plain functions)");
      }

      if (op == ctx_.s_setq) {
        Value rest = cdr(form);
        Value v = Value::nil();
        while (!rest.is_nil()) {
          Symbol* name = as_symbol(car(rest));
          v = eval(cadr(rest), env);
          env->set(name, v);
          rest = cddr(rest);
        }
        return v;
      }

      if (op == ctx_.s_setf) return eval_setf(form, env);

      if (op == ctx_.s_while) {
        Value test = cadr(form);
        Value body = cddr(form);
        while (eval(test, env).truthy()) {
          for (Value b = body; !b.is_nil(); b = cdr(b)) eval(car(b), env);
        }
        return Value::nil();
      }

      if (op == ctx_.s_dotimes) {
        // (dotimes (i n [result]) body...)
        Value spec = cadr(form);
        Symbol* var = as_symbol(car(spec));
        const std::int64_t n = as_int(eval(cadr(spec), env));
        EnvPtr inner = Env::make_local(env);
        inner->define(var, Value::fixnum(0));
        for (std::int64_t i = 0; i < n; ++i) {
          inner->set(var, Value::fixnum(i));
          for (Value b = cddr(form); !b.is_nil(); b = cdr(b))
            eval(car(b), inner);
        }
        inner->set(var, Value::fixnum(n));
        Value result_form = caddr(spec);
        return result_form.is_nil() ? Value::nil()
                                    : eval(result_form, inner);
      }

      if (op == ctx_.s_dolist) {
        // (dolist (x list [result]) body...)
        Value spec = cadr(form);
        Symbol* var = as_symbol(car(spec));
        Value list = eval(cadr(spec), env);
        gc_frame.set_extra(&list);
        EnvPtr inner = Env::make_local(env);
        inner->define(var, Value::nil());
        for (; !list.is_nil(); list = cdr(list)) {
          inner->set(var, car(list));
          for (Value b = cddr(form); !b.is_nil(); b = cdr(b))
            eval(car(b), inner);
        }
        inner->set(var, Value::nil());
        Value result_form = caddr(spec);
        return result_form.is_nil() ? Value::nil()
                                    : eval(result_form, inner);
      }

      if (op == ctx_.s_declare) return Value::nil();  // advice, not code

      if (op == s_future_) {
        // (future expr): wrap expr in a thunk; the runtime hook decides
        // whether it runs asynchronously.
        Value thunk = make_closure(
            ctx_.make_list(Value::object(ctx_.s_lambda), Value::nil(),
                           cadr(form)),
            env, "future-thunk");
        if (spawn_hook_) return spawn_hook_(*this, thunk);
        return apply(thunk, {});
      }
    }

    // ---- ordinary application -----------------------------------------
    Value fn = eval(head, env);
    std::vector<Value> args;
    gc_frame.set_call(&fn, &args);
    for (Value a = cdr(form); !a.is_nil(); a = cdr(a))
      args.push_back(eval(car(a), env));

    if (fn.is(Kind::Closure)) {
      // Tail call: rebind and continue the loop instead of recursing.
      apply_count_.fetch_add(1, std::memory_order_relaxed);
      auto* c = static_cast<Closure*>(fn.obj());
      if (obs::Profiler::armed()) {
        auto& prof = obs::Profiler::instance();
        if (tail_pf.pushed) {
          prof.note_tail_call(&c->name);
        } else {
          prof.push_frame(obs::Profiler::FrameKind::kFn, &c->name);
          tail_pf.pushed = true;
        }
      }
      env = bind_params(c, args);
      Value body = c->body;
      gc_frame.set_call(nullptr, nullptr);  // storage dies at `continue`
      if (body.is_nil()) return Value::nil();
      while (!cdr(body).is_nil()) {
        eval(car(body), env);
        body = cdr(body);
      }
      form = car(body);
      continue;
    }
    return apply(fn, args);
  }
}

Value Interp::eval_setf(Value form, const EnvPtr& env) {
  Value rest = cdr(form);
  Value v = Value::nil();
  while (!rest.is_nil()) {
    Value place = car(rest);
    v = eval(cadr(rest), env);
    setf_place(place, v, env);
    rest = cddr(rest);
  }
  return v;
}

Value Interp::setf_place(Value place, Value newval, const EnvPtr& env) {
  if (place.is(Kind::Symbol)) {
    env->set(static_cast<Symbol*>(place.obj()), newval);
    return newval;
  }
  if (!place.is(Kind::Cons))
    throw LispError("setf: invalid place " + sexpr::write_str(place));

  Symbol* acc = as_symbol(car(place));
  const std::string& name = acc->name;

  if (is_cxr_name(name)) {
    // (setf (cXYZr e) v): navigate the inner letters right-to-left,
    // then store through the first letter.
    Value obj = eval(cadr(place), env);
    for (std::size_t i = name.size() - 2; i >= 2; --i) {
      obj = (name[i] == 'a') ? car(obj) : cdr(obj);
    }
    Cons* cell = as_cons(obj);
    if (name[1] == 'a') {
      cell->set_car(newval);
    } else {
      cell->set_cdr(newval);
    }
    return newval;
  }

  if (name == "nth") {
    const std::int64_t n = as_int(eval(cadr(place), env));
    Value list = eval(caddr(place), env);
    for (std::int64_t i = 0; i < n; ++i) list = cdr(list);
    as_cons(list)->set_car(newval);
    return newval;
  }

  if (name == "gethash") {
    Value key = eval(cadr(place), env);
    Value tbl = eval(caddr(place), env);
    if (!tbl.is(Kind::Table)) throw LispError("setf gethash: not a table");
    static_cast<sexpr::Table*>(tbl.obj())->put(key, newval);
    return newval;
  }

  if (name == "aref") {
    Value vec = eval(cadr(place), env);
    const std::int64_t i = as_int(eval(caddr(place), env));
    auto* v = sexpr::as_vector(vec);
    if (i < 0 || static_cast<std::size_t>(i) >= v->items.size())
      throw LispError("setf aref: index out of range");
    v->items[static_cast<std::size_t>(i)] = newval;
    return newval;
  }

  // defstruct slot place: (setf (field inst) v).
  if (auto type = struct_type_of_field(acc)) {
    Value obj = eval(cadr(place), env);
    if (!obj.is(Kind::Struct) ||
        static_cast<Instance*>(obj.obj())->type != type) {
      throw LispError("setf " + name + ": argument is not a " +
                      type->name->name);
    }
    static_cast<Instance*>(obj.obj())->set(type->slot_index(acc), newval);
    return newval;
  }

  throw LispError("setf: unsupported place (" + name + " ...)");
}

// ---- numeric helpers ------------------------------------------------

std::int64_t as_int(Value v) {
  if (v.is_fixnum()) return v.as_fixnum();
  if (v.is(Kind::Float))
    return static_cast<std::int64_t>(
        static_cast<sexpr::Float*>(v.obj())->value);
  throw LispError("expected integer, got " + sexpr::write_str(v));
}

double as_number(Value v) {
  if (v.is_fixnum()) return static_cast<double>(v.as_fixnum());
  if (v.is(Kind::Float)) return static_cast<sexpr::Float*>(v.obj())->value;
  throw LispError("expected number, got " + sexpr::write_str(v));
}

bool is_number(Value v) { return v.is_fixnum() || v.is(Kind::Float); }

}  // namespace curare::lisp
