// Tree-walking evaluator for the Lisp subset Curare analyzes and runs.
//
// Design points that matter to the rest of the system:
//
//  * Tail calls are eliminated (the eval loop rebinds and continues
//    instead of recursing) for if/cond/when/unless/progn/let bodies and
//    closure calls in tail position. The recursion→iteration and DPS
//    transformations (paper §5) produce tail-recursive code, and the
//    interpreter makes that pay off with O(1) stack.
//
//  * The interpreter object is shared by every server thread of the CRI
//    runtime. All interpreter state that can be written during execution
//    (global env, output buffer, RNG) is internally synchronized; eval
//    itself is reentrant.
//
//  * `future` is a special form whose behaviour is pluggable: without a
//    spawn hook it evaluates eagerly (sequential semantics), with the
//    runtime's hook installed it creates a real asynchronous task
//    (Multilisp-style, paper §3.1). `touch` forces a future and is the
//    identity on non-futures.
//
//  * Output from print/princ goes to an internal buffer (optionally
//    echoed) so tests can assert final-state sequentializability: the
//    concurrent run of a transformed program must print what the
//    sequential run prints.
#pragma once

#include <functional>
#include <memory>
#include <mutex>
#include <random>
#include <shared_mutex>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "lisp/env.hpp"
#include "lisp/function.hpp"
#include "lisp/structs.hpp"
#include "sexpr/ctx.hpp"
#include "sexpr/value.hpp"

namespace curare::lisp {

using sexpr::Value;

class Interp : public gc::RootSource {
 public:
  explicit Interp(sexpr::Ctx& ctx);
  ~Interp() override;
  Interp(const Interp&) = delete;
  Interp& operator=(const Interp&) = delete;

  /// GC root source: the global environment. Closures reach their
  /// captured lexical frames from here; see DESIGN.md §9.
  void gc_roots(std::vector<Value>& out) override;

  sexpr::Ctx& ctx() { return ctx_; }
  const EnvPtr& global_env() const { return global_; }

  /// Evaluate one form in the given environment.
  Value eval(Value form, EnvPtr env);

  /// Evaluate one form in the global environment.
  Value eval_top(Value form) { return eval(form, global_); }

  /// Read and evaluate every form in `src`; returns the value of the
  /// last form (nil for empty source).
  Value eval_program(std::string_view src);

  /// Call a function value (closure or builtin) with arguments.
  Value apply(Value fn, std::span<const Value> args);

  /// Register a native function in the global environment.
  void define_builtin(std::string_view name, int min_args, int max_args,
                      BuiltinFn fn);

  /// Look up a global binding by name; nil if unbound.
  Value global(std::string_view name);

  // ---- output capture -------------------------------------------------
  void write_output(std::string_view s);
  std::string take_output();
  void set_echo(bool on) { echo_ = on; }

  // ---- deterministic RNG ----------------------------------------------
  void seed_rng(std::uint64_t seed);
  std::int64_t random_below(std::int64_t n);

  // ---- future/spawn hook (installed by the runtime module) ------------
  /// Receives the closure-of-no-arguments to run; returns the future
  /// Value the program sees.
  using SpawnHook = std::function<Value(Interp&, Value thunk)>;
  void set_spawn_hook(SpawnHook hook) { spawn_hook_ = std::move(hook); }
  /// Force hook: given a possible future object, return its value.
  using TouchHook = std::function<Value(Interp&, Value maybe_future)>;
  void set_touch_hook(TouchHook hook) { touch_hook_ = std::move(hook); }

  /// Force a future value via the installed touch hook; identity on
  /// ordinary values or when no hook is installed (sequential mode).
  Value force_future(Value v) {
    return touch_hook_ ? touch_hook_(*this, v) : v;
  }

  /// Maximum non-tail eval nesting before a LispError (guards the C++
  /// stack against runaway recursion in user programs).
  void set_max_depth(std::size_t d) { max_depth_ = d; }
  std::size_t max_depth() const { return max_depth_; }

  // ---- compiled-apply hook (installed by the VM engine) ---------------
  /// Tried first for every closure application routed through apply():
  /// return true with *out filled to take the call (compiled
  /// execution), false to fall through to the tree-walking path
  /// (uncompilable closure). Install before any concurrent evaluation
  /// starts — the hook itself is not synchronized.
  using CompiledApplyHook =
      std::function<bool(Interp&, Value fn, std::span<const Value> args,
                         Value* out)>;
  void set_compiled_apply_hook(CompiledApplyHook hook) {
    compiled_apply_ = std::move(hook);
  }

  /// Count one application performed outside apply() (the VM's call
  /// opcodes), keeping apply_count a comparable work measure across
  /// engines.
  void count_apply() {
    apply_count_.fetch_add(1, std::memory_order_relaxed);
  }

  /// Number of closure applications performed (rough work measure used
  /// by tests and benches).
  std::uint64_t apply_count() const {
    return apply_count_.load(std::memory_order_relaxed);
  }

  // ---- defstruct types -------------------------------------------------
  /// The registered struct type named `name`, or nullptr.
  std::shared_ptr<const StructType> struct_type(sexpr::Symbol* name) const;
  /// The struct type that has a field (= accessor) named `field`, or
  /// nullptr (the paper's unique-accessor-name model: a field name
  /// belongs to at most one structure).
  std::shared_ptr<const StructType> struct_type_of_field(
      sexpr::Symbol* field) const;
  /// All registered struct types, for the driver's declaration scan.
  std::vector<std::shared_ptr<const StructType>> struct_types() const;

 private:
  friend struct BuiltinRegistrar;

  Value eval_body_tail(Value body, EnvPtr& env, Value& form_out,
                       bool& continue_loop);
  EnvPtr bind_params(const Closure* c, std::span<const Value> args);
  Value eval_setf(Value form, const EnvPtr& env);
  Value setf_place(Value place, Value newval, const EnvPtr& env);
  Value make_closure(Value lambda_form, const EnvPtr& env,
                     std::string name);
  Value eval_defstruct(Value form);

  sexpr::Ctx& ctx_;
  gc::GcHeap& gc_;
  EnvPtr global_;

  // Cached special-form symbols not already in Ctx.
  sexpr::Symbol* const s_future_;
  sexpr::Symbol* const s_defmacro_unsupported_;
  sexpr::Symbol* const s_defstruct_;
  sexpr::Symbol* const s_incf_;
  sexpr::Symbol* const s_decf_;
  sexpr::Symbol* const s_push_;
  sexpr::Symbol* const s_pop_;

  mutable std::shared_mutex structs_mu_;
  std::unordered_map<sexpr::Symbol*, std::shared_ptr<const StructType>>
      struct_types_;
  std::unordered_map<sexpr::Symbol*, std::shared_ptr<const StructType>>
      field_index_;

  SpawnHook spawn_hook_;
  TouchHook touch_hook_;
  CompiledApplyHook compiled_apply_;

  std::mutex out_mu_;
  std::string out_;
  bool echo_ = false;

  std::mutex rng_mu_;
  std::mt19937_64 rng_{0xC0FFEE};

  std::size_t max_depth_ = 20000;
  static thread_local std::size_t depth_;
  std::atomic<std::uint64_t> apply_count_{0};
};

/// Registers the standard builtin library (car/cdr/cons, arithmetic,
/// predicates, list utilities, hashtables, printing). Called by the
/// Interp constructor; split out so the list lives in builtins.cpp.
void install_builtins(Interp& interp);

// Numeric helpers shared by builtins and the runtime.
std::int64_t as_int(Value v);
double as_number(Value v);
bool is_number(Value v);

}  // namespace curare::lisp
