// Function objects: user closures and native builtins.
//
// Both are heap objects (sexpr::Obj) so a Value can hold them; `defun`
// binds the function object to its name in the global environment (this
// Lisp is a Lisp-1: one namespace for functions and variables, which is
// all the paper's examples need).
#pragma once

#include <atomic>
#include <functional>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "lisp/env.hpp"
#include "sexpr/value.hpp"

namespace curare::lisp {

class Interp;

/// Opaque compiled-code attachment for a Closure. The bytecode VM
/// (src/vm/) derives its CodeObject from this so a Closure can cache
/// its compiled body without the lisp module depending on the VM. The
/// collector calls gc_trace (world stopped) so the code's constant
/// pool stays live exactly as long as the function does.
struct CodeBlob {
  virtual ~CodeBlob() = default;
  virtual void gc_trace(sexpr::GcVisitor& g) const = 0;
};

/// User-defined function. `params` are required positional parameters;
/// `rest` (may be null) collects extras as a list, per &rest.
struct Closure final : sexpr::Obj {
  /// Lazy-compile states for `code_state`.
  static constexpr int kCodeUnknown = 0;   ///< not yet attempted
  static constexpr int kCodeReady = 1;     ///< `code` valid, immutable
  static constexpr int kCodeRefused = 2;   ///< compiler refused; tree-walk

  Closure(std::string name_, std::vector<Symbol*> params_, Symbol* rest_,
          Value body_, EnvPtr env_)
      : Obj(sexpr::Kind::Closure),
        name(std::move(name_)),
        params(std::move(params_)),
        rest(rest_),
        body(body_),
        env(std::move(env_)) {}

  void gc_trace(sexpr::GcVisitor& g) const override {
    g.visit(body);
    // Compiled constants can reference structure not reachable from the
    // body form (none today — the compiler only aliases body subtrees —
    // but the invariant belongs here, not in the compiler).
    if (code_state.load(std::memory_order_acquire) == kCodeReady)
      code->gc_trace(g);
    // Captured frames are shared by every closure made under them;
    // enter_region dedups the walk within one collection. Parameter
    // symbols are pinned by the SymbolTable and need no visit.
    for (const Env* e = env.get(); e != nullptr; e = e->parent().get()) {
      if (!g.enter_region(e)) break;
      e->for_each_binding([&](Value v) { g.visit(v); });
    }
  }

  const std::string name;  ///< "" for anonymous lambdas
  const std::vector<Symbol*> params;
  Symbol* const rest;
  const Value body;  ///< list of body forms
  const EnvPtr env;  ///< captured lexical environment

  /// One-shot compiled-code cache, filled by the VM on first call.
  /// Readers load code_state acquire and touch `code` only on
  /// kCodeReady; writers publish under code_mu with a release store of
  /// the state, so concurrent first calls race benignly.
  mutable std::atomic<int> code_state{kCodeUnknown};
  mutable std::shared_ptr<const CodeBlob> code;
  mutable std::mutex code_mu;
};

using BuiltinFn = std::function<Value(Interp&, std::span<const Value>)>;

struct Builtin final : sexpr::Obj {
  Builtin(std::string name_, int min_args_, int max_args_, BuiltinFn fn_)
      : Obj(sexpr::Kind::Builtin),
        name(std::move(name_)),
        min_args(min_args_),
        max_args(max_args_),
        fn(std::move(fn_)) {}

  const std::string name;
  const int min_args;
  const int max_args;  ///< -1 for variadic
  const BuiltinFn fn;
};

}  // namespace curare::lisp
