// Function objects: user closures and native builtins.
//
// Both are heap objects (sexpr::Obj) so a Value can hold them; `defun`
// binds the function object to its name in the global environment (this
// Lisp is a Lisp-1: one namespace for functions and variables, which is
// all the paper's examples need).
#pragma once

#include <functional>
#include <span>
#include <string>
#include <vector>

#include "lisp/env.hpp"
#include "sexpr/value.hpp"

namespace curare::lisp {

class Interp;

/// User-defined function. `params` are required positional parameters;
/// `rest` (may be null) collects extras as a list, per &rest.
struct Closure final : sexpr::Obj {
  Closure(std::string name_, std::vector<Symbol*> params_, Symbol* rest_,
          Value body_, EnvPtr env_)
      : Obj(sexpr::Kind::Closure),
        name(std::move(name_)),
        params(std::move(params_)),
        rest(rest_),
        body(body_),
        env(std::move(env_)) {}

  void gc_trace(sexpr::GcVisitor& g) const override {
    g.visit(body);
    // Captured frames are shared by every closure made under them;
    // enter_region dedups the walk within one collection. Parameter
    // symbols are pinned by the SymbolTable and need no visit.
    for (const Env* e = env.get(); e != nullptr; e = e->parent().get()) {
      if (!g.enter_region(e)) break;
      e->for_each_binding([&](Value v) { g.visit(v); });
    }
  }

  const std::string name;  ///< "" for anonymous lambdas
  const std::vector<Symbol*> params;
  Symbol* const rest;
  const Value body;  ///< list of body forms
  const EnvPtr env;  ///< captured lexical environment
};

using BuiltinFn = std::function<Value(Interp&, std::span<const Value>)>;

struct Builtin final : sexpr::Obj {
  Builtin(std::string name_, int min_args_, int max_args_, BuiltinFn fn_)
      : Obj(sexpr::Kind::Builtin),
        name(std::move(name_)),
        min_args(min_args_),
        max_args(max_args_),
        fn(std::move(fn_)) {}

  const std::string name;
  const int min_args;
  const int max_args;  ///< -1 for variadic
  const BuiltinFn fn;
};

}  // namespace curare::lisp
