// defstruct-style record types (paper §2: "these objects are a
// contiguous block of memory with named fields, for example list-cells
// or structures produced by defstruct").
//
// Syntax mirrors the declaration grammar so one form feeds both the
// runtime and the analyzer:
//
//   (defstruct node (pointers next prev) (data val))
//
// defines:
//   (make-node)                         — all slots nil
//   (make-node 'next x 'val 3)          — plist initialization
//   (next n) (prev n) (val n)           — slot accessors; field names ARE
//                                         the accessor names, matching the
//                                         paper's unique-accessor model
//   (setf (next n) v)                   — slot assignment
//   (node-p x)                          — type predicate
//
// Slots are atomic words (like cons cells): unsynchronized concurrent
// access never tears; ordering is the transformed program's job.
#pragma once

#include <atomic>
#include <memory>
#include <vector>

#include "sexpr/value.hpp"

namespace curare::lisp {

/// Shared descriptor of one struct type.
struct StructType {
  sexpr::Symbol* name = nullptr;
  std::vector<sexpr::Symbol*> pointer_fields;
  std::vector<sexpr::Symbol*> data_fields;

  /// All fields, pointers first (slot order).
  std::vector<sexpr::Symbol*> all_fields() const {
    std::vector<sexpr::Symbol*> v = pointer_fields;
    v.insert(v.end(), data_fields.begin(), data_fields.end());
    return v;
  }

  int slot_index(sexpr::Symbol* field) const {
    int i = 0;
    for (sexpr::Symbol* f : pointer_fields) {
      if (f == field) return i;
      ++i;
    }
    for (sexpr::Symbol* f : data_fields) {
      if (f == field) return i;
      ++i;
    }
    return -1;
  }

  std::size_t slot_count() const {
    return pointer_fields.size() + data_fields.size();
  }
};

/// A struct instance (Kind::Struct heap object).
struct Instance final : sexpr::Obj {
  Instance(std::shared_ptr<const StructType> t)
      : Obj(sexpr::Kind::Struct),
        type(std::move(t)),
        slots(type->slot_count()) {
    for (auto& s : slots) s.store(0, std::memory_order_relaxed);
  }

  sexpr::Value get(int slot) const {
    return sexpr::Value::from_bits(
        slots[static_cast<std::size_t>(slot)].load(
            std::memory_order_relaxed));
  }
  void set(int slot, sexpr::Value v) {
    slots[static_cast<std::size_t>(slot)].store(
        v.bits(), std::memory_order_relaxed);
  }

  void gc_trace(sexpr::GcVisitor& g) const override {
    for (std::size_t i = 0; i < slots.size(); ++i)
      g.visit(get(static_cast<int>(i)));
  }

  const std::shared_ptr<const StructType> type;
  std::vector<std::atomic<std::uint64_t>> slots;
};

}  // namespace curare::lisp
