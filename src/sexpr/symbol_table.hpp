// Symbol interning.
//
// Lisp symbols compare by identity (`eq`), so the reader must hand out the
// same Symbol object for the same spelling. The table is shared by every
// thread in the CRI runtime — analysis and transformed programs intern
// symbols concurrently — so lookup takes a shared lock and only a genuine
// first-time intern takes the exclusive lock.
#pragma once

#include <shared_mutex>
#include <string>
#include <vector>
#include <string_view>
#include <unordered_map>

#include "gc/gc.hpp"
#include "sexpr/heap.hpp"
#include "sexpr/value.hpp"

namespace curare::sexpr {

/// Interned symbols are GC roots: a Symbol* held in C++ maps (analysis
/// summaries, declarations, struct types) must never dangle, so the
/// table pins every symbol it ever handed out for its own lifetime.
class SymbolTable : public gc::RootSource {
 public:
  explicit SymbolTable(Heap& heap) : heap_(heap) {
    heap_.gc().add_root_source(this);
  }
  ~SymbolTable() override { heap_.gc().remove_root_source(this); }
  SymbolTable(const SymbolTable&) = delete;
  SymbolTable& operator=(const SymbolTable&) = delete;

  void gc_roots(std::vector<Value>& out) override {
    std::shared_lock lock(mu_);
    for (const auto& [name, sym] : map_) out.push_back(Value::object(sym));
  }

  /// Return the unique Symbol for `name`, creating it on first use.
  Symbol* intern(std::string_view name) {
    {
      std::shared_lock lock(mu_);
      auto it = map_.find(std::string(name));
      if (it != map_.end()) return it->second;
    }
    std::unique_lock lock(mu_);
    auto [it, inserted] = map_.try_emplace(std::string(name), nullptr);
    if (inserted) it->second = heap_.alloc<Symbol>(std::string(name));
    return it->second;
  }

  Value intern_value(std::string_view name) {
    return Value::object(intern(name));
  }

  /// Generate a fresh uninterned-looking symbol (gensym). The name is
  /// unique for the lifetime of this table.
  Symbol* gensym(std::string_view prefix = "g");

  std::size_t size() const {
    std::shared_lock lock(mu_);
    return map_.size();
  }

 private:
  Heap& heap_;
  mutable std::shared_mutex mu_;
  std::unordered_map<std::string, Symbol*> map_;
  std::atomic<std::uint64_t> gensym_counter_{0};
};

}  // namespace curare::sexpr
