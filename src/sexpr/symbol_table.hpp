// Symbol interning.
//
// Lisp symbols compare by identity (`eq`), so the reader must hand out the
// same Symbol object for the same spelling. The table is shared by every
// thread in the CRI runtime — analysis and transformed programs intern
// symbols concurrently — so lookup takes a shared lock and only a genuine
// first-time intern takes the exclusive lock.
#pragma once

#include <shared_mutex>
#include <string>
#include <string_view>
#include <unordered_map>

#include "sexpr/heap.hpp"
#include "sexpr/value.hpp"

namespace curare::sexpr {

class SymbolTable {
 public:
  explicit SymbolTable(Heap& heap) : heap_(heap) {}
  SymbolTable(const SymbolTable&) = delete;
  SymbolTable& operator=(const SymbolTable&) = delete;

  /// Return the unique Symbol for `name`, creating it on first use.
  Symbol* intern(std::string_view name) {
    {
      std::shared_lock lock(mu_);
      auto it = map_.find(std::string(name));
      if (it != map_.end()) return it->second;
    }
    std::unique_lock lock(mu_);
    auto [it, inserted] = map_.try_emplace(std::string(name), nullptr);
    if (inserted) it->second = heap_.alloc<Symbol>(std::string(name));
    return it->second;
  }

  Value intern_value(std::string_view name) {
    return Value::object(intern(name));
  }

  /// Generate a fresh uninterned-looking symbol (gensym). The name is
  /// unique for the lifetime of this table.
  Symbol* gensym(std::string_view prefix = "g");

  std::size_t size() const {
    std::shared_lock lock(mu_);
    return map_.size();
  }

 private:
  Heap& heap_;
  mutable std::shared_mutex mu_;
  std::unordered_map<std::string, Symbol*> map_;
  std::atomic<std::uint64_t> gensym_counter_{0};
};

}  // namespace curare::sexpr
