#include "sexpr/printer.hpp"

#include <sstream>

namespace curare::sexpr {

namespace {

struct Printer {
  const PrintOptions& opts;
  std::ostringstream out;
  std::size_t budget;

  explicit Printer(const PrintOptions& o)
      : opts(o), budget(o.max_length) {}

  void print(Value v, std::size_t depth) {
    if (depth > opts.max_depth || budget == 0) {
      out << "...";
      return;
    }
    if (v.is_nil()) {
      out << "nil";
      return;
    }
    if (v.is_fixnum()) {
      out << v.as_fixnum();
      return;
    }
    switch (v.obj()->kind) {
      case Kind::Cons: print_list(v, depth); break;
      case Kind::Symbol: out << static_cast<Symbol*>(v.obj())->name; break;
      case Kind::String: print_string(static_cast<String*>(v.obj())); break;
      case Kind::Float: print_float(static_cast<Float*>(v.obj())); break;
      case Kind::Vector: print_vector(static_cast<Vector*>(v.obj()), depth); break;
      case Kind::Table: out << "#<hash-table>"; break;
      case Kind::Closure: out << "#<closure>"; break;
      case Kind::Builtin: out << "#<builtin>"; break;
      case Kind::Native: out << "#<native>"; break;
      case Kind::Struct: out << "#<struct>"; break;
    }
  }

  void print_list(Value v, std::size_t depth) {
    out << '(';
    bool first = true;
    while (v.is(Kind::Cons)) {
      if (budget == 0) {
        out << " ...";
        break;
      }
      --budget;
      if (!first) out << ' ';
      first = false;
      auto* cell = static_cast<Cons*>(v.obj());
      print(cell->car(), depth + 1);
      v = cell->cdr();
    }
    if (!v.is_nil() && !v.is(Kind::Cons)) {
      out << " . ";
      print(v, depth + 1);
    }
    out << ')';
  }

  void print_string(const String* s) {
    if (!opts.readably) {
      out << s->text;
      return;
    }
    out << '"';
    for (char c : s->text) {
      switch (c) {
        case '"': out << "\\\""; break;
        case '\\': out << "\\\\"; break;
        case '\n': out << "\\n"; break;
        case '\t': out << "\\t"; break;
        default: out << c;
      }
    }
    out << '"';
  }

  void print_float(const Float* f) {
    std::ostringstream tmp;
    tmp << f->value;
    std::string t = tmp.str();
    // Ensure floats read back as floats, not fixnums.
    if (t.find('.') == std::string::npos &&
        t.find('e') == std::string::npos &&
        t.find("inf") == std::string::npos &&
        t.find("nan") == std::string::npos) {
      t += ".0";
    }
    out << t;
  }

  void print_vector(const Vector* vec, std::size_t depth) {
    out << "#(";
    for (std::size_t i = 0; i < vec->items.size(); ++i) {
      if (budget == 0) {
        out << " ...";
        break;
      }
      --budget;
      if (i) out << ' ';
      print(vec->items[i], depth + 1);
    }
    out << ')';
  }
};

}  // namespace

std::string print_str(Value v, const PrintOptions& opts) {
  Printer p(opts);
  p.print(v, 0);
  return std::move(p.out).str();
}

}  // namespace curare::sexpr
