#include "sexpr/equal.hpp"

namespace curare::sexpr {

bool eql(Value a, Value b) {
  if (a == b) return true;
  if (a.is(Kind::Float) && b.is(Kind::Float)) {
    return static_cast<Float*>(a.obj())->value ==
           static_cast<Float*>(b.obj())->value;
  }
  return false;
}

bool equal_values(Value a, Value b, std::size_t depth_budget) {
  if (depth_budget == 0) return false;
  if (eql(a, b)) return true;
  if (!a.is_object() || !b.is_object()) return false;
  if (a.obj()->kind != b.obj()->kind) return false;
  switch (a.obj()->kind) {
    case Kind::Cons: {
      // Iterate on cdr to keep recursion depth proportional to tree
      // depth, not list length.
      while (a.is(Kind::Cons) && b.is(Kind::Cons)) {
        if (depth_budget-- == 0) return false;
        auto* ca = static_cast<Cons*>(a.obj());
        auto* cb = static_cast<Cons*>(b.obj());
        if (!equal_values(ca->car(), cb->car(), depth_budget)) return false;
        a = ca->cdr();
        b = cb->cdr();
      }
      return equal_values(a, b, depth_budget);
    }
    case Kind::String:
      return static_cast<String*>(a.obj())->text ==
             static_cast<String*>(b.obj())->text;
    case Kind::Vector: {
      auto* va = static_cast<Vector*>(a.obj());
      auto* vb = static_cast<Vector*>(b.obj());
      if (va->items.size() != vb->items.size()) return false;
      for (std::size_t i = 0; i < va->items.size(); ++i) {
        if (!equal_values(va->items[i], vb->items[i], depth_budget - 1))
          return false;
      }
      return true;
    }
    default:
      return false;  // identity already failed
  }
}

}  // namespace curare::sexpr
