#include "sexpr/value.hpp"

namespace curare::sexpr {

namespace {
[[noreturn]] void type_error(const char* want, Value got) {
  std::string msg = "type error: expected ";
  msg += want;
  if (got.is_nil()) {
    msg += ", got nil";
  } else if (got.is_fixnum()) {
    msg += ", got fixnum " + std::to_string(got.as_fixnum());
  } else {
    switch (got.obj()->kind) {
      case Kind::Cons: msg += ", got cons"; break;
      case Kind::Symbol:
        msg += ", got symbol " + static_cast<Symbol*>(got.obj())->name;
        break;
      case Kind::String: msg += ", got string"; break;
      case Kind::Float: msg += ", got float"; break;
      case Kind::Vector: msg += ", got vector"; break;
      case Kind::Table: msg += ", got hash-table"; break;
      case Kind::Closure: msg += ", got closure"; break;
      case Kind::Builtin: msg += ", got builtin"; break;
      case Kind::Native: msg += ", got native object"; break;
      case Kind::Struct: msg += ", got struct instance"; break;
    }
  }
  throw LispError(msg);
}
}  // namespace

Cons* as_cons(Value v) {
  if (!v.is(Kind::Cons)) type_error("cons", v);
  return static_cast<Cons*>(v.obj());
}

Symbol* as_symbol(Value v) {
  if (!v.is(Kind::Symbol)) type_error("symbol", v);
  return static_cast<Symbol*>(v.obj());
}

String* as_string(Value v) {
  if (!v.is(Kind::String)) type_error("string", v);
  return static_cast<String*>(v.obj());
}

Vector* as_vector(Value v) {
  if (!v.is(Kind::Vector)) type_error("vector", v);
  return static_cast<Vector*>(v.obj());
}

Value car(Value v) {
  if (v.is_nil()) return Value::nil();
  return as_cons(v)->car();
}

Value cdr(Value v) {
  if (v.is_nil()) return Value::nil();
  return as_cons(v)->cdr();
}

std::size_t list_length(Value v) {
  std::size_t n = 0;
  while (!v.is_nil()) {
    if (!v.is(Kind::Cons)) throw LispError("list-length: improper list");
    ++n;
    v = static_cast<Cons*>(v.obj())->cdr();
  }
  return n;
}

bool is_proper_list(Value v, std::size_t limit) {
  std::size_t n = 0;
  while (!v.is_nil()) {
    if (!v.is(Kind::Cons)) return false;
    if (++n > limit) return false;
    v = static_cast<Cons*>(v.obj())->cdr();
  }
  return true;
}

}  // namespace curare::sexpr
