// Lisp equality predicates.
//
//   eq    — identity (same word). Value::operator== already is eq.
//   eql   — eq, or numbers of the same type with the same value.
//   equal — structural equality on conses, strings, vectors; eql leaves.
//
// `equal_values` is depth-bounded so cyclic structures terminate (they
// compare unequal once the budget runs out rather than hanging the
// analyzer).
#pragma once

#include "sexpr/value.hpp"

namespace curare::sexpr {

inline bool eq(Value a, Value b) { return a == b; }

bool eql(Value a, Value b);

bool equal_values(Value a, Value b, std::size_t depth_budget = 1u << 16);

}  // namespace curare::sexpr
