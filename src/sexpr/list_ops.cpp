#include "sexpr/list_ops.hpp"

namespace curare::sexpr {

std::vector<Value> list_to_vector(Value list) {
  std::vector<Value> out;
  while (!list.is_nil()) {
    Cons* c = as_cons(list);
    out.push_back(c->car());
    list = c->cdr();
  }
  return out;
}

Value nth(Value list, std::size_t n) {
  while (n-- > 0 && !list.is_nil()) list = cdr(list);
  return car(list);
}

Value append2(Heap& heap, Value a, Value b) {
  std::vector<Value> items = list_to_vector(a);
  Value acc = b;
  for (auto it = items.rbegin(); it != items.rend(); ++it)
    acc = heap.cons(*it, acc);
  return acc;
}

Value reverse_list(Heap& heap, Value list) {
  Value acc = Value::nil();
  while (!list.is_nil()) {
    Cons* c = as_cons(list);
    acc = heap.cons(c->car(), acc);
    list = c->cdr();
  }
  return acc;
}

Value map_list(Heap& heap, Value list,
               const std::function<Value(Value)>& f) {
  std::vector<Value> out;
  while (!list.is_nil()) {
    Cons* c = as_cons(list);
    out.push_back(f(c->car()));
    list = c->cdr();
  }
  return heap.list(out);
}

Value member_eq(Value item, Value list) {
  while (!list.is_nil()) {
    Cons* c = as_cons(list);
    if (c->car() == item) return list;
    list = c->cdr();
  }
  return Value::nil();
}

Value assoc_eq(Value key, Value alist) {
  while (!alist.is_nil()) {
    Cons* c = as_cons(alist);
    Value entry = c->car();
    if (entry.is(Kind::Cons) &&
        static_cast<Cons*>(entry.obj())->car() == key) {
      return entry;
    }
    alist = c->cdr();
  }
  return Value::nil();
}

Value copy_tree(Heap& heap, Value v) {
  if (!v.is(Kind::Cons)) return v;
  Cons* c = static_cast<Cons*>(v.obj());
  return heap.cons(copy_tree(heap, c->car()), copy_tree(heap, c->cdr()));
}

}  // namespace curare::sexpr
