// Hash table object (Kind::Table).
//
// The paper's §3.2.3 singles out "operations that put a value into an
// unordered data-structure" — hashtables foremost — as reorderable: the
// insertion order does not matter, so conflict constraints between
// concurrent puts can be dropped. For that to be sound the table itself
// must be atomic per-operation, so this implementation synchronizes
// internally with a shared_mutex (many concurrent readers, exclusive
// writers). Key equality is Lisp `eql`.
#pragma once

#include <optional>
#include <shared_mutex>
#include <unordered_map>
#include <vector>

#include "sexpr/equal.hpp"
#include "sexpr/value.hpp"

namespace curare::sexpr {

struct ValueEqlHash {
  std::size_t operator()(Value v) const {
    if (v.is(Kind::Float)) {
      return std::hash<double>{}(static_cast<Float*>(v.obj())->value);
    }
    return std::hash<std::uint64_t>{}(v.bits());
  }
};

struct ValueEqlEq {
  bool operator()(Value a, Value b) const { return eql(a, b); }
};

struct Table final : Obj {
  Table() : Obj(Kind::Table) {}

  Value get(Value key, Value dflt) const {
    std::shared_lock lock(mu);
    auto it = map.find(key);
    return it == map.end() ? dflt : it->second;
  }

  void put(Value key, Value val) {
    std::unique_lock lock(mu);
    map[key] = val;
  }

  bool remove(Value key) {
    std::unique_lock lock(mu);
    return map.erase(key) > 0;
  }

  std::size_t size() const {
    std::shared_lock lock(mu);
    return map.size();
  }

  /// Snapshot of entries, in unspecified order.
  std::vector<std::pair<Value, Value>> entries() const {
    std::shared_lock lock(mu);
    return {map.begin(), map.end()};
  }

  void gc_trace(GcVisitor& g) const override {
    std::shared_lock lock(mu);
    for (const auto& [k, v] : map) {
      g.visit(k);
      g.visit(v);
    }
  }

  mutable std::shared_mutex mu;
  std::unordered_map<Value, Value, ValueEqlHash, ValueEqlEq> map;
};

}  // namespace curare::sexpr
