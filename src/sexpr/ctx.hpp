// Shared allocation context: one heap + one symbol table, plus the
// well-known symbols the reader, evaluator, and transformer all need.
// Every component in the system holds a reference to one Ctx; tests create
// a fresh Ctx each so they are hermetic.
#pragma once

#include "sexpr/heap.hpp"
#include "sexpr/symbol_table.hpp"
#include "sexpr/value.hpp"

namespace curare::sexpr {

struct Ctx {
  Ctx()
      : symbols(heap),
        s_quote(symbols.intern("quote")),
        s_t(symbols.intern("t")),
        s_nil(symbols.intern("nil")),
        s_lambda(symbols.intern("lambda")),
        s_defun(symbols.intern("defun")),
        s_setf(symbols.intern("setf")),
        s_setq(symbols.intern("setq")),
        s_if(symbols.intern("if")),
        s_cond(symbols.intern("cond")),
        s_when(symbols.intern("when")),
        s_unless(symbols.intern("unless")),
        s_let(symbols.intern("let")),
        s_let_star(symbols.intern("let*")),
        s_progn(symbols.intern("progn")),
        s_and(symbols.intern("and")),
        s_or(symbols.intern("or")),
        s_while(symbols.intern("while")),
        s_dotimes(symbols.intern("dotimes")),
        s_dolist(symbols.intern("dolist")),
        s_rest(symbols.intern("&rest")),
        s_optional(symbols.intern("&optional")),
        s_declare(symbols.intern("declare")),
        s_car(symbols.intern("car")),
        s_cdr(symbols.intern("cdr")) {}

  Ctx(const Ctx&) = delete;
  Ctx& operator=(const Ctx&) = delete;

  Value cons(Value a, Value d) { return heap.cons(a, d); }
  Value sym(std::string_view name) { return symbols.intern_value(name); }
  Value list(const std::vector<Value>& items) { return heap.list(items); }
  Value str(std::string s) { return heap.string(std::move(s)); }
  Value real(double d) { return heap.real(d); }
  static Value num(std::int64_t n) { return Value::fixnum(n); }

  /// Convenience variadic list builder.
  template <typename... Vs>
  Value make_list(Vs... vs) {
    return heap.list(std::vector<Value>{vs...});
  }

  Heap heap;
  SymbolTable symbols;

  Symbol* const s_quote;
  Symbol* const s_t;
  Symbol* const s_nil;
  Symbol* const s_lambda;
  Symbol* const s_defun;
  Symbol* const s_setf;
  Symbol* const s_setq;
  Symbol* const s_if;
  Symbol* const s_cond;
  Symbol* const s_when;
  Symbol* const s_unless;
  Symbol* const s_let;
  Symbol* const s_let_star;
  Symbol* const s_progn;
  Symbol* const s_and;
  Symbol* const s_or;
  Symbol* const s_while;
  Symbol* const s_dotimes;
  Symbol* const s_dolist;
  Symbol* const s_rest;
  Symbol* const s_optional;
  Symbol* const s_declare;
  Symbol* const s_car;
  Symbol* const s_cdr;
};

}  // namespace curare::sexpr
