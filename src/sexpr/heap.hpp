// Sharded object heap.
//
// The CRI server pool allocates cons cells from many threads at once
// (every spawned invocation builds argument lists, DPS functions cons
// result cells). A single global free-list would serialize the very
// parallelism Curare creates, so the heap is split into shards; a thread
// hashes its id to a shard and contends only with threads that landed on
// the same shard.
//
// There is no garbage collector: objects live until the Heap is destroyed.
// Programs under transformation and benchmarking are bounded, and this
// mirrors the paper's focus — Curare is about restructuring, not storage
// management. The trade-off is documented in DESIGN.md.
#pragma once

#include <array>
#include <cstddef>
#include <memory>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "sexpr/value.hpp"

namespace curare::sexpr {

class Heap {
 public:
  Heap() = default;
  Heap(const Heap&) = delete;
  Heap& operator=(const Heap&) = delete;

  /// Allocate a heap object of type T (derived from Obj), forwarding
  /// constructor arguments. Thread-safe.
  template <typename T, typename... Args>
  T* alloc(Args&&... args) {
    static_assert(std::is_base_of_v<Obj, T>, "T must derive from Obj");
    auto owned = std::make_unique<T>(std::forward<Args>(args)...);
    T* raw = owned.get();
    Shard& s = shard_for_this_thread();
    {
      std::lock_guard<std::mutex> g(s.mu);
      s.objects.push_back(std::move(owned));
    }
    return raw;
  }

  Value cons(Value car, Value cdr) {
    return Value::object(alloc<Cons>(car, cdr));
  }

  Value string(std::string s) {
    return Value::object(alloc<String>(std::move(s)));
  }

  Value real(double d) { return Value::object(alloc<Float>(d)); }

  /// Build a proper list from a vector of values.
  Value list(const std::vector<Value>& items) {
    Value acc = Value::nil();
    for (auto it = items.rbegin(); it != items.rend(); ++it)
      acc = cons(*it, acc);
    return acc;
  }

  /// Total number of live objects (approximate while threads allocate).
  std::size_t live_objects() const {
    std::size_t n = 0;
    for (const Shard& s : shards_) {
      std::lock_guard<std::mutex> g(s.mu);
      n += s.objects.size();
    }
    return n;
  }

 private:
  static constexpr std::size_t kShards = 64;

  struct Shard {
    mutable std::mutex mu;
    std::vector<std::unique_ptr<Obj>> objects;
  };

  Shard& shard_for_this_thread() {
    const std::size_t h =
        std::hash<std::thread::id>{}(std::this_thread::get_id());
    return shards_[h % kShards];
  }

  std::array<Shard, kShards> shards_;
};

}  // namespace curare::sexpr
