// Object heap: a thin facade over the gc module's per-thread
// bump-pointer allocator and quiescent-point mark-sweep collector.
//
// The CRI server pool allocates cons cells from many threads at once
// (every spawned invocation builds argument lists, DPS functions cons
// result cells). The seed design locked a shard per allocation; now
// each thread carves cells out of its own 64 KiB bump block and touches
// shared state only on refill, so `cons`/`string`/`real` are lock-free
// in the common case.
//
// Objects are garbage-collected: a stop-the-world parallel mark-sweep
// pass runs at quiescent points (between CRI tasks, between top-level
// evaluations — see src/gc/gc.hpp for the protocol and DESIGN.md §9
// for the root-set inventory). C++ embedders holding Values across a
// possible collection point root them with gc::RootScope or keep a
// gc::MutatorScope open.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "gc/gc.hpp"
#include "sexpr/value.hpp"

namespace curare::sexpr {

class Heap {
 public:
  Heap() = default;
  Heap(const Heap&) = delete;
  Heap& operator=(const Heap&) = delete;

  /// Allocate a heap object of type T (derived from Obj), forwarding
  /// constructor arguments. Thread-safe, lock-free unless the calling
  /// thread's bump block is full.
  template <typename T, typename... Args>
  T* alloc(Args&&... args) {
    return gc_.make<T>(std::forward<Args>(args)...);
  }

  Value cons(Value car, Value cdr) {
    return Value::object(alloc<Cons>(car, cdr));
  }

  Value string(std::string s) {
    return Value::object(alloc<String>(std::move(s)));
  }

  Value real(double d) { return Value::object(alloc<Float>(d)); }

  /// Build a proper list from a vector of values.
  Value list(const std::vector<Value>& items) {
    gc::MutatorScope ms(gc_);  // keep the partial spine collectible-proof
    Value acc = Value::nil();
    for (auto it = items.rbegin(); it != items.rend(); ++it)
      acc = cons(*it, acc);
    return acc;
  }

  /// Exact count of live objects, backed by per-thread atomic counters
  /// (no heap scan). Exact whenever no allocation is concurrently in
  /// flight — always at quiescent points and after joining workers.
  std::size_t live_objects() const {
    return static_cast<std::size_t>(gc_.live_objects());
  }

  /// The memory manager: collection triggers, root registration,
  /// safepoints, stats. See gc::GcHeap.
  gc::GcHeap& gc() { return gc_; }
  const gc::GcHeap& gc() const { return gc_; }

 private:
  gc::GcHeap gc_;
};

}  // namespace curare::sexpr
