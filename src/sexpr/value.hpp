// Tagged Lisp value representation.
//
// A Value is a single machine word. The low bit distinguishes fixnums
// (immediate 63-bit signed integers) from heap references; the all-zero
// word is nil, which doubles as the empty list and boolean false, as in
// classic Lisp. Heap objects are 8-byte aligned, so untagged words with a
// nonzero payload are direct `Obj*` pointers.
//
// This module is the substrate everything else builds on: the analyzer
// reads programs as S-expressions, the interpreter evaluates them, and the
// CRI runtime mutates cons cells from many threads. Cons car/cdr slots are
// therefore atomic words (relaxed ordering): the paper's execution model
// says the *program* must synchronize conflicting accesses, but the
// substrate must never exhibit torn reads.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

namespace curare::sexpr {

class Value;

/// Discriminator for heap-allocated objects.
enum class Kind : std::uint8_t {
  Cons,     ///< pair of Values (car, cdr)
  Symbol,   ///< interned name
  String,   ///< immutable character string
  Float,    ///< boxed double
  Vector,   ///< growable array of Values
  Table,    ///< hash table (Value -> Value), internally synchronized
  Closure,  ///< user-defined function (owned by the lisp module)
  Builtin,  ///< native function
  Native,   ///< opaque runtime object (future, lock handle, queue, ...)
  Struct,   ///< defstruct instance (owned by the lisp module)
};

class GcVisitor;

/// Base of all heap objects. Virtual destructor so the heap can own a
/// heterogeneous set of objects through `Obj*`.
struct Obj {
  explicit Obj(Kind k) : kind(k) {}
  Obj(const Obj&) = delete;
  Obj& operator=(const Obj&) = delete;
  virtual ~Obj() = default;

  /// Report every Value this object holds to the collector. Called only
  /// while the world is stopped (see src/gc/), so overrides may read
  /// their fields without synchronization beyond what concurrent Lisp
  /// mutators already require. Leaf objects hold no Values.
  virtual void gc_trace(GcVisitor&) const {}

  const Kind kind;
};

/// A single Lisp value: fixnum, nil, or pointer to a heap object.
class Value {
 public:
  constexpr Value() : bits_(0) {}

  static constexpr Value nil() { return Value(); }

  static Value fixnum(std::int64_t n) {
    return Value(static_cast<std::uint64_t>(n) << 1 | 1u);
  }

  static Value object(Obj* o) {
    return Value(reinterpret_cast<std::uint64_t>(o));
  }

  static Value from_bits(std::uint64_t b) { return Value(b); }
  std::uint64_t bits() const { return bits_; }

  bool is_nil() const { return bits_ == 0; }
  bool is_fixnum() const { return (bits_ & 1u) != 0; }
  bool is_object() const { return bits_ != 0 && (bits_ & 1u) == 0; }

  std::int64_t as_fixnum() const {
    return static_cast<std::int64_t>(bits_) >> 1;
  }

  Obj* obj() const { return reinterpret_cast<Obj*>(bits_); }

  Kind kind_or(Kind fallback) const {
    return is_object() ? obj()->kind : fallback;
  }

  bool is(Kind k) const { return is_object() && obj()->kind == k; }

  /// Lisp truth: everything except nil is true.
  bool truthy() const { return bits_ != 0; }

  /// Pointer/bit identity — Lisp `eq`.
  friend bool operator==(Value a, Value b) { return a.bits_ == b.bits_; }
  friend bool operator!=(Value a, Value b) { return a.bits_ != b.bits_; }

 private:
  constexpr explicit Value(std::uint64_t bits) : bits_(bits) {}
  std::uint64_t bits_;
};

/// Callback interface the collector hands to Obj::gc_trace. `visit`
/// records one outgoing edge; `enter_region` deduplicates traversal of
/// shared non-heap containers (an Env frame reached through many
/// closures is walked once per collection).
class GcVisitor {
 public:
  virtual void visit(Value v) = 0;
  /// True the first time this collection sees `region`; callers walk the
  /// region's contents only on true.
  virtual bool enter_region(const void* region) = 0;

 protected:
  ~GcVisitor() = default;
};

/// Cons cell. Slots are atomic words so unsynchronized concurrent readers
/// see whole values; ordering is the concurrent program's responsibility
/// (the paper's locks/delays provide it).
struct Cons final : Obj {
  Cons(Value a, Value d)
      : Obj(Kind::Cons), car_bits(a.bits()), cdr_bits(d.bits()) {}

  Value car() const {
    return Value::from_bits(car_bits.load(std::memory_order_relaxed));
  }
  Value cdr() const {
    return Value::from_bits(cdr_bits.load(std::memory_order_relaxed));
  }
  void set_car(Value v) {
    car_bits.store(v.bits(), std::memory_order_relaxed);
  }
  void set_cdr(Value v) {
    cdr_bits.store(v.bits(), std::memory_order_relaxed);
  }

  void gc_trace(GcVisitor& g) const override {
    g.visit(car());
    g.visit(cdr());
  }

  std::atomic<std::uint64_t> car_bits;
  std::atomic<std::uint64_t> cdr_bits;
};

/// Interned symbol. Identity (the `Obj*`) is the symbol's identity; two
/// symbols with the same name are the same object (see SymbolTable).
struct Symbol final : Obj {
  explicit Symbol(std::string n) : Obj(Kind::Symbol), name(std::move(n)) {}
  const std::string name;
};

struct String final : Obj {
  explicit String(std::string s) : Obj(Kind::String), text(std::move(s)) {}
  const std::string text;
};

struct Float final : Obj {
  explicit Float(double d) : Obj(Kind::Float), value(d) {}
  const double value;
};

struct Vector final : Obj {
  Vector() : Obj(Kind::Vector) {}
  explicit Vector(std::vector<Value> v)
      : Obj(Kind::Vector), items(std::move(v)) {}

  void gc_trace(GcVisitor& g) const override {
    for (Value v : items) g.visit(v);
  }

  std::vector<Value> items;
};

// ---- accessors with checking ------------------------------------------

/// Thrown on type mismatches and other evaluation failures. Carries a
/// plain message; the interpreter adds source context when it rethrows.
class LispError : public std::exception {
 public:
  explicit LispError(std::string msg) : msg_(std::move(msg)) {}
  const char* what() const noexcept override { return msg_.c_str(); }

 private:
  std::string msg_;
};

Cons* as_cons(Value v);
Symbol* as_symbol(Value v);
String* as_string(Value v);
Vector* as_vector(Value v);

/// car/cdr with the Lisp convention that (car nil) = (cdr nil) = nil.
Value car(Value v);
Value cdr(Value v);

inline Value cadr(Value v) { return car(cdr(v)); }
inline Value cddr(Value v) { return cdr(cdr(v)); }
inline Value caddr(Value v) { return car(cddr(v)); }
inline Value cdddr(Value v) { return cdr(cddr(v)); }
inline Value cadddr(Value v) { return car(cdddr(v)); }
inline Value caar(Value v) { return car(car(v)); }
inline Value cdar(Value v) { return cdr(car(v)); }

/// Number of cons cells in a proper list. Throws on dotted/improper lists.
std::size_t list_length(Value v);

/// True when v is nil or a chain of cons cells ending in nil (bounded by
/// `limit` cells to stay safe on cyclic structures).
bool is_proper_list(Value v, std::size_t limit = 1u << 24);

}  // namespace curare::sexpr
