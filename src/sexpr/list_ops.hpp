// C++-side helpers for walking and building Lisp lists. Used heavily by
// the analyzer and transformer, which destructure program text, and by
// tests that build expected structures.
#pragma once

#include <functional>
#include <vector>

#include "sexpr/heap.hpp"
#include "sexpr/value.hpp"

namespace curare::sexpr {

/// Copy a proper list's elements into a std::vector. Throws on improper
/// lists.
std::vector<Value> list_to_vector(Value list);

/// nth element (0-based); nil past the end.
Value nth(Value list, std::size_t n);

/// Fresh list that is `a` followed by `b`; `a`'s cells are copied, `b` is
/// shared (Lisp append semantics for two arguments).
Value append2(Heap& heap, Value a, Value b);

/// Fresh reversed copy of a proper list.
Value reverse_list(Heap& heap, Value list);

/// Fresh list of f(x) for each element x.
Value map_list(Heap& heap, Value list, const std::function<Value(Value)>& f);

/// First cons whose car is eq to `item`, or nil (Lisp member with eq).
Value member_eq(Value item, Value list);

/// First element pair (a . d) in an association list whose car is eq to
/// `key`, or nil.
Value assoc_eq(Value key, Value alist);

/// Structural deep copy of a tree of conses (leaves shared).
Value copy_tree(Heap& heap, Value v);

}  // namespace curare::sexpr
