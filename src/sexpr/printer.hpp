// S-expression printer.
//
// `write_str` produces read-back-able text (strings quoted and escaped);
// `display_str` produces human text (strings raw), matching Lisp's
// write/princ distinction. Both guard against cyclic structures with a
// depth/length budget rather than full circle detection — transformed
// programs can build shared structure, and the printer must never loop.
#pragma once

#include <string>

#include "sexpr/value.hpp"

namespace curare::sexpr {

struct PrintOptions {
  bool readably = true;          ///< quote strings (write) vs raw (princ)
  std::size_t max_depth = 512;   ///< nesting budget before "..."
  std::size_t max_length = 1u << 20;  ///< list-element budget
};

std::string print_str(Value v, const PrintOptions& opts);

inline std::string write_str(Value v) { return print_str(v, {}); }

inline std::string display_str(Value v) {
  PrintOptions o;
  o.readably = false;
  return print_str(v, o);
}

}  // namespace curare::sexpr
