// S-expression reader.
//
// Accepts the subset of Lisp syntax the paper's examples use: atoms
// (symbols, fixnums, floats, strings), proper and dotted lists, the quote
// shorthand 'x, and ; comments. Symbols are case-sensitive. The token
// `nil` and the empty list () both read as Value::nil().
//
// Errors carry line/column so the Curare driver can point at the offending
// form when it explains why it refused to transform a function.
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "sexpr/ctx.hpp"
#include "sexpr/value.hpp"

namespace curare::sexpr {

class ReadError : public LispError {
 public:
  ReadError(std::string msg, std::size_t line, std::size_t col)
      : LispError("read error at " + std::to_string(line) + ":" +
                  std::to_string(col) + ": " + std::move(msg)),
        line_(line),
        col_(col) {}
  std::size_t line() const { return line_; }
  std::size_t col() const { return col_; }

 private:
  std::size_t line_;
  std::size_t col_;
};

class Reader {
 public:
  Reader(Ctx& ctx, std::string_view src) : ctx_(ctx), src_(src) {}

  /// Read the next form; std::nullopt at end of input.
  std::optional<Value> read();

  /// Read every remaining form.
  std::vector<Value> read_all();

 private:
  bool at_end() const { return pos_ >= src_.size(); }
  char peek() const { return src_[pos_]; }
  char advance();
  void skip_ws_and_comments();
  [[noreturn]] void fail(std::string msg) const;

  Value read_form();
  Value read_list();
  Value read_string();
  Value read_atom();

  static bool is_delim(char c);

  Ctx& ctx_;
  std::string_view src_;
  std::size_t pos_ = 0;
  std::size_t line_ = 1;
  std::size_t col_ = 1;
};

/// Parse all forms in `src` with the given context.
std::vector<Value> read_all(Ctx& ctx, std::string_view src);

/// Parse exactly one form; throws if the source is empty or has trailing
/// forms.
Value read_one(Ctx& ctx, std::string_view src);

}  // namespace curare::sexpr
