#include "sexpr/symbol_table.hpp"

namespace curare::sexpr {

Symbol* SymbolTable::gensym(std::string_view prefix) {
  // Loop until an unused spelling is found; a user program could have
  // interned "g17" already.
  for (;;) {
    const std::uint64_t n =
        gensym_counter_.fetch_add(1, std::memory_order_relaxed);
    std::string candidate(prefix);
    candidate += std::to_string(n);
    {
      std::shared_lock lock(mu_);
      if (map_.contains(candidate)) continue;
    }
    return intern(candidate);
  }
}

}  // namespace curare::sexpr
