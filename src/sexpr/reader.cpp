#include "sexpr/reader.hpp"

#include <cctype>
#include <charconv>

namespace curare::sexpr {

char Reader::advance() {
  const char c = src_[pos_++];
  if (c == '\n') {
    ++line_;
    col_ = 1;
  } else {
    ++col_;
  }
  return c;
}

void Reader::skip_ws_and_comments() {
  while (!at_end()) {
    const char c = peek();
    if (std::isspace(static_cast<unsigned char>(c))) {
      advance();
    } else if (c == ';') {
      while (!at_end() && peek() != '\n') advance();
    } else {
      return;
    }
  }
}

void Reader::fail(std::string msg) const {
  throw ReadError(std::move(msg), line_, col_);
}

bool Reader::is_delim(char c) {
  return std::isspace(static_cast<unsigned char>(c)) || c == '(' ||
         c == ')' || c == ';' || c == '"' || c == '\'';
}

std::optional<Value> Reader::read() {
  skip_ws_and_comments();
  if (at_end()) return std::nullopt;
  return read_form();
}

std::vector<Value> Reader::read_all() {
  std::vector<Value> forms;
  while (auto v = read()) forms.push_back(*v);
  return forms;
}

Value Reader::read_form() {
  skip_ws_and_comments();
  if (at_end()) fail("unexpected end of input");
  const char c = peek();
  if (c == '(') {
    advance();
    return read_list();
  }
  if (c == ')') fail("unmatched ')'");
  if (c == '\'') {
    advance();
    Value quoted = read_form();
    return ctx_.make_list(Value::object(ctx_.s_quote), quoted);
  }
  if (c == '"') {
    advance();
    return read_string();
  }
  return read_atom();
}

Value Reader::read_list() {
  // Collect items, handling the dotted-pair tail "(a b . c)".
  std::vector<Value> items;
  Value tail = Value::nil();
  for (;;) {
    skip_ws_and_comments();
    if (at_end()) fail("unterminated list");
    if (peek() == ')') {
      advance();
      break;
    }
    // A lone "." introduces the dotted tail. A token that merely starts
    // with '.' (like a float ".5" or symbol "...") is handled by
    // read_atom, so peek one past.
    if (peek() == '.' &&
        (pos_ + 1 >= src_.size() || is_delim(src_[pos_ + 1]))) {
      if (items.empty()) fail("dotted pair with no head");
      advance();  // consume '.'
      tail = read_form();
      skip_ws_and_comments();
      if (at_end() || peek() != ')') fail("malformed dotted pair");
      advance();  // consume ')'
      break;
    }
    items.push_back(read_form());
  }
  Value acc = tail;
  for (auto it = items.rbegin(); it != items.rend(); ++it)
    acc = ctx_.cons(*it, acc);
  return acc;
}

Value Reader::read_string() {
  std::string out;
  for (;;) {
    if (at_end()) fail("unterminated string literal");
    char c = advance();
    if (c == '"') break;
    if (c == '\\') {
      if (at_end()) fail("unterminated escape in string literal");
      const char e = advance();
      switch (e) {
        case 'n': out.push_back('\n'); break;
        case 't': out.push_back('\t'); break;
        case '\\': out.push_back('\\'); break;
        case '"': out.push_back('"'); break;
        default: fail(std::string("unknown escape \\") + e);
      }
    } else {
      out.push_back(c);
    }
  }
  return ctx_.str(std::move(out));
}

Value Reader::read_atom() {
  const std::size_t start = pos_;
  while (!at_end() && !is_delim(peek())) advance();
  const std::string_view tok = src_.substr(start, pos_ - start);
  if (tok.empty()) fail("empty token");

  // Try fixnum.
  {
    std::int64_t n = 0;
    const char* first = tok.data();
    const char* last = tok.data() + tok.size();
    auto [p, ec] = std::from_chars(first, last, n);
    if (ec == std::errc() && p == last) return Value::fixnum(n);
  }
  // Try float. std::from_chars(double) is available in libstdc++ 12.
  {
    double d = 0;
    const char* first = tok.data();
    const char* last = tok.data() + tok.size();
    auto [p, ec] = std::from_chars(first, last, d);
    if (ec == std::errc() && p == last) return ctx_.real(d);
  }
  if (tok == "nil") return Value::nil();
  return ctx_.symbols.intern_value(tok);
}

std::vector<Value> read_all(Ctx& ctx, std::string_view src) {
  Reader r(ctx, src);
  return r.read_all();
}

Value read_one(Ctx& ctx, std::string_view src) {
  Reader r(ctx, src);
  auto v = r.read();
  if (!v) throw LispError("read_one: empty input");
  if (r.read()) throw LispError("read_one: trailing forms in input");
  return *v;
}

}  // namespace curare::sexpr
