// Deterministic fault injection for the runtime's blocking paths.
//
// The paper's correctness argument (§3.2) covers programs produced by
// the transformations; the error paths the runtime grew around them —
// abort-and-re-run after a body throw, mid-run collections, cancelled
// waits — only get exercised when something goes wrong. The injector
// makes "something goes wrong" reproducible: five named sites cover
// every class of blocking or allocating step, and a seeded splitmix64
// stream decides, per site and per arrival, whether to perturb it with
// a delay (schedule skew), a throw (forced error path), or a spurious
// wakeup (cv robustness).
//
// Sites:
//   lock.acquire   LockManager::lock, before the shard is examined
//   queue.push     all TaskQueues impls, before the task is enqueued
//   future.spawn   FuturePool::spawn, before the state exists
//   task.run       CriRun server bodies and FuturePool task bodies
//   gc.alloc       GcHeap::allocate, before the cell is carved
//   queue.steal    WorkStealingTaskQueues, before a steal round probes
//                  victim lanes (never fires on the owner fast path)
//
// Determinism: each site keeps its own arrival counter; the decision
// for arrival n at site s is a pure function of (seed, s, n). Thread
// interleaving changes which thread draws which arrival, never the
// multiset of injected faults — a fixed seed yields a reproducible
// fault mix.
//
// Cost when disabled: exactly one relaxed atomic load per site visit
// (the acceptance bar for bench_queue/bench_heap regressions).
//
// Header-only on purpose: gc (a lower layer than runtime) hooks the
// gc.alloc site without gaining a link dependency on curare_runtime.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>
#include <string_view>
#include <thread>

#include "sexpr/value.hpp"

namespace curare::runtime {

/// Thrown by a `throw`-kind injection. A LispError subclass so every
/// consumer (server bodies, future tasks, builtins) treats it exactly
/// like a user-program error — the paths under test.
class FaultInjectedError : public sexpr::LispError {
 public:
  explicit FaultInjectedError(std::string msg)
      : LispError(std::move(msg)) {}
};

class FaultInjector {
 public:
  enum class Site : unsigned {
    kLockAcquire = 0,
    kQueuePush,
    kFutureSpawn,
    kTaskRun,
    kGcAlloc,
    kQueueSteal,
  };
  static constexpr std::size_t kNumSites = 6;

  /// Fault kinds, combinable as a bitmask.
  enum Kind : unsigned {
    kDelay = 1u << 0,  ///< sleep 10–200 µs at the site
    kThrow = 1u << 1,  ///< throw FaultInjectedError out of the site
    kWake = 1u << 2,   ///< spurious wakeup: check() returns true and the
                       ///< site notifies its condition variable
    kAllKinds = kDelay | kThrow | kWake,
  };

  static const char* site_name(Site s) {
    static constexpr const char* kNames[kNumSites] = {
        "lock.acquire", "queue.push", "future.spawn", "task.run",
        "gc.alloc",     "queue.steal"};
    return kNames[static_cast<unsigned>(s)];
  }

  /// All-sites bitmask (bit i = Site i); the default scope of a chaos
  /// run. Narrow with configure()'s `sites` to aim faults at specific
  /// subsystems (e.g. queue.push|task.run for the serving smoke).
  static constexpr unsigned kAllSites = (1u << kNumSites) - 1;

  /// Resolve "queue.push" → its mask bit; false on unknown names.
  static bool site_bit(std::string_view name, unsigned& bit) {
    for (unsigned i = 0; i < kNumSites; ++i) {
      if (name == site_name(static_cast<Site>(i))) {
        bit = 1u << i;
        return true;
      }
    }
    return false;
  }

  /// Process-wide singleton: GcHeap and the queues have no path to a
  /// per-runtime object, and chaos runs are process-scoped anyway.
  static FaultInjector& instance() {
    static FaultInjector fi;
    return fi;
  }

  /// Arm the injector. `rate` in [0,1] is the per-visit fault
  /// probability; `kinds` selects which faults may fire. Not meant to
  /// race in-flight check() calls with a *reconfigure* (enable/disable
  /// are fine): tests configure at quiescent points.
  void configure(std::uint64_t seed, double rate,
                 unsigned kinds = kAllKinds, unsigned sites = kAllSites) {
    seed_.store(seed, std::memory_order_relaxed);
    site_mask_.store(sites & kAllSites, std::memory_order_relaxed);
    if (rate < 0) rate = 0;
    if (rate > 1) rate = 1;
    rate_bits_.store(
        rate >= 1.0 ? UINT64_MAX
                    : static_cast<std::uint64_t>(
                          rate * 18446744073709551616.0 /* 2^64 */),
        std::memory_order_relaxed);
    kinds_.store(kinds, std::memory_order_relaxed);
    for (auto& c : seq_) c.store(0, std::memory_order_relaxed);
    for (auto& c : delays_) c.store(0, std::memory_order_relaxed);
    for (auto& c : throws_) c.store(0, std::memory_order_relaxed);
    for (auto& c : wakes_) c.store(0, std::memory_order_relaxed);
    enabled_.store(kinds != 0 && rate > 0, std::memory_order_release);
  }

  void disable() { enabled_.store(false, std::memory_order_release); }

  bool enabled() const {
    return enabled_.load(std::memory_order_relaxed);
  }

  /// The per-site hook. Disabled cost: one relaxed load. Returns true
  /// when a spurious-wakeup fault fired — the caller should notify the
  /// condition variable guarding its waiters (callers without one may
  /// ignore the result). May sleep (delay fault) or throw
  /// FaultInjectedError (throw fault).
  bool check(Site s) {
    if (!enabled_.load(std::memory_order_relaxed)) return false;
    if ((site_mask_.load(std::memory_order_relaxed) &
         (1u << static_cast<unsigned>(s))) == 0) {
      return false;
    }
    return act(s);
  }

  struct SiteStats {
    std::uint64_t visits = 0;
    std::uint64_t delays = 0;
    std::uint64_t throws = 0;
    std::uint64_t wakes = 0;
  };

  SiteStats stats(Site s) const {
    const auto i = static_cast<unsigned>(s);
    return SiteStats{seq_[i].load(std::memory_order_relaxed),
                     delays_[i].load(std::memory_order_relaxed),
                     throws_[i].load(std::memory_order_relaxed),
                     wakes_[i].load(std::memory_order_relaxed)};
  }

  std::uint64_t total_injected() const {
    std::uint64_t n = 0;
    for (unsigned i = 0; i < kNumSites; ++i) {
      n += delays_[i].load(std::memory_order_relaxed) +
           throws_[i].load(std::memory_order_relaxed) +
           wakes_[i].load(std::memory_order_relaxed);
    }
    return n;
  }

  /// Human-readable state (the :resilience REPL payload).
  std::string report() const {
    std::string out;
    if (!enabled()) {
      out = "fault injector: disabled\n";
    } else {
      out = "fault injector: seed=" +
            std::to_string(seed_.load(std::memory_order_relaxed)) +
            " kinds=" + kinds_string() + "\n";
    }
    for (unsigned i = 0; i < kNumSites; ++i) {
      const SiteStats st = stats(static_cast<Site>(i));
      if (st.visits == 0 && !enabled()) continue;
      out += "  ";
      out += site_name(static_cast<Site>(i));
      out += ": " + std::to_string(st.visits) + " visit(s), " +
             std::to_string(st.delays) + " delay(s), " +
             std::to_string(st.throws) + " throw(s), " +
             std::to_string(st.wakes) + " wake(s)\n";
    }
    return out;
  }

 private:
  FaultInjector() = default;

  /// splitmix64 finalizer (same mixer as LocKeyHash).
  static std::uint64_t mix(std::uint64_t x) {
    x += 0x9E3779B97F4A7C15ull;
    x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
    x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
    return x ^ (x >> 31);
  }

  std::string kinds_string() const {
    const unsigned k = kinds_.load(std::memory_order_relaxed);
    std::string s;
    if (k & kDelay) s += "delay,";
    if (k & kThrow) s += "throw,";
    if (k & kWake) s += "wake,";
    if (!s.empty()) s.pop_back();
    return s;
  }

  bool act(Site s) {
    const auto i = static_cast<unsigned>(s);
    const std::uint64_t n = seq_[i].fetch_add(1, std::memory_order_relaxed);
    const std::uint64_t seed = seed_.load(std::memory_order_relaxed);
    const std::uint64_t x = mix(seed ^ mix((i + 1) * 0x9E3779B97F4A7C15ull) ^ mix(n));
    if (x >= rate_bits_.load(std::memory_order_relaxed)) return false;

    // Pick among the enabled kinds with fresh bits so the kind choice
    // is independent of the fire decision.
    const unsigned kinds = kinds_.load(std::memory_order_relaxed);
    unsigned avail[3];
    unsigned count = 0;
    if (kinds & kDelay) avail[count++] = kDelay;
    if (kinds & kThrow) avail[count++] = kThrow;
    if (kinds & kWake) avail[count++] = kWake;
    if (count == 0) return false;
    const std::uint64_t y = mix(x);
    switch (avail[y % count]) {
      case kDelay: {
        delays_[i].fetch_add(1, std::memory_order_relaxed);
        const auto us = 10 + static_cast<long>((y >> 8) % 190);
        std::this_thread::sleep_for(std::chrono::microseconds(us));
        return false;
      }
      case kThrow:
        throws_[i].fetch_add(1, std::memory_order_relaxed);
        throw FaultInjectedError(
            std::string("fault injected at ") + site_name(s) + " (seed " +
            std::to_string(seed) + ", arrival " + std::to_string(n) + ")");
      default:
        wakes_[i].fetch_add(1, std::memory_order_relaxed);
        return true;
    }
  }

  std::atomic<bool> enabled_{false};
  std::atomic<unsigned> site_mask_{kAllSites};
  std::atomic<std::uint64_t> seed_{0};
  std::atomic<std::uint64_t> rate_bits_{0};
  std::atomic<unsigned> kinds_{0};
  std::atomic<std::uint64_t> seq_[kNumSites] = {};
  std::atomic<std::uint64_t> delays_[kNumSites] = {};
  std::atomic<std::uint64_t> throws_[kNumSites] = {};
  std::atomic<std::uint64_t> wakes_[kNumSites] = {};
};

}  // namespace curare::runtime
