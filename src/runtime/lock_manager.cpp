#include "runtime/lock_manager.hpp"

#include "sexpr/value.hpp"

namespace curare::runtime {

void LockManager::lock(const LocKey& key, bool exclusive) {
  ops_.fetch_add(1, std::memory_order_relaxed);
  Shard& s = shard_for(key);
  std::unique_lock<std::mutex> g(s.mu);
  const auto self = std::this_thread::get_id();

  // unlock() erases entries whose counts reach zero, so references into
  // the map are only valid until the next wait: re-look-up after every
  // wake-up.
  for (;;) {
    Entry& e = s.entries[key];  // creates a zero entry if absent

    if (e.writer == self && e.writer_depth > 0) {
      // Reentrant hold (reads by the writer also land here so unlock
      // bookkeeping stays symmetric).
      ++e.writer_depth;
      return;
    }
    if (exclusive) {
      if (e.readers == 0 && e.writer_depth == 0) {
        e.writer = self;
        e.writer_depth = 1;
        return;
      }
    } else {
      if (e.writer_depth == 0) {
        ++e.readers;
        return;
      }
    }
    s.cv.wait(g);
  }
}

void LockManager::unlock(const LocKey& key, bool exclusive) {
  ops_.fetch_add(1, std::memory_order_relaxed);
  Shard& s = shard_for(key);
  std::lock_guard<std::mutex> g(s.mu);
  auto it = s.entries.find(key);
  if (it == s.entries.end()) {
    throw sexpr::LispError("unlock of a location that is not locked");
  }
  Entry& e = it->second;
  const auto self = std::this_thread::get_id();

  if (e.writer_depth > 0 && e.writer == self) {
    // Owner unlocking a (possibly reentrant) write hold. A shared
    // unlock by the writer also lands here, matching the reentrant
    // acquisition path above.
    (void)exclusive;
    if (--e.writer_depth == 0) {
      e.writer = std::thread::id{};
      if (e.readers == 0) s.entries.erase(it);
      s.cv.notify_all();
    }
    return;
  }

  if (!exclusive && e.readers > 0) {
    if (--e.readers == 0 && e.writer_depth == 0) {
      s.entries.erase(it);
      s.cv.notify_all();
    }
    return;
  }

  throw sexpr::LispError(
      "unlock does not match a lock held by this thread");
}

std::size_t LockManager::live_entries() const {
  std::size_t n = 0;
  for (Shard& s : shards_) {
    std::lock_guard<std::mutex> g(s.mu);
    n += s.entries.size();
  }
  return n;
}

}  // namespace curare::runtime
