#include "runtime/lock_manager.hpp"

#include <chrono>
#include <sstream>

#include "obs/request.hpp"
#include "runtime/fault_injector.hpp"
#include "runtime/resilience.hpp"
#include "sexpr/value.hpp"

namespace curare::runtime {

namespace {

/// Name a location the way a Lisp programmer would recognize it: global
/// variables carry their symbol, object fields their field symbol.
std::string describe_key(const LocKey& k) {
  std::ostringstream os;
  if (k.field == nullptr && k.object != nullptr &&
      k.object->kind == sexpr::Kind::Symbol) {
    os << "(var "
       << static_cast<const sexpr::Symbol*>(k.object)->name << ")";
    return os.str();
  }
  os << "obj@" << static_cast<const void*>(k.object);
  if (k.field != nullptr) os << "." << k.field->name;
  return os.str();
}

}  // namespace

void LockManager::set_recorder(obs::Recorder* rec) {
  rec_ = rec;
  if (rec == nullptr) {
    acquisitions_ = contended_ = nullptr;
    wait_ns_ = nullptr;
    return;
  }
  acquisitions_ = &rec->metrics.counter("lock.acquisitions");
  contended_ = &rec->metrics.counter("lock.contended");
  wait_ns_ = &rec->metrics.histogram("lock.wait_ns");
}

void LockManager::lock(const LocKey& key, bool exclusive) {
  ops_.fetch_add(1, std::memory_order_relaxed);
  if (rec_) acquisitions_->add();
  FaultInjector& fi = FaultInjector::instance();
  if (fi.check(FaultInjector::Site::kLockAcquire)) {
    // Spurious-wakeup fault: poke this key's shard so its waiters get
    // an extra predicate re-check.
    shard_for(key).cv.notify_all();
  }
  Shard& s = shard_for(key);
  std::unique_lock<std::mutex> g(s.mu);
  const auto self = std::this_thread::get_id();

  // Contention accounting: stamp the wait start on the first failed
  // attempt only, so a multi-wakeup wait counts once with its full span.
  bool waited = false;
  std::uint64_t wait_start = 0;
  std::chrono::steady_clock::time_point budget_start{};
  const std::uint64_t key_id = LocKeyHash{}(key);

  // unlock() erases entries whose counts reach zero, so references into
  // the map are only valid until the next wait: re-look-up after every
  // wake-up.
  for (;;) {
    Entry& e = s.entries[key];  // creates a zero entry if absent

    bool acquired = false;
    if (e.writer == self && e.writer_depth > 0) {
      // Reentrant hold (reads by the writer also land here so unlock
      // bookkeeping stays symmetric).
      ++e.writer_depth;
      acquired = true;
    } else if (exclusive) {
      if (e.readers == 0 && e.writer_depth == 0) {
        e.writer = self;
        e.writer_depth = 1;
        acquired = true;
      } else if (e.holds_by(self) > 0) {
        // Read→write upgrade by the holder: exclusive cannot be
        // granted until readers == 0, and this thread's own shared
        // hold can never drain while it is parked here. Waiting is a
        // guaranteed self-deadlock — fail fast instead.
        g.unlock();
        throw sexpr::LispError(
            "read->write lock upgrade on " + describe_key(key) +
            ": this thread already holds the location shared and "
            "would deadlock waiting for itself; release the read "
            "lock first or acquire exclusive up front");
      }
    } else {
      if (e.writer_depth == 0) {
        ++e.readers;
        // Record the hold so a later exclusive request by this thread
        // is recognized as an upgrade.
        bool found = false;
        for (auto& [tid, n] : e.reader_holds) {
          if (tid == self) {
            ++n;
            found = true;
            break;
          }
        }
        if (!found) e.reader_holds.emplace_back(self, 1);
        acquired = true;
      }
    }
    if (acquired) {
      if (waited) {
        // Per-request attribution: the blocked span counts against the
        // serving request this thread is working for (if any),
        // independent of whether a recorder is attached.
        obs::charge_request(
            &obs::Breakdown::lock_wait_ns,
            static_cast<std::uint64_t>(
                std::chrono::duration_cast<std::chrono::nanoseconds>(
                    std::chrono::steady_clock::now() - budget_start)
                    .count()));
      }
      if (rec_) {
        if (waited) {
          const std::uint64_t end = rec_->tracer.now_ns();
          wait_ns_->observe(end > wait_start ? end - wait_start : 0);
          rec_->tracer.emit(obs::EventKind::kLockWait, wait_start,
                            end > wait_start ? end - wait_start : 0,
                            key_id, exclusive);
        }
        rec_->tracer.instant(obs::EventKind::kLockAcquire, key_id,
                             exclusive);
      }
      return;
    }
    if (!waited) {
      waited = true;
      budget_start = std::chrono::steady_clock::now();
      if (rec_) {
        wait_start = rec_->tracer.now_ns();
        contended_->add();
      }
    }
    // Bounded slice instead of an open-ended wait: a notify still wakes
    // us immediately; the timeout is only the cancellation/budget
    // backstop. Under fault injection the slice shrinks so injected
    // spurious wakeups actually churn the predicate.
    s.cv.wait_for(g, fi.enabled() ? std::chrono::milliseconds(1)
                                  : std::chrono::milliseconds(10));

    // Only the cheap flag/clock reads run under the shard mutex.
    // should_abort() captures a diagnostic dump, and that dump walks
    // every shard — calling it with ours held would self-deadlock, so
    // it (and raise, and dump_held) run after g is released.
    const std::int64_t budget =
        wait_budget_ms_.load(std::memory_order_relaxed);
    const bool over_budget =
        budget > 0 && std::chrono::steady_clock::now() - budget_start >=
                          std::chrono::milliseconds(budget);
    CancelState* tok = current_cancel();
    const bool tok_fired =
        tok != nullptr && (tok->cancelled() || tok->deadline_expired());
    if (over_budget || tok_fired) {
      g.unlock();
      if (tok_fired && tok->should_abort()) tok->raise();
      throw StallError("lock wait budget (" + std::to_string(budget) +
                           " ms) exceeded waiting for " +
                           describe_key(key),
                       dump_held());
    }
  }
}

void LockManager::unlock(const LocKey& key, bool exclusive) {
  ops_.fetch_add(1, std::memory_order_relaxed);
  if (rec_) {
    rec_->tracer.instant(obs::EventKind::kLockRelease, LocKeyHash{}(key),
                         exclusive);
  }
  Shard& s = shard_for(key);
  std::lock_guard<std::mutex> g(s.mu);
  auto it = s.entries.find(key);
  if (it == s.entries.end()) {
    throw sexpr::LispError("unlock of a location that is not locked");
  }
  Entry& e = it->second;
  const auto self = std::this_thread::get_id();

  if (e.writer_depth > 0 && e.writer == self) {
    // Owner unlocking a (possibly reentrant) write hold. A shared
    // unlock by the writer also lands here, matching the reentrant
    // acquisition path above.
    (void)exclusive;
    if (--e.writer_depth == 0) {
      e.writer = std::thread::id{};
      if (e.readers == 0) s.entries.erase(it);
      s.cv.notify_all();
    }
    return;
  }

  if (!exclusive && e.readers > 0) {
    // Drop this thread's recorded hold. When no record matches — the
    // hand-off pattern, lock on one server thread and unlock on
    // another — retire the oldest record instead, so the table tracks
    // *counts* and a record can never outlive the holds it stands for.
    // (A stale record would later throw a false "read->write upgrade"
    // at a thread that no longer holds anything. The count view errs
    // only the other way: with several concurrent readers plus
    // hand-offs, the retired record may belong to a thread that still
    // holds, so its upgrade degrades from fail-fast to a budget- or
    // watchdog-bounded wait.)
    bool dropped = false;
    for (auto hit = e.reader_holds.begin(); hit != e.reader_holds.end();
         ++hit) {
      if (hit->first == self) {
        if (--hit->second == 0) e.reader_holds.erase(hit);
        dropped = true;
        break;
      }
    }
    if (!dropped && !e.reader_holds.empty()) {
      auto hit = e.reader_holds.begin();
      if (--hit->second == 0) e.reader_holds.erase(hit);
    }
    if (--e.readers == 0 && e.writer_depth == 0) {
      s.entries.erase(it);
      s.cv.notify_all();
    }
    return;
  }

  throw sexpr::LispError(
      "unlock does not match a lock held by this thread");
}

std::size_t LockManager::live_entries() const {
  std::size_t n = 0;
  for (Shard& s : shards_) {
    std::lock_guard<std::mutex> g(s.mu);
    n += s.entries.size();
  }
  return n;
}

std::string LockManager::dump_held() const {
  std::ostringstream os;
  std::size_t n = 0;
  for (Shard& s : shards_) {
    std::lock_guard<std::mutex> g(s.mu);
    for (const auto& [key, e] : s.entries) {
      os << "  " << describe_key(key) << ": ";
      if (e.writer_depth > 0) {
        os << "exclusive depth=" << e.writer_depth << " by thread "
           << e.writer;
      }
      if (e.readers > 0) {
        if (e.writer_depth > 0) os << ", ";
        os << "shared readers=" << e.readers;
      }
      os << "\n";
      ++n;
    }
  }
  if (n == 0) return "held locks: none\n";
  return "held locks (" + std::to_string(n) + "):\n" + os.str();
}

void LockManager::reset() {
  for (Shard& s : shards_) {
    std::lock_guard<std::mutex> g(s.mu);
    s.entries.clear();
    s.cv.notify_all();
  }
}

}  // namespace curare::runtime
