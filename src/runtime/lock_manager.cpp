#include "runtime/lock_manager.hpp"

#include "sexpr/value.hpp"

namespace curare::runtime {

void LockManager::set_recorder(obs::Recorder* rec) {
  rec_ = rec;
  if (rec == nullptr) {
    acquisitions_ = contended_ = nullptr;
    wait_ns_ = nullptr;
    return;
  }
  acquisitions_ = &rec->metrics.counter("lock.acquisitions");
  contended_ = &rec->metrics.counter("lock.contended");
  wait_ns_ = &rec->metrics.histogram("lock.wait_ns");
}

void LockManager::lock(const LocKey& key, bool exclusive) {
  ops_.fetch_add(1, std::memory_order_relaxed);
  if (rec_) acquisitions_->add();
  Shard& s = shard_for(key);
  std::unique_lock<std::mutex> g(s.mu);
  const auto self = std::this_thread::get_id();

  // Contention accounting: stamp the wait start on the first failed
  // attempt only, so a multi-wakeup wait counts once with its full span.
  bool waited = false;
  std::uint64_t wait_start = 0;
  const std::uint64_t key_id = LocKeyHash{}(key);

  // unlock() erases entries whose counts reach zero, so references into
  // the map are only valid until the next wait: re-look-up after every
  // wake-up.
  for (;;) {
    Entry& e = s.entries[key];  // creates a zero entry if absent

    bool acquired = false;
    if (e.writer == self && e.writer_depth > 0) {
      // Reentrant hold (reads by the writer also land here so unlock
      // bookkeeping stays symmetric).
      ++e.writer_depth;
      acquired = true;
    } else if (exclusive) {
      if (e.readers == 0 && e.writer_depth == 0) {
        e.writer = self;
        e.writer_depth = 1;
        acquired = true;
      }
    } else {
      if (e.writer_depth == 0) {
        ++e.readers;
        acquired = true;
      }
    }
    if (acquired) {
      if (rec_) {
        if (waited) {
          const std::uint64_t end = rec_->tracer.now_ns();
          wait_ns_->observe(end > wait_start ? end - wait_start : 0);
          rec_->tracer.emit(obs::EventKind::kLockWait, wait_start,
                            end > wait_start ? end - wait_start : 0,
                            key_id, exclusive);
        }
        rec_->tracer.instant(obs::EventKind::kLockAcquire, key_id,
                             exclusive);
      }
      return;
    }
    if (rec_ && !waited) {
      waited = true;
      wait_start = rec_->tracer.now_ns();
      contended_->add();
    }
    s.cv.wait(g);
  }
}

void LockManager::unlock(const LocKey& key, bool exclusive) {
  ops_.fetch_add(1, std::memory_order_relaxed);
  if (rec_) {
    rec_->tracer.instant(obs::EventKind::kLockRelease, LocKeyHash{}(key),
                         exclusive);
  }
  Shard& s = shard_for(key);
  std::lock_guard<std::mutex> g(s.mu);
  auto it = s.entries.find(key);
  if (it == s.entries.end()) {
    throw sexpr::LispError("unlock of a location that is not locked");
  }
  Entry& e = it->second;
  const auto self = std::this_thread::get_id();

  if (e.writer_depth > 0 && e.writer == self) {
    // Owner unlocking a (possibly reentrant) write hold. A shared
    // unlock by the writer also lands here, matching the reentrant
    // acquisition path above.
    (void)exclusive;
    if (--e.writer_depth == 0) {
      e.writer = std::thread::id{};
      if (e.readers == 0) s.entries.erase(it);
      s.cv.notify_all();
    }
    return;
  }

  if (!exclusive && e.readers > 0) {
    if (--e.readers == 0 && e.writer_depth == 0) {
      s.entries.erase(it);
      s.cv.notify_all();
    }
    return;
  }

  throw sexpr::LispError(
      "unlock does not match a lock held by this thread");
}

std::size_t LockManager::live_entries() const {
  std::size_t n = 0;
  for (Shard& s : shards_) {
    std::lock_guard<std::mutex> g(s.mu);
    n += s.entries.size();
  }
  return n;
}

}  // namespace curare::runtime
