// Multilisp-style futures on a fixed worker pool (paper §3.1).
//
// "If the spawning process is not strict in its use of the result (e.g.,
// it stores the result in a data structure rather than looking at its
// value), then a Multilisp future provides process creation and
// synchronization features that permit concurrent execution."
//
// The pool has a fixed number of workers — the paper is explicit that
// processes are NOT a free and infinite resource (§1.2), contra
// Multilisp. `touch` on an unresolved future helps by executing queued
// tasks instead of blocking, so a bounded pool can never deadlock on
// future dependencies.
#pragma once

#include <condition_variable>
#include <deque>
#include <exception>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "gc/gc.hpp"
#include "obs/recorder.hpp"
#include "obs/request.hpp"
#include "sexpr/value.hpp"

namespace curare::runtime {

using sexpr::Value;

/// Shared state of one future. Heap-resident via FutureObj so Lisp code
/// can store futures in structures.
struct FutureState {
  std::mutex mu;
  std::condition_variable cv;
  bool done = false;
  Value value;
  std::exception_ptr error;
};

/// The heap object a Lisp program sees (Kind::Native).
struct FutureObj final : sexpr::Obj {
  explicit FutureObj(std::shared_ptr<FutureState> s)
      : Obj(sexpr::Kind::Native), state(std::move(s)) {}

  void gc_trace(sexpr::GcVisitor& g) const override {
    // done/value are written under state->mu; traced only while the
    // world is stopped, so every resolver is parked or quiescent.
    g.visit(state->value);
  }

  const std::shared_ptr<FutureState> state;
};

class FuturePool : public gc::RootSource {
 public:
  /// Starts `workers` threads (hardware concurrency if 0). A non-null
  /// `rec` records spawn/run/touch-wait events and wait-time metrics.
  explicit FuturePool(std::size_t workers = 0,
                      obs::Recorder* rec = nullptr);
  ~FuturePool() override;
  FuturePool(const FuturePool&) = delete;
  FuturePool& operator=(const FuturePool&) = delete;

  /// Submit a computation; returns its future state. `root` is a Value
  /// (typically the thunk closure) that must stay reachable until the
  /// task has run; the pool roots it while the task is queued or
  /// executing.
  std::shared_ptr<FutureState> spawn(std::function<Value()> fn,
                                     Value root = Value::nil());

  /// Block until the future resolves, helping with queued tasks while
  /// waiting. Rethrows the task's exception, if any. Throws StallError
  /// if the calling thread's CancelState fires while blocked, and
  /// LispError if the pool shuts down while the future is unresolved
  /// (instead of hanging on a cv no worker will ever signal).
  Value touch(const std::shared_ptr<FutureState>& f);

  /// Wake every blocked toucher and make unresolved touches throw.
  /// Called by the destructor after the workers are joined; also
  /// callable by tests/harnesses to flush stuck waiters.
  void abort_waiters();

  /// Tasks queued but not yet started (diagnostics).
  std::size_t pending_tasks() const {
    std::lock_guard<std::mutex> g(mu_);
    return queue_.size();
  }

  /// Block until no task is queued or executing. A departing serving
  /// session calls this before destroying its interpreter: tasks it
  /// spawned capture that interpreter by reference, so they must all
  /// have finished first. Honors the calling thread's CancelState
  /// (throws StallError if it fires mid-wait).
  void wait_idle();

  /// Participate in collections: queued/in-flight task roots and every
  /// live future's resolved value (a future dropped by the program
  /// stops pinning its value as soon as its state expires).
  void attach_gc(gc::GcHeap* gc);
  void gc_roots(std::vector<Value>& out) override;

  std::size_t workers() const { return threads_.size(); }
  std::uint64_t spawned() const {
    return spawned_.load(std::memory_order_relaxed);
  }

 private:
  struct Task {
    std::function<Value()> fn;
    std::shared_ptr<FutureState> state;
    std::uint64_t id = 0;  ///< spawn ordinal, for trace correlation
    Value root;            ///< kept reachable until the task has run
    /// The serving request that spawned the future; the executing
    /// worker installs it so the task's spans/lock waits attribute to
    /// that request even after its socket frame has been answered.
    std::shared_ptr<obs::RequestContext> req_ctx;
  };

  void worker_loop(std::size_t worker_index);
  bool run_one_task();
  void run_task(Task& t);

  mutable std::mutex mu_;
  std::condition_variable cv_;
  /// Signalled when the pool goes idle (queue and in-flight both
  /// empty); wait_idle() parks here.
  std::condition_variable idle_cv_;
  std::deque<Task> queue_;
  /// Roots of tasks popped but not yet finished. The pop and the
  /// insertion here happen in one mu_ critical section, so the
  /// collector's snapshot (also under mu_) never sees a task in
  /// neither place.
  std::list<Value> in_flight_;
  /// Every future ever spawned (weak); compacted lazily. Roots the
  /// resolved values of futures the program still holds.
  std::vector<std::weak_ptr<FutureState>> states_;
  bool shutdown_ = false;
  /// Set by abort_waiters(): touches of unresolved futures now throw.
  std::atomic<bool> aborted_{false};
  std::vector<std::thread> threads_;
  std::atomic<std::uint64_t> spawned_{0};

  /// Atomic because attach_gc runs after the constructor has already
  /// started the workers, which read this pointer between tasks.
  std::atomic<gc::GcHeap*> gc_{nullptr};
  obs::Recorder* rec_;
  // Resolved once at construction so touch()/spawn() never pay the
  // metrics-registry lookup.
  obs::Counter* spawned_ctr_ = nullptr;
  obs::Counter* touches_ = nullptr;
  obs::Counter* touch_waits_ = nullptr;
  obs::Counter* helped_ = nullptr;
  obs::Histogram* wait_ns_ = nullptr;
};

}  // namespace curare::runtime
