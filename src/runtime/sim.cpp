#include "runtime/sim.hpp"

#include <algorithm>
#include <vector>

namespace curare::runtime {

std::vector<InvocationTrace> simulate_cri_trace(const SimParams& p) {
  const std::size_t d = std::max<std::size_t>(1, p.depth);
  const std::size_t S = std::max<std::size_t>(1, p.servers);

  std::vector<double> server_free(S, 0.0);
  std::vector<InvocationTrace> trace(d);
  double ready = 0.0;       // invocation 0 is ready at t=0
  double queue_free = 0.0;  // central queue serializes dequeues

  for (std::size_t i = 0; i < d; ++i) {
    double start = ready;
    // Lock blocking: wait for the unlock of invocation i−k (§3.2.1).
    if (p.conflict_distance > 0 && i >= p.conflict_distance)
      start = std::max(start, trace[i - p.conflict_distance].finish);
    // Earliest-free server takes the task.
    std::size_t srv = 0;
    for (std::size_t s = 1; s < S; ++s)
      if (server_free[s] < server_free[srv]) srv = s;
    start = std::max(start, server_free[srv]);
    // Dequeue is serialized through the central queue.
    start = std::max(start, queue_free);
    queue_free = start + p.dequeue_cost;
    start += p.dequeue_cost;

    trace[i].start = start;
    trace[i].head_end = start + p.head_cost;
    trace[i].finish = trace[i].head_end + p.tail_cost;
    trace[i].server = srv;
    server_free[srv] = trace[i].finish;
    ready = trace[i].head_end;  // the enqueue happens at head end
  }
  return trace;
}

SimResult simulate_cri(const SimParams& p) {
  const std::vector<InvocationTrace> trace = simulate_cri_trace(p);
  SimResult r;
  for (const InvocationTrace& t : trace) {
    r.total_time = std::max(r.total_time, t.finish);
    r.busy_time += p.head_cost + p.tail_cost + p.dequeue_cost;
  }
  r.avg_concurrency = r.total_time > 0 ? r.busy_time / r.total_time : 1.0;
  return r;
}

double SimResult::speedup_vs_one(const SimParams& p) const {
  SimParams one = p;
  one.servers = 1;
  const SimResult base = simulate_cri(one);
  return total_time > 0 ? base.total_time / total_time : 1.0;
}

}  // namespace curare::runtime
