// Server-allocation model (paper §4.1, Figure 10).
//
// For a simple recursive function with head cost h, tail cost t, and
// recursion depth d executed by S servers, the paper derives
//
//     T(S) = (⌈d/S⌉ − 1)(h + t) + (S·h + t)        for S ≤ d
//
// minimized at S* = sqrt(d(h+t)/h), clamped by the function's maximum
// concurrency c_f = min((h+t)/h, min conflict distance) and by the
// machine's processor count. Benchmark E8 measures real executions
// against these predictions.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <optional>

namespace curare::runtime {

/// The paper's T(S) in abstract time steps.
inline double predicted_time(double servers, double depth, double h,
                             double t) {
  if (servers < 1) servers = 1;
  if (servers > depth) servers = depth;
  const double groups = std::ceil(depth / servers);
  return (groups - 1.0) * (h + t) + (servers * h + t);
}

/// S* = sqrt(d(h+t)/h) — the unconstrained optimum (continuous).
inline double optimal_servers_continuous(double depth, double h, double t) {
  if (h <= 0) return depth;
  return std::sqrt(depth * (h + t) / h);
}

/// The function's own concurrency bound c_f = (h+t)/h, further capped by
/// the minimum conflict distance when one exists (§3.2.1).
inline double max_concurrency(double h, double t,
                              std::optional<int> min_conflict_distance) {
  double c = (h <= 0) ? 1e9 : (h + t) / h;
  if (min_conflict_distance)
    c = std::min(c, static_cast<double>(*min_conflict_distance));
  return c;
}

/// Integral server choice: min(S*, c_f, processors, depth), at least 1.
inline std::size_t choose_servers(double depth, double h, double t,
                                  std::optional<int> min_conflict_distance,
                                  std::size_t processors) {
  double s = optimal_servers_continuous(depth, h, t);
  s = std::min(s, max_concurrency(h, t, min_conflict_distance));
  s = std::min(s, static_cast<double>(processors));
  s = std::min(s, depth);
  return static_cast<std::size_t>(std::max(1.0, std::floor(s + 0.5)));
}

// ---- nested allocation (§4.1, second half) ------------------------------
//
// "Consider two recursive functions f1 and f2 such that f1 invokes f2.
// … an analyzer might allocate S1 × S2 servers … extravagant allocation
// of this sort is not practical … Another option is to dedicate only S2
// processes to f2 and require the S1 invocations of f1 to wait their
// turn." The paper concludes "a simple allocation scheme, with a dynamic
// component, is the best approach"; this helper realizes the simple
// static version: sweep the split of P processors between the outer
// pool (S1) and each inner recursion's pool (S2 = P/S1), predicting the
// outer time with the inner recursion's completion folded into the
// outer tail.

struct RecursionShape {
  double depth = 1;
  double h = 1;
  double t = 0;
};

struct NestedAllocation {
  std::size_t outer = 1;
  std::size_t inner = 1;
  double predicted = 0;
};

/// Predicted time of `outer` when every invocation's tail additionally
/// runs `inner` to completion on `s_inner` servers.
inline double predicted_nested_time(const RecursionShape& outer,
                                    const RecursionShape& inner,
                                    std::size_t s_outer,
                                    std::size_t s_inner) {
  const double inner_time = predicted_time(
      static_cast<double>(s_inner), inner.depth, inner.h, inner.t);
  return predicted_time(static_cast<double>(s_outer), outer.depth,
                        outer.h, outer.t + inner_time);
}

/// Best static split of `processors` between the two pools.
inline NestedAllocation allocate_nested(const RecursionShape& outer,
                                        const RecursionShape& inner,
                                        std::size_t processors) {
  NestedAllocation best;
  best.predicted = 1e300;
  processors = std::max<std::size_t>(1, processors);
  for (std::size_t s1 = 1; s1 <= processors; ++s1) {
    const std::size_t s2 = std::max<std::size_t>(1, processors / s1);
    const double time = predicted_nested_time(outer, inner, s1, s2);
    if (time < best.predicted) {
      best = NestedAllocation{s1, s2, time};
    }
  }
  return best;
}

}  // namespace curare::runtime
