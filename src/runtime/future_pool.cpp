#include "runtime/future_pool.hpp"

namespace curare::runtime {

FuturePool::FuturePool(std::size_t workers) {
  if (workers == 0) {
    workers = std::max(2u, std::thread::hardware_concurrency());
  }
  threads_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i)
    threads_.emplace_back([this] { worker_loop(); });
}

FuturePool::~FuturePool() {
  {
    std::lock_guard<std::mutex> g(mu_);
    shutdown_ = true;
  }
  cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

std::shared_ptr<FutureState> FuturePool::spawn(std::function<Value()> fn) {
  auto state = std::make_shared<FutureState>();
  {
    std::lock_guard<std::mutex> g(mu_);
    queue_.push_back(Task{std::move(fn), state});
  }
  spawned_.fetch_add(1, std::memory_order_relaxed);
  cv_.notify_one();
  return state;
}

void FuturePool::run_task(Task& t) {
  Value v;
  std::exception_ptr err;
  try {
    v = t.fn();
  } catch (...) {
    err = std::current_exception();
  }
  {
    std::lock_guard<std::mutex> g(t.state->mu);
    t.state->value = v;
    t.state->error = err;
    t.state->done = true;
  }
  t.state->cv.notify_all();
}

bool FuturePool::run_one_task() {
  Task t;
  {
    std::lock_guard<std::mutex> g(mu_);
    if (queue_.empty()) return false;
    t = std::move(queue_.front());
    queue_.pop_front();
  }
  run_task(t);
  return true;
}

void FuturePool::worker_loop() {
  for (;;) {
    Task t;
    {
      std::unique_lock<std::mutex> g(mu_);
      cv_.wait(g, [this] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) return;  // shutdown with drained queue
      t = std::move(queue_.front());
      queue_.pop_front();
    }
    run_task(t);
  }
}

Value FuturePool::touch(const std::shared_ptr<FutureState>& f) {
  // Help-first waiting: executing queued tasks while the target is
  // unresolved keeps a bounded pool deadlock-free even when futures
  // depend on queued futures.
  for (;;) {
    {
      std::unique_lock<std::mutex> g(f->mu);
      if (f->done) {
        if (f->error) std::rethrow_exception(f->error);
        return f->value;
      }
    }
    if (!run_one_task()) {
      std::unique_lock<std::mutex> g(f->mu);
      f->cv.wait_for(g, std::chrono::milliseconds(1),
                     [&] { return f->done; });
      if (f->done) {
        if (f->error) std::rethrow_exception(f->error);
        return f->value;
      }
    }
  }
}

}  // namespace curare::runtime
