#include "runtime/future_pool.hpp"

#include <algorithm>
#include <chrono>
#include <optional>

#include "runtime/fault_injector.hpp"
#include "runtime/resilience.hpp"

namespace curare::runtime {

FuturePool::FuturePool(std::size_t workers, obs::Recorder* rec)
    : rec_(rec) {
  if (workers == 0) {
    workers = std::max(2u, std::thread::hardware_concurrency());
  }
  if (rec_) {
    spawned_ctr_ = &rec_->metrics.counter("future.spawned");
    touches_ = &rec_->metrics.counter("future.touches");
    touch_waits_ = &rec_->metrics.counter("future.touch_waits");
    helped_ = &rec_->metrics.counter("future.helped");
    wait_ns_ = &rec_->metrics.histogram("future.wait_ns");
  }
  threads_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i)
    threads_.emplace_back([this, i] { worker_loop(i); });
}

FuturePool::~FuturePool() {
  {
    std::lock_guard<std::mutex> g(mu_);
    shutdown_ = true;
  }
  cv_.notify_all();
  for (std::thread& t : threads_) t.join();
  // The workers are gone: any thread still blocked in touch() on an
  // unresolved future would now wait forever — wake it into a throw.
  abort_waiters();
  // Unregister only after the workers are gone: tasks draining during
  // shutdown still rely on the pool's roots.
  if (gc::GcHeap* gc = gc_.load(std::memory_order_acquire))
    gc->remove_root_source(this);
}

void FuturePool::attach_gc(gc::GcHeap* gc) {
  gc_.store(gc, std::memory_order_release);
  if (gc != nullptr) gc->add_root_source(this);
}

void FuturePool::gc_roots(std::vector<Value>& out) {
  std::lock_guard<std::mutex> g(mu_);
  for (const Task& t : queue_) out.push_back(t.root);
  for (Value v : in_flight_) out.push_back(v);
  std::erase_if(states_, [](const std::weak_ptr<FutureState>& w) {
    return w.expired();
  });
  for (const auto& w : states_) {
    if (auto s = w.lock()) {
      std::lock_guard<std::mutex> sg(s->mu);
      out.push_back(s->value);
    }
  }
}

void FuturePool::abort_waiters() {
  aborted_.store(true, std::memory_order_release);
  std::lock_guard<std::mutex> g(mu_);
  for (const auto& w : states_) {
    if (auto s = w.lock()) {
      // Take the state's mutex before notifying: a toucher between its
      // predicate check and its wait must not miss the signal.
      std::lock_guard<std::mutex> sg(s->mu);
      s->cv.notify_all();
    }
  }
}

std::shared_ptr<FutureState> FuturePool::spawn(std::function<Value()> fn,
                                               Value root) {
  FaultInjector::instance().check(FaultInjector::Site::kFutureSpawn);
  auto state = std::make_shared<FutureState>();
  const std::uint64_t id =
      spawned_.fetch_add(1, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> g(mu_);
    queue_.push_back(
        Task{std::move(fn), state, id, root, obs::current_request()});
    states_.push_back(state);
    // Lazy compaction keeps the registry proportional to live futures.
    if (states_.size() >= 1024) {
      std::erase_if(states_, [](const std::weak_ptr<FutureState>& w) {
        return w.expired();
      });
    }
  }
  if (rec_) {
    spawned_ctr_->add();
    rec_->tracer.instant(obs::EventKind::kFutureSpawn, id);
  }
  cv_.notify_one();
  return state;
}

void FuturePool::run_task(Task& t) {
  // The whole execution is one unsafe region: the result Value must
  // not be collectible between t.fn() returning and the state store.
  std::optional<gc::MutatorScope> ms;
  if (gc::GcHeap* gc = gc_.load(std::memory_order_acquire))
    ms.emplace(*gc);
  std::uint64_t t0 = 0;
  if (rec_) t0 = rec_->tracer.now_ns();
  // Attribute the body to the spawning request (helpers in touch()
  // temporarily adopt the task's request, restoring their own after).
  obs::RequestScope req_scope(t.req_ctx);
  Value v;
  std::exception_ptr err;
  try {
    FaultInjector::instance().check(FaultInjector::Site::kTaskRun);
    v = t.fn();
  } catch (...) {
    err = std::current_exception();
  }
  if (rec_) rec_->tracer.span(obs::EventKind::kFutureRun, t0, t.id);
  {
    std::lock_guard<std::mutex> g(t.state->mu);
    t.state->value = v;
    t.state->error = err;
    t.state->done = true;
  }
  t.state->cv.notify_all();
}

bool FuturePool::run_one_task() {
  // Callers (touch helpers) are already inside an unsafe region; this
  // scope makes the invariant local: a task is popped only by a thread
  // the collector will wait for, so its root hand-off from queue_ to
  // in_flight_ (one mu_ critical section) is never observable halfway.
  std::optional<gc::MutatorScope> ms;
  if (gc::GcHeap* gc = gc_.load(std::memory_order_acquire))
    ms.emplace(*gc);
  Task t;
  std::list<Value>::iterator root_it;
  {
    std::lock_guard<std::mutex> g(mu_);
    if (queue_.empty()) return false;
    t = std::move(queue_.front());
    queue_.pop_front();
    in_flight_.push_front(t.root);
    root_it = in_flight_.begin();
  }
  run_task(t);
  {
    std::lock_guard<std::mutex> g(mu_);
    in_flight_.erase(root_it);
    if (queue_.empty() && in_flight_.empty()) idle_cv_.notify_all();
  }
  return true;
}

void FuturePool::wait_idle() {
  // A waiter may sit here across a collection (another thread's task
  // may be what drains the queue), so release any unsafe region the
  // caller holds — mirror of the scheduler's blocking waits. The
  // wait_for slice is the usual cancellation backstop: a session drain
  // with a fired token must not hang on an orphaned future.
  gc::GcHeap* gc = gc_.load(std::memory_order_acquire);
  const std::size_t depth = gc != nullptr ? gc->blocking_release() : 0;
  try {
    std::unique_lock<std::mutex> g(mu_);
    while (!(queue_.empty() && in_flight_.empty())) {
      poll_cancellation();
      idle_cv_.wait_for(g, std::chrono::milliseconds(50), [this] {
        return queue_.empty() && in_flight_.empty();
      });
    }
  } catch (...) {
    if (gc != nullptr) gc->blocking_reacquire(depth);
    throw;
  }
  if (gc != nullptr) gc->blocking_reacquire(depth);
}

void FuturePool::worker_loop(std::size_t worker_index) {
  if (rec_) {
    rec_->tracer.name_thread("future-worker-" +
                             std::to_string(worker_index));
  }
  for (;;) {
    // Between tasks is a quiescent point for this worker.
    if (gc::GcHeap* gc = gc_.load(std::memory_order_acquire))
      gc->maybe_collect();
    {
      std::unique_lock<std::mutex> g(mu_);
      cv_.wait(g, [this] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) return;  // shutdown with drained queue
    }
    // Re-pop inside an unsafe region (run_one_task) so the task is
    // never held outside both the queue and an unsafe region; a helper
    // may have raced us to it, in which case we just loop.
    run_one_task();
  }
}

Value FuturePool::touch(const std::shared_ptr<FutureState>& f) {
  if (rec_) touches_->add();
  // Help-first waiting: executing queued tasks while the target is
  // unresolved keeps a bounded pool deadlock-free even when futures
  // depend on queued futures.
  bool waited = false;
  std::uint64_t wait_start = 0, helped = 0;
  for (;;) {
    {
      std::unique_lock<std::mutex> g(f->mu);
      if (!f->done && !waited && rec_) {
        waited = true;
        wait_start = rec_->tracer.now_ns();
        touch_waits_->add();
      }
      if (f->done) {
        if (rec_ && waited) {
          const std::uint64_t end = rec_->tracer.now_ns();
          wait_ns_->observe(end > wait_start ? end - wait_start : 0);
          helped_->add(helped);
          rec_->tracer.emit(obs::EventKind::kFutureTouchWait, wait_start,
                            end > wait_start ? end - wait_start : 0, 0,
                            helped);
        }
        if (f->error) std::rethrow_exception(f->error);
        return f->value;
      }
    }
    if (run_one_task()) {
      ++helped;
    } else {
      // Nothing left to help with: the target was already dequeued (a
      // task is pushed exactly once, before it can resolve), so some
      // thread is executing it and will notify f->cv on completion —
      // unless that thread died with the pool (abort_waiters) or this
      // thread's run was cancelled. Both exits are checked each slice;
      // the timeout is only their backstop, a completion notify still
      // ends the wait immediately.
      poll_cancellation();
      std::unique_lock<std::mutex> g(f->mu);
      if (aborted_.load(std::memory_order_acquire) && !f->done) {
        throw sexpr::LispError(
            "touch of an unresolved future after its pool shut down");
      }
      f->cv.wait_for(g,
                     current_cancel() != nullptr
                         ? std::chrono::milliseconds(10)
                         : std::chrono::milliseconds(250),
                     [&] {
                       return f->done ||
                              aborted_.load(std::memory_order_acquire);
                     });
    }
  }
}

}  // namespace curare::runtime
